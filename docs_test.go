package fpcache

// Docs hygiene checks, run as part of the ordinary test suite and
// called out explicitly by the CI docs step: every internal package
// must carry a package comment, and every Go code block in README.md
// must actually build against the module — documentation that
// bit-rots fails the build instead of misleading the next reader.

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestInternalPackageComments walks every package under internal/ (and
// the root package) and fails unless some file carries a package
// comment — the one-paragraph contract godoc shows.
func TestInternalPackageComments(t *testing.T) {
	dirs := map[string]bool{".": true}
	err := filepath.WalkDir("internal", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		// Analyzer fixture packages under testdata are inputs, not API.
		if d.Name() == "testdata" {
			return filepath.SkipDir
		}
		if path != "internal" {
			dirs[path] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				t.Errorf("package %s (%s) has no package comment", name, dir)
			}
		}
	}
}

// goBlock matches fenced Go code blocks in markdown.
var goBlock = regexp.MustCompile("(?s)```go\n(.*?)```")

// TestREADMESnippetsBuild extracts every fenced Go block from
// README.md and builds it against this module, so quickstart code can
// never drift from the API. Blocks without a package clause are
// skipped (there are none today, but partial snippets stay
// representable).
func TestREADMESnippetsBuild(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH")
	}
	src, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	blocks := goBlock.FindAllStringSubmatch(string(src), -1)
	if len(blocks) == 0 {
		t.Fatal("README.md contains no Go code blocks; the quickstart should have at least one")
	}
	for i, m := range blocks {
		snippet := m[1]
		if !strings.Contains(snippet, "package ") {
			continue
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(snippet), 0o644); err != nil {
			t.Fatal(err)
		}
		gomod := "module readmesnippet\n\ngo 1.24\n\nrequire fpcache v0.0.0\n\nreplace fpcache => " + repo + "\n"
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte(gomod), 0o644); err != nil {
			t.Fatal(err)
		}
		cmd := exec.Command("go", "build", "./...")
		cmd.Dir = dir
		// Snippet builds must not touch the network or rewrite go.mod.
		cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GOPROXY=off")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("README snippet %d does not build:\n%s\n--- snippet ---\n%s", i+1, out, snippet)
		}
	}
}
