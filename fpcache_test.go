package fpcache

import (
	"strings"
	"testing"
)

func TestConfigDefaults(t *testing.T) {
	c := Config{Workload: WebSearch, Design: Footprint, Refs: 100}
	cc := c.withDefaults()
	if cc.Scale != DefaultScale || cc.PageBytes != 2048 || cc.FHTEntries != 16*1024 {
		t.Fatalf("defaults: %+v", cc)
	}
	if cc.WarmupRefs != cc.Refs {
		t.Fatalf("warmup default = %d, want Refs", cc.WarmupRefs)
	}
	if cc.PaperCapacityMB != 256 || cc.Cores != 16 || cc.Seed != 1 {
		t.Fatalf("defaults: %+v", cc)
	}
	c.WarmupRefs = -1
	if c.withDefaults().WarmupRefs != 0 {
		t.Fatal("WarmupRefs=-1 should disable warmup")
	}
}

func TestCapacityScaling(t *testing.T) {
	c := Config{PaperCapacityMB: 512}
	if got := c.CapacityBytes(); got != (512<<20)/16 {
		t.Fatalf("scaled capacity = %d", got)
	}
	c.Scale = 1
	if got := c.CapacityBytes(); got != 512<<20 {
		t.Fatalf("full capacity = %d", got)
	}
}

func TestWorkloadsAndDesignsRegistries(t *testing.T) {
	if len(Workloads()) != 7 {
		t.Fatalf("workloads = %v", Workloads())
	}
	if len(Designs()) != 9 {
		t.Fatalf("designs = %v", Designs())
	}
	for _, d := range Designs() {
		cfg := Config{Workload: WebSearch, Design: d, PaperCapacityMB: 64, Refs: 10}
		if _, err := NewDesign(cfg); err != nil {
			t.Fatalf("NewDesign(%s): %v", d, err)
		}
	}
}

func TestErrorsSurfaceCleanly(t *testing.T) {
	if _, err := RunFunctional(Config{Workload: "nope", Design: Footprint, Refs: 10}); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("bad workload error: %v", err)
	}
	if _, err := RunFunctional(Config{Workload: WebSearch, Design: "nope", Refs: 10}); err == nil {
		t.Fatal("bad design accepted")
	}
	if _, err := RunFunctional(Config{Workload: WebSearch, Design: Footprint}); err == nil {
		t.Fatal("missing Refs accepted")
	}
	if _, err := RunTiming(Config{Workload: WebSearch, Design: Footprint}); err == nil {
		t.Fatal("missing Refs accepted in timing mode")
	}
}

func TestRunFunctionalDeterministic(t *testing.T) {
	cfg := Config{Workload: MapReduce, Design: Footprint, PaperCapacityMB: 64,
		Scale: 1.0 / 64, Refs: 30_000}
	a, err := RunFunctional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFunctional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters || a.OffChip != b.OffChip {
		t.Fatal("same config produced different results")
	}
	cfg.Seed = 99
	c, err := RunFunctional(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters == c.Counters {
		t.Fatal("different seeds produced identical counters")
	}
}

// TestCalibrationFunctional asserts the paper's central functional
// results hold in shape (Fig. 5): for every workload at small and
// large capacity, page <= footprint < block on miss ratio, and
// footprint's off-chip traffic is far below page's and near block's.
func TestCalibrationFunctional(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	for _, wl := range []string{WebSearch, MapReduce} {
		for _, mb := range []int{64, 512} {
			miss := map[DesignKind]float64{}
			traffic := map[DesignKind]float64{}
			for _, d := range []DesignKind{Block, Page, Footprint} {
				res, err := RunFunctional(Config{
					Workload: wl, Design: d, PaperCapacityMB: mb,
					Scale: 1.0 / 32, Refs: 300_000,
				})
				if err != nil {
					t.Fatal(err)
				}
				miss[d] = res.MissRatio()
				traffic[d] = res.OffChipBytesPerRef()
			}
			if !(miss[Page] <= miss[Footprint]+0.02 && miss[Footprint] < miss[Block]) {
				t.Errorf("%s@%dMB miss ordering: page=%.3f fp=%.3f block=%.3f",
					wl, mb, miss[Page], miss[Footprint], miss[Block])
			}
			if !(traffic[Footprint] < traffic[Page]) {
				t.Errorf("%s@%dMB traffic: fp=%.1f not below page=%.1f",
					wl, mb, traffic[Footprint], traffic[Page])
			}
			// Footprint traffic within ~2x of block's (the "low
			// off-chip traffic as in block-based" claim).
			if traffic[Footprint] > 2.2*traffic[Block] {
				t.Errorf("%s@%dMB fp traffic %.1f far above block %.1f",
					wl, mb, traffic[Footprint], traffic[Block])
			}
		}
	}
}

// TestCalibrationTiming asserts the paper's performance ordering
// (Fig. 6/7) at 256MB: footprint > page and > block and > baseline;
// ideal tops everything.
func TestCalibrationTiming(t *testing.T) {
	if testing.Short() {
		t.Skip("timing calibration in -short mode")
	}
	ipc := map[DesignKind]float64{}
	for _, d := range []DesignKind{Baseline, Block, Page, Footprint, Ideal} {
		res, err := RunTiming(Config{
			Workload: MapReduce, Design: d, PaperCapacityMB: 256,
			Scale: 1.0 / 32, Refs: 60_000, WarmupRefs: 150_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		ipc[d] = res.AggIPC()
	}
	if !(ipc[Footprint] > ipc[Page] && ipc[Footprint] > ipc[Block] && ipc[Footprint] > ipc[Baseline]) {
		t.Errorf("footprint not on top: %v", ipc)
	}
	if ipc[Ideal] < ipc[Footprint] {
		t.Errorf("ideal below footprint: %v", ipc)
	}
}

// TestSingletonOptimizationHelps asserts the §6.5 result: disabling
// the singleton optimization increases the miss rate on the
// singleton-heavy workload at small capacity.
func TestSingletonOptimizationHelps(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	run := func(d DesignKind) float64 {
		res, err := RunFunctional(Config{
			Workload: MapReduce, Design: d, PaperCapacityMB: 64,
			Scale: 1.0 / 32, Refs: 300_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MissRatio()
	}
	with, without := run(Footprint), run(FootprintNoSingleton)
	if with >= without {
		t.Fatalf("singleton opt: with=%.4f without=%.4f", with, without)
	}
}

func TestNewTraceRespectsCores(t *testing.T) {
	src, prof, err := NewTrace(Config{Workload: WebSearch, Cores: 4, Refs: 100})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Cores != 4 {
		t.Fatalf("profile cores = %d", prof.Cores)
	}
	for i := 0; i < 1000; i++ {
		rec, ok := src.Next()
		if !ok {
			t.Fatal("generator exhausted")
		}
		if rec.Core >= 4 {
			t.Fatalf("core %d out of range", rec.Core)
		}
	}
}

func TestFootprintStatsExposed(t *testing.T) {
	res, err := RunFunctional(Config{
		Workload: WebSearch, Design: Footprint, PaperCapacityMB: 64,
		Scale: 1.0 / 64, Refs: 50_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Footprint == nil {
		t.Fatal("footprint stats missing")
	}
	if cov := res.Footprint.Coverage(); cov <= 0.5 || cov > 1 {
		t.Fatalf("coverage = %.3f implausible", cov)
	}
}
