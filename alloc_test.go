package fpcache

// Allocation budgets for the simulation hot path. The Design.Access
// contract hands the caller's ops scratch buffer to the design, so
// after warmup a functional run performs zero heap allocations per
// reference — these tests pin that property for every design so a
// regression fails CI rather than silently melting throughput.

import (
	"math/rand"
	"os"
	"strings"
	"testing"

	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
)

// allocBudgetKinds is every design the zero-allocation budget covers:
// the paper's canonical kinds plus policy compositions exercising
// every engine axis (gated fills, row-spread and hybrid mappings, and
// partitioned stacked capacity with its consistent-hash indexing).
func allocBudgetKinds() []DesignKind {
	kinds := append(Designs(), HybridDesigns()...)
	return append(kinds, "page+blockrow", "subblock+hybrid+hotgate", "page+banshee",
		"footprint+memcache:50", "page+memlow:25", "footprint+banshee+memcache:25")
}

// allTestableDesigns returns every covered design kind at a small
// capacity.
func allTestableDesigns(tb testing.TB) map[string]dcache.Design {
	tb.Helper()
	out := make(map[string]dcache.Design)
	for _, kind := range allocBudgetKinds() {
		d, err := NewDesign(Config{Design: kind, PaperCapacityMB: 64, Refs: 1})
		if err != nil {
			tb.Fatalf("%s: %v", kind, err)
		}
		out[string(kind)] = d
	}
	return out
}

// accessRecords builds a mixed read/write reference stream with
// enough footprint to exercise hits, misses, evictions, and bypasses.
func accessRecords(n int) []memtrace.Record {
	rng := rand.New(rand.NewSource(42))
	recs := make([]memtrace.Record, n)
	for i := range recs {
		recs[i] = memtrace.Record{
			PC:    memtrace.PC(0x400000 + rng.Intn(256)*4),
			Addr:  memtrace.Addr(rng.Intn(1<<22) * 64),
			Write: rng.Intn(3) == 0,
		}
	}
	return recs
}

// TestAccessZeroAllocs asserts the zero-allocation budget: steady
// state Design.Access with a reused scratch buffer must not allocate,
// for every design.
func TestAccessZeroAllocs(t *testing.T) {
	recs := accessRecords(1 << 16)
	for name, d := range allTestableDesigns(t) {
		// Warm the design (tables filled, eviction paths active) and
		// the scratch buffer (grown to the largest outcome).
		var ops []dcache.Op
		for i := 0; i < 1<<17; i++ {
			ops = d.Access(recs[i&(1<<16-1)], ops).Ops
		}
		idx := 0
		avg := testing.AllocsPerRun(2000, func() {
			ops = d.Access(recs[idx&(1<<16-1)], ops).Ops
			idx++
		})
		if avg != 0 {
			t.Errorf("%s: Access allocates %.2f allocs/op in steady state, want 0", name, avg)
		}
	}
}

// TestAllocBudgetManifestAgreement pins the static and runtime
// budgets together: TestAccessZeroAllocs wants 0 allocs/op in steady
// state, so the fplint allocbudget manifest must budget no hot-path
// escapes. A change that adds a manifest entry has to loosen this test
// — and justify the runtime budget — in the same commit, so the two
// enforcement layers cannot drift apart silently.
func TestAllocBudgetManifestAgreement(t *testing.T) {
	raw, err := os.ReadFile("lint/allocbudget.manifest")
	if err != nil {
		t.Fatalf("reading allocbudget manifest: %v", err)
	}
	for i, line := range strings.Split(string(raw), "\n") {
		text := strings.TrimSpace(line)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t.Errorf("lint/allocbudget.manifest:%d: entry %q budgets a hot-path heap allocation, "+
			"but TestAccessZeroAllocs pins 0 allocs/op — the static and runtime budgets disagree", i+1, text)
	}
}

// BenchmarkDesignAccess measures per-access cost and allocation for
// every design under the scratch-buffer contract.
func BenchmarkDesignAccess(b *testing.B) {
	recs := accessRecords(1 << 16)
	for _, kind := range allocBudgetKinds() {
		b.Run(string(kind), func(b *testing.B) {
			d, err := NewDesign(Config{Design: kind, PaperCapacityMB: 64, Refs: 1})
			if err != nil {
				b.Fatal(err)
			}
			var ops []dcache.Op
			for i := 0; i < 1<<16; i++ {
				ops = d.Access(recs[i], ops).Ops
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ops = d.Access(recs[i&(1<<16-1)], ops).Ops
			}
		})
	}
}
