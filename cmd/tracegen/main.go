// Command tracegen writes a synthetic workload trace to disk in the
// binary trace format, so external tools (or repeated cache studies)
// can replay identical reference streams.
//
// Usage:
//
//	tracegen -workload mapreduce -refs 5000000 -o mapreduce.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"fpcache"
	"fpcache/internal/memtrace"
)

func main() {
	var (
		workload = flag.String("workload", fpcache.WebSearch, "workload name")
		refs     = flag.Int("refs", 1_000_000, "number of references to emit")
		scale    = flag.Float64("scale", fpcache.DefaultScale, "capacity scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o output file is required")
		os.Exit(2)
	}

	src, _, err := fpcache.NewTrace(fpcache.Config{
		Workload: *workload, Scale: *scale, Seed: *seed, Refs: *refs,
	})
	if err != nil {
		fail(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	tw := memtrace.NewWriter(f)
	for i := 0; i < *refs; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(rec); err != nil {
			fail(err)
		}
	}
	if err := tw.Flush(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Printf("tracegen: wrote %d records of %s to %s\n", tw.Count(), *workload, *out)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
