// Command tracegen writes a synthetic workload trace to disk in the
// binary trace format, so external tools (or repeated cache studies)
// can replay identical reference streams.
//
// Format v1 (the default) is a flat fixed-width record dump; -v2
// writes trace format v2 — delta/varint-compressed records in
// independently decodable, CRC-protected chunks with a trailing chunk
// index, which seekable readers (memtrace.FileReader, fpsim -restore
// fast-forwarding) use to jump to any record without decoding the
// prefix. -index inspects an existing trace file of either version;
// -verify is the trace fsck — it walks every chunk (CRC, framing, full
// record decode, index agreement) and exits non-zero naming the first
// corrupt chunk and offset.
//
// Usage:
//
//	tracegen -workload mapreduce -refs 5000000 -o mapreduce.trace
//	tracegen -workload mapreduce -refs 5000000 -v2 -o mapreduce.trace
//	tracegen -index mapreduce.trace
//	tracegen -verify mapreduce.trace
//	tracegen -stats mapreduce.trace
//
// -stats summarizes a trace's chunking (chunk count, records/chunk
// histogram, bytes/record) — the inputs to picking an interval count
// for interval-parallel simulation (fpsim -intervals, DESIGN.md §11).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"fpcache"
	"fpcache/internal/memtrace"
)

func main() {
	var (
		workload = flag.String("workload", fpcache.WebSearch, "workload name")
		refs     = flag.Int("refs", 1_000_000, "number of references to emit")
		scale    = flag.Float64("scale", fpcache.DefaultScale, "capacity scale factor")
		seed     = flag.Int64("seed", 1, "random seed")
		v2       = flag.Bool("v2", false, "write trace format v2 (chunked, delta-compressed, seekable)")
		chunk    = flag.Int("chunk", memtrace.DefaultChunkRecords, "records per v2 chunk")
		index    = flag.String("index", "", "print the chunk index of an existing trace file and exit")
		statsIn  = flag.String("stats", "", "print chunking statistics of an existing trace file (chunk count, records/chunk histogram, bytes/record) and exit")
		verify   = flag.String("verify", "", "verify an existing trace file (chunk CRCs, framing, index) and exit")
		out      = flag.String("o", "", "output file (required)")
	)
	flag.Parse()

	if *index != "" {
		if err := printIndex(*index); err != nil {
			fail(err)
		}
		return
	}
	if *verify != "" {
		if err := verifyTrace(*verify); err != nil {
			fail(err)
		}
		return
	}
	if *statsIn != "" {
		if err := printStats(*statsIn); err != nil {
			fail(err)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o output file is required")
		os.Exit(2)
	}

	src, _, err := fpcache.NewTrace(fpcache.Config{
		Workload: *workload, Scale: *scale, Seed: *seed, Refs: *refs,
	})
	if err != nil {
		fail(err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	wrote, err := writeTrace(f, src, *refs, *v2, *chunk)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fail(err)
	}
	version := 1
	if *v2 {
		version = 2
	}
	fmt.Printf("tracegen: wrote %d records of %s to %s (format v%d)\n", wrote, *workload, *out, version)
}

// writeTrace drains up to refs records from src into w in the chosen
// format.
func writeTrace(w *os.File, src memtrace.Source, refs int, v2 bool, chunkRecs int) (uint64, error) {
	if v2 {
		tw := memtrace.NewWriterV2(w)
		if err := tw.SetChunkRecords(chunkRecs); err != nil {
			return 0, err
		}
		for i := 0; i < refs; i++ {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if err := tw.Write(rec); err != nil {
				return tw.Count(), err
			}
		}
		return tw.Count(), tw.Close()
	}
	tw := memtrace.NewWriter(w)
	for i := 0; i < refs; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := tw.Write(rec); err != nil {
			return tw.Count(), err
		}
	}
	return tw.Count(), tw.Flush()
}

// printIndex opens a trace file and reports its version, record count,
// and (for v2) the chunk index.
func printIndex(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fr, err := memtrace.NewFileReader(f)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("%s: format v%d, %d records, %d bytes", path, fr.Version(), fr.Len(), st.Size())
	if fr.Len() > 0 {
		fmt.Printf(" (%.2f bytes/record)", float64(st.Size())/float64(fr.Len()))
	}
	fmt.Println()
	offsets, starts, counts := fr.Chunks()
	if len(offsets) == 0 {
		return nil
	}
	fmt.Printf("%6s %12s %12s %10s\n", "chunk", "offset", "first rec", "records")
	for i := range offsets {
		fmt.Printf("%6d %12d %12d %10d\n", i, offsets[i], starts[i], counts[i])
	}
	return nil
}

// printStats reports a trace file's chunking statistics — the numbers
// that matter when picking interval sizes for interval-parallel runs
// (DESIGN.md §11): how many chunk-aligned boundaries exist, how evenly
// records spread over them, and what a record costs on disk.
func printStats(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fr, err := memtrace.NewFileReader(f)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("%s: format v%d\n", path, fr.Version())
	fmt.Printf("records:        %d\n", fr.Len())
	fmt.Printf("bytes:          %d", st.Size())
	if fr.Len() > 0 {
		fmt.Printf(" (%.2f bytes/record)", float64(st.Size())/float64(fr.Len()))
	}
	fmt.Println()
	_, _, counts := fr.Chunks()
	if len(counts) == 0 {
		fmt.Println("chunks:         none (v1 traces have no chunk index; rewrite with -v2 to seek and split)")
		return nil
	}
	min, max, sum := counts[0], counts[0], uint64(0)
	freq := map[uint64]int{}
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
		sum += c
		freq[c]++
	}
	fmt.Printf("chunks:         %d (%.1f records/chunk mean, min %d, max %d)\n",
		len(counts), float64(sum)/float64(len(counts)), min, max)
	sizes := make([]uint64, 0, len(freq))
	for c := range freq {
		sizes = append(sizes, c)
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	fmt.Println("records/chunk histogram:")
	for _, c := range sizes {
		fmt.Printf("  %8d records x %d chunk(s)\n", c, freq[c])
	}
	return nil
}

// verifyTrace runs the full-file integrity scan and reports the
// verdict; any corruption (first bad chunk and offset) comes back as
// an error, which fail() turns into a non-zero exit.
func verifyTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fr, err := memtrace.NewFileReader(f)
	if err != nil {
		return err
	}
	if err := fr.Verify(); err != nil {
		return err
	}
	offsets, _, _ := fr.Chunks()
	fmt.Printf("%s: ok — format v%d, %d records, %d chunks verified\n",
		path, fr.Version(), fr.Len(), len(offsets))
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
