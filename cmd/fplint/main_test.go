package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpcache/internal/lint"
)

// loadShipped loads the repository itself, memoized across every test
// in this package via LoadShared — the whole-module type-check runs
// once no matter how many tests consume it.
func loadShipped(t *testing.T) *lint.Program {
	t.Helper()
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	prog, err := lint.LoadShared("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	return prog
}

// TestShippedTreeIsClean is the suite's own regression gate: the
// checked-in tree must produce zero findings — including stale-ignore
// findings — so any new violation fails CI rather than accumulating.
func TestShippedTreeIsClean(t *testing.T) {
	prog := loadShipped(t)
	diags, audit, err := lint.RunProgramAudit(prog, suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	enabled := map[string]bool{}
	for _, a := range suite() {
		enabled[a.Name] = true
	}
	diags = append(diags, lint.StaleIgnores(audit, enabled)...)
	for _, d := range diags {
		t.Errorf("shipped tree has a finding: %s", d)
	}
}

// TestSuppressionAccounting pins the shipped tree's ignore contract:
// every //fplint:ignore directive suppresses exactly one finding. Zero
// means the directive is stale (the code it excused is gone); more
// than one means a directive silently widened its blast radius.
func TestSuppressionAccounting(t *testing.T) {
	prog := loadShipped(t)
	_, audit, err := lint.RunProgramAudit(prog, suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	if len(audit) == 0 {
		t.Fatal("no ignore directives found in the shipped tree; the audit is not seeing them")
	}
	for _, u := range audit {
		if u.Suppressed != 1 {
			t.Errorf("%s: //fplint:ignore %s suppressed %d finding(s), want exactly 1",
				u.Pos, strings.Join(u.Analyzers, ","), u.Suppressed)
		}
	}
}

// TestSuiteScopes pins the driver registry: all six analyzers present,
// scoped analyzers matching exactly their contract packages.
func TestSuiteScopes(t *testing.T) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range suite() {
		byName[a.Name] = a
	}
	for _, name := range []string{"determinism", "hotpath", "faulterr", "snapmeta", "workershare", "allocbudget"} {
		if byName[name] == nil {
			t.Fatalf("suite is missing analyzer %q", name)
		}
	}
	if len(suite()) != 6 {
		t.Fatalf("suite has %d analyzers, want 6", len(suite()))
	}
	if m := byName["determinism"].Match; m == nil ||
		!m("fpcache/internal/experiments") || !m("fpcache/internal/faultinject") ||
		m("fpcache/internal/memtrace") {
		t.Errorf("determinism scope wrong: must cover experiments and faultinject, not memtrace")
	}
	if m := byName["faulterr"].Match; m == nil ||
		!m("fpcache/internal/snap") || m("fpcache/internal/experiments") {
		t.Errorf("faulterr scope wrong: must cover snap, not experiments")
	}
	if m := byName["workershare"].Match; m == nil ||
		!m("fpcache/internal/sweep") || !m("fpcache/cmd/fpsim") || m("fpcache/internal/dcache") {
		t.Errorf("workershare scope wrong: must cover sweep and cmd/fpsim, not dcache")
	}
	if byName["hotpath"].Match != nil || byName["snapmeta"].Match != nil || byName["allocbudget"].Match != nil {
		t.Errorf("hotpath, snapmeta, and allocbudget must run unscoped")
	}
}

// TestVetHandshake checks the `go vet -vettool` version protocol: the
// tool must answer -V=full with a single stable line cmd/go can use as
// a cache key.
func TestVetHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := lint.VetMain([]string{"-V=full"}, suite(), &out, &errb); code != 0 {
		t.Fatalf("-V=full exited %d, stderr: %s", code, errb.String())
	}
	got := strings.TrimSpace(out.String())
	if got != lint.VetVersionString {
		t.Errorf("-V=full printed %q, want %q", got, lint.VetVersionString)
	}
}

// runDriver invokes run() as the CLI would, capturing stdout.
func runDriver(t *testing.T, args ...string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "stdout")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, os.Stderr)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// writeTempModule lays out a throwaway module named fpcache so the
// suite's package scopes apply to its files.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fpcache\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestBaselineRoundTrip freezes a tree's findings with -write-baseline
// and confirms -baseline then suppresses exactly those findings,
// turning exit 1 into exit 0.
func TestBaselineRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list in -short mode")
	}
	dir := writeTempModule(t, map[string]string{
		"internal/system/clock.go": `package system

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	if code, _ := runDriver(t, "-C", dir, "./..."); code != 1 {
		t.Fatalf("dirty tree exited %d, want 1", code)
	}
	bl := filepath.Join(dir, "lint.baseline")
	if code, _ := runDriver(t, "-C", dir, "-write-baseline", bl, "./..."); code != 0 {
		t.Fatalf("-write-baseline exited %d, want 0", code)
	}
	if code, out := runDriver(t, "-C", dir, "-baseline", bl, "./..."); code != 0 {
		t.Fatalf("baselined tree exited %d, want 0; stdout:\n%s", code, out)
	}
}

// TestFixRewritesInPlace drives -fix end to end: a faulterr finding
// with a mechanical rewrite is applied to disk and the re-run is
// clean.
func TestFixRewritesInPlace(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list in -short mode")
	}
	dir := writeTempModule(t, map[string]string{
		"internal/snap/snap.go": `package snap

import "fmt"

func Restore(path string, cause error) error {
	return fmt.Errorf("restore %s: %v", path, cause)
}
`,
	})
	code, out := runDriver(t, "-C", dir, "-fix", "./...")
	if code != 0 {
		t.Fatalf("-fix exited %d, want 0 (all findings fixable); stdout:\n%s", code, out)
	}
	src, err := os.ReadFile(filepath.Join(dir, "internal/snap/snap.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), `"restore %s: %w"`) {
		t.Errorf("fix did not rewrite %%v to %%w; file now:\n%s", src)
	}
	if code, _ := runDriver(t, "-C", dir, "./..."); code != 0 {
		t.Errorf("tree still dirty after -fix, exited %d", code)
	}
}

// TestSARIFOutput smoke-tests -format sarif: well-formed SARIF 2.1.0
// with one run, all six rules, and one result per finding.
func TestSARIFOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list in -short mode")
	}
	dir := writeTempModule(t, map[string]string{
		"internal/system/clock.go": `package system

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`,
	})
	code, out := runDriver(t, "-C", dir, "-format", "sarif", "./...")
	if code != 1 {
		t.Fatalf("dirty tree exited %d, want 1", code)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("want SARIF 2.1.0 with one run, got version %q, %d runs", doc.Version, len(doc.Runs))
	}
	if got := len(doc.Runs[0].Tool.Driver.Rules); got < 6 {
		t.Errorf("SARIF declares %d rules, want at least 6", got)
	}
	if len(doc.Runs[0].Results) == 0 {
		t.Error("SARIF has no results for a dirty tree")
	}
	for _, r := range doc.Runs[0].Results {
		if r.RuleID == "determinism" && strings.Contains(r.Message.Text, "time.Now") {
			return
		}
	}
	t.Errorf("no determinism/time.Now result in SARIF output:\n%s", out)
}
