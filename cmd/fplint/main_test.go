package main

import (
	"bytes"
	"strings"
	"testing"

	"fpcache/internal/lint"
)

// TestShippedTreeIsClean is the suite's own regression gate: the
// checked-in tree must produce zero findings, so any new violation
// fails CI rather than accumulating.
func TestShippedTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load in -short mode")
	}
	prog, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := lint.RunProgram(prog, suite())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("shipped tree has a finding: %s", d)
	}
}

// TestSuiteScopes pins the driver registry: all four analyzers
// present, scoped analyzers matching exactly their contract packages.
func TestSuiteScopes(t *testing.T) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range suite() {
		byName[a.Name] = a
	}
	for _, name := range []string{"determinism", "hotpath", "faulterr", "snapmeta"} {
		if byName[name] == nil {
			t.Fatalf("suite is missing analyzer %q", name)
		}
	}
	if m := byName["determinism"].Match; m == nil ||
		!m("fpcache/internal/experiments") || m("fpcache/internal/memtrace") {
		t.Errorf("determinism scope wrong: must cover experiments, not memtrace")
	}
	if m := byName["faulterr"].Match; m == nil ||
		!m("fpcache/internal/snap") || m("fpcache/internal/experiments") {
		t.Errorf("faulterr scope wrong: must cover snap, not experiments")
	}
	if byName["hotpath"].Match != nil || byName["snapmeta"].Match != nil {
		t.Errorf("hotpath and snapmeta must run unscoped")
	}
}

// TestVetHandshake checks the `go vet -vettool` version protocol: the
// tool must answer -V=full with a single stable line cmd/go can use as
// a cache key.
func TestVetHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := lint.VetMain([]string{"-V=full"}, suite(), &out, &errb); code != 0 {
		t.Fatalf("-V=full exited %d, stderr: %s", code, errb.String())
	}
	got := strings.TrimSpace(out.String())
	if got != lint.VetVersionString {
		t.Errorf("-V=full printed %q, want %q", got, lint.VetVersionString)
	}
}
