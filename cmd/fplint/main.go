// Command fplint runs the repository's custom static-analysis suite
// (internal/lint): determinism, hotpath, faulterr, and snapmeta. It
// works standalone —
//
//	fplint ./...                   # whole-program run, full call-graph closure
//	fplint -analyzers hotpath ./...
//	fplint -list
//
// — and as a `go vet` plugin:
//
//	go build -o fplint ./cmd/fplint
//	go vet -vettool=$PWD/fplint ./...
//
// In vettool mode each package is analyzed alone, so the hotpath
// closure is package-local; CI's standalone step provides the full
// cross-package closure. Exit status: 0 clean, 1 findings, 2 usage or
// load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpcache/internal/lint"
	"fpcache/internal/lint/determinism"
	"fpcache/internal/lint/faulterr"
	"fpcache/internal/lint/hotpath"
	"fpcache/internal/lint/snapmeta"
)

// scopes restricts analyzers to the packages whose contracts they
// enforce; analyzers without an entry run everywhere. The lists mirror
// DESIGN.md §12.
var scopes = map[string][]string{
	"determinism": {
		"fpcache/internal/system",
		"fpcache/internal/experiments",
		"fpcache/internal/sweep",
		"fpcache/internal/dcache",
		"fpcache/internal/stats",
		"fpcache/internal/control",
	},
	"faulterr": {
		"fpcache/internal/snap",
		"fpcache/internal/memtrace",
		"fpcache/internal/system",
		"fpcache/internal/control",
	},
}

// Suite returns the fplint analyzers with their production scopes
// applied. Shared with cmd/fplint's tests.
func suite() []*lint.Analyzer {
	all := []*lint.Analyzer{
		determinism.Analyzer,
		hotpath.Analyzer,
		faulterr.Analyzer,
		snapmeta.Analyzer,
	}
	out := make([]*lint.Analyzer, len(all))
	for i, a := range all {
		scoped := *a
		if paths, ok := scopes[a.Name]; ok {
			scoped.Match = matcher(paths)
		}
		out[i] = &scoped
	}
	return out
}

func matcher(paths []string) func(string) bool {
	return func(pkg string) bool {
		for _, p := range paths {
			if pkg == p {
				return true
			}
		}
		return false
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// go vet probes the tool with -flags and -V=full, then invokes it
	// once per package with a .cfg file.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags" || strings.HasSuffix(a, ".cfg") {
			return lint.VetMain(args, suite(), stdout, stderr)
		}
	}

	fs := flag.NewFlagSet("fplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	dir := fs.String("C", ".", "directory to resolve package patterns in (the module root)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "fplint: unknown analyzer %q (try -list)\n", name)
			return 2
		}
		analyzers = sel
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fplint: %v\n", err)
		return 2
	}
	diags, err := lint.RunProgram(prog, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "fplint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
