// Command fplint runs the repository's custom static-analysis suite
// (internal/lint): determinism, hotpath, faulterr, snapmeta,
// workershare, and allocbudget. It works standalone —
//
//	fplint ./...                    # whole-program run, full call-graph closure
//	fplint -analyzers hotpath ./...
//	fplint -format sarif ./...      # SARIF 2.1.0 on stdout
//	fplint -sarif out.sarif ./...   # text on stdout, SARIF to a file
//	fplint -fix ./...               # apply suggested fixes in place
//	fplint -baseline lint.baseline ./...
//	fplint -write-baseline lint.baseline ./...
//	fplint -list
//
// — and as a `go vet` plugin:
//
//	go build -o fplint ./cmd/fplint
//	go vet -vettool=$PWD/fplint ./...
//
// In vettool mode each package is analyzed alone, so the hotpath and
// workershare closures are package-local and allocbudget (which needs
// the whole program and the module on disk) is a no-op; CI's
// standalone step provides the full coverage. Standalone runs are also
// strict about suppressions: an //fplint:ignore that suppresses
// nothing is itself a finding (disable with -strict-ignores=false).
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpcache/internal/lint"
	"fpcache/internal/lint/allocbudget"
	"fpcache/internal/lint/determinism"
	"fpcache/internal/lint/faulterr"
	"fpcache/internal/lint/hotpath"
	"fpcache/internal/lint/snapmeta"
	"fpcache/internal/lint/workershare"
)

// scopes restricts analyzers to the packages whose contracts they
// enforce; analyzers without an entry run everywhere. The lists mirror
// DESIGN.md §12.
var scopes = map[string][]string{
	"determinism": {
		"fpcache/internal/system",
		"fpcache/internal/experiments",
		"fpcache/internal/sweep",
		"fpcache/internal/dcache",
		"fpcache/internal/stats",
		"fpcache/internal/control",
		"fpcache/internal/faultinject",
	},
	"faulterr": {
		"fpcache/internal/snap",
		"fpcache/internal/memtrace",
		"fpcache/internal/system",
		"fpcache/internal/control",
	},
	"workershare": {
		"fpcache/internal/sweep",
		"fpcache/internal/system",
		"fpcache/internal/experiments",
		"fpcache/internal/control",
		"fpcache/internal/faultinject",
		"fpcache/cmd/fpsim",
	},
}

// Suite returns the fplint analyzers with their production scopes
// applied. Shared with cmd/fplint's tests.
func suite() []*lint.Analyzer {
	all := []*lint.Analyzer{
		determinism.Analyzer,
		hotpath.Analyzer,
		faulterr.Analyzer,
		snapmeta.Analyzer,
		workershare.Analyzer,
		allocbudget.Analyzer,
	}
	out := make([]*lint.Analyzer, len(all))
	for i, a := range all {
		scoped := *a
		if paths, ok := scopes[a.Name]; ok {
			scoped.Match = matcher(paths)
		}
		out[i] = &scoped
	}
	return out
}

func matcher(paths []string) func(string) bool {
	return func(pkg string) bool {
		for _, p := range paths {
			if pkg == p {
				return true
			}
		}
		return false
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// go vet probes the tool with -flags and -V=full, then invokes it
	// once per package with a .cfg file.
	for _, a := range args {
		if a == "-V=full" || a == "--V=full" || a == "-flags" || a == "--flags" || strings.HasSuffix(a, ".cfg") {
			return lint.VetMain(args, suite(), stdout, stderr)
		}
	}

	fs := flag.NewFlagSet("fplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	only := fs.String("analyzers", "", "comma-separated subset of analyzers to run")
	dir := fs.String("C", ".", "directory to resolve package patterns in (the module root)")
	fix := fs.Bool("fix", false, "apply suggested fixes in place, then report what remains")
	baselinePath := fs.String("baseline", "", "suppress findings frozen in this baseline file")
	writeBaseline := fs.String("write-baseline", "", "freeze current findings to this baseline file and exit")
	format := fs.String("format", "text", "stdout format: text or sarif")
	sarifPath := fs.String("sarif", "", "also write a SARIF 2.1.0 report to this file")
	strictIgnores := fs.Bool("strict-ignores", true,
		"treat //fplint:ignore directives that suppress nothing as findings (standalone only)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := suite()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				sel = append(sel, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fmt.Fprintf(stderr, "fplint: unknown analyzer %q (try -list)\n", name)
			return 2
		}
		analyzers = sel
	}
	if *format != "text" && *format != "sarif" {
		fmt.Fprintf(stderr, "fplint: unknown -format %q (want text or sarif)\n", *format)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// LoadShared memoizes the `go list -export -deps -json` enumeration
	// and the module-wide type-check per (dir, patterns), so in-process
	// callers running several stages (driver + tests, or repeated
	// invocations in one CI step) pay for the load once.
	prog, err := lint.LoadShared(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fplint: %v\n", err)
		return 2
	}
	diags, audit, err := lint.RunProgramAudit(prog, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "fplint: %v\n", err)
		return 2
	}
	if *strictIgnores {
		enabled := map[string]bool{}
		for _, a := range analyzers {
			enabled[a.Name] = true
		}
		diags = append(diags, lint.StaleIgnores(audit, enabled)...)
		lint.SortDiagnostics(diags)
	}

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, prog.RootDir, diags); err != nil {
			fmt.Fprintf(stderr, "fplint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stdout, "fplint: froze %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		bl, err := lint.ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "fplint: %v\n", err)
			return 2
		}
		kept, suppressed, stale := bl.Filter(prog.RootDir, diags)
		diags = kept
		if suppressed > 0 {
			fmt.Fprintf(stderr, "fplint: %d finding(s) suppressed by %s\n", suppressed, *baselinePath)
		}
		for _, k := range stale {
			fmt.Fprintf(stderr, "fplint: stale baseline entry (matches nothing, delete it): %s\n",
				strings.ReplaceAll(k, "\t", " | "))
		}
	}

	if *fix {
		res, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(stderr, "fplint: %v\n", err)
			return 2
		}
		for _, f := range res.Files {
			fmt.Fprintf(stdout, "fplint: fixed %s\n", f)
		}
		if len(res.Files) > 0 {
			// The tree changed under the memoized load.
			lint.InvalidateShared(*dir)
		}
		fmt.Fprintf(stderr, "fplint: applied %d fix(es), %d finding(s) skipped (overlap)\n",
			len(res.Applied), len(res.Skipped))
		// Findings whose fix landed are resolved; what remains needs a
		// human.
		fixed := map[string]bool{}
		for _, d := range res.Applied {
			fixed[d.String()] = true
		}
		var rest []lint.Diagnostic
		for _, d := range diags {
			if !fixed[d.String()] {
				rest = append(rest, d)
			}
		}
		diags = rest
	}

	if *sarifPath != "" {
		f, err := os.Create(*sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "fplint: %v\n", err)
			return 2
		}
		werr := lint.WriteSARIF(f, prog.RootDir, analyzers, diags)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "fplint: writing %s: %v\n", *sarifPath, werr)
			return 2
		}
	}
	switch *format {
	case "sarif":
		if err := lint.WriteSARIF(stdout, prog.RootDir, analyzers, diags); err != nil {
			fmt.Fprintf(stderr, "fplint: %v\n", err)
			return 2
		}
	default:
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fplint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
