// Command fpsim runs (workload, design, capacity) simulations and
// prints their metrics — the quickest way to poke at configurations.
//
// Each of -workload, -design, and -capacity accepts a comma-separated
// list; fpsim sweeps the cross product over -j parallel workers
// (internal/sweep), printing reports in declaration order regardless
// of worker count. -design accepts canonical kinds and composite
// policy specs ("footprint+banshee", "page+blockrow"); -list prints
// every valid name.
//
// Functional runs can be recorded and replayed: -trace-out records
// the reference stream (warmup included) to a binary trace file while
// simulating, and -trace-in replays such a file through the design
// instead of the synthetic generator — bit-identical results, no
// generator cost.
//
// Warm state can be checkpointed and restored (§5.4's warmed
// checkpoints): -checkpoint writes the post-warmup snapshot to a file
// before measuring, and -restore loads one instead of simulating
// warmup — the measured result is byte-identical either way.
//
// A long recorded trace can be simulated interval-parallel
// (DESIGN.md §11): -intervals splits the measured region into
// chunk-aligned intervals that run concurrently on -j workers and
// merge into the exact serial result; -interval-cache persists
// boundary checkpoints so runs after the first parallelize fully;
// -sample-every measures only every k-th interval (with an
// -interval-warmup cold pre-roll) and reports confidence intervals.
// -skip fast-forwards a replay into the middle of a recording via the
// chunk index, without decoding the skipped prefix.
//
// Partitioned designs (memcache:/memlow: specs) can resize their
// memory/cache split while measuring: -resize replays a static
// fraction schedule on a -resize-every cadence, and -adaptive replaces
// the schedule with the online controller (DESIGN.md §13), which
// scores a telemetry window every epoch and hill-climbs the split —
// deterministically, so results stay byte-identical at any -j and
// across run modes.
//
// Usage:
//
//	fpsim -workload web-search -design footprint -capacity 256
//	fpsim -design page -mode timing -refs 250000
//	fpsim -design page,footprint+banshee -capacity 64,256 -j 4
//	fpsim -design footprint -trace-out run.trace
//	fpsim -design footprint+hybrid -trace-in run.trace
//	fpsim -design footprint -checkpoint warm.snap
//	fpsim -design footprint -restore warm.snap
//	fpsim -design footprint -trace-in run.trace -skip 500000
//	fpsim -design footprint -trace-in run.trace -intervals 8 -j 4
//	fpsim -design footprint -trace-in run.trace -intervals 8 -interval-cache .ckpt
//	fpsim -design footprint -trace-in run.trace -intervals 16 -sample-every 4
//	fpsim -design footprint+memcache:50 -resize 0.25,0.75 -resize-every 250000
//	fpsim -design subblock+memlow:0 -adaptive
//	fpsim -max-retries 2 -point-timeout 5m
//	fpsim -fault-spec 'trace-read:flipbit:offset=64' -trace-in run.trace
//	fpsim -list
//
// The fault-tolerance flags switch the sweep to the tolerant executor
// (DESIGN.md §10): point panics are isolated, retryable faults retry
// with exponential backoff, -point-timeout bounds each attempt, and
// faulted points are reported on stderr (exit status 1 if any failed
// for good) while surviving points still print. -fault-spec injects
// scheduled faults — point failures and trace-read stream corruption —
// to exercise that machinery.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"fpcache"
	"fpcache/internal/faultinject"
	"fpcache/internal/memtrace"
	"fpcache/internal/sweep"
	"fpcache/internal/system"
)

func main() {
	var (
		workload  = flag.String("workload", fpcache.WebSearch, "workload name(s), comma-separated")
		design    = flag.String("design", string(fpcache.Footprint), "cache design(s) or composite policy spec(s), comma-separated")
		capMB     = flag.String("capacity", "256", "paper-scale capacity list in MB, comma-separated")
		scale     = flag.Float64("scale", fpcache.DefaultScale, "capacity scale factor")
		refs      = flag.Int("refs", 1_000_000, "measured references")
		warmup    = flag.Int("warmup", 0, "warmup references (default: same as -refs)")
		seed      = flag.Int64("seed", 1, "random seed")
		mode      = flag.String("mode", "functional", "simulation mode: functional or timing")
		resize    = flag.String("resize", "", "comma-separated memory fractions cycled by the partition resize driver (partitioned designs, e.g. 0.25,0.75)")
		resizeN   = flag.Int("resize-every", 0, "resize cadence in measured references (requires -resize or -adaptive)")
		adaptive  = flag.Bool("adaptive", false, "adaptive partition resizing: an online controller scores a telemetry window every epoch and hill-climbs the split (partitioned designs; -resize-every sets the epoch length)")
		workers   = flag.Int("j", 0, "parallel simulation points: 0 = all cores, 1 = serial")
		traceOut  = flag.String("trace-out", "", "record the reference stream to this trace file (functional mode, single point)")
		traceIn   = flag.String("trace-in", "", "replay a recorded trace file instead of the generator (functional mode); '-' reads the trace from stdin")
		skip      = flag.Int("skip", 0, "fast-forward N trace records before the run via the chunk index (requires a seekable -trace-in file)")
		intervals = flag.Int("intervals", 0, "split the measured region into N chunk-aligned intervals and simulate them in parallel on -j workers (requires a seekable -trace-in file, single point)")
		intCache  = flag.String("interval-cache", "", "content-keyed checkpoint directory for interval boundary states: a cold run populates it, later runs restore and parallelize (requires -intervals)")
		sampleK   = flag.Int("sample-every", 0, "sampled mode: measure every k-th interval after a cold pre-roll instead of chaining exact state (requires -intervals)")
		sampleW   = flag.Int("interval-warmup", 0, "cold pre-roll records before each sampled interval (default: the interval's own length; requires -sample-every)")
		checkpt   = flag.String("checkpoint", "", "write the post-warmup warm-state snapshot to this file, then measure (functional mode, single point)")
		restore   = flag.String("restore", "", "restore the warm state from this snapshot instead of simulating warmup (functional mode, single point)")
		retries   = flag.Int("max-retries", 0, "retry a simulation point up to N times on retryable faults (transient I/O), with exponential backoff")
		timeout   = flag.Duration("point-timeout", 0, "per-attempt deadline for each simulation point (0 = none)")
		faultSpec = flag.String("fault-spec", "", "inject scheduled faults, e.g. 'point:transient:fails=1;trace-read:flipbit:offset=64' (testing the fault tolerance itself)")
		list      = flag.Bool("list", false, "list workload, design, and policy names and exit")
	)
	flag.Parse()

	if *list {
		printLists(os.Stdout)
		return
	}

	if *mode != "functional" && *mode != "timing" {
		fail(fmt.Errorf("unknown mode %q (functional or timing)", *mode))
	}
	if (*traceOut != "" || *traceIn != "") && *mode != "functional" && *intervals <= 0 {
		fail(fmt.Errorf("-trace-out/-trace-in require -mode functional (or -intervals, which times each interval from the replayed trace)"))
	}
	if *traceOut != "" && *traceIn != "" {
		fail(fmt.Errorf("-trace-out and -trace-in are mutually exclusive"))
	}
	if (*checkpt != "" || *restore != "") && *mode != "functional" {
		fail(fmt.Errorf("-checkpoint/-restore require -mode functional"))
	}
	if *checkpt != "" && *restore != "" {
		fail(fmt.Errorf("-checkpoint and -restore are mutually exclusive"))
	}
	if (*checkpt != "" || *restore != "") && *traceOut != "" {
		fail(fmt.Errorf("-checkpoint/-restore do not combine with -trace-out"))
	}
	if *skip > 0 {
		switch {
		case *traceIn == "":
			fail(fmt.Errorf("-skip fast-forwards a recorded trace; it requires -trace-in"))
		case *traceIn == "-":
			fail(fmt.Errorf("-skip needs a seekable trace file to fast-forward via the chunk index; stdin is not seekable (replay from a file instead)"))
		case *checkpt != "" || *restore != "":
			fail(fmt.Errorf("-skip does not combine with -checkpoint/-restore (a restore already fast-forwards its warmup)"))
		}
	}
	if *intervals > 0 {
		switch {
		case *traceIn == "":
			fail(fmt.Errorf("-intervals simulates a recorded trace; it requires -trace-in"))
		case *traceIn == "-":
			fail(fmt.Errorf("-intervals needs a seekable trace file (each interval reads its own section); stdin is not seekable"))
		case *traceOut != "" || *checkpt != "" || *restore != "":
			fail(fmt.Errorf("-intervals does not combine with -trace-out/-checkpoint/-restore (use -interval-cache for boundary checkpoints)"))
		case *skip > 0:
			fail(fmt.Errorf("-intervals does not combine with -skip"))
		case *faultSpec != "":
			fail(fmt.Errorf("-intervals does not combine with -fault-spec"))
		}
	} else if *intCache != "" || *sampleK != 0 || *sampleW != 0 {
		fail(fmt.Errorf("-interval-cache/-sample-every/-interval-warmup require -intervals"))
	}

	var inj *faultinject.Injector
	if *faultSpec != "" {
		var err error
		if inj, err = faultinject.Parse(*faultSpec); err != nil {
			fail(err)
		}
	}

	var fractions []float64
	for _, f := range splitList(*resize) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v < 0 || v > 1 {
			fail(fmt.Errorf("bad -resize fraction %q (want 0..1)", f))
		}
		fractions = append(fractions, v)
	}
	if *adaptive {
		if len(fractions) > 0 {
			fail(fmt.Errorf("-adaptive replaces the static -resize schedule; set one or the other"))
		}
	} else if (len(fractions) > 0) != (*resizeN > 0) {
		fail(fmt.Errorf("-resize and -resize-every must be set together"))
	}

	workloads := splitList(*workload)
	designs := splitList(*design)
	for _, d := range designs {
		// Validate specs up front so a typo fails before the sweep
		// starts, not at some point mid-run.
		if _, err := system.NormalizeKind(d); err != nil {
			fail(err)
		}
	}
	var capacities []int
	for _, c := range splitList(*capMB) {
		mb, err := strconv.Atoi(c)
		if err != nil {
			fail(fmt.Errorf("bad capacity %q: %v", c, err))
		}
		capacities = append(capacities, mb)
	}

	// Cross product in declaration order: workload x design x capacity.
	type point struct {
		workload string
		design   string
		capMB    int
	}
	var pts []point
	for _, wl := range workloads {
		for _, d := range designs {
			for _, mb := range capacities {
				pts = append(pts, point{wl, d, mb})
			}
		}
	}
	if len(pts) == 0 {
		fail(fmt.Errorf("no simulation points: -workload, -design, and -capacity must each name at least one value"))
	}
	if *traceOut != "" && len(pts) > 1 {
		fail(fmt.Errorf("-trace-out records one run; got %d simulation points", len(pts)))
	}
	if (*checkpt != "" || *restore != "") && len(pts) > 1 {
		fail(fmt.Errorf("-checkpoint/-restore address one run's warm state; got %d simulation points", len(pts)))
	}
	if *intervals > 0 {
		if len(pts) > 1 {
			fail(fmt.Errorf("-intervals parallelizes one run over its intervals; got %d simulation points (use -j without -intervals to sweep points)", len(pts)))
		}
		pol := sweep.Policy{Timeout: *timeout, Seed: *seed}
		if *retries > 0 {
			pol.MaxAttempts = *retries + 1
			pol.Backoff = 100 * time.Millisecond
		}
		cfg := fpcache.Config{
			Workload:         pts[0].workload,
			Design:           fpcache.DesignKind(pts[0].design),
			PaperCapacityMB:  pts[0].capMB,
			Scale:            *scale,
			Refs:             *refs,
			WarmupRefs:       *warmup,
			Seed:             *seed,
			ResizePeriodRefs: *resizeN,
			ResizeFractions:  fractions,
			AdaptiveResize:   *adaptive,
		}
		if err := runIntervalPoint(os.Stdout, cfg, *mode, *traceIn, *intCache, *intervals, *sampleK, *sampleW, *workers, pol); err != nil {
			fail(err)
		}
		return
	}

	job := func(i int) (string, error) {
		p := pts[i]
		cfg := fpcache.Config{
			Workload:         p.workload,
			Design:           fpcache.DesignKind(p.design),
			PaperCapacityMB:  p.capMB,
			Scale:            *scale,
			Refs:             *refs,
			WarmupRefs:       *warmup,
			Seed:             *seed,
			ResizePeriodRefs: *resizeN,
			ResizeFractions:  fractions,
			AdaptiveResize:   *adaptive,
		}
		var buf bytes.Buffer
		if *mode == "functional" {
			var res fpcache.FunctionalResult
			var err error
			if *checkpt != "" || *restore != "" {
				res, err = runWarmStatePoint(cfg, *traceIn, *checkpt, *restore, inj)
			} else {
				res, err = runFunctionalPoint(cfg, *traceIn, *traceOut, *skip, inj)
			}
			if err != nil {
				return "", err
			}
			printFunctional(&buf, cfg, res)
		} else {
			res, err := fpcache.RunTiming(cfg)
			if err != nil {
				return "", err
			}
			printTiming(&buf, cfg, res)
		}
		return buf.String(), nil
	}

	var reports []string
	failed := false
	if inj.Active() || *retries > 0 || *timeout > 0 {
		// Tolerant sweep: isolate, retry, and report instead of aborting
		// the whole cross product on the first faulted point.
		wrapped := job
		if inj.Active() {
			seq := inj.NextSweep()
			wrapped = func(i int) (string, error) {
				if err := inj.Point(seq, i); err != nil {
					return "", err
				}
				return job(i)
			}
		}
		pol := sweep.Policy{Timeout: *timeout, Seed: *seed}
		if *retries > 0 {
			pol.MaxAttempts = *retries + 1
			pol.Backoff = 100 * time.Millisecond
		}
		var pointReports []sweep.PointReport
		reports, pointReports = sweep.MapTolerant(*workers, len(pts), pol, wrapped)
		for _, r := range pointReports {
			p := pts[r.Index]
			if r.Err != nil {
				failed = true
				fmt.Fprintf(os.Stderr, "fpsim: %s/%s/%dMB failed after %d attempt(s) [%s]: %v\n",
					p.workload, p.design, p.capMB, r.Attempts, r.Class, r.Err)
			} else {
				fmt.Fprintf(os.Stderr, "fpsim: %s/%s/%dMB recovered after %d attempts\n",
					p.workload, p.design, p.capMB, r.Attempts)
			}
		}
	} else {
		var err error
		reports, err = sweep.Map(*workers, len(pts), job)
		if err != nil {
			fail(err)
		}
	}
	first := true
	for _, rep := range reports {
		if rep == "" { // a faulted point's slot; already reported above
			continue
		}
		if !first {
			fmt.Println()
		}
		first = false
		fmt.Print(rep)
	}
	if failed {
		os.Exit(1)
	}
}

// teeSource passes records through while writing them to a trace
// file.
type teeSource struct {
	src memtrace.Source
	w   *memtrace.Writer
	err error
}

// Next implements memtrace.Source.
func (t *teeSource) Next() (memtrace.Record, bool) {
	rec, ok := t.src.Next()
	if !ok {
		return rec, false
	}
	if t.err == nil {
		t.err = t.w.Write(rec)
	}
	return rec, true
}

// runFunctionalPoint runs one functional simulation, optionally
// replaying its reference stream from a trace file (traceIn, "-" for
// stdin) or recording it to one (traceOut). A recorded file contains
// the whole stream — warmup prefix included — so a replay with the
// same -warmup/-refs split reproduces the run bit-identically. A
// positive skip fast-forwards that many records before the run via the
// seekable reader's chunk index (no decode of the skipped prefix), so
// one long recording serves runs over any of its regions.
func runFunctionalPoint(cfg fpcache.Config, traceIn, traceOut string, skip int, inj *faultinject.Injector) (fpcache.FunctionalResult, error) {
	switch {
	case traceIn != "":
		var src memtrace.Source
		var srcErr func() error
		if traceIn == "-" {
			r := memtrace.NewReader(inj.Reader(faultinject.SiteTraceRead, os.Stdin))
			src, srcErr = r, r.Err
		} else {
			f, err := os.Open(traceIn)
			if err != nil {
				return fpcache.FunctionalResult{}, err
			}
			defer f.Close()
			if skip > 0 {
				fr, err := memtrace.NewFileReader(inj.ReadSeeker(faultinject.SiteTraceRead, f))
				if err != nil {
					return fpcache.FunctionalResult{}, err
				}
				skipped, err := fr.SkipRecords(skip)
				if err != nil {
					return fpcache.FunctionalResult{}, err
				}
				if skipped < skip {
					return fpcache.FunctionalResult{}, fmt.Errorf("trace %s holds only %d of the %d records -skip requested", traceIn, skipped, skip)
				}
				src, srcErr = fr, fr.Err
			} else {
				r := memtrace.NewReader(inj.Reader(faultinject.SiteTraceRead, f))
				src, srcErr = r, r.Err
			}
		}
		res, err := fpcache.RunFunctionalSource(cfg, src)
		if err == nil {
			err = srcErr()
		}
		if err == nil && res.Refs < uint64(cfg.Refs) {
			// A short trace silently truncates the run; surface it so a
			// result never masquerades as a longer measurement.
			err = fmt.Errorf("trace %s exhausted after %d measured references (want %d; check -warmup/-refs against the recording)",
				traceIn, res.Refs, cfg.Refs)
		}
		return res, err
	case traceOut != "":
		src, _, err := fpcache.NewTrace(cfg)
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
		f, err := os.Create(traceOut)
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
		tee := &teeSource{src: src, w: memtrace.NewWriter(f)}
		res, err := fpcache.RunFunctionalSource(cfg, tee)
		if err == nil {
			err = tee.err
		}
		if ferr := tee.w.Flush(); err == nil {
			err = ferr
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return res, err
	default:
		return fpcache.RunFunctional(cfg)
	}
}

// effectiveWarmup mirrors the facade's Config.WarmupRefs defaulting:
// -1 disables warmup, 0 defaults to the measured reference count.
func effectiveWarmup(cfg fpcache.Config) int {
	switch {
	case cfg.WarmupRefs < 0:
		return 0
	case cfg.WarmupRefs == 0:
		return cfg.Refs
	default:
		return cfg.WarmupRefs
	}
}

// runWarmStatePoint runs one functional simulation through the
// warm-state checkpoint machinery: with restore, the design's warm
// state loads from a snapshot and the warmup prefix is skipped (not
// simulated — seeked past via the chunk index when the trace file is
// indexed); with checkpoint, the state warms normally and the
// snapshot is written before measurement. Either way the measured
// result is byte-identical to an uninterrupted run. The snapshot
// stores the run identity (workload, seed, scale, warmup), so a
// restore under different flags fails instead of silently measuring a
// different run.
func runWarmStatePoint(cfg fpcache.Config, traceIn, checkpoint, restore string, inj *faultinject.Injector) (fpcache.FunctionalResult, error) {
	design, err := fpcache.NewDesign(cfg)
	if err != nil {
		return fpcache.FunctionalResult{}, err
	}
	var src memtrace.Source
	var srcErr func() error
	if traceIn != "" {
		f, err := os.Open(traceIn)
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
		defer f.Close()
		// The seekable reader lets a restore fast-forward warmup via
		// the v2 chunk index (or v1 arithmetic) instead of decoding it.
		r, err := memtrace.NewFileReader(inj.ReadSeeker(faultinject.SiteTraceRead, f))
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
		src, srcErr = r, r.Err
	} else {
		src, _, err = fpcache.NewTrace(cfg)
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
	}

	state := system.NewSimState(design)
	// The resize policy is part of the simulation state (a stateful
	// policy's window snapshots with it), so it installs before the
	// restore/warm branch, not after.
	state.SetPolicy(cfg.ResizePolicy())
	warmup := effectiveWarmup(cfg)
	meta := system.SnapshotMeta{Workload: cfg.Workload, Seed: cfg.Seed, Scale: cfg.Scale, WarmupRefs: warmup}
	if restore != "" {
		f, err := os.Open(restore)
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
		rerr := state.Restore(f, meta)
		f.Close()
		if rerr != nil {
			return fpcache.FunctionalResult{}, rerr
		}
		if skipped := memtrace.Skip(src, warmup); skipped != warmup {
			return fpcache.FunctionalResult{}, fmt.Errorf("trace exhausted after %d of %d warmup records", skipped, warmup)
		}
	} else {
		if err := state.Warm(src, warmup); err != nil {
			return fpcache.FunctionalResult{}, err
		}
		f, err := os.Create(checkpoint)
		if err != nil {
			return fpcache.FunctionalResult{}, err
		}
		serr := state.Snapshot(f, meta)
		if cerr := f.Close(); serr == nil {
			serr = cerr
		}
		if serr != nil {
			return fpcache.FunctionalResult{}, serr
		}
	}

	res, err := state.Measure(src, cfg.Refs)
	if err != nil {
		return res, err
	}
	if srcErr != nil {
		if err := srcErr(); err != nil {
			return res, err
		}
	}
	if res.Refs < uint64(cfg.Refs) {
		return res, fmt.Errorf("trace exhausted after %d measured references (want %d)", res.Refs, cfg.Refs)
	}
	return res, nil
}

// runIntervalPoint runs one trace through the interval-parallel
// runner (DESIGN.md §11): the measured region splits into chunk-aligned
// intervals that simulate concurrently on -j workers and merge into the
// exact serial result — the standard report block prints unchanged, so
// output can be diffed against a serial replay, followed by
// "interval"-prefixed plan lines. With -interval-cache, boundary
// checkpoints persist: the first (cold) run executes serially while
// storing them, and later runs restore and parallelize. With
// -sample-every, only every k-th interval is measured after a cold
// pre-roll, and the report carries the hit-ratio confidence interval
// that approximation costs.
func runIntervalPoint(w io.Writer, cfg fpcache.Config, mode, traceIn, cacheDir string, intervals, sampleK, sampleW, workers int, pol sweep.Policy) error {
	f, err := os.Open(traceIn)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := memtrace.NewFileReader(f)
	if err != nil {
		return err
	}
	opt := system.IntervalOptions{
		Spec: system.DesignSpec{
			Kind:            string(cfg.Design),
			PaperCapacityMB: cfg.PaperCapacityMB,
			Scale:           cfg.Scale,
		},
		Workload:   cfg.Workload,
		Seed:       cfg.Seed,
		Scale:      cfg.Scale,
		WarmupRefs: effectiveWarmup(cfg),
		MaxRefs:    cfg.Refs,
		Intervals:  intervals, Workers: workers,
		SampleEvery: sampleK, SampleWarmup: sampleW,
		Retry: pol,
	}
	switch {
	case cfg.AdaptiveResize:
		ac := cfg.AdaptiveConfig()
		opt.Adaptive = &ac
	case cfg.ResizePeriodRefs > 0 && len(cfg.ResizeFractions) > 0:
		opt.Plan = &system.ResizePlan{PeriodRefs: cfg.ResizePeriodRefs, Fractions: cfg.ResizeFractions}
	}
	if cacheDir != "" {
		cache, err := system.NewWarmCache(cacheDir)
		if err != nil {
			return err
		}
		opt.Cache = cache
	}
	if mode == "timing" {
		// The timing engine needs the workload's core count and MLP; the
		// replayed records themselves carry everything else.
		_, prof, err := fpcache.NewTrace(cfg)
		if err != nil {
			return err
		}
		opt.Timing = &system.TimingConfig{Cores: prof.Cores, MLP: prof.MLP}
	}
	rep, err := system.RunIntervals(tr, opt)
	if err != nil {
		return err
	}
	if rep.Timing != nil {
		printTiming(w, cfg, *rep.Timing)
	} else {
		printFunctional(w, cfg, rep.Functional)
	}
	fmt.Fprintf(w, "interval plan:       %d interval(s) in %d segment(s), checkpoints restored %d stored %d\n",
		len(rep.Intervals), rep.Segments, rep.Restored, rep.Stored)
	if rep.Sampled {
		fmt.Fprintf(w, "interval sampling:   measured %.0f%% of records, hit ratio %.4f ± %.4f (95%% CI)\n",
			100*rep.MeasuredFraction, rep.HitRatioMean, rep.HitRatioCI95)
	}
	return nil
}

// printLists writes the valid workload, design, and policy names.
func printLists(w io.Writer) {
	fmt.Fprintln(w, "workloads:")
	for _, n := range fpcache.Workloads() {
		fmt.Fprintf(w, "  %s\n", n)
	}
	fmt.Fprintln(w, "designs:")
	for _, d := range fpcache.Designs() {
		fmt.Fprintf(w, "  %s\n", d)
	}
	fmt.Fprintln(w, "hybrid designs:")
	for _, d := range fpcache.HybridDesigns() {
		fmt.Fprintf(w, "  %s\n", d)
	}
	p := fpcache.Policies()
	fmt.Fprintln(w, "policies (compose with '+', e.g. footprint+banshee):")
	fmt.Fprintf(w, "  alloc:     %s\n", strings.Join(p.Alloc, " "))
	fmt.Fprintf(w, "  mapping:   %s\n", strings.Join(p.Mapping, " "))
	fmt.Fprintf(w, "  fill:      %s\n", strings.Join(p.Fill, " "))
	fmt.Fprintf(w, "  partition: %s (with a memory share, e.g. memcache:50)\n", strings.Join(p.Partition, " "))
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func printFunctional(w io.Writer, cfg fpcache.Config, res fpcache.FunctionalResult) {
	fmt.Fprintf(w, "workload:            %s\n", cfg.Workload)
	fmt.Fprintf(w, "design:              %s @ %dMB (scale %.4g)\n", res.Design, cfg.PaperCapacityMB, cfg.Scale)
	fmt.Fprintf(w, "references:          %d\n", res.Refs)
	fmt.Fprintf(w, "miss ratio:          %.2f%%\n", 100*res.MissRatio())
	fmt.Fprintf(w, "hit ratio:           %.2f%%\n", 100*res.Counters.HitRatio())
	fmt.Fprintf(w, "bypasses:            %d\n", res.Counters.Bypasses)
	fmt.Fprintf(w, "off-chip bytes/ref:  %.1f\n", res.OffChipBytesPerRef())
	fmt.Fprintf(w, "off-chip row hits:   %.1f%%\n", 100*res.OffChip.RowHitRatio())
	fmt.Fprintf(w, "stacked row hits:    %.1f%%\n", 100*res.Stacked.RowHitRatio())
	if fp := res.Footprint; fp != nil {
		fmt.Fprintf(w, "predictor coverage:  %.1f%%\n", 100*fp.Coverage())
		fmt.Fprintf(w, "overprediction:      %.1f%%\n", 100*fp.Overprediction())
		fmt.Fprintf(w, "underpred misses:    %d\n", fp.UnderpredMisses)
		fmt.Fprintf(w, "singleton bypasses:  %d (corrections %d)\n", fp.SingletonBypasses, fp.STCorrections)
	}
	printPartition(w, res.Partition)
}

// printPartition reports the stacked split and resize activity of a
// partitioned design; nil (unpartitioned) prints nothing.
func printPartition(w io.Writer, p *fpcache.PartitionStats) {
	if p == nil {
		return
	}
	total := p.MemPages + p.CachePages
	fmt.Fprintf(w, "stacked split:       %d/%d pages memory (%.0f%%)\n", p.MemPages, total, 100*float64(p.MemPages)/float64(total))
	fmt.Fprintf(w, "memory-region hits:  %d\n", p.MemHits)
	if p.Resizes > 0 {
		fmt.Fprintf(w, "resizes:             %d (flushed %d clean + %d dirty, purged %d, moved %d, displaced %d)\n",
			p.Resizes, p.FlushedClean, p.FlushedDirty, p.PurgedPages, p.MovedPages, p.DisplacedPages)
	}
}

func printTiming(w io.Writer, cfg fpcache.Config, res fpcache.TimingResult) {
	fmt.Fprintf(w, "workload:            %s\n", cfg.Workload)
	fmt.Fprintf(w, "design:              %s @ %dMB (scale %.4g)\n", res.Design, cfg.PaperCapacityMB, cfg.Scale)
	fmt.Fprintf(w, "references:          %d\n", res.Refs)
	fmt.Fprintf(w, "instructions:        %d\n", res.Instructions)
	fmt.Fprintf(w, "cycles:              %d\n", res.Cycles)
	fmt.Fprintf(w, "aggregate IPC:       %.3f\n", res.AggIPC())
	fmt.Fprintf(w, "avg read latency:    %.0f cycles\n", res.AvgReadLatency)
	fmt.Fprintf(w, "read latency p50:    %.0f cycles\n", res.ReadLatencyP50)
	fmt.Fprintf(w, "read latency p90:    %.0f cycles\n", res.ReadLatencyP90)
	fmt.Fprintf(w, "read latency p99:    %.0f cycles\n", res.ReadLatencyP99)
	fmt.Fprintf(w, "miss ratio:          %.2f%%\n", 100*res.Counters.MissRatio())
	off := res.OffChipEnergyPerInstr()
	stk := res.StackedEnergyPerInstr()
	fmt.Fprintf(w, "off-chip energy/ins: %.1f pJ (act %.1f + burst %.1f)\n", off.TotalPJ(), off.ActPrePJ, off.BurstPJ)
	fmt.Fprintf(w, "stacked energy/ins:  %.1f pJ (act %.1f + burst %.1f)\n", stk.TotalPJ(), stk.ActPrePJ, stk.BurstPJ)
	printPartition(w, res.Partition)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsim:", err)
	os.Exit(1)
}
