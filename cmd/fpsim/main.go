// Command fpsim runs one (workload, design, capacity) simulation and
// prints its metrics — the quickest way to poke at a single
// configuration.
//
// Usage:
//
//	fpsim -workload web-search -design footprint -capacity 256
//	fpsim -design page -mode timing -refs 250000
package main

import (
	"flag"
	"fmt"
	"os"

	"fpcache"
)

func main() {
	var (
		workload = flag.String("workload", fpcache.WebSearch, "workload name")
		design   = flag.String("design", string(fpcache.Footprint), "cache design")
		capMB    = flag.Int("capacity", 256, "paper-scale capacity in MB")
		scale    = flag.Float64("scale", fpcache.DefaultScale, "capacity scale factor")
		refs     = flag.Int("refs", 1_000_000, "measured references")
		warmup   = flag.Int("warmup", 0, "warmup references (default: same as -refs)")
		seed     = flag.Int64("seed", 1, "random seed")
		mode     = flag.String("mode", "functional", "simulation mode: functional or timing")
	)
	flag.Parse()

	cfg := fpcache.Config{
		Workload:        *workload,
		Design:          fpcache.DesignKind(*design),
		PaperCapacityMB: *capMB,
		Scale:           *scale,
		Refs:            *refs,
		WarmupRefs:      *warmup,
		Seed:            *seed,
	}

	switch *mode {
	case "functional":
		res, err := fpcache.RunFunctional(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("workload:            %s\n", *workload)
		fmt.Printf("design:              %s @ %dMB (scale %.4g)\n", res.Design, *capMB, *scale)
		fmt.Printf("references:          %d\n", res.Refs)
		fmt.Printf("miss ratio:          %.2f%%\n", 100*res.MissRatio())
		fmt.Printf("hit ratio:           %.2f%%\n", 100*res.Counters.HitRatio())
		fmt.Printf("bypasses:            %d\n", res.Counters.Bypasses)
		fmt.Printf("off-chip bytes/ref:  %.1f\n", res.OffChipBytesPerRef())
		fmt.Printf("off-chip row hits:   %.1f%%\n", 100*res.OffChip.RowHitRatio())
		fmt.Printf("stacked row hits:    %.1f%%\n", 100*res.Stacked.RowHitRatio())
		if fp := res.Footprint; fp != nil {
			fmt.Printf("predictor coverage:  %.1f%%\n", 100*fp.Coverage())
			fmt.Printf("overprediction:      %.1f%%\n", 100*fp.Overprediction())
			fmt.Printf("underpred misses:    %d\n", fp.UnderpredMisses)
			fmt.Printf("singleton bypasses:  %d (corrections %d)\n", fp.SingletonBypasses, fp.STCorrections)
		}
	case "timing":
		res, err := fpcache.RunTiming(cfg)
		if err != nil {
			fail(err)
		}
		fmt.Printf("workload:            %s\n", *workload)
		fmt.Printf("design:              %s @ %dMB (scale %.4g)\n", res.Design, *capMB, *scale)
		fmt.Printf("references:          %d\n", res.Refs)
		fmt.Printf("instructions:        %d\n", res.Instructions)
		fmt.Printf("cycles:              %d\n", res.Cycles)
		fmt.Printf("aggregate IPC:       %.3f\n", res.AggIPC())
		fmt.Printf("avg read latency:    %.0f cycles\n", res.AvgReadLatency)
		fmt.Printf("miss ratio:          %.2f%%\n", 100*res.Counters.MissRatio())
		off := res.OffChipEnergyPerInstr()
		stk := res.StackedEnergyPerInstr()
		fmt.Printf("off-chip energy/ins: %.1f pJ (act %.1f + burst %.1f)\n", off.TotalPJ(), off.ActPrePJ, off.BurstPJ)
		fmt.Printf("stacked energy/ins:  %.1f pJ (act %.1f + burst %.1f)\n", stk.TotalPJ(), stk.ActPrePJ, stk.BurstPJ)
	default:
		fail(fmt.Errorf("unknown mode %q (functional or timing)", *mode))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsim:", err)
	os.Exit(1)
}
