// Command fpsim runs (workload, design, capacity) simulations and
// prints their metrics — the quickest way to poke at configurations.
//
// Each of -workload, -design, and -capacity accepts a comma-separated
// list; fpsim sweeps the cross product over -j parallel workers
// (internal/sweep), printing reports in declaration order regardless
// of worker count.
//
// Usage:
//
//	fpsim -workload web-search -design footprint -capacity 256
//	fpsim -design page -mode timing -refs 250000
//	fpsim -design page,footprint,block -capacity 64,256 -j 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"fpcache"
	"fpcache/internal/sweep"
)

func main() {
	var (
		workload = flag.String("workload", fpcache.WebSearch, "workload name(s), comma-separated")
		design   = flag.String("design", string(fpcache.Footprint), "cache design(s), comma-separated")
		capMB    = flag.String("capacity", "256", "paper-scale capacity list in MB, comma-separated")
		scale    = flag.Float64("scale", fpcache.DefaultScale, "capacity scale factor")
		refs     = flag.Int("refs", 1_000_000, "measured references")
		warmup   = flag.Int("warmup", 0, "warmup references (default: same as -refs)")
		seed     = flag.Int64("seed", 1, "random seed")
		mode     = flag.String("mode", "functional", "simulation mode: functional or timing")
		workers  = flag.Int("j", 0, "parallel simulation points: 0 = all cores, 1 = serial")
	)
	flag.Parse()

	if *mode != "functional" && *mode != "timing" {
		fail(fmt.Errorf("unknown mode %q (functional or timing)", *mode))
	}

	workloads := splitList(*workload)
	designs := splitList(*design)
	var capacities []int
	for _, c := range splitList(*capMB) {
		mb, err := strconv.Atoi(c)
		if err != nil {
			fail(fmt.Errorf("bad capacity %q: %v", c, err))
		}
		capacities = append(capacities, mb)
	}

	// Cross product in declaration order: workload x design x capacity.
	type point struct {
		workload string
		design   string
		capMB    int
	}
	var pts []point
	for _, wl := range workloads {
		for _, d := range designs {
			for _, mb := range capacities {
				pts = append(pts, point{wl, d, mb})
			}
		}
	}
	if len(pts) == 0 {
		fail(fmt.Errorf("no simulation points: -workload, -design, and -capacity must each name at least one value"))
	}

	reports, err := sweep.Map(*workers, len(pts), func(i int) (string, error) {
		p := pts[i]
		cfg := fpcache.Config{
			Workload:        p.workload,
			Design:          fpcache.DesignKind(p.design),
			PaperCapacityMB: p.capMB,
			Scale:           *scale,
			Refs:            *refs,
			WarmupRefs:      *warmup,
			Seed:            *seed,
		}
		var buf bytes.Buffer
		if *mode == "functional" {
			res, err := fpcache.RunFunctional(cfg)
			if err != nil {
				return "", err
			}
			printFunctional(&buf, cfg, res)
		} else {
			res, err := fpcache.RunTiming(cfg)
			if err != nil {
				return "", err
			}
			printTiming(&buf, cfg, res)
		}
		return buf.String(), nil
	})
	if err != nil {
		fail(err)
	}
	for i, rep := range reports {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(rep)
	}
}

func splitList(s string) []string {
	var out []string
	for _, v := range strings.Split(s, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

func printFunctional(w io.Writer, cfg fpcache.Config, res fpcache.FunctionalResult) {
	fmt.Fprintf(w, "workload:            %s\n", cfg.Workload)
	fmt.Fprintf(w, "design:              %s @ %dMB (scale %.4g)\n", res.Design, cfg.PaperCapacityMB, cfg.Scale)
	fmt.Fprintf(w, "references:          %d\n", res.Refs)
	fmt.Fprintf(w, "miss ratio:          %.2f%%\n", 100*res.MissRatio())
	fmt.Fprintf(w, "hit ratio:           %.2f%%\n", 100*res.Counters.HitRatio())
	fmt.Fprintf(w, "bypasses:            %d\n", res.Counters.Bypasses)
	fmt.Fprintf(w, "off-chip bytes/ref:  %.1f\n", res.OffChipBytesPerRef())
	fmt.Fprintf(w, "off-chip row hits:   %.1f%%\n", 100*res.OffChip.RowHitRatio())
	fmt.Fprintf(w, "stacked row hits:    %.1f%%\n", 100*res.Stacked.RowHitRatio())
	if fp := res.Footprint; fp != nil {
		fmt.Fprintf(w, "predictor coverage:  %.1f%%\n", 100*fp.Coverage())
		fmt.Fprintf(w, "overprediction:      %.1f%%\n", 100*fp.Overprediction())
		fmt.Fprintf(w, "underpred misses:    %d\n", fp.UnderpredMisses)
		fmt.Fprintf(w, "singleton bypasses:  %d (corrections %d)\n", fp.SingletonBypasses, fp.STCorrections)
	}
}

func printTiming(w io.Writer, cfg fpcache.Config, res fpcache.TimingResult) {
	fmt.Fprintf(w, "workload:            %s\n", cfg.Workload)
	fmt.Fprintf(w, "design:              %s @ %dMB (scale %.4g)\n", res.Design, cfg.PaperCapacityMB, cfg.Scale)
	fmt.Fprintf(w, "references:          %d\n", res.Refs)
	fmt.Fprintf(w, "instructions:        %d\n", res.Instructions)
	fmt.Fprintf(w, "cycles:              %d\n", res.Cycles)
	fmt.Fprintf(w, "aggregate IPC:       %.3f\n", res.AggIPC())
	fmt.Fprintf(w, "avg read latency:    %.0f cycles\n", res.AvgReadLatency)
	fmt.Fprintf(w, "miss ratio:          %.2f%%\n", 100*res.Counters.MissRatio())
	off := res.OffChipEnergyPerInstr()
	stk := res.StackedEnergyPerInstr()
	fmt.Fprintf(w, "off-chip energy/ins: %.1f pJ (act %.1f + burst %.1f)\n", off.TotalPJ(), off.ActPrePJ, off.BurstPJ)
	fmt.Fprintf(w, "stacked energy/ins:  %.1f pJ (act %.1f + burst %.1f)\n", stk.TotalPJ(), stk.ActPrePJ, stk.BurstPJ)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsim:", err)
	os.Exit(1)
}
