package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fpcache"
	"fpcache/internal/memtrace"
)

func testConfig() fpcache.Config {
	return fpcache.Config{
		Workload:        fpcache.MapReduce,
		Design:          fpcache.Footprint,
		PaperCapacityMB: 64,
		Scale:           1.0 / 64,
		Refs:            20_000,
		WarmupRefs:      10_000,
		Seed:            3,
	}
}

// TestTraceRoundTrip pins the record-and-replay contract: a run
// recorded with -trace-out and replayed with -trace-in produces a
// byte-identical FunctionalResult to the live generator run.
func TestTraceRoundTrip(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "run.trace")

	live, err := runFunctionalPoint(cfg, "", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := runFunctionalPoint(cfg, "", path, nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := runFunctionalPoint(cfg, path, "", nil)
	if err != nil {
		t.Fatal(err)
	}

	asJSON := func(v any) string {
		buf, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	if asJSON(recorded) != asJSON(live) {
		t.Fatalf("recording changed the run:\nlive:     %s\nrecorded: %s", asJSON(live), asJSON(recorded))
	}
	if asJSON(replayed) != asJSON(live) {
		t.Fatalf("replay diverges from live run:\nlive:   %s\nreplay: %s", asJSON(live), asJSON(replayed))
	}

	// The file must hold exactly the consumed stream: warmup + refs.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := memtrace.NewReader(f)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() != nil {
		t.Fatalf("recorded trace unreadable: %v", r.Err())
	}
	if want := cfg.WarmupRefs + cfg.Refs; n != want {
		t.Fatalf("recorded %d records, want %d (warmup %d + refs %d)", n, want, cfg.WarmupRefs, cfg.Refs)
	}
}

// TestTraceReplayAcrossDesigns replays one recorded trace through a
// different design — the record-once, study-many workflow.
func TestTraceReplayAcrossDesigns(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "run.trace")
	if _, err := runFunctionalPoint(cfg, "", path, nil); err != nil {
		t.Fatal(err)
	}
	cfg.Design = fpcache.FootprintBanshee
	res, err := runFunctionalPoint(cfg, path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != string(fpcache.FootprintBanshee) {
		t.Fatalf("design = %q", res.Design)
	}
	if res.Refs != uint64(cfg.Refs) {
		t.Fatalf("replayed %d refs, want %d", res.Refs, cfg.Refs)
	}
}

// TestTraceReplayRejectsGarbage surfaces decode errors instead of
// silently simulating an empty trace.
func TestTraceReplayRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runFunctionalPoint(testConfig(), path, "", nil); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
