package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpcache"
	"fpcache/internal/memtrace"
	"fpcache/internal/sweep"
)

func testConfig() fpcache.Config {
	return fpcache.Config{
		Workload:        fpcache.MapReduce,
		Design:          fpcache.Footprint,
		PaperCapacityMB: 64,
		Scale:           1.0 / 64,
		Refs:            20_000,
		WarmupRefs:      10_000,
		Seed:            3,
	}
}

// TestTraceRoundTrip pins the record-and-replay contract: a run
// recorded with -trace-out and replayed with -trace-in produces a
// byte-identical FunctionalResult to the live generator run.
func TestTraceRoundTrip(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "run.trace")

	live, err := runFunctionalPoint(cfg, "", "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	recorded, err := runFunctionalPoint(cfg, "", path, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := runFunctionalPoint(cfg, path, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	asJSON := func(v any) string {
		buf, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(buf)
	}
	if asJSON(recorded) != asJSON(live) {
		t.Fatalf("recording changed the run:\nlive:     %s\nrecorded: %s", asJSON(live), asJSON(recorded))
	}
	if asJSON(replayed) != asJSON(live) {
		t.Fatalf("replay diverges from live run:\nlive:   %s\nreplay: %s", asJSON(live), asJSON(replayed))
	}

	// The file must hold exactly the consumed stream: warmup + refs.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := memtrace.NewReader(f)
	n := 0
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		n++
	}
	if r.Err() != nil {
		t.Fatalf("recorded trace unreadable: %v", r.Err())
	}
	if want := cfg.WarmupRefs + cfg.Refs; n != want {
		t.Fatalf("recorded %d records, want %d (warmup %d + refs %d)", n, want, cfg.WarmupRefs, cfg.Refs)
	}
}

// TestTraceReplayAcrossDesigns replays one recorded trace through a
// different design — the record-once, study-many workflow.
func TestTraceReplayAcrossDesigns(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "run.trace")
	if _, err := runFunctionalPoint(cfg, "", path, 0, nil); err != nil {
		t.Fatal(err)
	}
	cfg.Design = fpcache.FootprintBanshee
	res, err := runFunctionalPoint(cfg, path, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Design != string(fpcache.FootprintBanshee) {
		t.Fatalf("design = %q", res.Design)
	}
	if res.Refs != uint64(cfg.Refs) {
		t.Fatalf("replayed %d refs, want %d", res.Refs, cfg.Refs)
	}
}

// TestTraceReplayRejectsGarbage surfaces decode errors instead of
// silently simulating an empty trace.
func TestTraceReplayRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runFunctionalPoint(testConfig(), path, "", 0, nil); err == nil {
		t.Fatal("garbage trace accepted")
	}
}

// writeV2Trace records total generated records of cfg's workload into
// a chunked v2 trace file.
func writeV2Trace(t *testing.T, cfg fpcache.Config, path string, total, chunk int) {
	t.Helper()
	src, _, err := fpcache.NewTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := memtrace.NewWriterV2(f)
	if err := w.SetChunkRecords(chunk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < total; i++ {
		rec, ok := src.Next()
		if !ok {
			t.Fatalf("generator exhausted after %d records", i)
		}
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSkipFastForward pins -skip: fast-forwarding N records via the
// chunk index is byte-identical to replaying a recording that starts
// at record N — the skipped prefix is neither simulated nor decoded.
func TestSkipFastForward(t *testing.T) {
	cfg := testConfig()
	const skip = 7_000
	dir := t.TempDir()
	total := skip + cfg.WarmupRefs + cfg.Refs

	src, _, err := fpcache.NewTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]memtrace.Record, total)
	for i := range recs {
		rec, ok := src.Next()
		if !ok {
			t.Fatalf("generator exhausted after %d records", i)
		}
		recs[i] = rec
	}
	write := func(name string, recs []memtrace.Record) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := memtrace.NewWriterV2(f)
		if err := w.SetChunkRecords(512); err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	full := write("full.v2", recs)
	tail := write("tail.v2", recs[skip:])

	want, err := runFunctionalPoint(cfg, tail, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runFunctionalPoint(cfg, full, "", skip, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("-skip %d diverges from replaying the truncated trace:\nwant %s\ngot  %s", skip, wantJSON, gotJSON)
	}
}

// TestSkipPastEnd surfaces a -skip beyond the recording instead of
// silently measuring nothing.
func TestSkipPastEnd(t *testing.T) {
	cfg := testConfig()
	path := filepath.Join(t.TempDir(), "run.v2")
	writeV2Trace(t, cfg, path, 2_000, 512)
	if _, err := runFunctionalPoint(cfg, path, "", 1_000_000, nil); err == nil {
		t.Fatal("-skip past the end of the trace accepted")
	}
}

// TestIntervalPointMatchesSerial pins the CLI interval path: the
// functional report block of an interval-parallel run is byte-identical
// to the serial replay's, with the plan summary appended after it, and
// a second run against the populated checkpoint cache restores
// boundaries while printing the same report.
func TestIntervalPointMatchesSerial(t *testing.T) {
	cfg := testConfig()
	dir := t.TempDir()
	path := filepath.Join(dir, "run.v2")
	writeV2Trace(t, cfg, path, cfg.WarmupRefs+cfg.Refs, 512)

	serial, err := runFunctionalPoint(cfg, path, "", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	printFunctional(&want, cfg, serial)

	pol := sweep.Policy{}
	run := func() string {
		var out bytes.Buffer
		if err := runIntervalPoint(&out, cfg, "functional", path, filepath.Join(dir, "ckpt"), 4, 0, 0, 4, pol); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	cold, warm := run(), run()
	for name, got := range map[string]string{"cold": cold, "warm": warm} {
		if !strings.HasPrefix(got, want.String()) {
			t.Fatalf("%s interval report does not start with the serial block:\nserial:\n%s\ngot:\n%s", name, want.String(), got)
		}
		rest := strings.TrimPrefix(got, want.String())
		for _, line := range strings.Split(strings.TrimRight(rest, "\n"), "\n") {
			if !strings.HasPrefix(line, "interval") {
				t.Fatalf("%s run emitted a non-interval extra line %q", name, line)
			}
		}
	}
	if !strings.Contains(warm, "restored 4") {
		t.Fatalf("warm run did not restore every boundary checkpoint:\n%s", warm)
	}
}
