// Command fpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fpbench                      # run every experiment (paper order)
//	fpbench -figure figure5      # one experiment
//	fpbench -list                # list experiment identifiers
//	fpbench -refs 2000000 -scale 0.0625 -workloads web-search,mapreduce
//	fpbench -j 8                 # sweep simulation points on 8 workers
//	fpbench -json out.json       # machine-readable rows + wall-clock
//	fpbench -state-cache .warm   # warm each point once, restore thereafter
//	fpbench -state-cache .warm -state-cache-max 1073741824
//	fpbench -max-retries 2 -point-timeout 5m -tolerate
//	fpbench -fault-spec 'point:transient:fails=1' -max-retries 2
//
// Simulation points fan out over a worker pool (internal/sweep);
// results are gathered in declaration order, so output is
// byte-identical regardless of -j. Each experiment prints the same
// rows/series the paper reports; DESIGN.md §4 indexes them. With
// -json, typed rows and per-experiment wall-clock are written to the
// given file instead of rendering text tables — the seed of the
// BENCH_*.json perf trajectory.
//
// The fault-tolerance flags (-max-retries, -point-timeout, -tolerate)
// switch sweeps to the tolerant executor (DESIGN.md §10): point panics
// are isolated, retryable faults retry with exponential backoff, and
// every fault an experiment absorbed lands in its failure report
// (included per experiment in the -json output). -fault-spec injects
// scheduled faults (internal/faultinject) to exercise that machinery
// end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"fpcache/internal/experiments"
	"fpcache/internal/faultinject"
	"fpcache/internal/sweep"
)

func main() {
	var (
		figure    = flag.String("figure", "", "experiment to run (default: all); see -list")
		list      = flag.Bool("list", false, "list experiment identifiers and exit")
		scale     = flag.Float64("scale", 1.0/16, "capacity scale factor (1.0 = paper scale)")
		refs      = flag.Int("refs", 0, "measured references per functional configuration (default 1000000; the adaptive study defaults to 2000000)")
		warmup    = flag.Int("warmup", 0, "warmup references (default: same as -refs)")
		timing    = flag.Int("timingrefs", 0, "measured references per timing configuration (default: refs/4)")
		seed      = flag.Int64("seed", 1, "random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		caps      = flag.String("capacities", "", "comma-separated paper-scale capacities in MB (default: 64,128,256,512)")
		jsonOut   = flag.String("json", "", "write machine-readable rows + per-experiment wall-clock to this file")
		stateDir  = flag.String("state-cache", "", "directory of content-keyed warm-state snapshots: each (workload, design, capacity) point warms once and later runs restore it (results byte-identical)")
		stateMax  = flag.Int64("state-cache-max", 0, "cap the state cache's total size in bytes, evicting oldest entries first (0 = unlimited)")
		retries   = flag.Int("max-retries", 0, "retry a simulation point up to N times on retryable faults (transient I/O), with exponential backoff")
		timeout   = flag.Duration("point-timeout", 0, "per-attempt deadline for each simulation point (0 = none)")
		tolerate  = flag.Bool("tolerate", false, "keep an experiment's surviving rows when points fail for good (failed cells degrade to zero and land in the failure report)")
		faultSpec = flag.String("fault-spec", "", "inject scheduled faults, e.g. 'point:transient:fails=1;snapshot-read:flipbit:offset=40' (testing the fault tolerance itself)")
		workers   int
	)
	flag.IntVar(&workers, "j", 0, "parallel simulation points: 0 = all cores, 1 = serial")
	flag.IntVar(&workers, "parallel", 0, "alias for -j")
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	o := experiments.Options{
		Scale:              *scale,
		Refs:               *refs,
		WarmupRefs:         *warmup,
		TimingRefs:         *timing,
		Seed:               *seed,
		StateCache:         *stateDir,
		StateCacheMaxBytes: *stateMax,
		PointTimeout:       *timeout,
		Tolerate:           *tolerate,
		// Options treats 0 as serial; the CLI treats 0 as "all cores".
		Workers: sweep.Workers(workers),
	}
	if *retries > 0 {
		o.MaxAttempts = *retries + 1
		o.RetryBackoff = 100 * time.Millisecond
	}
	if *faultSpec != "" {
		inj, err := faultinject.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			os.Exit(2)
		}
		o.Injector = inj
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}
	if *caps != "" {
		for _, c := range strings.Split(*caps, ",") {
			var mb int
			if _, err := fmt.Sscanf(strings.TrimSpace(c), "%d", &mb); err != nil {
				fmt.Fprintf(os.Stderr, "fpbench: bad capacity %q: %v\n", c, err)
				os.Exit(2)
			}
			o.Capacities = append(o.Capacities, mb)
		}
	}

	names := experiments.Names()
	if *figure != "" {
		names = []string{*figure}
	}

	if *jsonOut != "" {
		if err := runJSON(names, o, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "fpbench:", err)
			os.Exit(1)
		}
		return
	}

	var err error
	if *figure == "" {
		err = experiments.RunAll(o, os.Stdout)
	} else {
		err = experiments.Run(*figure, o, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
}

// jsonExperiment is one experiment's machine-readable result.
type jsonExperiment struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Rows    any     `json:"rows"`
	// Failures is the experiment's failure report: every fault the
	// tolerant executor absorbed (panics, retries, timeouts, quarantined
	// cache entries) with its disposition. Omitted on a clean run.
	Failures []experiments.Failure `json:"failures,omitempty"`
}

// jsonReport is the -json file layout: run configuration,
// per-experiment wall-clock and typed rows, and the total.
type jsonReport struct {
	Options      experiments.Options `json:"options"`
	TotalSeconds float64             `json:"total_seconds"`
	Experiments  []jsonExperiment    `json:"experiments"`
}

// runJSON computes typed rows for every named experiment, timing each
// one, and writes the report to path.
func runJSON(names []string, o experiments.Options, path string) error {
	// Record the options as the drivers actually run them (defaults
	// applied), so two BENCH_*.json files are comparable even if the
	// library's defaults change between versions.
	report := jsonReport{Options: o.WithDefaults()}
	total := time.Now()
	for _, name := range names {
		start := time.Now()
		rows, failures, err := experiments.RowsWithReport(name, o)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		dt := time.Since(start).Seconds()
		exp := jsonExperiment{Name: name, Seconds: dt, Rows: rows}
		if failures != nil {
			exp.Failures = failures.Failures
		}
		report.Experiments = append(report.Experiments, exp)
		if n := len(exp.Failures); n > 0 {
			fmt.Printf("%-10s %8.2fs  (%d faults absorbed)\n", name, dt, n)
		} else {
			fmt.Printf("%-10s %8.2fs\n", name, dt)
		}
	}
	report.TotalSeconds = time.Since(total).Seconds()

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d experiments, %.2fs total)\n", path, len(report.Experiments), report.TotalSeconds)
	return nil
}
