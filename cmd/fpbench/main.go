// Command fpbench regenerates the paper's tables and figures.
//
// Usage:
//
//	fpbench                      # run every experiment (paper order)
//	fpbench -figure figure5      # one experiment
//	fpbench -list                # list experiment identifiers
//	fpbench -refs 2000000 -scale 0.0625 -workloads web-search,mapreduce
//
// Each experiment prints the same rows/series the paper reports;
// EXPERIMENTS.md records a reference run with paper-vs-measured
// commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fpcache/internal/experiments"
)

func main() {
	var (
		figure    = flag.String("figure", "", "experiment to run (default: all); see -list")
		list      = flag.Bool("list", false, "list experiment identifiers and exit")
		scale     = flag.Float64("scale", 1.0/16, "capacity scale factor (1.0 = paper scale)")
		refs      = flag.Int("refs", 1_000_000, "measured references per functional configuration")
		warmup    = flag.Int("warmup", 0, "warmup references (default: same as -refs)")
		timing    = flag.Int("timingrefs", 0, "measured references per timing configuration (default: refs/4)")
		seed      = flag.Int64("seed", 1, "random seed")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		caps      = flag.String("capacities", "", "comma-separated paper-scale capacities in MB (default: 64,128,256,512)")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.Names() {
			fmt.Println(n)
		}
		return
	}

	o := experiments.Options{
		Scale:      *scale,
		Refs:       *refs,
		WarmupRefs: *warmup,
		TimingRefs: *timing,
		Seed:       *seed,
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}
	if *caps != "" {
		for _, c := range strings.Split(*caps, ",") {
			var mb int
			if _, err := fmt.Sscanf(strings.TrimSpace(c), "%d", &mb); err != nil {
				fmt.Fprintf(os.Stderr, "fpbench: bad capacity %q: %v\n", c, err)
				os.Exit(2)
			}
			o.Capacities = append(o.Capacities, mb)
		}
	}

	var err error
	if *figure == "" {
		err = experiments.RunAll(o, os.Stdout)
	} else {
		err = experiments.Run(*figure, o, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fpbench:", err)
		os.Exit(1)
	}
}
