// Package fpcache is the public API of the Footprint Cache
// reproduction (Jevdjic, Volos, Falsafi — ISCA 2013, "Die-Stacked
// DRAM Caches for Servers: Hit Ratio, Latency, or Bandwidth? Have It
// All with Footprint Cache").
//
// It exposes the paper's DRAM cache designs (block-based, page-based,
// sub-blocked, Footprint, hot-page filter, plus baseline and ideal
// bounds), calibrated synthetic workloads standing in for CloudSuite
// 1.0, and the two simulation modes of the paper's methodology:
// functional runs for miss ratio / traffic / predictor studies and
// event-driven timing runs for performance and energy.
//
// Quick start:
//
//	cfg := fpcache.Config{Workload: fpcache.WebSearch, Design: fpcache.Footprint,
//		PaperCapacityMB: 256, Refs: 2_000_000}
//	res, err := fpcache.RunFunctional(cfg)
//	fmt.Println(res.MissRatio())
package fpcache

import (
	"fmt"

	"fpcache/internal/control"
	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// Workload names (the paper's §5.3 evaluation set).
const (
	DataServing     = synth.DataServing
	MapReduce       = synth.MapReduce
	Multiprogrammed = synth.Multiprogrammed
	SATSolver       = synth.SATSolver
	WebFrontend     = synth.WebFrontend
	WebSearch       = synth.WebSearch
	// PhaseShift is the phase-shifting stress workload beyond the
	// paper's set (see the "adaptive" experiment).
	PhaseShift = synth.PhaseShift
)

// Workloads returns all workload names in presentation order.
func Workloads() []string { return synth.Names() }

// DesignKind selects a DRAM cache organization: one of the paper's
// canonical kinds below, or a composite policy spec — "+"-joined
// component names drawn from the policy axes (see Policies):
// allocation granularity (page, subblock, footprint, ...), mapping
// (pagedirect, blockrow, hybrid), fill (lru, hotgate, banshee), and
// stacked-capacity partition (memcache:<pct>, memlow:<pct>).
// "footprint+banshee" is a Footprint Cache behind a frequency-gated
// fill; "page+blockrow" is a page cache with block-style row spread;
// "footprint+memcache:50" dedicates half the stacked capacity to
// directly addressed memory and runs the Footprint engine on the
// rest, resizable at run time (Config.ResizeFractions).
type DesignKind string

// The designs compared in the paper.
const (
	// Baseline is the system without a DRAM cache.
	Baseline DesignKind = "baseline"
	// Block is the state-of-the-art block-based design (§5.2,
	// Loh-Hill: tags in DRAM + MissMap).
	Block DesignKind = "block"
	// Page is the conventional page-based design (§2.3).
	Page DesignKind = "page"
	// Subblock allocates pages but fetches blocks on demand (§3.1's
	// zero-overprediction bound).
	Subblock DesignKind = "subblock"
	// Footprint is the paper's contribution.
	Footprint DesignKind = "footprint"
	// FootprintNoSingleton disables the §4.4 capacity optimization
	// (the §6.5 ablation).
	FootprintNoSingleton DesignKind = "footprint-nosingleton"
	// FootprintUnion accumulates FHT feedback with OR instead of the
	// paper's replace-with-most-recent policy (a design-choice
	// ablation; see internal/experiments).
	FootprintUnion DesignKind = "footprint-union"
	// HotPage is the CHOP-like filter cache of §6.7.
	HotPage DesignKind = "hotpage"
	// Ideal never misses and has no tag overhead (§6.3).
	Ideal DesignKind = "ideal"
)

// Hybrid compositions the paper never evaluated, reachable since the
// policy-composable engine. Any other composite spec is equally valid
// as a DesignKind; these two are the showcased points.
const (
	// FootprintBanshee puts footprint-predicted allocation behind a
	// Banshee-style frequency-gated fill: footprint traffic efficiency
	// plus fill-bandwidth control.
	FootprintBanshee DesignKind = "footprint+banshee"
	// FootprintHybrid pairs footprint allocation with Gemini-style
	// hybrid mapping: sparse pages spread block-style instead of
	// pinning whole stacked rows.
	FootprintHybrid DesignKind = "footprint+hybrid"
)

// Designs returns the kinds in the paper's comparison order.
func Designs() []DesignKind {
	return []DesignKind{Baseline, Block, Page, Subblock, Footprint, FootprintNoSingleton, FootprintUnion, HotPage, Ideal}
}

// HybridDesigns returns the showcased policy compositions beyond the
// paper's fixed points.
func HybridDesigns() []DesignKind {
	return []DesignKind{FootprintBanshee, FootprintHybrid}
}

// PolicySet lists the engine's composable policy names per axis.
type PolicySet struct {
	Alloc   []string
	Mapping []string
	Fill    []string
	// Partition policies split the stacked capacity between directly
	// addressed memory and the cache engine; spec components carry
	// the memory share as a percentage ("memcache:50").
	Partition []string
}

// Policies returns the valid policy names for composite DesignKind
// specs.
func Policies() PolicySet {
	return PolicySet{
		Alloc:     system.AllocPolicies(),
		Mapping:   system.MappingPolicies(),
		Fill:      system.FillPolicies(),
		Partition: system.PartitionPolicies(),
	}
}

// DefaultScale is the capacity scale factor applied to paper-sized
// caches and datasets (DESIGN.md §2): 64-512MB caches run as 4-32MB
// with proportionally scaled datasets, preserving miss-ratio shape
// under the power-law capacity relation the paper itself leans on
// (§6.5, §7).
const DefaultScale = 1.0 / 16

// FunctionalResult, TimingResult, and PartitionStats alias the
// simulation result types so facade callers never import internal
// packages.
type (
	FunctionalResult = system.FunctionalResult
	TimingResult     = system.TimingResult
	PartitionStats   = dcache.PartitionStats
)

// Config describes one simulation.
type Config struct {
	// Workload is one of the workload names.
	Workload string
	// Design selects the cache organization.
	Design DesignKind
	// PaperCapacityMB is the paper-scale stacked capacity (64, 128,
	// 256, 512). Ignored by Baseline and Ideal.
	PaperCapacityMB int
	// Scale overrides DefaultScale when non-zero.
	Scale float64
	// PageBytes overrides the 2KB page size (Fig. 8 uses 1/2/4KB).
	PageBytes int
	// FHTEntries overrides the 16K-entry FHT (Fig. 9).
	FHTEntries int
	// Seed makes runs reproducible; 0 means seed 1.
	Seed int64
	// Refs bounds the measured trace length (required; functional
	// studies use millions, timing studies hundreds of thousands).
	Refs int
	// WarmupRefs precede measurement; -1 disables warmup, 0 defaults
	// to Refs (the paper warms with half of each trace, §5.4).
	WarmupRefs int
	// Cores overrides the 16-core pod.
	Cores int
	// ResizePeriodRefs / ResizeFractions schedule run-time partition
	// resizes for partitioned designs ("footprint+memcache:50"):
	// every ResizePeriodRefs measured references the stacked split
	// moves to the next memory fraction in ResizeFractions (cycled).
	// Ignored unless both are set and the design partitions its
	// capacity.
	ResizePeriodRefs int
	ResizeFractions  []float64
	// AdaptiveResize replaces the static schedule with the online
	// adaptive partition controller (internal/control): every epoch of
	// measured references the controller scores a telemetry window
	// (hit ratio and off-chip traffic) and hill-climbs the split, with
	// deadband and cooldown bounding migration churn. ResizePeriodRefs
	// sets the epoch length when positive (controller default
	// otherwise); ResizeFractions is ignored. Requires a partitioned
	// design; the controller's initial split matches the design spec's.
	AdaptiveResize bool
}

// ResizePolicy returns the configured resize policy — a fresh
// adaptive controller when AdaptiveResize is set, the static schedule
// when ResizePeriodRefs/ResizeFractions are, nil otherwise. The run
// helpers call it internally; CLIs driving SimState directly install
// it with SimState.SetPolicy before warming or restoring.
func (c Config) ResizePolicy() system.ResizePolicy {
	if c.AdaptiveResize {
		return system.NewAdaptivePolicy(c.AdaptiveConfig())
	}
	if c.ResizePeriodRefs <= 0 || len(c.ResizeFractions) == 0 {
		return nil
	}
	return &system.ResizePlan{PeriodRefs: c.ResizePeriodRefs, Fractions: c.ResizeFractions}
}

// AdaptiveConfig maps the facade config onto the controller's: the
// epoch length comes from ResizePeriodRefs, and the initial fraction
// from the design spec's partition share so the controller's model of
// the split starts where the design actually is.
func (c Config) AdaptiveConfig() control.Config {
	cfg := control.Config{EpochRefs: c.ResizePeriodRefs}
	if pct, ok := system.PartitionPercent(string(c.Design)); ok {
		cfg.InitialFraction = float64(pct) / 100
	}
	return cfg
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = DefaultScale
	}
	if c.PageBytes == 0 {
		c.PageBytes = 2048
	}
	if c.FHTEntries == 0 {
		c.FHTEntries = 16 * 1024
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Cores == 0 {
		c.Cores = 16
	}
	if c.PaperCapacityMB == 0 {
		c.PaperCapacityMB = 256
	}
	switch {
	case c.WarmupRefs < 0:
		c.WarmupRefs = 0
	case c.WarmupRefs == 0:
		c.WarmupRefs = c.Refs
	}
	return c
}

// CapacityBytes returns the scaled capacity in bytes.
func (c Config) CapacityBytes() int64 {
	cc := c.withDefaults()
	return int64(float64(int64(cc.PaperCapacityMB)<<20) * cc.Scale)
}

// TagLatency returns the paper's Table 4 SRAM lookup latency, in CPU
// cycles, for a design at a paper-scale capacity. Scaled runs stand
// in for paper-sized caches, so they pay paper-sized latencies.
func TagLatency(kind DesignKind, paperMB int) int {
	return system.TagLatencyFor(string(kind), paperMB)
}

// NewDesign builds the configured cache design.
func NewDesign(c Config) (dcache.Design, error) {
	c = c.withDefaults()
	return system.BuildDesign(system.DesignSpec{
		Kind:            string(c.Design),
		PaperCapacityMB: c.PaperCapacityMB,
		Scale:           c.Scale,
		PageBytes:       c.PageBytes,
		FHTEntries:      c.FHTEntries,
	})
}

// NewTrace builds the workload's trace source at the configured
// scale.
func NewTrace(c Config) (memtrace.Source, *synth.Profile, error) {
	c = c.withDefaults()
	prof, err := synth.ByName(c.Workload)
	if err != nil {
		return nil, nil, err
	}
	prof.Cores = c.Cores
	gen, err := synth.NewGenerator(prof, c.Seed, c.Scale)
	if err != nil {
		return nil, nil, err
	}
	p := gen.Profile()
	return gen, &p, nil
}

// RunFunctional executes a functional simulation.
func RunFunctional(c Config) (system.FunctionalResult, error) {
	c = c.withDefaults()
	if c.Refs <= 0 {
		return system.FunctionalResult{}, fmt.Errorf("fpcache: Config.Refs must be positive")
	}
	src, _, err := NewTrace(c)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	return RunFunctionalSource(c, src)
}

// RunFunctionalSource executes a functional simulation over an
// externally supplied record source — a recorded trace file
// (memtrace.Reader), a tee, or any other Source — instead of the
// workload generator. The Workload field only labels the run; warmup
// and measured references are consumed from src.
func RunFunctionalSource(c Config, src memtrace.Source) (system.FunctionalResult, error) {
	c = c.withDefaults()
	if c.Refs <= 0 {
		return system.FunctionalResult{}, fmt.Errorf("fpcache: Config.Refs must be positive")
	}
	d, err := NewDesign(c)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	return system.RunFunctionalResized(d, src, c.WarmupRefs, c.Refs, c.ResizePolicy())
}

// RunTiming executes an event-driven timing simulation.
func RunTiming(c Config) (system.TimingResult, error) {
	c = c.withDefaults()
	if c.Refs <= 0 {
		return system.TimingResult{}, fmt.Errorf("fpcache: Config.Refs must be positive")
	}
	d, err := NewDesign(c)
	if err != nil {
		return system.TimingResult{}, err
	}
	src, prof, err := NewTrace(c)
	if err != nil {
		return system.TimingResult{}, err
	}
	return system.RunTiming(d, src, system.TimingConfig{
		Cores:      c.Cores,
		MLP:        prof.MLP,
		WarmupRefs: c.WarmupRefs,
		MaxRefs:    c.Refs,
		Resize:     c.ResizePolicy(),
	})
}
