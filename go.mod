module fpcache

go 1.24
