// Package synth generates synthetic memory-reference traces that stand
// in for the paper's CloudSuite 1.0 and SPEC INT2006 workloads.
//
// The substitution is documented in DESIGN.md §2. Its core is the
// pattern-pool model: server software accesses structured data through
// a small set of code paths (get/set methods, iterators), so the
// (PC, offset) of the access that first touches a page strongly
// predicts which other blocks of that page will be touched — the
// property Footprint Cache exploits (§3.1 of the paper). The generator
// makes that property explicit:
//
//   - A *pattern* models one code site: a PC, a footprint template (a
//     set of 64B blocks within a 4KB region), and an emission order.
//   - A *visit* is one activation of a pattern against a region of the
//     dataset: it emits the template's blocks over time, interleaved
//     with hundreds of other concurrent visits (so a page's footprint
//     accumulates during a finite residency window, which is what
//     makes measured page density grow with cache capacity, Fig. 4).
//   - Per-workload profiles control the pattern mix (singleton-heavy
//     MapReduce vs dense Web Search), dataset size, popularity skew,
//     write fraction, and — for SAT Solver — template drift over time,
//     which models its on-the-fly dataset construction that the paper
//     reports interferes with prediction (§6.2).
//
// Addresses are emitted over 4KB regions; the *cache* decides the page
// size, so one trace serves 1KB/2KB/4KB page studies (Fig. 8).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"fpcache/internal/memtrace"
)

// RegionBytes is the natural data-structure placement unit the
// generator emits over; caches chop it into pages.
const RegionBytes = 4096

// BlocksPerRegion is the number of 64B blocks per region.
const BlocksPerRegion = RegionBytes / 64

// Class describes one family of access patterns.
type Class struct {
	// Weight is the relative frequency of visits drawn from this
	// class.
	Weight float64
	// MinBlocks/MaxBlocks bound the template size in blocks.
	MinBlocks, MaxBlocks int
	// Sequential templates are contiguous runs accessed in ascending
	// order; non-sequential templates scatter blocks within a
	// half-region window and access them in a fixed shuffled order.
	Sequential bool
	// FullRegion templates cover all 64 blocks of the region
	// (streaming patterns); MinBlocks/MaxBlocks are ignored.
	FullRegion bool
}

// Profile is a workload description. All capacities are paper-scale;
// the generator scales them by the harness scale factor.
type Profile struct {
	Name string
	// Classes is the pattern mix.
	Classes []Class
	// PatternsPerClass is the number of distinct code sites per class.
	PatternsPerClass int
	// DatasetBytes is the paper-scale dataset size.
	DatasetBytes int64
	// Concurrency is the number of in-flight visits (drives page
	// residency pressure), at paper scale.
	Concurrency int
	// RevisitFrac is the probability a new visit targets a recently
	// touched region instead of a fresh draw from the dataset.
	RevisitFrac float64
	// RecencyWindow is the size of the recently-touched region pool.
	RecencyWindow int
	// ZipfTheta is the popularity skew over the dataset (0 = uniform;
	// scale-out datasets are weakly skewed, §6.7).
	ZipfTheta float64
	// WriteFrac is the fraction of references that are writes
	// (L2 dirty writebacks reaching the DRAM cache).
	WriteFrac float64
	// RepeatFrac is the probability of re-emitting an already-visited
	// block (intra-page temporal reuse; low for DRAM caches, §2).
	RepeatFrac float64
	// BurstLen is the mean number of accesses a visit issues each
	// time it holds the core's focus. Data-structure traversals touch
	// a page in tight bursts; burst length controls how page
	// residency compares to visit duration (and with it how much
	// footprint truncation small caches suffer, Fig. 4). Defaults
	// to 8.
	BurstLen int
	// GapMean is the mean number of non-memory instructions between
	// references per core.
	GapMean int
	// MLP is the per-core memory-level parallelism the timing model
	// should allow for this workload.
	MLP int
	// DriftEvery mutates a third of the pattern templates every N
	// visits (0 disables); models SAT Solver's evolving dataset.
	DriftEvery int64
	// PhaseEvery alternates the fresh-visit target distribution every N
	// visits (0 disables): phases 0, 2, 4, ... confine draws to a small
	// resident working set, phases 1, 3, 5, ... span the whole dataset.
	// Models phase-shifting behavior (batch jobs alternating scan and
	// aggregation passes) whose best stacked-capacity split moves at
	// run time — the regime the adaptive partition controller targets.
	PhaseEvery int64
	// PhaseFrac is the small phase's working-set size as a fraction of
	// the dataset. The slice sits at the middle of the address space,
	// deliberately outside the low-address region a "memlow" partition
	// pins, so the two phases genuinely disagree about the best split.
	PhaseFrac float64
	// PhasePinFrac applies during the whole-dataset phases: the
	// probability a fresh draw targets a hot set occupying the lowest
	// PhaseFrac of the dataset instead of a uniform scan draw. The scan
	// traffic continuously pollutes an LRU cache out of the hot set,
	// while a low-address memory partition pins it untouched — the
	// mechanism that makes a large memory split win the scan phases.
	PhasePinFrac float64
	// Cores is the number of cores emitting the trace.
	Cores int
}

// Validate checks profile sanity.
func (p Profile) Validate() error {
	if len(p.Classes) == 0 {
		return fmt.Errorf("synth %s: no classes", p.Name)
	}
	total := 0.0
	for _, c := range p.Classes {
		if c.Weight < 0 {
			return fmt.Errorf("synth %s: negative class weight", p.Name)
		}
		total += c.Weight
		if !c.FullRegion && (c.MinBlocks < 1 || c.MaxBlocks > BlocksPerRegion || c.MinBlocks > c.MaxBlocks) {
			return fmt.Errorf("synth %s: class block range [%d,%d] invalid", p.Name, c.MinBlocks, c.MaxBlocks)
		}
	}
	if total <= 0 {
		return fmt.Errorf("synth %s: zero total class weight", p.Name)
	}
	if p.DatasetBytes < RegionBytes {
		return fmt.Errorf("synth %s: dataset smaller than one region", p.Name)
	}
	if p.Concurrency < 1 || p.PatternsPerClass < 1 || p.Cores < 1 {
		return fmt.Errorf("synth %s: concurrency/patterns/cores must be positive", p.Name)
	}
	if p.PhaseEvery < 0 {
		return fmt.Errorf("synth %s: negative PhaseEvery", p.Name)
	}
	if p.PhaseEvery > 0 && (p.PhaseFrac <= 0 || p.PhaseFrac >= 1) {
		return fmt.Errorf("synth %s: PhaseFrac %g out of (0,1)", p.Name, p.PhaseFrac)
	}
	if p.PhasePinFrac < 0 || p.PhasePinFrac >= 1 {
		return fmt.Errorf("synth %s: PhasePinFrac %g out of [0,1)", p.Name, p.PhasePinFrac)
	}
	return nil
}

// visit is one in-flight pattern activation.
type visit struct {
	region  int64
	pc      memtrace.PC
	blocks  []uint8 // emission order
	next    int
	emitted uint64 // bitset of already emitted blocks (for repeats)
	core    uint8
}

// Generator emits trace records; it implements memtrace.Source.
type Generator struct {
	prof      Profile
	rng       *rand.Rand
	seed      int64
	regions   int64
	active    []*visit
	recent    []int64 // ring of recently visited regions
	recPos    int
	started   int64 // visits started (drift epoch counter)
	nextCPU   uint8
	focus     int // index of the visit currently emitting a burst
	burstLeft int
	// templates memoizes template() results: templates are pure
	// functions of their key, and visits never mutate the shared
	// order slices, so caching removes the per-visit PRNG and slice
	// allocations from the generation hot path.
	templates map[templateKey]templateVal
}

// templateKey identifies one deterministic footprint template.
type templateKey struct {
	class, pattern int
	epoch          int64
}

type templateVal struct {
	bits  uint64
	order []uint8
}

// maxCachedTemplates bounds the memo; drift-heavy profiles mint new
// epochs over time, so the cache resets rather than growing without
// bound (recomputation is correct, just slower).
const maxCachedTemplates = 8192

// NewGenerator builds a generator for the profile at the given
// capacity scale (1.0 = paper scale). Deterministic for a given seed.
func NewGenerator(prof Profile, seed int64, scale float64) (*Generator, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("synth: scale %g out of (0,1]", scale)
	}
	regions := int64(float64(prof.DatasetBytes)*scale) / RegionBytes
	if regions < 16 {
		regions = 16
	}
	conc := int(float64(prof.Concurrency) * scale)
	if conc < 32 {
		conc = 32
	}
	prof.Concurrency = conc
	if prof.BurstLen <= 0 {
		prof.BurstLen = 8
	}
	recWin := prof.RecencyWindow
	if recWin <= 0 {
		recWin = 4 * conc
	}
	g := &Generator{
		prof:      prof,
		rng:       rand.New(rand.NewSource(seed)),
		seed:      seed,
		regions:   regions,
		recent:    make([]int64, 0, recWin),
		templates: make(map[templateKey]templateVal),
	}
	for i := 0; i < conc; i++ {
		g.active = append(g.active, g.newVisit())
	}
	return g, nil
}

// Profile returns the (scaled) profile in use.
func (g *Generator) Profile() Profile { return g.prof }

// Regions returns the scaled dataset size in regions.
func (g *Generator) Regions() int64 { return g.regions }

// Next implements memtrace.Source. The generator never exhausts; wrap
// it in memtrace.Limit to bound a run.
func (g *Generator) Next() (memtrace.Record, bool) {
	if g.burstLeft <= 0 {
		g.focus = g.rng.Intn(len(g.active))
		g.burstLeft = 1 + g.rng.Intn(2*g.prof.BurstLen-1)
	}
	g.burstLeft--
	v := g.active[g.focus]

	var block uint8
	if v.next > 0 && g.rng.Float64() < g.prof.RepeatFrac {
		// Intra-page temporal reuse: re-touch an emitted block.
		block = v.blocks[g.rng.Intn(v.next)]
	} else {
		block = v.blocks[v.next]
		v.next++
	}
	v.emitted |= 1 << block

	rec := memtrace.Record{
		PC:    v.pc,
		Addr:  memtrace.Addr(v.region*RegionBytes + int64(block)*64),
		Core:  v.core,
		Write: g.rng.Float64() < g.prof.WriteFrac,
		Gap:   uint32(1 + g.rng.Intn(2*g.prof.GapMean)),
	}

	if v.next >= len(v.blocks) {
		// Visit complete: recycle the slot in place and end the burst.
		g.remember(v.region)
		g.reinitVisit(v)
		g.burstLeft = 0
	}
	return rec, true
}

func (g *Generator) remember(region int64) {
	if cap(g.recent) == 0 {
		return
	}
	if len(g.recent) < cap(g.recent) {
		g.recent = append(g.recent, region)
		return
	}
	g.recent[g.recPos] = region
	g.recPos = (g.recPos + 1) % len(g.recent)
}

// pickClass maps a uniform sample in [0,1) to a class index by
// weight.
func (g *Generator) pickClass(u float64) int {
	total := 0.0
	for _, c := range g.prof.Classes {
		total += c.Weight
	}
	x := u * total
	for i, c := range g.prof.Classes {
		x -= c.Weight
		if x < 0 {
			return i
		}
	}
	return len(g.prof.Classes) - 1
}

// crossPatternFrac is the probability a visit uses a pattern other
// than its region's dominant one. Structured data is mostly accessed
// by the code that owns it (§3.1), but not exclusively.
const crossPatternFrac = 0.10

// newVisit starts a new pattern activation.
//
// The region is chosen first; each region has a *dominant* pattern
// (derived from a region hash) so that revisits re-run the same code
// against the same data — the code/data correlation the paper's
// predictor exploits and that also gives block-granularity caches
// their temporal reuse.
func (g *Generator) newVisit() *visit {
	v := new(visit)
	g.reinitVisit(v)
	return v
}

// reinitVisit starts a new pattern activation in an existing slot —
// the allocation-free form of newVisit used on the generation hot
// path.
func (g *Generator) reinitVisit(v *visit) {
	g.started++

	var region int64
	if len(g.recent) > 0 && g.rng.Float64() < g.prof.RevisitFrac {
		region = g.recent[g.rng.Intn(len(g.recent))]
	} else {
		region = g.zipfRegion()
	}

	var classIdx, patternID int
	if g.rng.Float64() < crossPatternFrac {
		classIdx = g.pickClass(g.rng.Float64())
		patternID = g.rng.Intn(g.prof.PatternsPerClass)
	} else {
		rh := uint64(region)*0xff51afd7ed558ccd ^ uint64(g.seed)
		classIdx = g.pickClass(float64(rh%(1<<20)) / (1 << 20))
		patternID = int((rh >> 20) % uint64(g.prof.PatternsPerClass))
	}

	epoch := int64(0)
	if g.prof.DriftEvery > 0 {
		// A third of the patterns change template each epoch,
		// modelling a dataset built on the fly (SAT Solver, §6.2).
		e := g.started / g.prof.DriftEvery
		if (int64(patternID)+e)%3 == 0 {
			epoch = e
		}
	}
	_, order := g.template(classIdx, patternID, epoch)

	pc := memtrace.PC(0x400000 + uint64(classIdx)*0x10000 + uint64(patternID)*4)
	core := g.nextCPU
	g.nextCPU = (g.nextCPU + 1) % uint8(g.prof.Cores)
	*v = visit{region: region, pc: pc, blocks: order, core: core}
}

// template returns the deterministic footprint for a (class, pattern,
// epoch) triple: the bitset and the emission order. The first element
// of the order defines the (PC, offset) key the predictor will see on
// the triggering miss.
func (g *Generator) template(classIdx, patternID int, epoch int64) (bits uint64, order []uint8) {
	key := templateKey{class: classIdx, pattern: patternID, epoch: epoch}
	if t, ok := g.templates[key]; ok {
		return t.bits, t.order
	}
	bits, order = g.computeTemplate(classIdx, patternID, epoch)
	if len(g.templates) >= maxCachedTemplates {
		clear(g.templates)
	}
	g.templates[key] = templateVal{bits: bits, order: order}
	return bits, order
}

// computeTemplate derives a template from scratch; template memoizes
// it (visits share the returned order slice and never mutate it).
func (g *Generator) computeTemplate(classIdx, patternID int, epoch int64) (bits uint64, order []uint8) {
	c := g.prof.Classes[classIdx]
	h := rand.New(rand.NewSource(g.seed ^ int64(classIdx)<<40 ^ int64(patternID)<<8 ^ epoch<<52 ^ 0x5bd1e995))
	if c.FullRegion {
		order = make([]uint8, BlocksPerRegion)
		for i := range order {
			order[i] = uint8(i)
		}
		return ^uint64(0), order
	}
	size := c.MinBlocks
	if c.MaxBlocks > c.MinBlocks {
		size += h.Intn(c.MaxBlocks - c.MinBlocks + 1)
	}
	// Templates live within one 32-block (2KB) half of the region so
	// that class density bands translate directly into 2KB-page
	// density buckets (Fig. 4).
	half := uint8(h.Intn(2)) * 32
	window := 32
	if size > window {
		size = window
	}
	if c.Sequential {
		start := h.Intn(window - size + 1)
		order = make([]uint8, size)
		for i := range order {
			order[i] = half + uint8(start+i)
		}
	} else {
		perm := h.Perm(window)
		order = make([]uint8, size)
		for i := range order {
			order[i] = half + uint8(perm[i])
		}
	}
	for _, b := range order {
		bits |= 1 << b
	}
	return bits, order
}

// zipfRegion draws a region with Zipf-like popularity skew using the
// power-law inverse-CDF approximation, then decorrelates rank from
// address with a multiplicative hash so hot regions spread across
// cache sets. Phase-shifting profiles (PhaseEvery) alternate the draw
// between the whole dataset and a small slice at the middle of it.
func (g *Generator) zipfRegion() int64 {
	n := g.regions
	var base int64
	switch {
	case g.prof.PhaseEvery > 0 && (g.started/g.prof.PhaseEvery)%2 == 0:
		// Small phase: a PhaseFrac working set centered in the address
		// space — cache-resident, and out of reach of a low-address
		// memory partition.
		n = g.phaseRegions()
		base = (g.regions - n) / 2
	case g.prof.PhaseEvery > 0 && g.rng.Float64() < g.prof.PhasePinFrac:
		// Scan phase, hot draw: the pinnable hot set at the bottom of
		// the address space. The remaining draws fall through to the
		// whole-dataset scan that pollutes the cache.
		n = g.phaseRegions()
	}
	u := g.rng.Float64()
	var rank int64
	if g.prof.ZipfTheta <= 0 {
		rank = int64(u * float64(n))
	} else {
		rank = int64(math.Pow(u, 1/(1-g.prof.ZipfTheta)) * float64(n))
	}
	if rank >= n {
		rank = n - 1
	}
	// Golden-ratio multiplicative hash, folded into the phase's span.
	h := uint64(rank) * 0x9E3779B97F4A7C15
	return base + int64(h%uint64(n))
}

// phaseRegions is the size, in regions, of a phase-shifting profile's
// confined slices (the small working set and the scan-phase hot set).
func (g *Generator) phaseRegions() int64 {
	n := int64(g.prof.PhaseFrac * float64(g.regions))
	if n < 16 {
		n = 16
	}
	return n
}
