package synth

import (
	"fmt"
	"sort"
)

// Workload names, matching the paper's evaluation set (§5.3):
// CloudSuite 1.0 scale-out workloads plus a multiprogrammed SPEC
// INT2006 mix.
const (
	DataServing     = "data-serving"
	MapReduce       = "mapreduce"
	Multiprogrammed = "multiprogrammed"
	SATSolver       = "sat-solver"
	WebFrontend     = "web-frontend"
	WebSearch       = "web-search"
)

// PhaseShift is a synthetic stress workload beyond the paper's set: it
// alternates between a small cache-resident working set and uniform
// scans of the whole dataset, so the best stacked-capacity split moves
// at run time. It exists to exercise the adaptive partition controller
// (internal/control) against static splits; see the "adaptive"
// experiment.
const PhaseShift = "phase-shift"

// profiles is the registry of calibrated workload models. Pattern
// mixes are calibrated against the page-density histograms of Fig. 4;
// dataset sizes and gaps against the paper's §5.3 (memory footprints
// exceeding 16-32GB, per-core off-chip bandwidth of 0.6-1.6GB/s).
var profiles = map[string]Profile{
	// Data Serving (Cassandra): the paper's bandwidth monster — high
	// page density, enormous weakly-skewed dataset, misses even at
	// 512MB, and the highest off-chip demand (Fig. 7 is split out just
	// for it).
	DataServing: {
		Name: DataServing,
		Classes: []Class{
			{Weight: 0.10, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.08, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.10, MinBlocks: 4, MaxBlocks: 7, Sequential: true},
			{Weight: 0.18, MinBlocks: 8, MaxBlocks: 15, Sequential: true},
			{Weight: 0.24, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
			{Weight: 0.30, MinBlocks: 32, MaxBlocks: 32, Sequential: true},
		},
		PatternsPerClass: 48,
		DatasetBytes:     24 << 30,
		Concurrency:      20000,
		BurstLen:         16,
		RevisitFrac:      0.26,
		RecencyWindow:    2500,
		ZipfTheta:        0.25,
		WriteFrac:        0.32,
		RepeatFrac:       0.26,
		GapMean:          140,
		MLP:              2,
		Cores:            16,
	},
	// MapReduce (Hadoop): very low page density at small caches — the
	// singleton-heavy workload where block-based capacity management
	// wins at 64-128MB (§6.2).
	MapReduce: {
		Name: MapReduce,
		Classes: []Class{
			{Weight: 0.38, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.18, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.12, MinBlocks: 4, MaxBlocks: 7},
			{Weight: 0.10, MinBlocks: 8, MaxBlocks: 15, Sequential: true},
			{Weight: 0.12, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
			{Weight: 0.10, MinBlocks: 32, MaxBlocks: 32, Sequential: true},
		},
		PatternsPerClass: 64,
		DatasetBytes:     24 << 30,
		Concurrency:      24000,
		BurstLen:         8,
		RevisitFrac:      0.26,
		RecencyWindow:    3000,
		ZipfTheta:        0.20,
		WriteFrac:        0.30,
		RepeatFrac:       0.22,
		GapMean:          240,
		MLP:              2,
		Cores:            16,
	},
	// Multiprogrammed SPEC INT2006 mix: strongly skewed references
	// with a working set a 512MB cache captures (§6.1) and irregular
	// density trend (Fig. 4).
	Multiprogrammed: {
		Name: Multiprogrammed,
		Classes: []Class{
			{Weight: 0.22, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.12, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.14, MinBlocks: 4, MaxBlocks: 7},
			{Weight: 0.16, MinBlocks: 8, MaxBlocks: 15},
			{Weight: 0.16, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
			{Weight: 0.20, MinBlocks: 32, MaxBlocks: 32, Sequential: true},
		},
		PatternsPerClass: 96,
		DatasetBytes:     1536 << 20, // working set ~captured at 512MB
		Concurrency:      12000,
		BurstLen:         6,
		RevisitFrac:      0.45,
		ZipfTheta:        0.65,
		WriteFrac:        0.28,
		RepeatFrac:       0.22,
		GapMean:          400,
		MLP:              3,
		Cores:            16,
	},
	// SAT Solver (symbolic execution): builds its dataset on the fly
	// throughout execution, which interferes with prediction — the one
	// workload where Footprint Cache's miss ratio visibly trails the
	// page-based design at small capacities (§6.2). Modeled with
	// template drift.
	SATSolver: {
		Name: SATSolver,
		Classes: []Class{
			{Weight: 0.28, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.20, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.22, MinBlocks: 4, MaxBlocks: 7},
			{Weight: 0.14, MinBlocks: 8, MaxBlocks: 15},
			{Weight: 0.10, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
			{Weight: 0.06, MinBlocks: 32, MaxBlocks: 32, Sequential: true},
		},
		PatternsPerClass: 80,
		DatasetBytes:     12 << 30,
		Concurrency:      20000,
		BurstLen:         8,
		RevisitFrac:      0.30,
		ZipfTheta:        0.30,
		WriteFrac:        0.35,
		RepeatFrac:       0.16,
		GapMean:          300,
		MLP:              2,
		DriftEvery:       8000,
		Cores:            16,
	},
	// Web Frontend (PHP/web serving): moderate density, mid-size
	// dataset.
	WebFrontend: {
		Name: WebFrontend,
		Classes: []Class{
			{Weight: 0.18, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.12, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.16, MinBlocks: 4, MaxBlocks: 7},
			{Weight: 0.20, MinBlocks: 8, MaxBlocks: 15, Sequential: true},
			{Weight: 0.18, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
			{Weight: 0.16, MinBlocks: 32, MaxBlocks: 32, Sequential: true},
		},
		PatternsPerClass: 64,
		DatasetBytes:     8 << 30,
		Concurrency:      18000,
		BurstLen:         10,
		RevisitFrac:      0.32,
		ZipfTheta:        0.40,
		WriteFrac:        0.30,
		RepeatFrac:       0.20,
		GapMean:          270,
		MLP:              2,
		Cores:            16,
	},
	// Phase-shift stress: phases 0, 2, ... work a small slice at the
	// middle of the dataset (cache-resident at the full split, untouched
	// by a low-address memory partition); phases 1, 3, ... scan the
	// whole dataset uniformly, where an LRU cache churns (pages evict
	// before their next touch) while a pinned memory region retains its
	// share deterministically. The mix is singleton-heavy so hits come
	// from residency across visits, not footprint prefetch within one —
	// capacity decides, and no single static split wins both phases.
	PhaseShift: {
		Name: PhaseShift,
		Classes: []Class{
			{Weight: 0.55, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.25, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.12, MinBlocks: 4, MaxBlocks: 7},
			{Weight: 0.08, MinBlocks: 8, MaxBlocks: 15, Sequential: true},
		},
		PatternsPerClass: 48,
		DatasetBytes:     2 << 30,
		Concurrency:      12000,
		BurstLen:         6,
		RevisitFrac:      0.05,
		RecencyWindow:    600,
		ZipfTheta:        0,
		WriteFrac:        0.30,
		RepeatFrac:       0.10,
		GapMean:          300,
		MLP:              2,
		PhaseEvery:       300_000,
		PhaseFrac:        0.09,
		PhasePinFrac:     0.45,
		Cores:            16,
	},
	// Web Search (Nutch): dense index traversals, the friendliest
	// spatial locality in the suite.
	WebSearch: {
		Name: WebSearch,
		Classes: []Class{
			{Weight: 0.08, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.07, MinBlocks: 2, MaxBlocks: 3},
			{Weight: 0.12, MinBlocks: 4, MaxBlocks: 7, Sequential: true},
			{Weight: 0.20, MinBlocks: 8, MaxBlocks: 15, Sequential: true},
			{Weight: 0.28, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
			{Weight: 0.25, MinBlocks: 32, MaxBlocks: 32, Sequential: true},
		},
		PatternsPerClass: 48,
		DatasetBytes:     6 << 30,
		Concurrency:      16000,
		BurstLen:         12,
		RevisitFrac:      0.35,
		ZipfTheta:        0.45,
		WriteFrac:        0.25,
		RepeatFrac:       0.20,
		GapMean:          320,
		MLP:              2,
		Cores:            16,
	},
}

// ByName returns the calibrated profile for a workload name.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("synth: unknown workload %q (have %v)", name, Names())
	}
	return p, nil
}

// Names returns all workload names in the paper's presentation order,
// plus the phase-shift stress workload.
func Names() []string {
	return []string{DataServing, MapReduce, Multiprogrammed, SATSolver, WebFrontend, WebSearch, PhaseShift}
}

// All returns every profile in presentation order.
func All() []Profile {
	out := make([]Profile, 0, len(profiles))
	for _, n := range Names() {
		out = append(out, profiles[n])
	}
	return out
}

// sortedNames is used by tests to detect registry/Names drift.
func sortedNames() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
