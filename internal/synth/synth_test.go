package synth

import (
	"math/bits"
	"reflect"
	"testing"

	"fpcache/internal/memtrace"
)

func testProfile() Profile {
	return Profile{
		Name: "test",
		Classes: []Class{
			{Weight: 0.3, MinBlocks: 1, MaxBlocks: 1},
			{Weight: 0.4, MinBlocks: 4, MaxBlocks: 7, Sequential: true},
			{Weight: 0.3, MinBlocks: 16, MaxBlocks: 31, Sequential: true},
		},
		PatternsPerClass: 8,
		DatasetBytes:     64 << 20,
		Concurrency:      640,
		RevisitFrac:      0.3,
		ZipfTheta:        0.3,
		WriteFrac:        0.3,
		RepeatFrac:       0.1,
		GapMean:          50,
		MLP:              2,
		Cores:            4,
	}
}

func mustGen(t *testing.T, p Profile, seed int64, scale float64) *Generator {
	t.Helper()
	g, err := NewGenerator(p, seed, scale)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	cases := []func(*Profile){
		func(p *Profile) { p.Classes = nil },
		func(p *Profile) { p.Classes[0].Weight = -1 },
		func(p *Profile) { p.Classes[0].MinBlocks = 0 },
		func(p *Profile) { p.Classes[0].MinBlocks = 10; p.Classes[0].MaxBlocks = 5 },
		func(p *Profile) { p.Classes[1].MaxBlocks = 100 },
		func(p *Profile) { p.DatasetBytes = 100 },
		func(p *Profile) { p.Concurrency = 0 },
		func(p *Profile) { p.Cores = 0 },
		func(p *Profile) {
			for i := range p.Classes {
				p.Classes[i].Weight = 0
			}
		},
	}
	for i, mutate := range cases {
		p := testProfile()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: bad profile accepted", i)
		}
	}
}

func TestGeneratorRejectsBadScale(t *testing.T) {
	for _, s := range []float64{0, -1, 1.5} {
		if _, err := NewGenerator(testProfile(), 1, s); err == nil {
			t.Fatalf("scale %g accepted", s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustGen(t, testProfile(), 42, 1)
	b := mustGen(t, testProfile(), 42, 1)
	ra := memtrace.Collect(&memtrace.Limit{Src: a, N: 5000}, 0)
	rb := memtrace.Collect(&memtrace.Limit{Src: b, N: 5000}, 0)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("same seed produced different traces")
	}
	c := mustGen(t, testProfile(), 43, 1)
	rc := memtrace.Collect(&memtrace.Limit{Src: c, N: 5000}, 0)
	if reflect.DeepEqual(ra, rc) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAddressesWithinDataset(t *testing.T) {
	g := mustGen(t, testProfile(), 1, 1)
	limit := memtrace.Addr(g.Regions() * RegionBytes)
	for i := 0; i < 20000; i++ {
		rec, _ := g.Next()
		if rec.Addr >= limit {
			t.Fatalf("address %#x beyond dataset end %#x", rec.Addr, limit)
		}
		if rec.Addr%64 != 0 {
			t.Fatalf("address %#x not block aligned", rec.Addr)
		}
	}
}

func TestCoresAndGapsInRange(t *testing.T) {
	p := testProfile()
	g := mustGen(t, p, 1, 1)
	seen := map[uint8]bool{}
	for i := 0; i < 20000; i++ {
		rec, _ := g.Next()
		if int(rec.Core) >= p.Cores {
			t.Fatalf("core %d out of range", rec.Core)
		}
		seen[rec.Core] = true
		if rec.Gap < 1 || rec.Gap > uint32(2*p.GapMean) {
			t.Fatalf("gap %d outside [1,%d]", rec.Gap, 2*p.GapMean)
		}
	}
	if len(seen) != p.Cores {
		t.Fatalf("saw %d cores, want %d", len(seen), p.Cores)
	}
}

func TestWriteFractionApproximate(t *testing.T) {
	p := testProfile()
	g := mustGen(t, p, 1, 1)
	writes := 0
	const n = 50000
	for i := 0; i < n; i++ {
		rec, _ := g.Next()
		if rec.Write {
			writes++
		}
	}
	frac := float64(writes) / n
	if frac < p.WriteFrac-0.05 || frac > p.WriteFrac+0.05 {
		t.Fatalf("write fraction %.3f, want ~%.2f", frac, p.WriteFrac)
	}
}

func TestTemplateDeterministicAndBanded(t *testing.T) {
	g := mustGen(t, testProfile(), 7, 1)
	for class := range g.prof.Classes {
		for pat := 0; pat < g.prof.PatternsPerClass; pat++ {
			bits1, order1 := g.template(class, pat, 0)
			bits2, order2 := g.template(class, pat, 0)
			if bits1 != bits2 || !reflect.DeepEqual(order1, order2) {
				t.Fatal("template not deterministic")
			}
			c := g.prof.Classes[class]
			n := len(order1)
			if n < c.MinBlocks || n > c.MaxBlocks {
				t.Fatalf("class %d template size %d outside [%d,%d]", class, n, c.MinBlocks, c.MaxBlocks)
			}
			// Template confined to one 2KB half (32-block window).
			half := order1[0] / 32
			for _, b := range order1 {
				if b/32 != half {
					t.Fatalf("template crosses the half-region boundary")
				}
			}
		}
	}
}

func TestTemplateEpochDrift(t *testing.T) {
	g := mustGen(t, testProfile(), 7, 1)
	bits0, _ := g.template(1, 3, 0)
	bits1, _ := g.template(1, 3, 1)
	if bits0 == bits1 {
		t.Fatal("epoch change did not alter the template")
	}
}

func TestFullRegionClass(t *testing.T) {
	p := testProfile()
	p.Classes = []Class{{Weight: 1, FullRegion: true}}
	g := mustGen(t, p, 1, 1)
	bits, order := g.template(0, 0, 0)
	if bits != ^uint64(0) || len(order) != BlocksPerRegion {
		t.Fatal("full-region template wrong")
	}
}

func TestRegionPatternAffinity(t *testing.T) {
	// The same region must be visited by the same footprint most of
	// the time — this is the code/data correlation the predictor
	// needs. Track the footprint used per region and measure how
	// often it repeats on revisits.
	p := testProfile()
	p.RevisitFrac = 0.5
	g := mustGen(t, p, 3, 1)
	type key struct{ region int64 }
	seen := map[key]memtrace.PC{}
	match, revisit := 0, 0
	for i := 0; i < 200000; i++ {
		rec, _ := g.Next()
		region := int64(rec.Addr) / RegionBytes
		k := key{region}
		if pc, ok := seen[k]; ok {
			if rec.PC == pc {
				match++
			}
			revisit++
		} else {
			seen[k] = rec.PC
		}
	}
	if revisit == 0 {
		t.Fatal("no revisits observed")
	}
	if frac := float64(match) / float64(revisit); frac < 0.8 {
		t.Fatalf("region/pattern affinity only %.2f, want >= 0.8", frac)
	}
}

func TestBurstsClusterPerCore(t *testing.T) {
	p := testProfile()
	p.BurstLen = 8
	g := mustGen(t, p, 1, 1)
	// Consecutive records should frequently share a core (burst
	// emission), far above the 1/cores baseline.
	same := 0
	var prev memtrace.Record
	const n = 20000
	for i := 0; i < n; i++ {
		rec, _ := g.Next()
		if i > 0 && rec.Core == prev.Core {
			same++
		}
		prev = rec
	}
	if frac := float64(same) / n; frac < 0.5 {
		t.Fatalf("burst clustering %.2f, want >= 0.5", frac)
	}
}

func TestWorkloadRegistry(t *testing.T) {
	if len(Names()) != 7 {
		t.Fatalf("workload count = %d", len(Names()))
	}
	if got := sortedNames(); len(got) != len(Names()) {
		t.Fatalf("registry/Names drift: %v vs %v", got, Names())
	}
	for _, name := range Names() {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.MLP < 1 || p.GapMean < 1 {
			t.Fatalf("%s: MLP/gap unset", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if got := len(All()); got != 7 {
		t.Fatalf("All() = %d profiles", got)
	}
}

func TestScaleShrinksDataset(t *testing.T) {
	p := testProfile()
	full := mustGen(t, p, 1, 1)
	small := mustGen(t, p, 1, 0.25)
	if small.Regions() >= full.Regions() {
		t.Fatalf("scale did not shrink dataset: %d vs %d", small.Regions(), full.Regions())
	}
	if small.Profile().Concurrency >= full.Profile().Concurrency {
		t.Fatal("scale did not shrink concurrency")
	}
}

func TestDensityMixesDiffer(t *testing.T) {
	// MapReduce must be singleton-heavy relative to Web Search — the
	// structural contrast behind Figure 4.
	count := func(name string) (singles, dense int) {
		p, _ := ByName(name)
		g := mustGen(t, p, 1, 1.0/32)
		for i := 0; i < 50000; i++ {
			g.Next()
		}
		// Inspect active visits' template sizes.
		for _, v := range g.active {
			if len(v.blocks) == 1 {
				singles++
			}
			if bits.OnesCount64(v.emitted)+len(v.blocks)-v.next >= 16 {
				dense++
			}
		}
		return
	}
	mrS, _ := count(MapReduce)
	wsS, _ := count(WebSearch)
	if mrS <= wsS {
		t.Fatalf("MapReduce singleton visits (%d) not above Web Search (%d)", mrS, wsS)
	}
}

func TestZipfSkewConcentratesAccesses(t *testing.T) {
	p := testProfile()
	p.ZipfTheta = 0.9
	p.RevisitFrac = 0
	skewed := mustGen(t, p, 1, 1)
	p2 := testProfile()
	p2.ZipfTheta = 0
	p2.RevisitFrac = 0
	uniform := mustGen(t, p2, 1, 1)

	distinct := func(g *Generator) int {
		seen := map[int64]bool{}
		for i := 0; i < 30000; i++ {
			rec, _ := g.Next()
			seen[int64(rec.Addr)/RegionBytes] = true
		}
		return len(seen)
	}
	if distinct(skewed) >= distinct(uniform) {
		t.Fatal("zipf skew did not concentrate the reference stream")
	}
}
