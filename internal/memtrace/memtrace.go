// Package memtrace defines the memory-reference trace format shared by
// the workload generators, the cache models, and the timing simulator.
//
// A trace is a stream of Record values. Each record is one last-level
// (L2) cache miss arriving at the DRAM cache: the physical address,
// the program counter of the instruction that issued it (the paper's
// predictor is indexed by PC & offset, §3.1), the core it came from,
// and whether it is a read or a write.
//
// Traces can live in memory (Slice) or on disk in a compact binary
// encoding (Writer/Reader), and are always consumed through the Source
// interface so cache models do not care where records come from.
package memtrace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fpcache/internal/fault"
)

// corruptf builds a trace-corruption error carrying the taxonomy
// sentinel, so sweep layers classify it (fault.ClassCorruptTrace)
// without matching message strings. Args may include a wrapped cause
// via %w; if that cause already carries the sentinel (a nested
// corruptf), it is not appended again.
func corruptf(format string, args ...any) error {
	//fplint:ignore faulterr message-prefix step of the wrapping helper itself; the sentinel is attached just below
	err := fmt.Errorf("memtrace: "+format, args...)
	if errors.Is(err, fault.ErrCorruptTrace) {
		return err
	}
	return fmt.Errorf("%w: %w", err, fault.ErrCorruptTrace)
}

// Addr is a physical byte address.
type Addr uint64

// PC is an instruction address.
type PC uint64

// Record is a single memory reference at the DRAM-cache level.
type Record struct {
	PC    PC
	Addr  Addr
	Core  uint8
	Write bool
	// Gap is the number of non-memory instructions the issuing core
	// executed since its previous record; the timing model converts it
	// to compute cycles between memory requests.
	Gap uint32
}

// Source yields trace records until exhaustion.
type Source interface {
	// Next returns the next record. ok is false when the trace is
	// exhausted.
	Next() (rec Record, ok bool)
}

// Slice is an in-memory trace.
type Slice struct {
	Records []Record
	pos     int
}

// NewSlice wraps records in a Source.
func NewSlice(records []Record) *Slice { return &Slice{Records: records} }

// Next implements Source.
func (s *Slice) Next() (Record, bool) {
	if s.pos >= len(s.Records) {
		return Record{}, false
	}
	r := s.Records[s.pos]
	s.pos++
	return r, true
}

// Reset rewinds the slice so it can be replayed.
func (s *Slice) Reset() { s.pos = 0 }

// Collect drains a source into memory, up to max records (max <= 0
// means unbounded).
func Collect(src Source, max int) []Record {
	var out []Record
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Limit wraps a source, truncating it after N records. N <= 0 means
// unbounded — the same convention as Collect's max — so an accidental
// zero limit passes the source through instead of silently yielding an
// empty trace.
type Limit struct {
	Src  Source
	N    int
	seen int
}

// Next implements Source.
func (l *Limit) Next() (Record, bool) {
	if l.N > 0 && l.seen >= l.N {
		return Record{}, false
	}
	r, ok := l.Src.Next()
	if !ok {
		return Record{}, false
	}
	l.seen++
	return r, true
}

// Skip discards up to n records from src, returning how many were
// skipped (fewer than n only when the source is exhausted). Sources
// that support random access (FileReader over an indexed v2 trace)
// skip by seeking instead of decoding.
func Skip(src Source, n int) int {
	if n <= 0 {
		return 0
	}
	if s, ok := src.(interface{ SkipRecords(int) (int, error) }); ok {
		k, _ := s.SkipRecords(n)
		return k
	}
	for i := 0; i < n; i++ {
		if _, ok := src.Next(); !ok {
			return i
		}
	}
	return n
}

const (
	magic    = uint32(0xF007C0DE) // "FOOTCODE"
	version1 = uint16(1)
	version2 = uint16(2)
)

// Writer streams records to an io.Writer in the binary trace format.
type Writer struct {
	w       *bufio.Writer
	wrote   uint64
	started bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriterSize(w, 1<<16)} }

func (tw *Writer) header() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint16(hdr[4:], version1)
	_, err := tw.w.Write(hdr[:])
	return err
}

// Write appends one record.
func (tw *Writer) Write(r Record) error {
	if !tw.started {
		if err := tw.header(); err != nil {
			return err
		}
		tw.started = true
	}
	var buf [22]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.PC))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Addr))
	buf[16] = r.Core
	if r.Write {
		buf[17] = 1
	}
	binary.LittleEndian.PutUint32(buf[18:], r.Gap)
	if _, err := tw.w.Write(buf[:]); err != nil {
		return err
	}
	tw.wrote++
	return nil
}

// Flush commits buffered records. An empty trace still gets a header.
func (tw *Writer) Flush() error {
	if !tw.started {
		if err := tw.header(); err != nil {
			return err
		}
		tw.started = true
	}
	return tw.w.Flush()
}

// Count returns the number of records written so far.
func (tw *Writer) Count() uint64 { return tw.wrote }

// Reader decodes the binary trace formats; it implements Source.
// Both versions stream: v1's flat records and v2's chunked frames
// (v2.go) decode from a plain io.Reader — the trailing v2 chunk index
// is only needed for seeking (FileReader).
type Reader struct {
	r       *bufio.Reader
	err     error
	opened  bool
	version uint16

	// v2 streaming state: the current chunk's decoded payload and the
	// per-chunk delta baselines.
	chunk    chunkDecoder
	read     uint64 // records returned so far
	finished bool   // v2 index frame reached
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReaderSize(r, 1<<16)} }

// Err returns the first decoding error other than io.EOF, if any.
func (tr *Reader) Err() error { return tr.err }

func (tr *Reader) open() bool {
	v, err := readHeader(tr.r)
	if err != nil {
		tr.err = err
		return false
	}
	tr.version = v
	tr.opened = true
	return true
}

// Next implements Source.
func (tr *Reader) Next() (Record, bool) {
	if tr.err != nil {
		return Record{}, false
	}
	if !tr.opened && !tr.open() {
		return Record{}, false
	}
	if tr.version == version2 {
		return tr.nextV2()
	}
	var buf [22]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		if err != io.EOF {
			tr.err = corruptf("reading record: %w", err)
		}
		return Record{}, false
	}
	return decodeV1(buf), true
}

// readHeader consumes and validates the 8-byte trace header shared by
// both format versions, returning the version.
func readHeader(r io.Reader) (uint16, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, corruptf("reading header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return 0, corruptf("bad magic; not a trace file")
	}
	v := binary.LittleEndian.Uint16(hdr[4:])
	if v != version1 && v != version2 {
		return 0, corruptf("unsupported trace version %d", v)
	}
	return v, nil
}

// decodeV1 decodes one fixed-width v1 record.
func decodeV1(buf [22]byte) Record {
	return Record{
		PC:    PC(binary.LittleEndian.Uint64(buf[0:])),
		Addr:  Addr(binary.LittleEndian.Uint64(buf[8:])),
		Core:  buf[16],
		Write: buf[17] != 0,
		Gap:   binary.LittleEndian.Uint32(buf[18:]),
	}
}
