package memtrace

// Trace format v2: a streaming-friendly, seekable container for
// billion-reference traces.
//
// Layout (all integers varint unless noted):
//
//	header    magic u32le | version u16le = 2 | 2 reserved bytes
//	frames    chunk frames, then one index frame
//	chunk     0x01 | record count | payload length | payload | crc32c u32le
//	index     0x00 | chunk count | {offset delta, record count}* | total u64le
//	footer    index size u32le | "FPIX" magic u32le   (fixed 8 bytes)
//
// Records inside a chunk are delta/varint encoded (PC and Addr as
// zigzag deltas against the previous record, Gap as a plain varint,
// flags and core as raw bytes) with the delta baselines reset at every
// chunk boundary, so each chunk decodes independently of all others.
// The index frame's chunk offsets are deltas between successive chunk
// starts (the first is the absolute offset of the first chunk); the
// fixed-size footer lets a seekable reader locate the index from the
// end of the file. Streaming readers ignore the index entirely: chunk
// frames are self-framing and CRC-protected, and the index frame's
// marker byte doubles as the end-of-records sentinel.

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

const (
	chunkMarker = 0x01
	indexMarker = 0x00
	// DefaultChunkRecords is WriterV2's records-per-chunk default: big
	// enough to amortize framing, small enough that a Seek decodes at
	// most a few hundred KB.
	DefaultChunkRecords = 4096
	indexMagic          = uint32(0x46504958) // "FPIX"
	footerBytes         = 8
	// maxChunkPayload bounds a chunk's encoded size so a corrupt
	// length prefix cannot drive a giant allocation (a full chunk of
	// worst-case records stays far below this).
	maxChunkPayload = 64 << 20
	// writerChunkFlushBytes is WriterV2's payload soft cap: the chunk
	// flushes once its encoding reaches this size even if the record
	// target is not met, so an oversized SetChunkRecords can never
	// produce a chunk the readers' maxChunkPayload guard would reject.
	// The margin covers one worst-case record appended past the check.
	writerChunkFlushBytes = maxChunkPayload - 64
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// appendRecordV2 delta-encodes r against the previous record's PC and
// address, updating the baselines.
func appendRecordV2(buf []byte, r Record, prevPC, prevAddr *uint64) []byte {
	buf = binary.AppendUvarint(buf, zigzag(int64(uint64(r.PC)-*prevPC)))
	buf = binary.AppendUvarint(buf, zigzag(int64(uint64(r.Addr)-*prevAddr)))
	flags := byte(0)
	if r.Write {
		flags = 1
	}
	buf = append(buf, flags, r.Core)
	buf = binary.AppendUvarint(buf, uint64(r.Gap))
	*prevPC, *prevAddr = uint64(r.PC), uint64(r.Addr)
	return buf
}

// chunkDecoder decodes records from one chunk payload.
type chunkDecoder struct {
	payload          []byte
	pos              int
	left             int // records remaining in the payload
	prevPC, prevAddr uint64
}

// reset points the decoder at a fresh chunk payload.
func (d *chunkDecoder) reset(payload []byte, records int) {
	d.payload, d.pos, d.left = payload, 0, records
	d.prevPC, d.prevAddr = 0, 0
}

// next decodes one record; the caller checks d.left first.
func (d *chunkDecoder) next() (Record, error) {
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(d.payload[d.pos:])
		if n <= 0 {
			return 0, corruptf("chunk payload truncated at byte %d", d.pos)
		}
		d.pos += n
		return v, nil
	}
	dpc, err := uvarint()
	if err != nil {
		return Record{}, err
	}
	daddr, err := uvarint()
	if err != nil {
		return Record{}, err
	}
	if d.pos+2 > len(d.payload) {
		return Record{}, corruptf("chunk payload truncated at byte %d", d.pos)
	}
	flags, core := d.payload[d.pos], d.payload[d.pos+1]
	d.pos += 2
	gap, err := uvarint()
	if err != nil {
		return Record{}, err
	}
	if gap > (1<<32)-1 {
		return Record{}, corruptf("record gap %d overflows 32 bits", gap)
	}
	d.prevPC += uint64(unzigzag(dpc))
	d.prevAddr += uint64(unzigzag(daddr))
	d.left--
	return Record{
		PC:    PC(d.prevPC),
		Addr:  Addr(d.prevAddr),
		Core:  core,
		Write: flags&1 != 0,
		Gap:   uint32(gap),
	}, nil
}

// v2Chunk is one chunk-index entry.
type v2Chunk struct {
	offset  uint64 // file offset of the chunk's marker byte
	start   uint64 // index of the chunk's first record
	records uint64
}

// WriterV2 streams records to an io.Writer in trace format v2,
// accumulating the chunk index in memory and appending it on Close.
type WriterV2 struct {
	w         io.Writer
	chunkRecs int
	buf       []byte
	curRecs   int
	prevPC    uint64
	prevAddr  uint64
	offset    uint64
	index     []v2Chunk
	wrote     uint64
	started   bool
	closed    bool
}

// NewWriterV2 wraps w with the default chunk size.
func NewWriterV2(w io.Writer) *WriterV2 {
	return &WriterV2{w: w, chunkRecs: DefaultChunkRecords}
}

// SetChunkRecords overrides the records-per-chunk target; it must be
// called before the first Write.
func (tw *WriterV2) SetChunkRecords(n int) error {
	if tw.started {
		//fplint:ignore faulterr caller API misuse, not trace damage; ClassUnknown (no retry, no quarantine) is right
		return fmt.Errorf("memtrace: SetChunkRecords after first Write")
	}
	if n < 1 {
		//fplint:ignore faulterr caller API misuse, not trace damage; ClassUnknown (no retry, no quarantine) is right
		return fmt.Errorf("memtrace: chunk size %d must be positive", n)
	}
	tw.chunkRecs = n
	return nil
}

// Count returns the number of records written so far.
func (tw *WriterV2) Count() uint64 { return tw.wrote }

func (tw *WriterV2) write(p []byte) error {
	n, err := tw.w.Write(p)
	tw.offset += uint64(n)
	return err
}

func (tw *WriterV2) header() error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint16(hdr[4:], version2)
	return tw.write(hdr[:])
}

// Write appends one record.
func (tw *WriterV2) Write(r Record) error {
	if tw.closed {
		//fplint:ignore faulterr caller API misuse, not trace damage; ClassUnknown (no retry, no quarantine) is right
		return fmt.Errorf("memtrace: Write after Close")
	}
	if !tw.started {
		if err := tw.header(); err != nil {
			return err
		}
		tw.started = true
	}
	tw.buf = appendRecordV2(tw.buf, r, &tw.prevPC, &tw.prevAddr)
	tw.curRecs++
	tw.wrote++
	if tw.curRecs >= tw.chunkRecs || len(tw.buf) >= writerChunkFlushBytes {
		return tw.flushChunk()
	}
	return nil
}

// flushChunk frames and writes the pending chunk.
func (tw *WriterV2) flushChunk() error {
	frame := make([]byte, 0, len(tw.buf)+2*binary.MaxVarintLen64+5)
	frame = append(frame, chunkMarker)
	frame = binary.AppendUvarint(frame, uint64(tw.curRecs))
	frame = binary.AppendUvarint(frame, uint64(len(tw.buf)))
	frame = append(frame, tw.buf...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(tw.buf, crcTable))
	tw.index = append(tw.index, v2Chunk{offset: tw.offset, records: uint64(tw.curRecs)})
	if err := tw.write(frame); err != nil {
		return err
	}
	tw.buf = tw.buf[:0]
	tw.curRecs = 0
	tw.prevPC, tw.prevAddr = 0, 0
	return nil
}

// Close flushes the pending chunk and appends the index frame and
// footer. The writer is unusable afterwards. An empty trace still gets
// a header and an empty index.
func (tw *WriterV2) Close() error {
	if tw.closed {
		return nil
	}
	if !tw.started {
		if err := tw.header(); err != nil {
			return err
		}
		tw.started = true
	}
	if tw.curRecs > 0 {
		if err := tw.flushChunk(); err != nil {
			return err
		}
	}
	idx := []byte{indexMarker}
	idx = binary.AppendUvarint(idx, uint64(len(tw.index)))
	prev := uint64(0)
	for _, c := range tw.index {
		idx = binary.AppendUvarint(idx, c.offset-prev)
		idx = binary.AppendUvarint(idx, c.records)
		prev = c.offset
	}
	idx = binary.LittleEndian.AppendUint64(idx, tw.wrote)
	footer := make([]byte, 0, footerBytes)
	footer = binary.LittleEndian.AppendUint32(footer, uint32(len(idx)))
	footer = binary.LittleEndian.AppendUint32(footer, indexMagic)
	tw.closed = true
	if err := tw.write(idx); err != nil {
		return err
	}
	return tw.write(footer)
}

// readChunkFrame reads and validates one chunk frame (marker already
// consumed) from r, returning its payload (decoded into dst, grown as
// needed) and record count.
func readChunkFrame(r *bufio.Reader, dst []byte) (payload []byte, records int, err error) {
	recs, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, corruptf("reading chunk record count: %w", err)
	}
	plen, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, 0, corruptf("reading chunk length: %w", err)
	}
	if plen > maxChunkPayload {
		return nil, 0, corruptf("chunk payload of %d bytes exceeds the %d-byte limit", plen, maxChunkPayload)
	}
	if recs > plen {
		// Every record costs at least one byte; a higher count is
		// corruption, not a dense encoding.
		return nil, 0, corruptf("chunk claims %d records in %d bytes", recs, plen)
	}
	if uint64(cap(dst)) < plen {
		dst = make([]byte, plen)
	}
	dst = dst[:plen]
	if _, err := io.ReadFull(r, dst); err != nil {
		return nil, 0, corruptf("reading chunk payload: %w", err)
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r, crcBuf[:]); err != nil {
		return nil, 0, corruptf("reading chunk crc: %w", err)
	}
	if got, want := crc32.Checksum(dst, crcTable), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return nil, 0, corruptf("chunk crc mismatch (%#x, want %#x)", got, want)
	}
	return dst, int(recs), nil
}

// nextV2 advances the streaming reader through chunk frames.
func (tr *Reader) nextV2() (Record, bool) {
	for tr.chunk.left == 0 {
		if tr.finished {
			return Record{}, false
		}
		marker, err := tr.r.ReadByte()
		if err != nil {
			tr.err = corruptf("v2 trace truncated (missing chunk index): %w", err)
			return Record{}, false
		}
		switch marker {
		case indexMarker:
			tr.finished = true
			tr.checkIndex()
			return Record{}, false
		case chunkMarker:
			payload, recs, err := readChunkFrame(tr.r, tr.chunk.payload)
			if err != nil {
				tr.err = err
				return Record{}, false
			}
			tr.chunk.reset(payload, recs)
		default:
			tr.err = corruptf("unknown frame marker %#x", marker)
			return Record{}, false
		}
	}
	rec, err := tr.chunk.next()
	if err != nil {
		tr.err = err
		return Record{}, false
	}
	tr.read++
	return rec, true
}

// checkIndex consumes the trailing index frame (marker already read)
// and cross-checks its total against the records delivered, so a
// mid-file truncation that happens to land on a frame boundary is
// still detected.
func (tr *Reader) checkIndex() {
	n, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = corruptf("reading chunk index: %w", err)
		return
	}
	for i := uint64(0); i < n; i++ {
		if _, err := binary.ReadUvarint(tr.r); err == nil {
			_, err = binary.ReadUvarint(tr.r)
		}
		if err != nil {
			tr.err = corruptf("reading chunk index entry %d: %w", i, err)
			return
		}
	}
	var buf [8]byte
	if _, err := io.ReadFull(tr.r, buf[:]); err != nil {
		tr.err = corruptf("reading trace total: %w", err)
		return
	}
	if total := binary.LittleEndian.Uint64(buf[:]); total != tr.read {
		tr.err = corruptf("trace index records %d references, stream delivered %d", total, tr.read)
	}
}

// FileReader is the random-access face of the trace formats: a Source
// over an io.ReadSeeker that can jump to any record index — O(1) for
// fixed-width v1 files, one chunk decode for indexed v2 files.
type FileReader struct {
	rs      io.ReadSeeker
	br      *bufio.Reader
	version uint16
	total   uint64
	size    int64  // file size in bytes
	next    uint64 // index of the record the next Next returns
	limit   uint64 // Next stops at this record index (total, or a section end)
	err     error

	// v2 state.
	chunks []v2Chunk
	cur    int // chunks[cur] is loaded in chunk; len(chunks) = exhausted
	chunk  chunkDecoder
}

// NewFileReader opens a trace file of either version, reading the v2
// chunk index from the trailer. v2 files without a valid index are
// rejected — stream them with NewReader instead.
func NewFileReader(rs io.ReadSeeker) (*FileReader, error) {
	fr := &FileReader{rs: rs, br: bufio.NewReaderSize(rs, 1<<16)}
	if _, err := rs.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	fr.br.Reset(rs)
	v, err := readHeader(fr.br)
	if err != nil {
		return nil, err
	}
	fr.version = v
	size, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	fr.size = size
	if v == version1 {
		if (size-8)%22 != 0 {
			return nil, corruptf("v1 trace of %d bytes is truncated mid-record", size)
		}
		fr.total = uint64(size-8) / 22
	} else if err := fr.loadIndex(size); err != nil {
		return nil, err
	}
	fr.limit = fr.total
	return fr, fr.SeekRecord(0)
}

// OpenSection returns an independent reader over the record range
// [start, start+n) of the same trace file — the unit of work of the
// interval-parallel runner. The section shares the parent's decoded
// chunk index (read-only) but owns its file cursor, buffer, and
// decoder state, so any number of sections (and the parent) can read
// concurrently: the underlying reader must implement io.ReaderAt
// (os.File does; sections read through positioned io.SectionReader
// views, never the shared seek offset). Len still reports the whole
// trace; the section's Next exhausts after n records.
func (fr *FileReader) OpenSection(start, n uint64) (*FileReader, error) {
	ra, ok := fr.rs.(io.ReaderAt)
	if !ok {
		//fplint:ignore faulterr caller API misuse, not trace damage; ClassUnknown (no retry, no quarantine) is right
		return nil, fmt.Errorf("memtrace: trace reader %T is not an io.ReaderAt; concurrent sections need random access", fr.rs)
	}
	if start > fr.total || n > fr.total-start {
		return nil, corruptf("section [%d, %d) outside trace of %d records", start, start+n, fr.total)
	}
	sub := &FileReader{
		rs:      io.NewSectionReader(ra, 0, fr.size),
		version: fr.version,
		total:   fr.total,
		size:    fr.size,
		limit:   start + n,
		chunks:  fr.chunks,
	}
	sub.br = bufio.NewReaderSize(sub.rs, 1<<16)
	return sub, sub.SeekRecord(start)
}

// loadIndex locates and decodes the v2 chunk index from the footer.
func (fr *FileReader) loadIndex(size int64) error {
	if size < 8+footerBytes {
		return corruptf("v2 trace of %d bytes has no room for a footer", size)
	}
	var footer [footerBytes]byte
	if _, err := fr.rs.Seek(size-footerBytes, io.SeekStart); err != nil {
		return err
	}
	if _, err := io.ReadFull(fr.rs, footer[:]); err != nil {
		return corruptf("reading footer: %w", err)
	}
	if m := binary.LittleEndian.Uint32(footer[4:]); m != indexMagic {
		return corruptf("bad index magic %#x (trace truncated or not indexed)", m)
	}
	idxSize := int64(binary.LittleEndian.Uint32(footer[0:]))
	idxStart := size - footerBytes - idxSize
	if idxStart < 8 {
		return corruptf("index size %d overruns the file", idxSize)
	}
	if _, err := fr.rs.Seek(idxStart, io.SeekStart); err != nil {
		return err
	}
	fr.br.Reset(fr.rs)
	marker, err := fr.br.ReadByte()
	if err != nil {
		return corruptf("reading index marker: %w", err)
	}
	if marker != indexMarker {
		return corruptf("index frame marker %#x, want %#x (corrupt index)", marker, indexMarker)
	}
	n, err := binary.ReadUvarint(fr.br)
	if err != nil {
		return corruptf("reading chunk count: %w", err)
	}
	if int64(n) > size {
		return corruptf("chunk count %d exceeds file size", n)
	}
	fr.chunks = make([]v2Chunk, 0, n)
	var offset, start uint64
	for i := uint64(0); i < n; i++ {
		d, err := binary.ReadUvarint(fr.br)
		if err != nil {
			return corruptf("reading chunk %d offset: %w", i, err)
		}
		recs, err := binary.ReadUvarint(fr.br)
		if err != nil {
			return corruptf("reading chunk %d record count: %w", i, err)
		}
		offset += d
		if offset < 8 || int64(offset) >= idxStart || recs == 0 {
			return corruptf("chunk %d (offset %d, %d records) is outside the data section", i, offset, recs)
		}
		fr.chunks = append(fr.chunks, v2Chunk{offset: offset, start: start, records: recs})
		start += recs
	}
	var buf [8]byte
	if _, err := io.ReadFull(fr.br, buf[:]); err != nil {
		return corruptf("reading trace total: %w", err)
	}
	fr.total = binary.LittleEndian.Uint64(buf[:])
	if fr.total != start {
		return corruptf("index total %d disagrees with chunk sum %d", fr.total, start)
	}
	return nil
}

// Len returns the total record count.
func (fr *FileReader) Len() uint64 { return fr.total }

// Version returns the trace format version (1 or 2).
func (fr *FileReader) Version() uint16 { return fr.version }

// Chunks returns the v2 chunk index as (offset, first record, record
// count) triples; nil for v1 traces. The slice is the reader's own.
func (fr *FileReader) Chunks() (offsets, starts, counts []uint64) {
	for _, c := range fr.chunks {
		offsets = append(offsets, c.offset)
		starts = append(starts, c.start)
		counts = append(counts, c.records)
	}
	return
}

// TraceID returns a stable content identifier for the trace — the
// SHA-256 of the file bytes, "sha256:"-prefixed. Interval checkpoints
// embed it in their warm-cache keys and snapshot metadata, so a
// checkpoint of one trace can never continue a run over different
// content. It reads the whole file once through the io.ReaderAt face
// (required for sections anyway), leaving the reader's cursor alone.
func (fr *FileReader) TraceID() (string, error) {
	ra, ok := fr.rs.(io.ReaderAt)
	if !ok {
		//fplint:ignore faulterr caller API misuse, not trace damage; ClassUnknown (no retry, no quarantine) is right
		return "", fmt.Errorf("memtrace: trace reader %T is not an io.ReaderAt; content hashing needs random access", fr.rs)
	}
	h := sha256.New()
	if _, err := io.Copy(h, io.NewSectionReader(ra, 0, fr.size)); err != nil {
		return "", fmt.Errorf("memtrace: hashing trace content: %w", err)
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil)), nil
}

// Err returns the first decoding error, if any.
func (fr *FileReader) Err() error { return fr.err }

func (fr *FileReader) fail(err error) {
	if fr.err == nil {
		fr.err = err
	}
}

// seekTo positions the buffered reader at a file offset.
func (fr *FileReader) seekTo(offset uint64) error {
	if _, err := fr.rs.Seek(int64(offset), io.SeekStart); err != nil {
		return err
	}
	fr.br.Reset(fr.rs)
	return nil
}

// loadChunk seeks to chunk i and decodes its frame.
func (fr *FileReader) loadChunk(i int) error {
	c := fr.chunks[i]
	if err := fr.seekTo(c.offset); err != nil {
		return err
	}
	marker, err := fr.br.ReadByte()
	if err != nil {
		return corruptf("reading chunk %d marker: %w", i, err)
	}
	if marker != chunkMarker {
		return corruptf("chunk %d marker %#x, want %#x", i, marker, chunkMarker)
	}
	payload, recs, err := readChunkFrame(fr.br, fr.chunk.payload)
	if err != nil {
		return corruptf("chunk %d: %w", i, err)
	}
	if uint64(recs) != c.records {
		return corruptf("chunk %d holds %d records, index says %d", i, recs, c.records)
	}
	fr.cur = i
	fr.chunk.reset(payload, recs)
	return nil
}

// SeekRecord positions the reader so the next Next returns record i
// (i == Len() positions at end-of-trace). Seeking clears a previous
// decode error only if the seek itself succeeds.
func (fr *FileReader) SeekRecord(i uint64) error {
	if i > fr.total {
		return corruptf("seek to record %d beyond trace of %d", i, fr.total)
	}
	if fr.version == version1 {
		if err := fr.seekTo(8 + 22*i); err != nil {
			return err
		}
		fr.err = nil
		fr.next = i
		return nil
	}
	if i == fr.total {
		fr.cur = len(fr.chunks)
		fr.chunk.reset(fr.chunk.payload[:0], 0)
		fr.err = nil
		fr.next = i
		return nil
	}
	c := sort.Search(len(fr.chunks), func(k int) bool {
		return fr.chunks[k].start+fr.chunks[k].records > i
	})
	if err := fr.loadChunk(c); err != nil {
		return err
	}
	fr.err = nil
	for skip := i - fr.chunks[c].start; skip > 0; skip-- {
		if _, err := fr.chunk.next(); err != nil {
			fr.fail(err)
			return err
		}
	}
	fr.next = i
	return nil
}

// Verify is the trace fsck (tracegen -verify): it walks the whole
// file — every chunk frame for v2 (CRC, framing, full record decode,
// index agreement), every fixed-width record for v1 — and returns a
// typed corruption error (fault.ErrCorruptTrace) naming the first bad
// chunk and its file offset, or nil for a clean file. On success the
// reader is repositioned at record 0; after a corruption it is
// poisoned like any other decode failure.
func (fr *FileReader) Verify() error {
	if fr.version == version1 {
		if err := fr.SeekRecord(0); err != nil {
			return err
		}
		var n uint64
		for {
			if _, ok := fr.Next(); !ok {
				break
			}
			n++
		}
		if fr.err != nil {
			return fr.err
		}
		if n != fr.total {
			return corruptf("verify: v1 trace delivered %d of %d records", n, fr.total)
		}
		return fr.SeekRecord(0)
	}
	for i := range fr.chunks {
		c := fr.chunks[i]
		if err := fr.loadChunk(i); err != nil {
			fr.fail(err)
			return corruptf("verify: chunk %d at offset %d: %w", i, c.offset, err)
		}
		for fr.chunk.left > 0 {
			if _, err := fr.chunk.next(); err != nil {
				fr.fail(err)
				return corruptf("verify: chunk %d at offset %d: %w", i, c.offset, err)
			}
		}
		if fr.chunk.pos != len(fr.chunk.payload) {
			err := corruptf("verify: chunk %d at offset %d: %d trailing payload bytes",
				i, c.offset, len(fr.chunk.payload)-fr.chunk.pos)
			fr.fail(err)
			return err
		}
	}
	return fr.SeekRecord(0)
}

// SkipRecords discards up to n records by seeking, returning how many
// were skipped (fewer only at end-of-trace).
func (fr *FileReader) SkipRecords(n int) (int, error) {
	if n <= 0 || fr.err != nil {
		return 0, fr.err
	}
	k := uint64(n)
	if left := fr.limit - fr.next; k > left {
		k = left
	}
	if err := fr.SeekRecord(fr.next + k); err != nil {
		return 0, err
	}
	return int(k), nil
}

// Next implements Source.
func (fr *FileReader) Next() (Record, bool) {
	if fr.err != nil || fr.next >= fr.limit {
		return Record{}, false
	}
	if fr.version == version1 {
		var buf [22]byte
		if _, err := io.ReadFull(fr.br, buf[:]); err != nil {
			fr.fail(corruptf("reading record %d: %w", fr.next, err))
			return Record{}, false
		}
		fr.next++
		return decodeV1(buf), true
	}
	if fr.chunk.left == 0 {
		if fr.cur+1 >= len(fr.chunks) {
			fr.fail(corruptf("chunk index exhausted at record %d of %d", fr.next, fr.total))
			return Record{}, false
		}
		if err := fr.loadChunk(fr.cur + 1); err != nil {
			fr.fail(err)
			return Record{}, false
		}
	}
	rec, err := fr.chunk.next()
	if err != nil {
		fr.fail(err)
		return Record{}, false
	}
	fr.next++
	return rec, true
}
