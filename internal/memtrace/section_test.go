package memtrace

import (
	"bytes"
	"io"
	"reflect"
	"sync"
	"testing"
)

// v1Bytes encodes records into a v1 trace.
func v1Bytes(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

// TestOpenSectionRoundTrip: any [start, start+n) section of either
// format delivers exactly the serial reader's records for that range.
func TestOpenSectionRoundTrip(t *testing.T) {
	recs := genRecords(1000, 7)
	for name, data := range map[string][]byte{
		"v1": v1Bytes(t, recs),
		"v2": writeV2(t, recs, 64),
	} {
		fr, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: NewFileReader: %v", name, err)
		}
		for _, sec := range [][2]uint64{{0, 1000}, {0, 0}, {17, 130}, {63, 65}, {999, 1}, {500, 500}, {1000, 0}} {
			start, n := sec[0], sec[1]
			sr, err := fr.OpenSection(start, n)
			if err != nil {
				t.Fatalf("%s: OpenSection(%d, %d): %v", name, start, n, err)
			}
			got, err := drain(sr)
			if err != nil {
				t.Fatalf("%s: section [%d,%d): %v", name, start, start+n, err)
			}
			want := recs[start : start+n]
			if uint64(len(got)) != n {
				t.Fatalf("%s: section [%d,%d) delivered %d records", name, start, start+n, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: section [%d,%d) record %d = %+v, want %+v", name, start, start+n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOpenSectionConcurrent: sections of one shared file decode
// correctly from many goroutines at once (run under -race in CI), and
// concurrently with the parent's own sequential reads.
func TestOpenSectionConcurrent(t *testing.T) {
	recs := genRecords(4096, 11)
	data := writeV2(t, recs, 100)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	const parts = 16
	per := uint64(len(recs) / parts)
	var wg sync.WaitGroup
	errs := make([]error, parts)
	got := make([][]Record, parts)
	for p := 0; p < parts; p++ {
		sr, err := fr.OpenSection(uint64(p)*per, per)
		if err != nil {
			t.Fatalf("OpenSection part %d: %v", p, err)
		}
		wg.Add(1)
		go func(p int, sr *FileReader) {
			defer wg.Done()
			got[p], errs[p] = drain(sr)
		}(p, sr)
	}
	// The parent keeps streaming while sections read.
	parent, parentErr := drain(fr)
	wg.Wait()
	if parentErr != nil {
		t.Fatalf("parent drain: %v", parentErr)
	}
	if !reflect.DeepEqual(parent, recs) {
		t.Fatal("parent records diverged while sections were open")
	}
	var joined []Record
	for p := 0; p < parts; p++ {
		if errs[p] != nil {
			t.Fatalf("part %d: %v", p, errs[p])
		}
		joined = append(joined, got[p]...)
	}
	if !reflect.DeepEqual(joined, recs) {
		t.Fatal("concatenated sections diverge from the serial trace")
	}
}

// TestOpenSectionBounds: out-of-range sections fail instead of
// clamping silently.
func TestOpenSectionBounds(t *testing.T) {
	data := writeV2(t, genRecords(100, 3), 16)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	if _, err := fr.OpenSection(101, 0); err == nil {
		t.Fatal("section starting past the trace succeeded")
	}
	if _, err := fr.OpenSection(50, 51); err == nil {
		t.Fatal("section overrunning the trace succeeded")
	}
}

// TestOpenSectionNeedsReaderAt: a reader without random access cannot
// mint sections, and says so. Embedding only the io.ReadSeeker face of
// a bytes.Reader hides its ReadAt method.
func TestOpenSectionNeedsReaderAt(t *testing.T) {
	data := writeV2(t, genRecords(10, 1), 4)
	type rs struct{ io.ReadSeeker }
	fr, err := NewFileReader(rs{bytes.NewReader(data)})
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	if _, err := fr.OpenSection(0, 10); err == nil {
		t.Fatal("OpenSection on a non-ReaderAt succeeded")
	}
}

// TestSectionSkipRecords: skipping inside a section clamps at the
// section end, not the trace end.
func TestSectionSkipRecords(t *testing.T) {
	recs := genRecords(300, 5)
	fr, err := NewFileReader(bytes.NewReader(writeV2(t, recs, 32)))
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	sr, err := fr.OpenSection(100, 50)
	if err != nil {
		t.Fatalf("OpenSection: %v", err)
	}
	if k, err := sr.SkipRecords(10); err != nil || k != 10 {
		t.Fatalf("SkipRecords(10) = %d, %v", k, err)
	}
	if rec, ok := sr.Next(); !ok || rec != recs[110] {
		t.Fatalf("after skip: %+v, want %+v", rec, recs[110])
	}
	if k, err := sr.SkipRecords(1000); err != nil || k != 39 {
		t.Fatalf("SkipRecords(1000) = %d, %v (want clamp to 39)", k, err)
	}
	if _, ok := sr.Next(); ok {
		t.Fatal("section yielded past its end")
	}
}
