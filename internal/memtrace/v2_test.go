package memtrace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"fpcache/internal/fault"
)

// genRecords builds a deterministic pseudo-random record stream with
// the locality structure real traces have (small address deltas with
// occasional jumps), so delta encoding is exercised in both regimes.
func genRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]Record, n)
	pc, addr := uint64(0x400000), uint64(1<<32)
	for i := range recs {
		if rng.Intn(10) == 0 {
			addr = rng.Uint64() >> 16
			pc = 0x400000 + uint64(rng.Intn(1<<20))
		} else {
			addr += uint64(rng.Intn(4096)) - 1024
			pc += uint64(rng.Intn(64))
		}
		recs[i] = Record{
			PC:    PC(pc),
			Addr:  Addr(addr),
			Core:  uint8(rng.Intn(256)),
			Write: rng.Intn(4) == 0,
			Gap:   uint32(rng.Intn(500)),
		}
	}
	return recs
}

// writeV2 encodes records into a v2 trace with the given chunk size.
func writeV2(t *testing.T, recs []Record, chunkRecs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterV2(&buf)
	if err := w.SetChunkRecords(chunkRecs); err != nil {
		t.Fatalf("SetChunkRecords: %v", err)
	}
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(recs))
	}
	return buf.Bytes()
}

// drain collects every record from a source and its terminal error.
func drain(src Source) ([]Record, error) {
	var out []Record
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	type errer interface{ Err() error }
	if e, ok := src.(errer); ok {
		return out, e.Err()
	}
	return out, nil
}

func TestV2StreamRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		recs := genRecords(n, int64(n)+1)
		data := writeV2(t, recs, 64)
		got, err := drain(NewReader(bytes.NewReader(data)))
		if err != nil {
			t.Fatalf("n=%d: stream error: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: got %d records", n, len(got))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("n=%d: record %d = %+v, want %+v", n, i, got[i], recs[i])
			}
		}
	}
}

func TestV2FileReaderRoundTripAndSeek(t *testing.T) {
	recs := genRecords(1000, 7)
	data := writeV2(t, recs, 100)
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("NewFileReader: %v", err)
	}
	if fr.Len() != 1000 || fr.Version() != 2 {
		t.Fatalf("Len=%d Version=%d", fr.Len(), fr.Version())
	}
	got, err := drain(fr)
	if err != nil || len(got) != 1000 {
		t.Fatalf("drain: %d records, err %v", len(got), err)
	}
	// Seek to assorted positions, including chunk boundaries and EOF.
	for _, i := range []uint64{0, 1, 99, 100, 101, 500, 999, 1000} {
		if err := fr.SeekRecord(i); err != nil {
			t.Fatalf("SeekRecord(%d): %v", i, err)
		}
		r, ok := fr.Next()
		if i == 1000 {
			if ok {
				t.Fatalf("Next after Seek(EOF) yielded %+v", r)
			}
			continue
		}
		if !ok || r != recs[i] {
			t.Fatalf("Seek(%d) -> %+v ok=%v, want %+v", i, r, ok, recs[i])
		}
	}
	if err := fr.SeekRecord(1001); err == nil {
		t.Fatal("SeekRecord beyond EOF succeeded")
	}
	// SkipRecords advances exactly and clamps at EOF.
	if err := fr.SeekRecord(0); err != nil {
		t.Fatal(err)
	}
	if k, _ := fr.SkipRecords(250); k != 250 {
		t.Fatalf("SkipRecords = %d", k)
	}
	if r, ok := fr.Next(); !ok || r != recs[250] {
		t.Fatalf("after skip: %+v ok=%v", r, ok)
	}
	if k, _ := fr.SkipRecords(10_000); k != 1000-251 {
		t.Fatalf("clamped skip = %d, want %d", k, 1000-251)
	}
}

func TestV1FileReaderSeek(t *testing.T) {
	recs := genRecords(200, 3)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewFileReader(v1): %v", err)
	}
	if fr.Len() != 200 || fr.Version() != 1 {
		t.Fatalf("Len=%d Version=%d", fr.Len(), fr.Version())
	}
	for _, i := range []uint64{0, 137, 199} {
		if err := fr.SeekRecord(i); err != nil {
			t.Fatalf("SeekRecord(%d): %v", i, err)
		}
		if r, ok := fr.Next(); !ok || r != recs[i] {
			t.Fatalf("Seek(%d) -> %+v ok=%v", i, r, ok)
		}
	}
	if err := fr.SeekRecord(0); err != nil {
		t.Fatal(err)
	}
	got, err := drain(fr)
	if err != nil || len(got) != 200 {
		t.Fatalf("full drain: %d records, err %v", len(got), err)
	}
}

// TestCrossVersionReads pins that both reader types read both formats.
func TestCrossVersionReads(t *testing.T) {
	recs := genRecords(300, 11)
	var v1 bytes.Buffer
	w1 := NewWriter(&v1)
	for _, r := range recs {
		if err := w1.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w1.Flush(); err != nil {
		t.Fatal(err)
	}
	v2 := writeV2(t, recs, 77)

	for name, data := range map[string][]byte{"v1": v1.Bytes(), "v2": v2} {
		got, err := drain(NewReader(bytes.NewReader(data)))
		if err != nil || len(got) != 300 {
			t.Fatalf("%s stream: %d records, err %v", name, len(got), err)
		}
		fr, err := NewFileReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s NewFileReader: %v", name, err)
		}
		got, err = drain(fr)
		if err != nil || len(got) != 300 {
			t.Fatalf("%s file: %d records, err %v", name, len(got), err)
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("%s record %d mismatch", name, i)
			}
		}
	}
}

func TestV2TruncatedChunk(t *testing.T) {
	recs := genRecords(500, 5)
	data := writeV2(t, recs, 100)
	// Cut the stream mid-chunk: streaming reads must error, not stop
	// silently.
	cut := data[:len(data)/2]
	got, err := drain(NewReader(bytes.NewReader(cut)))
	if err == nil {
		t.Fatalf("truncated stream read %d records without error", len(got))
	}
	if _, err := NewFileReader(bytes.NewReader(cut)); err == nil {
		t.Fatal("NewFileReader accepted a truncated trace")
	}
}

func TestV2CorruptPayload(t *testing.T) {
	recs := genRecords(300, 9)
	data := writeV2(t, recs, 100)
	// Flip a byte inside the first chunk's payload: the CRC must catch
	// it on both read paths.
	corrupt := append([]byte(nil), data...)
	corrupt[40] ^= 0xFF
	if _, err := drain(NewReader(bytes.NewReader(corrupt))); err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("streaming read of corrupt chunk: err %v", err)
	}
	// The seekable reader hits the bad chunk either at open (it loads
	// chunk 0 eagerly) or while draining.
	fr, err := NewFileReader(bytes.NewReader(corrupt))
	if err == nil {
		_, err = drain(fr)
	}
	if err == nil || !strings.Contains(err.Error(), "crc") {
		t.Fatalf("file read of corrupt chunk: err %v", err)
	}
}

func TestV2CorruptIndex(t *testing.T) {
	recs := genRecords(300, 13)
	data := writeV2(t, recs, 100)

	// Bad footer magic.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xFF
	if _, err := NewFileReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("NewFileReader accepted a bad footer magic")
	}

	// Index size pointing outside the file.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(bad[len(bad)-8:], uint32(len(bad)))
	if _, err := NewFileReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("NewFileReader accepted an oversized index")
	}

	// A lying total-record count.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[len(bad)-16:], 12345)
	if _, err := NewFileReader(bytes.NewReader(bad)); err == nil {
		t.Fatal("NewFileReader accepted a wrong record total")
	}
	// The streaming reader cross-checks the same total.
	if _, err := drain(NewReader(bytes.NewReader(bad))); err == nil {
		t.Fatal("streaming reader accepted a wrong record total")
	}
}

func TestSkipFallback(t *testing.T) {
	recs := genRecords(50, 17)
	s := NewSlice(recs)
	if k := Skip(s, 20); k != 20 {
		t.Fatalf("Skip = %d", k)
	}
	if r, _ := s.Next(); r != recs[20] {
		t.Fatalf("after Skip: %+v", r)
	}
	if k := Skip(s, 1000); k != 29 {
		t.Fatalf("clamped Skip = %d, want 29", k)
	}
}

func TestLimitZeroMeansUnbounded(t *testing.T) {
	recs := genRecords(10, 19)
	for _, n := range []int{0, -1} {
		l := &Limit{Src: NewSlice(recs), N: n}
		got, _ := drain(l)
		if len(got) != 10 {
			t.Fatalf("Limit{N:%d} yielded %d records, want all 10", n, len(got))
		}
	}
	l := &Limit{Src: NewSlice(recs), N: 3}
	if got, _ := drain(l); len(got) != 3 {
		t.Fatalf("Limit{N:3} yielded %d records", len(got))
	}
}

// TestVerifyCleanAndCorrupt pins the fsck path (tracegen -verify): a
// clean file verifies and stays usable; a bit flip anywhere in a chunk
// payload fails Verify with a typed corruption error naming a chunk.
func TestVerifyCleanAndCorrupt(t *testing.T) {
	recs := genRecords(500, 9)
	data := writeV2(t, recs, 64)

	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Verify(); err != nil {
		t.Fatalf("clean trace failed verify: %v", err)
	}
	// Verify leaves the reader positioned at record 0.
	got, err := drain(fr)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("post-verify read: %d records, err %v", len(got), err)
	}

	// Flip one bit inside the second chunk's payload.
	offsets, _, _ := fr.Chunks()
	if len(offsets) < 3 {
		t.Fatalf("want several chunks, have %d", len(offsets))
	}
	bad := append([]byte(nil), data...)
	bad[offsets[1]+8] ^= 0x10
	fr2, err := NewFileReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	verr := fr2.Verify()
	if verr == nil {
		t.Fatal("corrupt trace passed verify")
	}
	if !errors.Is(verr, fault.ErrCorruptTrace) {
		t.Fatalf("verify error does not wrap ErrCorruptTrace: %v", verr)
	}
	if !strings.Contains(verr.Error(), "chunk 1") {
		t.Fatalf("verify error does not name the corrupt chunk: %v", verr)
	}

	// Verify also covers v1 files.
	var v1 bytes.Buffer
	w := NewWriter(&v1)
	for _, r := range recs[:50] {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	fr3, err := NewFileReader(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := fr3.Verify(); err != nil {
		t.Fatalf("clean v1 trace failed verify: %v", err)
	}
}
