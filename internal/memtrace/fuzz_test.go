package memtrace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRoundTrip drives arbitrary records through the binary encoding:
// whatever Writer emits, Reader must return verbatim.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0x400123), uint64(0x7f001240), uint8(3), true, uint32(17))
	f.Add(uint64(0), uint64(0), uint8(0), false, uint32(0))
	f.Add(^uint64(0), ^uint64(0), uint8(255), true, ^uint32(0))
	f.Fuzz(func(t *testing.T, pc, addr uint64, core uint8, write bool, gap uint32) {
		recs := []Record{
			{PC: PC(pc), Addr: Addr(addr), Core: core, Write: write, Gap: gap},
			{PC: PC(addr), Addr: Addr(pc), Core: ^core, Write: !write, Gap: gap ^ 0x5555},
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r := NewReader(&buf)
		for i, want := range recs {
			got, ok := r.Next()
			if !ok {
				t.Fatalf("record %d: stream ended early (err %v)", i, r.Err())
			}
			if got != want {
				t.Fatalf("record %d: %+v round-tripped to %+v", i, want, got)
			}
		}
		if _, ok := r.Next(); ok {
			t.Fatal("phantom record after stream end")
		}
		if r.Err() != nil {
			t.Fatalf("clean stream reported error: %v", r.Err())
		}
	})
}

// FuzzReaderRobust feeds arbitrary bytes to the decoder: it must never
// panic, and any stream that does not start with a valid header must
// surface an error rather than fabricate records.
func FuzzReaderRobust(f *testing.F) {
	valid := func(recs ...Record) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			_ = w.Write(r)
		}
		_ = w.Flush()
		return buf.Bytes()
	}
	f.Add([]byte{})
	f.Add([]byte("garbage that is definitely not a trace"))
	f.Add(valid())
	f.Add(valid(Record{PC: 1, Addr: 2, Core: 3, Write: true, Gap: 4}))
	// Truncated record tail.
	f.Add(valid(Record{PC: 1, Addr: 2})[:8+10])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		n := 0
		for {
			if _, ok := r.Next(); !ok {
				break
			}
			n++
		}
		headerOK := len(data) >= 8 &&
			binary.LittleEndian.Uint32(data[0:]) == magic &&
			(binary.LittleEndian.Uint16(data[4:]) == version1 ||
				binary.LittleEndian.Uint16(data[4:]) == version2)
		if !headerOK {
			if n != 0 {
				t.Fatalf("decoded %d records from a stream with no valid header", n)
			}
			if r.Err() == nil {
				t.Fatal("invalid header accepted silently")
			}
			return
		}
		if binary.LittleEndian.Uint16(data[4:]) == version2 {
			// A v2 header over arbitrary bytes: reaching here without a
			// panic is the property; frame-level corruption handling is
			// pinned by the deterministic tests in v2_test.go.
			return
		}
		// Valid header: every whole 22-byte record decodes; a ragged
		// tail must be reported as an error, a clean end must not.
		body := len(data) - 8
		if want := body / 22; n != want {
			t.Fatalf("decoded %d records from %d body bytes, want %d", n, body, want)
		}
		if ragged := body%22 != 0; ragged && r.Err() == nil {
			t.Fatal("truncated record accepted silently")
		} else if !ragged && r.Err() != nil {
			t.Fatalf("clean stream reported error: %v", r.Err())
		}
	})
}

// TestCorruptHeaderRejection pins the two header failure modes with
// deterministic cases (the fuzz targets explore beyond them).
func TestCorruptHeaderRejection(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{PC: 9, Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	badMagic := append([]byte(nil), good...)
	badMagic[0] ^= 0xFF
	r := NewReader(bytes.NewReader(badMagic))
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Fatalf("bad magic accepted (err %v)", r.Err())
	}

	badVersion := append([]byte(nil), good...)
	badVersion[4] = 0xEE
	r = NewReader(bytes.NewReader(badVersion))
	if _, ok := r.Next(); ok || r.Err() == nil {
		t.Fatalf("bad version accepted (err %v)", r.Err())
	}
}
