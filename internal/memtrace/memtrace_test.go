package memtrace

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
)

func sample(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			PC:    PC(0x400000 + i*4),
			Addr:  Addr(i * 64),
			Core:  uint8(i % 16),
			Write: i%3 == 0,
			Gap:   uint32(i % 100),
		}
	}
	return recs
}

func TestSliceSource(t *testing.T) {
	recs := sample(5)
	s := NewSlice(recs)
	got := Collect(s, 0)
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("slice roundtrip mismatch")
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted slice returned a record")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != recs[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestCollectMax(t *testing.T) {
	s := NewSlice(sample(10))
	got := Collect(s, 3)
	if len(got) != 3 {
		t.Fatalf("Collect(max=3) returned %d", len(got))
	}
}

func TestLimit(t *testing.T) {
	l := &Limit{Src: NewSlice(sample(10)), N: 4}
	if n := len(Collect(l, 0)); n != 4 {
		t.Fatalf("Limit passed %d records", n)
	}
	l2 := &Limit{Src: NewSlice(sample(2)), N: 100}
	if n := len(Collect(l2, 0)); n != 2 {
		t.Fatalf("Limit over short source passed %d", n)
	}
}

func TestWriterReaderRoundtrip(t *testing.T) {
	recs := sample(100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 100 {
		t.Fatalf("Count = %d", w.Count())
	}
	r := NewReader(&buf)
	got := Collect(r, 0)
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("binary roundtrip mismatch")
	}
}

func TestEmptyTraceRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace yielded a record")
	}
	if r.Err() != nil {
		t.Fatalf("empty trace error: %v", r.Err())
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}))
	if _, ok := r.Next(); ok {
		t.Fatal("bad magic yielded a record")
	}
	if r.Err() == nil {
		t.Fatal("bad magic produced no error")
	}
}

func TestReaderRejectsShortHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2}))
	if _, ok := r.Next(); ok {
		t.Fatal("short header yielded a record")
	}
	if r.Err() == nil {
		t.Fatal("short header produced no error")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Record{Addr: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	r := NewReader(bytes.NewReader(trunc))
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record decoded")
	}
	if r.Err() == nil {
		t.Fatal("truncation produced no error")
	}
}

// Property: any record survives the binary encoding.
func TestPropertyRecordRoundtrip(t *testing.T) {
	f := func(pc, addr uint64, core uint8, write bool, gap uint32) bool {
		rec := Record{PC: PC(pc), Addr: Addr(addr), Core: core, Write: write, Gap: gap}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		got, ok := r.Next()
		return ok && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
