package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestClassOf(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassNone},
		{ErrCorruptTrace, ClassCorruptTrace},
		{fmt.Errorf("chunk 3: %w", ErrCorruptTrace), ClassCorruptTrace},
		{fmt.Errorf("restoring: %w", ErrCorruptSnapshot), ClassCorruptSnapshot},
		{fmt.Errorf("point 4: %w: boom", ErrPointPanic), ClassPanic},
		{fmt.Errorf("%w after 50ms", ErrTimeout), ClassTimeout},
		{fmt.Errorf("read: %w", ErrTransientIO), ClassTransientIO},
		{fmt.Errorf("design x: %w", ErrInvalidOps), ClassInvalidOps},
		{errors.New("something else"), ClassUnknown},
	}
	for _, c := range cases {
		if got := ClassOf(c.err); got != c.want {
			t.Errorf("ClassOf(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(fmt.Errorf("flaky nfs: %w", ErrTransientIO)) {
		t.Error("transient I/O must be retryable")
	}
	for _, err := range []error{ErrCorruptTrace, ErrCorruptSnapshot, ErrPointPanic, ErrTimeout, ErrInvalidOps, errors.New("x")} {
		if Retryable(err) {
			t.Errorf("%v must not be retryable", err)
		}
	}
}
