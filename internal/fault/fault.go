// Package fault is the error taxonomy of the fault-tolerant sweep
// stack. Every failure a long-running sweep can hit — a corrupt trace
// chunk, a torn warm-state snapshot, a panicking design composition, a
// point deadline, a transient I/O error — is classified against the
// sentinel errors here, so callers at every layer decide disposition
// (retry, quarantine, degrade) from the class instead of matching
// error strings.
//
// Producers wrap the sentinels with %w (fmt.Errorf or dedicated error
// types implementing Unwrap), consumers test with errors.Is or the
// ClassOf helper. The package is a leaf: it imports only the standard
// library and is safe to use from any internal package.
package fault

import "errors"

// Class names a fault category in reports (FailureReport JSON,
// log lines). The string values are part of the fpbench -json schema.
type Class string

// The fault classes. ClassNone is the zero value ("no fault");
// ClassUnknown is any error that wraps no sentinel.
const (
	ClassNone            Class = ""
	ClassCorruptTrace    Class = "corrupt-trace"
	ClassCorruptSnapshot Class = "corrupt-snapshot"
	ClassPanic           Class = "panic"
	ClassTimeout         Class = "timeout"
	ClassTransientIO     Class = "transient-io"
	ClassInvalidOps      Class = "invalid-ops"
	ClassUnknown         Class = "unknown"
)

// The sentinel errors of the taxonomy. Producers wrap these; a single
// error may wrap at most one (the first match in classOrder wins).
var (
	// ErrCorruptTrace marks trace-file corruption: a failed chunk CRC,
	// a truncated frame, a lying index, an undecodable record.
	ErrCorruptTrace = errors.New("corrupt trace")
	// ErrCorruptSnapshot marks warm-state snapshot corruption or an
	// identity/geometry mismatch discovered while restoring.
	ErrCorruptSnapshot = errors.New("corrupt snapshot")
	// ErrPointPanic marks a sweep point whose job panicked; the
	// wrapping error carries the recovered value and stack.
	ErrPointPanic = errors.New("sweep point panicked")
	// ErrTimeout marks a sweep point that exceeded its deadline.
	ErrTimeout = errors.New("sweep point timed out")
	// ErrTransientIO marks an I/O failure expected to clear on retry —
	// the one class retried by default.
	ErrTransientIO = errors.New("transient I/O error")
	// ErrInvalidOps marks a design that emitted a structurally invalid
	// operation DAG (dcache.ValidateOps failure).
	ErrInvalidOps = errors.New("invalid op list")
)

// classOrder pairs each sentinel with its class for classification.
// ErrTransientIO outranks the corruption classes: a transient read
// error surfacing through a decoder wraps both ("corrupt" framing
// around a transient cause), and retryability must win so the retry
// machinery fires instead of a spurious quarantine.
var classOrder = []struct {
	err   error
	class Class
}{
	{ErrPointPanic, ClassPanic},
	{ErrTimeout, ClassTimeout},
	{ErrTransientIO, ClassTransientIO},
	{ErrCorruptSnapshot, ClassCorruptSnapshot},
	{ErrCorruptTrace, ClassCorruptTrace},
	{ErrInvalidOps, ClassInvalidOps},
}

// ClassOf classifies an error against the taxonomy: the class of the
// first sentinel it wraps, ClassUnknown for an unclassified error, and
// ClassNone for nil.
func ClassOf(err error) Class {
	if err == nil {
		return ClassNone
	}
	for _, c := range classOrder {
		if errors.Is(err, c.err) {
			return c.class
		}
	}
	return ClassUnknown
}

// Retryable reports whether an error is worth retrying: transient I/O
// faults are, everything else (corruption, panics, timeouts, malformed
// DAGs, unknown errors) is deterministic or already consumed its
// budget and fails the same way again.
func Retryable(err error) bool {
	return errors.Is(err, ErrTransientIO)
}
