// Package control implements the online adaptive partition
// controller of ROADMAP item 1: a deterministic feedback loop that
// watches a sliding window of telemetry (hit ratio, off-chip traffic,
// memory-region hits — all already counted by the functional runner)
// and decides, at fixed epochs of measured references, how much of
// the stacked capacity should be OS-visible memory versus cache.
//
// The controller is a pure function of the telemetry it has observed:
// it keeps no clocks, draws no randomness, and ranges over no maps,
// so a run that feeds it the same reference stream makes the same
// decisions — the property the runner parity suite (functional ≡
// timing, serial ≡ interval-parallel) depends on. Decisions are a
// hill climb over the split fraction with a deadband (small score
// changes do not move the split) and a cooldown (a move silences the
// controller for a few epochs so migration traffic never feeds back
// into the next decision), bounding resize churn. DESIGN.md §13
// develops the model.
//
// The full decision state — config echo, cumulative baseline, window
// ring, climb mode — snapshots through internal/snap, either embedded
// in a warm-state stream (Save/Load) or standalone (Snapshot/Restore),
// so interval-parallel and warm-cache runs resume mid-flight
// bit-exactly.
package control

import (
	"fmt"
	"math"

	"fpcache/internal/fault"
)

// corruptf builds a controller-state corruption error carrying the
// taxonomy sentinel (fault.ErrCorruptSnapshot), so the warm-cache
// quarantine and sweep retry layers classify decode failures without
// matching message strings.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("control: "+format+": %w", append(args, fault.ErrCorruptSnapshot)...)
}

// maxWindow bounds the telemetry ring so a hostile config cannot
// drive a giant allocation.
const maxWindow = 1024

// Config parameterizes the controller. The zero value of every field
// selects a sensible default (see withDefaults); explicit negatives
// disable where noted.
type Config struct {
	// EpochRefs is the decision interval in measured references: the
	// runner offers the controller one telemetry sample every
	// EpochRefs references. Default 10000.
	EpochRefs int
	// Window is how many clean epochs (cooldown epochs are excluded)
	// the controller aggregates before scoring a split. Default 2,
	// capped at 1024.
	Window int
	// Deadband is the minimum score improvement that counts as
	// progress; score changes inside the band do not move the split.
	// Default 0.005.
	Deadband float64
	// CooldownEpochs is how many epochs after a move the controller
	// stays silent, so flush/migration traffic from the resize never
	// feeds back into the next decision. Default 2; negative means no
	// cooldown.
	CooldownEpochs int
	// Step is the fraction moved per decision. Default 0.25.
	Step float64
	// MinFraction / MaxFraction bound the split the controller will
	// ever emit. Defaults 0 and 0.75; MaxFraction stays below 1 (the
	// cache slice never vanishes).
	MinFraction, MaxFraction float64
	// InitialFraction is the split the controller assumes the design
	// starts at; it is clamped into [MinFraction, MaxFraction].
	InitialFraction float64
	// BandwidthWeight scales the off-chip-traffic penalty in the
	// score: score = hitRatio − weight·(offChipBytes per 64B access).
	// Default 0.1; negative disables the term.
	BandwidthWeight float64
	// HoldEpochs is how many clean epochs the controller stays parked
	// before forcing a fresh probe even without a score drop. A phase
	// change can leave the held split's score flat while a far-away
	// split has become much better (the score is local information);
	// periodic re-exploration is the only way out of that trap.
	// Default 8; negative disables forced reprobes.
	HoldEpochs int
}

// withDefaults normalizes a config: zero fields take defaults, NaNs
// are scrubbed, and the fraction bounds are forced into a usable
// order.
func (c Config) withDefaults() Config {
	if c.EpochRefs <= 0 {
		c.EpochRefs = 10_000
	}
	if c.Window <= 0 {
		c.Window = 2
	}
	if c.Window > maxWindow {
		c.Window = maxWindow
	}
	if c.Deadband <= 0 || math.IsNaN(c.Deadband) {
		c.Deadband = 0.005
	}
	if c.CooldownEpochs == 0 {
		c.CooldownEpochs = 2
	} else if c.CooldownEpochs < 0 {
		c.CooldownEpochs = 0
	}
	if c.Step <= 0 || math.IsNaN(c.Step) {
		c.Step = 0.25
	}
	if c.MinFraction < 0 || math.IsNaN(c.MinFraction) {
		c.MinFraction = 0
	}
	if c.MaxFraction <= 0 || math.IsNaN(c.MaxFraction) {
		c.MaxFraction = 0.75
	}
	if c.MaxFraction >= 1 {
		c.MaxFraction = 0.95
	}
	if c.MaxFraction < c.MinFraction {
		c.MaxFraction = c.MinFraction
	}
	if math.IsNaN(c.InitialFraction) {
		c.InitialFraction = c.MinFraction
	}
	if c.InitialFraction < c.MinFraction {
		c.InitialFraction = c.MinFraction
	}
	if c.InitialFraction > c.MaxFraction {
		c.InitialFraction = c.MaxFraction
	}
	if c.BandwidthWeight == 0 {
		c.BandwidthWeight = 0.1
	} else if c.BandwidthWeight < 0 || math.IsNaN(c.BandwidthWeight) {
		c.BandwidthWeight = 0
	}
	if c.HoldEpochs == 0 {
		c.HoldEpochs = 8
	} else if c.HoldEpochs < 0 {
		c.HoldEpochs = 0
	}
	return c
}

// Label renders the normalized config as a deterministic string, used
// to key interval checkpoints and label experiment rows.
func (c Config) Label() string {
	c = c.withDefaults()
	return fmt.Sprintf("adaptive:e%d:w%d:db%g:cd%d:st%g:f%g-%g:i%g:bw%g:h%d",
		c.EpochRefs, c.Window, c.Deadband, c.CooldownEpochs, c.Step,
		c.MinFraction, c.MaxFraction, c.InitialFraction, c.BandwidthWeight,
		c.HoldEpochs)
}

// Sample is one cumulative telemetry reading, taken at an epoch
// boundary of the measured reference stream. All fields are running
// totals since the start of measurement (never per-epoch deltas), so
// a sample is position-independent: a controller restored from a
// snapshot carries its previous sample and differences the next one
// against it, wherever in the run that happens.
type Sample struct {
	// Refs is the absolute measured-reference position of the sample.
	Refs uint64
	// Accesses / Hits are the design's cumulative access counters.
	Accesses, Hits uint64
	// MemHits is the cumulative count of accesses served by the
	// part-of-memory region.
	MemHits uint64
	// OffChipBytes is the cumulative off-chip traffic proxy
	// (64 bytes per miss and per dirty eviction).
	OffChipBytes uint64
}

// epochStats is one epoch's telemetry delta in the sliding window.
type epochStats struct {
	Accesses, Hits uint64
	MemHits        uint64
	OffBytes       uint64
}

// Climb modes: probing is measuring the split it just moved to,
// reverting is back at the pre-probe split re-measuring, holding is
// parked on a split that beat (or tied) its neighbors.
const (
	modeProbe = iota
	modeRevert
	modeHold
)

// Controller is the adaptive partition controller. Build one with
// NewController and feed it cumulative telemetry through Observe; it
// answers with the split fraction to apply and whether that is a new
// decision. The zero Controller is not usable.
type Controller struct {
	cfg Config

	// primed reports whether the first sample (the cumulative
	// baseline) has been recorded; the first Observe never decides.
	primed bool
	// last is the previous cumulative sample; deltas against it form
	// the window epochs.
	last Sample

	// win is the telemetry ring: entries [0, winN) are valid, winPos
	// is the next write slot (winPos == winN until the ring is full).
	win    []epochStats
	winN   int
	winPos int

	// frac is the current split; prevFrac is where the last move came
	// from (reverts return exactly there, even when the forward move
	// was clamped).
	frac, prevFrac float64
	// dir is the climb direction in step units, +1 or -1.
	dir int
	// cooldown is how many epochs remain silenced after a move.
	cooldown int

	// hasPrev reports whether prevScore holds a real measurement.
	hasPrev bool
	// prevScore is the reference score the current probe competes
	// against; holdScore is the best score seen while holding.
	prevScore, holdScore float64
	mode                 int
	// tried counts climb directions that failed since the last
	// improvement; both failing parks the controller in hold.
	tried int
	// holdAge counts clean epochs spent in the current hold; reaching
	// cfg.HoldEpochs forces a reprobe.
	holdAge int

	// epochs counts clean (non-cooldown) epochs observed; moves
	// counts emitted decisions. Diagnostics only.
	epochs uint64
	moves  uint64
}

// NewController builds a controller from the (normalized) config.
func NewController(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg: cfg,
		win: make([]epochStats, cfg.Window),
		dir: 1,
	}
	c.frac = cfg.InitialFraction
	c.prevFrac = cfg.InitialFraction
	return c
}

// Config returns the normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// Fraction returns the split the controller currently wants.
func (c *Controller) Fraction() float64 { return c.frac }

// Moves returns how many resize decisions the controller has emitted.
func (c *Controller) Moves() uint64 { return c.moves }

// Epochs returns how many clean epochs the controller has scored.
func (c *Controller) Epochs() uint64 { return c.epochs }

// Observe feeds one cumulative telemetry sample and returns the split
// fraction the design should run at plus whether that is a new
// decision (the caller resizes only when fire is true). The first
// call only records the cumulative baseline; cooldown epochs are
// swallowed (their telemetry carries the migration traffic of the
// move that started the cooldown); otherwise the epoch delta enters
// the window and, once the window is full, the hill climb decides.
// Observe allocates nothing.
func (c *Controller) Observe(s Sample) (frac float64, fire bool) {
	if !c.primed {
		c.primed = true
		c.last = s
		return c.frac, false
	}
	d := epochStats{
		Accesses: s.Accesses - c.last.Accesses,
		Hits:     s.Hits - c.last.Hits,
		MemHits:  s.MemHits - c.last.MemHits,
		OffBytes: s.OffChipBytes - c.last.OffChipBytes,
	}
	c.last = s
	if c.cooldown > 0 {
		c.cooldown--
		return c.frac, false
	}
	c.epochs++
	c.push(d)
	if c.winN < len(c.win) {
		return c.frac, false
	}
	return c.decide(c.score())
}

// push appends one epoch to the window ring.
func (c *Controller) push(d epochStats) {
	c.win[c.winPos] = d
	c.winPos = (c.winPos + 1) % len(c.win)
	if c.winN < len(c.win) {
		c.winN++
	}
}

// resetWindow discards the window after a move: epochs measured at
// different splits must never mix in one score.
func (c *Controller) resetWindow() {
	c.winN, c.winPos = 0, 0
}

// score aggregates the window into one figure of merit: hit ratio
// minus the weighted off-chip traffic per access. Summing the ring is
// order-independent, so the ring phase cannot influence the value.
func (c *Controller) score() float64 {
	var acc, hits, off uint64
	for i := 0; i < c.winN; i++ {
		acc += c.win[i].Accesses
		hits += c.win[i].Hits
		off += c.win[i].OffBytes
	}
	if acc == 0 {
		return 0
	}
	return float64(hits)/float64(acc) - c.cfg.BandwidthWeight*float64(off)/(64*float64(acc))
}

// shift is the hold-mode phase-change threshold: the split has not
// moved, so a score swinging this far between windows can only be
// the workload changing phase. Wider than the deadband so bursty
// epochs do not trip it, but tight enough to catch a phase change
// whose effect at the held split is modest.
func (c *Controller) shift() float64 { return 6 * c.cfg.Deadband }

// jump is the probe/revert-mode phase-change threshold. Here a move
// DID intervene, so ordinary step effects must stay below it and
// only a swing far beyond what one Step of split can cause — a
// window straddling a phase change, compared against a stale
// reference — reads as the phase changing.
func (c *Controller) jump() float64 { return 24 * c.cfg.Deadband }

// rebaseline discards every score reference after a detected phase
// change: comparisons against pre-change measurements (or against
// windows straddling the change) are meaningless, so the controller
// stays at its current split, measures a fresh window, and restarts
// the climb from that clean baseline.
func (c *Controller) rebaseline() {
	c.hasPrev = false
	c.mode = modeHold
	c.tried = 0
	c.holdAge = 0
	c.resetWindow()
}

// moveTo clamps the target split into bounds and, if it differs from
// the current split, commits the move: records where it came from,
// arms the cooldown, and resets the window. Reports whether a move
// happened.
func (c *Controller) moveTo(t float64) bool {
	if t < c.cfg.MinFraction {
		t = c.cfg.MinFraction
	}
	if t > c.cfg.MaxFraction {
		t = c.cfg.MaxFraction
	}
	if t == c.frac {
		return false
	}
	c.prevFrac = c.frac
	c.frac = t
	c.cooldown = c.cfg.CooldownEpochs
	c.resetWindow()
	c.moves++
	return true
}

// move steps the split one Step in the given direction.
func (c *Controller) move(dir int) bool {
	return c.moveTo(c.frac + float64(dir)*c.cfg.Step)
}

// enterHold parks the controller on the current split.
func (c *Controller) enterHold(score float64) {
	c.mode = modeHold
	c.holdScore = score
	c.tried = 0
	c.holdAge = 0
}

// restartClimb leaves hold and probes in the remembered direction,
// flipping it when that side is against a bound. Reports whether a
// probe actually moved; when both directions are pinned (degenerate
// bounds) the controller stays parked.
func (c *Controller) restartClimb(score float64) (float64, bool) {
	c.prevScore = score
	c.tried = 0
	c.holdAge = 0
	for range [2]int{} {
		if c.move(c.dir) {
			c.mode = modeProbe
			return c.frac, true
		}
		c.dir = -c.dir
	}
	c.holdScore = score
	return c.frac, false
}

// decide runs the three-mode hill climb on a fresh window score.
//
//   - probe: the split just moved; a score beating the reference by
//     the deadband keeps climbing, a score losing by the deadband
//     reverts to exactly the pre-probe split, anything inside the
//     band parks.
//   - revert: back at the pre-probe split; try the opposite
//     direction unless both have now failed, which parks.
//   - hold: track the best score seen; growing HoldEpochs old forces
//     a reprobe — a phase change the held split's own score cannot
//     see (the score is local; a distant split may have become far
//     better) is only caught by periodically re-exploring, and
//     successive forced reprobes alternate direction because the
//     remembered direction is exactly what failed before parking.
//
// Above all of that sits phase-change detection: every mode first
// checks its fresh score against the reference it would otherwise
// compare to (prevScore, or the held best), and a swing past the
// shift threshold — far beyond what one Step of split can cause —
// means the workload moved phases sometime in the last window. Any
// verdict drawn across that boundary would be garbage (a probe
// straddling a phase change looks catastrophic or miraculous
// regardless of the split's merit), so the controller rebaselines:
// it discards its references, measures a clean window at the current
// split, and restarts the climb from there.
//
// Climbing into a bound parks (there is nowhere further to go); the
// very first scored window starts the climb unconditionally, because
// with nothing to compare against only a probe produces information.
func (c *Controller) decide(score float64) (float64, bool) {
	if !c.hasPrev {
		c.hasPrev = true
		c.mode = modeHold
		return c.restartClimb(score)
	}
	switch c.mode {
	case modeProbe:
		if math.Abs(score-c.prevScore) >= c.jump() {
			c.rebaseline()
			return c.frac, false
		}
		switch {
		case score >= c.prevScore+c.cfg.Deadband:
			c.prevScore = score
			c.tried = 0
			if c.move(c.dir) {
				return c.frac, true
			}
			c.enterHold(score)
		case score <= c.prevScore-c.cfg.Deadband:
			c.tried++
			c.mode = modeRevert
			if c.moveTo(c.prevFrac) {
				return c.frac, true
			}
			c.enterHold(score)
		default:
			c.enterHold(score)
		}
	case modeRevert:
		// prevScore was measured at this same split before the failed
		// probe; a large disagreement with the re-measure means the
		// phase changed mid-cycle, not that the probe was bad.
		if math.Abs(score-c.prevScore) >= c.shift() {
			// No move separates these two measurements (the revert
			// undid the probe), so the tight hold threshold applies.
			c.rebaseline()
			return c.frac, false
		}
		if c.tried >= 2 {
			c.enterHold(score)
			break
		}
		c.dir = -c.dir
		c.prevScore = score
		if c.move(c.dir) {
			c.mode = modeProbe
			return c.frac, true
		}
		c.enterHold(score)
	case modeHold:
		c.holdAge++
		if math.Abs(score-c.holdScore) >= c.shift() {
			c.rebaseline()
			return c.frac, false
		}
		if score > c.holdScore {
			c.holdScore = score
		}
		if c.cfg.HoldEpochs > 0 && c.holdAge >= c.cfg.HoldEpochs {
			// An aged-out hold has no gradient information — the last
			// probe in the remembered direction is exactly what failed
			// before parking, so alternate: successive forced reprobes
			// walk both sides of the hold.
			c.dir = -c.dir
			return c.restartClimb(score)
		}
	}
	return c.frac, false
}
