package control

// Snapshot codec for the controller's decision state. The state
// embeds into a warm-state stream (Save/Load against a shared
// snap.Writer/Reader) or stands alone in its own versioned envelope
// (Snapshot/Restore); both paths carry the same tagged section. The
// saved stream echoes the full configuration and Load refuses a
// stream whose config differs from the controller it restores into —
// a snapshot is only meaningful against the controller shape that
// wrote it. Every decode-side validation failure wraps
// fault.ErrCorruptSnapshot so the quarantine and retry layers
// classify it without matching strings.

import (
	"io"
	"math"

	"fpcache/internal/snap"
)

// stateKind names the standalone snapshot envelope.
const stateKind = "fpcache-control"

// stateVersion versions the controller state layout below. Any
// change to the saved field set — the Config echo, the cumulative
// Sample baseline, the window ring, or the climb registers — must
// bump it; the snapmeta analyzer pins the layout to the fingerprint
// in the directive so a drift without a bump fails fplint.
//
//fplint:snapfields 0x73a68df7
const stateVersion = 1

// Save appends the controller's full decision state to a snapshot
// stream: config echo, baseline sample, window ring, and climb
// registers, in fixed order. Floats travel as IEEE-754 bits, so a
// restore is bit-exact.
func (c *Controller) Save(w *snap.Writer) {
	w.Tag("control")
	w.U64(stateVersion)
	w.I64(int64(c.cfg.EpochRefs))
	w.I64(int64(c.cfg.Window))
	w.U64(math.Float64bits(c.cfg.Deadband))
	w.I64(int64(c.cfg.CooldownEpochs))
	w.U64(math.Float64bits(c.cfg.Step))
	w.U64(math.Float64bits(c.cfg.MinFraction))
	w.U64(math.Float64bits(c.cfg.MaxFraction))
	w.U64(math.Float64bits(c.cfg.InitialFraction))
	w.U64(math.Float64bits(c.cfg.BandwidthWeight))
	w.I64(int64(c.cfg.HoldEpochs))
	w.Bool(c.primed)
	w.U64(c.last.Refs)
	w.U64(c.last.Accesses)
	w.U64(c.last.Hits)
	w.U64(c.last.MemHits)
	w.U64(c.last.OffChipBytes)
	w.I64(int64(c.winN))
	for i := 0; i < c.winN; i++ {
		w.U64(c.win[i].Accesses)
		w.U64(c.win[i].Hits)
		w.U64(c.win[i].MemHits)
		w.U64(c.win[i].OffBytes)
	}
	w.I64(int64(c.winPos))
	w.U64(math.Float64bits(c.frac))
	w.U64(math.Float64bits(c.prevFrac))
	w.I64(int64(c.dir))
	w.I64(int64(c.cooldown))
	w.Bool(c.hasPrev)
	w.U64(math.Float64bits(c.prevScore))
	w.U64(math.Float64bits(c.holdScore))
	w.I64(int64(c.mode))
	w.I64(int64(c.tried))
	w.I64(int64(c.holdAge))
	w.U64(c.epochs)
	w.U64(c.moves)
}

// fracInRange reports whether a decoded split fraction is a real
// number inside the controller's bounds.
func (c *Controller) fracInRange(f float64) bool {
	return !math.IsNaN(f) && f >= c.cfg.MinFraction && f <= c.cfg.MaxFraction
}

// finite reports whether a decoded score is an ordinary number.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Load restores state saved by Save into a controller built from the
// same configuration. The controller is only mutated after every
// field decodes and validates; any failure wraps
// fault.ErrCorruptSnapshot and leaves the controller untouched.
func (c *Controller) Load(r *snap.Reader) error {
	r.Expect("control")
	if v := r.U64(); r.Err() == nil && v != stateVersion {
		return corruptf("controller state version %d, want %d", v, stateVersion)
	}
	var got Config
	got.EpochRefs = int(r.I64())
	got.Window = int(r.I64())
	got.Deadband = math.Float64frombits(r.U64())
	got.CooldownEpochs = int(r.I64())
	got.Step = math.Float64frombits(r.U64())
	got.MinFraction = math.Float64frombits(r.U64())
	got.MaxFraction = math.Float64frombits(r.U64())
	got.InitialFraction = math.Float64frombits(r.U64())
	got.BandwidthWeight = math.Float64frombits(r.U64())
	got.HoldEpochs = int(r.I64())
	if r.Err() != nil {
		return r.Err()
	}
	if got != c.cfg {
		return corruptf("controller config %+v, want %+v", got, c.cfg)
	}
	primed := r.Bool()
	var last Sample
	last.Refs = r.U64()
	last.Accesses = r.U64()
	last.Hits = r.U64()
	last.MemHits = r.U64()
	last.OffChipBytes = r.U64()
	winN := int(r.I64())
	if r.Err() != nil {
		return r.Err()
	}
	if winN < 0 || winN > len(c.win) {
		return corruptf("window fill %d out of range [0,%d]", winN, len(c.win))
	}
	win := make([]epochStats, winN)
	for i := range win {
		win[i].Accesses = r.U64()
		win[i].Hits = r.U64()
		win[i].MemHits = r.U64()
		win[i].OffBytes = r.U64()
	}
	winPos := int(r.I64())
	frac := math.Float64frombits(r.U64())
	prevFrac := math.Float64frombits(r.U64())
	dir := int(r.I64())
	cooldown := int(r.I64())
	hasPrev := r.Bool()
	prevScore := math.Float64frombits(r.U64())
	holdScore := math.Float64frombits(r.U64())
	mode := int(r.I64())
	tried := int(r.I64())
	holdAge := int(r.I64())
	epochs := r.U64()
	moves := r.U64()
	if r.Err() != nil {
		return r.Err()
	}
	switch {
	case winN == len(c.win) && (winPos < 0 || winPos >= len(c.win)):
		return corruptf("full-ring write slot %d out of range [0,%d)", winPos, len(c.win))
	case winN < len(c.win) && winPos != winN:
		return corruptf("partial-ring write slot %d, want %d", winPos, winN)
	case !c.fracInRange(frac):
		return corruptf("split fraction %v outside [%v,%v]", frac, c.cfg.MinFraction, c.cfg.MaxFraction)
	case !c.fracInRange(prevFrac):
		return corruptf("pre-probe fraction %v outside [%v,%v]", prevFrac, c.cfg.MinFraction, c.cfg.MaxFraction)
	case dir != 1 && dir != -1:
		return corruptf("climb direction %d, want ±1", dir)
	case cooldown < 0 || cooldown > c.cfg.CooldownEpochs:
		return corruptf("cooldown %d out of range [0,%d]", cooldown, c.cfg.CooldownEpochs)
	case !finite(prevScore) || !finite(holdScore):
		return corruptf("non-finite score state (prev %v, hold %v)", prevScore, holdScore)
	case mode != modeProbe && mode != modeRevert && mode != modeHold:
		return corruptf("climb mode %d unknown", mode)
	case tried < 0 || tried > 2:
		return corruptf("failed-direction count %d out of range [0,2]", tried)
	case holdAge < 0 || (c.cfg.HoldEpochs > 0 && holdAge > c.cfg.HoldEpochs):
		return corruptf("hold age %d out of range [0,%d]", holdAge, c.cfg.HoldEpochs)
	case moves > epochs:
		return corruptf("%d moves exceed %d scored epochs", moves, epochs)
	}
	c.primed = primed
	c.last = last
	copy(c.win, win)
	for i := winN; i < len(c.win); i++ {
		c.win[i] = epochStats{}
	}
	c.winN, c.winPos = winN, winPos
	c.frac, c.prevFrac = frac, prevFrac
	c.dir = dir
	c.cooldown = cooldown
	c.hasPrev = hasPrev
	c.prevScore, c.holdScore = prevScore, holdScore
	c.mode = mode
	c.tried = tried
	c.holdAge = holdAge
	c.epochs = epochs
	c.moves = moves
	return nil
}

// Snapshot writes the controller state as a standalone versioned
// envelope.
func (c *Controller) Snapshot(dst io.Writer) error {
	return snap.WriteEnvelope(dst, stateKind, stateVersion, func(w *snap.Writer) {
		c.Save(w)
	})
}

// Restore reads a standalone envelope written by Snapshot.
func (c *Controller) Restore(src io.Reader) error {
	return snap.ReadEnvelope(src, stateKind, stateVersion, func(r *snap.Reader) error {
		return c.Load(r)
	})
}
