package control

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"fpcache/internal/fault"
	"fpcache/internal/snap"
)

// TestConfigDefaults pins the normalization contract: zero fields take
// documented defaults, negatives disable where documented, NaNs are
// scrubbed, and the bounds end up ordered.
func TestConfigDefaults(t *testing.T) {
	c := NewController(Config{}).Config()
	if c.EpochRefs != 10_000 || c.Window != 2 || c.Deadband != 0.005 ||
		c.CooldownEpochs != 2 || c.Step != 0.25 || c.MinFraction != 0 ||
		c.MaxFraction != 0.75 || c.BandwidthWeight != 0.1 || c.HoldEpochs != 8 {
		t.Fatalf("zero-config defaults wrong: %+v", c)
	}
	c = NewController(Config{CooldownEpochs: -1, HoldEpochs: -1, BandwidthWeight: -1}).Config()
	if c.CooldownEpochs != 0 || c.HoldEpochs != 0 || c.BandwidthWeight != 0 {
		t.Fatalf("negative knobs did not disable: %+v", c)
	}
	nan := math.NaN()
	c = NewController(Config{Deadband: nan, Step: nan, MinFraction: nan,
		MaxFraction: nan, InitialFraction: nan, BandwidthWeight: nan}).Config()
	if math.IsNaN(c.Deadband) || math.IsNaN(c.Step) || math.IsNaN(c.MinFraction) ||
		math.IsNaN(c.MaxFraction) || math.IsNaN(c.InitialFraction) || math.IsNaN(c.BandwidthWeight) {
		t.Fatalf("NaNs survived normalization: %+v", c)
	}
	c = NewController(Config{MinFraction: 0.5, MaxFraction: 0.25, InitialFraction: 0.9}).Config()
	if c.MaxFraction < c.MinFraction || c.InitialFraction < c.MinFraction || c.InitialFraction > c.MaxFraction {
		t.Fatalf("bounds not forced into order: %+v", c)
	}
	if NewController(Config{Window: 1 << 20}).Config().Window != maxWindow {
		t.Fatal("window not capped")
	}
	if l := (Config{}).Label(); l != NewController(Config{}).Config().Label() {
		t.Fatalf("label is not normalization-invariant: %q", l)
	}
}

// gradientFeed drives a controller with synthetic telemetry whose hit
// ratio is a pure function of the fraction the controller currently
// wants — a stationary landscape the hill climb must ascend. The
// cumulative sample is threaded through the caller so successive
// feeds continue one telemetry stream.
func gradientFeed(c *Controller, s *Sample, epochs int, hitAt func(frac float64) float64) {
	for i := 0; i < epochs; i++ {
		const acc = 10_000
		h := hitAt(c.Fraction())
		s.Refs += uint64(c.Config().EpochRefs)
		s.Accesses += acc
		s.Hits += uint64(h * acc)
		s.OffChipBytes += uint64((1 - h) * acc * 64)
		c.Observe(*s)
	}
}

// TestControllerClimbsGradient: on a monotone landscape the controller
// must walk to the best bound and park there.
func TestControllerClimbsGradient(t *testing.T) {
	up := func(f float64) float64 { return 0.5 + 0.4*f }
	c := NewController(Config{CooldownEpochs: 1})
	var s Sample
	gradientFeed(c, &s, 60, up)
	if c.Fraction() != c.Config().MaxFraction {
		t.Fatalf("rising landscape: parked at %v, want max %v", c.Fraction(), c.Config().MaxFraction)
	}
	down := func(f float64) float64 { return 0.9 - 0.4*f }
	c = NewController(Config{CooldownEpochs: 1, InitialFraction: 0.75})
	s = Sample{}
	gradientFeed(c, &s, 60, down)
	if c.Fraction() != c.Config().MinFraction {
		t.Fatalf("falling landscape: parked at %v, want min %v", c.Fraction(), c.Config().MinFraction)
	}
}

// TestControllerTracksPhaseChange: when the landscape inverts with a
// swing past the shift threshold, the controller must rebaseline and
// walk to the new optimum — the oracle test's mechanism in isolation.
func TestControllerTracksPhaseChange(t *testing.T) {
	c := NewController(Config{CooldownEpochs: 1, HoldEpochs: 4})
	var s Sample
	gradientFeed(c, &s, 60, func(f float64) float64 { return 0.5 + 0.4*f })
	if c.Fraction() != c.Config().MaxFraction {
		t.Fatalf("phase 1: parked at %v, want max", c.Fraction())
	}
	gradientFeed(c, &s, 80, func(f float64) float64 { return 0.9 - 0.4*f })
	if c.Fraction() != c.Config().MinFraction {
		t.Fatalf("phase 2: parked at %v, want min", c.Fraction())
	}
}

// TestControllerFlatLandscapeBounded: on a flat landscape the opening
// probe lands inside the deadband and the controller parks; with
// forced reprobes disabled it then goes quiet forever.
func TestControllerFlatLandscapeBounded(t *testing.T) {
	c := NewController(Config{CooldownEpochs: 1, HoldEpochs: -1, InitialFraction: 0.25})
	flat := func(float64) float64 { return 0.7 }
	var s Sample
	gradientFeed(c, &s, 20, flat)
	settled, moves := c.Fraction(), c.Moves()
	if moves > 2 {
		t.Fatalf("flat landscape made %d moves in the opening cycle, want <= 2 (probe + revert)", moves)
	}
	gradientFeed(c, &s, 80, flat)
	if c.Fraction() != settled || c.Moves() != moves {
		t.Fatalf("flat landscape with reprobes disabled kept moving: frac %v->%v, moves %d->%d",
			settled, c.Fraction(), moves, c.Moves())
	}
}

// TestObserveFirstSampleOnlyPrimes: the first sample is the cumulative
// baseline and never decides.
func TestObserveFirstSampleOnlyPrimes(t *testing.T) {
	c := NewController(Config{})
	if _, fire := c.Observe(Sample{Refs: 10_000, Accesses: 9_000, Hits: 4_000}); fire {
		t.Fatal("first sample fired a decision")
	}
	if c.Epochs() != 0 {
		t.Fatalf("first sample scored an epoch: %d", c.Epochs())
	}
}

// TestObserveAllocates pins the hot-path contract: Observe allocates
// nothing once the controller is built.
func TestObserveAllocates(t *testing.T) {
	c := NewController(Config{CooldownEpochs: 1})
	var s Sample
	n := testing.AllocsPerRun(200, func() {
		s.Refs += 10_000
		s.Accesses += 10_000
		s.Hits += 7_000
		s.OffChipBytes += 3_000 * 64
		c.Observe(s)
	})
	if n != 0 {
		t.Fatalf("Observe allocates %v per call, want 0", n)
	}
}

// TestSnapshotRoundTrip: a controller restored mid-climb must be
// indistinguishable from the one that was snapshotted — same
// fractions, same decisions — on any continuation of the telemetry.
func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{CooldownEpochs: 1, HoldEpochs: 4}
	a := NewController(cfg)
	var s Sample
	feed := func(c *Controller, n int, hit float64) []any {
		var out []any
		ss := s
		for i := 0; i < n; i++ {
			ss.Refs += 10_000
			ss.Accesses += 10_000
			ss.Hits += uint64(hit * 10_000)
			ss.OffChipBytes += uint64((1 - hit) * 10_000 * 64)
			f, fire := c.Observe(ss)
			out = append(out, f, fire)
		}
		return out
	}
	// Advance to an interesting interior state, then snapshot.
	for i := 0; i < 9; i++ {
		s.Refs += 10_000
		s.Accesses += 10_000
		s.Hits += uint64((0.4 + 0.4*a.Fraction()) * 10_000)
		a.Observe(s)
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewController(cfg)
	if err := b.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a.Fraction() != b.Fraction() || a.Moves() != b.Moves() || a.Epochs() != b.Epochs() {
		t.Fatalf("restored state differs: frac %v/%v moves %d/%d epochs %d/%d",
			a.Fraction(), b.Fraction(), a.Moves(), b.Moves(), a.Epochs(), b.Epochs())
	}
	wa := feed(a, 30, 0.8)
	wb := feed(b, 30, 0.8)
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("restored controller diverges at output %d: %v vs %v", i, wa[i], wb[i])
		}
	}
}

// TestRestoreRejectsConfigMismatch: a snapshot only restores into the
// controller shape that wrote it.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	a := NewController(Config{})
	a.Observe(Sample{Refs: 10_000, Accesses: 10_000, Hits: 5_000})
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	err := NewController(Config{Step: 0.1}).Restore(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("restore into a different config succeeded")
	}
	if !errors.Is(err, fault.ErrCorruptSnapshot) {
		t.Fatalf("config-mismatch error %v does not wrap fault.ErrCorruptSnapshot", err)
	}
}

// TestLoadLeavesControllerUntouchedOnError: a failed Load must not
// half-mutate the controller it was restoring into.
func TestLoadLeavesControllerUntouchedOnError(t *testing.T) {
	a := NewController(Config{})
	for i := 1; i <= 6; i++ {
		a.Observe(Sample{Refs: uint64(i) * 10_000, Accesses: uint64(i) * 10_000, Hits: uint64(i) * 6_000})
	}
	var buf bytes.Buffer
	if err := a.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	b := NewController(Config{})
	before := *b
	for cut := 0; cut < buf.Len(); cut += 7 {
		if err := b.Restore(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) restored without error", cut)
		}
		if b.frac != before.frac || b.mode != before.mode || b.epochs != before.epochs ||
			b.winN != before.winN || b.primed != before.primed {
			t.Fatalf("failed restore at cut %d mutated the controller", cut)
		}
	}
}

// TestSaveLoadEmbedded covers the embedded (shared-stream) path the
// warm-state snapshot uses, distinct from the standalone envelope.
func TestSaveLoadEmbedded(t *testing.T) {
	a := NewController(Config{})
	a.Observe(Sample{Refs: 10_000, Accesses: 10_000, Hits: 5_000})
	var buf bytes.Buffer
	w := snap.NewWriter(&buf)
	w.Tag("before")
	a.Save(w)
	w.Tag("after")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	b := NewController(Config{})
	r := snap.NewReader(bytes.NewReader(buf.Bytes()))
	r.Expect("before")
	if err := b.Load(r); err != nil {
		t.Fatal(err)
	}
	r.Expect("after")
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if b.last != a.last || b.Fraction() != a.Fraction() {
		t.Fatalf("embedded round trip differs: %+v vs %+v", b.last, a.last)
	}
}
