package control

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"fpcache/internal/fault"
)

// fuzzConfig derives a controller config from a fuzz seed. The raw
// fields are hostile on purpose (huge, negative, unordered);
// withDefaults must make every one of them usable.
func fuzzConfig(seed uint64) Config {
	return Config{
		EpochRefs:       int(int32(seed)),
		Window:          int(int8(seed >> 8)),
		Deadband:        float64(int8(seed>>16)) / 100,
		CooldownEpochs:  int(int8(seed >> 24)),
		Step:            float64(int8(seed>>32)) / 16,
		MinFraction:     float64(int8(seed>>40)) / 64,
		MaxFraction:     float64(int8(seed>>48)) / 64,
		InitialFraction: float64(int8(seed>>56)) / 64,
		HoldEpochs:      int(int8(seed >> 4)),
		BandwidthWeight: float64(int8(seed>>20)) / 10,
	}
}

// fuzzSamples expands fuzz bytes into a cumulative telemetry sequence:
// each 4-byte chunk is one epoch's deltas, spanning idle epochs, 100%
// and 0% hit epochs, and counter magnitudes up to 2^24 per epoch.
func fuzzSamples(data []byte) []Sample {
	out := make([]Sample, 0, len(data)/4)
	var s Sample
	for len(data) >= 4 {
		v := binary.LittleEndian.Uint32(data[:4])
		data = data[4:]
		acc := uint64(v & 0xffff)
		hits := uint64(v>>16) % (acc + 1)
		s.Refs += uint64(v%3) << uint(v%24)
		s.Accesses += acc << uint(v%9)
		s.Hits += hits << uint(v%9)
		s.MemHits += hits / 2
		s.OffChipBytes += (acc - hits) * 64
		out = append(out, s)
	}
	return out
}

// FuzzControllerDecide drives a controller built from an arbitrary
// config with an arbitrary telemetry sequence and checks the safety
// contract on every output: the fraction stays finite and inside the
// normalized bounds, fire implies the fraction actually changed, the
// controller never fires again within its cooldown, and the whole
// sequence is a pure function of the input (a replay is identical).
func FuzzControllerDecide(f *testing.F) {
	f.Add(uint64(0), []byte{})
	f.Add(uint64(0x0101010101010101), []byte("some telemetry bytes here..."))
	f.Add(uint64(1)<<63|12345, bytes.Repeat([]byte{0xff, 0x00, 0x40, 0x99}, 40))
	f.Add(uint64(0x8040201008040201), bytes.Repeat([]byte{1, 2, 3, 4, 250, 251, 252, 253}, 64))

	f.Fuzz(func(t *testing.T, seed uint64, data []byte) {
		cfg := fuzzConfig(seed)
		samples := fuzzSamples(data)
		c := NewController(cfg)
		n := c.Config()

		replay := NewController(cfg)
		sinceFire := n.CooldownEpochs // no fire yet: cooldown satisfied
		prev := c.Fraction()
		for i, s := range samples {
			frac, fire := c.Observe(s)
			if rf, rfire := replay.Observe(s); rf != frac || rfire != fire {
				t.Fatalf("sample %d: replay diverges (%v,%v) vs (%v,%v)", i, rf, rfire, frac, fire)
			}
			if math.IsNaN(frac) || frac < n.MinFraction || frac > n.MaxFraction {
				t.Fatalf("sample %d: fraction %v outside [%v,%v]", i, frac, n.MinFraction, n.MaxFraction)
			}
			if fire {
				if frac == prev {
					t.Fatalf("sample %d: fired without changing the fraction (%v)", i, frac)
				}
				if sinceFire < n.CooldownEpochs {
					t.Fatalf("sample %d: fired %d samples after the last move, inside cooldown %d",
						i, sinceFire, n.CooldownEpochs)
				}
				sinceFire = 0
			} else {
				sinceFire++
			}
			if frac != c.Fraction() {
				t.Fatalf("sample %d: returned fraction %v != Fraction() %v", i, frac, c.Fraction())
			}
			prev = frac
		}
		if c.Moves() > c.Epochs() {
			t.Fatalf("%d moves exceed %d scored epochs", c.Moves(), c.Epochs())
		}
	})
}

// fuzzStateController builds the fixed-shape controller the state fuzz
// target restores into, advanced into an interior climb state.
func fuzzStateController() *Controller {
	c := NewController(Config{CooldownEpochs: 1, HoldEpochs: 4})
	var s Sample
	for i := 0; i < 7; i++ {
		s.Refs += 10_000
		s.Accesses += 10_000
		s.Hits += uint64((0.4 + 0.4*c.Fraction()) * 10_000)
		s.OffChipBytes += 3_000 * 64
		c.Observe(s)
	}
	return c
}

// FuzzReadControllerState feeds arbitrary bytes through the standalone
// snapshot decoder. The contract: never panic, never over-allocate,
// and either restore a fully valid state or fail with an error
// wrapping fault.ErrCorruptSnapshot while leaving the destination
// controller untouched.
func FuzzReadControllerState(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzStateController().Snapshot(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(append([]byte(nil), valid...))
	f.Add([]byte{})
	f.Add([]byte("not a controller snapshot"))
	for _, cut := range []int{1, 7, len(valid) / 2, len(valid) - 1} {
		f.Add(append([]byte(nil), valid[:cut]...))
	}
	for _, i := range []int{0, 3, 9, 30, len(valid) - 3} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x20
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c := fuzzStateController()
		before := *c
		err := c.Restore(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, fault.ErrCorruptSnapshot) {
				t.Fatalf("restore error outside the fault taxonomy: %v", err)
			}
			if c.frac != before.frac || c.mode != before.mode || c.winN != before.winN ||
				c.epochs != before.epochs || c.primed != before.primed {
				t.Fatal("failed restore mutated the controller")
			}
			return
		}
		// Restores that succeed — the valid snapshot, or flips in value
		// bytes that still decode to a consistent state — must leave the
		// controller fully usable: every invariant Load validates holds.
		n := c.Config()
		if math.IsNaN(c.Fraction()) || c.Fraction() < n.MinFraction || c.Fraction() > n.MaxFraction {
			t.Fatalf("restored fraction %v outside [%v,%v]", c.Fraction(), n.MinFraction, n.MaxFraction)
		}
		if c.Moves() > c.Epochs() {
			t.Fatalf("restored state has %d moves > %d epochs", c.Moves(), c.Epochs())
		}
		// And it must keep deciding safely.
		s := c.last
		for i := 0; i < 8; i++ {
			s.Refs += 10_000
			s.Accesses += 10_000
			s.Hits += 6_000
			if frac, _ := c.Observe(s); math.IsNaN(frac) || frac < n.MinFraction || frac > n.MaxFraction {
				t.Fatalf("post-restore decision emitted fraction %v", frac)
			}
		}
	})
}
