package dram

import "fpcache/internal/memtrace"

// Tracker is the functional (untimed) DRAM model: it follows
// row-buffer state across accesses so functional simulations can
// account activates, bursts, and row-hit ratios — the inputs to the
// energy model — without running the event-driven timing simulator.
type Tracker struct {
	cfg      Config
	openRows [][]int64 // [channel][bank] open row, -1 = closed
	Stats    Stats
}

// NewTracker builds a functional model for cfg.
func NewTracker(cfg Config) *Tracker {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	t := &Tracker{cfg: cfg}
	t.openRows = make([][]int64, cfg.Channels)
	for ch := range t.openRows {
		rows := make([]int64, cfg.BanksPerChan)
		for b := range rows {
			rows[b] = -1
		}
		t.openRows[ch] = rows
	}
	return t
}

// Config returns the model's configuration.
func (t *Tracker) Config() Config { return t.cfg }

// Access models a transfer of the given size starting at addr,
// updating row-buffer state and stats. Multi-block transfers touch
// consecutive 64B blocks; blocks on the same open row share one
// activation (this is what makes page fills/evictions cheap on
// open-page systems, §2.3).
func (t *Tracker) Access(addr memtrace.Addr, bytes int, write bool) {
	for off := 0; off < bytes; off += 64 {
		t.accessBlock(addr+memtrace.Addr(off), write)
	}
}

// AccessBlocks models a transfer of a sparse set of 64B blocks within
// a region starting at base: exactly the shape of a footprint fetch.
// bits' set positions select blocks (bit i -> base + 64*i).
func (t *Tracker) AccessBlocks(base memtrace.Addr, bits uint64, write bool) {
	for i := 0; bits != 0; i, bits = i+1, bits>>1 {
		if bits&1 != 0 {
			t.accessBlock(base+memtrace.Addr(i*64), write)
		}
	}
}

func (t *Tracker) accessBlock(addr memtrace.Addr, write bool) {
	loc := t.cfg.Decode(addr)
	open := &t.openRows[loc.Channel][loc.Bank]
	switch {
	case *open == loc.Row:
		t.Stats.RowHits++
	case *open < 0:
		t.Stats.RowMisses++
		t.Stats.Activates++
	default:
		t.Stats.RowConflict++
		t.Stats.Activates++
	}
	if t.cfg.Policy == ClosePage {
		*open = -1
	} else {
		*open = loc.Row
	}
	if write {
		t.Stats.WriteBursts++
	} else {
		t.Stats.ReadBursts++
	}
}
