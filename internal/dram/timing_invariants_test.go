package dram

import (
	"sort"
	"testing"

	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
)

// traceRun executes requests against a controller with the Trace hook
// installed and returns the committed commands.
func traceRun(t *testing.T, cfg Config, submit func(c *Controller)) ([]Cmd, *Controller) {
	t.Helper()
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	var cmds []Cmd
	c.Trace = func(cmd Cmd) { cmds = append(cmds, cmd) }
	submit(c)
	eng.Run(nil)
	return cmds, c
}

// actsByChannel collects ACT issue times per channel, in time order.
func actsByChannel(cmds []Cmd) map[int][]sim.Cycle {
	acts := make(map[int][]sim.Cycle)
	for _, cmd := range cmds {
		if cmd.Kind == CmdActivate {
			acts[cmd.Channel] = append(acts[cmd.Channel], cmd.At)
		}
	}
	for ch := range acts {
		sort.Slice(acts[ch], func(i, j int) bool { return acts[ch][i] < acts[ch][j] })
	}
	return acts
}

// TestInvariantActivateSpacing drives a bank-conflict-free activate
// storm through one channel and asserts every committed ACT honors
// tRRD against its predecessor and tFAW against the ACT four back.
func TestInvariantActivateSpacing(t *testing.T) {
	cfg := OffChipDDR3_1600() // one channel, 8 banks
	cfg.Policy = ClosePage    // every access activates

	cmds, _ := traceRun(t, cfg, func(c *Controller) {
		for i := 0; i < 64; i++ {
			// Rotate banks so tRC never dominates the spacing.
			c.Submit(&Request{Addr: memtrace.Addr(i * 2048), Bytes: 64})
		}
	})
	rrd := sim.Cycle(cfg.cpuCycles(cfg.Timing.TRRD))
	faw := sim.Cycle(cfg.cpuCycles(cfg.Timing.TFAW))
	for _, acts := range actsByChannel(cmds) {
		if len(acts) < 8 {
			t.Fatalf("expected an activate storm, got %d ACTs", len(acts))
		}
		for i := 1; i < len(acts); i++ {
			if acts[i]-acts[i-1] < rrd {
				t.Fatalf("ACT %d at %d violates tRRD (prev %d, need +%d)", i, acts[i], acts[i-1], rrd)
			}
		}
		for i := 4; i < len(acts); i++ {
			if acts[i]-acts[i-4] < faw {
				t.Fatalf("ACT %d at %d violates tFAW (4 back at %d, need +%d)", i, acts[i], acts[i-4], faw)
			}
		}
	}
}

// TestInvariantFirstFourActivatesNotFAWDelayed is the regression for
// the tFAW misapplication: the zero-initialized activate ring must not
// delay the first activates on a channel. With an artificially huge
// tFAW, the first four activates still issue at tRRD spacing; only the
// fifth pays the window.
func TestInvariantFirstFourActivatesNotFAWDelayed(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = ClosePage
	cfg.Timing.TFAW = 1000 // absurdly wide window

	cmds, _ := traceRun(t, cfg, func(c *Controller) {
		for i := 0; i < 5; i++ {
			c.Submit(&Request{Addr: memtrace.Addr(i * 2048), Bytes: 64})
		}
	})
	acts := actsByChannel(cmds)[0]
	if len(acts) != 5 {
		t.Fatalf("expected 5 ACTs, got %d", len(acts))
	}
	faw := sim.Cycle(cfg.cpuCycles(cfg.Timing.TFAW))
	// The first four must be packed far tighter than the window...
	if spread := acts[3] - acts[0]; spread >= faw {
		t.Fatalf("first four ACTs spread %d cycles — tFAW applied to empty history", spread)
	}
	// ...and the fifth must respect it exactly against the first.
	if acts[4]-acts[0] < faw {
		t.Fatalf("fifth ACT at %d violates tFAW against first at %d", acts[4], acts[0])
	}
}

// TestInvariantConflictPrechargeHonorsTRAS opens a row and immediately
// conflicts it: the precharge must wait out tRAS from the activate.
func TestInvariantConflictPrechargeHonorsTRAS(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage

	conflict := memtrace.Addr(8 * 2048) // same bank, next row
	cmds, _ := traceRun(t, cfg, func(c *Controller) {
		if c.cfg.Decode(conflict).Bank != c.cfg.Decode(0).Bank {
			t.Fatal("test geometry wrong: banks differ")
		}
		c.Submit(&Request{Addr: 0, Bytes: 64})
		c.Submit(&Request{Addr: conflict, Bytes: 64})
	})
	ras := sim.Cycle(cfg.cpuCycles(cfg.Timing.TRAS))
	var actAt, preAt sim.Cycle
	seenAct, seenPre := false, false
	for _, cmd := range cmds {
		switch cmd.Kind {
		case CmdActivate:
			if !seenAct {
				actAt, seenAct = cmd.At, true
			}
		case CmdPrecharge:
			if !seenPre {
				preAt, seenPre = cmd.At, true
			}
		}
	}
	if !seenAct || !seenPre {
		t.Fatalf("missing commands: act=%v pre=%v in %v", seenAct, seenPre, cmds)
	}
	if preAt < actAt+ras {
		t.Fatalf("PRE at %d before ACT %d + tRAS %d", preAt, actAt, ras)
	}
}

// TestInvariantWriteToReadTurnaround: a read following a write on the
// same channel pays the bus turnaround; following another read it does
// not.
func TestInvariantWriteToReadTurnaround(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	// Second access goes to a different bank so bank-level write
	// recovery cannot explain the delay: only the channel-level
	// turnaround can.
	other := memtrace.Addr(2048)
	if cfg.Decode(other).Bank == cfg.Decode(0).Bank {
		t.Fatal("test geometry wrong: same bank")
	}

	after := func(firstWrite bool) sim.Cycle {
		eng := &sim.Engine{}
		c := NewController(eng, cfg)
		var last sim.Cycle
		c.Submit(&Request{Addr: 0, Bytes: 64, Write: firstWrite})
		c.Submit(&Request{Addr: other, Bytes: 64, Done: func(at sim.Cycle) { last = at }})
		eng.Run(nil)
		return last
	}
	afterWrite, afterRead := after(true), after(false)
	if afterWrite <= afterRead {
		t.Fatalf("read after write (%d) not slower than read after read (%d): tWTR not applied",
			afterWrite, afterRead)
	}
	// JEDEC semantics: tWTR spaces the read *command* from the end of
	// write data, so the read's data cannot start before write data
	// end + tWTR + tCAS — not after a bare tWTR bus gap.
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	var writeEnd, readEnd sim.Cycle
	c.Submit(&Request{Addr: 0, Bytes: 64, Write: true, Done: func(at sim.Cycle) { writeEnd = at }})
	c.Submit(&Request{Addr: other, Bytes: 64, Done: func(at sim.Cycle) { readEnd = at }})
	eng.Run(nil)
	wtr := sim.Cycle(cfg.cpuCycles(cfg.Timing.TWTR))
	cas := sim.Cycle(cfg.cpuCycles(cfg.Timing.TCAS))
	burst := sim.Cycle(cfg.BurstCPUCycles(64))
	if readStart := readEnd - burst; readStart < writeEnd+wtr+cas {
		t.Fatalf("read data at %d, before write end %d + tWTR %d + tCAS %d: tWTR applied to data, not the command",
			readStart, writeEnd, wtr, cas)
	}
}

// TestInvariantReadToWriteTurnaround mirrors the above for tRTW.
func TestInvariantReadToWriteTurnaround(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	other := memtrace.Addr(2048)

	after := func(firstWrite bool) sim.Cycle {
		eng := &sim.Engine{}
		c := NewController(eng, cfg)
		var last sim.Cycle
		c.Submit(&Request{Addr: 0, Bytes: 64, Write: firstWrite})
		c.Submit(&Request{Addr: other, Bytes: 64, Write: true, Done: func(at sim.Cycle) { last = at }})
		eng.Run(nil)
		return last
	}
	afterRead, afterWrite := after(false), after(true)
	if afterRead <= afterWrite {
		t.Fatalf("write after read (%d) not slower than write after write (%d): tRTW not applied",
			afterRead, afterWrite)
	}
}

// TestInvariantNoHeadOfLineBlocking is the regression for the old
// single-wakeup scheduler: a request stalled on a row conflict (bank
// A, waiting out tRAS) must not delay a younger request to an idle
// bank B. The old model armed one wakeup for the stalled FR-FCFS pick
// and issued nothing until it fired; the reworked scheduler issues
// bank B immediately, so B completes first.
func TestInvariantNoHeadOfLineBlocking(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage

	conflict := memtrace.Addr(8 * 2048) // bank of addr 0, different row
	idleBank := memtrace.Addr(2048)     // a different bank
	if cfg.Decode(conflict).Bank != cfg.Decode(0).Bank || cfg.Decode(idleBank).Bank == cfg.Decode(0).Bank {
		t.Fatal("test geometry wrong")
	}

	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	var order []string
	var conflictDone, idleDone sim.Cycle
	c.Submit(&Request{Addr: 0, Bytes: 64})
	c.Submit(&Request{Addr: conflict, Bytes: 64, Done: func(at sim.Cycle) {
		order = append(order, "conflict")
		conflictDone = at
	}})
	c.Submit(&Request{Addr: idleBank, Bytes: 64, Done: func(at sim.Cycle) {
		order = append(order, "idle-bank")
		idleDone = at
	}})
	eng.Run(nil)

	if len(order) != 2 || order[0] != "idle-bank" {
		t.Fatalf("completion order %v: stalled conflict blocked an issuable bank", order)
	}
	if idleDone >= conflictDone {
		t.Fatalf("idle-bank request (%d) did not finish before the stalled conflict (%d)", idleDone, conflictDone)
	}
}

// TestInvariantRowHitKeepsBusPriorityOverConflict: a ready row hit
// whose data slot is merely bus-delayed must issue before a row
// conflict on another bank, even though the conflict's precharge
// could start earlier — arbitration follows data-slot order, so a
// conflict's long transfer cannot reserve the bus ahead of the hit.
func TestInvariantRowHitKeepsBusPriorityOverConflict(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage

	bankA := memtrace.Addr(0)
	bankB := memtrace.Addr(2048)
	conflictA := memtrace.Addr(8 * 2048) // bank A, different row
	if cfg.Decode(conflictA).Bank != cfg.Decode(bankA).Bank || cfg.Decode(bankB).Bank == cfg.Decode(bankA).Bank {
		t.Fatal("test geometry wrong")
	}

	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	// Open both rows.
	c.Submit(&Request{Addr: bankA, Bytes: 64})
	c.Submit(&Request{Addr: bankB, Bytes: 64})
	eng.Run(nil)
	// A 2KB row conflict on bank A races a 64B row hit on bank B.
	var hitDone, confDone sim.Cycle
	c.Submit(&Request{Addr: conflictA, Bytes: 2048, Done: func(at sim.Cycle) { confDone = at }})
	c.Submit(&Request{Addr: bankB + 64, Bytes: 64, Done: func(at sim.Cycle) { hitDone = at }})
	eng.Run(nil)
	if hitDone >= confDone {
		t.Fatalf("row hit (%d) finished after the conflict's 2KB transfer (%d): conflict reserved the bus first",
			hitDone, confDone)
	}
}

// TestInvariantStreamedReadHoldsRowOpen: a multi-burst read must keep
// its row open until the payload has streamed — the following conflict
// cannot precharge mid-transfer.
func TestInvariantStreamedReadHoldsRowOpen(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	conflict := memtrace.Addr(8 * 2048) // same bank, different row

	cmds, _ := traceRun(t, cfg, func(c *Controller) {
		c.Submit(&Request{Addr: 0, Bytes: 2048}) // 32-burst stream
		c.Submit(&Request{Addr: conflict, Bytes: 64})
	})
	var streamEnd sim.Cycle
	eng := &sim.Engine{}
	c2 := NewController(eng, cfg)
	c2.Submit(&Request{Addr: 0, Bytes: 2048, Done: func(at sim.Cycle) { streamEnd = at }})
	eng.Run(nil)

	burst := sim.Cycle(cfg.BurstCPUCycles(64))
	cas := sim.Cycle(cfg.cpuCycles(cfg.Timing.TCAS))
	rtp := sim.Cycle(cfg.cpuCycles(cfg.Timing.TRTP))
	lastCasMin := streamEnd - burst - cas // final column command of the stream
	for _, cmd := range cmds {
		if cmd.Kind == CmdPrecharge {
			if cmd.At < lastCasMin+rtp {
				t.Fatalf("PRE at %d closed the row mid-stream (last CAS ~%d, tRTP %d)",
					cmd.At, lastCasMin, rtp)
			}
			return
		}
	}
	t.Fatal("no precharge observed for the conflict")
}

// TestInvariantBankOverlap: two activating requests to different banks
// must overlap their row cycles rather than serialize.
func TestInvariantBankOverlap(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = ClosePage

	finish := func(addrs []memtrace.Addr) sim.Cycle {
		eng := &sim.Engine{}
		c := NewController(eng, cfg)
		var last sim.Cycle
		for _, a := range addrs {
			c.Submit(&Request{Addr: a, Bytes: 64, Done: func(at sim.Cycle) {
				if at > last {
					last = at
				}
			}})
		}
		eng.Run(nil)
		return last
	}

	one := finish([]memtrace.Addr{0})
	two := finish([]memtrace.Addr{0, 2048}) // different banks
	if two >= 2*one {
		t.Fatalf("two-bank batch (%d) serialized against single (%d)", two, one)
	}
}

// TestInvariantRefreshHappensPeriodically: a long run performs roughly
// cycles/tREFI refreshes per channel and still completes all requests.
func TestInvariantRefreshHappensPeriodically(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	cfg.Timing.TREFI = 200 // tiny interval so a short run refreshes often
	cfg.Timing.TRFC = 40

	done := 0
	cmds, c := traceRun(t, cfg, func(c *Controller) {
		for i := 0; i < 200; i++ {
			c.Submit(&Request{Addr: memtrace.Addr(i % 16 * 2048), Bytes: 64,
				Done: func(sim.Cycle) { done++ }})
		}
	})
	if done != 200 {
		t.Fatalf("completed %d of 200 with refresh enabled", done)
	}
	if c.Stats.Refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
	refs := 0
	var lastRef sim.Cycle
	refi := sim.Cycle(cfg.cpuCycles(cfg.Timing.TREFI))
	for _, cmd := range cmds {
		if cmd.Kind == CmdRefresh {
			if refs > 0 && cmd.At < lastRef+refi/2 {
				t.Fatalf("refreshes %d cycles apart, interval %d", cmd.At-lastRef, refi)
			}
			lastRef = cmd.At
			refs++
		}
	}
	if uint64(refs) != c.Stats.Refreshes {
		t.Fatalf("trace saw %d refreshes, stats %d", refs, c.Stats.Refreshes)
	}
}

// TestInvariantRefreshDisabled: TREFI <= 0 turns the refresh engine
// off entirely.
func TestInvariantRefreshDisabled(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Timing.TREFI = 0
	_, c := traceRun(t, cfg, func(c *Controller) {
		for i := 0; i < 100; i++ {
			c.Submit(&Request{Addr: memtrace.Addr(i * 64), Bytes: 64})
		}
	})
	if c.Stats.Refreshes != 0 {
		t.Fatalf("refreshes with TREFI=0: %d", c.Stats.Refreshes)
	}
}

// TestInvariantWriteQueueDrains: posted writes below the drain
// threshold still complete once the channel goes idle, and a flood of
// writes above the threshold drains in bursts.
func TestInvariantWriteQueueDrains(t *testing.T) {
	cfg := StackedDDR3_3200()
	done := 0
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	// Two writes: far below any threshold; must still complete.
	c.Submit(&Request{Addr: 0, Bytes: 64, Write: true, Done: func(sim.Cycle) { done++ }})
	c.Submit(&Request{Addr: 4096, Bytes: 64, Write: true, Done: func(sim.Cycle) { done++ }})
	eng.Run(nil)
	if done != 2 {
		t.Fatalf("opportunistic drain incomplete: %d of 2", done)
	}
	if c.QueueDepth() != 0 {
		t.Fatalf("queue not drained: %d", c.QueueDepth())
	}
}

// TestInvariantReadLatencyHistogram: the controller's read-latency
// histogram sees every read exactly once.
func TestInvariantReadLatencyHistogram(t *testing.T) {
	cfg := OffChipDDR3_1600()
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	for i := 0; i < 40; i++ {
		c.Submit(&Request{Addr: memtrace.Addr(i * 4096), Bytes: 64, Write: i%4 == 0})
	}
	eng.Run(nil)
	if got := c.ReadLatency.Total(); got != 30 {
		t.Fatalf("histogram saw %d reads, want 30", got)
	}
	if p50 := c.ReadLatency.Percentile(0.5); p50 <= 0 {
		t.Fatalf("p50 = %g", p50)
	}
}

// TestInvariantAccessClassCountedOncePerRequest: every request gets
// exactly one row-buffer access classification (hit, miss, or
// conflict), even when prep-ahead rows are wasted by write-drain
// flips or refresh before their column command issues.
func TestInvariantAccessClassCountedOncePerRequest(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	cfg.WriteQueueDepth = 4 // frequent drain flips
	cfg.Timing.TREFI = 400  // refresh often (still > tRFC + tRP)
	cfg.Timing.TRFC = 40

	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	const n = 400
	for i := 0; i < n; i++ {
		c.Submit(&Request{
			Addr:  memtrace.Addr(i * 7919 % (1 << 14) * 64),
			Bytes: 64,
			Write: i%3 == 0,
		})
	}
	eng.Run(nil)
	if got := c.Stats.Accesses(); got != n {
		t.Fatalf("access classes counted %d times for %d requests: %+v", got, n, c.Stats)
	}
}
