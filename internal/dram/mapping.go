package dram

import "fpcache/internal/memtrace"

// Location identifies where an address lands in the DRAM subsystem.
type Location struct {
	Channel int
	Bank    int
	Row     int64
}

// Decode maps a physical address to its channel, bank, and row using
// the configured channel interleaving: consecutive InterleaveBytes
// chunks rotate across channels; within a channel, consecutive rows
// rotate across banks.
func (c Config) Decode(addr memtrace.Addr) Location {
	a := uint64(addr)
	chunk := a / uint64(c.InterleaveBytes)
	ch := int(chunk % uint64(c.Channels))
	inChan := (chunk/uint64(c.Channels))*uint64(c.InterleaveBytes) + a%uint64(c.InterleaveBytes)
	rowIdx := inChan / uint64(c.RowBytes)
	return Location{
		Channel: ch,
		Bank:    int(rowIdx % uint64(c.BanksPerChan)),
		Row:     int64(rowIdx / uint64(c.BanksPerChan)),
	}
}

// RowSpan reports how many distinct rows the byte range [addr,
// addr+bytes) touches within its channel mapping. With page
// interleaving and page <= row size this is 1 for a page transfer —
// the property the paper's designs exploit (§2.3).
func (c Config) RowSpan(addr memtrace.Addr, bytes int) int {
	if bytes <= 0 {
		return 0
	}
	seen := make(map[Location]struct{})
	for off := 0; off < bytes; off += 64 {
		loc := c.Decode(addr + memtrace.Addr(off))
		seen[loc] = struct{}{}
	}
	return len(seen)
}
