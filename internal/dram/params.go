// Package dram models DRAM devices: DDR3 timing, bank and row-buffer
// state, open- and close-page policies, FR-FCFS scheduling, address
// interleaving across channels, and per-operation energy counters.
//
// Two instances are used per simulated pod, mirroring the paper's
// methodology (§5.4, two separately configured DRAMSim2 instances):
// an off-chip DDR3-1600 channel and a 4-channel die-stacked DDR3-3200
// with 128-bit TSV buses.
package dram

import "fmt"

// Timing holds DDR timing constraints in DRAM bus cycles, as listed in
// the paper's Table 3 (identical for the stacked and off-chip parts;
// the stacked part's advantage is clock rate, channel count, and bus
// width).
type Timing struct {
	TCAS int // column access strobe latency
	TRCD int // row-to-column delay
	TRP  int // row precharge
	TRAS int // row access strobe (activate to precharge)
	TRC  int // row cycle (activate to activate, same bank)
	TWR  int // write recovery
	TWTR int // write-to-read turnaround
	TRTP int // read-to-precharge
	TRRD int // activate-to-activate, different banks
	TFAW int // four-activate window
}

// Table3Timing returns the timing parameters of the paper's Table 3.
func Table3Timing() Timing {
	return Timing{
		TCAS: 11, TRCD: 11, TRP: 11, TRAS: 28,
		TRC: 39, TWR: 12, TWTR: 6, TRTP: 6,
		TRRD: 5, TFAW: 24,
	}
}

// RowPolicy selects the row-buffer management policy.
type RowPolicy int

const (
	// OpenPage leaves a row open after an access, betting on row
	// locality (used by the page-based and Footprint designs, §5.2).
	OpenPage RowPolicy = iota
	// ClosePage precharges immediately after each access (used by the
	// block-based design, which has no data locality, §5.2).
	ClosePage
)

// String implements fmt.Stringer.
func (p RowPolicy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosePage:
		return "close-page"
	default:
		return fmt.Sprintf("RowPolicy(%d)", int(p))
	}
}

// Config describes one DRAM subsystem (all channels identical).
type Config struct {
	Name          string
	Timing        Timing
	Channels      int
	BanksPerChan  int
	RowBytes      int // row-buffer size (2KB in Table 3)
	BusBytesPerCy int // data-bus bytes per bus cycle (DDR: 2 beats/cycle x width)
	CPUPerBusCy   float64
	Policy        RowPolicy
	// InterleaveBytes is the channel-interleaving granularity: 64B for
	// the block-based design, 2KB for page-based and Footprint (§5.2).
	InterleaveBytes int
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChan <= 0 {
		return fmt.Errorf("dram %s: need positive channels/banks, got %d/%d", c.Name, c.Channels, c.BanksPerChan)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram %s: row size %d must be a power of two", c.Name, c.RowBytes)
	}
	if c.InterleaveBytes <= 0 || c.InterleaveBytes&(c.InterleaveBytes-1) != 0 {
		return fmt.Errorf("dram %s: interleave %d must be a power of two", c.Name, c.InterleaveBytes)
	}
	if c.BusBytesPerCy <= 0 {
		return fmt.Errorf("dram %s: bus bytes/cycle must be positive", c.Name)
	}
	if c.CPUPerBusCy <= 0 {
		return fmt.Errorf("dram %s: CPU/bus clock ratio must be positive", c.Name)
	}
	return nil
}

// cpuCycles converts bus cycles to CPU cycles, rounding up.
func (c Config) cpuCycles(bus int) uint64 {
	v := float64(bus) * c.CPUPerBusCy
	u := uint64(v)
	if float64(u) < v {
		u++
	}
	return u
}

// BurstCPUCycles returns the CPU cycles the data bus is occupied
// transferring n bytes.
func (c Config) BurstCPUCycles(n int) uint64 {
	bus := (n + c.BusBytesPerCy - 1) / c.BusBytesPerCy
	if bus == 0 {
		bus = 1
	}
	return c.cpuCycles(bus)
}

const cpuGHz = 3.0 // Table 3: 3GHz cores

// OffChipDDR3_1600 returns the paper's off-chip memory configuration:
// one DDR3-1600 channel per pod, 8 banks, 2KB rows, 64-bit bus
// (12.8GB/s). The interleave and policy default to the Footprint/page
// setting (2KB, open-page); block-based runs override both (§5.2).
func OffChipDDR3_1600() Config {
	return Config{
		Name:            "offchip-ddr3-1600",
		Timing:          Table3Timing(),
		Channels:        1,
		BanksPerChan:    8,
		RowBytes:        2048,
		BusBytesPerCy:   16, // 64-bit DDR: 2 x 8B per bus cycle
		CPUPerBusCy:     cpuGHz * 1000 / 800,
		Policy:          OpenPage,
		InterleaveBytes: 2048,
	}
}

// StackedDDR3_3200 returns the paper's die-stacked configuration: 4
// channels per pod, 8 banks each, 2KB rows, 128-bit TSV buses at
// 1.6GHz (Table 3).
func StackedDDR3_3200() Config {
	return Config{
		Name:            "stacked-ddr3-3200",
		Timing:          Table3Timing(),
		Channels:        4,
		BanksPerChan:    8,
		RowBytes:        2048,
		BusBytesPerCy:   32, // 128-bit DDR: 2 x 16B per bus cycle
		CPUPerBusCy:     cpuGHz * 1000 / 1600,
		Policy:          OpenPage,
		InterleaveBytes: 2048,
	}
}

// Stats counts DRAM operations for bandwidth and energy accounting.
// Reads and writes are in 64-byte burst units.
type Stats struct {
	Activates   uint64
	ReadBursts  uint64
	WriteBursts uint64
	RowHits     uint64
	RowMisses   uint64 // closed-row activates
	RowConflict uint64 // open-row conflicts (precharge first)
}

// Accesses returns the total number of row-buffer access decisions.
func (s Stats) Accesses() uint64 { return s.RowHits + s.RowMisses + s.RowConflict }

// RowHitRatio returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRatio() float64 {
	t := s.Accesses()
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// DataBytes returns the total data moved, in bytes.
func (s Stats) DataBytes() uint64 { return (s.ReadBursts + s.WriteBursts) * 64 }

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Activates += o.Activates
	s.ReadBursts += o.ReadBursts
	s.WriteBursts += o.WriteBursts
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowConflict += o.RowConflict
}

// Sub returns s minus o, used to exclude warmup from measurements.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Activates:   s.Activates - o.Activates,
		ReadBursts:  s.ReadBursts - o.ReadBursts,
		WriteBursts: s.WriteBursts - o.WriteBursts,
		RowHits:     s.RowHits - o.RowHits,
		RowMisses:   s.RowMisses - o.RowMisses,
		RowConflict: s.RowConflict - o.RowConflict,
	}
}
