// Package dram models DRAM devices: DDR3 timing, bank and row-buffer
// state, open- and close-page policies, command-level FR-FCFS
// scheduling with per-bank queues, write-queue drain, bus turnaround
// and periodic refresh, address interleaving across channels, and
// per-operation energy counters.
//
// Two instances are used per simulated pod, mirroring the paper's
// methodology (§5.4, two separately configured DRAMSim2 instances):
// an off-chip DDR3-1600 channel and a 4-channel die-stacked DDR3-3200
// with 128-bit TSV buses.
package dram

import "fmt"

// Timing holds DDR timing constraints in DRAM bus cycles, as listed in
// the paper's Table 3 (identical for the stacked and off-chip parts;
// the stacked part's advantage is clock rate, channel count, and bus
// width).
type Timing struct {
	TCAS int // column access strobe latency
	TRCD int // row-to-column delay
	TRP  int // row precharge
	TRAS int // row access strobe (activate to precharge)
	TRC  int // row cycle (activate to activate, same bank)
	TWR  int // write recovery
	TWTR int // write-to-read turnaround
	TRTW int // read-to-write turnaround
	TRTP int // read-to-precharge
	TRRD int // activate-to-activate, different banks
	TFAW int // four-activate window
	// TREFI is the refresh interval and TRFC the refresh cycle time of
	// an all-bank refresh. TREFI <= 0 or TRFC <= 0 disables refresh
	// modeling (used by synthetic latency studies that halve or zero
	// parts of the timing).
	TREFI int
	TRFC  int
}

// Table3Timing returns the timing parameters of the paper's Table 3,
// plus the standard DDR3 turnaround and refresh parameters the paper
// leaves implicit (tRTW; tREFI = 7.8us and tRFC = 260ns at the
// DDR3-1600 bus clock — both parts share the table's cycle counts).
func Table3Timing() Timing {
	return Timing{
		TCAS: 11, TRCD: 11, TRP: 11, TRAS: 28,
		TRC: 39, TWR: 12, TWTR: 6, TRTW: 2, TRTP: 6,
		TRRD: 5, TFAW: 24,
		TREFI: 6240, TRFC: 208,
	}
}

// RowPolicy selects the row-buffer management policy.
type RowPolicy int

const (
	// OpenPage leaves a row open after an access, betting on row
	// locality (used by the page-based and Footprint designs, §5.2).
	OpenPage RowPolicy = iota
	// ClosePage precharges immediately after each access (used by the
	// block-based design, which has no data locality, §5.2).
	ClosePage
)

// String implements fmt.Stringer.
func (p RowPolicy) String() string {
	switch p {
	case OpenPage:
		return "open-page"
	case ClosePage:
		return "close-page"
	default:
		return fmt.Sprintf("RowPolicy(%d)", int(p))
	}
}

// Config describes one DRAM subsystem (all channels identical).
type Config struct {
	Name          string
	Timing        Timing
	Channels      int
	BanksPerChan  int
	RowBytes      int // row-buffer size (2KB in Table 3)
	BusBytesPerCy int // data-bus bytes per bus cycle (DDR: 2 beats/cycle x width)
	CPUPerBusCy   float64
	Policy        RowPolicy
	// InterleaveBytes is the channel-interleaving granularity: 64B for
	// the block-based design, 2KB for page-based and Footprint (§5.2).
	InterleaveBytes int
	// WriteQueueDepth sizes the per-channel posted-write queue used to
	// derive the drain thresholds; WriteDrainHigh starts a drain burst
	// when that many writes are pending and WriteDrainLow ends it.
	// Zero values take defaults (32 deep, drain between 24 and 8), so
	// existing literal configs keep working.
	WriteQueueDepth int
	WriteDrainHigh  int
	WriteDrainLow   int
}

// defaultWriteQueueDepth sizes the per-channel write queue when the
// config leaves it zero.
const defaultWriteQueueDepth = 32

// writeThresholds resolves the write-drain configuration, applying
// defaults for zero fields. It never reconciles contradictions —
// Validate rejects any resolved combination where low >= high or high
// exceeds the queue depth.
func (c Config) writeThresholds() (high, low int) {
	depth := c.WriteQueueDepth
	if depth <= 0 {
		depth = defaultWriteQueueDepth
	}
	high = c.WriteDrainHigh
	if high <= 0 {
		high = depth * 3 / 4
	}
	if high < 1 {
		// A zero high threshold would latch the channel into drain
		// mode and let any posted write preempt reads.
		high = 1
	}
	low = c.WriteDrainLow
	if low <= 0 {
		low = depth / 4
	}
	return high, low
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Channels <= 0 || c.BanksPerChan <= 0 {
		return fmt.Errorf("dram %s: need positive channels/banks, got %d/%d", c.Name, c.Channels, c.BanksPerChan)
	}
	if c.RowBytes <= 0 || c.RowBytes&(c.RowBytes-1) != 0 {
		return fmt.Errorf("dram %s: row size %d must be a power of two", c.Name, c.RowBytes)
	}
	if c.InterleaveBytes <= 0 || c.InterleaveBytes&(c.InterleaveBytes-1) != 0 {
		return fmt.Errorf("dram %s: interleave %d must be a power of two", c.Name, c.InterleaveBytes)
	}
	if c.BusBytesPerCy <= 0 {
		return fmt.Errorf("dram %s: bus bytes/cycle must be positive", c.Name)
	}
	if c.CPUPerBusCy <= 0 {
		return fmt.Errorf("dram %s: CPU/bus clock ratio must be positive", c.Name)
	}
	if c.Timing.TREFI > 0 && c.Timing.TRFC > 0 && c.Timing.TREFI <= c.Timing.TRFC+c.Timing.TRP {
		// A refresh (plus the precharge preceding it) longer than the
		// refresh interval would re-trigger forever and livelock the
		// scheduler: the channel never catches up.
		return fmt.Errorf("dram %s: tREFI %d must exceed tRFC %d + tRP %d",
			c.Name, c.Timing.TREFI, c.Timing.TRFC, c.Timing.TRP)
	}
	// Validate the write-drain thresholds as they will actually run —
	// after default resolution — so an explicit setting contradicting
	// a defaulted counterpart errors instead of silently rewriting the
	// configured policy.
	high, low := c.writeThresholds()
	depth := c.WriteQueueDepth
	if depth <= 0 {
		depth = defaultWriteQueueDepth
	}
	if high > depth {
		return fmt.Errorf("dram %s: write-drain high %d exceeds queue depth %d",
			c.Name, high, depth)
	}
	if low >= high {
		return fmt.Errorf("dram %s: write-drain low %d must be below high %d",
			c.Name, low, high)
	}
	return nil
}

// cpuCycles converts bus cycles to CPU cycles, rounding up.
func (c Config) cpuCycles(bus int) uint64 {
	v := float64(bus) * c.CPUPerBusCy
	u := uint64(v)
	if float64(u) < v {
		u++
	}
	return u
}

// BurstCPUCycles returns the CPU cycles the data bus is occupied
// transferring n bytes.
func (c Config) BurstCPUCycles(n int) uint64 {
	bus := (n + c.BusBytesPerCy - 1) / c.BusBytesPerCy
	if bus == 0 {
		bus = 1
	}
	return c.cpuCycles(bus)
}

const cpuGHz = 3.0 // Table 3: 3GHz cores

// OffChipDDR3_1600 returns the paper's off-chip memory configuration:
// one DDR3-1600 channel per pod, 8 banks, 2KB rows, 64-bit bus
// (12.8GB/s). The interleave and policy default to the Footprint/page
// setting (2KB, open-page); block-based runs override both (§5.2).
func OffChipDDR3_1600() Config {
	return Config{
		Name:            "offchip-ddr3-1600",
		Timing:          Table3Timing(),
		Channels:        1,
		BanksPerChan:    8,
		RowBytes:        2048,
		BusBytesPerCy:   16, // 64-bit DDR: 2 x 8B per bus cycle
		CPUPerBusCy:     cpuGHz * 1000 / 800,
		Policy:          OpenPage,
		InterleaveBytes: 2048,
	}
}

// StackedDDR3_3200 returns the paper's die-stacked configuration: 4
// channels per pod, 8 banks each, 2KB rows, 128-bit TSV buses at
// 1.6GHz (Table 3).
func StackedDDR3_3200() Config {
	return Config{
		Name:            "stacked-ddr3-3200",
		Timing:          Table3Timing(),
		Channels:        4,
		BanksPerChan:    8,
		RowBytes:        2048,
		BusBytesPerCy:   32, // 128-bit DDR: 2 x 16B per bus cycle
		CPUPerBusCy:     cpuGHz * 1000 / 1600,
		Policy:          OpenPage,
		InterleaveBytes: 2048,
	}
}

// Stats counts DRAM operations for bandwidth and energy accounting.
// Reads and writes are in 64-byte burst units.
type Stats struct {
	Activates   uint64
	ReadBursts  uint64
	WriteBursts uint64
	RowHits     uint64
	RowMisses   uint64 // closed-row activates
	RowConflict uint64 // open-row conflicts (precharge first)
	Refreshes   uint64 // all-bank refresh commands (timing model only)
}

// Accesses returns the total number of row-buffer access decisions.
func (s Stats) Accesses() uint64 { return s.RowHits + s.RowMisses + s.RowConflict }

// RowHitRatio returns the fraction of accesses that hit an open row.
func (s Stats) RowHitRatio() float64 {
	t := s.Accesses()
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

// DataBytes returns the total data moved, in bytes.
func (s Stats) DataBytes() uint64 { return (s.ReadBursts + s.WriteBursts) * 64 }

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Activates += o.Activates
	s.ReadBursts += o.ReadBursts
	s.WriteBursts += o.WriteBursts
	s.RowHits += o.RowHits
	s.RowMisses += o.RowMisses
	s.RowConflict += o.RowConflict
	s.Refreshes += o.Refreshes
}

// Sub returns s minus o, used to exclude warmup from measurements.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Activates:   s.Activates - o.Activates,
		ReadBursts:  s.ReadBursts - o.ReadBursts,
		WriteBursts: s.WriteBursts - o.WriteBursts,
		RowHits:     s.RowHits - o.RowHits,
		RowMisses:   s.RowMisses - o.RowMisses,
		RowConflict: s.RowConflict - o.RowConflict,
		Refreshes:   s.Refreshes - o.Refreshes,
	}
}
