package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
)

// Property: under arbitrary request streams, every request completes,
// completions never precede submissions, and the controller's burst
// accounting conserves the submitted payload exactly.
func TestPropertyControllerConservation(t *testing.T) {
	f := func(seed int64, nRaw uint8, closePage bool) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		cfg := StackedDDR3_3200()
		if closePage {
			cfg.Policy = ClosePage
		}
		eng := &sim.Engine{}
		c := NewController(eng, cfg)

		type rec struct {
			submit sim.Cycle
			finish sim.Cycle
			done   bool
		}
		recs := make([]rec, n)
		var wantReads, wantWrites uint64
		for i := 0; i < n; i++ {
			i := i
			bursts := 1 + rng.Intn(32)
			write := rng.Intn(3) == 0
			if write {
				wantWrites += uint64(bursts)
			} else {
				wantReads += uint64(bursts)
			}
			recs[i].submit = eng.Now()
			c.Submit(&Request{
				Addr:  memtrace.Addr(rng.Intn(1<<18) * 64),
				Bytes: bursts * 64,
				Write: write,
				Done: func(at sim.Cycle) {
					recs[i].finish = at
					recs[i].done = true
				},
			})
		}
		eng.Run(nil)
		for i := range recs {
			if !recs[i].done || recs[i].finish < recs[i].submit {
				return false
			}
		}
		return c.Stats.ReadBursts == wantReads && c.Stats.WriteBursts == wantWrites &&
			c.QueueDepth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the functional tracker and the timing controller agree on
// total burst counts for identical access sequences (activates may
// differ: FR-FCFS reorders requests and changes row-hit patterns, but
// payload is payload).
func TestPropertyTrackerControllerBurstAgreement(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		cfg := OffChipDDR3_1600()
		rng := rand.New(rand.NewSource(seed))

		type op struct {
			addr  memtrace.Addr
			bytes int
			write bool
		}
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{
				addr:  memtrace.Addr(rng.Intn(1<<16) * 64),
				bytes: (1 + rng.Intn(8)) * 64,
				write: rng.Intn(4) == 0,
			}
		}

		tr := NewTracker(cfg)
		for _, o := range ops {
			tr.Access(o.addr, o.bytes, o.write)
		}

		eng := &sim.Engine{}
		ctrl := NewController(eng, cfg)
		for _, o := range ops {
			ctrl.Submit(&Request{Addr: o.addr, Bytes: o.bytes, Write: o.write})
		}
		eng.Run(nil)

		return tr.Stats.ReadBursts == ctrl.Stats.ReadBursts &&
			tr.Stats.WriteBursts == ctrl.Stats.WriteBursts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: close-page policy never reports row hits across requests,
// and open-page activates never exceed accesses.
func TestPropertyRowPolicyInvariants(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%150) + 1
		rng := rand.New(rand.NewSource(seed))

		closed := StackedDDR3_3200()
		closed.Policy = ClosePage
		open := StackedDDR3_3200()
		open.Policy = OpenPage

		engC := &sim.Engine{}
		ctrlC := NewController(engC, closed)
		engO := &sim.Engine{}
		ctrlO := NewController(engO, open)

		for i := 0; i < n; i++ {
			addr := memtrace.Addr(rng.Intn(1<<14) * 64)
			ctrlC.Submit(&Request{Addr: addr, Bytes: 64})
			ctrlO.Submit(&Request{Addr: addr, Bytes: 64})
		}
		engC.Run(nil)
		engO.Run(nil)

		if ctrlC.Stats.RowHits != 0 {
			return false // close-page closed the row after each access
		}
		if ctrlC.Stats.Activates != uint64(n) {
			return false // every close-page access activates once
		}
		return ctrlO.Stats.Activates <= uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
