package dram

import (
	"testing"
	"testing/quick"

	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
)

func TestTable3Timing(t *testing.T) {
	tm := Table3Timing()
	if tm.TCAS != 11 || tm.TRCD != 11 || tm.TRP != 11 || tm.TRAS != 28 {
		t.Fatalf("Table 3 core timing wrong: %+v", tm)
	}
	if tm.TRRD != 5 || tm.TFAW != 24 {
		t.Fatalf("Table 3 activate windows wrong: %+v", tm)
	}
}

func TestConfigValidate(t *testing.T) {
	good := OffChipDDR3_1600()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.RowBytes = 1000 // not a power of two
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two row accepted")
	}
	bad = good
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("zero channels accepted")
	}
	bad = good
	bad.InterleaveBytes = 96
	if bad.Validate() == nil {
		t.Fatal("non-power-of-two interleave accepted")
	}
}

func TestBandwidthRatios(t *testing.T) {
	// Table 3 per pod: off-chip = 1 channel x 64-bit x 0.8GHz DDR =
	// 12.8GB/s; stacked = 4 channels x 128-bit x 1.6GHz DDR =
	// 204.8GB/s (16x) — the TSV bandwidth the paper calls "virtually
	// unlimited" relative to the off-chip interface.
	off := OffChipDDR3_1600()
	stk := StackedDDR3_3200()
	offBW := float64(off.Channels*off.BusBytesPerCy) / off.CPUPerBusCy
	stkBW := float64(stk.Channels*stk.BusBytesPerCy) / stk.CPUPerBusCy
	if offGBs := offBW * 3; offGBs < 12.7 || offGBs > 12.9 {
		t.Fatalf("off-chip bandwidth = %.1fGB/s, want 12.8", offGBs)
	}
	if ratio := stkBW / offBW; ratio < 15.9 || ratio > 16.1 {
		t.Fatalf("stacked/off-chip bandwidth ratio = %.2f, want 16", ratio)
	}
}

func TestDecodeChannelInterleaving(t *testing.T) {
	cfg := StackedDDR3_3200() // 4 channels, 2KB interleave
	for i := 0; i < 8; i++ {
		loc := cfg.Decode(memtrace.Addr(i * 2048))
		if loc.Channel != i%4 {
			t.Fatalf("chunk %d -> channel %d, want %d", i, loc.Channel, i%4)
		}
	}
	// Within one chunk, the channel must not change.
	base := memtrace.Addr(3 * 2048)
	ch := cfg.Decode(base).Channel
	for off := 0; off < 2048; off += 64 {
		if got := cfg.Decode(base + memtrace.Addr(off)).Channel; got != ch {
			t.Fatalf("channel changed within an interleave chunk at +%d", off)
		}
	}
}

func TestDecodeBounds(t *testing.T) {
	f := func(addr uint64) bool {
		cfg := StackedDDR3_3200()
		loc := cfg.Decode(memtrace.Addr(addr))
		return loc.Channel >= 0 && loc.Channel < cfg.Channels &&
			loc.Bank >= 0 && loc.Bank < cfg.BanksPerChan && loc.Row >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeDistinctRowsForDistinctChunks(t *testing.T) {
	cfg := OffChipDDR3_1600()
	a := cfg.Decode(0)
	b := cfg.Decode(2048 * memtrace.Addr(cfg.Channels)) // next row, same channel
	if a.Channel != b.Channel {
		t.Fatalf("expected same channel, got %d vs %d", a.Channel, b.Channel)
	}
	if a.Bank == b.Bank && a.Row == b.Row {
		t.Fatal("distinct 2KB chunks mapped to the same row")
	}
}

func TestRowSpanPageFitsOneRow(t *testing.T) {
	cfg := StackedDDR3_3200()
	if n := cfg.RowSpan(0, 2048); n != 1 {
		t.Fatalf("2KB page spans %d rows, want 1", n)
	}
	if n := cfg.RowSpan(0, 64); n != 1 {
		t.Fatalf("single block spans %d rows", n)
	}
	if n := cfg.RowSpan(0, 0); n != 0 {
		t.Fatalf("empty span = %d", n)
	}
}

func TestTrackerRowHitsOpenPage(t *testing.T) {
	cfg := StackedDDR3_3200()
	cfg.Policy = OpenPage
	tr := NewTracker(cfg)
	tr.Access(0, 64, false)  // activate
	tr.Access(64, 64, false) // same row: hit
	if tr.Stats.Activates != 1 || tr.Stats.RowHits != 1 {
		t.Fatalf("open-page: activates=%d rowhits=%d", tr.Stats.Activates, tr.Stats.RowHits)
	}
}

func TestTrackerClosePageAlwaysActivates(t *testing.T) {
	cfg := StackedDDR3_3200()
	cfg.Policy = ClosePage
	tr := NewTracker(cfg)
	tr.Access(0, 64, false)
	tr.Access(64, 64, false) // row was closed: activate again
	if tr.Stats.Activates != 2 || tr.Stats.RowHits != 0 {
		t.Fatalf("close-page: activates=%d rowhits=%d", tr.Stats.Activates, tr.Stats.RowHits)
	}
}

func TestTrackerRowConflict(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	cfg.InterleaveBytes = 2048
	tr := NewTracker(cfg)
	tr.Access(0, 64, false)
	// Same channel+bank, different row: with 1 channel and 8 banks,
	// rows rotate banks, so jump 8 rows ahead.
	conflictAddr := memtrace.Addr(8 * 2048)
	if tr.cfg.Decode(conflictAddr).Bank != tr.cfg.Decode(0).Bank {
		t.Fatal("test geometry wrong: banks differ")
	}
	tr.Access(conflictAddr, 64, false)
	if tr.Stats.RowConflict != 1 {
		t.Fatalf("conflicts = %d, want 1", tr.Stats.RowConflict)
	}
}

func TestTrackerPageTransferOneActivation(t *testing.T) {
	// The page-granularity property (§2.3): a whole 2KB transfer costs
	// one activation on open-page DRAM.
	cfg := StackedDDR3_3200()
	tr := NewTracker(cfg)
	tr.Access(4096, 2048, true)
	if tr.Stats.Activates != 1 {
		t.Fatalf("2KB fill cost %d activations, want 1", tr.Stats.Activates)
	}
	if tr.Stats.WriteBursts != 32 {
		t.Fatalf("2KB fill = %d write bursts, want 32", tr.Stats.WriteBursts)
	}
}

func TestTrackerAccessBlocksSparse(t *testing.T) {
	cfg := StackedDDR3_3200()
	tr := NewTracker(cfg)
	tr.AccessBlocks(0, 0b1011, false) // blocks 0, 1, 3
	if tr.Stats.ReadBursts != 3 {
		t.Fatalf("sparse access read %d bursts, want 3", tr.Stats.ReadBursts)
	}
	if tr.Stats.Activates != 1 {
		t.Fatalf("sparse same-row access cost %d activations", tr.Stats.Activates)
	}
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{Activates: 5, ReadBursts: 10, WriteBursts: 3, RowHits: 7, RowMisses: 4, RowConflict: 1}
	b := a
	b.Add(a)
	if b.Activates != 10 || b.ReadBursts != 20 {
		t.Fatalf("Add wrong: %+v", b)
	}
	if diff := b.Sub(a); diff != a {
		t.Fatalf("Sub wrong: %+v", diff)
	}
	if a.DataBytes() != 13*64 {
		t.Fatalf("DataBytes = %d", a.DataBytes())
	}
	if rh := a.RowHitRatio(); rh < 0.58 || rh > 0.59 {
		t.Fatalf("RowHitRatio = %g", rh)
	}
}

// --- Controller (timing) tests ---

func runOne(t *testing.T, cfg Config, reqs []*Request) *Controller {
	t.Helper()
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	for _, r := range reqs {
		c.Submit(r)
	}
	eng.Run(nil)
	return c
}

func TestControllerCompletesAllRequests(t *testing.T) {
	cfg := StackedDDR3_3200()
	done := 0
	var reqs []*Request
	for i := 0; i < 50; i++ {
		reqs = append(reqs, &Request{
			Addr: memtrace.Addr(i * 64), Bytes: 64,
			Done: func(sim.Cycle) { done++ },
		})
	}
	c := runOne(t, cfg, reqs)
	if done != 50 {
		t.Fatalf("completed %d of 50", done)
	}
	if c.Stats.ReadBursts != 50 {
		t.Fatalf("read bursts = %d", c.Stats.ReadBursts)
	}
	if c.LatencyCount != 50 {
		t.Fatalf("latency samples = %d", c.LatencyCount)
	}
}

func TestControllerRowHitFasterThanConflict(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage

	var hitLat, confLat sim.Cycle
	// Row hit: two accesses to the same row back to back.
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	c.Submit(&Request{Addr: 0, Bytes: 64})
	c.Submit(&Request{Addr: 64, Bytes: 64, Done: func(at sim.Cycle) { hitLat = at }})
	eng.Run(nil)

	// Row conflict: second access to a different row of the same bank.
	eng2 := &sim.Engine{}
	c2 := NewController(eng2, cfg)
	conflict := memtrace.Addr(8 * 2048 * uint64(cfg.Channels))
	if c2.cfg.Decode(conflict).Bank != c2.cfg.Decode(0).Bank ||
		c2.cfg.Decode(conflict).Channel != c2.cfg.Decode(0).Channel {
		t.Fatal("test geometry wrong")
	}
	c2.Submit(&Request{Addr: 0, Bytes: 64})
	c2.Submit(&Request{Addr: conflict, Bytes: 64, Done: func(at sim.Cycle) { confLat = at }})
	eng2.Run(nil)

	if hitLat >= confLat {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hitLat, confLat)
	}
	if c.Stats.RowHits != 1 || c2.Stats.RowConflict != 1 {
		t.Fatalf("stats: hits=%d conflicts=%d", c.Stats.RowHits, c2.Stats.RowConflict)
	}
}

func TestControllerParallelBanksBeatSameBank(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = ClosePage

	finish := func(addrs []memtrace.Addr) sim.Cycle {
		eng := &sim.Engine{}
		c := NewController(eng, cfg)
		var last sim.Cycle
		for _, a := range addrs {
			c.Submit(&Request{Addr: a, Bytes: 64, Done: func(at sim.Cycle) {
				if at > last {
					last = at
				}
			}})
		}
		eng.Run(nil)
		return last
	}

	// 4 requests to 4 different banks vs 4 to the same bank.
	diff := []memtrace.Addr{0, 2048, 2 * 2048, 3 * 2048}
	same := []memtrace.Addr{0, 8 * 2048, 16 * 2048, 24 * 2048}
	if finish(diff) >= finish(same) {
		t.Fatalf("bank-parallel batch (%d) not faster than same-bank batch (%d)",
			finish(diff), finish(same))
	}
}

func TestControllerLargerTransfersOccupyBusLonger(t *testing.T) {
	cfg := StackedDDR3_3200()
	var small, big sim.Cycle
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	c.Submit(&Request{Addr: 0, Bytes: 64, Done: func(at sim.Cycle) { small = at }})
	eng.Run(nil)
	eng2 := &sim.Engine{}
	c2 := NewController(eng2, cfg)
	c2.Submit(&Request{Addr: 0, Bytes: 2048, Done: func(at sim.Cycle) { big = at }})
	eng2.Run(nil)
	if big <= small {
		t.Fatalf("2KB transfer (%d) not slower than 64B (%d)", big, small)
	}
	if c.Stats.ReadBursts != 1 || c2.Stats.ReadBursts != 32 {
		t.Fatalf("bursts: %d, %d", c.Stats.ReadBursts, c2.Stats.ReadBursts)
	}
}

func TestControllerFRFCFSPrefersOpenRow(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	eng := &sim.Engine{}
	c := NewController(eng, cfg)

	sameBankOtherRow := memtrace.Addr(8 * 2048)
	var order []string
	// Saturate the bank with a first request, then queue a conflict
	// and a row hit; FR-FCFS should finish the row hit first.
	c.Submit(&Request{Addr: 0, Bytes: 64})
	c.Submit(&Request{Addr: sameBankOtherRow, Bytes: 64, Done: func(sim.Cycle) { order = append(order, "conflict") }})
	c.Submit(&Request{Addr: 128, Bytes: 64, Done: func(sim.Cycle) { order = append(order, "hit") }})
	eng.Run(nil)
	if len(order) != 2 || order[0] != "hit" {
		t.Fatalf("completion order = %v, want row hit first", order)
	}
}

func TestControllerWriteRecovery(t *testing.T) {
	cfg := OffChipDDR3_1600()
	cfg.Policy = OpenPage
	// Read after write to the same bank pays write recovery: compare
	// against read after read.
	runPair := func(firstWrite bool) sim.Cycle {
		eng := &sim.Engine{}
		c := NewController(eng, cfg)
		var last sim.Cycle
		c.Submit(&Request{Addr: 0, Bytes: 64, Write: firstWrite})
		c.Submit(&Request{Addr: 64, Bytes: 64, Done: func(at sim.Cycle) { last = at }})
		eng.Run(nil)
		return last
	}
	if runPair(true) <= runPair(false) {
		t.Fatal("write recovery did not delay the following read")
	}
}

func TestControllerDeterminism(t *testing.T) {
	run := func() []sim.Cycle {
		cfg := StackedDDR3_3200()
		eng := &sim.Engine{}
		c := NewController(eng, cfg)
		var finishes []sim.Cycle
		for i := 0; i < 100; i++ {
			c.Submit(&Request{
				Addr: memtrace.Addr((i * 7919) % 65536 * 64), Bytes: 64, Write: i%3 == 0,
				Done: func(at sim.Cycle) { finishes = append(finishes, at) },
			})
		}
		eng.Run(nil)
		return finishes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestControllerAvgLatencyPositive(t *testing.T) {
	cfg := OffChipDDR3_1600()
	eng := &sim.Engine{}
	c := NewController(eng, cfg)
	for i := 0; i < 10; i++ {
		c.Submit(&Request{Addr: memtrace.Addr(i * 4096), Bytes: 64})
	}
	eng.Run(nil)
	if c.AvgLatency() <= 0 {
		t.Fatalf("avg latency = %g", c.AvgLatency())
	}
	if c.QueueDepth() != 0 {
		t.Fatalf("queue not drained: %d", c.QueueDepth())
	}
}

func TestConfigValidateWriteDrain(t *testing.T) {
	bad := OffChipDDR3_1600()
	bad.WriteDrainHigh = 8
	bad.WriteDrainLow = 16
	if bad.Validate() == nil {
		t.Fatal("low >= high accepted")
	}
	bad = OffChipDDR3_1600()
	bad.WriteQueueDepth = 4
	bad.WriteDrainHigh = 8
	if bad.Validate() == nil {
		t.Fatal("high > depth accepted")
	}
	// An explicit low contradicting the *defaulted* high (24) must be
	// rejected too, not silently clamped.
	bad = OffChipDDR3_1600()
	bad.WriteDrainLow = 30
	if bad.Validate() == nil {
		t.Fatal("low above defaulted high accepted")
	}
	good := OffChipDDR3_1600()
	good.WriteQueueDepth = 16
	good.WriteDrainHigh = 12
	good.WriteDrainLow = 4
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidateRefreshInterval(t *testing.T) {
	// tREFI <= tRFC + tRP would livelock the scheduler (refresh
	// re-triggers before the banks unblock); Validate must reject it.
	bad := OffChipDDR3_1600()
	bad.Timing.TREFI = 100
	bad.Timing.TRFC = 208
	if bad.Validate() == nil {
		t.Fatal("tREFI <= tRFC accepted")
	}
	bad = OffChipDDR3_1600()
	bad.Timing.TREFI = 215 // tRFC 208 + tRP 11 > 215
	if bad.Validate() == nil {
		t.Fatal("tREFI <= tRFC + tRP accepted")
	}
	// Disabled refresh is exempt.
	off := OffChipDDR3_1600()
	off.Timing.TREFI = 0
	off.Timing.TRFC = 208
	if err := off.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteThresholdsTinyDepth(t *testing.T) {
	// WriteQueueDepth 1 must not resolve to a zero high threshold
	// (which would latch the channel into drain mode and invert read
	// priority).
	cfg := OffChipDDR3_1600()
	cfg.WriteQueueDepth = 1
	high, low := cfg.writeThresholds()
	if high < 1 {
		t.Fatalf("high = %d, want >= 1", high)
	}
	if low >= high {
		t.Fatalf("low %d not below high %d", low, high)
	}
}
