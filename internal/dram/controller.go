package dram

import (
	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
	"fpcache/internal/stats"
)

// Request is one DRAM transaction submitted to a Controller. Bytes is
// the payload size (multiple of 64); transfers larger than 64B are
// streamed from consecutive addresses on (usually) one row. Done is
// called when the last data beat completes.
type Request struct {
	Addr  memtrace.Addr
	Bytes int
	Write bool
	Done  func(at sim.Cycle)

	arrived sim.Cycle
	seq     uint64
	loc     Location
}

// CmdKind identifies a DRAM command reported through the Trace hook.
type CmdKind uint8

const (
	CmdActivate CmdKind = iota
	CmdPrecharge
	CmdRead
	CmdWrite
	CmdRefresh
)

// String implements fmt.Stringer.
func (k CmdKind) String() string {
	switch k {
	case CmdActivate:
		return "ACT"
	case CmdPrecharge:
		return "PRE"
	case CmdRead:
		return "RD"
	case CmdWrite:
		return "WR"
	case CmdRefresh:
		return "REF"
	default:
		return "?"
	}
}

// Cmd is one command-bus event: which command the controller issued,
// where, and at what cycle. Commands are reported in scheduling order,
// which is time-ordered per bank but may interleave across banks.
type Cmd struct {
	Kind    CmdKind
	Channel int
	Bank    int // -1 for all-bank refresh
	Row     int64
	At      sim.Cycle
}

// Controller is the command-level timing model of one DRAM subsystem.
// Each channel keeps per-bank request queues scheduled FR-FCFS: ready
// row hits bypass older row misses within a bank, and across banks
// the candidate with the earliest column command (data slot) wins —
// row hits breaking ties — so a stalled request on one bank never
// blocks another bank (no head-of-line blocking) and a row conflict
// never reserves the data bus ahead of a ready row hit.
// Writes are posted into a per-channel write queue drained in bursts
// between thresholds to amortize read/write bus turnaround, and each
// channel performs periodic all-bank refresh (tREFI/tRFC).
type Controller struct {
	eng  *sim.Engine
	cfg  Config
	t    cpuTiming
	chns []*channelState
	seq  uint64

	drainHigh, drainLow int

	Stats Stats
	// LatencySum / LatencyCount accumulate request latencies (arrival
	// to completion) for average-latency reporting.
	LatencySum   uint64
	LatencyCount uint64
	// ReadLatency is the distribution of read-request latencies
	// (arrival to last data beat), in CPU cycles.
	ReadLatency *stats.Histogram
	// Trace, when non-nil, receives every committed DRAM command with
	// its scheduled issue cycle — the observability hook the timing
	// invariant tests (and debugging) hang off. Must be set before the
	// first Submit.
	Trace func(Cmd)
}

// cpuTiming is the Timing table pre-converted to CPU cycles, so the
// scheduling hot path never repeats the float conversion.
type cpuTiming struct {
	cas, rcd, rp, ras, rc, wr, wtr, rtw, rtp, rrd, faw sim.Cycle
	refi, rfc                                          sim.Cycle
}

type channelState struct {
	banks    []bankState
	nReads   int
	nWrites  int
	draining bool

	busUsed   bool
	busWrite  bool
	busFreeAt sim.Cycle

	// Activate window: the issue times of the last four ACTs (for
	// tFAW), the most recent ACT (for tRRD), and the total count —
	// tFAW only constrains once four activates exist, so the ring's
	// zero-initialized slots are never consulted.
	actTimes  [4]sim.Cycle
	actIdx    int
	actCount  uint64
	lastActAt sim.Cycle

	refDueAt sim.Cycle

	wakeArmed bool
	wake      sim.Ticket
}

type bankState struct {
	openRow int64
	rq, wq  []*Request // per-bank read and write queues

	actReadyAt sim.Cycle // earliest next ACT (tRC, tRP after PRE, refresh)
	casReadyAt sim.Cycle // earliest CAS to the open row (ACT + tRCD)
	preReadyAt sim.Cycle // earliest PRE (ACT+tRAS, read+tRTP, write end+tWR)

	// prepClass marks a row opened ahead of its column command
	// (prepAhead) with the access class the opening observed: the
	// first column command to the row counts that class instead of a
	// row hit. prepNone when no prep is outstanding.
	prepClass uint8
}

// Access classes a prep-ahead observed; counted when the column
// command commits, so a prep wasted by an intervening row change or
// refresh costs only its (real) activate, never a double class count.
const (
	prepNone uint8 = iota
	prepMiss
	prepConflict
)

// NewController builds a timing model attached to the given engine.
func NewController(eng *sim.Engine, cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	tm := cfg.Timing
	c := &Controller{
		eng: eng,
		cfg: cfg,
		t: cpuTiming{
			cas: sim.Cycle(cfg.cpuCycles(tm.TCAS)),
			rcd: sim.Cycle(cfg.cpuCycles(tm.TRCD)),
			rp:  sim.Cycle(cfg.cpuCycles(tm.TRP)),
			ras: sim.Cycle(cfg.cpuCycles(tm.TRAS)),
			rc:  sim.Cycle(cfg.cpuCycles(tm.TRC)),
			wr:  sim.Cycle(cfg.cpuCycles(tm.TWR)),
			wtr: sim.Cycle(cfg.cpuCycles(tm.TWTR)),
			rtw: sim.Cycle(cfg.cpuCycles(tm.TRTW)),
			rtp: sim.Cycle(cfg.cpuCycles(tm.TRTP)),
			rrd: sim.Cycle(cfg.cpuCycles(tm.TRRD)),
			faw: sim.Cycle(cfg.cpuCycles(tm.TFAW)),
		},
		ReadLatency: stats.NewHistogram(stats.LatencyBounds()...),
	}
	if tm.TREFI > 0 && tm.TRFC > 0 {
		c.t.refi = sim.Cycle(cfg.cpuCycles(tm.TREFI))
		c.t.rfc = sim.Cycle(cfg.cpuCycles(tm.TRFC))
	}
	c.drainHigh, c.drainLow = cfg.writeThresholds()
	for i := 0; i < cfg.Channels; i++ {
		ch := &channelState{banks: make([]bankState, cfg.BanksPerChan)}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		ch.refDueAt = c.t.refi
		c.chns = append(c.chns, ch)
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// QueueDepth returns the number of requests waiting on all channels.
func (c *Controller) QueueDepth() int {
	n := 0
	for _, ch := range c.chns {
		n += ch.nReads + ch.nWrites
	}
	return n
}

// Submit enqueues a request. Done fires on completion.
func (c *Controller) Submit(req *Request) {
	req.arrived = c.eng.Now()
	req.seq = c.seq
	c.seq++
	req.loc = c.cfg.Decode(req.Addr)
	ch := c.chns[req.loc.Channel]
	b := &ch.banks[req.loc.Bank]
	if req.Write {
		b.wq = append(b.wq, req)
		ch.nWrites++
	} else {
		b.rq = append(b.rq, req)
		ch.nReads++
	}
	c.pump(req.loc.Channel)
}

// pump re-evaluates a channel's schedule after state changed (a new
// arrival may issue earlier than the armed wakeup).
func (c *Controller) pump(chIdx int) {
	ch := c.chns[chIdx]
	if ch.wakeArmed {
		c.eng.Cancel(ch.wake)
		ch.wakeArmed = false
	}
	c.schedule(chIdx)
}

// sched is one candidate command sequence for a request: the cycles
// its precharge / activate / column command would issue, the first of
// which is the commit time.
type sched struct {
	req     *Request
	bank    int
	write   bool
	rowHit  bool
	needPre bool
	needAct bool
	pre     sim.Cycle
	act     sim.Cycle
	cas     sim.Cycle
	start   sim.Cycle
}

// schedule drives a channel: it commits every command sequence that
// can start now, interposes refresh when due, and otherwise arms a
// wakeup at the earliest future start across all banks — the fix for
// the old model's head-of-line blocking, which armed a single wakeup
// for one picked request even when another bank could issue sooner.
func (c *Controller) schedule(chIdx int) {
	ch := c.chns[chIdx]
	for {
		now := c.eng.Now()
		if c.t.refi > 0 && ch.refDueAt <= now {
			c.refresh(chIdx, ch)
			continue
		}
		best, serveWrites, ok := c.bestCandidate(ch, now)
		if !ok {
			return
		}
		if c.t.refi > 0 && best.start >= ch.refDueAt {
			// The next command would issue past the refresh deadline:
			// refresh first, then reschedule around the blocked banks.
			c.refresh(chIdx, ch)
			continue
		}
		if best.start > now {
			// The winner waits (usually for the bus); losing banks
			// whose row preparation can start now pipeline their
			// PRE/ACT underneath the wait. A prep changes the
			// candidate picture (the prepped bank is now a ready row
			// hit), so re-arbitrate before arming the wakeup; each
			// prep opens a row, so the loop makes bounded progress.
			if c.prepAhead(chIdx, ch, now, serveWrites, best.bank) {
				continue
			}
			ch.wakeArmed = true
			ch.wake = c.eng.Schedule(best.start, func() {
				ch.wakeArmed = false
				c.schedule(chIdx)
			})
			return
		}
		c.commit(chIdx, ch, best)
	}
}

// bestCandidate scans the channel's bank queues for the command
// sequence with the earliest column command. Reads are served by default;
// writes drain in bursts once the write queue crosses the high
// threshold (until it reaches the low one) or opportunistically when
// no reads are pending, amortizing bus turnaround.
func (c *Controller) bestCandidate(ch *channelState, now sim.Cycle) (sched, bool, bool) {
	if ch.nWrites >= c.drainHigh {
		ch.draining = true
	} else if ch.nWrites <= c.drainLow {
		ch.draining = false
	}
	serveWrites := ch.nWrites > 0 && (ch.draining || ch.nReads == 0)

	var best sched
	found := false
	for bi := range ch.banks {
		pick := bankPick(&ch.banks[bi], serveWrites)
		if pick == nil {
			continue
		}
		s := c.plan(ch, bi, pick, now)
		// Arbitrate on the column-command (data-slot) time, not the
		// first command: under bus contention every candidate's CAS
		// collapses to the next free bus slot, and the row-hit
		// tie-break then implements FR-FCFS — a row conflict whose
		// precharge could start earlier must not reserve the bus ahead
		// of a ready row hit.
		if !found || s.cas < best.cas ||
			(s.cas == best.cas && s.rowHit && !best.rowHit) ||
			(s.cas == best.cas && s.rowHit == best.rowHit && s.req.seq < best.req.seq) {
			best = s
			found = true
		}
	}
	return best, serveWrites, found
}

// bankPick returns a bank's FR-FCFS candidate from the served queue:
// the oldest row hit, else the oldest request; nil with an empty
// queue.
func bankPick(b *bankState, serveWrites bool) *Request {
	q := b.rq
	if serveWrites {
		q = b.wq
	}
	if len(q) == 0 {
		return nil
	}
	pick := q[0]
	if b.openRow >= 0 && pick.loc.Row != b.openRow {
		for _, r := range q[1:] {
			if r.loc.Row == b.openRow {
				return r
			}
		}
	}
	return pick
}

// prepAhead pipelines row preparation under the arbitration winner's
// wait: every losing bank whose candidate needs an activate that can
// issue now gets its PRE/ACT committed immediately, so the row is
// open (and the access class counted) by the time its column command
// wins the bus. Without this, one bank's bus wait would idle every
// other bank's row preparation. Reports whether anything was prepped.
func (c *Controller) prepAhead(chIdx int, ch *channelState, now sim.Cycle, serveWrites bool, skipBank int) bool {
	prepped := false
	for bi := range ch.banks {
		if bi == skipBank {
			continue
		}
		b := &ch.banks[bi]
		pick := bankPick(b, serveWrites)
		if pick == nil {
			continue
		}
		s := c.plan(ch, bi, pick, now)
		if !s.needAct || s.start > now {
			continue
		}
		if c.t.refi > 0 && s.act >= ch.refDueAt {
			continue // do not open a row the imminent refresh would close
		}
		cls := uint8(prepMiss)
		if s.needPre {
			cls = prepConflict
		}
		c.openRowFor(chIdx, bi, ch, b, s, pick.loc.Row)
		b.prepClass = cls
		prepped = true
	}
	return prepped
}

// openRowFor commits the PRE/ACT portion of a planned sequence: trace
// events, activate-window bookkeeping, and bank-state updates. The
// row-buffer access class is counted separately, when the column
// command commits.
func (c *Controller) openRowFor(chIdx, bankIdx int, ch *channelState, b *bankState, s sched, row int64) {
	if s.needPre {
		c.emit(Cmd{Kind: CmdPrecharge, Channel: chIdx, Bank: bankIdx, Row: b.openRow, At: s.pre})
	}
	c.Stats.Activates++
	c.noteActivate(ch, s.act)
	b.actReadyAt = s.act + c.t.rc
	b.casReadyAt = s.act + c.t.rcd
	b.preReadyAt = s.act + c.t.ras
	b.openRow = row
	c.emit(Cmd{Kind: CmdActivate, Channel: chIdx, Bank: bankIdx, Row: row, At: s.act})
}

// plan computes the earliest command sequence for a request on its
// bank, honoring bank-state timing, the channel activate window
// (tRRD, and tFAW only once four activates exist), row state, and the
// data bus: the column command is timed so its data lands in a free
// bus slot (plus the read<->write turnaround when the transfer
// direction flips), which also paces row-hit streams at bus rate so a
// due refresh can interpose.
func (c *Controller) plan(ch *channelState, bankIdx int, req *Request, now sim.Cycle) sched {
	b := &ch.banks[bankIdx]
	s := sched{req: req, bank: bankIdx, write: req.Write}
	// Earliest CAS whose data slot clears the bus. tWTR spaces the
	// read *command* from the end of write data (JEDEC semantics);
	// tRTW is the bus gap before write data follows read data.
	casMin := sim.Cycle(0)
	busAvail := ch.busFreeAt
	if ch.busUsed && ch.busWrite != req.Write {
		if req.Write {
			busAvail += c.t.rtw
		} else {
			casMin = ch.busFreeAt + c.t.wtr
		}
	}
	if busAvail > c.t.cas {
		casMin = max(casMin, busAvail-c.t.cas)
	}
	switch {
	case b.openRow == req.loc.Row:
		s.rowHit = true
		s.cas = max(max(now, b.casReadyAt), casMin)
		s.start = s.cas
	case b.openRow < 0:
		s.needAct = true
		s.act = max(max(now, b.actReadyAt), c.actWindowMin(ch))
		s.cas = max(s.act+c.t.rcd, casMin)
		s.start = s.act
	default:
		s.needPre = true
		s.needAct = true
		s.pre = max(now, b.preReadyAt)
		s.act = max(max(s.pre+c.t.rp, b.actReadyAt), c.actWindowMin(ch))
		s.cas = max(s.act+c.t.rcd, casMin)
		s.start = s.pre
	}
	return s
}

// actWindowMin returns the earliest cycle the channel may issue its
// next ACT under tRRD and tFAW. The four-activate window only
// constrains once at least four activates have been recorded — before
// that the ring holds no real history.
func (c *Controller) actWindowMin(ch *channelState) sim.Cycle {
	if ch.actCount == 0 {
		return 0
	}
	m := ch.lastActAt + c.t.rrd
	if ch.actCount >= 4 {
		if faw := ch.actTimes[ch.actIdx] + c.t.faw; faw > m {
			m = faw
		}
	}
	return m
}

// commit dequeues the request and executes its command sequence:
// stats, bank and bus state updates, trace events, and completion.
func (c *Controller) commit(chIdx int, ch *channelState, s sched) {
	req := s.req
	b := &ch.banks[s.bank]
	if s.write {
		b.wq = removeReq(b.wq, req)
		ch.nWrites--
	} else {
		b.rq = removeReq(b.rq, req)
		ch.nReads--
	}

	switch {
	case s.rowHit:
		// First column command to a prepped row counts the class its
		// row opening observed; later ones are genuine row hits.
		switch b.prepClass {
		case prepMiss:
			c.Stats.RowMisses++
		case prepConflict:
			c.Stats.RowConflict++
		default:
			c.Stats.RowHits++
		}
		b.prepClass = prepNone
	case s.needPre:
		c.Stats.RowConflict++
	default:
		c.Stats.RowMisses++
	}
	if s.needAct {
		// Any prepped row is gone; only its (real) activate stands.
		b.prepClass = prepNone
		c.openRowFor(chIdx, s.bank, ch, b, s, req.loc.Row)
	}

	// Data transfer: CAS latency, then the bus streams the payload.
	// plan already timed the CAS so the data slot clears the bus and
	// any direction-switch turnaround.
	bursts := (req.Bytes + 63) / 64
	if bursts == 0 {
		bursts = 1
	}
	dataStart := s.cas + c.t.cas
	dataEnd := dataStart + sim.Cycle(uint64(bursts)*c.cfg.BurstCPUCycles(64))
	ch.busFreeAt = dataEnd
	ch.busWrite = req.Write
	ch.busUsed = true

	if req.Write {
		c.Stats.WriteBursts += uint64(bursts)
		b.preReadyAt = max(b.preReadyAt, dataEnd+c.t.wr)
		c.emit(Cmd{Kind: CmdWrite, Channel: chIdx, Bank: s.bank, Row: req.loc.Row, At: s.cas})
	} else {
		c.Stats.ReadBursts += uint64(bursts)
		// A streamed transfer is a sequence of column reads of the open
		// row; tRTP binds from the *last* of them (whose data fills the
		// final burst slot before dataEnd), so the row stays open until
		// the payload has streamed — a precharge or refresh must not
		// close it mid-transfer.
		lastCas := dataEnd - sim.Cycle(c.cfg.BurstCPUCycles(64)) - c.t.cas
		b.preReadyAt = max(b.preReadyAt, lastCas+c.t.rtp)
		c.emit(Cmd{Kind: CmdRead, Channel: chIdx, Bank: s.bank, Row: req.loc.Row, At: s.cas})
		c.ReadLatency.Add(int64(dataEnd - req.arrived))
	}
	if c.cfg.Policy == ClosePage {
		// Auto-precharge: the row closes once both the bank's precharge
		// constraints and the streamed payload allow it; the next access
		// pays tRP (folded into activate readiness) plus tRCD.
		closeAt := max(b.preReadyAt, dataEnd)
		b.actReadyAt = max(b.actReadyAt, closeAt+c.t.rp)
		b.openRow = -1
		c.emit(Cmd{Kind: CmdPrecharge, Channel: chIdx, Bank: s.bank, Row: req.loc.Row, At: closeAt})
	}

	c.LatencySum += uint64(dataEnd - req.arrived)
	c.LatencyCount++
	if done := req.Done; done != nil {
		c.eng.Schedule(dataEnd, func() { done(dataEnd) })
	}
}

// refresh performs one all-bank refresh on the channel: open rows are
// precharged, every bank is blocked for tRFC, and the next deadline
// advances by tREFI.
func (c *Controller) refresh(chIdx int, ch *channelState) {
	start := ch.refDueAt
	anyOpen := false
	for i := range ch.banks {
		b := &ch.banks[i]
		if b.openRow >= 0 {
			anyOpen = true
			if b.preReadyAt > start {
				start = b.preReadyAt
			}
		} else if b.actReadyAt > start {
			// A bank mid-activate (or mid-refresh) delays the refresh
			// until its row cycle completes.
			start = b.actReadyAt
		}
	}
	if anyOpen {
		for i := range ch.banks {
			if b := &ch.banks[i]; b.openRow >= 0 {
				c.emit(Cmd{Kind: CmdPrecharge, Channel: chIdx, Bank: i, Row: b.openRow, At: start})
			}
		}
		start += c.t.rp
	}
	refEnd := start + c.t.rfc
	for i := range ch.banks {
		b := &ch.banks[i]
		b.openRow = -1
		b.prepClass = prepNone // refresh closes prepped rows; their activates stand
		if b.actReadyAt < refEnd {
			b.actReadyAt = refEnd
		}
		if b.preReadyAt < refEnd {
			b.preReadyAt = refEnd
		}
	}
	ch.refDueAt += c.t.refi
	c.Stats.Refreshes++
	c.emit(Cmd{Kind: CmdRefresh, Channel: chIdx, Bank: -1, Row: -1, At: start})
}

// noteActivate records an ACT in the channel's activate window.
func (c *Controller) noteActivate(ch *channelState, at sim.Cycle) {
	ch.actTimes[ch.actIdx] = at
	ch.actIdx = (ch.actIdx + 1) % len(ch.actTimes)
	ch.lastActAt = at
	ch.actCount++
}

// emit reports a command through the Trace hook, if installed.
func (c *Controller) emit(cmd Cmd) {
	if c.Trace != nil {
		c.Trace(cmd)
	}
}

// removeReq removes one request (by identity) from a queue, keeping
// order. The request is always present; queues are MLP-bounded and
// short, so the linear scan is cheaper than bookkeeping indices.
func removeReq(q []*Request, req *Request) []*Request {
	for i, r := range q {
		if r == req {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			return q[:len(q)-1]
		}
	}
	panic("dram: request not in queue")
}

// AvgLatency returns the mean request latency in CPU cycles.
func (c *Controller) AvgLatency() float64 {
	if c.LatencyCount == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.LatencyCount)
}
