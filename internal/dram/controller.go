package dram

import (
	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
)

// Request is one DRAM transaction submitted to a Controller. Bytes is
// the payload size (multiple of 64); transfers larger than 64B are
// streamed from consecutive addresses on (usually) one row. Done is
// called when the last data beat completes.
type Request struct {
	Addr  memtrace.Addr
	Bytes int
	Write bool
	Done  func(at sim.Cycle)

	arrived sim.Cycle
}

// Controller is the event-driven timing model of one DRAM subsystem.
// Each channel has an in-order arrival queue scheduled FR-FCFS: ready
// row hits bypass older row misses, which is the scheduling the paper
// assumes for both DRAM instances.
type Controller struct {
	eng  *sim.Engine
	cfg  Config
	chns []*channelState

	Stats Stats
	// LatencySum / LatencyCount accumulate request latencies (arrival
	// to completion) for average-latency reporting.
	LatencySum   uint64
	LatencyCount uint64
}

type channelState struct {
	banks      []bankState
	busFreeAt  sim.Cycle
	queue      []*Request
	pumpArmed  bool
	actTimes   [4]sim.Cycle // ring of last 4 activate times (tFAW)
	actIdx     int
	lastActAt  sim.Cycle // for tRRD
	everActive bool
}

type bankState struct {
	openRow  int64
	readyAt  sim.Cycle // earliest next command issue
	rasUntil sim.Cycle // activate + tRAS: earliest precharge
}

// NewController builds a timing model attached to the given engine.
func NewController(eng *sim.Engine, cfg Config) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{eng: eng, cfg: cfg}
	for i := 0; i < cfg.Channels; i++ {
		ch := &channelState{banks: make([]bankState, cfg.BanksPerChan)}
		for b := range ch.banks {
			ch.banks[b].openRow = -1
		}
		c.chns = append(c.chns, ch)
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// QueueDepth returns the number of requests waiting or in flight on
// all channels.
func (c *Controller) QueueDepth() int {
	n := 0
	for _, ch := range c.chns {
		n += len(ch.queue)
	}
	return n
}

// Submit enqueues a request. Done fires on completion.
func (c *Controller) Submit(req *Request) {
	req.arrived = c.eng.Now()
	loc := c.cfg.Decode(req.Addr)
	ch := c.chns[loc.Channel]
	ch.queue = append(ch.queue, req)
	c.pump(loc.Channel)
}

// pump tries to issue the next request on a channel; if nothing can
// issue yet it arms a wakeup at the earliest time something could.
func (c *Controller) pump(chIdx int) {
	ch := c.chns[chIdx]
	if ch.pumpArmed {
		return
	}
	c.issueReady(chIdx)
}

func (c *Controller) issueReady(chIdx int) {
	ch := c.chns[chIdx]
	for len(ch.queue) > 0 {
		now := c.eng.Now()
		pick := c.pickFRFCFS(ch)
		req := ch.queue[pick]
		start, ok := c.earliestStart(ch, req)
		if !ok || start > now {
			// Nothing issuable this cycle: wake up at the earliest
			// possible issue time of the picked request.
			if !ok {
				start = now + 1
			}
			ch.pumpArmed = true
			c.eng.Schedule(start, func() {
				ch.pumpArmed = false
				c.issueReady(chIdx)
			})
			return
		}
		ch.queue = append(ch.queue[:pick], ch.queue[pick+1:]...)
		c.execute(chIdx, req)
	}
}

// pickFRFCFS returns the index of the request to issue next: the
// oldest request whose row is already open, else the oldest request.
func (c *Controller) pickFRFCFS(ch *channelState) int {
	for i, r := range ch.queue {
		loc := c.cfg.Decode(r.Addr)
		if ch.banks[loc.Bank].openRow == loc.Row {
			return i
		}
	}
	return 0
}

// earliestStart computes the earliest cycle the request's first
// command could issue, honoring bank readiness and activate windows.
func (c *Controller) earliestStart(ch *channelState, req *Request) (sim.Cycle, bool) {
	loc := c.cfg.Decode(req.Addr)
	b := &ch.banks[loc.Bank]
	start := c.eng.Now()
	if b.readyAt > start {
		start = b.readyAt
	}
	needsActivate := b.openRow != loc.Row
	if needsActivate {
		// tRRD from last activate on this channel.
		if ch.everActive {
			rrd := ch.lastActAt + sim.Cycle(c.cfg.cpuCycles(c.cfg.Timing.TRRD))
			if rrd > start {
				start = rrd
			}
			// tFAW: four-activate window.
			faw := ch.actTimes[ch.actIdx] + sim.Cycle(c.cfg.cpuCycles(c.cfg.Timing.TFAW))
			if faw > start {
				start = faw
			}
		}
		if b.openRow >= 0 && b.rasUntil > start {
			start = b.rasUntil // must satisfy tRAS before precharging
		}
	}
	return start, true
}

// execute issues the request at its earliest start, updating bank and
// bus state and scheduling completion.
func (c *Controller) execute(chIdx int, req *Request) {
	ch := c.chns[chIdx]
	loc := c.cfg.Decode(req.Addr)
	b := &ch.banks[loc.Bank]
	start, _ := c.earliestStart(ch, req)

	tm := c.cfg.Timing
	var colReady sim.Cycle // when the first CAS can issue
	switch {
	case b.openRow == loc.Row:
		c.Stats.RowHits++
		colReady = start
	case b.openRow < 0:
		c.Stats.RowMisses++
		c.Stats.Activates++
		c.noteActivate(ch, start)
		b.rasUntil = start + sim.Cycle(c.cfg.cpuCycles(tm.TRAS))
		colReady = start + sim.Cycle(c.cfg.cpuCycles(tm.TRCD))
	default:
		c.Stats.RowConflict++
		c.Stats.Activates++
		actAt := start + sim.Cycle(c.cfg.cpuCycles(tm.TRP))
		c.noteActivate(ch, actAt)
		b.rasUntil = actAt + sim.Cycle(c.cfg.cpuCycles(tm.TRAS))
		colReady = actAt + sim.Cycle(c.cfg.cpuCycles(tm.TRCD))
	}
	b.openRow = loc.Row

	// Data transfer: CAS latency, then the bus streams the payload.
	bursts := (req.Bytes + 63) / 64
	if bursts == 0 {
		bursts = 1
	}
	dataStart := colReady + sim.Cycle(c.cfg.cpuCycles(tm.TCAS))
	if ch.busFreeAt > dataStart {
		dataStart = ch.busFreeAt
	}
	dataEnd := dataStart + sim.Cycle(uint64(bursts)*c.cfg.BurstCPUCycles(64))
	ch.busFreeAt = dataEnd

	if req.Write {
		c.Stats.WriteBursts += uint64(bursts)
		b.readyAt = dataEnd + sim.Cycle(c.cfg.cpuCycles(tm.TWR))
	} else {
		c.Stats.ReadBursts += uint64(bursts)
		b.readyAt = dataEnd
	}
	if c.cfg.Policy == ClosePage {
		// Auto-precharge after the access; the next access pays tRCD
		// only. Precharge time folds into bank readiness.
		closeAt := b.readyAt
		if b.rasUntil > closeAt {
			closeAt = b.rasUntil
		}
		b.readyAt = closeAt + sim.Cycle(c.cfg.cpuCycles(tm.TRP))
		b.openRow = -1
	}

	done := req.Done
	latency := uint64(dataEnd - req.arrived)
	c.LatencySum += latency
	c.LatencyCount++
	if done != nil {
		c.eng.Schedule(dataEnd, func() { done(dataEnd) })
	}
}

func (c *Controller) noteActivate(ch *channelState, at sim.Cycle) {
	ch.actTimes[ch.actIdx] = at
	ch.actIdx = (ch.actIdx + 1) % len(ch.actTimes)
	ch.lastActAt = at
	ch.everActive = true
}

// AvgLatency returns the mean request latency in CPU cycles.
func (c *Controller) AvgLatency() float64 {
	if c.LatencyCount == 0 {
		return 0
	}
	return float64(c.LatencySum) / float64(c.LatencyCount)
}
