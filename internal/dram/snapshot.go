package dram

import (
	"fmt"

	"fpcache/internal/fault"
	"fpcache/internal/snap"
)

// The serialized layout below is pinned by the fplint snapmeta
// analyzer; versioning lives in the enclosing envelope (the system
// layer's warm-state version), so a fingerprint change means bumping
// that const along with refreshing this directive.
//
//fplint:snapfields 0xda3920bd

// Save serializes the functional model's warm state: open-row
// registers and accumulated stats. The configuration itself is not
// stored — a tracker is always rebuilt from the design's DRAM config
// before restoring — but its shape is, so a snapshot taken under a
// different channel/bank geometry fails loudly instead of silently
// misattributing row state.
func (t *Tracker) Save(w *snap.Writer) {
	w.Tag("dram-tracker")
	w.U64(uint64(len(t.openRows)))
	w.U64(uint64(t.cfg.BanksPerChan))
	for _, rows := range t.openRows {
		for _, row := range rows {
			w.I64(row)
		}
	}
	saveStats(w, &t.Stats)
}

// Load restores a snapshot written by Save.
func (t *Tracker) Load(r *snap.Reader) error {
	r.Expect("dram-tracker")
	ch, banks := int(r.U64()), int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if ch != len(t.openRows) || banks != t.cfg.BanksPerChan {
		return fmt.Errorf("dram: snapshot geometry %dch x %dbank, have %dch x %dbank: %w",
			ch, banks, len(t.openRows), t.cfg.BanksPerChan, fault.ErrCorruptSnapshot)
	}
	for _, rows := range t.openRows {
		for b := range rows {
			rows[b] = r.I64()
		}
	}
	return loadStats(r, &t.Stats)
}

// saveStats / loadStats serialize the Stats counters in declaration
// order.
func saveStats(w *snap.Writer, s *Stats) {
	w.U64(s.Activates)
	w.U64(s.ReadBursts)
	w.U64(s.WriteBursts)
	w.U64(s.RowHits)
	w.U64(s.RowMisses)
	w.U64(s.RowConflict)
	w.U64(s.Refreshes)
}

func loadStats(r *snap.Reader, s *Stats) error {
	s.Activates = r.U64()
	s.ReadBursts = r.U64()
	s.WriteBursts = r.U64()
	s.RowHits = r.U64()
	s.RowMisses = r.U64()
	s.RowConflict = r.U64()
	s.Refreshes = r.U64()
	return r.Err()
}
