package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsInTimeOrder(t *testing.T) {
	var e Engine
	var got []Cycle
	for _, at := range []Cycle{30, 10, 20, 10, 5} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run(nil)
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestEngineTieBreaksByInsertionOrder(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken at %d: %v", i, got)
		}
	}
}

func TestEngineNowAdvances(t *testing.T) {
	var e Engine
	var at Cycle
	e.Schedule(42, func() { at = e.Now() })
	e.Run(nil)
	if at != 42 {
		t.Fatalf("Now() inside event = %d, want 42", at)
	}
	if e.Now() != 42 {
		t.Fatalf("final Now() = %d, want 42", e.Now())
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	var e Engine
	var order []string
	e.Schedule(100, func() {
		e.Schedule(50, func() { order = append(order, "past") })
		order = append(order, "now")
	})
	e.Run(nil)
	if len(order) != 2 || order[0] != "now" || order[1] != "past" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 100 {
		t.Fatalf("past-scheduled event advanced clock to %d", e.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var e Engine
	var at Cycle
	e.Schedule(10, func() {
		e.After(5, func() { at = e.Now() })
	})
	e.Run(nil)
	if at != 15 {
		t.Fatalf("After fired at %d, want 15", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	var e Engine
	fired := false
	tk := e.Schedule(10, func() { fired = true })
	if !e.Cancel(tk) {
		t.Fatal("Cancel reported dead for a live event")
	}
	if e.Cancel(tk) {
		t.Fatal("second Cancel reported live")
	}
	e.Run(nil)
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	var e Engine
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	e.Schedule(1, func() {})
	if !e.Step() {
		t.Fatal("Step with queued event returned false")
	}
	if e.Step() {
		t.Fatal("Step after draining returned true")
	}
}

func TestRunStopPredicate(t *testing.T) {
	var e Engine
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(i), func() { count++ })
	}
	e.Run(func() bool { return count >= 3 })
	if count != 3 {
		t.Fatalf("ran %d events, want 3", count)
	}
}

func TestRunUntilExecutesDeadlineInclusive(t *testing.T) {
	var e Engine
	var got []Cycle
	for _, at := range []Cycle{5, 10, 15} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunUntil(10)
	if len(got) != 2 {
		t.Fatalf("RunUntil(10) ran %v", got)
	}
	if e.Now() != 10 {
		t.Fatalf("RunUntil left clock at %d", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var e Engine
	e.RunUntil(99)
	if e.Now() != 99 {
		t.Fatalf("idle RunUntil left clock at %d", e.Now())
	}
}

func TestExecutedCounts(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.Schedule(Cycle(i), func() {})
	}
	tk := e.Schedule(100, func() {})
	e.Cancel(tk)
	e.Run(nil)
	if e.Executed != 7 {
		t.Fatalf("Executed = %d, want 7 (cancelled events don't count)", e.Executed)
	}
}

func TestCascadingEvents(t *testing.T) {
	var e Engine
	depth := 0
	var spawn func()
	spawn = func() {
		if depth < 100 {
			depth++
			e.After(1, spawn)
		}
	}
	e.Schedule(0, spawn)
	e.Run(nil)
	if depth != 100 {
		t.Fatalf("cascade depth = %d, want 100", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
}

func TestRecycledEventInvalidatesStaleTicket(t *testing.T) {
	var e Engine
	tk := e.Schedule(1, func() {})
	e.Run(nil)
	// The fired event went back to the free list; its ticket is stale.
	if e.Cancel(tk) {
		t.Fatal("stale ticket cancelled a recycled event")
	}
	// The next schedule reuses the pooled object: cancelling through
	// the stale ticket must not kill the new event.
	fired := false
	e.Schedule(2, func() { fired = true })
	if e.Cancel(tk) {
		t.Fatal("stale ticket reported live after reuse")
	}
	e.Run(nil)
	if !fired {
		t.Fatal("stale ticket cancelled the reused event")
	}
}

func TestCancelledEventsAreRecycled(t *testing.T) {
	var e Engine
	for i := 0; i < 10; i++ {
		e.Cancel(e.Schedule(Cycle(i), func() {}))
	}
	e.Run(nil)
	if e.Executed != 0 {
		t.Fatalf("cancelled events executed: %d", e.Executed)
	}
	if len(e.free) != 10 {
		t.Fatalf("free list holds %d events, want 10", len(e.free))
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	var e Engine
	// Warm the free list and the heap's backing array.
	for i := 0; i < 64; i++ {
		e.Schedule(Cycle(i), func() {})
	}
	e.Run(nil)
	fn := func() {}
	avg := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	})
	if avg != 0 {
		t.Fatalf("schedule+step allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// Property: for any schedule of random events, execution times are
// non-decreasing and every non-cancelled event runs exactly once.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		var e Engine
		var times []Cycle
		for i := 0; i < n; i++ {
			at := Cycle(rng.Intn(1000))
			e.Schedule(at, func() { times = append(times, e.Now()) })
		}
		e.Run(nil)
		if len(times) != n {
			return false
		}
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
