// Package sim provides the discrete-event simulation kernel used by
// the timing model: a monotonic cycle clock and a binary-heap event
// queue with deterministic tie-breaking.
//
// Components schedule callbacks at absolute cycle times; the engine
// runs them in (time, insertion-order) order, so simulations are fully
// deterministic for a given seed and configuration.
//
// Fired and cancelled events are recycled through a free list, so a
// steady-state simulation churns no *event allocations: the live
// allocation count is bounded by the maximum number of simultaneously
// pending events. Tickets carry a generation counter so cancelling an
// already-recycled event is a safe no-op.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// Event is a scheduled callback.
type event struct {
	at   Cycle
	seq  uint64
	fn   func()
	idx  int
	dead bool
	// gen increments every time the event object is recycled,
	// invalidating Tickets issued for earlier incarnations.
	gen uint32
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Engine is the event-driven simulation core. The zero value is ready
// to use at cycle 0.
type Engine struct {
	now   Cycle
	seq   uint64
	queue eventHeap
	free  []*event
	// Executed counts events run, for progress reporting and
	// runaway-simulation guards.
	Executed uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Cycle { return e.now }

// Ticket identifies a scheduled event so it can be cancelled. The
// generation guards against the event object having been recycled for
// a later schedule.
type Ticket struct {
	ev  *event
	gen uint32
}

// newEvent takes an event from the free list (or allocates one) and
// initializes it for scheduling.
func (e *Engine) newEvent(at Cycle, fn func()) *event {
	var ev *event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.fn, ev.dead = at, fn, false
	} else {
		ev = &event{at: at, fn: fn}
	}
	ev.seq = e.seq
	e.seq++
	return ev
}

// recycle returns a popped event to the free list, invalidating any
// outstanding Tickets for it.
func (e *Engine) recycle(ev *event) {
	ev.fn = nil
	ev.dead = true
	ev.gen++
	e.free = append(e.free, ev)
}

// Schedule runs fn at absolute cycle at. Scheduling in the past (at <
// Now) runs the event at the current time, preserving order. It
// returns a Ticket that can cancel the event before it fires.
func (e *Engine) Schedule(at Cycle, fn func()) Ticket {
	if at < e.now {
		at = e.now
	}
	ev := e.newEvent(at, fn)
	heap.Push(&e.queue, ev)
	return Ticket{ev: ev, gen: ev.gen}
}

// After runs fn delta cycles from now.
func (e *Engine) After(delta Cycle, fn func()) Ticket {
	return e.Schedule(e.now+delta, fn)
}

// Cancel prevents a scheduled event from firing. Cancelling an
// already-fired or already-cancelled event is a no-op. It reports
// whether the event was live.
func (e *Engine) Cancel(t Ticket) bool {
	if t.ev == nil || t.ev.gen != t.gen || t.ev.dead {
		return false
	}
	t.ev.dead = true
	return true
}

// Pending returns the number of events still queued (including
// cancelled events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Step executes the next event. It reports false if the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.Executed++
		fn := ev.fn
		e.recycle(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or until the optional
// stop predicate returns true (checked before each event). It returns
// the final simulated time.
func (e *Engine) Run(stop func() bool) Cycle {
	for {
		if stop != nil && stop() {
			return e.now
		}
		if !e.Step() {
			return e.now
		}
	}
}

// RunUntil executes events with timestamps <= deadline.
func (e *Engine) RunUntil(deadline Cycle) Cycle {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.dead {
			e.recycle(heap.Pop(&e.queue).(*event))
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}
