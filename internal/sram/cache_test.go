package sram

import (
	"testing"

	"fpcache/internal/memtrace"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheHitAfterMiss(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 4096, BlockSize: 64, Ways: 2})
	if c.Access(0x1000, false) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1020, false) {
		t.Fatal("same-block offset access missed")
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if r := c.HitRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("hit ratio = %g", r)
	}
}

func TestCacheDirtyWriteback(t *testing.T) {
	// 2 sets x 1 way of 64B blocks: conflicting addresses evict.
	c := mustCache(t, CacheConfig{SizeBytes: 128, BlockSize: 64, Ways: 1})
	var wbs []memtrace.Addr
	c.WritebackFn = func(a memtrace.Addr) { wbs = append(wbs, a) }

	c.Access(0x0000, true)  // dirty fill, set 0
	c.Access(0x0080, false) // clean fill, set 0 conflict -> evict dirty 0x0
	if len(wbs) != 1 || wbs[0] != 0x0000 {
		t.Fatalf("writebacks = %v, want [0x0]", wbs)
	}
	c.Access(0x0100, false) // set 0 conflict -> evicts clean 0x80, no writeback
	if len(wbs) != 1 {
		t.Fatalf("clean eviction wrote back: %v", wbs)
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, BlockSize: 64, Ways: 1},
		{SizeBytes: 4096, BlockSize: 60, Ways: 1},     // not power of two
		{SizeBytes: 4096, BlockSize: 64, Ways: 3},     // blocks not divisible
		{SizeBytes: 4096 * 3, BlockSize: 64, Ways: 4}, // sets not power of two wait 192/4=48 not pow2
	}
	for _, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Fatalf("config %+v accepted", cfg)
		}
	}
}

func TestCacheWriteMarksDirtyOnHit(t *testing.T) {
	c := mustCache(t, CacheConfig{SizeBytes: 128, BlockSize: 64, Ways: 1})
	var wbs int
	c.WritebackFn = func(memtrace.Addr) { wbs++ }
	c.Access(0x0000, false) // clean fill
	c.Access(0x0000, true)  // write hit -> dirty
	c.Access(0x0080, false) // evicts -> must write back
	if wbs != 1 {
		t.Fatalf("writebacks = %d, want 1", wbs)
	}
}

func TestCacheFiltersRepeatTraffic(t *testing.T) {
	// The L2 filter role: repeated references to a small set of blocks
	// should nearly all hit after the first touch.
	c := mustCache(t, CacheConfig{SizeBytes: 64 * 1024, BlockSize: 64, Ways: 8})
	for round := 0; round < 10; round++ {
		for b := 0; b < 100; b++ {
			c.Access(memtrace.Addr(b*64), false)
		}
	}
	if c.Misses() != 100 {
		t.Fatalf("misses = %d, want 100 cold misses only", c.Misses())
	}
}
