package sram

import (
	"fmt"

	"fpcache/internal/memtrace"
)

// Line is the payload of a conventional cache block.
type Line struct {
	Dirty bool
}

// Cache is a conventional set-associative SRAM cache (an L1 or L2
// model) used to filter traces down to the DRAM-cache level in
// full-hierarchy runs.
type Cache struct {
	blockBits int
	setMask   uint64
	arr       *SetAssoc[Line]

	// WritebackFn, if set, is invoked for every dirty eviction with
	// the victim block's address.
	WritebackFn func(addr memtrace.Addr)
}

// CacheConfig describes a conventional cache geometry.
type CacheConfig struct {
	SizeBytes int
	BlockSize int
	Ways      int
}

// NewCache builds a cache; geometry must divide evenly and sets must
// be a power of two (hardware-indexable).
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.BlockSize <= 0 || cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("sram: invalid cache config %+v", cfg)
	}
	if cfg.BlockSize&(cfg.BlockSize-1) != 0 {
		return nil, fmt.Errorf("sram: block size %d not a power of two", cfg.BlockSize)
	}
	blocks := cfg.SizeBytes / cfg.BlockSize
	if blocks*cfg.BlockSize != cfg.SizeBytes || blocks%cfg.Ways != 0 {
		return nil, fmt.Errorf("sram: geometry %+v does not divide evenly", cfg)
	}
	sets := blocks / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("sram: %d sets is not a power of two", sets)
	}
	c := &Cache{arr: NewSetAssoc[Line](sets, cfg.Ways)}
	for cfg.BlockSize > 1 {
		cfg.BlockSize >>= 1
		c.blockBits++
	}
	c.setMask = uint64(sets - 1)
	return c, nil
}

func (c *Cache) index(addr memtrace.Addr) (set int, tag uint64) {
	blk := uint64(addr) >> c.blockBits
	return int(blk & c.setMask), blk >> uint(bitsFor(c.setMask))
}

func bitsFor(mask uint64) int {
	n := 0
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// Access performs a read or write. It returns whether it hit, and if a
// dirty block was evicted to make room, reports it through
// WritebackFn.
func (c *Cache) Access(addr memtrace.Addr, write bool) (hit bool) {
	set, tag := c.index(addr)
	if e := c.arr.Lookup(set, tag); e != nil {
		if write {
			e.Value.Dirty = true
		}
		return true
	}
	old, evicted := c.arr.Insert(set, tag, Line{Dirty: write})
	if evicted && old.Value.Dirty && c.WritebackFn != nil {
		victimBlk := old.Tag<<uint(bitsFor(c.setMask)) | uint64(set)
		c.WritebackFn(memtrace.Addr(victimBlk << c.blockBits))
	}
	return false
}

// Hits returns the hit count.
func (c *Cache) Hits() uint64 { return c.arr.Hits }

// Misses returns the miss count.
func (c *Cache) Misses() uint64 { return c.arr.Misses }

// HitRatio returns hits / (hits+misses), or 0 before any access.
func (c *Cache) HitRatio() float64 {
	t := c.arr.Hits + c.arr.Misses
	if t == 0 {
		return 0
	}
	return float64(c.arr.Hits) / float64(t)
}
