// Package sram models on-chip SRAM structures: a generic
// set-associative container with LRU replacement, and conventional
// L1/L2 caches built on it.
//
// The same container backs every SRAM structure in the paper's
// designs: the Footprint Cache tag array, the Footprint History Table,
// the Singleton Table, and the block-based design's MissMap — they are
// all set-associative SRAM arrays that differ only in their payloads.
package sram

import "fmt"

// Entry is one way of a set, pairing a tag with a caller-defined
// payload.
type Entry[V any] struct {
	Tag   uint64
	Value V
	valid bool
	way   int
	used  uint64 // LRU timestamp; larger = more recent
}

// Valid reports whether the entry currently holds data.
func (e *Entry[V]) Valid() bool { return e.valid }

// Way returns the entry's way index within its set. Set/way pairs
// directly determine DRAM cache frame addresses (paper §4.1).
func (e *Entry[V]) Way() int { return e.way }

// SetAssoc is a set-associative array with true-LRU replacement.
// Lookups and fills address a (set, tag) pair; the caller owns the
// set-index and tag computation so the container can back structures
// with different indexing schemes (physical address, PC-hash, ...).
type SetAssoc[V any] struct {
	sets  int
	ways  int
	data  []Entry[V] // sets*ways, row-major
	clock uint64

	// Stats
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// NewSetAssoc builds a container with the given geometry. Both
// dimensions must be positive.
func NewSetAssoc[V any](sets, ways int) *SetAssoc[V] {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("sram: invalid geometry %dx%d", sets, ways))
	}
	c := &SetAssoc[V]{sets: sets, ways: ways, data: make([]Entry[V], sets*ways)}
	for i := range c.data {
		c.data[i].way = i % ways
	}
	return c
}

// Sets returns the number of sets.
func (c *SetAssoc[V]) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc[V]) Ways() int { return c.ways }

func (c *SetAssoc[V]) set(idx int) []Entry[V] {
	if idx < 0 || idx >= c.sets {
		panic(fmt.Sprintf("sram: set index %d out of range [0,%d)", idx, c.sets))
	}
	return c.data[idx*c.ways : (idx+1)*c.ways]
}

// Lookup finds the entry with the given tag in the given set, touching
// its LRU state on hit. It returns nil on miss.
func (c *SetAssoc[V]) Lookup(set int, tag uint64) *Entry[V] {
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].Tag == tag {
			c.clock++
			ways[i].used = c.clock
			c.Hits++
			return &ways[i]
		}
	}
	c.Misses++
	return nil
}

// Peek finds the entry without touching LRU state or stats.
func (c *SetAssoc[V]) Peek(set int, tag uint64) *Entry[V] {
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].Tag == tag {
			return &ways[i]
		}
	}
	return nil
}

// Victim returns the entry that Insert would replace in the set: an
// invalid way if one exists, else the LRU way. The returned entry is
// live storage; callers may inspect it (e.g., for dirty writeback)
// before inserting.
func (c *SetAssoc[V]) Victim(set int) *Entry[V] {
	ways := c.set(set)
	var lru *Entry[V]
	for i := range ways {
		if !ways[i].valid {
			return &ways[i]
		}
		if lru == nil || ways[i].used < lru.used {
			lru = &ways[i]
		}
	}
	return lru
}

// Insert places (tag, value) in the set, evicting the LRU way if the
// set is full. It returns the displaced entry's previous contents and
// whether a valid entry was evicted.
func (c *SetAssoc[V]) Insert(set int, tag uint64, value V) (old Entry[V], evicted bool) {
	v := c.Victim(set)
	old = *v
	evicted = v.valid
	if evicted {
		c.Evictions++
	}
	c.clock++
	*v = Entry[V]{Tag: tag, Value: value, valid: true, way: v.way, used: c.clock}
	return old, evicted
}

// Invalidate removes the entry with the given tag from the set,
// returning its previous contents and whether it existed.
func (c *SetAssoc[V]) Invalidate(set int, tag uint64) (old Entry[V], ok bool) {
	ways := c.set(set)
	for i := range ways {
		if ways[i].valid && ways[i].Tag == tag {
			old = ways[i]
			ways[i] = Entry[V]{way: ways[i].way}
			return old, true
		}
	}
	return Entry[V]{}, false
}

// Slot returns the entry at an explicit (set, way) position without
// touching LRU state or stats. It is the mechanism behind structures
// that store pointers to entries (the Footprint Cache tag array keeps
// FHT slot pointers, paper §4.2). Returns nil if out of range.
func (c *SetAssoc[V]) Slot(set, way int) *Entry[V] {
	if set < 0 || set >= c.sets || way < 0 || way >= c.ways {
		return nil
	}
	return &c.data[set*c.ways+way]
}

// Range calls fn for every valid entry. Mutating payloads through the
// pointer is allowed; inserting or invalidating during Range is not.
func (c *SetAssoc[V]) Range(fn func(set int, e *Entry[V])) {
	for s := 0; s < c.sets; s++ {
		ways := c.set(s)
		for i := range ways {
			if ways[i].valid {
				fn(s, &ways[i])
			}
		}
	}
}

// Occupancy returns the number of valid entries.
func (c *SetAssoc[V]) Occupancy() int {
	n := 0
	for i := range c.data {
		if i%c.ways == 0 {
			_ = i
		}
		if c.data[i].valid {
			n++
		}
	}
	return n
}

// Flush invalidates every entry, calling fn (if non-nil) for each
// valid entry first.
func (c *SetAssoc[V]) Flush(fn func(set int, e *Entry[V])) {
	for s := 0; s < c.sets; s++ {
		ways := c.set(s)
		for i := range ways {
			if ways[i].valid {
				if fn != nil {
					fn(s, &ways[i])
				}
				ways[i] = Entry[V]{way: ways[i].way}
			}
		}
	}
}
