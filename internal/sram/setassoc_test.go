package sram

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLookupMissThenInsertHit(t *testing.T) {
	c := NewSetAssoc[int](4, 2)
	if c.Lookup(0, 7) != nil {
		t.Fatal("empty cache hit")
	}
	c.Insert(0, 7, 42)
	e := c.Lookup(0, 7)
	if e == nil || e.Value != 42 {
		t.Fatal("inserted entry not found")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewSetAssoc[string](1, 2)
	c.Insert(0, 1, "a")
	c.Insert(0, 2, "b")
	c.Lookup(0, 1) // touch a; b becomes LRU
	old, evicted := c.Insert(0, 3, "c")
	if !evicted || old.Tag != 2 {
		t.Fatalf("evicted tag %d, want 2 (LRU)", old.Tag)
	}
	if c.Lookup(0, 1) == nil || c.Lookup(0, 3) == nil {
		t.Fatal("survivors missing")
	}
	if c.Lookup(0, 2) != nil {
		t.Fatal("evicted entry still present")
	}
}

func TestInsertPrefersInvalidWay(t *testing.T) {
	c := NewSetAssoc[int](1, 4)
	c.Insert(0, 1, 0)
	if _, evicted := c.Insert(0, 2, 0); evicted {
		t.Fatal("evicted with free ways available")
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := NewSetAssoc[int](1, 2)
	c.Insert(0, 1, 0)
	c.Insert(0, 2, 0)
	c.Peek(0, 1) // must not refresh tag 1
	old, _ := c.Insert(0, 3, 0)
	if old.Tag != 1 {
		t.Fatalf("Peek touched LRU: evicted %d, want 1", old.Tag)
	}
	h, m := c.Hits, c.Misses
	c.Peek(0, 3)
	if c.Hits != h || c.Misses != m {
		t.Fatal("Peek changed stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := NewSetAssoc[int](2, 2)
	c.Insert(1, 5, 99)
	old, ok := c.Invalidate(1, 5)
	if !ok || old.Value != 99 {
		t.Fatal("Invalidate lost value")
	}
	if _, ok := c.Invalidate(1, 5); ok {
		t.Fatal("double invalidate succeeded")
	}
	if c.Peek(1, 5) != nil {
		t.Fatal("invalidated entry still present")
	}
}

func TestWayStableAcrossOperations(t *testing.T) {
	c := NewSetAssoc[int](1, 4)
	c.Insert(0, 1, 0)
	c.Insert(0, 2, 0)
	e := c.Peek(0, 2)
	w := e.Way()
	c.Invalidate(0, 2)
	c.Insert(0, 9, 0) // reuses the invalidated way
	if got := c.Peek(0, 9).Way(); got != w {
		t.Fatalf("way changed %d -> %d after invalidate+insert", w, got)
	}
	ways := map[int]bool{}
	for _, tag := range []uint64{1, 9} {
		ways[c.Peek(0, tag).Way()] = true
	}
	if len(ways) != 2 {
		t.Fatal("two entries share a way")
	}
}

func TestSlotAddressing(t *testing.T) {
	c := NewSetAssoc[int](2, 3)
	c.Insert(1, 7, 77)
	e := c.Peek(1, 7)
	s := c.Slot(1, e.Way())
	if s != e {
		t.Fatal("Slot returned a different entry")
	}
	if c.Slot(5, 0) != nil || c.Slot(0, 9) != nil || c.Slot(-1, 0) != nil {
		t.Fatal("out-of-range Slot not nil")
	}
}

func TestVictimMatchesInsert(t *testing.T) {
	c := NewSetAssoc[int](1, 3)
	for tag := uint64(0); tag < 3; tag++ {
		c.Insert(0, tag, int(tag))
	}
	predicted := c.Victim(0).Tag // copy: Victim returns live storage
	old, evicted := c.Insert(0, 99, 0)
	if !evicted || old.Tag != predicted {
		t.Fatalf("Victim predicted %d, Insert evicted %d", predicted, old.Tag)
	}
}

func TestOccupancyAndFlush(t *testing.T) {
	c := NewSetAssoc[int](4, 2)
	for i := 0; i < 5; i++ {
		c.Insert(i%4, uint64(i), i)
	}
	if c.Occupancy() != 5 {
		t.Fatalf("occupancy = %d, want 5", c.Occupancy())
	}
	seen := 0
	c.Flush(func(set int, e *Entry[int]) { seen++ })
	if seen != 5 || c.Occupancy() != 0 {
		t.Fatalf("flush saw %d, left %d", seen, c.Occupancy())
	}
}

func TestRangeVisitsAllValid(t *testing.T) {
	c := NewSetAssoc[int](4, 4)
	want := map[uint64]bool{}
	for i := 0; i < 9; i++ {
		c.Insert(i%4, uint64(100+i), i)
		want[uint64(100+i)] = true
	}
	got := map[uint64]bool{}
	c.Range(func(set int, e *Entry[int]) { got[e.Tag] = true })
	if len(got) != len(want) {
		t.Fatalf("Range visited %d, want %d", len(got), len(want))
	}
}

func TestGeometryPanics(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("geometry %v did not panic", g)
				}
			}()
			NewSetAssoc[int](g[0], g[1])
		}()
	}
}

// Property: the container agrees with a reference map model under
// random Lookup/Insert/Invalidate sequences within one set.
func TestPropertyMatchesReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const ways = 4
		c := NewSetAssoc[int](1, ways)
		ref := map[uint64]int{} // tag -> value for entries that must be present
		// Track reference LRU order.
		var order []uint64
		touch := func(tag uint64) {
			for i, tg := range order {
				if tg == tag {
					order = append(append(order[:i:i], order[i+1:]...), tag)
					return
				}
			}
			order = append(order, tag)
		}
		for step := 0; step < 200; step++ {
			tag := uint64(rng.Intn(8))
			switch rng.Intn(3) {
			case 0: // lookup
				e := c.Lookup(0, tag)
				_, want := ref[tag]
				if (e != nil) != want {
					return false
				}
				if want {
					touch(tag)
				}
			case 1: // insert
				if _, present := ref[tag]; present {
					continue
				}
				c.Insert(0, tag, step)
				if len(ref) == ways {
					lru := order[0]
					order = order[1:]
					delete(ref, lru)
				}
				ref[tag] = step
				touch(tag)
			case 2: // invalidate
				_, present := ref[tag]
				_, ok := c.Invalidate(0, tag)
				if ok != present {
					return false
				}
				if present {
					delete(ref, tag)
					for i, tg := range order {
						if tg == tag {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			}
		}
		if c.Occupancy() != len(ref) {
			return false
		}
		for tag := range ref {
			if c.Peek(0, tag) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
