package sram

import (
	"fmt"

	"fpcache/internal/fault"
	"fpcache/internal/snap"
)

// The serialized layout below is pinned by the fplint snapmeta
// analyzer; versioning lives in the enclosing envelope
// (dcache.SnapshotVersion), so a fingerprint change means bumping that
// const along with refreshing this directive.
//
//fplint:snapfields 0xf25bdde5

// Save serializes the container — geometry, LRU clock, stats, and
// every entry including its exact LRU timestamp — so a restored array
// replays future accesses identically to the original. enc writes one
// payload; it must be the inverse of the dec passed to Load.
func (c *SetAssoc[V]) Save(w *snap.Writer, enc func(*snap.Writer, *V)) {
	w.Tag("sram")
	w.U64(uint64(c.sets))
	w.U64(uint64(c.ways))
	w.U64(c.clock)
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Evictions)
	for i := range c.data {
		e := &c.data[i]
		w.Bool(e.valid)
		if e.valid {
			w.U64(e.Tag)
			w.U64(e.used)
			enc(w, &e.Value)
		}
	}
}

// Load restores a snapshot written by Save into a container of the
// same geometry, replacing all current contents. A geometry mismatch
// (the snapshot came from a differently configured structure) fails
// without touching the container.
func (c *SetAssoc[V]) Load(r *snap.Reader, dec func(*snap.Reader, *V)) error {
	r.Expect("sram")
	sets, ways := int(r.U64()), int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if sets != c.sets || ways != c.ways {
		return fmt.Errorf("sram: snapshot geometry %dx%d, have %dx%d: %w", sets, ways, c.sets, c.ways, fault.ErrCorruptSnapshot)
	}
	c.clock = r.U64()
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.Evictions = r.U64()
	for i := range c.data {
		e := &c.data[i]
		*e = Entry[V]{way: e.way}
		if r.Bool() {
			e.valid = true
			e.Tag = r.U64()
			e.used = r.U64()
			dec(r, &e.Value)
		}
		if err := r.Err(); err != nil {
			return err
		}
	}
	return r.Err()
}
