package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.Value() != 0 || m.N() != 0 {
		t.Fatal("zero Mean not zero")
	}
	for _, x := range []float64{1, 2, 3, 4, 5} {
		m.Add(x)
	}
	if m.N() != 5 {
		t.Fatalf("N = %d", m.N())
	}
	if math.Abs(m.Value()-3) > 1e-12 {
		t.Fatalf("mean = %g, want 3", m.Value())
	}
	if math.Abs(m.Variance()-2.5) > 1e-12 {
		t.Fatalf("variance = %g, want 2.5", m.Variance())
	}
}

func TestMeanMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9 {
				return true // skip pathological inputs
			}
		}
		if len(xs) == 0 {
			return true
		}
		var m Mean
		sum := 0.0
		for _, x := range xs {
			m.Add(x)
			sum += x
		}
		naive := sum / float64(len(xs))
		return math.Abs(m.Value()-naive) < 1e-6*(1+math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCI95ShrinksWithSamples(t *testing.T) {
	var small, large Mean
	for i := 0; i < 10; i++ {
		small.Add(float64(i % 3))
	}
	for i := 0; i < 1000; i++ {
		large.Add(float64(i % 3))
	}
	if large.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: %g vs %g", large.CI95(), small.CI95())
	}
	var single Mean
	single.Add(1)
	if single.CI95() != 0 {
		t.Fatal("CI95 of one sample should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %g, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %g", g)
	}
	if g := GeoMean([]float64{7}); math.Abs(g-7) > 1e-12 {
		t.Fatalf("GeoMean(7) = %g", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("GeoMean of non-positive value did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r) + 1
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		g := GeoMean(xs)
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio(6,3) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero should be 0")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1, 3, 7)
	for _, x := range []int64{1, 2, 3, 4, 7, 8, 100} {
		h.Add(x)
	}
	if h.Counts[0] != 1 { // x <= 1
		t.Fatalf("bucket0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 2,3
		t.Fatalf("bucket1 = %d", h.Counts[1])
	}
	if h.Counts[2] != 2 { // 4,7
		t.Fatalf("bucket2 = %d", h.Counts[2])
	}
	if h.Overflow != 2 { // 8,100
		t.Fatalf("overflow = %d", h.Overflow)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramFractionsSumToOne(t *testing.T) {
	f := func(xs []int16) bool {
		if len(xs) == 0 {
			return true
		}
		h := NewHistogram(0, 10, 100, 1000)
		for _, x := range xs {
			h.Add(int64(x))
		}
		sum := 0.0
		for _, fr := range h.Fractions() {
			sum += fr
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("descending bounds did not panic")
		}
	}()
	NewHistogram(5, 3)
}

func TestTableRendering(t *testing.T) {
	var tb Table
	tb.Header("name", "value")
	tb.Row("x", "1")
	tb.Rowf("longer-name", 3.14159)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[1], "---") {
		t.Fatalf("header/underline malformed:\n%s", out)
	}
	if !strings.Contains(out, "3.142") {
		t.Fatalf("Rowf float formatting missing:\n%s", out)
	}
	// Columns align: all lines equal length after padding.
	if len(lines[2]) > len(lines[0])+2 {
		t.Fatalf("column misalignment:\n%s", out)
	}
}

func TestEmptyTable(t *testing.T) {
	var tb Table
	if tb.String() != "" {
		t.Fatal("empty table should render empty")
	}
}

func TestPct(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Fatalf("Pct = %q", Pct(0.1234))
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(10, 20, 40, 80)
	if h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram percentile not 0")
	}
	// 100 observations uniform over (0, 10]: p50 interpolates to ~5.
	for i := 0; i < 100; i++ {
		h.Add(5)
	}
	if p := h.Percentile(0.5); math.Abs(p-5) > 1e-9 {
		t.Fatalf("p50 = %g, want 5", p)
	}
	if p := h.Percentile(1.0); math.Abs(p-10) > 1e-9 {
		t.Fatalf("p100 = %g, want 10", p)
	}
	// Add 100 observations in (20, 40]: p75 lands mid second half.
	for i := 0; i < 100; i++ {
		h.Add(30)
	}
	if p := h.Percentile(0.75); p <= 20 || p > 40 {
		t.Fatalf("p75 = %g, want in (20, 40]", p)
	}
	// Clamped inputs behave.
	if h.Percentile(-1) != h.Percentile(0) || h.Percentile(2) != h.Percentile(1) {
		t.Fatal("percentile inputs not clamped")
	}
}

func TestHistogramPercentileMonotone(t *testing.T) {
	h := NewHistogram(LogBounds(16, 1<<20, 8)...)
	for i := 1; i <= 5000; i++ {
		h.Add(int64(i * 37 % 100000))
	}
	prev := -1.0
	for p := 0.0; p <= 1.0; p += 0.05 {
		v := h.Percentile(p)
		if v < prev {
			t.Fatalf("percentile not monotone: p=%.2f gives %g < %g", p, v, prev)
		}
		prev = v
	}
}

func TestHistogramPercentileOverflowSaturates(t *testing.T) {
	h := NewHistogram(10, 20)
	for i := 0; i < 10; i++ {
		h.Add(1000) // all overflow
	}
	if p := h.Percentile(0.99); p != 20 {
		t.Fatalf("overflow p99 = %g, want last bound 20", p)
	}
}

func TestLogBounds(t *testing.T) {
	b := LogBounds(16, 1<<20, 8)
	if b[0] != 16 {
		t.Fatalf("first bound = %d", b[0])
	}
	if last := b[len(b)-1]; last < 1<<20 {
		t.Fatalf("last bound %d does not cover 1<<20", last)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %d <= %d", i, b[i], b[i-1])
		}
	}
	// Usable directly as histogram bounds.
	NewHistogram(b...)
	// Roughly 8 bounds per octave: 16 octaves -> ~128 bounds.
	if len(b) < 100 || len(b) > 140 {
		t.Fatalf("unexpected bound count %d", len(b))
	}
}

// TestHistogramMergeExact is the exactness property behind the
// interval-parallel merge: splitting an observation stream into
// arbitrary consecutive intervals, bucketing each interval into its
// own histogram, and merging must reproduce the serial histogram —
// counts, overflow, total, and interpolated P50/P90/P99 — bit for
// bit, whatever the split and whatever the merge order.
func TestHistogramMergeExact(t *testing.T) {
	bounds := LatencyBounds()
	f := func(raw []uint32, cuts []uint8) bool {
		// Serial reference: every observation into one histogram.
		serial := NewHistogram(bounds...)
		for _, x := range raw {
			serial.Add(int64(x))
		}
		// Split raw at pseudo-random cut points into intervals.
		var parts []*Histogram
		start := 0
		for _, c := range cuts {
			end := start + int(c)%(len(raw)-start+1)
			h := NewHistogram(bounds...)
			for _, x := range raw[start:end] {
				h.Add(int64(x))
			}
			parts = append(parts, h)
			start = end
		}
		last := NewHistogram(bounds...)
		for _, x := range raw[start:] {
			last.Add(int64(x))
		}
		parts = append(parts, last)

		// Merge in reverse order to show order independence.
		merged := NewHistogram(bounds...)
		for i := len(parts) - 1; i >= 0; i-- {
			if err := merged.Merge(parts[i]); err != nil {
				t.Fatalf("merge: %v", err)
			}
		}
		if merged.Total() != serial.Total() || merged.Overflow != serial.Overflow {
			return false
		}
		for i := range merged.Counts {
			if merged.Counts[i] != serial.Counts[i] {
				return false
			}
		}
		for _, p := range []float64{0.50, 0.90, 0.99} {
			// Bit-for-bit: same counts feed the same interpolation.
			if merged.Percentile(p) != serial.Percentile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeAssociative pins ((a+b)+c) == (a+(b+c)).
func TestHistogramMergeAssociative(t *testing.T) {
	mk := func(xs ...int64) *Histogram {
		h := NewHistogram(10, 100, 1000)
		for _, x := range xs {
			h.Add(x)
		}
		return h
	}
	a, b, c := mk(5, 2000), mk(50, 500), mk(1, 999, 10000)
	left := mk()
	if err := left.Merge(a); err != nil {
		t.Fatal(err)
	}
	left.Merge(b)
	left.Merge(c)
	bc := mk()
	bc.Merge(b)
	bc.Merge(c)
	right := mk()
	right.Merge(a)
	right.Merge(bc)
	if left.Total() != right.Total() || left.Overflow != right.Overflow {
		t.Fatalf("associativity: totals %d/%d overflow %d/%d", left.Total(), right.Total(), left.Overflow, right.Overflow)
	}
	for i := range left.Counts {
		if left.Counts[i] != right.Counts[i] {
			t.Fatalf("associativity: bucket %d %d != %d", i, left.Counts[i], right.Counts[i])
		}
	}
}

// TestHistogramMergeRejectsMismatch: merging across different bucket
// geometries must fail loudly, not misattribute counts.
func TestHistogramMergeRejectsMismatch(t *testing.T) {
	a := NewHistogram(10, 20)
	if err := a.Merge(NewHistogram(10, 30)); err == nil {
		t.Fatal("merge across mismatched bounds succeeded")
	}
	if err := a.Merge(NewHistogram(10, 20, 30)); err == nil {
		t.Fatal("merge across different bound counts succeeded")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}
