// Package stats provides small statistical helpers used across the
// simulator: streaming means, histograms, geometric means, confidence
// intervals, and fixed-width table rendering for the bench harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean is a streaming arithmetic mean with variance tracking
// (Welford's algorithm). The zero value is ready to use.
type Mean struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the mean.
func (m *Mean) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() int64 { return m.n }

// Value returns the arithmetic mean, or 0 with no observations.
func (m *Mean) Value() float64 { return m.mean }

// Variance returns the sample variance, or 0 with fewer than two
// observations.
func (m *Mean) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// StdDev returns the sample standard deviation.
func (m *Mean) StdDev() float64 { return math.Sqrt(m.Variance()) }

// CI95 returns the half-width of the 95% confidence interval of the
// mean under a normal approximation (the paper reports measurements at
// a 95% confidence level, §5.4).
func (m *Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	return 1.96 * m.StdDev() / math.Sqrt(float64(m.n))
}

// GeoMean returns the geometric mean of xs. Non-positive inputs are an
// error in this domain (ratios and speedups), so they panic loudly
// rather than silently corrupting a result.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Ratio returns a/b, or 0 if b is zero. Convenient for normalized
// metrics where an empty denominator means "no activity".
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Histogram is a bucketed counter over arbitrary integer upper bounds.
// Bucket i counts observations x with x <= Bounds[i] (and greater than
// Bounds[i-1]). Observations above the last bound land in the overflow
// bucket.
type Histogram struct {
	Bounds   []int64
	Counts   []int64
	Overflow int64
	total    int64
}

// NewHistogram builds a histogram over the given ascending bounds.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must ascend")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds))}
}

// Add records one observation.
func (h *Histogram) Add(x int64) {
	h.total++
	i := sort.Search(len(h.Bounds), func(i int) bool { return x <= h.Bounds[i] })
	if i == len(h.Bounds) {
		h.Overflow++
		return
	}
	h.Counts[i]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Merge folds o's observations into h. Both histograms must share the
// same bucket bounds — merging across geometries would silently
// misattribute counts. Merging is exact: counts are integers, so a
// histogram assembled from per-interval merges is bit-identical to one
// that saw every observation directly, in any merge order (the
// interval-parallel runner's determinism rests on this; the property
// test in stats_test.go pins associativity and order independence).
// A nil o is a no-op.
func (h *Histogram) Merge(o *Histogram) error {
	if o == nil {
		return nil
	}
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("stats: merging histograms with %d and %d bounds", len(h.Bounds), len(o.Bounds))
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return fmt.Errorf("stats: merging histograms with mismatched bound %d (%d vs %d)", i, h.Bounds[i], o.Bounds[i])
		}
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Overflow += o.Overflow
	h.total += o.total
	return nil
}

// Percentile returns the value below which fraction p (in [0, 1]) of
// the observations fall, linearly interpolated within the containing
// bucket. Observations in the overflow bucket are attributed to the
// last bound, so a tail-heavy distribution saturates there rather than
// inventing values the histogram never saw. Returns 0 with no
// observations.
func (h *Histogram) Percentile(p float64) float64 {
	if h.total == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.total)
	cum := 0.0
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := float64(0)
			if i > 0 {
				lo = float64(h.Bounds[i-1])
			}
			hi := float64(h.Bounds[i])
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(h.Bounds[len(h.Bounds)-1])
}

// LatencyBounds returns the canonical bucket bounds for CPU-cycle
// latency histograms: 8 bounds per octave from 8 cycles to ~1M
// (~4.5% worst-case interpolation error). The DRAM controller's
// request-level histogram and the timing runner's end-to-end one both
// use it, so their percentiles stay comparable.
func LatencyBounds() []int64 { return LogBounds(8, 1<<20, 8) }

// LogBounds returns ascending histogram bounds covering [lo, hi] with
// perOctave geometrically spaced bounds per doubling — the standard
// shape for latency distributions, where relative (not absolute)
// resolution matters.
func LogBounds(lo, hi int64, perOctave int) []int64 {
	if lo < 1 {
		lo = 1
	}
	if perOctave < 1 {
		perOctave = 1
	}
	ratio := math.Pow(2, 1/float64(perOctave))
	var bounds []int64
	x := float64(lo)
	prev := int64(0)
	for {
		b := int64(math.Round(x))
		if b > prev {
			bounds = append(bounds, b)
			prev = b
		}
		if b >= hi {
			return bounds
		}
		x *= ratio
	}
}

// Fraction returns the fraction of observations in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// Fractions returns per-bucket fractions including overflow as the
// final element.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts)+1)
	for i := range h.Counts {
		out[i] = h.Fraction(i)
	}
	if h.total > 0 {
		out[len(h.Counts)] = float64(h.Overflow) / float64(h.total)
	}
	return out
}

// Table renders aligned rows of strings, for figure/table output. The
// first row is treated as a header and underlined.
type Table struct {
	rows [][]string
}

// Header sets the header cells.
func (t *Table) Header(cells ...string) { t.rows = append([][]string{cells}, t.rows...) }

// Row appends a data row.
func (t *Table) Row(cells ...string) { t.rows = append(t.rows, cells) }

// Rowf appends a row where each cell is formatted with fmt.Sprint for
// arbitrary values.
func (t *Table) Rowf(cells ...any) {
	s := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			s[i] = fmt.Sprintf("%.3f", v)
		default:
			s[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, s)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	if len(t.rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, r := range t.rows {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", widths[i]))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Pct formats a ratio as a percentage string with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
