package dcache

import (
	"fmt"

	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// BlockCache reimplements the paper's state-of-the-art block-based
// comparator (§5.2, after Loh & Hill): 64B blocks whose tags are
// co-located with data in the stacked DRAM — each 2KB row holds one
// 30-way cache set (30 data blocks plus 2 tag blocks, §5.2's
// optimized layout) — fronted by an SRAM MissMap that tracks block
// presence at 4KB-region granularity so misses skip the in-DRAM tag
// probe entirely.
//
// The design's characteristic costs all emerge from this structure:
//   - hits pay a compound row access (tag CAS + data CAS + tag-update
//     CAS on one activation, with close-page policy between requests);
//   - spatially consecutive blocks live in different rows, so MissMap
//     evictions force scattered writebacks with excessive activations;
//   - capacity is managed per block, so the hit *ratio* is limited by
//     temporal reuse, which server workloads lack (§2.2).
type BlockCache struct {
	rows      int // one cache set per DRAM row
	tagCycles int

	blocks  *sram.SetAssoc[blockMeta] // models the in-DRAM tags
	missMap *sram.SetAssoc[uint64]    // presence vector per 4KB region
	mmSets  int

	ctr Counters
	// ForcedEvicts counts blocks evicted because their MissMap region
	// entry was replaced (§5.2 reports these interfere with demand
	// traffic).
	ForcedEvicts uint64
}

type blockMeta struct {
	dirty bool
}

const (
	// DataBlocksPerRow and tag layout follow §5.2's optimized packing
	// (30 data + 2 tag blocks per 2KB row, 30-way associativity).
	DataBlocksPerRow = 30
	rowBytes         = 2048
	regionBytes      = 4096 // MissMap tracking granularity
	blocksPerRegion  = regionBytes / 64
)

// BlockCacheConfig configures the design.
type BlockCacheConfig struct {
	CapacityBytes  int64
	MissMapEntries int
	MissMapWays    int
	// TagCycles is the MissMap lookup latency (the SRAM structure on
	// the critical path; in-DRAM tag latency is paid in DRAM ops).
	TagCycles int
}

// NewBlockCache builds the design.
func NewBlockCache(cfg BlockCacheConfig) (*BlockCache, error) {
	rows := cfg.CapacityBytes / rowBytes
	if rows < 1 {
		return nil, fmt.Errorf("dcache: capacity %d below one row", cfg.CapacityBytes)
	}
	if cfg.MissMapEntries <= 0 || cfg.MissMapWays <= 0 || cfg.MissMapEntries%cfg.MissMapWays != 0 {
		return nil, fmt.Errorf("dcache: missmap %d entries / %d ways invalid", cfg.MissMapEntries, cfg.MissMapWays)
	}
	mmSets := cfg.MissMapEntries / cfg.MissMapWays
	return &BlockCache{
		rows:      int(rows),
		tagCycles: cfg.TagCycles,
		blocks:    sram.NewSetAssoc[blockMeta](int(rows), DataBlocksPerRow),
		missMap:   sram.NewSetAssoc[uint64](mmSets, cfg.MissMapWays),
		mmSets:    mmSets,
	}, nil
}

// Name implements Design.
func (b *BlockCache) Name() string { return "block" }

// Counters implements Design.
func (b *BlockCache) Counters() Counters { return b.ctr }

// BlockMetadataBits computes the block-based design's SRAM budget: the
// MissMap is the design's only SRAM structure (tags live in DRAM);
// each entry holds a region tag, a 64-bit presence vector, a valid
// bit, and LRU state (Table 4).
func BlockMetadataBits(mmEntries, mmWays int) int64 {
	mmSets := mmEntries / mmWays
	tagBits := 40 - 12 - lruBits(mmSets) // 4KB region tracking
	return int64(mmEntries) * int64(tagBits+blocksPerRegion+1+lruBits(mmWays))
}

// MetadataBits implements Design.
func (b *BlockCache) MetadataBits() int64 {
	return BlockMetadataBits(b.missMap.Sets()*b.missMap.Ways(), b.missMap.Ways())
}

// rowBase returns the stacked-DRAM address of a cache set's row.
func (b *BlockCache) rowBase(set int) memtrace.Addr {
	return memtrace.Addr(int64(set) * rowBytes)
}

func (b *BlockCache) blockIndex(addr memtrace.Addr) (set int, tag uint64, blockNum uint64) {
	blockNum = uint64(addr) / 64
	return int(blockNum % uint64(b.rows)), blockNum / uint64(b.rows), blockNum
}

func (b *BlockCache) regionIndex(addr memtrace.Addr) (set int, tag uint64, bit uint64) {
	region := uint64(addr) / regionBytes
	blk := uint64(addr) % regionBytes / 64
	return int(region % uint64(b.mmSets)), region / uint64(b.mmSets), uint64(1) << blk
}

// Access implements Design.
func (b *BlockCache) Access(rec memtrace.Record, ops []Op) Outcome {
	b.ctr.record(rec)
	mmSet, mmTag, mmBit := b.regionIndex(rec.Addr)
	mm := b.missMap.Lookup(mmSet, mmTag)

	if mm != nil && mm.Value&mmBit != 0 {
		// Present: compound in-DRAM access — one activation serving
		// tag CAS + data CAS + tag-update CAS in the set's row.
		b.ctr.Hits++
		set, tag, _ := b.blockIndex(rec.Addr)
		e := b.blocks.Lookup(set, tag)
		if e == nil {
			panic("dcache: blockcache missmap/tag divergence (present bit without block)")
		}
		if rec.Write {
			e.Value.dirty = true
		}
		ops = append(ops[:0], Op{
			Level: Stacked, Addr: b.rowBase(set), Bytes: 3 * 64,
			Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
		})
		return Outcome{Hit: true, TagCycles: b.tagCycles, Ops: ops}
	}

	// Miss: serve reads from memory; an L2 writeback carries the full
	// 64B block, so a write miss installs without an off-chip read.
	b.ctr.Misses++
	ops = ops[:0]
	crit := NoDep
	if !rec.Write {
		crit = len(ops)
		ops = append(ops, Op{Level: OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: NoDep})
	}

	// Fill into the set's row: possible victim writeback first.
	set, tag, _ := b.blockIndex(rec.Addr)
	victim := b.blocks.Victim(set)
	if victim.Valid() {
		victimBlockNum := victim.Tag*uint64(b.rows) + uint64(set)
		victimAddr := memtrace.Addr(victimBlockNum * 64)
		if victim.Value.dirty {
			b.ctr.DirtyEvicts++
			// Data travels with the fill's row activation; the
			// off-chip writeback is posted.
			rd := len(ops)
			ops = append(ops, Op{Level: Stacked, Addr: b.rowBase(set), Bytes: 2 * 64, DependsOn: NoDep})
			ops = append(ops, Op{Level: OffChip, Addr: victimAddr, Bytes: 64, Write: true, DependsOn: rd})
		}
		b.clearPresence(victimAddr)
	}
	b.blocks.Insert(set, tag, blockMeta{dirty: rec.Write})
	b.ctr.PageAllocs++ // block allocations; name kept for uniform reporting
	// Data + tag-update CAS under one activation.
	ops = append(ops, Op{Level: Stacked, Addr: b.rowBase(set), Bytes: 2 * 64, Write: true, DependsOn: crit})

	// MissMap update.
	if mm != nil {
		mm.Value |= mmBit
	} else {
		ops = b.insertRegion(mmSet, mmTag, mmBit, ops)
	}
	return Outcome{TagCycles: b.tagCycles, Ops: ops}
}

// insertRegion allocates a MissMap entry, force-evicting every cached
// block of the displaced region (§5.2): each present block's row must
// be activated to read its tag (and data, if dirty) — spatially
// consecutive blocks sit in different rows, which is exactly why these
// evictions are expensive.
func (b *BlockCache) insertRegion(mmSet int, mmTag, mmBit uint64, ops []Op) []Op {
	old, evicted := b.missMap.Insert(mmSet, mmTag, mmBit)
	if !evicted || old.Value == 0 {
		return ops
	}
	oldRegion := old.Tag*uint64(b.mmSets) + uint64(mmSet)
	base := memtrace.Addr(oldRegion * regionBytes)
	for i := 0; i < blocksPerRegion; i++ {
		if old.Value&(1<<i) == 0 {
			continue
		}
		addr := base + memtrace.Addr(i*64)
		set, tag, _ := b.blockIndex(addr)
		e, ok := b.blocks.Invalidate(set, tag)
		if !ok {
			panic("dcache: blockcache missmap/tag divergence (region bit without block)")
		}
		b.ForcedEvicts++
		b.ctr.PageEvicts++
		if e.Value.dirty {
			b.ctr.DirtyEvicts++
			rd := len(ops)
			ops = append(ops, Op{Level: Stacked, Addr: b.rowBase(set), Bytes: 2 * 64, DependsOn: NoDep})
			ops = append(ops, Op{Level: OffChip, Addr: addr, Bytes: 64, Write: true, DependsOn: rd})
		} else {
			// Tag probe only.
			ops = append(ops, Op{Level: Stacked, Addr: b.rowBase(set), Bytes: 64, DependsOn: NoDep})
		}
	}
	return ops
}

// clearPresence clears the MissMap bit of an evicted block.
func (b *BlockCache) clearPresence(addr memtrace.Addr) {
	mmSet, mmTag, mmBit := b.regionIndex(addr)
	if e := b.missMap.Peek(mmSet, mmTag); e != nil {
		e.Value &^= mmBit
		if e.Value == 0 {
			b.missMap.Invalidate(mmSet, mmTag)
		}
	}
}

// MissMapParams returns the paper's Table 4 MissMap provisioning for a
// paper-scale capacity in MB: 192K entries at 24-way for caches up to
// 256MB, grown by 50% (288K at 36-way) at 512MB to curb forced
// evictions.
func MissMapParams(paperMB int) (entries, ways, latency int) {
	if paperMB >= 512 {
		return 288 * 1024, 36, 11
	}
	return 192 * 1024, 24, 9
}
