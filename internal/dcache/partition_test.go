package dcache

import (
	"math/rand"
	"testing"

	"fpcache/internal/memtrace"
)

// newTestPartition builds a partitioned footprint-free engine (page
// allocation keeps the test focused on resize mechanics): 1MB stacked,
// 2KB pages, 4 ways — 512 pages, 128 sets at full cache.
func newTestPartition(t *testing.T, memPct int, policy PartitionPolicy) *Partitioned {
	t.Helper()
	geom := PageGeometry{CapacityBytes: 1 << 20, PageBytes: 2048, Ways: 4}
	eng, err := NewEngine(EngineConfig{
		Name:       "test",
		Geometry:   geom,
		Alloc:      PageAlloc{},
		Mapping:    PageDirectMapping{PageBytes: geom.PageBytes},
		Consistent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPartitioned(PartitionConfig{Name: "test+part", Inner: eng, Policy: policy, MemPercent: memPct})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fillPartition drives a deterministic mixed read/write stream wide
// enough to populate the cache slice with clean and dirty pages.
func fillPartition(p *Partitioned, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	var ops []Op
	for i := 0; i < n; i++ {
		rec := memtrace.Record{
			Addr:  memtrace.Addr(rng.Intn(1<<14) * 64), // 1024 distinct pages
			Write: rng.Intn(3) == 0,
		}
		ops = p.Access(rec, ops).Ops
	}
}

// residentPages scans the engine's live sets and returns every cached
// page index with its dirty state.
func residentPages(p *Partitioned) map[uint64]bool {
	out := make(map[uint64]bool)
	e := p.engine
	for s := 0; s < e.liveSets; s++ {
		for w := 0; w < e.geom.Ways; w++ {
			if ent := e.tags.Slot(s, w); ent != nil && ent.Valid() {
				out[ent.Tag] = ent.Value.Dirty != 0
			}
		}
	}
	return out
}

// TestResizeShrinkNoStaleHitsAndSingleWriteback is the shrink half of
// the resize invariant: every page flushed out of a dying set (or
// purged into the grown memory region) must stop hitting, dirty pages
// must emit exactly one off-chip writeback in the transition ops, and
// clean pages none.
func TestResizeShrinkNoStaleHitsAndSingleWriteback(t *testing.T) {
	p := newTestPartition(t, 0, HashBandPartition{})
	fillPartition(p, 20_000, 7)
	before := residentPages(p)
	if len(before) == 0 {
		t.Fatal("no resident pages before resize")
	}

	ops := p.Resize(0.5, nil)
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after shrink: %v", err)
	}

	// Count off-chip writebacks per page emitted by the transition.
	wb := make(map[uint64]int)
	for _, op := range ops {
		if op.Level == OffChip && op.Write {
			wb[uint64(op.Addr)/uint64(p.pageBytes)]++
		}
	}
	for page, dirty := range before {
		n := wb[page]
		if dirty && gone(p, page) && n != 1 {
			t.Errorf("dirty page %#x flushed with %d writebacks, want exactly 1", page, n)
		}
		if !dirty && n != 0 {
			t.Errorf("clean page %#x emitted %d writebacks, want 0", page, n)
		}
	}

	// No stale hits: a flushed page must miss (or route to the memory
	// region with zero tag cycles) on its next access.
	after := residentPages(p)
	var scratch []Op
	for page := range before {
		if _, still := after[page]; still {
			continue
		}
		addr := memtrace.Addr(page * uint64(p.pageBytes))
		out := p.Access(memtrace.Record{Addr: addr}, scratch)
		scratch = out.Ops
		_, memRes := p.policy.Locate(page, p.memPages, p.totalPages)
		if out.Hit != memRes {
			t.Fatalf("page %#x after shrink: hit=%v memResident=%v (stale hit or lost region)", page, out.Hit, memRes)
		}
		if memRes && out.TagCycles != 0 {
			t.Fatalf("memory-region hit paid %d tag cycles, want 0", out.TagCycles)
		}
	}
	st := p.Partition()
	if st.Resizes != 1 || st.FlushedClean+st.FlushedDirty+st.PurgedPages == 0 {
		t.Fatalf("unexpected resize stats: %+v", st)
	}
}

// gone reports whether a page is no longer cached.
func gone(p *Partitioned, page uint64) bool {
	_, still := residentPages(p)[page]
	return !still
}

// TestResizeGrowMovesProportionalSlice is the grow half: shrinking the
// memory region back re-homes only the consistent-hash slice of cached
// pages, every surviving page keeps hitting, and the moved fraction
// tracks the capacity growth instead of a full remap.
func TestResizeGrowMovesProportionalSlice(t *testing.T) {
	p := newTestPartition(t, 50, HashBandPartition{})
	fillPartition(p, 20_000, 11)
	before := residentPages(p)
	if len(before) == 0 {
		t.Fatal("no resident pages before grow")
	}
	liveBefore := p.engine.LiveSets()

	p.Resize(0, nil) // all stacked capacity back to cache
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("invariants after grow: %v", err)
	}
	if p.engine.LiveSets() != p.engine.sets {
		t.Fatalf("grow to 0%% memory left %d/%d sets live", p.engine.LiveSets(), p.engine.sets)
	}

	st := p.Partition()
	after := residentPages(p)
	for page := range before {
		if _, still := after[page]; !still && st.DisplacedPages == 0 {
			t.Errorf("page %#x lost by grow without displacement", page)
		}
	}
	// Jump-hash consistency: doubling the sets should move roughly
	// half the residents — and certainly not all of them (a modulo
	// remap would move ~everything to different sets).
	frac := float64(st.MovedPages) / float64(len(before))
	want := 1 - float64(liveBefore)/float64(p.engine.LiveSets())
	if frac < want/2 || frac > want*1.5+0.1 {
		t.Errorf("grow moved %.2f of residents, want ≈%.2f (consistent-hash proportionality)", frac, want)
	}
}

// TestResizeOscillationKeepsInvariants stress-cycles the split across
// many fractions with traffic in between; the partition invariants
// must hold after every transition.
func TestResizeOscillationKeepsInvariants(t *testing.T) {
	for _, policy := range []PartitionPolicy{HashBandPartition{}, LowAddrPartition{}} {
		p := newTestPartition(t, 25, policy)
		fracs := []float64{0.75, 0.1, 0.5, 0, 0.9, 0.25}
		var ops []Op
		for i, f := range fracs {
			fillPartition(p, 5_000, int64(100+i))
			ops = p.Resize(f, ops[:0])
			if err := ValidateOps(ops); err != nil {
				t.Fatalf("%s: resize to %.2f emits invalid ops: %v", policy.Name(), f, err)
			}
			if err := p.CheckInvariants(); err != nil {
				t.Fatalf("%s: resize to %.2f: %v", policy.Name(), f, err)
			}
		}
	}
}

// TestMemResidentMonotone pins the partition policies' consistency
// contract: growing the memory region only ever adds resident pages.
func TestMemResidentMonotone(t *testing.T) {
	const totalPages = 1 << 10
	for _, policy := range []PartitionPolicy{HashBandPartition{}, LowAddrPartition{}} {
		for page := uint64(0); page < 4*totalPages; page += 7 {
			wasResident := false
			for memPages := int64(0); memPages < totalPages; memPages += 64 {
				slot, res := policy.Locate(page, memPages, totalPages)
				if wasResident && !res {
					t.Fatalf("%s: page %#x left the memory region as it grew to %d pages", policy.Name(), page, memPages)
				}
				wasResident = res
				if res && (slot < 0 || slot >= memPages) {
					t.Fatalf("%s: page %#x slot %d out of range [0,%d)", policy.Name(), page, slot, memPages)
				}
			}
		}
	}
}

// TestJumpHashConsistency pins the property ResizeSets relies on:
// growing the bucket count only moves keys into new buckets.
func TestJumpHashConsistency(t *testing.T) {
	for key := uint64(0); key < 10_000; key++ {
		prev := jumpHash(key, 1)
		if prev != 0 {
			t.Fatalf("jumpHash(%d, 1) = %d", key, prev)
		}
		for buckets := 2; buckets <= 256; buckets *= 2 {
			b := jumpHash(key, buckets)
			if b < 0 || b >= buckets {
				t.Fatalf("jumpHash(%d, %d) = %d out of range", key, buckets, b)
			}
			if b != prev && b < buckets/2 {
				t.Fatalf("jumpHash(%d, %d) moved from %d to old bucket %d", key, buckets, prev, b)
			}
			prev = b
		}
	}
}
