package dcache

import (
	"math/rand"
	"testing"

	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

func mustBlock(t *testing.T) *BlockCache {
	t.Helper()
	b, err := NewBlockCache(BlockCacheConfig{
		CapacityBytes:  1 << 20, // 512 rows x 30 blocks
		MissMapEntries: 1024,
		MissMapWays:    8,
		TagCycles:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBlockCacheConfigValidation(t *testing.T) {
	if _, err := NewBlockCache(BlockCacheConfig{CapacityBytes: 100, MissMapEntries: 8, MissMapWays: 8}); err == nil {
		t.Fatal("sub-row capacity accepted")
	}
	if _, err := NewBlockCache(BlockCacheConfig{CapacityBytes: 1 << 20, MissMapEntries: 10, MissMapWays: 8}); err == nil {
		t.Fatal("indivisible missmap accepted")
	}
}

func TestBlockCacheMissThenHit(t *testing.T) {
	b := mustBlock(t)
	out := b.Access(read(0x4000), nil)
	if out.Hit {
		t.Fatal("cold access hit")
	}
	if err := ValidateOps(out.Ops); err != nil {
		t.Fatal(err)
	}
	// Miss fetches exactly one 64B block off-chip.
	var offRead int
	for _, op := range out.Ops {
		if op.Level == OffChip && !op.Write {
			offRead += op.Bytes
		}
	}
	if offRead != 64 {
		t.Fatalf("miss fetched %d off-chip bytes", offRead)
	}

	out = b.Access(read(0x4000), nil)
	if !out.Hit {
		t.Fatal("refetched block missed")
	}
	// Hit = one compound in-DRAM access: 3 CAS under one activation
	// (tag read + data + tag update), modelled as a single 192B row op.
	if len(out.Ops) != 1 || out.Ops[0].Level != Stacked || out.Ops[0].Bytes != 192 {
		t.Fatalf("hit ops: %+v", out.Ops)
	}
	if out.TagCycles != 9 {
		t.Fatalf("MissMap latency = %d", out.TagCycles)
	}
}

func TestBlockCacheWriteMissInstallsWithoutFetch(t *testing.T) {
	b := mustBlock(t)
	out := b.Access(write(0x9000), nil)
	for _, op := range out.Ops {
		if op.Level == OffChip {
			t.Fatalf("write miss touched off-chip: %+v", op)
		}
	}
	if !b.Access(read(0x9000), nil).Hit {
		t.Fatal("installed write not present")
	}
}

func TestBlockCacheDirtyEviction(t *testing.T) {
	b := mustBlock(t)
	rows := b.rows
	// Fill one row set (30 ways) with dirty blocks, then overflow it.
	for i := 0; i <= DataBlocksPerRow; i++ {
		addr := memtrace.Addr(i * rows * 64) // same set every time
		b.Access(write(addr), nil)
	}
	c := b.Counters()
	if c.DirtyEvicts == 0 {
		t.Fatal("no dirty eviction after overfilling a set")
	}
}

func TestBlockCacheMissMapForcedEviction(t *testing.T) {
	b := mustBlock(t)
	// Touch more distinct 4KB regions than the MissMap can hold (at a
	// varying block offset so cached blocks spread across row sets);
	// the overflow must force-evict cached blocks.
	entries := b.missMap.Sets() * b.missMap.Ways()
	for i := 0; i < entries*2; i++ {
		b.Access(read(memtrace.Addr(i*regionBytes+(i%blocksPerRegion)*64)), nil)
	}
	if b.ForcedEvicts == 0 {
		t.Fatal("MissMap overflow produced no forced evictions")
	}
	// Invariant: every MissMap presence bit has a matching cached
	// block (Access panics on divergence; re-touch to exercise).
	for i := 0; i < entries*2; i += 7 {
		b.Access(read(memtrace.Addr(i*regionBytes)), nil)
	}
}

func TestBlockCacheMissMapConsistencyUnderRandomTraffic(t *testing.T) {
	b := mustBlock(t)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		addr := memtrace.Addr(rng.Intn(1<<20) * 64)
		rec := memtrace.Record{Addr: addr, Write: rng.Intn(4) == 0}
		out := b.Access(rec, nil) // panics on missmap/tag divergence
		if err := ValidateOps(out.Ops); err != nil {
			t.Fatal(err)
		}
	}
	// Cross-check: every presence bit in the MissMap corresponds to a
	// valid block tag in the in-DRAM tag model.
	checked := 0
	b.missMap.Range(func(set int, e *sram.Entry[uint64]) {
		region := e.Tag*uint64(b.mmSets) + uint64(set)
		for i := 0; i < blocksPerRegion; i++ {
			if e.Value&(1<<i) == 0 {
				continue
			}
			addr := memtrace.Addr(region*regionBytes + uint64(i*64))
			bset, btag, _ := b.blockIndex(addr)
			if b.blocks.Peek(bset, btag) == nil {
				t.Fatalf("presence bit without cached block at %#x", addr)
			}
			checked++
		}
	})
	if checked == 0 {
		t.Fatal("consistency cross-check saw no blocks")
	}
}

func TestMissMapParams(t *testing.T) {
	e, w, l := MissMapParams(64)
	if e != 192*1024 || w != 24 || l != 9 {
		t.Fatalf("64MB params: %d %d %d", e, w, l)
	}
	e, w, l = MissMapParams(512)
	if e != 288*1024 || w != 36 || l != 11 {
		t.Fatalf("512MB params: %d %d %d", e, w, l)
	}
}

func TestBlockMetadataFormula(t *testing.T) {
	// Paper Table 4: 192K-entry MissMap = 1.95MB.
	mb := float64(BlockMetadataBits(192*1024, 24)) / 8 / (1 << 20)
	if mb < 1.8 || mb > 2.2 {
		t.Fatalf("MissMap storage = %.2fMB, want ~1.95MB", mb)
	}
}

func TestHotPageBypassesUntilHot(t *testing.T) {
	h := mustHot(t)
	addr := memtrace.Addr(0x10000)
	var bypasses int
	for i := 0; i < 10; i++ {
		out := h.Access(read(addr), nil)
		if out.Bypass {
			bypasses++
		}
		if err := ValidateOps(out.Ops); err != nil {
			t.Fatal(err)
		}
	}
	if bypasses == 0 {
		t.Fatal("no bypasses before the page got hot")
	}
	if bypasses >= 10 {
		t.Fatal("page never became hot")
	}
	// Once allocated, accesses hit.
	if !h.Access(read(addr), nil).Hit {
		t.Fatal("hot page not resident")
	}
}

func mustHot(t *testing.T) *HotPageCache {
	t.Helper()
	h, err := NewHotPageCache(HotPageConfig{
		Geometry:      PageGeometry{CapacityBytes: 1 << 20, PageBytes: 4096, Ways: 16},
		TagCycles:     6,
		FilterEntries: 1024,
		FilterWays:    8,
		Threshold:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestCoverageCurve(t *testing.T) {
	counts := map[uint64]uint64{1: 50, 2: 30, 3: 15, 4: 5}
	sizes := CoverageCurve(counts, 4096, []float64{0.5, 0.8, 1.0})
	if sizes[0] != 4096 { // hottest page covers 50%
		t.Fatalf("50%% coverage = %d bytes", sizes[0])
	}
	if sizes[1] != 2*4096 { // two pages cover 80%
		t.Fatalf("80%% coverage = %d bytes", sizes[1])
	}
	if sizes[2] != 4*4096 {
		t.Fatalf("100%% coverage = %d bytes", sizes[2])
	}
	if got := CoverageCurve(nil, 4096, []float64{0.5}); got[0] != 0 {
		t.Fatalf("empty counts: %d", got[0])
	}
}
