package dcache

import "fpcache/internal/memtrace"

// This file defines the policy vocabulary of the composable cache
// engine (engine.go). A page-granularity DRAM cache decomposes into
// three orthogonal axes:
//
//   - allocation granularity (AllocPolicy): which blocks a triggering
//     page miss fetches — the whole page, the demanded block only, or
//     a predicted footprint;
//   - mapping / tag placement (MappingPolicy): where a page's blocks
//     land in the stacked array — packed into one DRAM row
//     (page-direct) or spread across rows (block-style), possibly
//     chosen per page (hybrid, after Chi et al.'s Gemini);
//   - replacement / fill gating (gate.go): whether a missing page is
//     admitted at all — always (LRU), after a hotness threshold
//     (CHOP), or only when hotter than its victim (after Yu et al.'s
//     Banshee frequency-gated fill).
//
// The paper's monolithic designs are fixed points of this space; the
// golden parity test (internal/system) proves the engine reproduces
// them byte-for-byte, and everything between the fixed points becomes
// reachable from a spec string ("footprint+banshee").

// AllocDecision is an AllocPolicy's verdict on a triggering page miss.
type AllocDecision struct {
	// Footprint is the block mask to fetch; the demanded block's bit is
	// always set.
	Footprint uint64
	// Bypass serves the miss straight from memory without allocating.
	Bypass bool
	// FHTPtr is an opaque predictor handle stored in the page's tag
	// entry and handed back to the policy at eviction (NoFHTPtr when
	// the policy keeps no feedback state).
	FHTPtr int32
}

// NoFHTPtr marks a page with no predictor link.
const NoFHTPtr int32 = -1

// AllocPolicy decides allocation granularity: what a triggering page
// miss fetches, what happens on block misses to resident pages, and
// what the policy learns from evictions.
type AllocPolicy interface {
	// Name identifies the policy in specs and reports.
	Name() string
	// OnPageMiss decides the fetch for a triggering miss. fullMask has
	// one bit per block of the page.
	OnPageMiss(rec memtrace.Record, pageIdx uint64, block int, fullMask uint64) AllocDecision
	// OnBlockMiss observes an access to a resident page whose block was
	// not fetched (the underprediction cost of partial allocation).
	OnBlockMiss(rec memtrace.Record)
	// OnEvict receives the evicted page's metadata for feedback and
	// accuracy accounting before the engine emits writebacks.
	OnEvict(meta *PageMeta)
	// MetaBitsPerPage is the per-page SRAM cost beyond the shared
	// address tag, valid bit, and LRU state (Table 4 accounting).
	MetaBitsPerPage(blocksPerPage int) int
	// TableBits is the policy's own SRAM table budget (FHT, ST, ...).
	TableBits(blocksPerPage int) int64
}

// PageAlloc fetches whole pages (§2.3's conventional page-based
// cache): maximal locality and hit ratio, maximal overfetch.
type PageAlloc struct{}

// Name implements AllocPolicy.
func (PageAlloc) Name() string { return "page" }

// OnPageMiss implements AllocPolicy: fetch everything.
func (PageAlloc) OnPageMiss(rec memtrace.Record, pageIdx uint64, block int, fullMask uint64) AllocDecision {
	return AllocDecision{Footprint: fullMask, FHTPtr: NoFHTPtr}
}

// OnBlockMiss implements AllocPolicy. Full pages never take block
// misses; nothing to account.
func (PageAlloc) OnBlockMiss(memtrace.Record) {}

// OnEvict implements AllocPolicy.
func (PageAlloc) OnEvict(*PageMeta) {}

// MetaBitsPerPage implements AllocPolicy: a dirty vector only (every
// block is valid while the page is resident, Table 4's page-based
// row).
func (PageAlloc) MetaBitsPerPage(blocksPerPage int) int { return blocksPerPage }

// TableBits implements AllocPolicy.
func (PageAlloc) TableBits(int) int64 { return 0 }

// DemandAlloc fetches only the demanded block (§3.1's sub-blocked
// bound): zero overfetch, a miss on every first touch.
type DemandAlloc struct{}

// Name implements AllocPolicy.
func (DemandAlloc) Name() string { return "subblock" }

// OnPageMiss implements AllocPolicy: fetch the demanded block alone.
func (DemandAlloc) OnPageMiss(rec memtrace.Record, pageIdx uint64, block int, fullMask uint64) AllocDecision {
	return AllocDecision{Footprint: 1 << block, FHTPtr: NoFHTPtr}
}

// OnBlockMiss implements AllocPolicy.
func (DemandAlloc) OnBlockMiss(memtrace.Record) {}

// OnEvict implements AllocPolicy.
func (DemandAlloc) OnEvict(*PageMeta) {}

// MetaBitsPerPage implements AllocPolicy: valid and dirty vectors
// (Table 4's sub-blocked row).
func (DemandAlloc) MetaBitsPerPage(blocksPerPage int) int { return 2 * blocksPerPage }

// TableBits implements AllocPolicy.
func (DemandAlloc) TableBits(int) int64 { return 0 }

// MappingPolicy decides tag-to-frame placement in the stacked array:
// whether a page's blocks pack into one DRAM row or spread across
// rows, and at which addresses.
type MappingPolicy interface {
	// Name identifies the policy in specs and reports.
	Name() string
	// Place decides, at allocation time, whether the page is spread
	// across rows. The decision is stored in the page's metadata so
	// hits and evictions address the same layout.
	Place(footprint uint64) bool
	// BlockAddr returns the stacked-DRAM address of block b of frame f
	// under the page's placement.
	BlockAddr(frame int64, block int, spread bool) memtrace.Addr
	// SpreadsRows reports whether the policy spreads every page across
	// stacked rows, leaving the stacked access stream with no
	// row-buffer locality. DRAM config selection keys off it: a
	// spreading policy gets the block design's close-page stacked
	// policy, whatever the composite is called.
	SpreadsRows() bool
}

// PageDirectMapping packs each frame into consecutive bytes — one
// stacked row for 2KB pages (§4.1): whole-page transfers ride a
// single activation.
type PageDirectMapping struct {
	// PageBytes is the frame stride.
	PageBytes int
}

// Name implements MappingPolicy.
func (PageDirectMapping) Name() string { return "pagedirect" }

// Place implements MappingPolicy: never spread.
func (PageDirectMapping) Place(uint64) bool { return false }

// BlockAddr implements MappingPolicy.
func (m PageDirectMapping) BlockAddr(frame int64, block int, spread bool) memtrace.Addr {
	return memtrace.Addr(frame*int64(m.PageBytes) + int64(block)*64)
}

// SpreadsRows implements MappingPolicy: packed frames keep row
// locality.
func (PageDirectMapping) SpreadsRows() bool { return false }

// BlockRowMapping spreads every page block-style: block b of every
// frame lives in a dedicated address region, so consecutive blocks of
// one page land in different stacked rows — the Loh-Hill placement's
// latency structure applied to page-granularity tags.
type BlockRowMapping struct {
	// Frames is the total frame count (capacity / page size).
	Frames int64
}

// Name implements MappingPolicy.
func (BlockRowMapping) Name() string { return "blockrow" }

// Place implements MappingPolicy: always spread.
func (BlockRowMapping) Place(uint64) bool { return true }

// BlockAddr implements MappingPolicy.
func (m BlockRowMapping) BlockAddr(frame int64, block int, spread bool) memtrace.Addr {
	return memtrace.Addr((int64(block)*m.Frames + frame) * 64)
}

// SpreadsRows implements MappingPolicy: every page spreads, so the
// stacked stream has no row locality to keep open.
func (BlockRowMapping) SpreadsRows() bool { return true }

// HybridMapping chooses placement per page from its predicted
// footprint, after Gemini's hybrid block/page mappings: dense pages
// pack into rows (page transfers stay single-activation), sparse
// pages spread block-style so a near-empty page does not pin a whole
// row's locality.
type HybridMapping struct {
	PageBytes int
	Frames    int64
	// SparseMax is the largest footprint (in blocks) still considered
	// sparse; zero means a quarter of the page.
	SparseMax int
}

// Name implements MappingPolicy.
func (HybridMapping) Name() string { return "hybrid" }

// Place implements MappingPolicy: spread sparse pages.
func (m HybridMapping) Place(footprint uint64) bool {
	max := m.SparseMax
	if max == 0 {
		max = m.PageBytes / 64 / 4
	}
	return popcount(footprint) <= max
}

// BlockAddr implements MappingPolicy.
func (m HybridMapping) BlockAddr(frame int64, block int, spread bool) memtrace.Addr {
	if spread {
		return memtrace.Addr((int64(block)*m.Frames + frame) * 64)
	}
	return memtrace.Addr(frame*int64(m.PageBytes) + int64(block)*64)
}

// SpreadsRows implements MappingPolicy: dense pages stay packed, so
// the stream retains enough locality for open-page policy.
func (HybridMapping) SpreadsRows() bool { return false }
