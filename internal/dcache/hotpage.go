package dcache

import (
	"sort"

	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// HotPageCache models the CHOP-style filter cache the paper evaluates
// in §6.7: only pages predicted to be "hot" (frequently accessed) are
// allocated and fetched at page granularity; everything else bypasses
// the cache one block at a time. Hotness is learned from each page's
// own access history in a small filter table — which is exactly what
// fails on scale-out datasets that are too vast to revisit (§6.7).
type HotPageCache struct {
	inner  *PageCache
	filter *sram.SetAssoc[uint32]
	fSets  int
	thresh uint32
	ctr    Counters
}

// HotPageConfig configures the design. The paper found 4KB pages
// optimal for CHOP.
type HotPageConfig struct {
	Geometry      PageGeometry
	TagCycles     int
	FilterEntries int
	FilterWays    int
	// Threshold is the access count at which a page becomes hot.
	Threshold uint32
}

// NewHotPageCache builds the design.
func NewHotPageCache(cfg HotPageConfig) (*HotPageCache, error) {
	inner, err := NewPageCache(PageCacheConfig{Geometry: cfg.Geometry, TagCycles: cfg.TagCycles})
	if err != nil {
		return nil, err
	}
	if cfg.FilterEntries <= 0 || cfg.FilterWays <= 0 || cfg.FilterEntries%cfg.FilterWays != 0 {
		cfg.FilterEntries, cfg.FilterWays = 64*1024, 16
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = 8
	}
	return &HotPageCache{
		inner:  inner,
		filter: sram.NewSetAssoc[uint32](cfg.FilterEntries/cfg.FilterWays, cfg.FilterWays),
		fSets:  cfg.FilterEntries / cfg.FilterWays,
		thresh: cfg.Threshold,
	}, nil
}

// Name implements Design.
func (h *HotPageCache) Name() string { return "hotpage" }

// Counters implements Design.
func (h *HotPageCache) Counters() Counters { return h.ctr }

// MetadataBits implements Design: inner tags plus filter counters.
func (h *HotPageCache) MetadataBits() int64 {
	entries := int64(h.filter.Sets() * h.filter.Ways())
	return h.inner.MetadataBits() + entries*(28+8)
}

// Access implements Design.
func (h *HotPageCache) Access(rec memtrace.Record, ops []Op) Outcome {
	h.ctr.record(rec)
	pageIdx, _ := pageAddrOf(rec.Addr, h.inner.geom.PageBytes)
	set := int(pageIdx % uint64(h.inner.sets))
	tag := pageIdx / uint64(h.inner.sets)

	if h.inner.tags.Peek(set, tag) != nil {
		// Resident page: delegate (counts as hit inside inner).
		out := h.inner.Access(rec, ops)
		h.ctr.Hits++
		return out
	}

	// Cold page: count it in the filter; allocate only when hot.
	fSet := int(pageIdx % uint64(h.fSets))
	fTag := pageIdx / uint64(h.fSets)
	e := h.filter.Lookup(fSet, fTag)
	if e == nil {
		h.filter.Insert(fSet, fTag, 1)
	} else {
		e.Value++
	}
	h.ctr.Misses++
	if e != nil && e.Value >= h.thresh {
		// Hot: allocate through the page cache (it will fetch the
		// whole page).
		out := h.inner.Access(rec, ops)
		out.Hit = false
		return out
	}
	h.ctr.Bypasses++
	ops = append(ops[:0], Op{
		Level: OffChip, Addr: rec.Addr, Bytes: 64,
		Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
	})
	return Outcome{Bypass: true, TagCycles: h.inner.tagCycles, Ops: ops}
}

// CoverageCurve computes Figure 12's offline analysis: given
// per-page access counts, the minimum ideal cache size (in bytes,
// pageBytes pages) needed to capture each fraction of total accesses,
// assuming a perfect predictor and ideal replacement (§6.7).
func CoverageCurve(counts map[uint64]uint64, pageBytes int, fractions []float64) []int64 {
	tot := uint64(0)
	sorted := make([]uint64, 0, len(counts))
	for _, c := range counts {
		sorted = append(sorted, c)
		tot += c
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })

	out := make([]int64, len(fractions))
	cum := uint64(0)
	pageN := 0
	for i, f := range fractions {
		want := uint64(f * float64(tot))
		for cum < want && pageN < len(sorted) {
			cum += sorted[pageN]
			pageN++
		}
		out[i] = int64(pageN) * int64(pageBytes)
	}
	return out
}
