package dcache

import (
	"fmt"

	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// Engine is the composed page-granularity DRAM cache: one generic
// Design whose behaviour is the product of an allocation policy, a
// mapping policy, and (optionally, via gate.go) a fill gate. The
// paper's page-based, sub-blocked, and Footprint designs are fixed
// policy combinations of this engine — proven byte-identical to the
// monolithic reference implementations by the golden parity test in
// internal/system — and hybrids like footprint+banshee compose from
// the same parts.
//
// The access flow is the superset of the monoliths' flows (§2.3,
// §3.1, §4.2-4.4): tag lookup; block hit served from the stacked
// array; block miss on a resident page demand-fetched alone; page
// miss consulted with the allocation policy (which may bypass),
// then victim eviction with policy feedback and a single footprint
// fetch.
type Engine struct {
	name      string
	geom      PageGeometry
	sets      int
	bpp       int
	tagCycles int
	full      uint64
	tags      *sram.SetAssoc[PageMeta]
	alloc     AllocPolicy
	mapping   MappingPolicy
	ctr       Counters

	// consistent selects jump-consistent-hash set indexing instead of
	// modulo indexing. Consistent engines store the full page index as
	// the tag (the set is not arithmetically recoverable) and may run
	// with fewer live sets than the tag array holds — the mechanism
	// behind run-time partition resizing (partition.go): growing or
	// shrinking liveSets relocates only the proportional slice of
	// pages, never the whole tag space.
	consistent bool
	// liveSets is the currently indexable prefix of the set array;
	// always equal to sets for modulo engines.
	liveSets int

	// OnEvict, if set, observes eviction densities (Fig. 4).
	OnEvict DensityObserver
}

// EngineConfig assembles an Engine.
type EngineConfig struct {
	// Name is the design name reported by Name(); canonical
	// compositions use the paper design's name ("page", "footprint"),
	// composites their spec string ("footprint+banshee").
	Name      string
	Geometry  PageGeometry
	TagCycles int
	Alloc     AllocPolicy
	Mapping   MappingPolicy
	// Consistent selects jump-consistent-hash set indexing, making the
	// engine resizable at run time (ResizeSets). Partitioned stacked
	// designs require it; fixed-capacity designs keep the cheaper
	// modulo indexing.
	Consistent bool
}

// NewEngine builds the composed design.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	sets, bpp, err := cfg.Geometry.Validate()
	if err != nil {
		return nil, err
	}
	if cfg.Alloc == nil || cfg.Mapping == nil {
		return nil, fmt.Errorf("dcache: engine %q needs both an allocation and a mapping policy", cfg.Name)
	}
	full := ^uint64(0)
	if bpp < 64 {
		full = (uint64(1) << bpp) - 1
	}
	return &Engine{
		name:       cfg.Name,
		geom:       cfg.Geometry,
		sets:       sets,
		bpp:        bpp,
		tagCycles:  cfg.TagCycles,
		full:       full,
		tags:       sram.NewSetAssoc[PageMeta](sets, cfg.Geometry.Ways),
		alloc:      cfg.Alloc,
		mapping:    cfg.Mapping,
		consistent: cfg.Consistent,
		liveSets:   sets,
	}, nil
}

// locate maps a page index onto the tag array: jump-consistent hash
// over the live sets (full page index as tag) for consistent engines,
// modulo indexing (tag = pageIdx / sets) otherwise.
func (e *Engine) locate(pageIdx uint64) (set int, tag uint64) {
	if e.consistent {
		return jumpHash(pageIdx, e.liveSets), pageIdx
	}
	return int(pageIdx % uint64(e.sets)), pageIdx / uint64(e.sets)
}

// pageIdxOf inverts locate: the page index a (tag, set) pair stands
// for.
func (e *Engine) pageIdxOf(tag uint64, set int) uint64 {
	if e.consistent {
		return tag
	}
	return tag*uint64(e.sets) + uint64(set)
}

// jumpHash is Lamping–Veach jump consistent hashing: a uniform
// key→bucket map with the resize property the partition subsystem
// leans on — growing from n to m buckets moves only keys whose new
// bucket is in [n, m), and every key it moves lands in a new bucket;
// shrinking is the exact inverse. No state, no allocation, O(ln n).
func jumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// Name implements Design.
func (e *Engine) Name() string { return e.name }

// Counters implements Design.
func (e *Engine) Counters() Counters { return e.ctr }

// Alloc exposes the allocation policy (the system layer extracts
// predictor statistics through it).
func (e *Engine) Alloc() AllocPolicy { return e.alloc }

// Mapping exposes the mapping policy.
func (e *Engine) Mapping() MappingPolicy { return e.mapping }

// Geometry returns the engine's page geometry.
func (e *Engine) Geometry() PageGeometry { return e.geom }

// TagCycles returns the SRAM tag lookup latency.
func (e *Engine) TagCycles() int { return e.tagCycles }

// MetadataBits implements Design: the shared tag array (address tag,
// page-valid bit, LRU) plus the allocation policy's per-page vectors
// and tables — reproducing each paper design's Table 4 row.
func (e *Engine) MetadataBits() int64 {
	pages := e.geom.CapacityBytes / int64(e.geom.PageBytes)
	per := int64(addressTagBits(e.geom.PageBytes, e.sets) + 1 + lruBits(e.geom.Ways) + e.alloc.MetaBitsPerPage(e.bpp))
	return pages*per + e.alloc.TableBits(e.bpp)
}

// frame returns the frame index of a (set, way) pair.
func (e *Engine) frame(set, way int) int64 {
	return int64(set)*int64(e.geom.Ways) + int64(way)
}

// Resident reports whether the page holding addr is allocated,
// without touching replacement state (fill gates consult it before
// delegating).
func (e *Engine) Resident(addr memtrace.Addr) bool {
	pageIdx, _ := pageAddrOf(addr, e.geom.PageBytes)
	set, tag := e.locate(pageIdx)
	return e.tags.Peek(set, tag) != nil
}

// VictimFreq returns the residency access count of the page that an
// allocation for addr would evict — zero when a free way exists.
// Frequency-gated fills compare it against the candidate's count.
func (e *Engine) VictimFreq(addr memtrace.Addr) uint32 {
	pageIdx, _ := pageAddrOf(addr, e.geom.PageBytes)
	set, _ := e.locate(pageIdx)
	v := e.tags.Victim(set)
	if !v.Valid() {
		return 0
	}
	return v.Value.Freq
}

// Access implements Design.
func (e *Engine) Access(rec memtrace.Record, ops []Op) Outcome {
	e.ctr.record(rec)
	pageIdx, block := pageAddrOf(rec.Addr, e.geom.PageBytes)
	set, tag := e.locate(pageIdx)
	bit := uint64(1) << block

	if ent := e.tags.Lookup(set, tag); ent != nil {
		ent.Value.Freq++
		frame := e.frame(set, ent.Way())
		addr := e.mapping.BlockAddr(frame, block, ent.Value.Spread)
		if ent.Value.Valid&bit != 0 {
			// Block hit: serve from the stacked array.
			e.ctr.Hits++
			ent.Value.Demanded |= bit
			if rec.Write {
				ent.Value.Dirty |= bit
			}
			ops = append(ops[:0], Op{
				Level: Stacked, Addr: addr, Bytes: 64,
				Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
			})
			return Outcome{Hit: true, TagCycles: e.tagCycles, Ops: ops}
		}
		// Resident page, block absent (underprediction): demand-fetch
		// the block alone; a write carries its own 64B block.
		e.ctr.Misses++
		e.alloc.OnBlockMiss(rec)
		ent.Value.Valid |= bit
		ent.Value.Demanded |= bit
		if rec.Write {
			ent.Value.Dirty |= bit
			ops = append(ops[:0], Op{Level: Stacked, Addr: addr, Bytes: 64, Write: true, DependsOn: NoDep})
			return Outcome{TagCycles: e.tagCycles, Ops: ops}
		}
		ops = append(ops[:0],
			Op{Level: OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: NoDep},
			Op{Level: Stacked, Addr: addr, Bytes: 64, Write: true, DependsOn: 0},
		)
		return Outcome{TagCycles: e.tagCycles, Ops: ops}
	}

	// Triggering miss: ask the allocation policy what to fetch.
	e.ctr.Misses++
	dec := e.alloc.OnPageMiss(rec, pageIdx, block, e.full)
	if dec.Bypass {
		e.ctr.Bypasses++
		ops = append(ops[:0], Op{
			Level: OffChip, Addr: rec.Addr, Bytes: 64,
			Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
		})
		return Outcome{Bypass: true, TagCycles: e.tagCycles, Ops: ops}
	}

	// Allocate: evict the victim (with policy feedback), then fetch
	// the footprint in one shot.
	ops = ops[:0]
	victim := e.tags.Victim(set)
	frame := e.frame(set, victim.Way())
	if victim.Valid() {
		ops = e.evict(set, victim, frame, ops)
	}

	footprint := dec.Footprint | bit
	spread := e.mapping.Place(footprint)
	ops = e.fetch(rec, pageIdx, block, frame, footprint, spread, ops)

	meta := PageMeta{
		Valid: footprint, Demanded: bit,
		FHTPtr: dec.FHTPtr, Predicted: footprint,
		Freq: 1, Spread: spread,
	}
	if rec.Write {
		meta.Dirty = bit
	}
	e.tags.Insert(set, tag, meta)
	e.ctr.PageAllocs++
	return Outcome{TagCycles: e.tagCycles, Ops: ops}
}

// LiveSets returns the number of currently indexable sets.
func (e *Engine) LiveSets() int { return e.liveSets }

// Consistent reports whether the engine uses resizable
// consistent-hash set indexing.
func (e *Engine) Consistent() bool { return e.consistent }

// ResizeDelta summarizes what one ResizeSets call did.
type ResizeDelta struct {
	// FlushedClean / FlushedDirty count pages flushed out of dying
	// sets on a shrink (dirty ones emitted a writeback).
	FlushedClean, FlushedDirty int
	// Moved counts pages re-homed into newly live sets on a grow.
	Moved int
	// Displaced counts resident pages evicted because a moved page
	// overflowed its destination set.
	Displaced int
}

// ResizeSets changes the live set count of a consistent-hash engine
// at run time, appending the transition's DRAM operations to ops.
//
// Shrink (newSets < live): every page in a dying set is flushed —
// clean pages are invalidated, dirty pages emit their writeback
// (through the normal eviction path, so predictor feedback and
// eviction counters stay truthful). Jump-hash monotonicity guarantees
// pages in surviving sets keep their set, so only the proportional
// slice of sets is touched.
//
// Grow (newSets > live): the tag array is scanned and every page
// whose hash now lands in a new set is moved there — valid blocks
// migrate frame-to-frame inside the stacked array (one read + one
// write span for packed pages, per-block pairs for spread ones). By
// the same monotonicity, movers only ever land in new sets; a
// destination overflow evicts its victim through the normal path.
//
// Modulo engines and out-of-range sizes are a no-op. The partition
// invariant test (partition_test.go) pins that no stale hit survives
// a shrink and every dirty page is written back exactly once.
func (e *Engine) ResizeSets(newSets int, ops []Op) ([]Op, ResizeDelta) {
	var d ResizeDelta
	if !e.consistent || newSets < 1 || newSets > e.sets || newSets == e.liveSets {
		return ops, d
	}
	if newSets < e.liveSets {
		for s := newSets; s < e.liveSets; s++ {
			for w := 0; w < e.geom.Ways; w++ {
				ent := e.tags.Slot(s, w)
				if ent == nil || !ent.Valid() {
					continue
				}
				if ent.Value.Dirty != 0 {
					d.FlushedDirty++
				} else {
					d.FlushedClean++
				}
				ops = e.evict(s, ent, e.frame(s, w), ops)
				e.tags.Invalidate(s, ent.Tag)
			}
		}
		e.liveSets = newSets
		return ops, d
	}
	old := e.liveSets
	e.liveSets = newSets
	for s := 0; s < old; s++ {
		for w := 0; w < e.geom.Ways; w++ {
			ent := e.tags.Slot(s, w)
			if ent == nil || !ent.Valid() {
				continue
			}
			page := ent.Tag
			ns := jumpHash(page, newSets)
			if ns == s {
				continue
			}
			meta := ent.Value
			oldFrame := e.frame(s, w)
			e.tags.Invalidate(s, page)
			victim := e.tags.Victim(ns)
			if victim.Valid() {
				ops = e.evict(ns, victim, e.frame(ns, victim.Way()), ops)
				d.Displaced++
			}
			newFrame := e.frame(ns, victim.Way())
			ops = e.moveOps(meta, oldFrame, newFrame, ops)
			e.tags.Insert(ns, page, meta)
			d.Moved++
		}
	}
	return ops, d
}

// moveOps emits the stacked-to-stacked migration of a page's valid
// blocks from one frame to another: a single read + write span for
// packed frames, per-block pairs for row-spread ones. Background
// traffic only — nothing depends on it.
func (e *Engine) moveOps(meta PageMeta, oldFrame, newFrame int64, ops []Op) []Op {
	n := popcount(meta.Valid)
	if n == 0 {
		return ops
	}
	if !meta.Spread {
		rd := len(ops)
		ops = append(ops,
			Op{Level: Stacked, Addr: e.mapping.BlockAddr(oldFrame, 0, false), Bytes: n * 64, DependsOn: NoDep},
			Op{Level: Stacked, Addr: e.mapping.BlockAddr(newFrame, 0, false), Bytes: n * 64, Write: true, DependsOn: rd},
		)
		return ops
	}
	for rem := meta.Valid; rem != 0; rem &= rem - 1 {
		b := trailingZeros(rem)
		rd := len(ops)
		ops = append(ops,
			Op{Level: Stacked, Addr: e.mapping.BlockAddr(oldFrame, b, true), Bytes: 64, DependsOn: NoDep},
			Op{Level: Stacked, Addr: e.mapping.BlockAddr(newFrame, b, true), Bytes: 64, Write: true, DependsOn: rd},
		)
	}
	return ops
}

// fetch emits the footprint transfer: the demanded block first
// (critical, unless a writeback carries its own data), the remaining
// predicted blocks streaming from the page's off-chip row, then the
// fill into the stacked array — one span for packed frames, one op
// per block for row-spread frames.
func (e *Engine) fetch(rec memtrace.Record, pageIdx uint64, block int, frame int64, footprint uint64, spread bool, ops []Op) []Op {
	n := popcount(footprint)
	crit := NoDep
	if !rec.Write {
		crit = len(ops)
		ops = append(ops, Op{Level: OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: NoDep})
	}
	if n == 1 {
		ops = append(ops, Op{Level: Stacked, Addr: e.mapping.BlockAddr(frame, block, spread), Bytes: 64, Write: true, DependsOn: crit})
		return ops
	}
	rest := len(ops)
	pageBase := memtrace.Addr(pageIdx * uint64(e.geom.PageBytes))
	ops = append(ops, Op{Level: OffChip, Addr: pageBase, Bytes: (n - 1) * 64, DependsOn: crit})
	if !spread {
		ops = append(ops, Op{Level: Stacked, Addr: e.mapping.BlockAddr(frame, 0, false), Bytes: n * 64, Write: true, DependsOn: rest})
		return ops
	}
	for rem := footprint; rem != 0; rem &= rem - 1 {
		b := trailingZeros(rem)
		ops = append(ops, Op{Level: Stacked, Addr: e.mapping.BlockAddr(frame, b, true), Bytes: 64, Write: true, DependsOn: rest})
	}
	return ops
}

// evict retires a victim page: density observation, allocation-policy
// feedback (predictor accounting), and dirty writebacks — a packed
// frame streams its dirty blocks in one span, a spread frame reads
// them row by row.
func (e *Engine) evict(set int, victim *sram.Entry[PageMeta], frame int64, ops []Op) []Op {
	e.ctr.PageEvicts++
	v := &victim.Value
	if e.OnEvict != nil {
		e.OnEvict(popcount(v.Demanded), e.bpp)
	}
	e.alloc.OnEvict(v)
	if v.Dirty == 0 {
		return ops
	}
	e.ctr.DirtyEvicts++
	n := popcount(v.Dirty)
	victimBase := memtrace.Addr(e.pageIdxOf(victim.Tag, set)) * memtrace.Addr(e.geom.PageBytes)
	rd := len(ops)
	if !v.Spread {
		ops = append(ops, Op{Level: Stacked, Addr: e.mapping.BlockAddr(frame, 0, false), Bytes: n * 64, DependsOn: NoDep})
	} else {
		for rem := v.Dirty; rem != 0; rem &= rem - 1 {
			b := trailingZeros(rem)
			ops = append(ops, Op{Level: Stacked, Addr: e.mapping.BlockAddr(frame, b, true), Bytes: 64, DependsOn: NoDep})
		}
	}
	ops = append(ops, Op{Level: OffChip, Addr: victimBase, Bytes: n * 64, Write: true, DependsOn: rd})
	return ops
}
