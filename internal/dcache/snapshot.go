package dcache

import (
	"fmt"
	"io"

	"fpcache/internal/fault"
	"fpcache/internal/snap"
)

// This file implements warm-state snapshot/restore for every design
// BuildDesign can produce. A snapshot captures the complete functional
// state of a design — tag arrays with exact LRU ordering, counters,
// policy tables (FHT, ST, hot-page filter), and the partition split —
// so a restored design replays any future reference stream
// byte-identically to the design that was snapshotted.
//
// Wire shape: a versioned snap envelope wrapping tagged sections. Each
// component writes an identity tag plus its configuration fingerprint
// and validates both on load, so restoring a snapshot into a design
// built from a different spec fails loudly instead of silently
// diverging.

// SnapshotVersion is the warm-state snapshot format version; bump it
// whenever any component's serialized layout changes. Content-keyed
// snapshot caches include it in their keys, so a version bump simply
// invalidates old cache entries. The fplint snapmeta analyzer pins the
// serialized structs' field layout to the fingerprint below; if it
// fires, update the codec, bump this const, and refresh the directive.
//
//fplint:snapfields 0x21ff85e3
const SnapshotVersion = 1

// snapshotKind is the envelope kind of a standalone design snapshot.
const snapshotKind = "fpcache-design"

// Snapshotter is implemented by designs whose warm state can be
// serialized and restored. Restore must only be called on a freshly
// built design of the same spec; it replaces all functional state.
type Snapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// DesignState is the composition-level face of the snapshot subsystem:
// SaveState/LoadState serialize a design's state as tagged sections
// inside an envelope some caller owns, which is how wrapper designs
// (gates, partitions) and the system layer's warm-state container
// embed component states in one stream. Snapshot/Restore (Snapshotter)
// are the standalone form — an envelope around SaveState/LoadState.
type DesignState interface {
	Design
	SaveState(*snap.Writer)
	LoadState(*snap.Reader) error
}

// SnapshotDesign writes d's warm state to w as a standalone snapshot.
// Designs that carry no serializable state report an error.
func SnapshotDesign(w io.Writer, d Design) error {
	ds, ok := d.(DesignState)
	if !ok {
		return fmt.Errorf("dcache: design %q does not support snapshots", d.Name())
	}
	return snap.WriteEnvelope(w, snapshotKind, SnapshotVersion, func(sw *snap.Writer) {
		sw.String(d.Name())
		ds.SaveState(sw)
	})
}

// RestoreDesign restores a standalone snapshot into a freshly built d,
// validating the envelope version and the design name.
func RestoreDesign(r io.Reader, d Design) error {
	ds, ok := d.(DesignState)
	if !ok {
		return fmt.Errorf("dcache: design %q does not support snapshots", d.Name())
	}
	return snap.ReadEnvelope(r, snapshotKind, SnapshotVersion, func(sr *snap.Reader) error {
		if name := sr.String(); sr.Err() == nil && name != d.Name() {
			return fmt.Errorf("dcache: snapshot of design %q, want %q: %w", name, d.Name(), fault.ErrCorruptSnapshot)
		}
		return ds.LoadState(sr)
	})
}

// PolicyState is implemented by allocation policies that carry warm
// state (the footprint predictor's FHT and ST). Stateless policies
// simply do not implement it.
type PolicyState interface {
	SaveState(*snap.Writer)
	LoadState(*snap.Reader) error
}

// saveCounters / loadCounters serialize Counters in declaration order.
func saveCounters(w *snap.Writer, c *Counters) {
	w.U64(c.Reads)
	w.U64(c.Writes)
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.Bypasses)
	w.U64(c.PageAllocs)
	w.U64(c.PageEvicts)
	w.U64(c.DirtyEvicts)
}

func loadCounters(r *snap.Reader, c *Counters) {
	c.Reads = r.U64()
	c.Writes = r.U64()
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.Bypasses = r.U64()
	c.PageAllocs = r.U64()
	c.PageEvicts = r.U64()
	c.DirtyEvicts = r.U64()
}

// savePageMeta / loadPageMeta are the tag-array payload codec shared
// by every page-granularity design.
func savePageMeta(w *snap.Writer, m *PageMeta) {
	w.U64(m.Valid)
	w.U64(m.Dirty)
	w.U64(m.Demanded)
	w.I64(int64(m.FHTPtr))
	w.U64(m.Predicted)
	w.U64(uint64(m.Freq))
	w.Bool(m.Spread)
}

func loadPageMeta(r *snap.Reader, m *PageMeta) {
	m.Valid = r.U64()
	m.Dirty = r.U64()
	m.Demanded = r.U64()
	m.FHTPtr = int32(r.I64())
	m.Predicted = r.U64()
	m.Freq = uint32(r.U64())
	m.Spread = r.Bool()
}

// --- Baseline / Ideal -------------------------------------------------

// SaveState implements DesignState.
func (b *Baseline) SaveState(w *snap.Writer) {
	w.Tag("baseline")
	saveCounters(w, &b.ctr)
}

// LoadState implements DesignState.
func (b *Baseline) LoadState(r *snap.Reader) error {
	r.Expect("baseline")
	loadCounters(r, &b.ctr)
	return r.Err()
}

// Snapshot implements Snapshotter.
func (b *Baseline) Snapshot(w io.Writer) error { return SnapshotDesign(w, b) }

// Restore implements Snapshotter.
func (b *Baseline) Restore(r io.Reader) error { return RestoreDesign(r, b) }

// SaveState implements DesignState.
func (i *Ideal) SaveState(w *snap.Writer) {
	w.Tag("ideal")
	saveCounters(w, &i.ctr)
}

// LoadState implements DesignState.
func (i *Ideal) LoadState(r *snap.Reader) error {
	r.Expect("ideal")
	loadCounters(r, &i.ctr)
	return r.Err()
}

// Snapshot implements Snapshotter.
func (i *Ideal) Snapshot(w io.Writer) error { return SnapshotDesign(w, i) }

// Restore implements Snapshotter.
func (i *Ideal) Restore(r io.Reader) error { return RestoreDesign(r, i) }

// --- BlockCache (in-DRAM tags + MissMap) ------------------------------

// SaveState implements DesignState: the modelled in-DRAM block tags,
// the SRAM MissMap, and the counters.
func (b *BlockCache) SaveState(w *snap.Writer) {
	w.Tag("block")
	w.U64(uint64(b.rows))
	w.U64(uint64(b.mmSets))
	saveCounters(w, &b.ctr)
	w.U64(b.ForcedEvicts)
	b.blocks.Save(w, func(sw *snap.Writer, m *blockMeta) { sw.Bool(m.dirty) })
	b.missMap.Save(w, func(sw *snap.Writer, v *uint64) { sw.U64(*v) })
}

// LoadState implements DesignState.
func (b *BlockCache) LoadState(r *snap.Reader) error {
	r.Expect("block")
	rows, mmSets := int(r.U64()), int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if rows != b.rows || mmSets != b.mmSets {
		return fmt.Errorf("dcache: block snapshot geometry (%d rows, %d missmap sets), have (%d, %d): %w",
			rows, mmSets, b.rows, b.mmSets, fault.ErrCorruptSnapshot)
	}
	loadCounters(r, &b.ctr)
	b.ForcedEvicts = r.U64()
	if err := b.blocks.Load(r, func(sr *snap.Reader, m *blockMeta) { m.dirty = sr.Bool() }); err != nil {
		return err
	}
	return b.missMap.Load(r, func(sr *snap.Reader, v *uint64) { *v = sr.U64() })
}

// Snapshot implements Snapshotter.
func (b *BlockCache) Snapshot(w io.Writer) error { return SnapshotDesign(w, b) }

// Restore implements Snapshotter.
func (b *BlockCache) Restore(r io.Reader) error { return RestoreDesign(r, b) }

// --- Engine -----------------------------------------------------------

// SaveState implements DesignState: geometry fingerprint, live-set
// count (the partition split's engine half), counters, the tag array,
// and the allocation policy's tables.
func (e *Engine) SaveState(w *snap.Writer) {
	w.Tag("engine")
	w.String(e.name)
	w.I64(e.geom.CapacityBytes)
	w.U64(uint64(e.geom.PageBytes))
	w.U64(uint64(e.geom.Ways))
	w.Bool(e.consistent)
	w.U64(uint64(e.liveSets))
	saveCounters(w, &e.ctr)
	e.tags.Save(w, savePageMeta)
	if ps, ok := e.alloc.(PolicyState); ok {
		w.Bool(true)
		ps.SaveState(w)
	} else {
		w.Bool(false)
	}
}

// LoadState implements DesignState.
func (e *Engine) LoadState(r *snap.Reader) error {
	r.Expect("engine")
	name := r.String()
	capBytes := r.I64()
	pageBytes, ways := int(r.U64()), int(r.U64())
	consistent := r.Bool()
	liveSets := int(r.U64())
	if err := r.Err(); err != nil {
		return err
	}
	if name != e.name {
		return fmt.Errorf("dcache: engine snapshot of %q, want %q: %w", name, e.name, fault.ErrCorruptSnapshot)
	}
	if capBytes != e.geom.CapacityBytes || pageBytes != e.geom.PageBytes || ways != e.geom.Ways || consistent != e.consistent {
		return fmt.Errorf("dcache: engine snapshot geometry (%dB, %dB pages, %d ways, consistent=%v) does not match (%dB, %dB, %d, %v): %w",
			capBytes, pageBytes, ways, consistent, e.geom.CapacityBytes, e.geom.PageBytes, e.geom.Ways, e.consistent, fault.ErrCorruptSnapshot)
	}
	if liveSets < 1 || liveSets > e.sets {
		return fmt.Errorf("dcache: engine snapshot live sets %d out of range [1,%d]: %w", liveSets, e.sets, fault.ErrCorruptSnapshot)
	}
	e.liveSets = liveSets
	loadCounters(r, &e.ctr)
	if err := e.tags.Load(r, loadPageMeta); err != nil {
		return err
	}
	hasPolicy := r.Bool()
	ps, ok := e.alloc.(PolicyState)
	if hasPolicy != ok {
		return fmt.Errorf("dcache: engine snapshot policy state %v, design policy %q stateful %v: %w",
			hasPolicy, e.alloc.Name(), ok, fault.ErrCorruptSnapshot)
	}
	if hasPolicy {
		return ps.LoadState(r)
	}
	return r.Err()
}

// Snapshot implements Snapshotter.
func (e *Engine) Snapshot(w io.Writer) error { return SnapshotDesign(w, e) }

// Restore implements Snapshotter.
func (e *Engine) Restore(r io.Reader) error { return RestoreDesign(r, e) }

// --- Gate -------------------------------------------------------------

// SaveState implements DesignState: the gate's own counters, the
// touch-count filter, and the wrapped engine.
func (g *Gate) SaveState(w *snap.Writer) {
	w.Tag("gate")
	w.String(g.name)
	saveCounters(w, &g.ctr)
	g.filter.Save(w, func(sw *snap.Writer, v *uint32) { sw.U64(uint64(*v)) })
	g.inner.SaveState(w)
}

// LoadState implements DesignState.
func (g *Gate) LoadState(r *snap.Reader) error {
	r.Expect("gate")
	if name := r.String(); r.Err() == nil && name != g.name {
		return fmt.Errorf("dcache: gate snapshot of %q, want %q: %w", name, g.name, fault.ErrCorruptSnapshot)
	}
	loadCounters(r, &g.ctr)
	if err := g.filter.Load(r, func(sr *snap.Reader, v *uint32) { *v = uint32(sr.U64()) }); err != nil {
		return err
	}
	return g.inner.LoadState(r)
}

// Snapshot implements Snapshotter.
func (g *Gate) Snapshot(w io.Writer) error { return SnapshotDesign(w, g) }

// Restore implements Snapshotter.
func (g *Gate) Restore(r io.Reader) error { return RestoreDesign(r, g) }

// --- Partitioned ------------------------------------------------------

// SaveState implements DesignState: the memory-region counters and
// split, then the wrapped cache slice (whose engine section carries
// the live-set half of the split).
func (p *Partitioned) SaveState(w *snap.Writer) {
	w.Tag("partition")
	w.String(p.name)
	saveCounters(w, &p.ctr)
	s := &p.pstats
	w.U64(s.MemHits)
	w.U64(s.Resizes)
	w.U64(s.FlushedClean)
	w.U64(s.FlushedDirty)
	w.U64(s.MovedPages)
	w.U64(s.DisplacedPages)
	w.U64(s.PurgedPages)
	w.I64(p.memPages)
	inner, ok := p.inner.(DesignState)
	if !ok {
		// NewPartitioned only accepts engine-backed inners, all of which
		// implement DesignState; this guards future wrapper types.
		panic(fmt.Sprintf("dcache: partition inner %q does not support snapshots", p.inner.Name()))
	}
	inner.SaveState(w)
}

// LoadState implements DesignState.
func (p *Partitioned) LoadState(r *snap.Reader) error {
	r.Expect("partition")
	if name := r.String(); r.Err() == nil && name != p.name {
		return fmt.Errorf("dcache: partition snapshot of %q, want %q: %w", name, p.name, fault.ErrCorruptSnapshot)
	}
	loadCounters(r, &p.ctr)
	s := &p.pstats
	s.MemHits = r.U64()
	s.Resizes = r.U64()
	s.FlushedClean = r.U64()
	s.FlushedDirty = r.U64()
	s.MovedPages = r.U64()
	s.DisplacedPages = r.U64()
	s.PurgedPages = r.U64()
	memPages := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if memPages < 0 || memPages >= p.totalPages {
		return fmt.Errorf("dcache: partition snapshot memory split %d of %d pages out of range: %w",
			memPages, p.totalPages, fault.ErrCorruptSnapshot)
	}
	p.memPages = memPages
	inner, ok := p.inner.(DesignState)
	if !ok {
		return fmt.Errorf("dcache: partition inner %q does not support snapshots", p.inner.Name())
	}
	return inner.LoadState(r)
}

// Snapshot implements Snapshotter.
func (p *Partitioned) Snapshot(w io.Writer) error { return SnapshotDesign(w, p) }

// Restore implements Snapshotter.
func (p *Partitioned) Restore(r io.Reader) error { return RestoreDesign(r, p) }
