package dcache

import (
	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// SubblockCache is the classical sub-blocked (sectored) organization
// the paper uses as the zero-overprediction bound (§3.1): it allocates
// page-granularity tags but fetches every 64B block on demand. It
// therefore never wastes off-chip bandwidth — and pays a miss for
// every first touch of every block (maximal underprediction).
type SubblockCache struct {
	geom      PageGeometry
	sets      int
	bpp       int
	tagCycles int
	tags      *sram.SetAssoc[PageMeta]
	ctr       Counters
	// OnEvict, if set, observes eviction densities.
	OnEvict DensityObserver
}

// SubblockConfig configures a sub-blocked cache.
type SubblockConfig struct {
	Geometry  PageGeometry
	TagCycles int
}

// NewSubblockCache builds the design.
func NewSubblockCache(cfg SubblockConfig) (*SubblockCache, error) {
	sets, bpp, err := cfg.Geometry.Validate()
	if err != nil {
		return nil, err
	}
	return &SubblockCache{
		geom:      cfg.Geometry,
		sets:      sets,
		bpp:       bpp,
		tagCycles: cfg.TagCycles,
		tags:      sram.NewSetAssoc[PageMeta](sets, cfg.Geometry.Ways),
	}, nil
}

// Name implements Design.
func (s *SubblockCache) Name() string { return "subblock" }

// Counters implements Design.
func (s *SubblockCache) Counters() Counters { return s.ctr }

// SubblockMetadataBits computes the sub-blocked design's SRAM budget:
// page tags plus valid and dirty vectors.
func SubblockMetadataBits(geom PageGeometry) int64 {
	sets, bpp, err := geom.Validate()
	if err != nil {
		panic(err)
	}
	pages := geom.CapacityBytes / int64(geom.PageBytes)
	per := int64(addressTagBits(geom.PageBytes, sets) + 1 + lruBits(geom.Ways) + 2*bpp)
	return pages * per
}

// MetadataBits implements Design.
func (s *SubblockCache) MetadataBits() int64 { return SubblockMetadataBits(s.geom) }

func (s *SubblockCache) frameAddr(set, way int) memtrace.Addr {
	return memtrace.Addr((int64(set)*int64(s.geom.Ways) + int64(way)) * int64(s.geom.PageBytes))
}

// Access implements Design.
func (s *SubblockCache) Access(rec memtrace.Record, ops []Op) Outcome {
	s.ctr.record(rec)
	pageIdx, block := pageAddrOf(rec.Addr, s.geom.PageBytes)
	set := int(pageIdx % uint64(s.sets))
	tag := pageIdx / uint64(s.sets)
	bit := uint64(1) << block

	if e := s.tags.Lookup(set, tag); e != nil {
		frame := s.frameAddr(set, e.Way()) + memtrace.Addr(block*64)
		if e.Value.Valid&bit != 0 {
			// Block present.
			s.ctr.Hits++
			e.Value.Demanded |= bit
			if rec.Write {
				e.Value.Dirty |= bit
			}
			ops = append(ops[:0], Op{
				Level: Stacked, Addr: frame, Bytes: 64,
				Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
			})
			return Outcome{Hit: true, TagCycles: s.tagCycles, Ops: ops}
		}
		// Page present, block absent: demand-fetch just this block
		// (writes carry the whole block, so they skip the fetch).
		s.ctr.Misses++
		e.Value.Valid |= bit
		e.Value.Demanded |= bit
		if rec.Write {
			e.Value.Dirty |= bit
			ops = append(ops[:0], Op{Level: Stacked, Addr: frame, Bytes: 64, Write: true, DependsOn: NoDep})
			return Outcome{TagCycles: s.tagCycles, Ops: ops}
		}
		ops = append(ops[:0],
			Op{Level: OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: NoDep},
			Op{Level: Stacked, Addr: frame, Bytes: 64, Write: true, DependsOn: 0},
		)
		return Outcome{TagCycles: s.tagCycles, Ops: ops}
	}

	// Page miss: allocate the tag, fetch only the demanded block.
	s.ctr.Misses++
	ops = ops[:0]
	victim := s.tags.Victim(set)
	frame := s.frameAddr(set, victim.Way())
	if victim.Valid() {
		s.ctr.PageEvicts++
		if s.OnEvict != nil {
			s.OnEvict(popcount(victim.Value.Demanded), s.bpp)
		}
		if victim.Value.Dirty != 0 {
			s.ctr.DirtyEvicts++
			n := popcount(victim.Value.Dirty)
			victimBase := memtrace.Addr(victim.Tag*uint64(s.sets)+uint64(set)) * memtrace.Addr(s.geom.PageBytes)
			ops = append(ops,
				Op{Level: Stacked, Addr: frame, Bytes: n * 64, Write: false, DependsOn: NoDep},
				Op{Level: OffChip, Addr: victimBase, Bytes: n * 64, Write: true, DependsOn: 0},
			)
		}
	}
	crit := NoDep
	if !rec.Write {
		crit = len(ops)
		ops = append(ops, Op{Level: OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: NoDep})
	}
	ops = append(ops, Op{Level: Stacked, Addr: frame + memtrace.Addr(block*64), Bytes: 64, Write: true, DependsOn: crit})

	meta := PageMeta{Valid: bit, Demanded: bit}
	if rec.Write {
		meta.Dirty = bit
	}
	s.tags.Insert(set, tag, meta)
	s.ctr.PageAllocs++
	return Outcome{TagCycles: s.tagCycles, Ops: ops}
}
