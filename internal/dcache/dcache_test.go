package dcache

import (
	"math/rand"
	"testing"

	"fpcache/internal/memtrace"
)

func read(addr memtrace.Addr) memtrace.Record {
	return memtrace.Record{PC: 0x400000, Addr: addr}
}

func write(addr memtrace.Addr) memtrace.Record {
	return memtrace.Record{PC: 0x400000, Addr: addr, Write: true}
}

func checkOps(t *testing.T, d Design, rec memtrace.Record) Outcome {
	t.Helper()
	out := d.Access(rec, nil)
	if err := ValidateOps(out.Ops); err != nil {
		t.Fatalf("%s: invalid ops for %+v: %v", d.Name(), rec, err)
	}
	return out
}

func TestBaselineAlwaysMisses(t *testing.T) {
	b := NewBaseline()
	out := checkOps(t, b, read(0x1000))
	if out.Hit || len(out.Ops) != 1 || out.Ops[0].Level != OffChip {
		t.Fatalf("baseline read outcome: %+v", out)
	}
	if !out.Ops[0].Critical {
		t.Fatal("baseline read not critical")
	}
	out = checkOps(t, b, write(0x1000))
	if out.Ops[0].Critical || !out.Ops[0].Write {
		t.Fatal("baseline write should be a posted off-chip write")
	}
	c := b.Counters()
	if c.Misses != 2 || c.Reads != 1 || c.Writes != 1 {
		t.Fatalf("counters: %+v", c)
	}
	if b.MetadataBits() != 0 {
		t.Fatal("baseline has metadata")
	}
}

func TestIdealAlwaysHits(t *testing.T) {
	d := NewIdeal()
	out := checkOps(t, d, read(0x1000))
	if !out.Hit || out.Ops[0].Level != Stacked {
		t.Fatalf("ideal outcome: %+v", out)
	}
	if d.Counters().Hits != 1 {
		t.Fatal("ideal did not count a hit")
	}
}

func TestCountersSub(t *testing.T) {
	a := Counters{Reads: 10, Writes: 5, Hits: 8, Misses: 7, Bypasses: 1, PageAllocs: 3, PageEvicts: 2, DirtyEvicts: 1}
	if diff := a.Sub(Counters{Reads: 4, Hits: 3}); diff.Reads != 6 || diff.Hits != 5 || diff.Writes != 5 {
		t.Fatalf("Sub = %+v", diff)
	}
	if a.Accesses() != 15 {
		t.Fatalf("Accesses = %d", a.Accesses())
	}
	if mr := a.MissRatio(); mr < 0.46 || mr > 0.47 {
		t.Fatalf("MissRatio = %g", mr)
	}
	var zero Counters
	if zero.MissRatio() != 0 || zero.HitRatio() != 0 {
		t.Fatal("zero counters should yield zero ratios")
	}
}

func TestValidateOps(t *testing.T) {
	good := []Op{
		{Level: OffChip, Bytes: 64, Critical: true, DependsOn: NoDep},
		{Level: Stacked, Bytes: 128, DependsOn: 0},
	}
	if err := ValidateOps(good); err != nil {
		t.Fatal(err)
	}
	bad := [][]Op{
		{{Bytes: 64, DependsOn: 0}},      // self/forward dep
		{{Bytes: 0, DependsOn: NoDep}},   // empty
		{{Bytes: 100, DependsOn: NoDep}}, // not 64B multiple
		{{Bytes: 64, DependsOn: NoDep}, {Bytes: 64, Critical: true, DependsOn: 0}}, // critical on non-critical
	}
	for i, ops := range bad {
		if err := ValidateOps(ops); err == nil {
			t.Fatalf("bad ops %d accepted", i)
		}
	}
}

func geom() PageGeometry {
	return PageGeometry{CapacityBytes: 1 << 20, PageBytes: 2048, Ways: 16}
}

func TestPageGeometryValidate(t *testing.T) {
	if _, _, err := geom().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []PageGeometry{
		{CapacityBytes: 1 << 20, PageBytes: 1000, Ways: 16},
		{CapacityBytes: 1 << 20, PageBytes: 2048, Ways: 0},
		{CapacityBytes: 4096, PageBytes: 2048, Ways: 16},
		{CapacityBytes: 1 << 20, PageBytes: 8192, Ways: 16}, // >64 blocks
	}
	for i, g := range bad {
		if _, _, err := g.Validate(); err == nil {
			t.Fatalf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

func newPage(t *testing.T) *PageCache {
	t.Helper()
	p, err := NewPageCache(PageCacheConfig{Geometry: geom(), TagCycles: 6})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPageCacheMissFillsWholePage(t *testing.T) {
	p := newPage(t)
	out := checkOps(t, p, read(0x10040))
	if out.Hit {
		t.Fatal("cold access hit")
	}
	// Ops: critical 64B read + (2048-64) remainder + 2048 stacked fill.
	var offBytes, stkBytes int
	for _, op := range out.Ops {
		if op.Level == OffChip {
			offBytes += op.Bytes
		} else {
			stkBytes += op.Bytes
		}
	}
	if offBytes != 2048 || stkBytes != 2048 {
		t.Fatalf("fill moved off=%d stk=%d, want 2048/2048", offBytes, stkBytes)
	}
	if out.TagCycles != 6 {
		t.Fatalf("tag cycles = %d", out.TagCycles)
	}
	// Any block of the same page now hits.
	out = checkOps(t, p, read(0x10000))
	if !out.Hit || len(out.Ops) != 1 || out.Ops[0].Bytes != 64 || out.Ops[0].Level != Stacked {
		t.Fatalf("page hit outcome: %+v", out)
	}
}

func TestPageCacheDirtyEvictionWritesDirtyBlocksOnly(t *testing.T) {
	p := newPage(t)
	sets := p.sets
	// Fill one set completely with writes (1 dirty block each), then
	// one more page to force an eviction.
	pageStride := memtrace.Addr(2048 * sets)
	for i := 0; i <= 16; i++ {
		checkOps(t, p, write(memtrace.Addr(i)*pageStride))
	}
	c := p.Counters()
	if c.PageEvicts != 1 || c.DirtyEvicts != 1 {
		t.Fatalf("evictions: %+v", c)
	}
}

func TestPageCacheCleanEvictionSilent(t *testing.T) {
	p := newPage(t)
	sets := p.sets
	pageStride := memtrace.Addr(2048 * sets)
	for i := 0; i < 16; i++ {
		checkOps(t, p, read(memtrace.Addr(i)*pageStride))
	}
	out := checkOps(t, p, read(memtrace.Addr(16)*pageStride))
	// Eviction of a clean page must not add any writeback op: only
	// the 3 fill ops.
	if len(out.Ops) != 3 {
		t.Fatalf("clean eviction emitted %d ops", len(out.Ops))
	}
	if p.Counters().DirtyEvicts != 0 {
		t.Fatal("clean eviction counted dirty")
	}
}

func TestPageCacheDensityObserver(t *testing.T) {
	p := newPage(t)
	var densities []int
	p.OnEvict = func(d, blocks int) {
		if blocks != 32 {
			t.Fatalf("page blocks = %d", blocks)
		}
		densities = append(densities, d)
	}
	sets := p.sets
	pageStride := memtrace.Addr(2048 * sets)
	// Touch 3 blocks of page 0, then flood the set.
	checkOps(t, p, read(0))
	checkOps(t, p, read(64))
	checkOps(t, p, read(128))
	for i := 1; i <= 16; i++ {
		checkOps(t, p, read(memtrace.Addr(i)*pageStride))
	}
	if len(densities) != 1 || densities[0] != 3 {
		t.Fatalf("densities = %v, want [3]", densities)
	}
}

func TestPageCacheWriteMissSkipsCriticalFetch(t *testing.T) {
	p := newPage(t)
	out := checkOps(t, p, write(0x4000))
	for _, op := range out.Ops {
		if op.Critical {
			t.Fatalf("write miss has critical op: %+v", op)
		}
	}
	// Off-chip fetch is the page remainder only.
	var offBytes int
	for _, op := range out.Ops {
		if op.Level == OffChip && !op.Write {
			offBytes += op.Bytes
		}
	}
	if offBytes != 2048-64 {
		t.Fatalf("write miss fetched %d off-chip bytes, want %d", offBytes, 2048-64)
	}
}

func TestPageCacheMetadataFormula(t *testing.T) {
	// Paper Table 4: 64MB page-based tags = 0.22MB. Entry = 18b tag +
	// 1 valid + 4 LRU + 32 dirty = 55 bits x 32K pages.
	g := PageGeometry{CapacityBytes: 64 << 20, PageBytes: 2048, Ways: 16}
	mb := float64(PageMetadataBits(g)) / 8 / (1 << 20)
	if mb < 0.18 || mb > 0.26 {
		t.Fatalf("64MB page tags = %.3fMB, want ~0.22MB", mb)
	}
}

func newSub(t *testing.T) *SubblockCache {
	t.Helper()
	s, err := NewSubblockCache(SubblockConfig{Geometry: geom(), TagCycles: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSubblockFetchesOnDemandOnly(t *testing.T) {
	s := newSub(t)
	// First touch: page miss, fetch one block.
	out := checkOps(t, s, read(0x8000))
	var offBytes int
	for _, op := range out.Ops {
		if op.Level == OffChip {
			offBytes += op.Bytes
		}
	}
	if offBytes != 64 {
		t.Fatalf("page miss fetched %d bytes, want 64 (no overprediction)", offBytes)
	}
	// Different block, same page: block miss, another 64B.
	out = checkOps(t, s, read(0x8040))
	if out.Hit {
		t.Fatal("unfetched block hit")
	}
	// Same block again: hit.
	out = checkOps(t, s, read(0x8040))
	if !out.Hit {
		t.Fatal("fetched block missed")
	}
	c := s.Counters()
	if c.Misses != 2 || c.Hits != 1 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestSubblockEvictionWritesDirtyBlocks(t *testing.T) {
	s := newSub(t)
	sets := s.sets
	pageStride := memtrace.Addr(2048 * sets)
	checkOps(t, s, write(0))
	checkOps(t, s, write(64))
	for i := 1; i <= 16; i++ {
		checkOps(t, s, read(memtrace.Addr(i)*pageStride))
	}
	c := s.Counters()
	if c.DirtyEvicts != 1 {
		t.Fatalf("dirty evicts = %d", c.DirtyEvicts)
	}
}

func TestDesignsProduceValidOpsUnderRandomTraffic(t *testing.T) {
	designs := []Design{
		NewBaseline(),
		NewIdeal(),
		newPage(t),
		newSub(t),
		mustBlock(t),
		mustHot(t),
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		rec := memtrace.Record{
			PC:    memtrace.PC(0x400000 + rng.Intn(64)*4),
			Addr:  memtrace.Addr(rng.Intn(1<<22) * 64),
			Write: rng.Intn(3) == 0,
		}
		for _, d := range designs {
			out := d.Access(rec, nil)
			if err := ValidateOps(out.Ops); err != nil {
				t.Fatalf("%s at ref %d: %v", d.Name(), i, err)
			}
		}
	}
	// Sanity: hits+misses == accesses for every design.
	for _, d := range designs {
		c := d.Counters()
		if c.Hits+c.Misses != c.Accesses() {
			t.Fatalf("%s: hits %d + misses %d != accesses %d", d.Name(), c.Hits, c.Misses, c.Accesses())
		}
	}
}
