package dcache

import (
	"fmt"
	"math/bits"

	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// PageGeometry is the shared geometry of page-granularity designs
// (page-based, sub-blocked, and the Footprint Cache in internal/core).
type PageGeometry struct {
	CapacityBytes int64
	PageBytes     int
	Ways          int
}

// Validate checks the geometry and returns sets and blocks-per-page.
func (g PageGeometry) Validate() (sets, blocksPerPage int, err error) {
	if g.PageBytes <= 0 || g.PageBytes%64 != 0 || g.PageBytes&(g.PageBytes-1) != 0 {
		return 0, 0, fmt.Errorf("dcache: page size %d must be a 64B-multiple power of two", g.PageBytes)
	}
	if g.Ways <= 0 {
		return 0, 0, fmt.Errorf("dcache: ways must be positive")
	}
	pages := g.CapacityBytes / int64(g.PageBytes)
	if pages < int64(g.Ways) {
		return 0, 0, fmt.Errorf("dcache: capacity %d too small for %d ways of %dB pages", g.CapacityBytes, g.Ways, g.PageBytes)
	}
	if pages%int64(g.Ways) != 0 {
		return 0, 0, fmt.Errorf("dcache: %d pages not divisible by %d ways", pages, g.Ways)
	}
	bpp := g.PageBytes / 64
	if bpp > 64 {
		return 0, 0, fmt.Errorf("dcache: pages larger than 4KB (%d blocks) exceed the 64-bit block vectors", bpp)
	}
	return int(pages / int64(g.Ways)), bpp, nil
}

// pageAddrOf splits an address into page index and block-within-page.
func pageAddrOf(addr memtrace.Addr, pageBytes int) (pageIdx uint64, block int) {
	return uint64(addr) / uint64(pageBytes), int(uint64(addr) % uint64(pageBytes) / 64)
}

// PageMeta is the per-page payload of page-granularity tag arrays.
type PageMeta struct {
	// Valid marks blocks present in the stacked DRAM.
	Valid uint64
	// Dirty marks blocks modified since fill. A dirty block is always
	// demanded, which is what lets the paper encode block state in
	// just these two vectors (Table 2).
	Dirty uint64
	// Demanded marks blocks actually touched by cores during this
	// residency (the page's footprint, §4.3).
	Demanded uint64
	// FHTPtr links the page to the predictor entry that fetched it
	// (used only by the Footprint design; carried here so all
	// page-granularity designs share one tag array type).
	FHTPtr int32
	// Predicted is the footprint the predictor chose at allocation
	// (for accuracy accounting, Fig. 8).
	Predicted uint64
	// Freq counts accesses during this residency (frequency-gated fill
	// policies compare it against allocation candidates).
	Freq uint32
	// Spread records the mapping placement chosen at allocation
	// (engine.go): false = packed page-direct, true = block-style
	// row-spread.
	Spread bool
}

// DensityObserver receives the demanded-block count of every evicted
// page; Figure 4 is built from it.
type DensityObserver func(demandedBlocks, pageBlocks int)

// PageCache is the conventional page-based DRAM cache (§2.3): SRAM
// tags, whole-page fills and evictions, maximal DRAM locality, and an
// order-of-magnitude off-chip traffic amplification on sparse pages.
type PageCache struct {
	geom      PageGeometry
	sets      int
	bpp       int
	tagCycles int
	tags      *sram.SetAssoc[PageMeta]
	ctr       Counters
	// OnEvict, if set, observes eviction densities.
	OnEvict DensityObserver
}

// PageCacheConfig configures a page-based cache.
type PageCacheConfig struct {
	Geometry  PageGeometry
	TagCycles int
}

// NewPageCache builds the design.
func NewPageCache(cfg PageCacheConfig) (*PageCache, error) {
	sets, bpp, err := cfg.Geometry.Validate()
	if err != nil {
		return nil, err
	}
	return &PageCache{
		geom:      cfg.Geometry,
		sets:      sets,
		bpp:       bpp,
		tagCycles: cfg.TagCycles,
		tags:      sram.NewSetAssoc[PageMeta](sets, cfg.Geometry.Ways),
	}, nil
}

// Name implements Design.
func (p *PageCache) Name() string { return "page" }

// Counters implements Design.
func (p *PageCache) Counters() Counters { return p.ctr }

// PageMetadataBits computes the page-based design's SRAM budget for a
// geometry: per page, an address tag, a valid bit, LRU state, and a
// per-block dirty vector (this reproduces the paper's Table 4
// page-based tag storage).
func PageMetadataBits(geom PageGeometry) int64 {
	sets, bpp, err := geom.Validate()
	if err != nil {
		panic(err)
	}
	pages := geom.CapacityBytes / int64(geom.PageBytes)
	per := int64(addressTagBits(geom.PageBytes, sets) + 1 + lruBits(geom.Ways) + bpp)
	return pages * per
}

// MetadataBits implements Design.
func (p *PageCache) MetadataBits() int64 { return PageMetadataBits(p.geom) }

// frameAddr returns the stacked-DRAM byte address of a (set, way)
// frame: set/way pairs directly determine cache-array addresses
// (§4.1), and a frame spans exactly one DRAM row for 2KB pages.
func (p *PageCache) frameAddr(set, way int) memtrace.Addr {
	return memtrace.Addr((int64(set)*int64(p.geom.Ways) + int64(way)) * int64(p.geom.PageBytes))
}

func (p *PageCache) fullMask() uint64 {
	if p.bpp == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << p.bpp) - 1
}

// Access implements Design.
func (p *PageCache) Access(rec memtrace.Record, ops []Op) Outcome {
	p.ctr.record(rec)
	pageIdx, block := pageAddrOf(rec.Addr, p.geom.PageBytes)
	set := int(pageIdx % uint64(p.sets))
	tag := pageIdx / uint64(p.sets)
	bit := uint64(1) << block

	if e := p.tags.Lookup(set, tag); e != nil {
		p.ctr.Hits++
		e.Value.Demanded |= bit
		if rec.Write {
			e.Value.Dirty |= bit
		}
		ops = append(ops[:0], Op{
			Level: Stacked, Addr: p.frameAddr(set, e.Way()) + memtrace.Addr(block*64),
			Bytes: 64, Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
		})
		return Outcome{Hit: true, TagCycles: p.tagCycles, Ops: ops}
	}

	// Page miss: evict the victim, fetch the whole page (§2.3).
	p.ctr.Misses++
	ops = ops[:0]
	victim := p.tags.Victim(set)
	frame := p.frameAddr(set, victim.Way())
	if victim.Valid() {
		p.ctr.PageEvicts++
		if p.OnEvict != nil {
			p.OnEvict(popcount(victim.Value.Demanded), p.bpp)
		}
		if victim.Value.Dirty != 0 {
			// Writeback: stream the dirty blocks out of the page's
			// row (the dirty vector is in the SRAM tags, so clean
			// blocks never travel).
			p.ctr.DirtyEvicts++
			n := popcount(victim.Value.Dirty)
			victimBase := memtrace.Addr(victim.Tag*uint64(p.sets)+uint64(set)) * memtrace.Addr(p.geom.PageBytes)
			ops = append(ops,
				Op{Level: Stacked, Addr: frame, Bytes: n * 64, Write: false, DependsOn: NoDep},
				Op{Level: OffChip, Addr: victimBase, Bytes: n * 64, Write: true, DependsOn: 0},
			)
		}
	}

	// Critical-block-first fetch, then the page remainder, then the
	// fill into the stacked array. A write miss carries its own 64B
	// block, so only the remainder is fetched.
	pageBase := memtrace.Addr(pageIdx * uint64(p.geom.PageBytes))
	crit := NoDep
	if !rec.Write {
		crit = len(ops)
		ops = append(ops, Op{Level: OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: NoDep})
	}
	rest := len(ops)
	ops = append(ops, Op{Level: OffChip, Addr: pageBase, Bytes: p.geom.PageBytes - 64, DependsOn: crit})
	ops = append(ops, Op{Level: Stacked, Addr: frame, Bytes: p.geom.PageBytes, Write: true, DependsOn: rest})

	meta := PageMeta{Valid: p.fullMask(), Demanded: bit}
	if rec.Write {
		meta.Dirty = bit
	}
	p.tags.Insert(set, tag, meta)
	p.ctr.PageAllocs++
	return Outcome{TagCycles: p.tagCycles, Ops: ops}
}

// addressTagBits computes tag width for a 40-bit physical address
// space (the paper assumes ARM's extended 40-bit addressing, §5.2).
func addressTagBits(pageBytes, sets int) int {
	return 40 - bits.TrailingZeros64(uint64(pageBytes)) - bits.Len64(uint64(sets-1))
}

// lruBits returns the per-entry LRU state width.
func lruBits(ways int) int {
	if ways <= 1 {
		return 0
	}
	return bits.Len64(uint64(ways - 1))
}
