// Package dcache defines the DRAM-cache design interface and
// implements the paper's comparison designs: the no-cache baseline,
// the block-based cache (Loh–Hill MissMap organization), the
// page-based cache, the sub-blocked cache (allocate pages, fetch on
// demand), the ideal cache, and a CHOP-like hot-page filter cache.
//
// The paper's contribution — Footprint Cache — lives in
// internal/core and implements the same Design interface.
//
// Designs are functional state machines: each Access returns an
// Outcome describing the DRAM operations the access triggers (with
// criticality and dependency structure). The functional runner feeds
// those operations to dram.Tracker for traffic/energy accounting; the
// timing runner turns them into dram.Controller transactions. One
// implementation therefore serves both simulation modes.
package dcache

import (
	"fmt"
	"math/bits"

	"fpcache/internal/memtrace"
)

// Level selects which DRAM subsystem an operation targets.
type Level int

const (
	// Stacked is the die-stacked DRAM cache array.
	Stacked Level = iota
	// OffChip is main memory.
	OffChip
)

// String implements fmt.Stringer.
func (l Level) String() string {
	if l == Stacked {
		return "stacked"
	}
	return "offchip"
}

// NoDep marks an operation with no dependency.
const NoDep = -1

// Op is one DRAM transaction triggered by a cache access.
type Op struct {
	Level Level
	Addr  memtrace.Addr
	Bytes int
	Write bool
	// Critical operations are on the requestor's latency path; the
	// access completes when all critical ops complete. Non-critical
	// ops (fills, evictions, tag updates) only consume bandwidth.
	Critical bool
	// DependsOn is the index within the same Outcome of an op that
	// must complete before this one issues, or NoDep.
	DependsOn int
}

// Outcome describes everything one access caused.
type Outcome struct {
	// Hit reports whether the access was served by the stacked DRAM.
	Hit bool
	// Bypass reports a miss served directly from memory without
	// allocation (singleton bypass, hot-page filtering).
	Bypass bool
	// TagCycles is the SRAM metadata lookup latency preceding any op.
	TagCycles int
	Ops       []Op
}

// Design is a DRAM cache organization.
type Design interface {
	// Name identifies the design in reports.
	Name() string
	// Access processes one L2-miss record and returns its outcome.
	//
	// ops is a caller-provided scratch buffer: implementations append
	// the access's DRAM operations to ops[:0] and return an Outcome
	// whose Ops field aliases it (grown if needed). Callers on the hot
	// path reuse the returned Outcome.Ops as the next call's scratch,
	// so steady-state accesses allocate nothing; passing nil is always
	// valid when allocation does not matter. The returned Ops are only
	// valid until the next Access with the same buffer.
	//
	// The fplint hotpath analyzer enforces the zero-allocation contract
	// on every implementation and everything they call.
	//
	//fplint:hotpath
	Access(rec memtrace.Record, ops []Op) Outcome
	// Counters exposes accumulated access statistics.
	Counters() Counters
	// MetadataBits returns the SRAM metadata budget (tags, MissMap,
	// prediction tables) in bits, for Table 4.
	MetadataBits() int64
}

// Counters accumulates design-independent access statistics.
type Counters struct {
	Reads, Writes uint64
	Hits          uint64
	Misses        uint64
	Bypasses      uint64 // subset of Misses served without allocation
	PageAllocs    uint64
	PageEvicts    uint64
	DirtyEvicts   uint64
}

// Accesses returns the total number of accesses.
func (c Counters) Accesses() uint64 { return c.Reads + c.Writes }

// MissRatio returns misses / accesses.
func (c Counters) MissRatio() float64 {
	t := c.Accesses()
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// HitRatio returns hits / accesses.
func (c Counters) HitRatio() float64 {
	t := c.Accesses()
	if t == 0 {
		return 0
	}
	return float64(c.Hits) / float64(t)
}

// Add returns c plus o, used by wrapper designs that split accounting
// across two paths (the partition wrapper counts its memory-region
// accesses itself and delegates the rest to the cache engine).
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Reads:       c.Reads + o.Reads,
		Writes:      c.Writes + o.Writes,
		Hits:        c.Hits + o.Hits,
		Misses:      c.Misses + o.Misses,
		Bypasses:    c.Bypasses + o.Bypasses,
		PageAllocs:  c.PageAllocs + o.PageAllocs,
		PageEvicts:  c.PageEvicts + o.PageEvicts,
		DirtyEvicts: c.DirtyEvicts + o.DirtyEvicts,
	}
}

// Sub returns c minus o, used to exclude warmup from measurements.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Reads:       c.Reads - o.Reads,
		Writes:      c.Writes - o.Writes,
		Hits:        c.Hits - o.Hits,
		Misses:      c.Misses - o.Misses,
		Bypasses:    c.Bypasses - o.Bypasses,
		PageAllocs:  c.PageAllocs - o.PageAllocs,
		PageEvicts:  c.PageEvicts - o.PageEvicts,
		DirtyEvicts: c.DirtyEvicts - o.DirtyEvicts,
	}
}

func (c *Counters) record(rec memtrace.Record) {
	if rec.Write {
		c.Writes++
	} else {
		c.Reads++
	}
}

// criticality returns whether a demand access of the given kind is on
// the latency path: reads are, L2 writebacks are posted.
func criticality(write bool) bool { return !write }

// ValidateOps checks structural invariants every Outcome must satisfy:
// dependencies precede their dependents, sizes are positive 64B
// multiples, and critical ops never depend on non-critical ones (a
// request's completion must not wait on background traffic).
func ValidateOps(ops []Op) error {
	for i, op := range ops {
		if op.DependsOn != NoDep && (op.DependsOn < 0 || op.DependsOn >= i) {
			return fmt.Errorf("op %d depends on %d (must precede it)", i, op.DependsOn)
		}
		if op.Bytes <= 0 || op.Bytes%64 != 0 {
			return fmt.Errorf("op %d moves %d bytes (must be positive 64B multiple)", i, op.Bytes)
		}
		if op.Critical && op.DependsOn != NoDep && !ops[op.DependsOn].Critical {
			return fmt.Errorf("op %d is critical but depends on non-critical op %d", i, op.DependsOn)
		}
	}
	return nil
}

// popcount returns the number of set bits.
func popcount(v uint64) int { return bits.OnesCount64(v) }

// trailingZeros returns the index of the lowest set bit.
func trailingZeros(v uint64) int { return bits.TrailingZeros64(v) }

// Baseline is the system without a DRAM cache: every L2 miss goes to
// off-chip memory.
type Baseline struct {
	ctr Counters
}

// NewBaseline returns the no-cache design.
func NewBaseline() *Baseline { return &Baseline{} }

// Name implements Design.
func (b *Baseline) Name() string { return "baseline" }

// MetadataBits implements Design.
func (b *Baseline) MetadataBits() int64 { return 0 }

// Counters implements Design.
func (b *Baseline) Counters() Counters { return b.ctr }

// Access implements Design.
func (b *Baseline) Access(rec memtrace.Record, ops []Op) Outcome {
	b.ctr.record(rec)
	b.ctr.Misses++
	ops = append(ops[:0], Op{
		Level: OffChip, Addr: rec.Addr, Bytes: 64,
		Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
	})
	return Outcome{Ops: ops}
}

// Ideal is the paper's upper bound: a die-stacked cache that never
// misses and has no tag overhead (§6.3: "die-stacked main memory").
type Ideal struct {
	ctr Counters
}

// NewIdeal returns the never-miss design.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements Design.
func (i *Ideal) Name() string { return "ideal" }

// MetadataBits implements Design.
func (i *Ideal) MetadataBits() int64 { return 0 }

// Counters implements Design.
func (i *Ideal) Counters() Counters { return i.ctr }

// Access implements Design.
func (i *Ideal) Access(rec memtrace.Record, ops []Op) Outcome {
	i.ctr.record(rec)
	i.ctr.Hits++
	ops = append(ops[:0], Op{
		Level: Stacked, Addr: rec.Addr, Bytes: 64,
		Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
	})
	return Outcome{Hit: true, Ops: ops}
}
