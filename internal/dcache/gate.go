package dcache

import (
	"fmt"

	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// GatePolicy is the replacement/fill axis of the composable engine:
// it decides whether a miss to a non-resident page is allowed to
// allocate at all. The engine's default (no gate) is plain LRU fill.
type GatePolicy interface {
	// Name identifies the policy in specs and reports.
	Name() string
	// Admit decides allocation for a gated miss. count is the page's
	// touch count including this access, firstTouch whether the filter
	// had no entry before it, victimFreq the would-be victim's
	// residency access count (only populated when NeedsVictimFreq).
	Admit(count uint32, firstTouch bool, victimFreq uint32) bool
	// NeedsVictimFreq reports whether Admit consumes victimFreq, so
	// the gate only scans the victim way when a policy actually
	// compares against it.
	NeedsVictimFreq() bool
}

// HotGatePolicy is the CHOP-style hotness threshold (§6.7): a page
// allocates only after Threshold touches of filter history. First
// touches never allocate.
type HotGatePolicy struct {
	Threshold uint32
}

// Name implements GatePolicy.
func (HotGatePolicy) Name() string { return "hotgate" }

// Admit implements GatePolicy.
func (p HotGatePolicy) Admit(count uint32, firstTouch bool, _ uint32) bool {
	return !firstTouch && count >= p.Threshold
}

// NeedsVictimFreq implements GatePolicy.
func (HotGatePolicy) NeedsVictimFreq() bool { return false }

// BansheeGatePolicy is the frequency-comparison fill of Yu et al.'s
// Banshee: a candidate page allocates only when its touch count
// exceeds the would-be victim's residency access count, so cold pages
// never displace warm ones and fill bandwidth tracks reuse instead of
// miss rate.
type BansheeGatePolicy struct{}

// Name implements GatePolicy.
func (BansheeGatePolicy) Name() string { return "banshee" }

// Admit implements GatePolicy.
func (BansheeGatePolicy) Admit(count uint32, _ bool, victimFreq uint32) bool {
	return count > victimFreq
}

// NeedsVictimFreq implements GatePolicy.
func (BansheeGatePolicy) NeedsVictimFreq() bool { return true }

// Gate wraps an Engine with a fill gate: resident pages delegate
// untouched, non-resident pages pass the gate's Admit decision or
// bypass to memory one block at a time. This is the composition that
// reproduces the CHOP-style hot-page filter (hotgate over a
// page-allocation engine) and opens frequency-gated hybrids
// (banshee over a footprint engine).
//
// The gate keeps its own Counters: hits/misses/bypasses are
// classified from the inner engine's Outcome (so partial-allocation
// engines report their block misses and singleton bypasses
// truthfully), while allocation traffic counters stay attributed to
// the inner engine — the monolithic hot-page design's accounting
// split.
type Gate struct {
	name        string
	inner       *Engine
	policy      GatePolicy
	filter      *sram.SetAssoc[uint32]
	fSets       int
	needsVictim bool
	ctr         Counters
}

// GateConfig assembles a Gate.
type GateConfig struct {
	// Name is the composed design's reported name.
	Name   string
	Engine *Engine
	Policy GatePolicy
	// FilterEntries/FilterWays size the touch-count filter (default
	// 64K entries, 16-way — the CHOP configuration).
	FilterEntries, FilterWays int
}

// NewGate builds the gated design.
func NewGate(cfg GateConfig) (*Gate, error) {
	if cfg.Engine == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("dcache: gate %q needs an engine and a policy", cfg.Name)
	}
	if cfg.FilterEntries <= 0 || cfg.FilterWays <= 0 || cfg.FilterEntries%cfg.FilterWays != 0 {
		cfg.FilterEntries, cfg.FilterWays = 64*1024, 16
	}
	return &Gate{
		name:        cfg.Name,
		inner:       cfg.Engine,
		policy:      cfg.Policy,
		filter:      sram.NewSetAssoc[uint32](cfg.FilterEntries/cfg.FilterWays, cfg.FilterWays),
		fSets:       cfg.FilterEntries / cfg.FilterWays,
		needsVictim: cfg.Policy.NeedsVictimFreq(),
	}, nil
}

// Name implements Design.
func (g *Gate) Name() string { return g.name }

// Counters implements Design.
func (g *Gate) Counters() Counters { return g.ctr }

// Unwrap exposes the inner engine (predictor statistics, density
// observers).
func (g *Gate) Unwrap() Design { return g.inner }

// Policy exposes the gate policy.
func (g *Gate) Policy() GatePolicy { return g.policy }

// MetadataBits implements Design: inner tags plus filter counters
// (28-bit page tag + 8-bit count per entry, the CHOP budget).
func (g *Gate) MetadataBits() int64 {
	entries := int64(g.filter.Sets() * g.filter.Ways())
	return g.inner.MetadataBits() + entries*(28+8)
}

// Access implements Design.
func (g *Gate) Access(rec memtrace.Record, ops []Op) Outcome {
	g.ctr.record(rec)
	if g.inner.Resident(rec.Addr) {
		// Resident page: delegate, classifying from the outcome — a
		// partial-allocation engine can still block-miss here.
		out := g.inner.Access(rec, ops)
		if out.Hit {
			g.ctr.Hits++
		} else {
			g.ctr.Misses++
		}
		return out
	}

	// Cold page: count the touch; allocate only if the policy admits.
	pageIdx, _ := pageAddrOf(rec.Addr, g.inner.geom.PageBytes)
	fSet := int(pageIdx % uint64(g.fSets))
	fTag := pageIdx / uint64(g.fSets)
	ent := g.filter.Lookup(fSet, fTag)
	first := ent == nil
	var count uint32
	if first {
		g.filter.Insert(fSet, fTag, 1)
		count = 1
	} else {
		ent.Value++
		count = ent.Value
	}
	g.ctr.Misses++
	var victimFreq uint32
	if g.needsVictim {
		victimFreq = g.inner.VictimFreq(rec.Addr)
	}
	if g.policy.Admit(count, first, victimFreq) {
		out := g.inner.Access(rec, ops)
		out.Hit = false
		if out.Bypass {
			// The inner allocation policy refused too (e.g. a predicted
			// singleton): surface it as a bypass at the gate as well.
			g.ctr.Bypasses++
		}
		return out
	}
	g.ctr.Bypasses++
	ops = append(ops[:0], Op{
		Level: OffChip, Addr: rec.Addr, Bytes: 64,
		Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
	})
	return Outcome{Bypass: true, TagCycles: g.inner.tagCycles, Ops: ops}
}
