package dcache

import (
	"fmt"
	"math/bits"

	"fpcache/internal/memtrace"
)

// This file implements dynamic capacity partitioning of the stacked
// DRAM, after Bakhshalipour et al.'s "Die-Stacked DRAM: Memory,
// Cache, or MemCache?": part of the stacked capacity is exposed as
// directly addressed OS-visible memory — accesses to pages mapped
// there hit the stacked array with no tag lookup at all — and the
// rest keeps running the composable cache engine. The split point
// moves at run time: the cache slice resizes through the engine's
// jump-consistent-hash set mapping (ResizeSets, engine.go), and page
// residency in the memory region is itself a consistent hash band, so
// a resize relocates only the proportional slice of pages on either
// side of the boundary — never the whole tag space, after Chang et
// al.'s hardware consistent-hashing resize mechanism.

// PartitionPolicy is the partition axis of the composable design
// space: it decides which pages the OS maps into the part-of-memory
// region at a given split, and where each resident page lives inside
// it.
//
// Consistency contract: residency must be monotone in memPages —
// growing the region only adds resident pages, shrinking only removes
// them — so a resize migrates exactly the pages in the moved band.
type PartitionPolicy interface {
	// Name identifies the policy in specs and reports.
	Name() string
	// Locate reports whether pageIdx is mapped into the memory region
	// when memPages of the stacked capacity's totalPages are memory,
	// and, for residents, the region-relative frame in [0, memPages).
	// memPages < totalPages always holds (the cache slice never
	// vanishes entirely). One call decides both questions so the hot
	// path hashes the page index once.
	Locate(pageIdx uint64, memPages, totalPages int64) (slot int64, resident bool)
}

// HashBandPartition maps a page into the memory region iff its hash
// falls below the region's share of the hash space — a uniform sample
// of the page population whose resident set grows and shrinks as a
// contiguous hash band. This is the "memcache" policy of the spec
// grammar and the default partition.
//
// The band is an idealized placement model: it admits the region's
// *share* of the whole page population, not a fixed page count, so
// when the workload's footprint exceeds the stacked capacity the
// region serves more distinct pages than it has frames (MemSlot
// aliases them; harmless in a trace-driven model that tracks no
// data). Hit ratios for memcache splits are therefore an upper bound
// — an OS that profiles well and maps hot pages — while
// LowAddrPartition is the capacity-bounded conservative contrast.
// DESIGN.md §8 spells out the abstraction.
type HashBandPartition struct{}

// Name implements PartitionPolicy.
func (HashBandPartition) Name() string { return "memcache" }

// Locate implements PartitionPolicy: hash(page) below the threshold
// floor(2^64 * memPages / totalPages) is resident. The threshold is
// monotone in memPages, so the resident set is a growing hash band.
func (HashBandPartition) Locate(pageIdx uint64, memPages, totalPages int64) (int64, bool) {
	if memPages <= 0 {
		return 0, false
	}
	thresh, _ := bits.Div64(uint64(memPages), 0, uint64(totalPages))
	h := splitmix64(pageIdx)
	if h >= thresh {
		return 0, false
	}
	return int64(h % uint64(memPages)), true
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed 64-bit
// hash for page indices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// LowAddrPartition maps the lowest physical pages into the memory
// region — the OS pinning one contiguous segment, the "memlow" policy
// of the spec grammar. A contrast point for the hash band: it is
// capacity-bounded (exactly memPages distinct pages can ever be
// resident) and concentrates the benefit on one address range instead
// of sampling the whole population.
type LowAddrPartition struct{}

// Name implements PartitionPolicy.
func (LowAddrPartition) Name() string { return "memlow" }

// Locate implements PartitionPolicy.
func (LowAddrPartition) Locate(pageIdx uint64, memPages, totalPages int64) (int64, bool) {
	if pageIdx >= uint64(memPages) {
		return 0, false
	}
	return int64(pageIdx), true
}

// PartitionStats accumulates partition-specific counters on top of
// the design's Counters.
type PartitionStats struct {
	// MemHits are accesses served by the part-of-memory region (no
	// tag lookup, zero tag latency).
	MemHits uint64
	// Resizes counts Resize calls that changed the split.
	Resizes uint64
	// FlushedClean / FlushedDirty count pages flushed out of dying
	// cache sets by shrinks (dirty ones wrote back exactly once).
	FlushedClean, FlushedDirty uint64
	// MovedPages counts pages re-homed into newly live sets by grows.
	MovedPages uint64
	// DisplacedPages counts residents evicted when a moved page
	// overflowed its destination set.
	DisplacedPages uint64
	// PurgedPages counts cached pages evicted because a resize moved
	// them into the memory region (their dirty blocks wrote back
	// before the region took over).
	PurgedPages uint64
	// MemPages / CachePages are the current split, in pages.
	MemPages, CachePages int64
}

// Add returns s plus o counter-wise, used to merge per-interval
// measurements; the current-split fields are carried over from o (the
// later interval), matching Sub's convention that they report state,
// not deltas.
func (s PartitionStats) Add(o PartitionStats) PartitionStats {
	return PartitionStats{
		MemHits:        s.MemHits + o.MemHits,
		Resizes:        s.Resizes + o.Resizes,
		FlushedClean:   s.FlushedClean + o.FlushedClean,
		FlushedDirty:   s.FlushedDirty + o.FlushedDirty,
		MovedPages:     s.MovedPages + o.MovedPages,
		DisplacedPages: s.DisplacedPages + o.DisplacedPages,
		PurgedPages:    s.PurgedPages + o.PurgedPages,
		MemPages:       o.MemPages,
		CachePages:     o.CachePages,
	}
}

// Sub returns s minus o counter-wise, used to exclude warmup from
// measurements; the current-split fields are carried over from s.
func (s PartitionStats) Sub(o PartitionStats) PartitionStats {
	return PartitionStats{
		MemHits:        s.MemHits - o.MemHits,
		Resizes:        s.Resizes - o.Resizes,
		FlushedClean:   s.FlushedClean - o.FlushedClean,
		FlushedDirty:   s.FlushedDirty - o.FlushedDirty,
		MovedPages:     s.MovedPages - o.MovedPages,
		DisplacedPages: s.DisplacedPages - o.DisplacedPages,
		PurgedPages:    s.PurgedPages - o.PurgedPages,
		MemPages:       s.MemPages,
		CachePages:     s.CachePages,
	}
}

// Partitioned splits the stacked capacity between a directly
// addressed part-of-memory region and a cache slice (implements
// Design). Accesses to memory-resident pages are stacked hits with
// zero tag latency — they bypass the tag array entirely; everything
// else delegates to the wrapped cache design (an Engine, possibly
// behind a fill Gate), which runs on the remaining capacity.
//
// The stacked address space is split top-down: the cache slice's
// frames occupy [0, cachePages*pageBytes) so cache frame addresses
// stay stable across resizes, and the memory region occupies the top
// memPages frames.
type Partitioned struct {
	name   string
	inner  Design
	engine *Engine
	policy PartitionPolicy

	pageBytes  int
	ways       int
	totalPages int64
	capBytes   int64
	memPages   int64

	ctr    Counters
	pstats PartitionStats
}

// PartitionConfig assembles a Partitioned design.
type PartitionConfig struct {
	// Name is the composed design's reported name
	// ("footprint+memcache:50").
	Name string
	// Inner is the cache slice: a consistent-hash Engine, optionally
	// wrapped in a fill Gate.
	Inner Design
	// Policy decides page residency in the memory region.
	Policy PartitionPolicy
	// MemPercent is the initial share of stacked capacity dedicated
	// to the memory region, in percent [0, 100). The cache slice
	// always keeps at least one set.
	MemPercent int
}

// NewPartitioned builds the partitioned design. The inner design's
// engine must use consistent-hash indexing (EngineConfig.Consistent)
// and its geometry must span the full stacked capacity — the
// partition only decides how much of it the tags currently govern.
func NewPartitioned(cfg PartitionConfig) (*Partitioned, error) {
	if cfg.Inner == nil || cfg.Policy == nil {
		return nil, fmt.Errorf("dcache: partition %q needs an inner design and a policy", cfg.Name)
	}
	eng := EngineOf(cfg.Inner)
	if eng == nil {
		return nil, fmt.Errorf("dcache: partition %q: inner design has no engine", cfg.Name)
	}
	if !eng.Consistent() {
		return nil, fmt.Errorf("dcache: partition %q: inner engine must use consistent-hash indexing", cfg.Name)
	}
	if cfg.MemPercent < 0 || cfg.MemPercent >= 100 {
		return nil, fmt.Errorf("dcache: partition %q: memory share %d%% out of range [0,100)", cfg.Name, cfg.MemPercent)
	}
	p := &Partitioned{
		name:       cfg.Name,
		inner:      cfg.Inner,
		engine:     eng,
		policy:     cfg.Policy,
		pageBytes:  eng.geom.PageBytes,
		ways:       eng.geom.Ways,
		totalPages: eng.geom.CapacityBytes / int64(eng.geom.PageBytes),
		capBytes:   eng.geom.CapacityBytes,
	}
	// Initial split: the engine is empty, so sizing is a pure state
	// change — no flushes, no migration traffic.
	sets, mem := p.split(float64(cfg.MemPercent) / 100)
	eng.liveSets = sets
	p.memPages = mem
	p.pstats.MemPages, p.pstats.CachePages = mem, p.totalPages-mem
	return p, nil
}

// EngineOf unwraps a design (through any chain of Unwrap-ing
// wrappers — gates, partitions) to its composed engine, nil when the
// design has none.
func EngineOf(d Design) *Engine {
	switch v := d.(type) {
	case *Engine:
		return v
	case interface{ Unwrap() Design }:
		return EngineOf(v.Unwrap())
	}
	return nil
}

// split quantizes a memory fraction onto set granularity: the cache
// slice is liveSets*ways pages (at least one set), the memory region
// everything above it.
func (p *Partitioned) split(memFraction float64) (cacheSets int, memPages int64) {
	if memFraction < 0 {
		memFraction = 0
	}
	if memFraction > 1 {
		memFraction = 1
	}
	maxSets := p.engine.sets
	cacheSets = maxSets - int(memFraction*float64(maxSets)+0.5)
	if cacheSets < 1 {
		cacheSets = 1
	}
	if cacheSets > maxSets {
		cacheSets = maxSets
	}
	return cacheSets, p.totalPages - int64(cacheSets)*int64(p.ways)
}

// memBase returns the stacked address where the memory region starts
// (the region occupies the top of the stacked capacity).
func (p *Partitioned) memBase() memtrace.Addr {
	return memtrace.Addr(p.capBytes - p.memPages*int64(p.pageBytes))
}

// Name implements Design.
func (p *Partitioned) Name() string { return p.name }

// Unwrap exposes the cache slice (predictor statistics, engine
// access).
func (p *Partitioned) Unwrap() Design { return p.inner }

// Policy exposes the partition policy.
func (p *Partitioned) Policy() PartitionPolicy { return p.policy }

// Counters implements Design: the memory-region path's counters plus
// the cache slice's.
func (p *Partitioned) Counters() Counters { return p.ctr.Add(p.inner.Counters()) }

// Partition returns the partition-specific statistics.
func (p *Partitioned) Partition() PartitionStats {
	s := p.pstats
	s.MemPages, s.CachePages = p.memPages, p.totalPages-p.memPages
	return s
}

// MetadataBits implements Design: the cache slice's tag array (sized
// for the largest possible slice — hardware provisions tags for the
// whole capacity) — the memory region needs none, which is the
// partition's SRAM win.
func (p *Partitioned) MetadataBits() int64 { return p.inner.MetadataBits() }

// Access implements Design. Memory-resident pages are stacked hits
// with zero tag cycles; everything else goes through the cache slice.
func (p *Partitioned) Access(rec memtrace.Record, ops []Op) Outcome {
	pageIdx, block := pageAddrOf(rec.Addr, p.pageBytes)
	if slot, resident := p.policy.Locate(pageIdx, p.memPages, p.totalPages); resident {
		p.ctr.record(rec)
		p.ctr.Hits++
		p.pstats.MemHits++
		addr := p.memBase() + memtrace.Addr(slot*int64(p.pageBytes)+int64(block)*64)
		ops = append(ops[:0], Op{
			Level: Stacked, Addr: addr, Bytes: 64,
			Write: rec.Write, Critical: criticality(rec.Write), DependsOn: NoDep,
		})
		return Outcome{Hit: true, Ops: ops}
	}
	return p.inner.Access(rec, ops)
}

// Resize moves the split point to the given memory fraction,
// appending the transition's DRAM operations to ops. The protocol
// (DESIGN.md §8) keeps both invariants across the move — no stale hit,
// no lost writeback:
//
//   - cache shrink (memory grows): the engine first flushes its dying
//     sets (dirty pages write back exactly once, clean ones are
//     invalidated), then the surviving sets are purged of pages the
//     larger memory region now claims — a dirty cached page always
//     writes back before the tagless region takes over, so no
//     writeback is lost and no unreachable stale copy remains.
//   - cache grow (memory shrinks): pages leaving the memory region
//     simply become cacheable (first touch misses and refetches);
//     the engine then re-homes the consistent-hash slice of cached
//     pages into the newly live sets.
//
// Resize with an unchanged quantized split is a no-op and does not
// count as a resize.
func (p *Partitioned) Resize(memFraction float64, ops []Op) []Op {
	newSets, newMem := p.split(memFraction)
	if newSets == p.engine.LiveSets() && newMem == p.memPages {
		return ops
	}
	p.pstats.Resizes++
	var d ResizeDelta
	if newSets < p.engine.LiveSets() {
		ops, d = p.engine.ResizeSets(newSets, ops)
		p.memPages = newMem
		ops = p.purgeMemResident(ops)
	} else {
		p.memPages = newMem
		ops, d = p.engine.ResizeSets(newSets, ops)
	}
	p.pstats.FlushedClean += uint64(d.FlushedClean)
	p.pstats.FlushedDirty += uint64(d.FlushedDirty)
	p.pstats.MovedPages += uint64(d.Moved)
	p.pstats.DisplacedPages += uint64(d.Displaced)
	return ops
}

// purgeMemResident evicts every cached page the (just grown) memory
// region now claims, through the engine's normal eviction path, so
// dirty blocks write back before the tagless region shadows them.
func (p *Partitioned) purgeMemResident(ops []Op) []Op {
	e := p.engine
	for s := 0; s < e.liveSets; s++ {
		for w := 0; w < p.ways; w++ {
			ent := e.tags.Slot(s, w)
			if ent == nil || !ent.Valid() {
				continue
			}
			if _, resident := p.policy.Locate(ent.Tag, p.memPages, p.totalPages); !resident {
				continue
			}
			ops = e.evict(s, ent, e.frame(s, w), ops)
			e.tags.Invalidate(s, ent.Tag)
			p.pstats.PurgedPages++
		}
	}
	return ops
}

// CheckInvariants scans the partition for states a resize must never
// leave behind; the resize invariant tests call it after every move.
// It verifies that no tag entry lives beyond the live sets, that
// every entry sits in its consistent-hash set, and that no cached
// page is shadowed by the memory region.
func (p *Partitioned) CheckInvariants() error {
	e := p.engine
	for s := 0; s < e.sets; s++ {
		for w := 0; w < p.ways; w++ {
			ent := e.tags.Slot(s, w)
			if ent == nil || !ent.Valid() {
				continue
			}
			if s >= e.liveSets {
				return fmt.Errorf("dcache: page %#x resident in dead set %d (live %d)", ent.Tag, s, e.liveSets)
			}
			if hs := jumpHash(ent.Tag, e.liveSets); hs != s {
				return fmt.Errorf("dcache: page %#x in set %d but hashes to %d at %d live sets", ent.Tag, s, hs, e.liveSets)
			}
			if _, resident := p.policy.Locate(ent.Tag, p.memPages, p.totalPages); resident {
				return fmt.Errorf("dcache: page %#x cached while memory-resident (mem %d/%d pages)", ent.Tag, p.memPages, p.totalPages)
			}
		}
	}
	return nil
}
