package dcache

import (
	"testing"

	"fpcache/internal/memtrace"
)

func testEngine(t *testing.T, alloc AllocPolicy, mapping MappingPolicy) *Engine {
	t.Helper()
	geom := PageGeometry{CapacityBytes: 1 << 20, PageBytes: 2048, Ways: 4}
	e, err := NewEngine(EngineConfig{Name: "test", Geometry: geom, TagCycles: 3, Alloc: alloc, Mapping: mapping})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestGateCountersFollowOutcomes pins the gate's counter
// classification to the inner engine's outcomes: a resident-page
// block miss under partial allocation must count as a miss at the
// gate, not a hit (the hot-page monolith could conflate the two only
// because whole-page allocation never block-misses).
func TestGateCountersFollowOutcomes(t *testing.T) {
	eng := testEngine(t, DemandAlloc{}, PageDirectMapping{PageBytes: 2048})
	g, err := NewGate(GateConfig{Name: "test+banshee", Engine: eng, Policy: BansheeGatePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	rec := func(addr memtrace.Addr) memtrace.Record { return memtrace.Record{Addr: addr} }

	var ops []Op
	// Cold page, empty set: banshee admits (count 1 > victim freq 0).
	out := g.Access(rec(0), ops)
	if out.Hit || out.Bypass {
		t.Fatalf("first touch: %+v", out)
	}
	// Resident page, block 1 absent: inner block miss — gate must
	// report a miss.
	out = g.Access(rec(64), out.Ops)
	if out.Hit {
		t.Fatal("resident block miss reported as hit")
	}
	// Resident page, block 0 present: genuine hit.
	out = g.Access(rec(0), out.Ops)
	if !out.Hit {
		t.Fatal("resident block hit not reported")
	}

	ctr := g.Counters()
	if ctr.Hits != 1 || ctr.Misses != 2 || ctr.Bypasses != 0 {
		t.Fatalf("gate counters = %+v, want 1 hit / 2 misses / 0 bypasses", ctr)
	}
	if got := ctr.Accesses(); got != 3 {
		t.Fatalf("accesses = %d", got)
	}
}

// TestEngineOpsValid checks every outcome of every policy combination
// against the structural Op invariants (dependencies, sizes,
// criticality), including the spread emission paths.
func TestEngineOpsValid(t *testing.T) {
	geom := PageGeometry{CapacityBytes: 1 << 20, PageBytes: 2048, Ways: 4}
	frames := geom.CapacityBytes / int64(geom.PageBytes)
	allocs := []AllocPolicy{PageAlloc{}, DemandAlloc{}}
	mappings := []MappingPolicy{
		PageDirectMapping{PageBytes: geom.PageBytes},
		BlockRowMapping{Frames: frames},
		HybridMapping{PageBytes: geom.PageBytes, Frames: frames},
	}
	for _, a := range allocs {
		for _, m := range mappings {
			e := testEngine(t, a, m)
			var ops []Op
			for i := 0; i < 20000; i++ {
				addr := memtrace.Addr((i * 2897) % (1 << 22) * 64)
				out := e.Access(memtrace.Record{Addr: addr, Write: i%3 == 0}, ops)
				if err := ValidateOps(out.Ops); err != nil {
					t.Fatalf("%s/%s access %d: %v", a.Name(), m.Name(), i, err)
				}
				ops = out.Ops
			}
			c := e.Counters()
			if c.Accesses() != 20000 || c.Hits+c.Misses != 20000 {
				t.Fatalf("%s/%s: inconsistent counters %+v", a.Name(), m.Name(), c)
			}
			if c.PageEvicts == 0 {
				t.Fatalf("%s/%s: footprint too small to exercise evictions", a.Name(), m.Name())
			}
		}
	}
}
