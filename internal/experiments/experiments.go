// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each driver returns typed rows and can
// render itself; cmd/fpbench and the root bench harness are thin
// wrappers around this package.
//
// Every driver decomposes its grid into independent simulation points
// and submits them to the internal/sweep executor, so multi-core
// machines sweep the (workload x design x capacity) space in
// parallel. Results are gathered in declaration order, which makes
// output byte-identical between serial and parallel runs (see the
// determinism regression test in parallel_test.go).
//
// The per-experiment index lives in DESIGN.md §4. Experiments run at
// a capacity scale factor (DESIGN.md §2) but are labelled with
// paper-equivalent capacities.
package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
	"fpcache/internal/sweep"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// Options control experiment size; the zero value is filled with
// defaults suitable for the full harness.
type Options struct {
	// Scale is the capacity scale factor (default 1/16).
	Scale float64
	// Refs is the measured reference count per configuration.
	Refs int
	// WarmupRefs precede measurement (default: same as Refs).
	WarmupRefs int
	// TimingRefs is the measured reference count for event-driven
	// runs (more expensive; default Refs/4).
	TimingRefs int
	// Seed drives all randomness.
	Seed int64
	// Workloads defaults to the full suite.
	Workloads []string
	// Capacities are paper-scale MB points (default 64-512).
	Capacities []int
	// Workers bounds the simulation-point fan-out: 0 (the zero value)
	// and 1 run serially, higher values run that many points
	// concurrently, and negative values use GOMAXPROCS. Output is
	// byte-identical at every setting.
	Workers int
	// StateCache names a directory of content-keyed warm-state
	// snapshots (fpbench -state-cache). When set, every point built
	// through the spec-driven helpers warms its design once, snapshots
	// the warm state, and later runs of the same (workload, spec,
	// seed, scale, warmup) point restore it instead of re-paying the
	// warmup references. Results are byte-identical either way
	// (snapshot restore is exact; the snapshot-parity suite in
	// internal/system pins it). Empty disables caching.
	StateCache string
}

// WithDefaults returns the options as every driver will actually run
// them, with zero fields replaced by their defaults — what a
// machine-readable report should record as the run configuration.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0 / 16
	}
	if o.Refs == 0 {
		o.Refs = 1_000_000
	}
	if o.WarmupRefs == 0 {
		o.WarmupRefs = o.Refs
	}
	if o.TimingRefs == 0 {
		o.TimingRefs = o.Refs / 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = synth.Names()
	}
	if len(o.Capacities) == 0 {
		o.Capacities = []int{64, 128, 256, 512}
	}
	return o
}

// workerCount resolves the Workers option to a concrete pool size.
func (o Options) workerCount() int {
	if o.Workers == 0 {
		return 1
	}
	return sweep.Workers(o.Workers)
}

// pmap fans n independent simulation points out over the options'
// worker pool and gathers the results in point order.
func pmap[T any](o Options, n int, job func(i int) (T, error)) ([]T, error) {
	return sweep.Map(o.workerCount(), n, job)
}

// gridPoint is one (workload, capacity) cell of an experiment grid.
type gridPoint struct {
	workload   string
	capacityMB int
}

// grid returns the workload x capacity cross product in declaration
// order (workloads outer, capacities inner — the paper's row order).
func (o Options) grid() []gridPoint {
	pts := make([]gridPoint, 0, len(o.Workloads)*len(o.Capacities))
	for _, wl := range o.Workloads {
		for _, mb := range o.Capacities {
			pts = append(pts, gridPoint{wl, mb})
		}
	}
	return pts
}

// trace builds a generator for a workload at the options' scale.
func (o Options) trace(workload string) (memtrace.Source, synth.Profile, error) {
	prof, err := synth.ByName(workload)
	if err != nil {
		return nil, synth.Profile{}, err
	}
	gen, err := synth.NewGenerator(prof, o.Seed, o.Scale)
	if err != nil {
		return nil, synth.Profile{}, err
	}
	return gen, gen.Profile(), nil
}

// runFunctional is the common functional-mode step.
func (o Options) runFunctional(design dcache.Design, workload string) (system.FunctionalResult, error) {
	src, _, err := o.trace(workload)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	return system.RunFunctional(design, src, o.WarmupRefs, o.Refs), nil
}

// runTiming is the common timing-mode step.
func (o Options) runTiming(design dcache.Design, workload string) (system.TimingResult, error) {
	return o.runTimingResized(design, workload, nil)
}

// runTimingResized is runTiming with a partition resize schedule.
func (o Options) runTimingResized(design dcache.Design, workload string, plan *system.ResizePlan) (system.TimingResult, error) {
	src, prof, err := o.trace(workload)
	if err != nil {
		return system.TimingResult{}, err
	}
	return system.RunTiming(design, src, system.TimingConfig{
		Cores:      prof.Cores,
		MLP:        prof.MLP,
		WarmupRefs: o.WarmupRefs,
		MaxRefs:    o.TimingRefs,
		Resize:     plan,
	}), nil
}

// buildFunctional constructs a design and runs one functional point —
// the body of most sweep jobs. With a state cache configured, the
// design's warm state is restored (or warmed once and stored) instead
// of re-simulating the warmup prefix.
func (o Options) buildFunctional(spec system.DesignSpec, workload string) (system.FunctionalResult, error) {
	design, err := system.BuildDesign(spec)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	if o.StateCache == "" || o.WarmupRefs <= 0 {
		return o.runFunctional(design, workload)
	}
	state, src, _, err := o.warmState(design, spec, workload)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	return state.Measure(src, o.Refs, nil), nil
}

// buildTiming constructs a design and runs one timing point.
func (o Options) buildTiming(spec system.DesignSpec, workload string) (system.TimingResult, error) {
	return o.buildTimingResized(spec, workload, nil)
}

// buildTimingResized constructs a design and runs one timing point
// under a partition resize schedule. Timing runs share the functional
// warm-state cache: the design state after warmup is identical in both
// modes (RunTiming's warmup is the same Access sequence), so one
// snapshot per point serves every experiment that sweeps it.
func (o Options) buildTimingResized(spec system.DesignSpec, workload string, plan *system.ResizePlan) (system.TimingResult, error) {
	design, err := system.BuildDesign(spec)
	if err != nil {
		return system.TimingResult{}, err
	}
	if o.StateCache == "" || o.WarmupRefs <= 0 {
		return o.runTimingResized(design, workload, plan)
	}
	state, src, prof, err := o.warmState(design, spec, workload)
	if err != nil {
		return system.TimingResult{}, err
	}
	return system.RunTiming(state.Design(), src, system.TimingConfig{
		Cores:   prof.Cores,
		MLP:     prof.MLP,
		MaxRefs: o.TimingRefs,
		Resize:  plan,
	}), nil
}

// warmState builds the point's warm simulation state — restored from
// the state cache when a snapshot exists, warmed from the trace (and
// stored) otherwise — returning the trace source positioned at the
// first measured reference.
func (o Options) warmState(design dcache.Design, spec system.DesignSpec, workload string) (*system.SimState, memtrace.Source, synth.Profile, error) {
	src, prof, err := o.trace(workload)
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	cache, err := system.NewWarmCache(o.StateCache)
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	key := system.WarmKey{
		Workload:   workload,
		Seed:       o.Seed,
		Scale:      o.Scale,
		WarmupRefs: o.WarmupRefs,
		Spec:       spec,
	}
	state := system.NewSimState(design)
	hit, err := cache.Load(key, state)
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	if hit {
		memtrace.Skip(src, o.WarmupRefs)
		return state, src, prof, nil
	}
	state.Warm(src, o.WarmupRefs)
	if err := cache.Store(key, state); err != nil {
		return nil, nil, synth.Profile{}, err
	}
	return state, src, prof, nil
}

// Runner is the common shape of every experiment driver.
type Runner func(o Options, w io.Writer) error

// RowsFunc computes an experiment's typed rows without rendering —
// the machine-readable face of a driver (fpbench -json).
type RowsFunc func(o Options) (any, error)

// experiment pairs a driver's renderer with its rows function.
type experiment struct {
	render Runner
	rows   RowsFunc
}

// rowsOf adapts a typed rows function to the RowsFunc shape.
func rowsOf[T any](fn func(Options) ([]T, error)) RowsFunc {
	return func(o Options) (any, error) { return fn(o) }
}

// registry maps experiment identifiers to drivers.
var registry = map[string]experiment{
	"figure1":     {Figure1, rowsOf(Figure1Rows)},
	"figure4":     {Figure4, rowsOf(Figure4Rows)},
	"figure5":     {Figure5, rowsOf(Figure5Rows)},
	"figure6":     {Figure6, rowsOf(Figure6Rows)},
	"figure7":     {Figure7, rowsOf(Figure7Rows)},
	"figure8":     {Figure8, rowsOf(Figure8Rows)},
	"figure9":     {Figure9, rowsOf(Figure9Rows)},
	"figure10":    {Figure10, rowsOf(Figure10Rows)},
	"figure11":    {Figure11, rowsOf(Figure11Rows)},
	"figure12":    {Figure12, rowsOf(Figure12Rows)},
	"table4":      {Table4, rowsOf(Table4Rows)},
	"ablation":    {Ablations, func(o Options) (any, error) { return AblationRows(o) }},
	"designspace": {DesignSpace, rowsOf(DesignSpaceRows)},
	"latency":     {Latency, rowsOf(LatencyRows)},
	"partition":   {Partition, rowsOf(PartitionRows)},
}

// order lists experiments in paper order for "run everything"; the
// design-space cross-product, the latency-distribution study, and the
// partition study (not in the paper) run last.
var order = []string{
	"figure1", "table4", "figure4", "figure5", "figure6", "figure7",
	"figure8", "figure9", "figure10", "figure11", "figure12", "ablation",
	"designspace", "latency", "partition",
}

// Names returns the experiment identifiers in paper order.
func Names() []string { return append([]string(nil), order...) }

// Run executes one experiment by identifier.
func Run(name string, o Options, w io.Writer) error {
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.render(o, w)
}

// Rows computes the typed rows backing one experiment, without
// rendering tables.
func Rows(name string, o Options) (any, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.rows(o)
}

// RunAll executes every experiment in paper order. Individual
// experiments parallelize internally per Options.Workers; running the
// experiments themselves in sequence keeps output streaming in paper
// order and bounds concurrency at one worker pool.
func RunAll(o Options, w io.Writer) error {
	for _, name := range order {
		if err := Run(name, o, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
