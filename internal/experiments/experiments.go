// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each driver returns typed rows and can
// render itself; cmd/fpbench and the root bench harness are thin
// wrappers around this package.
//
// The per-experiment index lives in DESIGN.md §4. Experiments run at
// a capacity scale factor (DESIGN.md §2) but are labelled with
// paper-equivalent capacities.
package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// Options control experiment size; the zero value is filled with
// defaults suitable for the full harness.
type Options struct {
	// Scale is the capacity scale factor (default 1/16).
	Scale float64
	// Refs is the measured reference count per configuration.
	Refs int
	// WarmupRefs precede measurement (default: same as Refs).
	WarmupRefs int
	// TimingRefs is the measured reference count for event-driven
	// runs (more expensive; default Refs/4).
	TimingRefs int
	// Seed drives all randomness.
	Seed int64
	// Workloads defaults to the full suite.
	Workloads []string
	// Capacities are paper-scale MB points (default 64-512).
	Capacities []int
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0 / 16
	}
	if o.Refs == 0 {
		o.Refs = 1_000_000
	}
	if o.WarmupRefs == 0 {
		o.WarmupRefs = o.Refs
	}
	if o.TimingRefs == 0 {
		o.TimingRefs = o.Refs / 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = synth.Names()
	}
	if len(o.Capacities) == 0 {
		o.Capacities = []int{64, 128, 256, 512}
	}
	return o
}

// trace builds a generator for a workload at the options' scale.
func (o Options) trace(workload string) (memtrace.Source, synth.Profile, error) {
	prof, err := synth.ByName(workload)
	if err != nil {
		return nil, synth.Profile{}, err
	}
	gen, err := synth.NewGenerator(prof, o.Seed, o.Scale)
	if err != nil {
		return nil, synth.Profile{}, err
	}
	return gen, gen.Profile(), nil
}

// runFunctional is the common functional-mode step.
func (o Options) runFunctional(design dcache.Design, workload string) (system.FunctionalResult, error) {
	src, _, err := o.trace(workload)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	return system.RunFunctional(design, src, o.WarmupRefs, o.Refs), nil
}

// runTiming is the common timing-mode step.
func (o Options) runTiming(design dcache.Design, workload string) (system.TimingResult, error) {
	src, prof, err := o.trace(workload)
	if err != nil {
		return system.TimingResult{}, err
	}
	return system.RunTiming(design, src, system.TimingConfig{
		Cores:      prof.Cores,
		MLP:        prof.MLP,
		WarmupRefs: o.WarmupRefs,
		MaxRefs:    o.TimingRefs,
	}), nil
}

// Runner is the common shape of every experiment driver.
type Runner func(o Options, w io.Writer) error

// registry maps experiment identifiers to drivers.
var registry = map[string]Runner{
	"figure1":  Figure1,
	"figure4":  Figure4,
	"figure5":  Figure5,
	"figure6":  Figure6,
	"figure7":  Figure7,
	"figure8":  Figure8,
	"figure9":  Figure9,
	"figure10": Figure10,
	"figure11": Figure11,
	"figure12": Figure12,
	"table4":   Table4,
	"ablation": Ablations,
}

// order lists experiments in paper order for "run everything".
var order = []string{
	"figure1", "table4", "figure4", "figure5", "figure6", "figure7",
	"figure8", "figure9", "figure10", "figure11", "figure12", "ablation",
}

// Names returns the experiment identifiers in paper order.
func Names() []string { return append([]string(nil), order...) }

// Run executes one experiment by identifier.
func Run(name string, o Options, w io.Writer) error {
	r, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return r(o, w)
}

// RunAll executes every experiment in paper order.
func RunAll(o Options, w io.Writer) error {
	for _, name := range order {
		if err := Run(name, o, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
