// Package experiments regenerates every table and figure of the
// paper's evaluation (§6). Each driver returns typed rows and can
// render itself; cmd/fpbench and the root bench harness are thin
// wrappers around this package.
//
// Every driver decomposes its grid into independent simulation points
// and submits them to the internal/sweep executor, so multi-core
// machines sweep the (workload x design x capacity) space in
// parallel. Results are gathered in declaration order, which makes
// output byte-identical between serial and parallel runs (see the
// determinism regression test in parallel_test.go).
//
// The per-experiment index lives in DESIGN.md §4. Experiments run at
// a capacity scale factor (DESIGN.md §2) but are labelled with
// paper-equivalent capacities.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"fpcache/internal/dcache"
	"fpcache/internal/fault"
	"fpcache/internal/faultinject"
	"fpcache/internal/memtrace"
	"fpcache/internal/sweep"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// Options control experiment size; the zero value is filled with
// defaults suitable for the full harness.
type Options struct {
	// Scale is the capacity scale factor (default 1/16).
	Scale float64
	// Refs is the measured reference count per configuration.
	Refs int
	// WarmupRefs precede measurement (default: same as Refs).
	WarmupRefs int
	// TimingRefs is the measured reference count for event-driven
	// runs (more expensive; default Refs/4).
	TimingRefs int
	// Seed drives all randomness.
	Seed int64
	// Workloads defaults to the full suite.
	Workloads []string
	// Capacities are paper-scale MB points (default 64-512).
	Capacities []int
	// Workers bounds the simulation-point fan-out: 0 (the zero value)
	// and 1 run serially, higher values run that many points
	// concurrently, and negative values use GOMAXPROCS. Output is
	// byte-identical at every setting.
	Workers int
	// StateCache names a directory of content-keyed warm-state
	// snapshots (fpbench -state-cache). When set, every point built
	// through the spec-driven helpers warms its design once, snapshots
	// the warm state, and later runs of the same (workload, spec,
	// seed, scale, warmup) point restore it instead of re-paying the
	// warmup references. Results are byte-identical either way
	// (snapshot restore is exact; the snapshot-parity suite in
	// internal/system pins it), including when a cached entry turns
	// out corrupt: the entry is quarantined and the point falls back
	// to a cold warmup. Empty disables caching.
	StateCache string
	// StateCacheMaxBytes caps the state cache's total size (fpbench
	// -state-cache-max); oldest entries are evicted first. 0 is
	// unlimited.
	StateCacheMaxBytes int64

	// The fault-tolerance knobs below switch sweeps from the strict
	// executor (first error aborts the experiment) to the tolerant one
	// (sweep.MapTolerant): panics are isolated per point, retryable
	// faults retry up to MaxAttempts with RetryBackoff, PointTimeout
	// bounds each attempt, and everything that failed or retried lands
	// in the run's FailureReport. Successful points stay byte-identical
	// to a strict run at any worker count.

	// MaxAttempts bounds per-point attempts for retryable faults
	// (fpbench/fpsim -max-retries + 1); values below 2 mean no retry.
	MaxAttempts int
	// RetryBackoff is the base delay between attempts (doubled per
	// retry, deterministically jittered from Seed).
	RetryBackoff time.Duration
	// PointTimeout is the per-attempt deadline (fpbench/fpsim
	// -point-timeout); 0 disables it.
	PointTimeout time.Duration
	// Tolerate keeps an experiment's surviving rows when points fail
	// for good: failed points degrade to zero-valued cells recorded in
	// the FailureReport instead of failing the experiment.
	Tolerate bool
	// Injector schedules faults for testing the machinery above; nil
	// (always, outside fault-injection runs) injects nothing.
	Injector *faultinject.Injector `json:"-"`

	// rec collects the run's FailureReport when the caller asked for
	// one (RowsWithReport); nil drops the records.
	rec *failureRecorder
}

// faultTolerant reports whether any tolerance knob asks for the
// tolerant executor; with none set, sweeps run strict exactly as
// before.
func (o Options) faultTolerant() bool {
	return o.MaxAttempts > 1 || o.RetryBackoff > 0 || o.PointTimeout > 0 ||
		o.Tolerate || o.Injector.Active()
}

// WithDefaults returns the options as every driver will actually run
// them, with zero fields replaced by their defaults — what a
// machine-readable report should record as the run configuration.
func (o Options) WithDefaults() Options { return o.withDefaults() }

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0 / 16
	}
	if o.Refs == 0 {
		o.Refs = 1_000_000
	}
	if o.WarmupRefs == 0 {
		o.WarmupRefs = o.Refs
	}
	if o.TimingRefs == 0 {
		o.TimingRefs = o.Refs / 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Workloads) == 0 {
		o.Workloads = synth.Names()
	}
	if len(o.Capacities) == 0 {
		o.Capacities = []int{64, 128, 256, 512}
	}
	return o
}

// workerCount resolves the Workers option to a concrete pool size.
func (o Options) workerCount() int {
	if o.Workers == 0 {
		return 1
	}
	return sweep.Workers(o.Workers)
}

// Failure dispositions: what became of a faulted point.
const (
	// DispositionRetried: the point eventually succeeded; its row is
	// indistinguishable from an unfaulted run's.
	DispositionRetried = "retried-to-success"
	// DispositionDegraded: the point failed for good; its row cells
	// are zero-valued (only reported under Options.Tolerate).
	DispositionDegraded = "degraded"
	// DispositionQuarantined: a corrupt warm-state snapshot was pulled
	// out of service; the point fell back to a cold warmup and its row
	// is byte-identical to a never-cached run.
	DispositionQuarantined = "quarantined"
)

// Failure is one FailureReport entry: a point that panicked, timed
// out, errored, retried, or had its cache entry quarantined.
type Failure struct {
	// Point identifies the faulted point (sweep/point index for sweep
	// faults, workload/spec for cache faults).
	Point string `json:"point"`
	// Class is the fault taxonomy class.
	Class fault.Class `json:"class"`
	// Attempts is how many times the point ran.
	Attempts int `json:"attempts"`
	// Disposition is one of the Disposition* constants.
	Disposition string `json:"disposition"`
	// Error is the final error ("" when the point recovered).
	Error string `json:"error,omitempty"`
}

// FailureReport summarizes every fault one experiment absorbed —
// empty means a clean run. Entries are sorted for deterministic output
// at any worker count.
type FailureReport struct {
	Experiment string    `json:"experiment,omitempty"`
	Failures   []Failure `json:"failures"`
}

// failureRecorder is the mutex-guarded collector behind a run's
// FailureReport; a nil recorder drops records.
type failureRecorder struct {
	mu       sync.Mutex
	sweeps   int
	failures []Failure
}

func (r *failureRecorder) add(f Failure) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.failures = append(r.failures, f)
	r.mu.Unlock()
}

// nextSweep numbers pmap fan-outs for point keys when no injector is
// tracking them.
func (r *failureRecorder) nextSweep() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.sweeps
	r.sweeps++
	return n
}

// report finalizes the collected failures. Sorting makes the report
// deterministic: in-sweep entries arrive in index order, but
// quarantine events from concurrent points interleave arbitrarily.
func (r *failureRecorder) report(experiment string) *FailureReport {
	rep := &FailureReport{Experiment: experiment}
	if r == nil {
		return rep
	}
	r.mu.Lock()
	rep.Failures = append(rep.Failures, r.failures...)
	r.mu.Unlock()
	sort.SliceStable(rep.Failures, func(i, j int) bool {
		a, b := rep.Failures[i], rep.Failures[j]
		if a.Point != b.Point {
			return a.Point < b.Point
		}
		if a.Disposition != b.Disposition {
			return a.Disposition < b.Disposition
		}
		return a.Class < b.Class
	})
	return rep
}

// pmap fans n independent simulation points out over the options'
// worker pool and gathers the results in point order. Without
// tolerance knobs it is the strict executor (first error aborts, as
// every experiment always ran); with them, points run under
// sweep.MapTolerant — isolated, retried, deadline-bounded — and the
// fan-out's faults land in the failure recorder. Either way the
// results of successful points are byte-identical at any worker
// count.
func pmap[T any](o Options, n int, job func(i int) (T, error)) ([]T, error) {
	if !o.faultTolerant() {
		return sweep.Map(o.workerCount(), n, job)
	}
	// Sweep ordinals come from the injector when one is scheduling (so
	// its sweep= selectors and our point keys agree), else from the
	// recorder; experiments launch sweeps sequentially, so numbering is
	// deterministic either way.
	var seq int
	if o.Injector.Active() {
		seq = o.Injector.NextSweep()
	} else {
		seq = o.rec.nextSweep()
	}
	wrapped := job
	if o.Injector.Active() {
		wrapped = func(i int) (T, error) {
			if err := o.Injector.Point(seq, i); err != nil {
				var zero T
				return zero, err
			}
			return job(i)
		}
	}
	pol := sweep.Policy{
		MaxAttempts: o.MaxAttempts,
		Backoff:     o.RetryBackoff,
		Timeout:     o.PointTimeout,
		Seed:        o.Seed,
	}
	out, reports := sweep.MapTolerant(o.workerCount(), n, pol, wrapped)
	var firstErr error
	for _, r := range reports {
		f := Failure{
			Point:       fmt.Sprintf("sweep%d/point%d", seq, r.Index),
			Class:       r.Class,
			Attempts:    r.Attempts,
			Disposition: DispositionRetried,
		}
		if r.Err != nil {
			f.Disposition = DispositionDegraded
			f.Error = r.Err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("point %d: %w", r.Index, r.Err)
			}
		}
		o.rec.add(f)
	}
	if firstErr != nil && !o.Tolerate {
		return nil, firstErr
	}
	return out, nil
}

// gridPoint is one (workload, capacity) cell of an experiment grid.
type gridPoint struct {
	workload   string
	capacityMB int
}

// grid returns the workload x capacity cross product in declaration
// order (workloads outer, capacities inner — the paper's row order).
func (o Options) grid() []gridPoint {
	pts := make([]gridPoint, 0, len(o.Workloads)*len(o.Capacities))
	for _, wl := range o.Workloads {
		for _, mb := range o.Capacities {
			pts = append(pts, gridPoint{wl, mb})
		}
	}
	return pts
}

// trace builds a generator for a workload at the options' scale.
func (o Options) trace(workload string) (memtrace.Source, synth.Profile, error) {
	prof, err := synth.ByName(workload)
	if err != nil {
		return nil, synth.Profile{}, err
	}
	gen, err := synth.NewGenerator(prof, o.Seed, o.Scale)
	if err != nil {
		return nil, synth.Profile{}, err
	}
	return gen, gen.Profile(), nil
}

// runFunctional is the common functional-mode step.
func (o Options) runFunctional(design dcache.Design, workload string) (system.FunctionalResult, error) {
	src, _, err := o.trace(workload)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	return system.RunFunctional(design, src, o.WarmupRefs, o.Refs)
}

// runTiming is the common timing-mode step.
func (o Options) runTiming(design dcache.Design, workload string) (system.TimingResult, error) {
	return o.runTimingResized(design, workload, nil)
}

// runTimingResized is runTiming with a partition resize policy —
// static schedule (*system.ResizePlan) or adaptive controller.
func (o Options) runTimingResized(design dcache.Design, workload string, pol system.ResizePolicy) (system.TimingResult, error) {
	src, prof, err := o.trace(workload)
	if err != nil {
		return system.TimingResult{}, err
	}
	return system.RunTiming(design, src, system.TimingConfig{
		Cores:      prof.Cores,
		MLP:        prof.MLP,
		WarmupRefs: o.WarmupRefs,
		MaxRefs:    o.TimingRefs,
		Resize:     pol,
	})
}

// buildFunctional constructs a design and runs one functional point —
// the body of most sweep jobs. With a state cache configured, the
// design's warm state is restored (or warmed once and stored) instead
// of re-simulating the warmup prefix.
func (o Options) buildFunctional(spec system.DesignSpec, workload string) (system.FunctionalResult, error) {
	return o.buildFunctionalResized(spec, workload, nil)
}

// buildFunctionalResized is buildFunctional with a partition resize
// policy. Warm-state snapshots are taken at the warmup boundary, where
// a stateful policy (the adaptive controller) is still unprimed, so
// the cache path installs the policy on the restored state and the
// measured run is byte-identical to an uninterrupted resized run.
func (o Options) buildFunctionalResized(spec system.DesignSpec, workload string, pol system.ResizePolicy) (system.FunctionalResult, error) {
	if o.StateCache == "" || o.WarmupRefs <= 0 {
		design, err := system.BuildDesign(spec)
		if err != nil {
			return system.FunctionalResult{}, err
		}
		src, _, err := o.trace(workload)
		if err != nil {
			return system.FunctionalResult{}, err
		}
		return system.RunFunctionalResized(design, src, o.WarmupRefs, o.Refs, pol)
	}
	state, src, _, err := o.warmState(spec, workload)
	if err != nil {
		return system.FunctionalResult{}, err
	}
	state.SetPolicy(pol)
	return state.Measure(src, o.Refs)
}

// buildTiming constructs a design and runs one timing point.
func (o Options) buildTiming(spec system.DesignSpec, workload string) (system.TimingResult, error) {
	return o.buildTimingResized(spec, workload, nil)
}

// buildTimingResized constructs a design and runs one timing point
// under a partition resize schedule. Timing runs share the functional
// warm-state cache: the design state after warmup is identical in both
// modes (RunTiming's warmup is the same Access sequence), so one
// snapshot per point serves every experiment that sweeps it.
func (o Options) buildTimingResized(spec system.DesignSpec, workload string, pol system.ResizePolicy) (system.TimingResult, error) {
	if o.StateCache == "" || o.WarmupRefs <= 0 {
		design, err := system.BuildDesign(spec)
		if err != nil {
			return system.TimingResult{}, err
		}
		return o.runTimingResized(design, workload, pol)
	}
	state, src, prof, err := o.warmState(spec, workload)
	if err != nil {
		return system.TimingResult{}, err
	}
	return system.RunTiming(state.Design(), src, system.TimingConfig{
		Cores:   prof.Cores,
		MLP:     prof.MLP,
		MaxRefs: o.TimingRefs,
		Resize:  pol,
	})
}

// warmCache opens the configured state cache with the options' cap
// and, under fault injection, the injector's stream wrappers.
func (o Options) warmCache() (*system.WarmCache, error) {
	cache, err := system.NewWarmCache(o.StateCache)
	if err != nil {
		return nil, err
	}
	cache.SetMaxBytes(o.StateCacheMaxBytes)
	if o.Injector.Active() {
		cache.WrapReader = func(r io.Reader) io.Reader {
			return o.Injector.Reader(faultinject.SiteSnapshotRead, r)
		}
		cache.WrapWriter = func(w io.Writer) io.Writer {
			return o.Injector.Writer(faultinject.SiteSnapshotWrite, w)
		}
	}
	return cache, nil
}

// warmState builds the point's warm simulation state — restored from
// the state cache when a snapshot exists, warmed from the trace (and
// stored) otherwise — returning the trace source positioned at the
// first measured reference.
//
// The cache can only accelerate the point, never poison it: a corrupt
// or identity-mismatched entry is quarantined by the cache, recorded
// in the failure report, and the point rebuilds its design and warms
// cold — producing rows byte-identical to a never-cached run. A
// transient read failure propagates instead (the entry may be fine),
// so the sweep's retry policy decides.
func (o Options) warmState(spec system.DesignSpec, workload string) (*system.SimState, memtrace.Source, synth.Profile, error) {
	src, prof, err := o.trace(workload)
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	cache, err := o.warmCache()
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	key := system.WarmKey{
		Workload:   workload,
		Seed:       o.Seed,
		Scale:      o.Scale,
		WarmupRefs: o.WarmupRefs,
		Spec:       spec,
	}
	design, err := system.BuildDesign(spec)
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	state := system.NewSimState(design)
	hit, quarantined, err := cache.Load(key, state)
	if err != nil {
		return nil, nil, synth.Profile{}, err
	}
	if quarantined != nil {
		class := fault.ClassOf(quarantined.Err)
		if class == fault.ClassUnknown {
			class = fault.ClassCorruptSnapshot
		}
		// The content-hash prefix disambiguates points that share a
		// (workload, kind, capacity) label but differ in other spec
		// fields, keeping the sorted report deterministic.
		o.rec.add(Failure{
			Point:       fmt.Sprintf("%s/%s/%dMB/%.12s", workload, spec.Kind, spec.PaperCapacityMB, quarantined.Key),
			Class:       class,
			Attempts:    1,
			Disposition: DispositionQuarantined,
			Error:       quarantined.Err.Error(),
		})
		// The failed restore may have partially mutated the state;
		// rebuild it fresh before the cold warmup.
		design, err = system.BuildDesign(spec)
		if err != nil {
			return nil, nil, synth.Profile{}, err
		}
		state = system.NewSimState(design)
	}
	if hit {
		memtrace.Skip(src, o.WarmupRefs)
		return state, src, prof, nil
	}
	if err := state.Warm(src, o.WarmupRefs); err != nil {
		return nil, nil, synth.Profile{}, err
	}
	if err := cache.Store(key, state); err != nil {
		return nil, nil, synth.Profile{}, err
	}
	return state, src, prof, nil
}

// Runner is the common shape of every experiment driver.
type Runner func(o Options, w io.Writer) error

// RowsFunc computes an experiment's typed rows without rendering —
// the machine-readable face of a driver (fpbench -json).
type RowsFunc func(o Options) (any, error)

// experiment pairs a driver's renderer with its rows function.
type experiment struct {
	render Runner
	rows   RowsFunc
}

// rowsOf adapts a typed rows function to the RowsFunc shape.
func rowsOf[T any](fn func(Options) ([]T, error)) RowsFunc {
	return func(o Options) (any, error) { return fn(o) }
}

// registry maps experiment identifiers to drivers.
var registry = map[string]experiment{
	"figure1":     {Figure1, rowsOf(Figure1Rows)},
	"figure4":     {Figure4, rowsOf(Figure4Rows)},
	"figure5":     {Figure5, rowsOf(Figure5Rows)},
	"figure6":     {Figure6, rowsOf(Figure6Rows)},
	"figure7":     {Figure7, rowsOf(Figure7Rows)},
	"figure8":     {Figure8, rowsOf(Figure8Rows)},
	"figure9":     {Figure9, rowsOf(Figure9Rows)},
	"figure10":    {Figure10, rowsOf(Figure10Rows)},
	"figure11":    {Figure11, rowsOf(Figure11Rows)},
	"figure12":    {Figure12, rowsOf(Figure12Rows)},
	"table4":      {Table4, rowsOf(Table4Rows)},
	"ablation":    {Ablations, func(o Options) (any, error) { return AblationRows(o) }},
	"designspace": {DesignSpace, rowsOf(DesignSpaceRows)},
	"latency":     {Latency, rowsOf(LatencyRows)},
	"partition":   {Partition, rowsOf(PartitionRows)},
	"adaptive":    {Adaptive, rowsOf(AdaptiveRows)},
	"intervals":   {Intervals, rowsOf(IntervalRows)},
}

// order lists experiments in paper order for "run everything"; the
// design-space cross-product, the latency-distribution study, the
// partition study, and the interval-parallel study (not in the paper)
// run last.
var order = []string{
	"figure1", "table4", "figure4", "figure5", "figure6", "figure7",
	"figure8", "figure9", "figure10", "figure11", "figure12", "ablation",
	"designspace", "latency", "partition", "adaptive", "intervals",
}

// Names returns the experiment identifiers in paper order.
func Names() []string { return append([]string(nil), order...) }

// Run executes one experiment by identifier.
func Run(name string, o Options, w io.Writer) error {
	e, ok := registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.render(o, w)
}

// Rows computes the typed rows backing one experiment, without
// rendering tables.
func Rows(name string, o Options) (any, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	return e.rows(o)
}

// RowsWithReport is Rows plus the run's FailureReport: every fault the
// tolerant executor absorbed (panics isolated, retries, timeouts,
// quarantined cache entries) with its disposition. A clean run returns
// an empty report. Under Options.Tolerate the rows come back degraded
// instead of err being set when points failed for good.
func RowsWithReport(name string, o Options) (any, *FailureReport, error) {
	e, ok := registry[name]
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	rec := &failureRecorder{}
	o.rec = rec
	rows, err := e.rows(o)
	return rows, rec.report(name), err
}

// RunAll executes every experiment in paper order. Individual
// experiments parallelize internally per Options.Workers; running the
// experiments themselves in sequence keeps output streaming in paper
// order and bounds concurrency at one worker pool.
func RunAll(o Options, w io.Writer) error {
	for _, name := range order {
		if err := Run(name, o, w); err != nil {
			return fmt.Errorf("experiments: %s: %w", name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
