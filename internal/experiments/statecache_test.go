package experiments

import (
	"os"
	"reflect"
	"testing"
)

// TestStateCacheRowsIdentical is the experiment-level face of the
// snapshot-parity guarantee: enabling the warm-state cache must not
// change a single row — neither on the run that populates the cache
// nor on the run that restores from it — across functional and timing
// experiments, including the partitioned resize study.
func TestStateCacheRowsIdentical(t *testing.T) {
	base := Options{
		Scale:      1.0 / 64,
		Refs:       20_000,
		WarmupRefs: 15_000,
		TimingRefs: 5_000,
		Seed:       3,
		Workloads:  []string{"web-search"},
		Capacities: []int{64},
	}
	dir := t.TempDir()
	for _, name := range []string{"figure5", "latency", "partition"} {
		want, err := Rows(name, base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		cached := base
		cached.StateCache = dir
		cold, err := Rows(name, cached)
		if err != nil {
			t.Fatalf("%s (cache cold): %v", name, err)
		}
		if !reflect.DeepEqual(want, cold) {
			t.Fatalf("%s: rows differ when populating the state cache\nwant %+v\ngot  %+v", name, want, cold)
		}

		warm, err := Rows(name, cached)
		if err != nil {
			t.Fatalf("%s (cache warm): %v", name, err)
		}
		if !reflect.DeepEqual(want, warm) {
			t.Fatalf("%s: rows differ when restoring from the state cache\nwant %+v\ngot  %+v", name, want, warm)
		}
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("state cache directory is empty; no snapshots were stored")
	}
}
