package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// The partition study is an experiment beyond the paper: following
// Bakhshalipour et al.'s memory/cache/memcache question, it splits
// the stacked capacity between directly addressed memory and the
// Footprint cache engine and sweeps the split point — statically
// across fractions, and dynamically through the consistent-hash
// resize driver, which moves the split mid-run without flushing the
// whole tag space.

// partitionMemPcts are the static memory shares swept (percent of
// stacked capacity dedicated to the part-of-memory region; 0 is the
// plain cache corner).
var partitionMemPcts = []int{0, 25, 50, 75}

// partitionCapacityMB fixes the study at the paper's headline
// capacity; the fraction axis replaces the capacity axis.
const partitionCapacityMB = 256

// PartitionRow is one (workload, memory share) point: functional-grade
// hit/miss/traffic plus the timing run's read-latency distribution and
// IPC. Dynamic rows exercise the resize driver — the split oscillates
// between 25% and 75% memory over the measured window — and report the
// resize transition counters.
type PartitionRow struct {
	Workload string
	// Design is the full composite spec ("footprint+memcache:50").
	Design string
	// MemPct is the memory share in percent (the starting share for
	// dynamic rows).
	MemPct int
	// Dynamic marks the resize-schedule row.
	Dynamic bool
	// MemHitRatio is the fraction of accesses served by the
	// part-of-memory region (no tag lookup).
	MemHitRatio        float64
	HitRatio           float64
	MissRatio          float64
	OffChipBytesPerRef float64
	AvgCycles          float64
	P50                float64
	P90                float64
	P99                float64
	IPC                float64
	// Resizes / FlushedPages / MovedPages count resize transitions
	// (dynamic rows only): splits applied, pages flushed out of dying
	// sets or purged into the memory region, pages re-homed by grows.
	Resizes      uint64
	FlushedPages uint64
	MovedPages   uint64
}

// PartitionRows sweeps the memory/cache split of a Footprint-based
// stacked design: one timing point per (workload, static share) cell
// plus one dynamic point per workload driven by a resize schedule.
func PartitionRows(o Options) ([]PartitionRow, error) {
	o = o.withDefaults()
	nPer := len(partitionMemPcts) + 1 // static shares + the dynamic row
	rows, err := pmap(o, len(o.Workloads)*nPer, func(i int) (PartitionRow, error) {
		wl := o.Workloads[i/nPer]
		j := i % nPer
		dynamic := j == len(partitionMemPcts)
		pct := 50
		var plan *system.ResizePlan
		if dynamic {
			// Oscillate the split across the measured window: four
			// resizes between 25% and 75% memory.
			period := o.TimingRefs / 4
			if period < 1 {
				period = 1
			}
			plan = &system.ResizePlan{PeriodRefs: period, Fractions: []float64{0.25, 0.75}}
		} else {
			pct = partitionMemPcts[j]
		}
		spec := system.DesignSpec{
			Kind:            fmt.Sprintf("%s+%s:%d", system.KindFootprint, system.PartMemCache, pct),
			PaperCapacityMB: partitionCapacityMB,
			Scale:           o.Scale,
		}
		res, err := o.buildTimingResized(spec, wl, plan)
		if err != nil {
			return PartitionRow{}, err
		}
		row := PartitionRow{
			Workload:           wl,
			Design:             res.Design,
			MemPct:             pct,
			Dynamic:            dynamic,
			HitRatio:           res.Counters.HitRatio(),
			MissRatio:          res.Counters.MissRatio(),
			OffChipBytesPerRef: float64(res.OffChip.DataBytes()) / float64(max(res.Refs, 1)),
			AvgCycles:          res.AvgReadLatency,
			P50:                res.ReadLatencyP50,
			P90:                res.ReadLatencyP90,
			P99:                res.ReadLatencyP99,
			IPC:                res.AggIPC(),
		}
		if p := res.Partition; p != nil {
			if res.Refs > 0 {
				row.MemHitRatio = float64(p.MemHits) / float64(res.Refs)
			}
			row.Resizes = p.Resizes
			row.FlushedPages = p.FlushedClean + p.FlushedDirty + p.PurgedPages
			row.MovedPages = p.MovedPages
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Partition renders the memory/cache/memcache partition study.
func Partition(o Options, w io.Writer) error {
	rows, err := PartitionRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Partition: stacked memory/cache split at %dMB (dyn = resize schedule 25%%<->75%%)\n", partitionCapacityMB)
	var t stats.Table
	t.Header("workload", "mem%", "memhit", "hit", "off-B/ref", "p50", "p90", "p99", "IPC", "resizes", "flushed", "moved")
	for _, r := range rows {
		pct := fmt.Sprintf("%d", r.MemPct)
		if r.Dynamic {
			pct = "dyn"
		}
		t.Row(r.Workload, pct,
			fmt.Sprintf("%.1f%%", 100*r.MemHitRatio),
			fmt.Sprintf("%.1f%%", 100*r.HitRatio),
			fmt.Sprintf("%.1f", r.OffChipBytesPerRef),
			fmt.Sprintf("%.0f", r.P50),
			fmt.Sprintf("%.0f", r.P90),
			fmt.Sprintf("%.0f", r.P99),
			fmt.Sprintf("%.3f", r.IPC),
			fmt.Sprintf("%d", r.Resizes),
			fmt.Sprintf("%d", r.FlushedPages),
			fmt.Sprintf("%d", r.MovedPages))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
