package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/core"
	"fpcache/internal/dcache"
	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// Table4Row reproduces one capacity column of the paper's Table 4:
// per-design SRAM metadata storage and lookup latency.
type Table4Row struct {
	CapacityMB int

	FootprintMB     float64
	FootprintCycles int
	MissMapEntries  int
	MissMapMB       float64
	MissMapWays     int
	MissMapCycles   int
	PageMB          float64
	PageCycles      int
}

// Table4Rows computes metadata budgets from design geometry at paper
// scale — the formulas are the same ones the designs themselves
// report through MetadataBits.
func Table4Rows(o Options) ([]Table4Row, error) {
	o = o.withDefaults()
	return pmap(o, len(o.Capacities), func(i int) (Table4Row, error) {
		mb := o.Capacities[i]
		capBytes := int64(mb) << 20
		geom := dcache.PageGeometry{CapacityBytes: capBytes, PageBytes: 2048, Ways: 16}

		fpCfg := core.Default(capBytes)
		mmEntries, mmWays, mmLat := dcache.MissMapParams(mb)

		return Table4Row{
			CapacityMB:      mb,
			FootprintMB:     float64(core.MetadataBits(fpCfg)) / 8 / (1 << 20),
			FootprintCycles: system.TagLatencyFor(system.KindFootprint, mb),
			MissMapEntries:  mmEntries,
			MissMapMB:       float64(dcache.BlockMetadataBits(mmEntries, mmWays)) / 8 / (1 << 20),
			MissMapWays:     mmWays,
			MissMapCycles:   mmLat,
			PageMB:          float64(dcache.PageMetadataBits(geom)) / 8 / (1 << 20),
			PageCycles:      system.TagLatencyFor(system.KindPage, mb),
		}, nil
	})
}

// Table4 renders the cache-parameter table.
func Table4(o Options, w io.Writer) error {
	rows, err := Table4Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table 4: cache parameters (SRAM metadata storage and lookup latency)")
	var t stats.Table
	t.Header("capacity", "footprint tags", "fp lat", "missmap entries", "missmap size", "mm ways", "mm lat", "page tags", "page lat")
	for _, r := range rows {
		t.Row(fmt.Sprintf("%dMB", r.CapacityMB),
			fmt.Sprintf("%.2fMB", r.FootprintMB), fmt.Sprintf("%dcy", r.FootprintCycles),
			fmt.Sprintf("%dK", r.MissMapEntries/1024), fmt.Sprintf("%.2fMB", r.MissMapMB),
			fmt.Sprint(r.MissMapWays), fmt.Sprintf("%dcy", r.MissMapCycles),
			fmt.Sprintf("%.2fMB", r.PageMB), fmt.Sprintf("%dcy", r.PageCycles))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
