package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/dcache"
	"fpcache/internal/dram"
	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// Figure1Row is one workload's opportunity measurement.
type Figure1Row struct {
	Workload string
	// HighBW is the performance improvement of a die-stacked main
	// memory with 8x the baseline's bandwidth at baseline latency.
	HighBW float64
	// HighBWLowLat additionally halves the DRAM timing (§1, after
	// [24]).
	HighBWLowLat float64
}

// highBWConfig is the stacked-as-main-memory configuration: four
// 128-bit TSV channels (8x the off-chip bandwidth) clocked so that
// per-operation latency matches the 2D baseline.
func highBWConfig(halfLatency bool) dram.Config {
	cfg := dram.StackedDDR3_3200()
	cfg.Name = "stacked-main-memory"
	cfg.CPUPerBusCy = dram.OffChipDDR3_1600().CPUPerBusCy
	cfg.Policy = dram.ClosePage
	cfg.InterleaveBytes = 64
	if halfLatency {
		t := cfg.Timing
		cfg.Timing = dram.Timing{
			TCAS: t.TCAS / 2, TRCD: t.TRCD / 2, TRP: t.TRP / 2, TRAS: t.TRAS / 2,
			TRC: t.TRC / 2, TWR: t.TWR / 2, TWTR: t.TWTR / 2, TRTP: t.TRTP / 2,
			TRRD: t.TRRD / 2, TFAW: t.TFAW / 2,
		}
	}
	return cfg
}

// Figure1Rows computes the opportunity study.
func Figure1Rows(o Options) ([]Figure1Row, error) {
	o = o.withDefaults()
	var rows []Figure1Row
	for _, wl := range o.Workloads {
		base, err := o.runTiming(dcache.NewBaseline(), wl)
		if err != nil {
			return nil, err
		}
		run := func(half bool) (float64, error) {
			src, prof, err := o.trace(wl)
			if err != nil {
				return 0, err
			}
			cfg := highBWConfig(half)
			res := system.RunTiming(dcache.NewIdeal(), src, system.TimingConfig{
				Cores:      prof.Cores,
				MLP:        prof.MLP,
				WarmupRefs: o.WarmupRefs,
				MaxRefs:    o.TimingRefs,
				Stacked:    &cfg,
			})
			return res.AggIPC()/base.AggIPC() - 1, nil
		}
		hb, err := run(false)
		if err != nil {
			return nil, err
		}
		hbll, err := run(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure1Row{Workload: wl, HighBW: hb, HighBWLowLat: hbll})
	}
	return rows, nil
}

// Figure1 renders the opportunity study.
func Figure1(o Options, w io.Writer) error {
	rows, err := Figure1Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: performance opportunity of high-bandwidth, low-latency die-stacked main memory")
	var t stats.Table
	t.Header("workload", "high-BW", "high-BW & low-latency")
	for _, r := range rows {
		t.Row(r.Workload, stats.Pct(r.HighBW), stats.Pct(r.HighBWLowLat))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
