package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/dcache"
	"fpcache/internal/dram"
	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// Figure1Row is one workload's opportunity measurement.
type Figure1Row struct {
	Workload string
	// HighBW is the performance improvement of a die-stacked main
	// memory with 8x the baseline's bandwidth at baseline latency.
	HighBW float64
	// HighBWLowLat additionally halves the DRAM timing (§1, after
	// [24]).
	HighBWLowLat float64
}

// highBWConfig is the stacked-as-main-memory configuration: four
// 128-bit TSV channels (8x the off-chip bandwidth) clocked so that
// per-operation latency matches the 2D baseline.
func highBWConfig(halfLatency bool) dram.Config {
	cfg := dram.StackedDDR3_3200()
	cfg.Name = "stacked-main-memory"
	cfg.CPUPerBusCy = dram.OffChipDDR3_1600().CPUPerBusCy
	cfg.Policy = dram.ClosePage
	cfg.InterleaveBytes = 64
	if halfLatency {
		// Halve every per-operation latency; the refresh interval is
		// cadence, not latency, so it stays put (tRFC halves with the
		// rest).
		t := cfg.Timing
		t.TCAS /= 2
		t.TRCD /= 2
		t.TRP /= 2
		t.TRAS /= 2
		t.TRC /= 2
		t.TWR /= 2
		t.TWTR /= 2
		t.TRTW /= 2
		t.TRTP /= 2
		t.TRRD /= 2
		t.TFAW /= 2
		t.TRFC /= 2
		cfg.Timing = t
	}
	return cfg
}

// Figure1Rows computes the opportunity study. The three timing runs
// of every workload (baseline pod, high-BW stacked memory, and its
// half-latency variant) are independent simulation points, swept in
// parallel.
func Figure1Rows(o Options) ([]Figure1Row, error) {
	o = o.withDefaults()
	const variants = 3 // baseline, high-BW, high-BW + low-latency
	ipcs, err := pmap(o, variants*len(o.Workloads), func(i int) (float64, error) {
		wl, variant := o.Workloads[i/variants], i%variants
		if variant == 0 {
			res, err := o.runTiming(dcache.NewBaseline(), wl)
			if err != nil {
				return 0, err
			}
			return res.AggIPC(), nil
		}
		src, prof, err := o.trace(wl)
		if err != nil {
			return 0, err
		}
		cfg := highBWConfig(variant == 2)
		res, err := system.RunTiming(dcache.NewIdeal(), src, system.TimingConfig{
			Cores:      prof.Cores,
			MLP:        prof.MLP,
			WarmupRefs: o.WarmupRefs,
			MaxRefs:    o.TimingRefs,
			Stacked:    &cfg,
		})
		if err != nil {
			return 0, err
		}
		return res.AggIPC(), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Figure1Row
	for wi, wl := range o.Workloads {
		base := ipcs[wi*variants]
		rows = append(rows, Figure1Row{
			Workload:     wl,
			HighBW:       ipcs[wi*variants+1]/base - 1,
			HighBWLowLat: ipcs[wi*variants+2]/base - 1,
		})
	}
	return rows, nil
}

// Figure1 renders the opportunity study.
func Figure1(o Options, w io.Writer) error {
	rows, err := Figure1Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1: performance opportunity of high-bandwidth, low-latency die-stacked main memory")
	var t stats.Table
	t.Header("workload", "high-BW", "high-BW & low-latency")
	for _, r := range rows {
		t.Row(r.Workload, stats.Pct(r.HighBW), stats.Pct(r.HighBWLowLat))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
