package experiments

import (
	"reflect"
	"testing"

	"fpcache/internal/synth"
)

// TestPartitionRowsDeterministicAtAnyWorkers pins the acceptance
// property of the partition study: its rows — including the dynamic
// resize-schedule row, whose transitions run inside each simulation
// point — are identical at any worker count.
func TestPartitionRowsDeterministicAtAnyWorkers(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.WebSearch, synth.MapReduce}
	o.TimingRefs = 4_000
	o.WarmupRefs = 8_000

	run := func(workers int) []PartitionRow {
		o.Workers = workers
		rows, err := PartitionRows(o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("partition rows differ between workers=1 and workers=8:\n--- serial ---\n%+v\n--- parallel ---\n%+v", serial, parallel)
	}

	// Shape: (static fractions + 1 dynamic) rows per workload, with
	// the dynamic row actually resizing.
	nPer := len(partitionMemPcts) + 1
	if len(serial) != len(o.Workloads)*nPer {
		t.Fatalf("got %d rows, want %d", len(serial), len(o.Workloads)*nPer)
	}
	for i, r := range serial {
		if r.Dynamic != (i%nPer == len(partitionMemPcts)) {
			t.Fatalf("row %d: unexpected Dynamic=%v", i, r.Dynamic)
		}
		if r.Dynamic && r.Resizes == 0 {
			t.Fatalf("dynamic row %d applied no resizes: %+v", i, r)
		}
		if !r.Dynamic && r.MemPct > 0 && r.MemHitRatio == 0 {
			t.Fatalf("static row %d at %d%% memory served no memory hits: %+v", i, r.MemPct, r)
		}
	}
}
