package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// FHTSizes are Figure 9's history-size sweep points.
var FHTSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// Figure9Row is one workload's hit-ratio curve over FHT sizes.
type Figure9Row struct {
	Workload  string
	HitRatios []float64 // aligned with FHTSizes
}

// Figure9Rows measures Footprint Cache hit ratio sensitivity to the
// number of FHT entries (256MB cache, 2KB pages, §6.4).
func Figure9Rows(o Options) ([]Figure9Row, error) {
	o = o.withDefaults()
	ratios, err := pmap(o, len(o.Workloads)*len(FHTSizes), func(i int) (float64, error) {
		wl := o.Workloads[i/len(FHTSizes)]
		entries := FHTSizes[i%len(FHTSizes)]
		res, err := o.buildFunctional(system.DesignSpec{
			Kind: system.KindFootprint, PaperCapacityMB: 256, Scale: o.Scale,
			FHTEntries: entries,
		}, wl)
		if err != nil {
			return 0, err
		}
		return res.Counters.HitRatio(), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Figure9Row
	for wi, wl := range o.Workloads {
		rows = append(rows, Figure9Row{
			Workload:  wl,
			HitRatios: ratios[wi*len(FHTSizes) : (wi+1)*len(FHTSizes)],
		})
	}
	return rows, nil
}

// Figure9 renders the history-size sensitivity.
func Figure9(o Options, w io.Writer) error {
	rows, err := Figure9Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: hit ratio vs FHT entries (256MB cache, 2KB pages)")
	var t stats.Table
	hdr := []string{"workload"}
	for _, e := range FHTSizes {
		hdr = append(hdr, fmt.Sprintf("%dK", e/1024))
	}
	t.Header(hdr...)
	for _, r := range rows {
		cells := []string{r.Workload}
		for _, h := range r.HitRatios {
			cells = append(cells, stats.Pct(h))
		}
		t.Row(cells...)
	}
	_, err = io.WriteString(w, t.String())
	return err
}
