package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// FHTSizes are Figure 9's history-size sweep points.
var FHTSizes = []int{1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10}

// Figure9Row is one workload's hit-ratio curve over FHT sizes.
type Figure9Row struct {
	Workload  string
	HitRatios []float64 // aligned with FHTSizes
}

// Figure9Rows measures Footprint Cache hit ratio sensitivity to the
// number of FHT entries (256MB cache, 2KB pages, §6.4).
func Figure9Rows(o Options) ([]Figure9Row, error) {
	o = o.withDefaults()
	var rows []Figure9Row
	for _, wl := range o.Workloads {
		row := Figure9Row{Workload: wl}
		for _, entries := range FHTSizes {
			design, err := system.BuildDesign(system.DesignSpec{
				Kind: system.KindFootprint, PaperCapacityMB: 256, Scale: o.Scale,
				FHTEntries: entries,
			})
			if err != nil {
				return nil, err
			}
			res, err := o.runFunctional(design, wl)
			if err != nil {
				return nil, err
			}
			row.HitRatios = append(row.HitRatios, res.Counters.HitRatio())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure9 renders the history-size sensitivity.
func Figure9(o Options, w io.Writer) error {
	rows, err := Figure9Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 9: hit ratio vs FHT entries (256MB cache, 2KB pages)")
	var t stats.Table
	hdr := []string{"workload"}
	for _, e := range FHTSizes {
		hdr = append(hdr, fmt.Sprintf("%dK", e/1024))
	}
	t.Header(hdr...)
	for _, r := range rows {
		cells := []string{r.Workload}
		for _, h := range r.HitRatios {
			cells = append(cells, stats.Pct(h))
		}
		t.Row(cells...)
	}
	_, err = io.WriteString(w, t.String())
	return err
}
