package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// SingletonRow is one (workload, capacity) point of the §6.5
// ablation: miss ratio with and without the singleton-page capacity
// optimization.
type SingletonRow struct {
	Workload    string
	CapacityMB  int
	MissWith    float64
	MissWithout float64
}

// Reduction is the relative miss-rate reduction the optimization
// buys.
func (r SingletonRow) Reduction() float64 {
	if r.MissWithout == 0 {
		return 0
	}
	return 1 - r.MissWith/r.MissWithout
}

// SingletonRows runs the capacity-optimization ablation. The paper
// reports ~10% average miss-rate reduction, strongest at small
// capacities where effective capacity matters most (§4.4, §6.5).
func SingletonRows(o Options) ([]SingletonRow, error) {
	o = o.withDefaults()
	kinds := []string{system.KindFootprint, system.KindFootprintNoSingleton}
	pts := o.grid()
	miss, err := pmap(o, len(pts)*len(kinds), func(i int) (float64, error) {
		pt, kind := pts[i/len(kinds)], kinds[i%len(kinds)]
		res, err := o.buildFunctional(system.DesignSpec{
			Kind: kind, PaperCapacityMB: pt.capacityMB, Scale: o.Scale,
		}, pt.workload)
		if err != nil {
			return 0, err
		}
		return res.MissRatio(), nil
	})
	if err != nil {
		return nil, err
	}
	var rows []SingletonRow
	for pi, pt := range pts {
		rows = append(rows, SingletonRow{
			Workload:    pt.workload,
			CapacityMB:  pt.capacityMB,
			MissWith:    miss[pi*2],
			MissWithout: miss[pi*2+1],
		})
	}
	return rows, nil
}

// FetchPolicyRow is one point of the §3.1 fetch-policy ablation:
// sub-blocked caches bound underprediction cost, page-based caches
// bound overprediction cost, Footprint sits between.
type FetchPolicyRow struct {
	Workload string
	// Miss ratios and off-chip bytes per reference at 256MB.
	MissSubblock, MissFootprint, MissPage    float64
	BytesSubblock, BytesFootprint, BytesPage float64
}

// FetchPolicyRows runs the fetch-policy ablation at 256MB.
func FetchPolicyRows(o Options) ([]FetchPolicyRow, error) {
	o = o.withDefaults()
	kinds := []string{system.KindSubblock, system.KindFootprint, system.KindPage}
	type meas struct{ miss, bytesPerRef float64 }
	res, err := pmap(o, len(o.Workloads)*len(kinds), func(i int) (meas, error) {
		wl, kind := o.Workloads[i/len(kinds)], kinds[i%len(kinds)]
		r, err := o.buildFunctional(system.DesignSpec{
			Kind: kind, PaperCapacityMB: 256, Scale: o.Scale,
		}, wl)
		if err != nil {
			return meas{}, err
		}
		return meas{r.MissRatio(), r.OffChipBytesPerRef()}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []FetchPolicyRow
	for wi, wl := range o.Workloads {
		m := res[wi*len(kinds) : (wi+1)*len(kinds)]
		rows = append(rows, FetchPolicyRow{
			Workload:       wl,
			MissSubblock:   m[0].miss,
			MissFootprint:  m[1].miss,
			MissPage:       m[2].miss,
			BytesSubblock:  m[0].bytesPerRef,
			BytesFootprint: m[1].bytesPerRef,
			BytesPage:      m[2].bytesPerRef,
		})
	}
	return rows, nil
}

// FeedbackRow is one point of the FHT feedback-policy ablation: the
// paper's replace-with-most-recent policy (§4.2) vs accumulating
// unions, at 256MB.
type FeedbackRow struct {
	Workload string
	// Replace / Union miss ratios, coverage, and off-chip bytes/ref.
	MissReplace, MissUnion   float64
	CoverReplace, CoverUnion float64
	OverReplace, OverUnion   float64
	BytesReplace, BytesUnion float64
}

// FeedbackRows runs the feedback-policy ablation. Union feedback can
// only grow footprints, so coverage rises and so does overfetch; the
// paper's replace policy tracks phase changes instead.
func FeedbackRows(o Options) ([]FeedbackRow, error) {
	o = o.withDefaults()
	kinds := []string{system.KindFootprint, system.KindFootprintUnion}
	type meas struct{ miss, bytesPerRef, cover, over float64 }
	res, err := pmap(o, len(o.Workloads)*len(kinds), func(i int) (meas, error) {
		wl, kind := o.Workloads[i/len(kinds)], kinds[i%len(kinds)]
		r, err := o.buildFunctional(system.DesignSpec{
			Kind: kind, PaperCapacityMB: 256, Scale: o.Scale,
		}, wl)
		if err != nil {
			return meas{}, err
		}
		fp := r.Footprint
		if fp == nil {
			return meas{}, fmt.Errorf("feedback ablation: no footprint stats for %s/%s", wl, kind)
		}
		return meas{r.MissRatio(), r.OffChipBytesPerRef(), fp.Coverage(), fp.Overprediction()}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []FeedbackRow
	for wi, wl := range o.Workloads {
		repl, union := res[wi*2], res[wi*2+1]
		rows = append(rows, FeedbackRow{
			Workload:     wl,
			MissReplace:  repl.miss,
			MissUnion:    union.miss,
			CoverReplace: repl.cover,
			CoverUnion:   union.cover,
			OverReplace:  repl.over,
			OverUnion:    union.over,
			BytesReplace: repl.bytesPerRef,
			BytesUnion:   union.bytesPerRef,
		})
	}
	return rows, nil
}

// AblationRowSet bundles the three ablation studies for
// machine-readable output.
type AblationRowSet struct {
	Singleton   []SingletonRow
	FetchPolicy []FetchPolicyRow
	Feedback    []FeedbackRow
}

// AblationRows computes all three ablation studies.
func AblationRows(o Options) (AblationRowSet, error) {
	var set AblationRowSet
	var err error
	if set.Singleton, err = SingletonRows(o); err != nil {
		return AblationRowSet{}, err
	}
	if set.FetchPolicy, err = FetchPolicyRows(o); err != nil {
		return AblationRowSet{}, err
	}
	if set.Feedback, err = FeedbackRows(o); err != nil {
		return AblationRowSet{}, err
	}
	return set, nil
}

// Ablations renders both ablation studies.
func Ablations(o Options, w io.Writer) error {
	sing, err := SingletonRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation (§6.5): singleton-page capacity optimization — miss ratio with/without")
	var t stats.Table
	t.Header("workload", "capacity", "with", "without", "reduction")
	var reds []float64
	for _, r := range sing {
		t.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			stats.Pct(r.MissWith), stats.Pct(r.MissWithout), stats.Pct(r.Reduction()))
		if r.MissWithout > 0 {
			reds = append(reds, r.MissWith/r.MissWithout)
		}
	}
	if len(reds) > 0 {
		t.Row("average", "", "", "", stats.Pct(1-stats.GeoMean(reds)))
	}
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}

	fetch, err := FetchPolicyRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nAblation (§3.1): fetch policy — sub-blocked (no overprediction) vs footprint vs page (no underprediction), 256MB")
	var f stats.Table
	f.Header("workload", "miss sub", "miss fp", "miss page", "offB/ref sub", "offB/ref fp", "offB/ref page")
	for _, r := range fetch {
		f.Row(r.Workload,
			stats.Pct(r.MissSubblock), stats.Pct(r.MissFootprint), stats.Pct(r.MissPage),
			fmt.Sprintf("%.1f", r.BytesSubblock), fmt.Sprintf("%.1f", r.BytesFootprint), fmt.Sprintf("%.1f", r.BytesPage))
	}
	if _, err := io.WriteString(w, f.String()); err != nil {
		return err
	}

	fb, err := FeedbackRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nAblation (§4.2): FHT feedback — replace-with-most-recent (paper) vs accumulate-union, 256MB")
	var g stats.Table
	g.Header("workload", "miss repl", "miss union", "cover repl", "cover union", "over repl", "over union", "offB/ref repl", "offB/ref union")
	for _, r := range fb {
		g.Row(r.Workload,
			stats.Pct(r.MissReplace), stats.Pct(r.MissUnion),
			stats.Pct(r.CoverReplace), stats.Pct(r.CoverUnion),
			stats.Pct(r.OverReplace), stats.Pct(r.OverUnion),
			fmt.Sprintf("%.1f", r.BytesReplace), fmt.Sprintf("%.1f", r.BytesUnion))
	}
	_, err = io.WriteString(w, g.String())
	return err
}
