package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// LatencyRow is one (workload, design, capacity) read-latency
// distribution: the mean and the p50/p90/p99 percentiles of the
// end-to-end read latency (issue to completion, CPU cycles), plus the
// run's aggregate IPC for cross-reference against Figures 6-7.
type LatencyRow struct {
	Workload   string
	Design     string
	CapacityMB int
	AvgCycles  float64
	P50        float64
	P90        float64
	P99        float64
	IPC        float64
}

// latencyDesigns are the cache designs the distribution study sweeps —
// the same three the paper's latency discussion (§6.3) contrasts.
var latencyDesigns = []string{system.KindBlock, system.KindPage, system.KindFootprint}

// LatencyRows sweeps the read-latency distribution over the
// (workload, design, capacity) grid. Not a paper figure: the paper
// reports only average latencies, but the command-level controller
// (write drain, refresh, turnaround) makes the tail observable, and
// tails are where DRAM-cache scheduling artifacts hide.
func LatencyRows(o Options) ([]LatencyRow, error) {
	o = o.withDefaults()
	nPer := len(latencyDesigns) * len(o.Capacities)
	rows, err := pmap(o, len(o.Workloads)*nPer, func(i int) (LatencyRow, error) {
		wl := o.Workloads[i/nPer]
		mb := o.Capacities[i%nPer/len(latencyDesigns)]
		kind := latencyDesigns[i%len(latencyDesigns)]
		res, err := o.buildTiming(system.DesignSpec{
			Kind: kind, PaperCapacityMB: mb, Scale: o.Scale,
		}, wl)
		if err != nil {
			return LatencyRow{}, err
		}
		return LatencyRow{
			Workload:   wl,
			Design:     kind,
			CapacityMB: mb,
			AvgCycles:  res.AvgReadLatency,
			P50:        res.ReadLatencyP50,
			P90:        res.ReadLatencyP90,
			P99:        res.ReadLatencyP99,
			IPC:        res.AggIPC(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Latency renders the read-latency distribution study.
func Latency(o Options, w io.Writer) error {
	rows, err := LatencyRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Latency: read-latency distribution by design (CPU cycles)")
	var t stats.Table
	t.Header("workload", "design", "capacity", "avg", "p50", "p90", "p99", "IPC")
	for _, r := range rows {
		t.Row(r.Workload, r.Design, fmt.Sprintf("%dMB", r.CapacityMB),
			fmt.Sprintf("%.0f", r.AvgCycles),
			fmt.Sprintf("%.0f", r.P50),
			fmt.Sprintf("%.0f", r.P90),
			fmt.Sprintf("%.0f", r.P99),
			fmt.Sprintf("%.3f", r.IPC))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
