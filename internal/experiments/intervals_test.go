package experiments

import (
	"encoding/json"
	"testing"

	"fpcache/internal/synth"
)

// stripTiming zeroes the wall-clock fields so rows can be compared
// across runs and worker counts — the same normalization the CI row
// comparators apply.
func stripTiming(rows []IntervalRow) []IntervalRow {
	out := append([]IntervalRow(nil), rows...)
	for i := range out {
		out[i].Seconds = 0
		out[i].Speedup = 0
	}
	return out
}

// TestIntervalRowsDeterministic pins the interval study's rows —
// minus wall-clock — byte-identical between one worker and many, and
// between repeated runs (the trace file and checkpoint cache are
// rebuilt from scratch each time, so any leak of cache state or
// scheduling order into the results would show here).
func TestIntervalRowsDeterministic(t *testing.T) {
	o := tiny()
	o.Refs = 24_000
	o.WarmupRefs = 8_000
	o.Workloads = []string{synth.WebSearch}

	asJSON := func(rows []IntervalRow) string {
		b, err := json.Marshal(stripTiming(rows))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	o.Workers = 1
	serial, err := IntervalRows(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	parallel, err := IntervalRows(o)
	if err != nil {
		t.Fatal(err)
	}
	repeat, err := IntervalRows(o)
	if err != nil {
		t.Fatal(err)
	}
	if asJSON(serial) == asJSON(parallel) {
		// Workers is part of the row, so serial vs parallel rows can
		// only agree if the field was lost.
		t.Fatal("workers=1 and workers=8 rows identical including Workers field")
	}
	norm := func(rows []IntervalRow) string {
		out := stripTiming(rows)
		for i := range out {
			out[i].Workers = 0
		}
		b, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := norm(parallel), norm(serial); got != want {
		t.Fatalf("rows differ between workers=1 and workers=8:\n%s\n%s", want, got)
	}
	if got, want := asJSON(repeat), asJSON(parallel); got != want {
		t.Fatalf("rows differ between repeated runs:\n%s\n%s", want, got)
	}

	// The rows themselves must report a healthy study: every exact mode
	// byte-matches the serial reference, the cold run stored checkpoints
	// that the warm run restored, and the sampled run measured the
	// configured fraction.
	byMode := map[string]IntervalRow{}
	for _, r := range parallel {
		byMode[r.Mode] = r
	}
	for _, mode := range []string{"serial", "cold", "parallel"} {
		if !byMode[mode].Match {
			t.Errorf("%s row does not match serial reference: %+v", mode, byMode[mode])
		}
	}
	if byMode["cold"].Segments != 1 {
		t.Errorf("cold run should be one serial chain, got %d segments", byMode["cold"].Segments)
	}
	if byMode["parallel"].Restored == 0 {
		t.Errorf("warm run restored no checkpoints: %+v", byMode["parallel"])
	}
	if f := byMode["sampled"].MeasuredFraction; f <= 0 || f >= 1 {
		t.Errorf("sampled fraction = %v, want in (0,1)", f)
	}
	if byMode["sampled"].HitRatioCI95 <= 0 {
		t.Errorf("sampled CI95 = %v, want > 0", byMode["sampled"].HitRatioCI95)
	}
}
