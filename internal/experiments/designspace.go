package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// The design-space ablation is an experiment the paper never ran: the
// policy-composable engine sweeps the full allocation x fill x
// mapping cross-product, so the fixed designs of §5.2 become corner
// points of a grid whose interior holds the hybrids (frequency-gated
// footprint fills, Gemini-style mapping switches) that related work
// later explored.

// designSpaceAllocs are the allocation-granularity policies swept.
var designSpaceAllocs = []string{system.KindPage, system.KindSubblock, system.KindFootprint}

// designSpaceFills are the fill policies swept.
var designSpaceFills = []string{system.FillLRU, system.FillHotGate, system.FillBanshee}

// designSpaceMappings are the mapping policies swept.
var designSpaceMappings = []string{system.MapPageDirect, system.MapHybrid}

// DesignSpaceRow is one point of the cross-product at 256MB paper
// scale.
type DesignSpaceRow struct {
	Workload string
	// Design is the normalized composite name ("footprint+banshee").
	Design               string
	Alloc, Mapping, Fill string
	MissRatio            float64
	HitRatio             float64
	// BypassRatio is bypasses over accesses (gated fills serve many
	// misses without allocating).
	BypassRatio float64
	// OffChipBytesPerRef is the off-chip traffic per reference.
	OffChipBytesPerRef float64
	// StackedRowHitRatio exposes the mapping policy's row locality.
	StackedRowHitRatio float64
}

// DesignSpaceRows sweeps the allocation x fill x mapping cross-product
// over the options' workloads at 256MB, fanning every point out over
// the sweep pool.
func DesignSpaceRows(o Options) ([]DesignSpaceRow, error) {
	o = o.withDefaults()
	type combo struct{ alloc, mapping, fill string }
	var combos []combo
	for _, a := range designSpaceAllocs {
		for _, m := range designSpaceMappings {
			for _, f := range designSpaceFills {
				combos = append(combos, combo{a, m, f})
			}
		}
	}
	type point struct {
		workload string
		c        combo
	}
	var pts []point
	for _, wl := range o.Workloads {
		for _, c := range combos {
			pts = append(pts, point{wl, c})
		}
	}
	return pmap(o, len(pts), func(i int) (DesignSpaceRow, error) {
		pt := pts[i]
		res, err := o.buildFunctional(system.DesignSpec{
			Alloc: pt.c.alloc, Mapping: pt.c.mapping, Fill: pt.c.fill,
			PaperCapacityMB: 256, Scale: o.Scale,
		}, pt.workload)
		if err != nil {
			return DesignSpaceRow{}, err
		}
		row := DesignSpaceRow{
			Workload: pt.workload,
			Design:   res.Design,
			Alloc:    pt.c.alloc, Mapping: pt.c.mapping, Fill: pt.c.fill,
			MissRatio:          res.MissRatio(),
			HitRatio:           res.Counters.HitRatio(),
			OffChipBytesPerRef: res.OffChipBytesPerRef(),
			StackedRowHitRatio: res.Stacked.RowHitRatio(),
		}
		if acc := res.Counters.Accesses(); acc > 0 {
			row.BypassRatio = float64(res.Counters.Bypasses) / float64(acc)
		}
		return row, nil
	})
}

// DesignSpace renders the cross-product table.
func DesignSpace(o Options, w io.Writer) error {
	rows, err := DesignSpaceRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Design space: allocation x mapping x fill cross-product, 256MB (composable engine; paper designs are corner points)")
	var t stats.Table
	t.Header("workload", "design", "alloc", "mapping", "fill", "miss", "hit", "bypass", "offB/ref", "stk row hit")
	for _, r := range rows {
		t.Row(r.Workload, r.Design, r.Alloc, r.Mapping, r.Fill,
			stats.Pct(r.MissRatio), stats.Pct(r.HitRatio), stats.Pct(r.BypassRatio),
			fmt.Sprintf("%.1f", r.OffChipBytesPerRef), stats.Pct(r.StackedRowHitRatio))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
