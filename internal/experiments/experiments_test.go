package experiments

import (
	"bytes"
	"strings"
	"testing"

	"fpcache/internal/synth"
)

// tiny returns options small enough for unit testing while still
// exercising every code path.
func tiny() Options {
	return Options{
		Scale:      1.0 / 64,
		Refs:       40_000,
		WarmupRefs: 40_000,
		TimingRefs: 8_000,
		Seed:       1,
		Workloads:  []string{synth.WebSearch, synth.MapReduce},
		Capacities: []int{64, 256},
	}
}

func TestNamesAndRegistryAgree(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("order has %d entries, registry %d", len(names), len(registry))
	}
	for _, n := range names {
		if _, ok := registry[n]; !ok {
			t.Fatalf("ordered experiment %q missing from registry", n)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("bogus", tiny(), &bytes.Buffer{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable4RowsMatchPaper(t *testing.T) {
	o := tiny()
	o.Capacities = []int{64, 128, 256, 512}
	rows, err := Table4Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper Table 4 values, with tolerance (we account slightly more
	// metadata than the paper's tag-only numbers for Footprint).
	paperFootprint := []float64{0.40, 0.80, 1.58, 3.12}
	paperPage := []float64{0.22, 0.44, 0.86, 1.69}
	for i, r := range rows {
		if r.FootprintMB < paperFootprint[i]*0.9 || r.FootprintMB > paperFootprint[i]*1.4 {
			t.Fatalf("%dMB footprint tags %.2fMB vs paper %.2fMB", r.CapacityMB, r.FootprintMB, paperFootprint[i])
		}
		if r.PageMB < paperPage[i]*0.8 || r.PageMB > paperPage[i]*1.2 {
			t.Fatalf("%dMB page tags %.2fMB vs paper %.2fMB", r.CapacityMB, r.PageMB, paperPage[i])
		}
		if r.MissMapMB < 1.8 || r.MissMapMB > 3.3 {
			t.Fatalf("%dMB missmap %.2fMB", r.CapacityMB, r.MissMapMB)
		}
	}
}

func TestFigure4RowsShape(t *testing.T) {
	rows, err := Figure4Rows(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 workloads x 2 capacities
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		sum := 0.0
		for _, f := range r.Fractions {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("%s@%dMB density fractions sum to %g", r.Workload, r.CapacityMB, sum)
		}
		if r.Pages == 0 {
			t.Fatalf("%s@%dMB observed no evictions", r.Workload, r.CapacityMB)
		}
	}
	// MapReduce must be more singleton-heavy than Web Search (Fig 4).
	var mr, ws float64
	for _, r := range rows {
		if r.CapacityMB != 64 {
			continue
		}
		if r.Workload == synth.MapReduce {
			mr = r.Fractions[0]
		}
		if r.Workload == synth.WebSearch {
			ws = r.Fractions[0]
		}
	}
	if mr <= ws {
		t.Fatalf("MapReduce singleton fraction %.2f not above Web Search %.2f", mr, ws)
	}
}

func TestFigure5RowsOrdering(t *testing.T) {
	rows, err := Figure5Rows(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The paper's central result (Fig 5): page <= footprint < block
		// on miss ratio; footprint << page on off-chip traffic.
		if !(r.MissPage <= r.MissFootprint+0.02) {
			t.Fatalf("%s@%dMB: page miss %.3f above footprint %.3f", r.Workload, r.CapacityMB, r.MissPage, r.MissFootprint)
		}
		if !(r.MissFootprint < r.MissBlock) {
			t.Fatalf("%s@%dMB: footprint miss %.3f not below block %.3f", r.Workload, r.CapacityMB, r.MissFootprint, r.MissBlock)
		}
		if !(r.BWFootprint < r.BWPage) {
			t.Fatalf("%s@%dMB: footprint traffic %.2fx not below page %.2fx", r.Workload, r.CapacityMB, r.BWFootprint, r.BWPage)
		}
	}
}

func TestFigure8RowsShape(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	rows, err := Figure8Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // 3 page sizes
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Covered <= 0 || r.Covered > 1 {
			t.Fatalf("coverage %g out of range", r.Covered)
		}
		if r.Covered+r.Under < 0.99 || r.Covered+r.Under > 1.01 {
			t.Fatalf("covered+under = %g", r.Covered+r.Under)
		}
	}
}

func TestFigure9RowsMonotonicTendency(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	rows, err := Figure9Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	hr := rows[0].HitRatios
	if len(hr) != len(FHTSizes) {
		t.Fatalf("curve has %d points", len(hr))
	}
	// Larger FHTs must not hurt much: final >= first - small epsilon.
	if hr[len(hr)-1] < hr[0]-0.02 {
		t.Fatalf("hit ratio degraded with FHT size: %v", hr)
	}
}

func TestFigure12RowsMonotone(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.MapReduce}
	rows, err := Figure12Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	sizes := rows[0].SizesMB
	for i := 1; i < len(sizes); i++ {
		if sizes[i] < sizes[i-1] {
			t.Fatalf("coverage curve not monotone: %v", sizes)
		}
	}
	if sizes[len(sizes)-1] <= 0 {
		t.Fatal("80% coverage size is zero")
	}
}

func TestSingletonAblation(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.MapReduce} // singleton-heavy
	o.Capacities = []int{64}
	rows, err := SingletonRows(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// §6.5: the optimization must reduce the miss rate on the
	// singleton-heavy workload at small capacity.
	if r.MissWith >= r.MissWithout {
		t.Fatalf("singleton opt did not help: with=%.3f without=%.3f", r.MissWith, r.MissWithout)
	}
	if red := r.Reduction(); red <= 0 || red > 0.5 {
		t.Fatalf("reduction = %.3f implausible", red)
	}
}

func TestFetchPolicyAblation(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	rows, err := FetchPolicyRows(o)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	// §3.1: sub-blocked = max underprediction -> worst miss ratio;
	// page = no underprediction -> best; footprint in between. And
	// sub-blocked never overfetches -> least off-chip bytes.
	if !(r.MissPage <= r.MissFootprint && r.MissFootprint <= r.MissSubblock) {
		t.Fatalf("miss ordering violated: page=%.3f fp=%.3f sub=%.3f", r.MissPage, r.MissFootprint, r.MissSubblock)
	}
	if !(r.BytesSubblock <= r.BytesFootprint && r.BytesFootprint <= r.BytesPage) {
		t.Fatalf("traffic ordering violated: sub=%.1f fp=%.1f page=%.1f", r.BytesSubblock, r.BytesFootprint, r.BytesPage)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	o.Capacities = []int{64}
	for _, name := range []string{"table4", "figure4", "figure5", "figure8", "figure12"} {
		var buf bytes.Buffer
		if err := Run(name, o, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := buf.String()
		if !strings.Contains(out, "-----") || len(out) < 80 {
			t.Fatalf("%s rendered implausibly:\n%s", name, out)
		}
	}
}

func TestTimingExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments in -short mode")
	}
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	o.Capacities = []int{64}
	o.TimingRefs = 20000
	o.WarmupRefs = 60000

	rows6, err := Figure6Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows6 {
		if r.Footprint <= r.Block-0.15 {
			t.Fatalf("footprint (%+.2f) far below block (%+.2f)", r.Footprint, r.Block)
		}
		if r.Ideal < r.Footprint-0.05 {
			t.Fatalf("ideal (%+.2f) below footprint (%+.2f)", r.Ideal, r.Footprint)
		}
	}

	rows1, err := Figure1Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows1 {
		if r.HighBWLowLat < r.HighBW-0.05 {
			t.Fatalf("low latency (%+.2f) below plain high-BW (%+.2f)", r.HighBWLowLat, r.HighBW)
		}
	}

	erows, err := Figure10Rows(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range erows {
		base := r.Baseline.OffChip.TotalPJ()
		if base <= 0 {
			t.Fatal("baseline burned no off-chip energy")
		}
		if r.Footprint.OffChip.TotalPJ() >= base {
			t.Fatal("footprint off-chip energy not below baseline")
		}
	}
}

func TestLatencyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment in -short mode")
	}
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	o.Capacities = []int{64}
	o.TimingRefs = 10_000
	rows, err := LatencyRows(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(latencyDesigns) {
		t.Fatalf("rows = %d, want %d", len(rows), len(latencyDesigns))
	}
	for _, r := range rows {
		if r.P50 <= 0 || r.P50 > r.P90 || r.P90 > r.P99 {
			t.Fatalf("%s/%s: percentiles implausible: p50=%.0f p90=%.0f p99=%.0f",
				r.Workload, r.Design, r.P50, r.P90, r.P99)
		}
		if r.IPC <= 0 {
			t.Fatalf("%s/%s: IPC = %g", r.Workload, r.Design, r.IPC)
		}
	}
	// The registry serves it, and the renderer produces a table.
	var buf bytes.Buffer
	if err := Run("latency", o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p99") {
		t.Fatalf("latency table missing percentile columns:\n%s", buf.String())
	}
}
