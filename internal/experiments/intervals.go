package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fpcache/internal/memtrace"
	"fpcache/internal/stats"
	"fpcache/internal/sweep"
	"fpcache/internal/system"
)

// IntervalRow is one mode of the interval-parallel study over a
// workload's trace: the serial reference, the cold interval run that
// populates boundary checkpoints, the warm run that restores them and
// measures all intervals concurrently, and the sampled run that trades
// exactness for a bounded per-interval cost.
//
// Seconds and Speedup are wall-clock measurements and therefore the
// only nondeterministic fields; row-comparison harnesses must strip
// them (the CI comparators do). Everything else — including Match,
// which pins the merged result byte-identical to the serial run — is
// reproducible at any worker count.
type IntervalRow struct {
	Workload  string `json:"workload"`
	Mode      string `json:"mode"`
	Workers   int    `json:"workers"`
	Intervals int    `json:"intervals"`
	Segments  int    `json:"segments"`
	Restored  int    `json:"restored"`
	Refs      uint64 `json:"refs"`
	// HitRatio is the merged run's DRAM-cache hit ratio; sampled rows
	// accompany it with the measured fraction and the 95% confidence
	// half-width over per-interval ratios.
	HitRatio         float64 `json:"hit_ratio"`
	MeasuredFraction float64 `json:"measured_fraction"`
	HitRatioCI95     float64 `json:"hit_ratio_ci95"`
	// Match reports byte-identity of the merged functional result
	// against the serial reference (always true for exact modes; not
	// applicable to sampled rows, which report false by construction
	// only when sampling skipped intervals).
	Match bool `json:"match"`
	// Seconds is this mode's wall-clock; Speedup is serial seconds
	// over this mode's seconds (1 for the serial row itself).
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup"`
}

// intervalsPerRun is the interval count the study splits each trace
// into — enough chains to occupy a reasonable worker pool without
// shrinking intervals below the warm-state write cost.
const intervalsPerRun = 8

// intervalSampleEvery is the sampled mode's stride: measure one
// interval in four.
const intervalSampleEvery = 4

// IntervalRows runs the interval-parallel study: per workload, write
// the synthetic trace to a v2 file once, then run it serially, as a
// cold interval run (one chain, storing boundary checkpoints), as a
// warm interval run (every interval restores and measures
// concurrently — the mode whose Speedup column answers "what did
// parallelism buy"), and sampled. Honor -j: with one worker the warm
// run degenerates to serial and Speedup hovers near 1.
func IntervalRows(o Options) ([]IntervalRow, error) {
	o = o.withDefaults()
	var rows []IntervalRow
	for _, wl := range o.Workloads {
		wrows, err := intervalWorkloadRows(o, wl)
		if err != nil {
			return nil, err
		}
		rows = append(rows, wrows...)
	}
	return rows, nil
}

// intervalWorkloadRows runs the four modes over one workload's trace.
func intervalWorkloadRows(o Options, wl string) ([]IntervalRow, error) {
	dir, err := os.MkdirTemp("", "fpcache-intervals-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	total := o.WarmupRefs + o.Refs
	path := filepath.Join(dir, "trace.v2")
	if err := writeTraceFile(o, wl, path, total); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := memtrace.NewFileReader(f)
	if err != nil {
		return nil, err
	}

	spec := system.DesignSpec{Kind: system.KindFootprint, PaperCapacityMB: o.Capacities[0], Scale: o.Scale}
	workers := o.workerCount()

	// Serial reference, timed on the same file the intervals read.
	design, err := system.BuildDesign(spec)
	if err != nil {
		return nil, err
	}
	serialSrc, err := tr.OpenSection(0, tr.Len())
	if err != nil {
		return nil, err
	}
	//fplint:ignore determinism feeds the documented wall-clock Seconds/Speedup fields; parity checks exclude them
	start := time.Now()
	serial, err := system.RunFunctional(design, serialSrc, o.WarmupRefs, o.Refs)
	if err != nil {
		return nil, err
	}
	//fplint:ignore determinism feeds the documented wall-clock Seconds/Speedup fields; parity checks exclude them
	serialSecs := time.Since(start).Seconds()
	serialJSON, err := json.Marshal(serial)
	if err != nil {
		return nil, err
	}

	cache, err := system.NewWarmCache(filepath.Join(dir, "ckpt"))
	if err != nil {
		return nil, err
	}
	opt := system.IntervalOptions{
		Spec: spec, Workload: wl, Seed: o.Seed, Scale: o.Scale,
		WarmupRefs: o.WarmupRefs, MaxRefs: o.Refs,
		Intervals: intervalsPerRun, Workers: workers,
		Retry: sweep.Policy{
			MaxAttempts: o.MaxAttempts, Backoff: o.RetryBackoff,
			Timeout: o.PointTimeout, Seed: o.Seed,
		},
	}
	rows := []IntervalRow{{
		Workload: wl, Mode: "serial", Workers: 1, Intervals: 1, Segments: 1,
		Refs: serial.Refs, HitRatio: serial.Counters.HitRatio(),
		MeasuredFraction: 1, Match: true, Seconds: serialSecs, Speedup: 1,
	}}

	mode := func(name string, tweak func(*system.IntervalOptions)) error {
		run := opt
		tweak(&run)
		//fplint:ignore determinism feeds the documented wall-clock Seconds/Speedup fields; parity checks exclude them
		start := time.Now()
		rep, err := system.RunIntervals(tr, run)
		if err != nil {
			return fmt.Errorf("%s interval run: %w", name, err)
		}
		//fplint:ignore determinism feeds the documented wall-clock Seconds/Speedup fields; parity checks exclude them
		secs := time.Since(start).Seconds()
		got, err := json.Marshal(rep.Functional)
		if err != nil {
			return err
		}
		row := IntervalRow{
			Workload: wl, Mode: name, Workers: run.Workers,
			Intervals: len(rep.Intervals), Segments: rep.Segments, Restored: rep.Restored,
			Refs: rep.Functional.Refs, HitRatio: rep.Functional.Counters.HitRatio(),
			MeasuredFraction: rep.MeasuredFraction,
			Match:            string(got) == string(serialJSON),
			Seconds:          secs, Speedup: stats.Ratio(serialSecs, secs),
		}
		if rep.Sampled {
			row.HitRatio = rep.HitRatioMean
			row.HitRatioCI95 = rep.HitRatioCI95
		}
		rows = append(rows, row)
		return nil
	}
	if err := mode("cold", func(run *system.IntervalOptions) { run.Cache = cache }); err != nil {
		return nil, err
	}
	if err := mode("parallel", func(run *system.IntervalOptions) { run.Cache = cache }); err != nil {
		return nil, err
	}
	if err := mode("sampled", func(run *system.IntervalOptions) {
		run.SampleEvery = intervalSampleEvery
		run.SampleWarmup = o.WarmupRefs
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// writeTraceFile generates total records of a workload into a chunked
// v2 trace file.
func writeTraceFile(o Options, wl, path string, total int) error {
	src, _, err := o.trace(wl)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := memtrace.NewWriterV2(f)
	for i := 0; i < total; i++ {
		rec, ok := src.Next()
		if !ok {
			break
		}
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Intervals renders the interval-parallel study.
func Intervals(o Options, w io.Writer) error {
	rows, err := IntervalRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Intervals: interval-parallel simulation (serial vs cold/warm checkpoints vs sampled)")
	var t stats.Table
	t.Header("workload", "mode", "workers", "intervals", "segments", "restored", "hit", "±ci95", "fraction", "match", "seconds", "speedup")
	for _, r := range rows {
		t.Row(r.Workload, r.Mode, fmt.Sprint(r.Workers), fmt.Sprint(r.Intervals),
			fmt.Sprint(r.Segments), fmt.Sprint(r.Restored),
			fmt.Sprintf("%.4f", r.HitRatio),
			fmt.Sprintf("%.4f", r.HitRatioCI95),
			fmt.Sprintf("%.2f", r.MeasuredFraction),
			fmt.Sprint(r.Match),
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.2f", r.Speedup))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
