package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// PerfRow is one (workload, capacity) performance comparison:
// improvement over the no-cache baseline for each design.
type PerfRow struct {
	Workload   string
	CapacityMB int
	// Improvements keyed in Figure 6's order.
	Block, Page, Footprint, Ideal float64
}

// perfRows runs the timing comparison for the given workloads. The
// capacity-independent anchors (baseline and ideal, once per
// workload) sweep first, then the full (workload, capacity, design)
// timing grid.
func perfRows(o Options, workloads []string) ([]PerfRow, error) {
	anchors, err := pmap(o, 2*len(workloads), func(i int) (float64, error) {
		wl := workloads[i/2]
		kind := system.KindBaseline
		if i%2 == 1 {
			kind = system.KindIdeal // capacity-independent; once per workload
		}
		res, err := o.buildTiming(system.DesignSpec{Kind: kind}, wl)
		if err != nil {
			return 0, err
		}
		return res.AggIPC(), nil
	})
	if err != nil {
		return nil, err
	}

	kinds := []string{system.KindBlock, system.KindPage, system.KindFootprint}
	nPer := len(o.Capacities) * len(kinds)
	ipcs, err := pmap(o, len(workloads)*nPer, func(i int) (float64, error) {
		wl := workloads[i/nPer]
		mb := o.Capacities[i%nPer/len(kinds)]
		kind := kinds[i%len(kinds)]
		res, err := o.buildTiming(system.DesignSpec{
			Kind: kind, PaperCapacityMB: mb, Scale: o.Scale,
		}, wl)
		if err != nil {
			return 0, err
		}
		return res.AggIPC(), nil
	})
	if err != nil {
		return nil, err
	}

	var rows []PerfRow
	for wi, wl := range workloads {
		base, ideal := anchors[wi*2], anchors[wi*2+1]
		for ci, mb := range o.Capacities {
			off := wi*nPer + ci*len(kinds)
			rows = append(rows, PerfRow{
				Workload:   wl,
				CapacityMB: mb,
				Block:      ipcs[off]/base - 1,
				Page:       ipcs[off+1]/base - 1,
				Footprint:  ipcs[off+2]/base - 1,
				Ideal:      ideal/base - 1,
			})
		}
	}
	return rows, nil
}

// Figure6Rows measures performance improvement over baseline for
// every workload except Data Serving (which Figure 7 plots
// separately due to its scale, §6.3), plus a geomean row per
// capacity.
func Figure6Rows(o Options) ([]PerfRow, error) {
	o = o.withDefaults()
	var workloads []string
	for _, wl := range o.Workloads {
		if wl != synth.DataServing {
			workloads = append(workloads, wl)
		}
	}
	rows, err := perfRows(o, workloads)
	if err != nil {
		return nil, err
	}
	// Geomean across workloads per capacity (of speedups, reported as
	// improvement).
	for _, mb := range o.Capacities {
		var blk, pg, fp, id []float64
		for _, r := range rows {
			if r.CapacityMB != mb {
				continue
			}
			blk = append(blk, 1+r.Block)
			pg = append(pg, 1+r.Page)
			fp = append(fp, 1+r.Footprint)
			id = append(id, 1+r.Ideal)
		}
		if len(blk) == 0 {
			continue
		}
		rows = append(rows, PerfRow{
			Workload:   "geomean",
			CapacityMB: mb,
			Block:      stats.GeoMean(blk) - 1,
			Page:       stats.GeoMean(pg) - 1,
			Footprint:  stats.GeoMean(fp) - 1,
			Ideal:      stats.GeoMean(id) - 1,
		})
	}
	return rows, nil
}

func renderPerf(title string, rows []PerfRow, w io.Writer) error {
	fmt.Fprintln(w, title)
	var t stats.Table
	t.Header("workload", "capacity", "block", "page", "footprint", "ideal")
	for _, r := range rows {
		t.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			stats.Pct(r.Block), stats.Pct(r.Page), stats.Pct(r.Footprint), stats.Pct(r.Ideal))
	}
	_, err := io.WriteString(w, t.String())
	return err
}

// Figure6 renders the performance comparison.
func Figure6(o Options, w io.Writer) error {
	rows, err := Figure6Rows(o)
	if err != nil {
		return err
	}
	return renderPerf("Figure 6: performance improvement over baseline (all workloads except Data Serving)", rows, w)
}

// Figure7Rows is the Data Serving performance comparison (§6.3).
func Figure7Rows(o Options) ([]PerfRow, error) {
	o = o.withDefaults()
	return perfRows(o, []string{synth.DataServing})
}

// Figure7 renders the Data Serving comparison.
func Figure7(o Options, w io.Writer) error {
	rows, err := Figure7Rows(o)
	if err != nil {
		return err
	}
	return renderPerf("Figure 7: performance improvement over baseline — Data Serving", rows, w)
}
