package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// PerfRow is one (workload, capacity) performance comparison:
// improvement over the no-cache baseline for each design.
type PerfRow struct {
	Workload   string
	CapacityMB int
	// Improvements keyed in Figure 6's order.
	Block, Page, Footprint, Ideal float64
}

// perfRows runs the timing comparison for the given workloads.
func perfRows(o Options, workloads []string) ([]PerfRow, error) {
	var rows []PerfRow
	for _, wl := range workloads {
		baseDesign, err := system.BuildDesign(system.DesignSpec{Kind: system.KindBaseline})
		if err != nil {
			return nil, err
		}
		base, err := o.runTiming(baseDesign, wl)
		if err != nil {
			return nil, err
		}
		// Ideal is capacity-independent; measure once per workload.
		idealDesign, err := system.BuildDesign(system.DesignSpec{Kind: system.KindIdeal})
		if err != nil {
			return nil, err
		}
		ideal, err := o.runTiming(idealDesign, wl)
		if err != nil {
			return nil, err
		}
		for _, mb := range o.Capacities {
			row := PerfRow{Workload: wl, CapacityMB: mb, Ideal: ideal.AggIPC()/base.AggIPC() - 1}
			for _, kind := range []string{system.KindBlock, system.KindPage, system.KindFootprint} {
				design, err := system.BuildDesign(system.DesignSpec{
					Kind: kind, PaperCapacityMB: mb, Scale: o.Scale,
				})
				if err != nil {
					return nil, err
				}
				res, err := o.runTiming(design, wl)
				if err != nil {
					return nil, err
				}
				imp := res.AggIPC()/base.AggIPC() - 1
				switch kind {
				case system.KindBlock:
					row.Block = imp
				case system.KindPage:
					row.Page = imp
				case system.KindFootprint:
					row.Footprint = imp
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure6Rows measures performance improvement over baseline for
// every workload except Data Serving (which Figure 7 plots
// separately due to its scale, §6.3), plus a geomean row per
// capacity.
func Figure6Rows(o Options) ([]PerfRow, error) {
	o = o.withDefaults()
	var workloads []string
	for _, wl := range o.Workloads {
		if wl != synth.DataServing {
			workloads = append(workloads, wl)
		}
	}
	rows, err := perfRows(o, workloads)
	if err != nil {
		return nil, err
	}
	// Geomean across workloads per capacity (of speedups, reported as
	// improvement).
	for _, mb := range o.Capacities {
		var blk, pg, fp, id []float64
		for _, r := range rows {
			if r.CapacityMB != mb {
				continue
			}
			blk = append(blk, 1+r.Block)
			pg = append(pg, 1+r.Page)
			fp = append(fp, 1+r.Footprint)
			id = append(id, 1+r.Ideal)
		}
		if len(blk) == 0 {
			continue
		}
		rows = append(rows, PerfRow{
			Workload:   "geomean",
			CapacityMB: mb,
			Block:      stats.GeoMean(blk) - 1,
			Page:       stats.GeoMean(pg) - 1,
			Footprint:  stats.GeoMean(fp) - 1,
			Ideal:      stats.GeoMean(id) - 1,
		})
	}
	return rows, nil
}

func renderPerf(title string, rows []PerfRow, w io.Writer) error {
	fmt.Fprintln(w, title)
	var t stats.Table
	t.Header("workload", "capacity", "block", "page", "footprint", "ideal")
	for _, r := range rows {
		t.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			stats.Pct(r.Block), stats.Pct(r.Page), stats.Pct(r.Footprint), stats.Pct(r.Ideal))
	}
	_, err := io.WriteString(w, t.String())
	return err
}

// Figure6 renders the performance comparison.
func Figure6(o Options, w io.Writer) error {
	rows, err := Figure6Rows(o)
	if err != nil {
		return err
	}
	return renderPerf("Figure 6: performance improvement over baseline (all workloads except Data Serving)", rows, w)
}

// Figure7Rows is the Data Serving performance comparison (§6.3).
func Figure7Rows(o Options) ([]PerfRow, error) {
	o = o.withDefaults()
	return perfRows(o, []string{synth.DataServing})
}

// Figure7 renders the Data Serving comparison.
func Figure7(o Options, w io.Writer) error {
	rows, err := Figure7Rows(o)
	if err != nil {
		return err
	}
	return renderPerf("Figure 7: performance improvement over baseline — Data Serving", rows, w)
}
