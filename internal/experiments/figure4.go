package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/dcache"
	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// DensityBuckets are Figure 4's page-density bins for 2KB pages (32
// blocks): 1, 2-3, 4-7, 8-15, 16-31, 32 demanded blocks.
var DensityBuckets = []string{"1", "2-3", "4-7", "8-15", "16-31", "32"}

// Figure4Row is the density histogram of one (workload, capacity)
// point: fraction of evicted pages per bucket.
type Figure4Row struct {
	Workload   string
	CapacityMB int
	Fractions  [6]float64
	Pages      int64
}

// Figure4Rows measures page access density as a function of cache
// capacity, observed at eviction time from a page-based cache exactly
// as Footprint Cache's demanded vectors would record it (§6.1).
func Figure4Rows(o Options) ([]Figure4Row, error) {
	o = o.withDefaults()
	pts := o.grid()
	return pmap(o, len(pts), func(i int) (Figure4Row, error) {
		wl, mb := pts[i].workload, pts[i].capacityMB
		design, err := system.BuildDesign(system.DesignSpec{
			Kind: system.KindPage, PaperCapacityMB: mb, Scale: o.Scale,
		})
		if err != nil {
			return Figure4Row{}, err
		}
		eng := design.(*dcache.Engine)
		h := stats.NewHistogram(1, 3, 7, 15, 31, 32)
		eng.OnEvict = func(demanded, pageBlocks int) {
			if demanded > 0 {
				h.Add(int64(demanded))
			}
		}
		if _, err := o.runFunctional(design, wl); err != nil {
			return Figure4Row{}, err
		}
		row := Figure4Row{Workload: wl, CapacityMB: mb, Pages: h.Total()}
		for b := 0; b < 6; b++ {
			row.Fractions[b] = h.Fraction(b)
		}
		return row, nil
	})
}

// Figure4 renders the density histograms.
func Figure4(o Options, w io.Writer) error {
	rows, err := Figure4Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 4: page access density vs cache capacity (2KB pages, fraction of evicted pages)")
	var t stats.Table
	t.Header("workload", "capacity", DensityBuckets[0], DensityBuckets[1], DensityBuckets[2], DensityBuckets[3], DensityBuckets[4], DensityBuckets[5])
	for _, r := range rows {
		t.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			stats.Pct(r.Fractions[0]), stats.Pct(r.Fractions[1]), stats.Pct(r.Fractions[2]),
			stats.Pct(r.Fractions[3]), stats.Pct(r.Fractions[4]), stats.Pct(r.Fractions[5]))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
