package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/energy"
	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// EnergyRow is one workload's DRAM dynamic-energy-per-instruction
// breakdown for the four systems at 256MB (Figures 10 and 11).
type EnergyRow struct {
	Workload string
	// Per-design breakdowns (pJ/instruction).
	Baseline, Block, Page, Footprint struct {
		OffChip energy.Breakdown
		Stacked energy.Breakdown
	}
}

// energyRows runs the 256MB timing comparison that backs both energy
// figures, sweeping the (workload, design) grid in parallel.
func energyRows(o Options) ([]EnergyRow, error) {
	o = o.withDefaults()
	kinds := []string{system.KindBaseline, system.KindBlock, system.KindPage, system.KindFootprint}
	type slot struct{ OffChip, Stacked energy.Breakdown }
	slots, err := pmap(o, len(o.Workloads)*len(kinds), func(i int) (slot, error) {
		wl := o.Workloads[i/len(kinds)]
		kind := kinds[i%len(kinds)]
		res, err := o.buildTiming(system.DesignSpec{
			Kind: kind, PaperCapacityMB: 256, Scale: o.Scale,
		}, wl)
		if err != nil {
			return slot{}, err
		}
		return slot{res.OffChipEnergyPerInstr(), res.StackedEnergyPerInstr()}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []EnergyRow
	for wi, wl := range o.Workloads {
		row := EnergyRow{Workload: wl}
		s := slots[wi*len(kinds) : (wi+1)*len(kinds)] // kinds order
		row.Baseline.OffChip, row.Baseline.Stacked = s[0].OffChip, s[0].Stacked
		row.Block.OffChip, row.Block.Stacked = s[1].OffChip, s[1].Stacked
		row.Page.OffChip, row.Page.Stacked = s[2].OffChip, s[2].Stacked
		row.Footprint.OffChip, row.Footprint.Stacked = s[3].OffChip, s[3].Stacked
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure10Rows measures off-chip DRAM dynamic energy per instruction,
// normalized to the baseline system (§6.6).
func Figure10Rows(o Options) ([]EnergyRow, error) { return energyRows(o) }

// Figure10 renders off-chip energy, split into activate/precharge and
// read/write burst energy, normalized to baseline.
func Figure10(o Options, w io.Writer) error {
	rows, err := energyRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 10: off-chip DRAM dynamic energy per instruction, normalized to baseline (act-pre + burst)")
	var t stats.Table
	t.Header("workload", "baseline", "block", "page", "footprint")
	cell := func(b energy.Breakdown, base float64) string {
		return fmt.Sprintf("%.2f (%.2f+%.2f)", b.TotalPJ()/base, b.ActPrePJ/base, b.BurstPJ/base)
	}
	var geo [3][]float64
	for _, r := range rows {
		base := r.Baseline.OffChip.TotalPJ()
		if base == 0 {
			continue
		}
		t.Row(r.Workload, cell(r.Baseline.OffChip, base), cell(r.Block.OffChip, base),
			cell(r.Page.OffChip, base), cell(r.Footprint.OffChip, base))
		geo[0] = append(geo[0], r.Block.OffChip.TotalPJ()/base)
		geo[1] = append(geo[1], r.Page.OffChip.TotalPJ()/base)
		geo[2] = append(geo[2], r.Footprint.OffChip.TotalPJ()/base)
	}
	if len(geo[0]) > 0 {
		t.Row("geomean", "1.00",
			fmt.Sprintf("%.2f", stats.GeoMean(geo[0])),
			fmt.Sprintf("%.2f", stats.GeoMean(geo[1])),
			fmt.Sprintf("%.2f", stats.GeoMean(geo[2])))
	}
	_, err = io.WriteString(w, t.String())
	return err
}

// Figure11Rows measures stacked DRAM dynamic energy per instruction,
// normalized to the block-based design (§6.6).
func Figure11Rows(o Options) ([]EnergyRow, error) { return energyRows(o) }

// Figure11 renders stacked-DRAM energy normalized to the block-based
// design.
func Figure11(o Options, w io.Writer) error {
	rows, err := energyRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 11: stacked DRAM dynamic energy per instruction, normalized to block-based (act-pre + burst)")
	var t stats.Table
	t.Header("workload", "block", "page", "footprint")
	cell := func(b energy.Breakdown, base float64) string {
		return fmt.Sprintf("%.2f (%.2f+%.2f)", b.TotalPJ()/base, b.ActPrePJ/base, b.BurstPJ/base)
	}
	var geo [2][]float64
	for _, r := range rows {
		base := r.Block.Stacked.TotalPJ()
		if base == 0 {
			continue
		}
		t.Row(r.Workload, cell(r.Block.Stacked, base), cell(r.Page.Stacked, base), cell(r.Footprint.Stacked, base))
		geo[0] = append(geo[0], r.Page.Stacked.TotalPJ()/base)
		geo[1] = append(geo[1], r.Footprint.Stacked.TotalPJ()/base)
	}
	if len(geo[0]) > 0 {
		t.Row("geomean", "1.00",
			fmt.Sprintf("%.2f", stats.GeoMean(geo[0])),
			fmt.Sprintf("%.2f", stats.GeoMean(geo[1])))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
