package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestAdaptiveOracle is the phase-shift oracle regression: on the
// workload the adaptive study is built around, the online controller
// must end the run with a hit ratio at least as good as the best
// static split it competes against — discovered online, starting from
// the plain-cache corner — and it must do so identically at any
// worker count. The run is fully deterministic (fixed seed, scale,
// and controller config), so this pins an exact outcome, not a
// statistical one.
func TestAdaptiveOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-length adaptive run in -short mode")
	}
	run := func(workers int) []AdaptiveRow {
		rows, err := AdaptiveRows(Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rows
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("adaptive rows differ between workers=1 and workers=8:\n--- serial ---\n%+v\n--- parallel ---\n%+v", serial, parallel)
	}

	best, adaptive, ok := BestStatic(serial)
	if !ok {
		t.Fatalf("rows missing static or adaptive entries: %+v", serial)
	}
	if adaptive.HitRatio < best.HitRatio {
		t.Fatalf("controller trails best static split (mem%%=%d): %.3f%% < %.3f%%",
			best.MemPct, 100*adaptive.HitRatio, 100*best.HitRatio)
	}
	if adaptive.OffChipBytesPerRef > best.OffChipBytesPerRef {
		t.Errorf("controller off-chip traffic %.2f B/ref exceeds best static's %.2f",
			adaptive.OffChipBytesPerRef, best.OffChipBytesPerRef)
	}
	// The win must come from actual adaptation, not a lucky starting
	// split: the controller starts at the plain-cache corner and has
	// to move to gain anything.
	if adaptive.Moves == 0 || adaptive.Resizes == 0 {
		t.Fatalf("adaptive row never moved the split: %+v", adaptive)
	}
	if adaptive.Epochs == 0 {
		t.Fatalf("adaptive row scored no epochs: %+v", adaptive)
	}
}

// TestAdaptiveRowsShape checks the study's row layout on a short run:
// static rows carry no controller state, the final row is the
// controller's, and explicit Options run lengths are honored.
func TestAdaptiveRowsShape(t *testing.T) {
	o := Options{Refs: 150_000, WarmupRefs: 50_000, Workers: 4}
	rows, err := AdaptiveRows(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(adaptiveMemPcts) + 1; len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for i, r := range rows {
		adaptive := i == len(adaptiveMemPcts)
		if r.Adaptive != adaptive {
			t.Fatalf("row %d: Adaptive=%v, want %v", i, r.Adaptive, adaptive)
		}
		if !adaptive {
			if r.MemPct != adaptiveMemPcts[i] {
				t.Fatalf("row %d: MemPct=%d, want %d", i, r.MemPct, adaptiveMemPcts[i])
			}
			if r.Policy != "" || r.Moves != 0 || r.Epochs != 0 {
				t.Fatalf("static row %d carries controller state: %+v", i, r)
			}
		} else {
			if !strings.HasPrefix(r.Policy, "adaptive:") {
				t.Fatalf("adaptive row policy label %q", r.Policy)
			}
			if r.Epochs == 0 {
				t.Fatalf("adaptive row scored no epochs over %d refs: %+v", o.Refs, r)
			}
			if r.FinalFraction < 0 || r.FinalFraction > 1 {
				t.Fatalf("final fraction %v out of range", r.FinalFraction)
			}
		}
		if r.HitRatio <= 0 || r.HitRatio > 1 {
			t.Fatalf("row %d: hit ratio %v out of range", i, r.HitRatio)
		}
	}
}

// TestAdaptiveOptionsDefaults pins the study's run-length defaulting:
// an unset Refs runs the tuned full-length point, explicit values win.
func TestAdaptiveOptionsDefaults(t *testing.T) {
	o := adaptiveOptions(Options{})
	if o.Refs != adaptiveMeasuredRefs || o.WarmupRefs != adaptiveWarmupRefs {
		t.Fatalf("defaults: refs=%d warmup=%d, want %d/%d", o.Refs, o.WarmupRefs, adaptiveMeasuredRefs, adaptiveWarmupRefs)
	}
	o = adaptiveOptions(Options{Refs: 10_000})
	if o.Refs != 10_000 || o.WarmupRefs != 10_000 {
		t.Fatalf("explicit refs: refs=%d warmup=%d, want 10000/10000", o.Refs, o.WarmupRefs)
	}
	o = adaptiveOptions(Options{Refs: 10_000, WarmupRefs: 5_000})
	if o.Refs != 10_000 || o.WarmupRefs != 5_000 {
		t.Fatalf("explicit warmup: refs=%d warmup=%d, want 10000/5000", o.Refs, o.WarmupRefs)
	}
}
