package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/dcache"
	"fpcache/internal/stats"
)

// CoverageFractions are Figure 12's x-axis points.
var CoverageFractions = []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80}

// Figure12Row is one workload's hot-page coverage curve: the minimum
// ideal cache size needed to capture each fraction of accesses.
type Figure12Row struct {
	Workload string
	// SizesMB is aligned with CoverageFractions, in paper-equivalent
	// MB (the measured scaled size divided by the scale factor).
	SizesMB []float64
}

// Figure12Rows reproduces the hot-page analysis of §6.7: assuming a
// perfect predictor and ideal replacement, how much cache is needed
// to cover a given fraction of accesses at 4KB page granularity? For
// scale-out datasets the answer is enormous — which is why CHOP-style
// per-page hotness prediction fails on them.
func Figure12Rows(o Options) ([]Figure12Row, error) {
	o = o.withDefaults()
	const pageBytes = 4096 // CHOP's optimal page size (§6.7)
	return pmap(o, len(o.Workloads), func(i int) (Figure12Row, error) {
		wl := o.Workloads[i]
		src, _, err := o.trace(wl)
		if err != nil {
			return Figure12Row{}, err
		}
		counts := make(map[uint64]uint64)
		total := o.WarmupRefs + o.Refs
		for r := 0; r < total; r++ {
			rec, ok := src.Next()
			if !ok {
				break
			}
			counts[uint64(rec.Addr)/pageBytes]++
		}
		sizes := dcache.CoverageCurve(counts, pageBytes, CoverageFractions)
		row := Figure12Row{Workload: wl}
		for _, s := range sizes {
			row.SizesMB = append(row.SizesMB, float64(s)/o.Scale/(1<<20))
		}
		return row, nil
	})
}

// Figure12 renders the coverage curves.
func Figure12(o Options, w io.Writer) error {
	rows, err := Figure12Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 12: minimum ideal cache size (paper-equivalent MB) to cover a fraction of accesses (4KB pages)")
	var t stats.Table
	hdr := []string{"workload"}
	for _, f := range CoverageFractions {
		hdr = append(hdr, fmt.Sprintf("%.0f%%", 100*f))
	}
	t.Header(hdr...)
	for _, r := range rows {
		cells := []string{r.Workload}
		for _, s := range r.SizesMB {
			cells = append(cells, fmt.Sprintf("%.0f", s))
		}
		t.Row(cells...)
	}
	_, err = io.WriteString(w, t.String())
	return err
}
