package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/control"
	"fpcache/internal/stats"
	"fpcache/internal/synth"
	"fpcache/internal/system"
)

// The adaptive study is the partition study's dynamic sequel: instead
// of sweeping static memory/cache splits (or replaying a fixed resize
// schedule), it hands the split to the online controller in
// internal/control and asks whether closed-loop adaptation beats every
// static point when the workload's best split moves at run time. It
// runs the phase-shift stress workload — alternating a cache-resident
// working set with whole-dataset scans — over the same static splits as
// the partition study plus one controller-driven row, all functional
// runs at the paper's headline capacity.

// adaptiveMemPcts are the static splits the controller competes
// against (percent of stacked capacity pinned as memory).
var adaptiveMemPcts = []int{0, 25, 50, 75}

// adaptiveCapacityMB fixes the study at the paper's headline capacity,
// like the partition study.
const adaptiveCapacityMB = 256

// adaptiveKind is the base design: demand block fetch with no
// footprint prefetch, so capacity retention — the thing the split
// controls — dominates the hit ratio.
const adaptiveKind = system.KindSubblock

// Default run length when Options doesn't set one. The phase-shift
// workload switches phase every 300k references; 2M measured
// references cover several full cycles of both phases (the regime the
// controller is built for), and 400k warmup references land
// measurement at a phase boundary with the caches warm.
const (
	adaptiveMeasuredRefs = 2_000_000
	adaptiveWarmupRefs   = 400_000
)

// AdaptiveControlConfig is the controller configuration the adaptive
// row runs: one-second-scale epochs (25k refs — 12 epochs per phase),
// one epoch of cooldown after each move, and a forced reprobe after 10
// held epochs so a phase change that leaves the held score flat is
// still discovered. InitialFraction 0 starts the controller at the
// plain-cache corner; everything it gains it finds online.
func AdaptiveControlConfig() control.Config {
	return control.Config{
		EpochRefs:      25_000,
		CooldownEpochs: 1,
		HoldEpochs:     10,
	}
}

// AdaptiveRow is one point of the adaptive study: a static split or
// the controller-driven row (Adaptive true), functional-grade.
type AdaptiveRow struct {
	Workload string
	// Design is the full composite spec ("subblock+memlow:25").
	Design string
	// MemPct is the static memory share in percent (the starting
	// share for the adaptive row).
	MemPct int
	// Adaptive marks the controller-driven row.
	Adaptive bool
	// Policy is the controller's config label (adaptive row only).
	Policy string
	// MemHitRatio is the fraction of accesses served by the
	// part-of-memory region (no tag lookup).
	MemHitRatio        float64
	HitRatio           float64
	MissRatio          float64
	OffChipBytesPerRef float64
	// Resizes counts applied splits; Moves counts controller
	// decisions that changed the target fraction; Epochs counts
	// scored epochs (adaptive row only).
	Resizes uint64
	Moves   uint64
	Epochs  uint64
	// FinalFraction is the controller's split when the run ended
	// (adaptive row only).
	FinalFraction float64
}

// adaptiveOptions fills the study's run-length defaults: unlike the
// grid experiments (whose 1M-reference default is plenty), the
// controller needs several phase cycles to show its behaviour, so an
// unset Refs runs the longer tuned point. Explicit Options always win.
func adaptiveOptions(o Options) Options {
	if o.Refs == 0 {
		o.Refs = adaptiveMeasuredRefs
		if o.WarmupRefs == 0 {
			o.WarmupRefs = adaptiveWarmupRefs
		}
	}
	return o.withDefaults()
}

// AdaptiveRows runs the adaptive partition study: every static split
// plus the controller-driven row on the phase-shift workload. The
// controller is deterministic — a pure function of the telemetry
// sequence — so rows are byte-identical at any Options.Workers.
func AdaptiveRows(o Options) ([]AdaptiveRow, error) {
	o = adaptiveOptions(o)
	const wl = synth.PhaseShift
	nPer := len(adaptiveMemPcts) + 1 // static splits + the adaptive row
	rows, err := pmap(o, nPer, func(i int) (AdaptiveRow, error) {
		adaptive := i == len(adaptiveMemPcts)
		pct := 0
		var pol system.ResizePolicy
		var ctl *control.Controller
		if adaptive {
			ap := system.NewAdaptivePolicy(AdaptiveControlConfig())
			ctl = ap.Controller()
			pol = ap
		} else {
			pct = adaptiveMemPcts[i]
		}
		spec := system.DesignSpec{
			Kind:            fmt.Sprintf("%s+%s:%d", adaptiveKind, system.PartMemLow, pct),
			PaperCapacityMB: adaptiveCapacityMB,
			Scale:           o.Scale,
		}
		res, err := o.buildFunctionalResized(spec, wl, pol)
		if err != nil {
			return AdaptiveRow{}, err
		}
		row := AdaptiveRow{
			Workload:           wl,
			Design:             res.Design,
			MemPct:             pct,
			Adaptive:           adaptive,
			HitRatio:           res.Counters.HitRatio(),
			MissRatio:          res.Counters.MissRatio(),
			OffChipBytesPerRef: res.OffChipBytesPerRef(),
		}
		if p := res.Partition; p != nil {
			if res.Refs > 0 {
				row.MemHitRatio = float64(p.MemHits) / float64(res.Refs)
			}
			row.Resizes = p.Resizes
		}
		if ctl != nil {
			row.Policy = ctl.Config().Label()
			row.Moves = ctl.Moves()
			row.Epochs = ctl.Epochs()
			row.FinalFraction = ctl.Fraction()
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// BestStatic returns the highest hit ratio among the static rows and
// the adaptive row, if present — the comparison the study exists to
// make.
func BestStatic(rows []AdaptiveRow) (best AdaptiveRow, adaptive AdaptiveRow, ok bool) {
	var haveBest, haveAdaptive bool
	for _, r := range rows {
		switch {
		case r.Adaptive:
			adaptive, haveAdaptive = r, true
		case !haveBest || r.HitRatio > best.HitRatio:
			best, haveBest = r, true
		}
	}
	return best, adaptive, haveBest && haveAdaptive
}

// Adaptive renders the adaptive partition study.
func Adaptive(o Options, w io.Writer) error {
	rows, err := AdaptiveRows(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Adaptive: online split controller vs static splits at %dMB (%s)\n",
		adaptiveCapacityMB, synth.PhaseShift)
	var t stats.Table
	t.Header("workload", "mem%", "memhit", "hit", "off-B/ref", "resizes", "moves", "final")
	for _, r := range rows {
		pct := fmt.Sprintf("%d", r.MemPct)
		final := ""
		if r.Adaptive {
			pct = "ctl"
			final = fmt.Sprintf("%.2f", r.FinalFraction)
		}
		t.Row(r.Workload, pct,
			fmt.Sprintf("%.1f%%", 100*r.MemHitRatio),
			fmt.Sprintf("%.3f%%", 100*r.HitRatio),
			fmt.Sprintf("%.1f", r.OffChipBytesPerRef),
			fmt.Sprintf("%d", r.Resizes),
			fmt.Sprintf("%d", r.Moves),
			final)
	}
	if _, err := io.WriteString(w, t.String()); err != nil {
		return err
	}
	if best, ad, ok := BestStatic(rows); ok {
		verdict := "beats"
		if ad.HitRatio < best.HitRatio {
			verdict = "trails"
		}
		_, err = fmt.Fprintf(w, "controller %s best static (mem%%=%d): %.3f%% vs %.3f%%\n",
			verdict, best.MemPct, 100*ad.HitRatio, 100*best.HitRatio)
	}
	return err
}
