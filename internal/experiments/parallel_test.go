package experiments

import (
	"bytes"
	"testing"

	"fpcache/internal/synth"
)

// TestSerialParallelByteIdentical is the determinism regression test
// for the sweep port: the same Options must render byte-identical
// output whether points run on one worker or many. It covers a
// functional grid driver (figure5), a histogram driver with eviction
// callbacks (figure4), a predictor driver (figure8), and the
// multi-study ablation renderer.
func TestSerialParallelByteIdentical(t *testing.T) {
	o := tiny()
	o.Refs = 20_000
	o.WarmupRefs = 20_000
	for _, name := range []string{"figure4", "figure5", "figure8", "ablation"} {
		var serial, parallel bytes.Buffer
		o.Workers = 1
		if err := Run(name, o, &serial); err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		o.Workers = 8
		if err := Run(name, o, &parallel); err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if serial.String() != parallel.String() {
			t.Fatalf("%s output differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, serial.String(), parallel.String())
		}
		if serial.Len() == 0 {
			t.Fatalf("%s rendered nothing", name)
		}
	}
}

// TestSerialParallelTimingIdentical covers the event-driven path: a
// timing experiment must also be independent of the worker count.
func TestSerialParallelTimingIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("timing determinism in -short mode")
	}
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	o.Capacities = []int{64}
	o.TimingRefs = 5_000
	o.WarmupRefs = 20_000

	run := func(workers int) string {
		var buf bytes.Buffer
		o.Workers = workers
		if err := Run("figure6", o, &buf); err != nil {
			t.Fatalf("figure6 workers=%d: %v", workers, err)
		}
		return buf.String()
	}
	if s, p := run(1), run(6); s != p {
		t.Fatalf("figure6 output differs between workers=1 and workers=6:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
}

// TestRowsRegistryMatchesRenderers ensures every registered
// experiment exposes typed rows for fpbench -json.
func TestRowsRegistryMatchesRenderers(t *testing.T) {
	for _, name := range Names() {
		e := registry[name]
		if e.render == nil || e.rows == nil {
			t.Fatalf("experiment %q missing render or rows func", name)
		}
	}
	o := tiny()
	o.Workloads = []string{synth.WebSearch}
	o.Capacities = []int{64}
	rows, err := Rows("table4", o)
	if err != nil {
		t.Fatal(err)
	}
	if rs, ok := rows.([]Table4Row); !ok || len(rs) != 1 {
		t.Fatalf("table4 rows = %T %v", rows, rows)
	}
	if _, err := Rows("bogus", o); err == nil {
		t.Fatal("unknown experiment accepted by Rows")
	}
}
