package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// Figure5Row compares the three cache organizations at one (workload,
// capacity) point: miss ratios (5a) and off-chip bandwidth normalized
// to the no-cache baseline (5b).
type Figure5Row struct {
	Workload   string
	CapacityMB int

	MissPage, MissFootprint, MissBlock float64
	BWPage, BWFootprint, BWBlock       float64
}

// Figure5Rows measures miss ratio and off-chip traffic for the
// page-based, Footprint, and block-based designs (§6.2).
func Figure5Rows(o Options) ([]Figure5Row, error) {
	o = o.withDefaults()
	var rows []Figure5Row
	for _, wl := range o.Workloads {
		baseDesign, err := system.BuildDesign(system.DesignSpec{Kind: system.KindBaseline})
		if err != nil {
			return nil, err
		}
		base, err := o.runFunctional(baseDesign, wl)
		if err != nil {
			return nil, err
		}
		baseBW := base.OffChipBytesPerRef()
		for _, mb := range o.Capacities {
			row := Figure5Row{Workload: wl, CapacityMB: mb}
			for _, kind := range []string{system.KindPage, system.KindFootprint, system.KindBlock} {
				design, err := system.BuildDesign(system.DesignSpec{
					Kind: kind, PaperCapacityMB: mb, Scale: o.Scale,
				})
				if err != nil {
					return nil, err
				}
				res, err := o.runFunctional(design, wl)
				if err != nil {
					return nil, err
				}
				miss := res.MissRatio()
				bw := stats.Ratio(res.OffChipBytesPerRef(), baseBW)
				switch kind {
				case system.KindPage:
					row.MissPage, row.BWPage = miss, bw
				case system.KindFootprint:
					row.MissFootprint, row.BWFootprint = miss, bw
				case system.KindBlock:
					row.MissBlock, row.BWBlock = miss, bw
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// Figure5 renders miss ratios and normalized off-chip bandwidth.
func Figure5(o Options, w io.Writer) error {
	rows, err := Figure5Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 5a: DRAM cache miss ratio — page / footprint / block")
	var a stats.Table
	a.Header("workload", "capacity", "page", "footprint", "block")
	for _, r := range rows {
		a.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			stats.Pct(r.MissPage), stats.Pct(r.MissFootprint), stats.Pct(r.MissBlock))
	}
	if _, err := io.WriteString(w, a.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nFigure 5b: off-chip bandwidth normalized to baseline — page / footprint / block")
	var b stats.Table
	b.Header("workload", "capacity", "page", "footprint", "block")
	for _, r := range rows {
		b.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			fmt.Sprintf("%.2fx", r.BWPage), fmt.Sprintf("%.2fx", r.BWFootprint), fmt.Sprintf("%.2fx", r.BWBlock))
	}
	_, err = io.WriteString(w, b.String())
	return err
}
