package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// Figure5Row compares the three cache organizations at one (workload,
// capacity) point: miss ratios (5a) and off-chip bandwidth normalized
// to the no-cache baseline (5b).
type Figure5Row struct {
	Workload   string
	CapacityMB int

	MissPage, MissFootprint, MissBlock float64
	BWPage, BWFootprint, BWBlock       float64
}

// Figure5Rows measures miss ratio and off-chip traffic for the
// page-based, Footprint, and block-based designs (§6.2). The
// per-workload baselines (the traffic normalizer) sweep first; the
// (workload, capacity, design) grid sweeps second.
func Figure5Rows(o Options) ([]Figure5Row, error) {
	o = o.withDefaults()
	baseBW, err := pmap(o, len(o.Workloads), func(i int) (float64, error) {
		base, err := o.buildFunctional(system.DesignSpec{Kind: system.KindBaseline}, o.Workloads[i])
		if err != nil {
			return 0, err
		}
		return base.OffChipBytesPerRef(), nil
	})
	if err != nil {
		return nil, err
	}

	kinds := []string{system.KindPage, system.KindFootprint, system.KindBlock}
	pts := o.grid()
	type meas struct{ miss, bytesPerRef float64 }
	res, err := pmap(o, len(pts)*len(kinds), func(i int) (meas, error) {
		pt, kind := pts[i/len(kinds)], kinds[i%len(kinds)]
		r, err := o.buildFunctional(system.DesignSpec{
			Kind: kind, PaperCapacityMB: pt.capacityMB, Scale: o.Scale,
		}, pt.workload)
		if err != nil {
			return meas{}, err
		}
		return meas{r.MissRatio(), r.OffChipBytesPerRef()}, nil
	})
	if err != nil {
		return nil, err
	}

	var rows []Figure5Row
	for pi, pt := range pts {
		base := baseBW[pi/len(o.Capacities)]
		m := res[pi*len(kinds) : (pi+1)*len(kinds)]
		rows = append(rows, Figure5Row{
			Workload:      pt.workload,
			CapacityMB:    pt.capacityMB,
			MissPage:      m[0].miss,
			MissFootprint: m[1].miss,
			MissBlock:     m[2].miss,
			BWPage:        stats.Ratio(m[0].bytesPerRef, base),
			BWFootprint:   stats.Ratio(m[1].bytesPerRef, base),
			BWBlock:       stats.Ratio(m[2].bytesPerRef, base),
		})
	}
	return rows, nil
}

// Figure5 renders miss ratios and normalized off-chip bandwidth.
func Figure5(o Options, w io.Writer) error {
	rows, err := Figure5Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 5a: DRAM cache miss ratio — page / footprint / block")
	var a stats.Table
	a.Header("workload", "capacity", "page", "footprint", "block")
	for _, r := range rows {
		a.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			stats.Pct(r.MissPage), stats.Pct(r.MissFootprint), stats.Pct(r.MissBlock))
	}
	if _, err := io.WriteString(w, a.String()); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nFigure 5b: off-chip bandwidth normalized to baseline — page / footprint / block")
	var b stats.Table
	b.Header("workload", "capacity", "page", "footprint", "block")
	for _, r := range rows {
		b.Row(r.Workload, fmt.Sprintf("%dMB", r.CapacityMB),
			fmt.Sprintf("%.2fx", r.BWPage), fmt.Sprintf("%.2fx", r.BWFootprint), fmt.Sprintf("%.2fx", r.BWBlock))
	}
	_, err = io.WriteString(w, b.String())
	return err
}
