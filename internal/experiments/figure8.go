package experiments

import (
	"fmt"
	"io"

	"fpcache/internal/core"
	"fpcache/internal/stats"
	"fpcache/internal/system"
)

// Figure8Row is the predictor accuracy at one (workload, page size)
// point, normalized the paper's way: covered and underpredicted
// blocks partition the demanded blocks; overprediction is reported
// relative to demanded blocks (so bars can exceed 100%).
type Figure8Row struct {
	Workload  string
	PageBytes int
	Covered   float64
	Under     float64
	Over      float64
}

// Figure8Rows measures footprint predictor accuracy sensitivity to
// the page size, for a 256MB cache with 16K FHT entries (§6.4).
func Figure8Rows(o Options) ([]Figure8Row, error) {
	o = o.withDefaults()
	pageSizes := []int{1024, 2048, 4096}
	_ = core.Stats{} // keep the core dependency explicit
	return pmap(o, len(o.Workloads)*len(pageSizes), func(i int) (Figure8Row, error) {
		wl := o.Workloads[i/len(pageSizes)]
		pageBytes := pageSizes[i%len(pageSizes)]
		res, err := o.buildFunctional(system.DesignSpec{
			Kind: system.KindFootprint, PaperCapacityMB: 256, Scale: o.Scale,
			PageBytes: pageBytes,
		}, wl)
		if err != nil {
			return Figure8Row{}, err
		}
		fp := res.Footprint
		if fp == nil {
			return Figure8Row{}, fmt.Errorf("figure8: no footprint stats for %s", wl)
		}
		return Figure8Row{
			Workload:  wl,
			PageBytes: pageBytes,
			Covered:   fp.Coverage(),
			Under:     1 - fp.Coverage(),
			Over:      fp.Overprediction(),
		}, nil
	})
}

// Figure8 renders predictor accuracy vs page size.
func Figure8(o Options, w io.Writer) error {
	rows, err := Figure8Rows(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 8: predictor accuracy vs page size (256MB cache, 16K FHT entries)")
	var t stats.Table
	t.Header("workload", "page", "covered", "underpredicted", "overpredicted")
	for _, r := range rows {
		t.Row(r.Workload, fmt.Sprintf("%dB", r.PageBytes),
			stats.Pct(r.Covered), stats.Pct(r.Under), stats.Pct(r.Over))
	}
	_, err = io.WriteString(w, t.String())
	return err
}
