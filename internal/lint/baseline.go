package lint

// Finding baselines, so a new analyzer can land strict-for-new-code:
// `fplint -write-baseline lint.baseline` freezes the current findings,
// and later runs with `-baseline lint.baseline` report only findings
// not in the freeze. Entries are keyed by analyzer, module-relative
// file, and message — deliberately not by line, so unrelated edits
// above a frozen finding do not resurrect it. Each entry carries a
// count: two identical findings in one file need two entries, and
// fixing one surfaces the other only after the count is decremented
// (re-freeze or hand-edit). Entries that match nothing are reported as
// stale so the baseline only ever shrinks.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is a parsed set of frozen findings.
type Baseline struct {
	counts map[string]int
	order  []string // first-seen order, for stale reporting
}

// baselineKey builds the entry key of one diagnostic. root anchors the
// relative path so baselines are machine-independent.
func baselineKey(root string, d Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	return d.Analyzer + "\t" + filepath.ToSlash(file) + "\t" + d.Message
}

// ReadBaseline parses path. A missing file is an empty baseline, so
// `-baseline lint.baseline` works before the first freeze.
func ReadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: map[string]int{}}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Count(line, "\t") < 2 {
			return nil, fmt.Errorf("lint: baseline %s: malformed entry %q (want analyzer<TAB>file<TAB>message)", path, line)
		}
		if b.counts[line] == 0 {
			b.order = append(b.order, line)
		}
		b.counts[line]++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	return b, nil
}

// WriteBaseline freezes diags to path, one line per finding, sorted.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	var lines []string
	for _, d := range diags {
		lines = append(lines, baselineKey(root, d))
	}
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# fplint baseline: pre-existing findings frozen so new analyzers are\n")
	sb.WriteString("# strict for new code only. One line per finding:\n")
	sb.WriteString("# analyzer<TAB>module-relative-file<TAB>message. Regenerate with\n")
	sb.WriteString("# `fplint -write-baseline " + filepath.Base(path) + " ./...`; entries matching\n")
	sb.WriteString("# nothing are reported stale, so this file only shrinks.\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return os.WriteFile(path, []byte(sb.String()), 0o666)
}

// Filter splits diags into findings surviving the baseline and the
// count it absorbed, and reports baseline entries that matched nothing
// (stale freezes) as "fplint" diagnostics so the file cannot rot.
func (b *Baseline) Filter(root string, diags []Diagnostic) (kept []Diagnostic, suppressed int, stale []string) {
	remaining := make(map[string]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	for _, d := range diags {
		k := baselineKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		kept = append(kept, d)
	}
	for _, k := range b.order {
		if remaining[k] > 0 {
			stale = append(stale, k)
		}
	}
	return kept, suppressed, stale
}

// Len reports how many findings the baseline freezes.
func (b *Baseline) Len() int {
	n := 0
	for _, v := range b.counts {
		n += v
	}
	return n
}
