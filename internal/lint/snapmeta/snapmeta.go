// Package snapmeta statically enforces the snapshot subsystem's
// versioning discipline in every package that serializes warm state
// through the snap codec:
//
//   - a type exposing Snapshot(io.Writer) error must implement
//     Restore(io.Reader) error in the same package, and both must
//     read/write a version tag (directly or through a same-package
//     helper such as snap.WriteEnvelope/ReadEnvelope wrappers);
//   - the package must pin a fingerprint of its state-carrier structs
//     with a //fplint:snapfields 0x%08x directive (conventionally on
//     the snapshot version const). Any field added to, removed from,
//     or retyped in a carrier changes the fingerprint and fails the
//     build until the codec is updated, the version const is bumped,
//     and the directive is refreshed — the compile-time face of the
//     "snapVersion bump on layout change" rule.
//
// Carrier structs are found structurally: receivers of methods taking
// a *snap.Writer, structs passed by pointer alongside a *snap.Writer
// or *snap.Reader (the savePageMeta(w, *PageMeta) helper shape), and
// package-local structs whose fields are read inside save-scope bodies.
package snapmeta

import (
	"fmt"
	"go/ast"
	"go/types"
	"hash/fnv"
	"sort"
	"strings"

	"fpcache/internal/lint"
)

// Analyzer is the snapshot-versioning check.
var Analyzer = &lint.Analyzer{
	Name: "snapmeta",
	Doc: "pairs Snapshot with Restore, requires version tags, and pins a " +
		"fingerprint of snapshot state-carrier struct fields to the version const",
	Run: run,
}

const directive = "//fplint:snapfields"

// snapPkgSuffix identifies the codec package itself, which is exempt
// (its structs are codec internals, not serialized state).
const snapPkgSuffix = "internal/snap"

func run(pass *lint.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), snapPkgSuffix) {
		return nil
	}
	checkSnapshotRestorePairs(pass)

	carriers := findCarriers(pass)
	if len(carriers) == 0 {
		return nil
	}
	want := fingerprint(pass, carriers)
	checkDirective(pass, carriers, want)
	return nil
}

// --- Snapshot/Restore pairing -----------------------------------------

func checkSnapshotRestorePairs(pass *lint.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		snapFn := methodNamed(ms, "Snapshot")
		if snapFn == nil || !isStreamMethod(snapFn, "io", "Writer") {
			continue
		}
		restoreFn := methodNamed(ms, "Restore")
		if restoreFn == nil || !isStreamMethod(restoreFn, "io", "Reader") {
			pass.Reportf(tn.Pos(),
				"%s implements Snapshot(io.Writer) error but no Restore(io.Reader) error in this package; "+
					"a snapshot nobody can restore is dead state", name)
			continue
		}
		for _, m := range []*types.Func{snapFn, restoreFn} {
			if decl := declOf(pass, m); decl != nil && !writesVersion(pass, decl, 3, map[*ast.FuncDecl]bool{}) {
				pass.Reportf(decl.Pos(),
					"%s.%s handles no snapshot version tag (no *Version* identifier or versioned envelope "+
						"within reach); unversioned layouts cannot evolve", name, m.Name())
			}
		}
	}
}

func methodNamed(ms *types.MethodSet, name string) *types.Func {
	for i := 0; i < ms.Len(); i++ {
		if fn, ok := ms.At(i).Obj().(*types.Func); ok && fn.Name() == name {
			return fn
		}
	}
	return nil
}

// isStreamMethod matches func(pkg.T) error single-parameter methods.
func isStreamMethod(fn *types.Func, pkgName, typeName string) bool {
	sig := fn.Signature()
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isNamedType(sig.Params().At(0).Type(), pkgName, typeName) {
		return false
	}
	rt, ok := sig.Results().At(0).Type().(*types.Named)
	return ok && rt.Obj().Name() == "error"
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		(obj.Pkg().Path() == pkgPath || strings.HasSuffix(obj.Pkg().Path(), "/"+pkgPath) || obj.Pkg().Path() == "io")
}

// declOf finds the FuncDecl of a method declared in this package.
func declOf(pass *lint.Pass, fn *types.Func) *ast.FuncDecl {
	if fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj == fn {
					return fd
				}
			}
		}
	}
	return nil
}

// writesVersion reports whether decl references a *Version* identifier
// or reaches one through same-package calls within depth hops — the
// Snapshot -> SnapshotDesign -> snap.WriteEnvelope(..., Version, ...)
// delegation chain.
func writesVersion(pass *lint.Pass, decl *ast.FuncDecl, depth int, seen map[*ast.FuncDecl]bool) bool {
	if decl == nil || decl.Body == nil || seen[decl] || depth < 0 {
		return false
	}
	seen[decl] = true
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if strings.Contains(strings.ToLower(n.Name), "version") {
				found = true
			}
		case *ast.CallExpr:
			if fn := lint.CalleeFunc(pass.Info, n); fn != nil && fn.Pkg() == pass.Pkg {
				if writesVersion(pass, declOf(pass, fn), depth-1, seen) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// --- carrier fingerprint ----------------------------------------------

// findCarriers returns the package-local named structs whose layout
// the snapshot codec depends on.
func findCarriers(pass *lint.Pass) map[*types.Named]bool {
	carriers := map[*types.Named]bool{}
	addType := func(t types.Type) {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() != pass.Pkg {
			return
		}
		if _, ok := n.Underlying().(*types.Struct); ok {
			carriers[n] = true
		}
	}
	isSnapStream := func(t types.Type) bool {
		p, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		n, ok := p.Elem().(*types.Named)
		if !ok || n.Obj().Pkg() == nil || !strings.HasSuffix(n.Obj().Pkg().Path(), snapPkgSuffix) {
			return false
		}
		return n.Obj().Name() == "Writer" || n.Obj().Name() == "Reader"
	}

	// Collect save-scope bodies: declared functions and function
	// literals with a *snap.Writer parameter; pair-parameter structs
	// are carriers for both stream directions.
	var saveScopes []ast.Node
	scanSig := func(ft *ast.FuncType, body ast.Node, recv *ast.FieldList) {
		if ft.Params == nil {
			return
		}
		hasWriter, hasStream := false, false
		var ptrParams []types.Type
		for _, f := range ft.Params.List {
			t := pass.Info.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if isSnapStream(t) {
				hasStream = true
				if n := t.(*types.Pointer).Elem().(*types.Named); n.Obj().Name() == "Writer" {
					hasWriter = true
				}
				continue
			}
			if p, ok := t.(*types.Pointer); ok {
				ptrParams = append(ptrParams, p)
			}
		}
		if hasStream {
			// Pointer-struct co-parameters of a codec stream are
			// carriers (the savePageMeta(w, *PageMeta) helper shape),
			// on both the save and load sides.
			for _, p := range ptrParams {
				addType(p)
			}
		}
		if hasWriter {
			if body != nil {
				saveScopes = append(saveScopes, body)
			}
			if recv != nil {
				for _, f := range recv.List {
					if t := pass.Info.TypeOf(f.Type); t != nil {
						addType(t)
					}
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				scanSig(n.Type, bodyOrNil(n.Body), n.Recv)
			case *ast.FuncLit:
				scanSig(n.Type, n.Body, nil)
			}
			return true
		})
	}
	// Structs whose fields are read inside save scopes.
	for _, body := range saveScopes {
		ast.Inspect(body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if t := pass.Info.TypeOf(sel.X); t != nil {
				addType(t)
			}
			return true
		})
	}
	return carriers
}

func bodyOrNil(b *ast.BlockStmt) ast.Node {
	if b == nil {
		return nil
	}
	return b
}

// fingerprint hashes the carrier structs' field layout: names and
// types, in declaration order, structs sorted by name.
func fingerprint(pass *lint.Pass, carriers map[*types.Named]bool) uint32 {
	var names []string
	byName := map[string]*types.Named{}
	for n := range carriers {
		names = append(names, n.Obj().Name())
		byName[n.Obj().Name()] = n
	}
	sort.Strings(names)
	h := fnv.New32a()
	qual := types.RelativeTo(pass.Pkg)
	for _, name := range names {
		st := byName[name].Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			fmt.Fprintf(h, "%s.%s %s\n", name, f.Name(), types.TypeString(f.Type(), qual))
		}
	}
	return h.Sum32()
}

func checkDirective(pass *lint.Pass, carriers map[*types.Named]bool, want uint32) {
	var directives []*ast.Comment
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, directive+" ") || c.Text == directive {
					directives = append(directives, c)
				}
			}
		}
	}
	var carrierNames []string
	for n := range carriers {
		carrierNames = append(carrierNames, n.Obj().Name())
	}
	sort.Strings(carrierNames)
	switch len(directives) {
	case 0:
		pass.Reportf(pass.Files[0].Package,
			"package serializes snapshot state (carriers: %s) but pins no field fingerprint; "+
				"add `%s %#08x` on the snapshot version const and bump that const whenever the fingerprint changes",
			strings.Join(carrierNames, ", "), directive, want)
	case 1:
		fields := strings.Fields(strings.TrimPrefix(directives[0].Text, directive))
		if len(fields) == 0 {
			pass.Reportf(directives[0].Pos(), "%s needs a fingerprint value; current layout is %#08x", directive, want)
			return
		}
		if got := fields[0]; got != fmt.Sprintf("%#08x", want) {
			pass.Reportf(directives[0].Pos(),
				"snapshot state-carrier fields changed: layout fingerprint is %#08x, directive records %s "+
					"(carriers: %s) — update the codec, bump the snapshot version const, and refresh the directive",
				want, got, strings.Join(carrierNames, ", "))
		}
	default:
		pass.Reportf(directives[1].Pos(), "duplicate %s directive; keep exactly one per package", directive)
	}
}
