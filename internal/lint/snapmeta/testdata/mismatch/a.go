// Package a pins a stale carrier fingerprint: the directive's value
// no longer matches the struct layout, as after adding a field without
// bumping the version.
package a

import "fpcache/internal/snap"

//fplint:snapfields 0xdeadbeef // want `directive records 0xdeadbeef`
const stateVersion = 1

var _ = stateVersion

// meta gained a field since the directive was written.
type meta struct{ valid, dirty, spread uint64 }

func saveMeta(w *snap.Writer, m *meta) {
	w.U64(m.valid)
	w.U64(m.dirty)
	w.U64(m.spread)
}
