// Package a is the clean snapmeta fixture: a paired, versioned
// Snapshot/Restore and a correctly pinned carrier fingerprint.
package a

import (
	"errors"
	"io"

	"fpcache/internal/snap"
)

//fplint:snapfields 0x1ef7f61f
const stateVersion = 1

var errFormat = errors.New("bad version")

// Versioned pairs Snapshot with Restore and tags both with the layout
// version.
type Versioned struct{ n uint64 }

func (v *Versioned) Snapshot(w io.Writer) error {
	_, err := w.Write([]byte{stateVersion, byte(v.n)})
	return err
}

func (v *Versioned) Restore(r io.Reader) error {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return err
	}
	if buf[0] != stateVersion {
		return errFormat
	}
	v.n = uint64(buf[1])
	return nil
}

// meta is the carrier whose layout the directive above pins.
type meta struct{ valid, dirty uint64 }

func saveMeta(w *snap.Writer, m *meta) {
	w.U64(m.valid)
	w.U64(m.dirty)
}
