// Package a exercises the snapmeta analyzer: an unpaired Snapshot, a
// versionless Snapshot/Restore pair, and serialized carrier structs
// with no pinned field fingerprint.
package a // want `pins no field fingerprint`

import (
	"errors"
	"io"

	"fpcache/internal/snap"
)

const stateVersion = 1

var errFormat = errors.New("bad version")

// SnapOnly implements Snapshot but not Restore.
type SnapOnly struct{ n uint64 } // want `implements Snapshot\(io.Writer\) error but no Restore`

// Snapshot serializes the value.
func (s *SnapOnly) Snapshot(w io.Writer) error {
	_, err := w.Write([]byte{byte(s.n)})
	return err
}

// Unversioned pairs Snapshot with Restore but neither side touches a
// version tag.
type Unversioned struct{ n uint64 }

func (u *Unversioned) Snapshot(w io.Writer) error { // want `handles no snapshot version tag`
	_, err := w.Write([]byte{byte(u.n)})
	return err
}

func (u *Unversioned) Restore(r io.Reader) error { // want `handles no snapshot version tag`
	var buf [1]byte
	_, err := io.ReadFull(r, buf[:])
	u.n = uint64(buf[0])
	return err
}

// Versioned does everything right: paired methods, a version tag
// written and checked.
type Versioned struct{ n uint64 }

func (v *Versioned) Snapshot(w io.Writer) error {
	_, err := w.Write([]byte{stateVersion, byte(v.n)})
	return err
}

func (v *Versioned) Restore(r io.Reader) error {
	var buf [2]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return err
	}
	if buf[0] != stateVersion {
		return errFormat
	}
	v.n = uint64(buf[1])
	return nil
}

// meta is a carrier: a struct streamed through the snap codec.
type meta struct{ valid, dirty uint64 }

func saveMeta(w *snap.Writer, m *meta) {
	w.U64(m.valid)
	w.U64(m.dirty)
}
