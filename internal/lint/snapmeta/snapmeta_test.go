package snapmeta_test

import (
	"testing"

	"fpcache/internal/lint/linttest"
	"fpcache/internal/lint/snapmeta"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/a", snapmeta.Analyzer)
}

func TestCorrectDirectiveIsClean(t *testing.T) {
	linttest.Run(t, "testdata/good", snapmeta.Analyzer)
}

func TestStaleFingerprint(t *testing.T) {
	linttest.Run(t, "testdata/mismatch", snapmeta.Analyzer)
}
