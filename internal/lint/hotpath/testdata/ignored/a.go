// Package a suppresses a hotpath finding with a reasoned directive.
package a

type design interface {
	//fplint:hotpath
	access(addr uint64) int
}

type impl struct{ name string }

func (d *impl) access(addr uint64) int {
	//fplint:ignore hotpath error label built once on the failure path only
	label := d.name + "!"
	return len(label) + int(addr)
}
