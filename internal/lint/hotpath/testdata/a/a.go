// Package a exercises the hotpath analyzer. The annotated interface
// method seeds the closure, which spans every implementation and
// everything they call; functions outside the closure are free to
// allocate.
package a

import "fmt"

type op struct{ addr uint64 }

// payload is 128 bytes, at the large-capture threshold.
type payload struct{ vals [16]uint64 }

type design interface {
	//fplint:hotpath
	access(addr uint64, ops []op) []op
}

type impl struct {
	name    string
	scratch []op
}

func (d *impl) access(addr uint64, ops []op) []op {
	label := d.name + "!" // want `string concatenation allocates on the hot path`
	_ = label
	ops = append(ops, op{addr: addr})             // ok: caller-provided scratch
	d.scratch = append(d.scratch, op{addr: addr}) // ok: receiver-owned buffer
	out := ops[:0]
	out = append(out, op{addr: addr}) // ok: derived from scratch
	var fresh []op
	fresh = append(fresh, op{addr: addr}) // want `append to fresh allocates beyond caller-provided scratch`
	_ = fresh
	helper(addr)
	boxed(payload{}) // want `passing payload by value into interface any boxes`
	capture(payload{})
	guard(addr)
	return out
}

func helper(addr uint64) {
	counts := map[uint64]int{addr: 1} // want `map literal allocates on the hot path`
	_ = counts
	deeper(addr)
}

func deeper(addr uint64) {
	m := make(map[uint64]int, 4) // want `make\(map\) allocates on the hot path`
	m[addr] = 1
}

func boxed(v any) {}

func capture(p payload) func() uint64 {
	return func() uint64 { return p.vals[0] } // want `closure captures p`
}

func guard(addr uint64) {
	if addr == 0 {
		panic(fmt.Sprintf("zero addr %d", addr)) // ok: panic arguments are exempt
	}
}

//fplint:hotpath
func concreteHot() {
	_ = fmt.Sprintf("x") // want `fmt\.Sprintf allocates and boxes its arguments on the hot path`
}

func coldSetup() map[uint64]int {
	return map[uint64]int{1: 2} // ok: not reachable from a hot seed
}
