// Package hotpath statically enforces the 0 allocs/op budget on the
// Access hot path. Seeds are methods annotated //fplint:hotpath —
// on an interface method (every implementation becomes hot) or on a
// concrete function — and the analyzer closes over the static call
// graph: direct calls, method calls, and interface calls expanded to
// every implementing type in the program. Functions in the closure
// must not contain allocating constructs:
//
//   - fmt calls (Sprintf and friends allocate and box),
//   - string concatenation,
//   - append to anything but caller-provided scratch (a parameter,
//     the receiver's own buffers, or a slice derived from either),
//   - interface boxing of non-pointer values,
//   - closures capturing large structs,
//   - map literals and make(map).
//
// Arguments of panic(...) are exempt — that path is already
// catastrophic. In standalone fplint runs the closure spans every
// package; under `go vet -vettool` each package is analyzed alone, so
// only locally visible seeds and calls are covered (CI's standalone
// step provides the full closure). The runtime allocation benchmarks
// (alloc_test.go) remain the ground truth; this analyzer catches the
// regression at compile time instead of bench time.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"fpcache/internal/lint"
)

// Analyzer is the hot-path allocation check.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc: "forbids allocating constructs in functions reachable from " +
		"//fplint:hotpath-annotated methods (the Design.Access closure)",
}

func init() { Analyzer.Run = run }

// memoKey keys the shared closure in Program.Memo.
const memoKey = "hotpath"

const directive = "//fplint:hotpath"

// funcNode is one declared function the analyzer can traverse.
type funcNode struct {
	decl *ast.FuncDecl
	pkg  *lint.PackageInfo
}

// closure is the program-wide result, memoized across per-package
// passes of one standalone run.
type closure struct {
	// hot maps each hot function (generic origin) to the seed that
	// made it hot, for diagnostics.
	hot map[*types.Func]string
	// nodes indexes every declared function in the analyzed packages.
	nodes map[*types.Func]*funcNode
}

func run(pass *lint.Pass) error {
	pkgs := []*lint.PackageInfo{{
		ImportPath: pass.Pkg.Path(), Files: pass.Files, Pkg: pass.Pkg, Info: pass.Info,
	}}
	var cl *closure
	if pass.Program != nil {
		cl = programClosure(pass.Program)
	} else {
		cl = buildClosure(pkgs)
	}
	// Report findings only for functions declared in this pass's
	// package, so the whole-program closure yields each diagnostic
	// exactly once.
	for fn, seed := range cl.hot {
		node := cl.nodes[fn]
		if node == nil || node.pkg.Pkg != pass.Pkg || node.decl.Body == nil {
			continue
		}
		checkBody(pass, node, seed)
	}
	return nil
}

// HotFunc is one member of the exported hotpath closure.
type HotFunc struct {
	Seed string            // the //fplint:hotpath seed that made it hot
	Decl *ast.FuncDecl     // its declaration
	Pkg  *lint.PackageInfo // the package declaring it
}

// ProgramHotFuncs exposes the whole-program hotpath closure to other
// analyzers (allocbudget intersects compiler escape diagnostics with
// it). The closure is memoized in prog.Memo under the same key the
// hotpath analyzer uses, so whichever runs first pays for the BFS.
func ProgramHotFuncs(prog *lint.Program) map[*types.Func]HotFunc {
	cl := programClosure(prog)
	out := make(map[*types.Func]HotFunc, len(cl.hot))
	for fn, seed := range cl.hot {
		if node := cl.nodes[fn]; node != nil {
			out[fn] = HotFunc{Seed: seed, Decl: node.decl, Pkg: node.pkg}
		}
	}
	return out
}

func programClosure(prog *lint.Program) *closure {
	if memo, ok := prog.Memo[memoKey]; ok {
		return memo.(*closure)
	}
	cl := buildClosure(prog.Packages)
	prog.Memo[memoKey] = cl
	return cl
}

// --- closure construction --------------------------------------------

func buildClosure(pkgs []*lint.PackageInfo) *closure {
	cl := &closure{hot: map[*types.Func]string{}, nodes: map[*types.Func]*funcNode{}}

	// Index every declared function and collect annotation seeds.
	type seed struct {
		fn   *types.Func
		name string
	}
	var concreteSeeds []seed
	var ifaceSeeds []seed
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
					if fn == nil {
						continue
					}
					cl.nodes[fn] = &funcNode{decl: d, pkg: pkg}
					if hasDirective(d.Doc) {
						concreteSeeds = append(concreteSeeds, seed{fn, funcLabel(fn)})
					}
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						it, ok := ts.Type.(*ast.InterfaceType)
						if !ok {
							continue
						}
						for _, m := range it.Methods.List {
							if len(m.Names) == 0 || !(hasDirective(m.Doc) || hasDirective(m.Comment)) {
								continue
							}
							fn, _ := pkg.Info.Defs[m.Names[0]].(*types.Func)
							if fn != nil {
								ifaceSeeds = append(ifaceSeeds, seed{fn, pkg.Pkg.Name() + "." + ts.Name.Name + "." + fn.Name()})
							}
						}
					}
				}
			}
		}
	}

	// All named types of the program, for interface-call expansion.
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if n, ok := tn.Type().(*types.Named); ok && n.TypeParams().Len() == 0 {
				named = append(named, n)
			}
		}
	}
	implementers := func(m *types.Func) []*types.Func {
		recv := m.Signature().Recv()
		if recv == nil {
			return nil
		}
		iface, ok := recv.Type().Underlying().(*types.Interface)
		if !ok {
			return nil
		}
		var out []*types.Func
		for _, n := range named {
			if types.IsInterface(n) {
				continue
			}
			ptr := types.NewPointer(n)
			if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
			if fn, ok := obj.(*types.Func); ok {
				out = append(out, fn.Origin())
			}
		}
		return out
	}

	// BFS over static call edges.
	ifaceHot := map[*types.Func]string{}
	var queue []seed
	enqueue := func(fn *types.Func, label string) {
		fn = fn.Origin()
		if _, ok := cl.hot[fn]; ok {
			return
		}
		if _, ok := cl.nodes[fn]; !ok {
			return
		}
		cl.hot[fn] = label
		queue = append(queue, seed{fn, label})
	}
	markIface := func(m *types.Func, label string) {
		if _, ok := ifaceHot[m]; ok {
			return
		}
		ifaceHot[m] = label
		for _, impl := range implementers(m) {
			enqueue(impl, label)
		}
	}
	for _, s := range ifaceSeeds {
		markIface(s.fn, s.name)
	}
	for _, s := range concreteSeeds {
		enqueue(s.fn, s.name)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := cl.nodes[cur.fn]
		if node.decl.Body == nil {
			continue
		}
		info := node.pkg.Info
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(info, call)
			if fn == nil {
				return true
			}
			fn = fn.Origin()
			if recv := fn.Signature().Recv(); recv != nil {
				if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
					markIface(fn, cur.name)
					return true
				}
			}
			enqueue(fn, cur.name)
			return true
		})
	}
	return cl
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if c.Text == directive || strings.HasPrefix(c.Text, directive+" ") {
			return true
		}
	}
	return false
}

// FuncLabel is the package-qualified human label of a function
// (pkg.Type.Method for methods), the identity the allocbudget manifest
// keys entries by.
func FuncLabel(fn *types.Func) string { return funcLabel(fn) }

func funcLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := fn.Signature().Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return fn.Pkg().Name() + "." + n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// --- allocation checks ------------------------------------------------

// largeCaptureBytes is the struct size past which capturing a variable
// in a closure is flagged: the variable escapes to the heap with the
// closure, copying the struct out of its frame.
const largeCaptureBytes = 128

func checkBody(pass *lint.Pass, node *funcNode, seed string) {
	info := node.pkg.Info
	scratch := scratchRoots(info, node.decl)
	decl := node.decl

	lint.WithStack(decl.Body, func(stack []ast.Node) bool {
		n := stack[len(stack)-1]
		// Allocation on a panic path is already catastrophic; skip the
		// arguments of panic(...) entirely.
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					return false
				}
			}
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, info, n, scratch, seed)
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isStringType(info.TypeOf(n)) && !isConst(info, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates on the hot path (reachable from %s)", seed)
			}
		case *ast.AssignStmt:
			if n.Tok.String() == "+=" && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation allocates on the hot path (reachable from %s)", seed)
			}
			checkBoxingAssign(pass, info, n.Lhs, n.Rhs, seed)
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					pass.Reportf(n.Pos(), "map literal allocates on the hot path (reachable from %s)", seed)
				}
			}
		case *ast.FuncLit:
			checkCapture(pass, info, decl, n, seed)
		}
		return true
	})
}

func checkCall(pass *lint.Pass, info *types.Info, call *ast.CallExpr, scratch map[types.Object]bool, seed string) {
	// Builtins: append and make.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				if len(call.Args) > 0 && !scratchRooted(info, call.Args[0], scratch) {
					pass.Reportf(call.Pos(),
						"append to %s allocates beyond caller-provided scratch on the hot path (reachable from %s); "+
							"append into a parameter or a receiver-owned buffer", exprString(call.Args[0]), seed)
				}
			case "make":
				if len(call.Args) > 0 {
					if t := info.TypeOf(call.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							pass.Reportf(call.Pos(), "make(map) allocates on the hot path (reachable from %s)", seed)
						}
					}
				}
			}
			return
		}
	}
	fn := lint.CalleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates and boxes its arguments on the hot path (reachable from %s)", fn.Name(), seed)
		return
	}
	// Interface boxing of arguments.
	sigT, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // type conversion or builtin
	}
	params := sigT.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sigT.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		reportBoxing(pass, info, arg, pt, seed)
	}
}

func checkBoxingAssign(pass *lint.Pass, info *types.Info, lhs, rhs []ast.Expr, seed string) {
	if len(lhs) != len(rhs) {
		return
	}
	for i := range lhs {
		lt := info.TypeOf(lhs[i])
		if lt == nil {
			continue
		}
		reportBoxing(pass, info, rhs[i], lt, seed)
	}
}

// reportBoxing flags storing a non-pointer-shaped concrete value into
// an interface-typed slot: the value is copied to the heap.
func reportBoxing(pass *lint.Pass, info *types.Info, val ast.Expr, target types.Type, seed string) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := info.Types[val]
	if !ok || tv.Value != nil || tv.IsNil() {
		return // constants fold; untyped nil never boxes
	}
	vt := tv.Type
	if vt == nil {
		return
	}
	switch vt.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // already an interface, or pointer-shaped: no allocation
	}
	pass.Reportf(val.Pos(),
		"passing %s by value into interface %s boxes and allocates on the hot path (reachable from %s); pass a pointer",
		types.TypeString(vt, types.RelativeTo(pass.Pkg)), types.TypeString(target, types.RelativeTo(pass.Pkg)), seed)
}

// checkCapture flags closures capturing large structs from the
// enclosing hot function: the captured variable escapes with the
// closure.
func checkCapture(pass *lint.Pass, info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit, seed string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Captured = declared inside the enclosing function but outside
		// the literal.
		if obj.Pos() < encl.Pos() || obj.Pos() > encl.End() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return true
		}
		if size := pass.Sizes.Sizeof(st); size >= largeCaptureBytes {
			pass.Reportf(id.Pos(),
				"closure captures %s (struct %s, %d bytes) on the hot path (reachable from %s); the capture forces a heap copy",
				obj.Name(), types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)), size, seed)
		}
		return true
	})
}

// --- scratch-buffer tracking ------------------------------------------

// scratchRoots computes the variables append may legitimately grow in
// a hot function: slice-typed parameters and the receiver, plus locals
// (transitively) derived from them — `out := ops[:0]` stays scratch.
func scratchRoots(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	roots := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			if obj := info.Defs[name]; obj != nil {
				roots[obj] = true
			}
		}
	}
	if decl.Recv != nil {
		for _, f := range decl.Recv.List {
			addField(f)
		}
	}
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			addField(f)
		}
	}
	if decl.Body == nil {
		return roots
	}
	// Fixpoint over assignments: a local assigned from a scratch-rooted
	// expression becomes scratch itself.
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || roots[obj] {
					continue
				}
				if scratchRooted(info, as.Rhs[i], roots) {
					roots[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	return roots
}

// scratchRooted reports whether e ultimately aliases a scratch root:
// the root identifier of slicings, index/selector chains, and append
// results must be (or be a field of) a scratch variable.
func scratchRooted(info *types.Info, e ast.Expr, roots map[types.Object]bool) bool {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A field of a scratch root (receiver-owned buffer) is
			// scratch; so is a field chain ending at one.
			e = x.X
		case *ast.CallExpr:
			// append(scratch, ...) yields scratch.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(x.Args) > 0 {
					e = x.Args[0]
					continue
				}
			}
			return false
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			return obj != nil && roots[obj]
		default:
			return false
		}
	}
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConst reports whether the checker folded e to a constant (constant
// string concatenation happens at compile time).
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.SliceExpr:
		return exprString(x.X) + "[...]"
	default:
		return "a fresh slice"
	}
}
