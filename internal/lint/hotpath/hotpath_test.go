package hotpath_test

import (
	"testing"

	"fpcache/internal/lint/hotpath"
	"fpcache/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/a", hotpath.Analyzer)
}

func TestIgnoreDirective(t *testing.T) {
	linttest.Run(t, "testdata/ignored", hotpath.Analyzer)
}
