// Package lint is a self-contained static-analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built only on the standard
// library so the repository carries no external tool dependency. It
// hosts the fplint analyzer suite (determinism, hotpath, faulterr,
// snapmeta) that turns the repo's runtime-tested invariants — byte
// identical parallel runs, 0 allocs/op on Design.Access, classified
// warm/restore errors, versioned snapshot layouts — into compile-time
// checks.
//
// The moving parts mirror go/analysis deliberately: an Analyzer owns a
// Run function over a Pass; a Pass exposes one type-checked package
// (syntax, *types.Package, *types.Info); Program bundles every package
// of a standalone run so whole-program analyses (the hotpath call
// graph) can see across package boundaries. Load builds a Program by
// shelling out to `go list -export -deps -json` and type-checking the
// module's packages against the gc export data of their dependencies,
// which works fully offline.
//
// Findings are suppressed per line with
//
//	//fplint:ignore <analyzer>[,<analyzer>] <reason>
//
// where the reason is mandatory: a directive without one is itself a
// diagnostic.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in reports and ignore directives.
	Name string
	// Doc is the one-paragraph contract shown by fplint -list.
	Doc string
	// Match restricts which packages the driver runs the analyzer on
	// (by import path); nil means every package. The fixture harness
	// runs analyzers unscoped, so keep Match in the driver registry,
	// not in the analyzer's package.
	Match func(pkgPath string) bool
	// Run analyzes one package and reports through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Fixes are optional mechanical corrections; fplint -fix applies
	// the first fix of each finding when its edits do not overlap
	// another applied fix.
	Fixes []SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// SuggestedFix is one mechanical correction for a finding: a set of
// byte-offset edits that, applied together, resolve it.
type SuggestedFix struct {
	// Message describes the fix for reports ("replace %v with %w").
	Message string
	Edits   []TextEdit
}

// TextEdit replaces the bytes [Start, End) of Filename with NewText.
// Start == End inserts.
type TextEdit struct {
	Filename   string
	Start, End int
	NewText    string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package syntax, comments included.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
	// Program is the whole standalone run, nil when analyzing a single
	// package in `go vet -vettool` mode — whole-program analyses must
	// degrade to package-local reasoning when it is nil.
	Program *Program

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an explicit file position — for
// findings whose location is not part of the type-checked syntax (a
// compiler diagnostic's site, a line of a data file like the
// allocbudget manifest).
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying one suggested fix. A fix
// with no edits is dropped (the analyzer decided mid-construction the
// rewrite was not safe) and the finding reported plain.
func (p *Pass) ReportFix(pos token.Pos, fix SuggestedFix, format string, args ...any) {
	d := Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	}
	if len(fix.Edits) > 0 {
		d.Fixes = []SuggestedFix{fix}
	}
	*p.diags = append(*p.diags, d)
}

// Edit builds a TextEdit replacing the source range [from, to) with
// newText, resolving token positions to byte offsets.
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	start := p.Fset.Position(from)
	end := p.Fset.Position(to)
	return TextEdit{Filename: start.Filename, Start: start.Offset, End: end.Offset, NewText: newText}
}

// RunProgram runs every analyzer over every package of prog (honoring
// Analyzer.Match), applies the //fplint:ignore directives, and returns
// the surviving diagnostics in deterministic order.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunProgramAudit(prog, analyzers)
	return diags, err
}

// RunProgramAudit is RunProgram plus suppression accounting: it also
// returns one IgnoreUse per well-formed //fplint:ignore directive in
// the analyzed packages, recording how many findings each suppressed.
// A directive with Suppressed == 0 is stale — the code it excused no
// longer trips the analyzer — and strict callers turn it into a
// finding (StaleIgnores).
func RunProgramAudit(prog *Program, analyzers []*Analyzer) ([]Diagnostic, []IgnoreUse, error) {
	var diags []Diagnostic
	var audit []IgnoreUse
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			if a.Match != nil && !a.Match(pkg.ImportPath) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Pkg,
				Info:     pkg.Info,
				Sizes:    prog.Sizes,
				Program:  prog,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
		var uses []IgnoreUse
		diags, uses = applyIgnores(prog.Fset, pkg.Files, diags)
		audit = append(audit, uses...)
	}
	sortDiagnostics(diags)
	sort.Slice(audit, func(i, j int) bool {
		a, b := audit[i].Pos, audit[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return diags, audit, nil
}

// StaleIgnores converts unused directives into findings: a directive
// that suppressed nothing for any of the enabled analyzers it names is
// a lost invariant waiting to regress silently. Each finding carries a
// fix deleting the directive. enabled is the set of analyzer names
// that actually ran; directives naming only other analyzers are left
// alone (a scoped or filtered run cannot judge them).
func StaleIgnores(audit []IgnoreUse, enabled map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, u := range audit {
		if u.Suppressed > 0 {
			continue
		}
		names := ""
		covered := false
		for _, a := range u.Analyzers {
			if enabled[a] {
				covered = true
			}
			if names != "" {
				names += ","
			}
			names += a
		}
		if !covered {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "fplint",
			Pos:      u.Pos,
			Message: fmt.Sprintf("stale //fplint:ignore %s: it suppresses no finding; "+
				"delete it (or re-justify it) so silenced invariants stay visible", names),
			Fixes: []SuggestedFix{{Message: "delete the stale directive", Edits: []TextEdit{u.delEdit}}},
		})
	}
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer,
// message — the stable order every output path uses. Callers that
// append findings after a Run* call (e.g. StaleIgnores) re-sort with
// this before printing.
func SortDiagnostics(diags []Diagnostic) { sortDiagnostics(diags) }

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// WithStack walks root like ast.Inspect but hands fn the full ancestor
// stack (stack[len(stack)-1] is the current node). Returning false
// prunes the subtree.
func WithStack(root ast.Node, fn func(stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(stack) {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// CalleeFunc resolves the *types.Func a call expression invokes, nil
// for builtins, type conversions, and calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level (or method) named
// path.name.
func IsPkgFunc(fn *types.Func, path, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == path && fn.Name() == name
}
