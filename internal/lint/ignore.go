package lint

// The //fplint:ignore directive. A finding is suppressed by a comment
//
//	//fplint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the same line as the finding, or on the line directly above it
// when the directive stands alone. The reason is mandatory — an
// invariant someone silenced without saying why is an invariant lost —
// so a reasonless directive is reported (analyzer name "fplint") and
// suppresses nothing.

import (
	"go/ast"
	"go/token"
	"strings"
)

const ignorePrefix = "//fplint:ignore"

type ignoreDirective struct {
	analyzers map[string]bool
	pos       token.Position
	ok        bool // has a reason
}

// parseIgnore parses one comment, returning nil if it is not an
// ignore directive.
func parseIgnore(fset *token.FileSet, c *ast.Comment) *ignoreDirective {
	text, found := strings.CutPrefix(c.Text, ignorePrefix)
	if !found {
		return nil
	}
	// "//fplint:ignoreX" is some other word, not a directive.
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		return nil
	}
	fields := strings.Fields(text)
	d := &ignoreDirective{analyzers: map[string]bool{}, pos: fset.Position(c.Pos())}
	if len(fields) == 0 {
		return d // analyzer list missing; reported, suppresses nothing
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			d.analyzers[name] = true
		}
	}
	d.ok = len(fields) > 1 // reason present
	return d
}

// applyIgnores filters diags through the directives found in files and
// appends a diagnostic for every malformed directive. Only diagnostics
// positioned in files' filenames are touched, so the caller can apply
// per package while accumulating across packages.
func applyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	suppress := map[key]map[string]bool{}
	inFiles := map[string]bool{}
	var malformed []Diagnostic
	for _, f := range files {
		inFiles[fset.Position(f.Pos()).Filename] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnore(fset, c)
				if d == nil {
					continue
				}
				if !d.ok {
					malformed = append(malformed, Diagnostic{
						Analyzer: "fplint",
						Pos:      d.pos,
						Message:  "//fplint:ignore needs an analyzer name and a reason: //fplint:ignore <analyzer> <why this is safe>",
					})
					continue
				}
				// The directive covers its own line and the next one, so
				// it works both as a trailing comment and on a line of
				// its own above the finding.
				for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
					k := key{d.pos.Filename, line}
					if suppress[k] == nil {
						suppress[k] = map[string]bool{}
					}
					for a := range d.analyzers {
						suppress[k][a] = true
					}
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if inFiles[d.Pos.Filename] {
			if s := suppress[key{d.Pos.Filename, d.Pos.Line}]; s != nil && s[d.Analyzer] {
				continue
			}
		}
		kept = append(kept, d)
	}
	return append(kept, malformed...)
}
