package lint

// The //fplint:ignore directive. A finding is suppressed by a comment
//
//	//fplint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the same line as the finding, or on the line directly above it
// when the directive stands alone. The reason is mandatory — an
// invariant someone silenced without saying why is an invariant lost —
// so a reasonless directive is reported (analyzer name "fplint") and
// suppresses nothing. Every application is counted: RunProgramAudit
// reports how many findings each directive absorbed, and StaleIgnores
// turns zero-use directives into findings of their own.

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

const ignorePrefix = "//fplint:ignore"

// IgnoreUse is the audit record of one well-formed ignore directive.
type IgnoreUse struct {
	// Pos is the directive comment's position.
	Pos token.Position
	// Analyzers are the analyzer names the directive targets, sorted.
	Analyzers []string
	// Suppressed counts the findings the directive absorbed in this
	// run. The shipped tree's contract is exactly one per directive.
	Suppressed int

	// delEdit removes the directive, for the stale-ignore fix.
	delEdit TextEdit
}

type ignoreDirective struct {
	analyzers map[string]bool
	pos       token.Position
	ok        bool // has a reason
	used      int
	delEdit   TextEdit
}

// parseIgnore parses one comment, returning nil if it is not an
// ignore directive.
func parseIgnore(fset *token.FileSet, c *ast.Comment) *ignoreDirective {
	text, found := strings.CutPrefix(c.Text, ignorePrefix)
	if !found {
		return nil
	}
	// "//fplint:ignoreX" is some other word, not a directive.
	if text != "" && text[0] != ' ' && text[0] != '\t' {
		return nil
	}
	start := fset.Position(c.Pos())
	end := fset.Position(c.End())
	d := &ignoreDirective{
		analyzers: map[string]bool{},
		pos:       start,
		delEdit:   TextEdit{Filename: start.Filename, Start: start.Offset, End: end.Offset},
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return d // analyzer list missing; reported, suppresses nothing
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name != "" {
			d.analyzers[name] = true
		}
	}
	d.ok = len(fields) > 1 // reason present
	return d
}

// applyIgnores filters diags through the directives found in files,
// appends a diagnostic for every malformed directive, and returns the
// per-directive audit. Only diagnostics positioned in files' filenames
// are touched, so the caller can apply per package while accumulating
// across packages.
func applyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) ([]Diagnostic, []IgnoreUse) {
	type key struct {
		file string
		line int
	}
	suppress := map[key][]*ignoreDirective{}
	inFiles := map[string]bool{}
	var directives []*ignoreDirective
	var malformed []Diagnostic
	for _, f := range files {
		inFiles[fset.Position(f.Pos()).Filename] = true
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnore(fset, c)
				if d == nil {
					continue
				}
				if !d.ok {
					malformed = append(malformed, Diagnostic{
						Analyzer: "fplint",
						Pos:      d.pos,
						Message:  "//fplint:ignore needs an analyzer name and a reason: //fplint:ignore <analyzer> <why this is safe>",
						Fixes: []SuggestedFix{{
							Message: "delete the malformed directive (it suppresses nothing)",
							Edits:   []TextEdit{d.delEdit},
						}},
					})
					continue
				}
				directives = append(directives, d)
				// The directive covers its own line and the next one, so
				// it works both as a trailing comment and on a line of
				// its own above the finding.
				for _, line := range []int{d.pos.Line, d.pos.Line + 1} {
					k := key{d.pos.Filename, line}
					suppress[k] = append(suppress[k], d)
				}
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if inFiles[d.Pos.Filename] {
			if hit := matchDirective(suppress[key{d.Pos.Filename, d.Pos.Line}], d.Analyzer); hit != nil {
				hit.used++
				continue
			}
		}
		kept = append(kept, d)
	}
	var audit []IgnoreUse
	for _, d := range directives {
		var names []string
		for a := range d.analyzers {
			names = append(names, a)
		}
		sort.Strings(names)
		audit = append(audit, IgnoreUse{Pos: d.pos, Analyzers: names, Suppressed: d.used, delEdit: d.delEdit})
	}
	return append(kept, malformed...), audit
}

// matchDirective returns the first directive at the finding's line
// that targets its analyzer.
func matchDirective(ds []*ignoreDirective, analyzer string) *ignoreDirective {
	for _, d := range ds {
		if d.analyzers[analyzer] {
			return d
		}
	}
	return nil
}
