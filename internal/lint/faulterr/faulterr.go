// Package faulterr statically enforces the fault taxonomy on the
// snapshot and trace error paths: every error constructed there must
// wrap a fault.Err* sentinel or another error, so fault.ClassOf can
// classify it and the tolerant sweep layer picks the right disposition
// (retry, quarantine, degrade) instead of treating a new error as
// unretryable "unknown". Violations are bare errors.New inside a
// function body (package-level sentinels are the taxonomy itself and
// stay legal) and fmt.Errorf whose format string carries no %w verb.
package faulterr

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"strings"

	"fpcache/internal/lint"
)

// Analyzer is the fault-taxonomy wrapping check.
var Analyzer = &lint.Analyzer{
	Name: "faulterr",
	Doc: "requires errors on snapshot/trace warm-restore paths to wrap a " +
		"fault.Err* sentinel or another error (%w), keeping fault.ClassOf exact",
	Run: run,
}

// systemFiles are the warm/restore-path files of internal/system the
// analyzer covers; the package's other files (spec parsing, runners)
// produce caller-facing configuration errors outside the taxonomy.
var systemFiles = map[string]bool{
	"state.go":     true,
	"warmcache.go": true,
	"interval.go":  true,
}

func run(pass *lint.Pass) error {
	restrict := strings.HasSuffix(pass.Pkg.Path(), "internal/system")
	for _, file := range pass.Files {
		if restrict && !systemFiles[path.Base(pass.Fset.Position(file.Pos()).Filename)] {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call)
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	switch {
	case lint.IsPkgFunc(fn, "errors", "New"):
		pass.Reportf(call.Pos(),
			"bare errors.New on a warm/restore path classifies as fault.ClassUnknown; "+
				"wrap a fault.Err* sentinel or a cause with fmt.Errorf(...%%w...)")
	case lint.IsPkgFunc(fn, "fmt", "Errorf"):
		if len(call.Args) == 0 {
			return
		}
		if formatWraps(pass.Info, call.Args[0]) {
			return
		}
		pass.ReportFix(call.Pos(), wrapVerbFix(pass, call),
			"fmt.Errorf without %%w on a warm/restore path classifies as fault.ClassUnknown; "+
				"wrap a fault.Err* sentinel or the underlying cause")
	}
}

// errorIface is the built-in error interface, for argument matching.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// wrapVerbFix builds the mechanical %v→%w fix: when the format is a
// plain interpreted string literal whose verbs map one-to-one onto the
// arguments, and the verb for the (last) error-typed argument is %v or
// %s, rewrite that verb to %w. Anything fancier — computed formats,
// flagged or widthed verbs, no error argument — yields no fix and the
// finding is reported plain.
func wrapVerbFix(pass *lint.Pass, call *ast.CallExpr) lint.SuggestedFix {
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, `"`) {
		return lint.SuggestedFix{}
	}
	errIdx := -1
	for i := 1; i < len(call.Args); i++ {
		if t := pass.Info.TypeOf(call.Args[i]); t != nil && types.Implements(t, errorIface) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return lint.SuggestedFix{}
	}
	verbs, simple := scanVerbs(lit.Value)
	if !simple || len(verbs) != len(call.Args)-1 {
		return lint.SuggestedFix{}
	}
	v := verbs[errIdx-1]
	if v.char != 'v' && v.char != 's' {
		return lint.SuggestedFix{}
	}
	from := lit.Pos() + token.Pos(v.off)
	return lint.SuggestedFix{
		Message: "replace the error argument's verb with %w",
		Edits:   []lint.TextEdit{pass.Edit(from, from+2, "%w")},
	}
}

// verb is one %x conversion at a byte offset of the literal source.
type verb struct {
	off  int
	char byte
}

// scanVerbs extracts the conversion verbs of a format literal's source
// text. simple is false when any verb carries flags, width, or
// precision — the verb→argument mapping is then not byte-trivial and
// the fix abstains.
func scanVerbs(src string) (verbs []verb, simple bool) {
	for i := 0; i+1 < len(src); i++ {
		if src[i] != '%' {
			continue
		}
		next := src[i+1]
		if next == '%' {
			i++
			continue
		}
		if (next < 'a' || next > 'z') && (next < 'A' || next > 'Z') {
			return nil, false
		}
		verbs = append(verbs, verb{off: i, char: next})
		i++
	}
	return verbs, true
}

// formatWraps reports whether the format expression certainly contains
// a %w verb: via its constant value when the checker folded one, else
// via any string literal part of a concatenation (the
// "prefix: "+format+": %w" helper pattern).
func formatWraps(info *types.Info, format ast.Expr) bool {
	if tv, ok := info.Types[format]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.Contains(constant.StringVal(tv.Value), "%w")
	}
	found := false
	ast.Inspect(format, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && strings.Contains(lit.Value, "%w") {
			found = true
		}
		return !found
	})
	return found
}
