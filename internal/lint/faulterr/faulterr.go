// Package faulterr statically enforces the fault taxonomy on the
// snapshot and trace error paths: every error constructed there must
// wrap a fault.Err* sentinel or another error, so fault.ClassOf can
// classify it and the tolerant sweep layer picks the right disposition
// (retry, quarantine, degrade) instead of treating a new error as
// unretryable "unknown". Violations are bare errors.New inside a
// function body (package-level sentinels are the taxonomy itself and
// stay legal) and fmt.Errorf whose format string carries no %w verb.
package faulterr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"path"
	"strings"

	"fpcache/internal/lint"
)

// Analyzer is the fault-taxonomy wrapping check.
var Analyzer = &lint.Analyzer{
	Name: "faulterr",
	Doc: "requires errors on snapshot/trace warm-restore paths to wrap a " +
		"fault.Err* sentinel or another error (%w), keeping fault.ClassOf exact",
	Run: run,
}

// systemFiles are the warm/restore-path files of internal/system the
// analyzer covers; the package's other files (spec parsing, runners)
// produce caller-facing configuration errors outside the taxonomy.
var systemFiles = map[string]bool{
	"state.go":     true,
	"warmcache.go": true,
	"interval.go":  true,
}

func run(pass *lint.Pass) error {
	restrict := strings.HasSuffix(pass.Pkg.Path(), "internal/system")
	for _, file := range pass.Files {
		if restrict && !systemFiles[path.Base(pass.Fset.Position(file.Pos()).Filename)] {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call)
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil {
		return
	}
	switch {
	case lint.IsPkgFunc(fn, "errors", "New"):
		pass.Reportf(call.Pos(),
			"bare errors.New on a warm/restore path classifies as fault.ClassUnknown; "+
				"wrap a fault.Err* sentinel or a cause with fmt.Errorf(...%%w...)")
	case lint.IsPkgFunc(fn, "fmt", "Errorf"):
		if len(call.Args) == 0 {
			return
		}
		if formatWraps(pass.Info, call.Args[0]) {
			return
		}
		pass.Reportf(call.Pos(),
			"fmt.Errorf without %%w on a warm/restore path classifies as fault.ClassUnknown; "+
				"wrap a fault.Err* sentinel or the underlying cause")
	}
}

// formatWraps reports whether the format expression certainly contains
// a %w verb: via its constant value when the checker folded one, else
// via any string literal part of a concatenation (the
// "prefix: "+format+": %w" helper pattern).
func formatWraps(info *types.Info, format ast.Expr) bool {
	if tv, ok := info.Types[format]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return strings.Contains(constant.StringVal(tv.Value), "%w")
	}
	found := false
	ast.Inspect(format, func(n ast.Node) bool {
		if lit, ok := n.(*ast.BasicLit); ok && strings.Contains(lit.Value, "%w") {
			found = true
		}
		return !found
	})
	return found
}
