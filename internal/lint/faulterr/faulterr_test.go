package faulterr_test

import (
	"testing"

	"fpcache/internal/lint/faulterr"
	"fpcache/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/a", faulterr.Analyzer)
}

func TestIgnoreDirective(t *testing.T) {
	linttest.Run(t, "testdata/ignored", faulterr.Analyzer)
}

func TestWrapVerbSuggestedFix(t *testing.T) {
	linttest.RunFix(t, "testdata/fix", faulterr.Analyzer)
}

func TestFixFixtureWants(t *testing.T) {
	linttest.Run(t, "testdata/fix", faulterr.Analyzer)
}
