// Fixture for the faulterr suggested fix: Errorf verbs for error
// arguments become %w; constructs without a mechanical rewrite are
// reported plain.
package a

import (
	"errors"
	"fmt"
)

func Restore(path string, cause error) error {
	return fmt.Errorf("restore %s: %v", path, cause) // want `fmt\.Errorf without %w`
}

func Seal(err error) error {
	return fmt.Errorf("seal snapshot: %s", err) // want `fmt\.Errorf without %w`
}

func Legacy() error {
	return errors.New("unclassified") // want `bare errors\.New`
}

func Padded(err error) error {
	// %-20s carries a flag: the verb→argument mapping is not
	// byte-trivial, so no fix — the finding is reported plain.
	return fmt.Errorf("padded %-20s", err) // want `fmt\.Errorf without %w`
}
