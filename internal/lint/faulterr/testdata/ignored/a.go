// Package a suppresses a faulterr finding with a reasoned directive.
package a

import "fmt"

func misuse() error {
	//fplint:ignore faulterr caller API misuse, intentionally unclassified
	return fmt.Errorf("called before Init")
}
