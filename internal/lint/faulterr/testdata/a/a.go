// Package a exercises the faulterr analyzer: every error built on a
// warm/restore path must wrap a sentinel or a cause so the taxonomy
// can classify it.
package a

import (
	"errors"
	"fmt"
)

// errCorrupt is a package-level sentinel — the taxonomy itself — and
// stays legal.
var errCorrupt = errors.New("corrupt artifact")

func bareNew() error {
	return errors.New("unclassifiable") // want `bare errors\.New on a warm/restore path`
}

func unwrapped(n int) error {
	return fmt.Errorf("bad record %d", n) // want `fmt\.Errorf without %w on a warm/restore path`
}

func wrapped(n int) error {
	return fmt.Errorf("bad record %d: %w", n, errCorrupt)
}

// corruptf is the helper pattern: the %w lives in a literal part of a
// concatenated format, which still counts as wrapping.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("prefix: "+format+": %w", append(args, errCorrupt)...)
}
