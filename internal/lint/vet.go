package lint

// Unitchecker-protocol support, so cmd/fplint works as a
// `go vet -vettool=` plugin: cmd/go invokes the tool once per package
// with a JSON config file describing the unit — source files, the
// import map, and export-data files for every dependency — and expects
// diagnostics on stderr with a non-zero exit. In this mode each
// package is analyzed alone (Pass.Program is nil): the hotpath
// analyzer degrades to package-local call-graph reasoning, which the
// standalone `fplint ./...` CI step compensates for with the full
// cross-package closure.

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"
)

// vetConfig mirrors the fields of cmd/go's vet config file that the
// driver consumes (the file carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetVersionString is printed for `fplint -V=full`; cmd/go keys its
// analysis cache on it, so changing analyzer behavior should change
// the suffix.
const VetVersionString = "fplint version 2 (determinism,hotpath,faulterr,snapmeta,workershare,allocbudget)"

// VetMain implements the vettool side of cmd/fplint: args are the
// process arguments after the program name. It returns the process
// exit code.
func VetMain(args []string, analyzers []*Analyzer, stdout, stderr io.Writer) int {
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			fmt.Fprintln(stdout, VetVersionString)
			return 0
		case "-flags", "--flags":
			// cmd/go probes the tool's flag set before use; fplint takes
			// no per-analyzer flags in vet mode.
			fmt.Fprintln(stdout, "[]")
			return 0
		}
	}
	var cfgPath string
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			cfgPath = a
		}
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "fplint: vet mode expects a .cfg file argument")
		return 2
	}
	diags, err := vetUnit(cfgPath, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "fplint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Message)
	}
	return 2
}

func vetUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgPath, err)
	}
	// cmd/go requires the facts output file to exist even though fplint
	// publishes no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts file: %w", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	sizes := types.SizesFor("gc", runtime.GOARCH)
	pi, err := checkPackage(fset, sizes, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}
	// go vet also feeds test variants of each package through the tool.
	// The invariants cover production code only — standalone fplint
	// never loads _test.go files — so test syntax is type-checked (the
	// variant does not compile without it) but not analyzed.
	files := pi.Files[:0:0]
	for _, f := range pi.Files {
		if !strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	pi.Files = files

	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(cfg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    pi.Files,
			Pkg:      pi.Pkg,
			Info:     pi.Info,
			Sizes:    sizes,
			Program:  nil,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s on %s: %w", a.Name, cfg.ImportPath, err)
		}
	}
	// Stale-ignore accounting is a standalone-only feature: with the
	// package analyzed alone the hotpath closure is partial, so an
	// ignore can look unused here yet be load-bearing in the
	// whole-program run.
	diags, _ = applyIgnores(fset, pi.Files, diags)
	sortDiagnostics(diags)
	return diags, nil
}
