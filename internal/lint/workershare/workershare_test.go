package workershare_test

import (
	"testing"

	"fpcache/internal/lint/linttest"
	"fpcache/internal/lint/workershare"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/a", workershare.Analyzer)
}

func TestCrossPackageReach(t *testing.T) {
	linttest.Run(t, "testdata/xpkg", workershare.Analyzer)
}

func TestIgnoreDirective(t *testing.T) {
	linttest.Run(t, "testdata/ignored", workershare.Analyzer)
}
