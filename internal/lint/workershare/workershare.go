// Package workershare statically enforces the sweep contract that
// makes byte-identical parallel output possible: worker goroutines
// communicate only through commit-by-job-index slots, never through
// arbitrarily-interleaved writes to shared state. The analyzer builds
// the goroutine-spawn graph — `go` statements plus the closure
// arguments of the sweep executor entry points (sweep.Run/Map/
// RunTolerant/MapTolerant, whose job functions run concurrently) —
// computes which variables each worker closure captures or reaches
// transitively (package-level variables included), and flags writes to
// that shared state.
//
// A write is legal when it is one of the disciplined forms:
//
//   - a commit-by-job-index store, s[i] = v, where s is a captured
//     slice and i is worker-local (the job-index parameter, a local,
//     or a per-iteration variable of a loop enclosing the spawn —
//     distinct workers write distinct elements);
//   - a sync/atomic operation (method calls on atomic.* types and
//     atomic.Store/Add/... calls never appear as plain assignments, so
//     they pass untouched);
//   - mutex-guarded: the write is preceded in the worker body by more
//     sync Lock/RLock calls than non-deferred Unlocks (deferred
//     unlocks release at exit, so they do not end the critical
//     section mid-body);
//   - channel operations (sends block and order explicitly; the merge
//     discipline for channel results is the runtime parity tests'
//     business, not unsynchronized memory).
//
// Everything else — appending to a captured slice (the classic
// arrival-order bug), storing through a captured scalar or cursor,
// writing a captured map, mutating package-level state directly or
// through a same-program call chain — is exactly the class of bug the
// `-race`+`-j1`/`-jN` parity discipline exists to catch, surfaced at
// compile time. In standalone runs the call-graph reach spans
// packages; under `go vet -vettool` it degrades to package-local
// reasoning.
package workershare

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fpcache/internal/lint"
)

// Analyzer is the shared-state write check for worker goroutines.
var Analyzer = &lint.Analyzer{
	Name: "workershare",
	Doc: "flags writes to shared state from goroutines spawned by `go` or the sweep " +
		"executors unless committed by job index, atomic, or mutex-guarded",
	Run: run,
}

// sweepEntryPoints are the executor functions whose final closure
// argument runs concurrently on the worker pool.
var sweepEntryPoints = map[string]bool{
	"Run": true, "Map": true, "RunTolerant": true, "MapTolerant": true,
}

// maxReachDepth bounds the transitive search for package-level writes
// reached through calls from a worker body.
const maxReachDepth = 4

func run(pass *lint.Pass) error {
	w := &walker{pass: pass, summaries: map[*types.Func]*writeSummary{}}
	for _, file := range pass.Files {
		lint.WithStack(file, func(stack []ast.Node) bool {
			n := stack[len(stack)-1]
			switch n := n.(type) {
			case *ast.GoStmt:
				w.checkSpawn(n.Call, stack, "goroutine spawned here")
			case *ast.CallExpr:
				if isSweepEntry(pass.Info, n) && len(n.Args) > 0 {
					w.checkSpawn(n, stack, "sweep worker closure")
				}
			}
			return true
		})
	}
	return nil
}

// isSweepEntry matches calls to the sweep executor entry points, both
// qualified (sweep.MapTolerant) and package-internal (Run inside
// internal/sweep itself).
func isSweepEntry(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !sweepEntryPoints[fn.Name()] {
		return false
	}
	return strings.HasSuffix(fn.Pkg().Path(), "internal/sweep")
}

type walker struct {
	pass      *lint.Pass
	summaries map[*types.Func]*writeSummary
}

// checkSpawn analyzes one spawn site: a `go f(...)` statement or a
// sweep executor call. For `go` statements the spawned callee is the
// worker; for executor calls it is the final function-typed argument
// (the job).
func (w *walker) checkSpawn(call *ast.CallExpr, stack []ast.Node, what string) {
	var workerExpr ast.Expr
	if _, ok := stack[len(stack)-1].(*ast.GoStmt); ok {
		workerExpr = call.Fun
	} else {
		workerExpr = call.Args[len(call.Args)-1]
		if t := w.pass.Info.TypeOf(workerExpr); t == nil {
			return
		} else if _, ok := t.Underlying().(*types.Signature); !ok {
			return
		}
	}
	lit := w.resolveLit(workerExpr, stack)
	if lit != nil {
		w.checkWorkerLit(lit, stack, what)
		return
	}
	// A named function spawned directly: it captures nothing, but may
	// still reach package-level state.
	if fn := lint.CalleeFunc(w.pass.Info, call); fn != nil {
		w.checkReach(call.Pos(), fn, what)
	}
}

// resolveLit finds the function literal a worker expression denotes:
// the literal itself, or — for the common `job := func(...){...};
// sweep.Map(..., job)` shape — the single literal assigned to the
// identifier within the enclosing function.
func (w *walker) resolveLit(e ast.Expr, stack []ast.Node) *ast.FuncLit {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		obj := w.pass.Info.Uses[e]
		if obj == nil {
			return nil
		}
		encl := enclosingFunc(stack)
		if encl == nil {
			return nil
		}
		var lit *ast.FuncLit
		assigns := 0
		ast.Inspect(encl, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					if w.pass.Info.Defs[id] == obj || w.pass.Info.Uses[id] == obj {
						assigns++
						if fl, ok := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); ok {
							lit = fl
						}
					}
				}
			case *ast.ValueSpec:
				for i, id := range n.Names {
					if w.pass.Info.Defs[id] == obj && i < len(n.Values) {
						assigns++
						if fl, ok := ast.Unparen(n.Values[i]).(*ast.FuncLit); ok {
							lit = fl
						}
					}
				}
			}
			return true
		})
		// Only trust a unique literal binding; a reassigned variable
		// could be any of them.
		if assigns == 1 {
			return lit
		}
	}
	return nil
}

// enclosingFunc returns the innermost function node (declaration or
// literal) on the ancestor stack, nil at package level.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			return n
		case *ast.FuncDecl:
			return n
		}
	}
	return nil
}

// checkWorkerLit flags shared-state writes in one worker closure.
func (w *walker) checkWorkerLit(lit *ast.FuncLit, stack []ast.Node, what string) {
	info := w.pass.Info
	iterVars := iterationVars(info, stack)
	guard := newGuardIndex(info, lit.Body)

	workerLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End()
	}
	// indexIsLocal reports whether every identifier in an index
	// expression is worker-local or a per-iteration variable of a loop
	// enclosing the spawn — the two shapes that give distinct workers
	// distinct elements.
	indexIsLocal := func(idx ast.Expr) bool {
		ok := true
		ast.Inspect(idx, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			if !workerLocal(obj) && !iterVars[obj] {
				ok = false
			}
			return ok
		})
		return ok
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				w.checkWrite(lhs, n.Pos(), lit, workerLocal, indexIsLocal, guard, what)
			}
		case *ast.IncDecStmt:
			w.checkWrite(n.X, n.Pos(), lit, workerLocal, indexIsLocal, guard, what)
		case *ast.CallExpr:
			if fn := lint.CalleeFunc(info, n); fn != nil {
				w.checkReachGuarded(n.Pos(), fn, guard, what)
			}
		}
		return true
	})
}

// checkWrite classifies one assignment target inside a worker body.
func (w *walker) checkWrite(lhs ast.Expr, pos token.Pos, lit *ast.FuncLit,
	workerLocal func(types.Object) bool, indexIsLocal func(ast.Expr) bool,
	guard *guardIndex, what string) {
	info := w.pass.Info
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if x.Name == "_" {
			return
		}
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok || workerLocal(v) {
			return
		}
		if guard.guarded(pos) {
			return
		}
		where := "captured"
		if isPackageLevel(v) {
			where = "package-level"
		}
		w.pass.Reportf(pos,
			"worker writes %s variable %s (%s); concurrent workers interleave this write "+
				"nondeterministically — commit through an index-owned slot, an atomic, or a mutex", where, v.Name(), what)
	case *ast.IndexExpr:
		root := rootIdentObj(info, x.X)
		rv, ok := root.(*types.Var)
		if !ok || workerLocal(rv) {
			return
		}
		if guard.guarded(pos) {
			return
		}
		if t := info.TypeOf(x.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				w.pass.Reportf(pos,
					"worker writes shared map %s (%s); map writes race and panic under concurrency — "+
						"commit per-index results and merge after the sweep", rv.Name(), what)
				return
			}
		}
		if indexIsLocal(x.Index) {
			return // commit-by-job-index store
		}
		w.pass.Reportf(pos,
			"worker writes %s[...] through a shared index (%s); a shared cursor serializes by arrival "+
				"order, not job order — index by the job index instead", rv.Name(), what)
	case *ast.SelectorExpr:
		root := rootIdentObj(info, x.X)
		rv, ok := root.(*types.Var)
		if !ok || workerLocal(rv) {
			return
		}
		if guard.guarded(pos) {
			return
		}
		w.pass.Reportf(pos,
			"worker writes field %s.%s of shared state (%s); interleaved field writes are "+
				"order-dependent — guard with a mutex or commit by job index", rv.Name(), x.Sel.Name, what)
	case *ast.StarExpr:
		root := rootIdentObj(info, x.X)
		rv, ok := root.(*types.Var)
		if !ok || workerLocal(rv) {
			return
		}
		if guard.guarded(pos) {
			return
		}
		w.pass.Reportf(pos,
			"worker writes through shared pointer %s (%s); guard with a mutex or commit by job index",
			rv.Name(), what)
	}
}

// checkReach flags package-level writes reachable from fn, a function
// a worker calls (or is). Mutex-guarded writes inside the callee are
// exempt via the callee's own guard index.
func (w *walker) checkReach(pos token.Pos, fn *types.Func, what string) {
	w.checkReachGuarded(pos, fn, nil, what)
}

func (w *walker) checkReachGuarded(pos token.Pos, fn *types.Func, callerGuard *guardIndex, what string) {
	if callerGuard != nil && callerGuard.guarded(pos) {
		return // the whole call happens inside a critical section
	}
	if v := w.reaches(fn, maxReachDepth, map[*types.Func]bool{}); v != nil {
		w.pass.Reportf(pos,
			"worker calls %s, which writes package-level variable %s without synchronization (%s); "+
				"package state shared across workers breaks run-to-run determinism", fn.Name(), v.Name(), what)
	}
}

// writeSummary caches, per function, the first unsynchronized
// package-level variable its body (transitively) writes.
type writeSummary struct {
	v        *types.Var
	resolved bool
}

// reaches returns the first package-level variable fn transitively
// writes without a guard, nil if none within depth.
func (w *walker) reaches(fn *types.Func, depth int, seen map[*types.Func]bool) *types.Var {
	if fn == nil || depth < 0 || seen[fn] {
		return nil
	}
	seen[fn] = true
	fn = fn.Origin()
	if s, ok := w.summaries[fn]; ok && s.resolved {
		return s.v
	}
	decl, info := w.declOf(fn)
	if decl == nil || decl.Body == nil {
		return nil
	}
	guard := newGuardIndex(info, decl.Body)
	var found *types.Var
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if v := packageLevelTarget(info, lhs); v != nil && !guard.guarded(n.Pos()) {
					found = v
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(info, n.X); v != nil && !guard.guarded(n.Pos()) {
				found = v
			}
		case *ast.CallExpr:
			if callee := lint.CalleeFunc(info, n); callee != nil && !guard.guarded(n.Pos()) {
				if v := w.reaches(callee, depth-1, seen); v != nil {
					found = v
				}
			}
		}
		return found == nil
	})
	w.summaries[fn] = &writeSummary{v: found, resolved: true}
	return found
}

// declOf resolves a function's declaration: in this package, or — in
// standalone whole-program runs — anywhere in the program.
func (w *walker) declOf(fn *types.Func) (*ast.FuncDecl, *types.Info) {
	find := func(files []*ast.File, info *types.Info) *ast.FuncDecl {
		for _, file := range files {
			for _, d := range file.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					if obj, _ := info.Defs[fd.Name].(*types.Func); obj != nil && obj.Origin() == fn {
						return fd
					}
				}
			}
		}
		return nil
	}
	if fd := find(w.pass.Files, w.pass.Info); fd != nil {
		return fd, w.pass.Info
	}
	if w.pass.Program != nil && fn.Pkg() != nil {
		if pkg := w.pass.Program.Package(fn.Pkg().Path()); pkg != nil {
			if fd := find(pkg.Files, pkg.Info); fd != nil {
				return fd, pkg.Info
			}
		}
	}
	return nil, nil
}

// packageLevelTarget returns the package-level variable an assignment
// target ultimately names, nil otherwise.
func packageLevelTarget(info *types.Info, lhs ast.Expr) *types.Var {
	obj := rootIdentObj(info, lhs)
	if v, ok := obj.(*types.Var); ok && isPackageLevel(v) {
		return v
	}
	return nil
}

func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// rootIdentObj resolves the base identifier of an lvalue chain
// (x, x.f, x[i], *x, (x)) to its object.
func rootIdentObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		default:
			return nil
		}
	}
}

// iterationVars collects the per-iteration variables of every loop on
// the stack enclosing the spawn site: range keys/values and `for i :=
// ...` init variables. Go ≥ 1.22 gives each iteration a fresh
// variable, so `go func() { out[i] = f(i) }()` inside `for i := range
// jobs` is the canonical commit-by-index pattern.
func iterationVars(info *types.Info, stack []ast.Node) map[types.Object]bool {
	out := map[types.Object]bool{}
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if n.Key != nil {
					add(n.Key)
				}
				if n.Value != nil {
					add(n.Value)
				}
			}
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok && as.Tok == token.DEFINE {
				for _, lhs := range as.Lhs {
					add(lhs)
				}
			}
		}
	}
	return out
}

// --- mutex-guard tracking ---------------------------------------------

// guardIndex records the Lock/Unlock structure of one function body:
// a position is guarded when more sync Lock/RLock calls than
// non-deferred Unlock/RUnlock calls precede it.
type guardIndex struct {
	events []guardEvent // sorted by position (AST walk order is source order)
}

type guardEvent struct {
	pos   token.Pos
	delta int
}

func newGuardIndex(info *types.Info, body *ast.BlockStmt) *guardIndex {
	g := &guardIndex{}
	ast.Inspect(body, func(n ast.Node) bool {
		if def, ok := n.(*ast.DeferStmt); ok {
			// A deferred Unlock releases at function exit; it must not
			// end the critical section at its textual position. A
			// deferred Lock makes no sense; skip the subtree entirely.
			_ = def
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lint.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		switch fn.Name() {
		case "Lock", "RLock":
			g.events = append(g.events, guardEvent{call.Pos(), +1})
		case "Unlock", "RUnlock":
			g.events = append(g.events, guardEvent{call.Pos(), -1})
		}
		return true
	})
	return g
}

func (g *guardIndex) guarded(pos token.Pos) bool {
	depth := 0
	for _, e := range g.events {
		if e.pos >= pos {
			break
		}
		depth += e.delta
	}
	return depth > 0
}
