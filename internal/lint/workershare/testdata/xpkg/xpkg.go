// Cross-package fixture: the unsynchronized package-level write lives
// in an imported fixture subpackage, so flagging it requires the
// whole-program call-graph reach.
package xpkg

import (
	"sync"

	"fixture/state"
)

func FanOut(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			state.RecordHit()     // want `worker calls RecordHit, which writes package-level variable Hits`
			state.RecordGuarded() // fine: the callee locks around its write
		}()
	}
	wg.Wait()
}
