// Subpackage for the cross-package reach fixture: workers in the root
// package call into here.
package state

import "sync"

var Hits int

var mu sync.Mutex
var guarded int

// RecordHit mutates package state with no synchronization.
func RecordHit() { Hits++ }

// RecordGuarded mutates package state under its own lock; legal.
func RecordGuarded() {
	mu.Lock()
	guarded++
	mu.Unlock()
}
