// Fixture for the workershare analyzer: worker goroutines must commit
// through job-index slots, atomics, or mutexes.
package a

import (
	"sync"
	"sync/atomic"

	"fpcache/internal/sweep"
)

var pkgCounter int

var pkgGuarded struct {
	mu sync.Mutex
	n  int
}

// CommitByIndex is the blessed pattern: per-iteration loop variable
// indexes a captured slice. No findings.
func CommitByIndex(jobs []int) []int {
	out := make([]int, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = jobs[i] * 2
		}()
	}
	wg.Wait()
	return out
}

// SweepJobCommit uses the executor's job-index parameter. No findings.
func SweepJobCommit(n int) ([]int, error) {
	return sweep.Map(4, n, func(i int) (int, error) {
		return i * i, nil
	})
}

// AppendArrivalOrder is the classic ordering bug: results land in
// completion order, so output differs run to run.
func AppendArrivalOrder(jobs []int) []int {
	var out []int
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, jobs[i]) // want `worker writes captured variable out`
		}()
	}
	wg.Wait()
	return out
}

// SharedCursor serializes commits by arrival order through a shared
// index — same bug, different spelling.
func SharedCursor(jobs []int) []int {
	out := make([]int, len(jobs))
	cursor := 0
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[cursor] = jobs[i] // want `worker writes out\[\.\.\.\] through a shared index`
			cursor++              // want `worker writes captured variable cursor`
		}()
	}
	wg.Wait()
	return out
}

// SharedMap writes a captured map from workers.
func SharedMap(jobs []int) map[int]int {
	out := map[int]int{}
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = jobs[i] // want `worker writes shared map out`
		}()
	}
	wg.Wait()
	return out
}

// MutexGuarded is legal: the write happens inside a critical section.
func MutexGuarded(jobs []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += jobs[i]
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// UnlockEndsTheSection: a write after Unlock is back to being shared.
func UnlockEndsTheSection(jobs []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += jobs[i]
			mu.Unlock()
			total++ // want `worker writes captured variable total`
		}()
	}
	wg.Wait()
	return total
}

// DeferredUnlockGuards: a deferred Unlock releases at exit, so the
// whole body stays guarded.
func DeferredUnlockGuards(jobs []int) int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total += jobs[i]
		}()
	}
	wg.Wait()
	return total
}

// AtomicCounter is legal: atomics never appear as plain assignments.
func AtomicCounter(jobs []int) int64 {
	var total atomic.Int64
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total.Add(int64(jobs[i]))
		}()
	}
	wg.Wait()
	return total.Load()
}

// PackageWrite mutates package-level state directly from a worker.
func PackageWrite(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pkgCounter++ // want `worker writes package-level variable pkgCounter`
		}()
	}
	wg.Wait()
}

// bumpCounter is the transitive carrier for TransitivePackageWrite.
func bumpCounter() { pkgCounter++ }

// bumpGuarded writes package state under its own lock; legal.
func bumpGuarded() {
	pkgGuarded.mu.Lock()
	pkgGuarded.n++
	pkgGuarded.mu.Unlock()
}

// TransitivePackageWrite reaches the package-level write through a
// call.
func TransitivePackageWrite(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bumpCounter() // want `worker calls bumpCounter, which writes package-level variable pkgCounter`
			bumpGuarded()
		}()
	}
	wg.Wait()
}

// SharedStructField mutates a field of captured shared state.
func SharedStructField(jobs []int) {
	type acc struct{ sum int }
	a := &acc{}
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.sum += jobs[i] // want `worker writes field a.sum of shared state`
		}()
	}
	wg.Wait()
}

// NamedJobVariable resolves the `job := func(...)` binding the sweep
// executors are actually called with throughout the repo.
func NamedJobVariable(n int) ([]int, error) {
	var out []int
	job := func(i int) (int, error) {
		out = append(out, i) // want `worker writes captured variable out`
		return i, nil
	}
	return sweep.Map(4, n, job)
}

// ChannelFanIn is legal: channel communication synchronizes
// explicitly; merge order is the receiver's business.
func ChannelFanIn(jobs []int) []int {
	ch := make(chan int, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch <- jobs[i]
		}()
	}
	wg.Wait()
	close(ch)
	var out []int
	for v := range ch {
		out = append(out, v)
	}
	return out
}
