// Ignore-directive fixture: a deliberate arrival-order append carries
// an //fplint:ignore with a reason and suppresses exactly one finding.
package a

import "sync"

func TimingHistogram(jobs []int) []int {
	var order []int
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			//fplint:ignore workershare arrival order is the measurement here, not a bug
			order = append(order, jobs[i])
		}()
	}
	wg.Wait()
	return order
}
