package lint

// SARIF 2.1.0 output (`fplint -format sarif` / `-sarif FILE`), the
// interchange format GitHub code scanning ingests: one run, one rule
// per analyzer, one result per finding, suggested fixes encoded as
// artifact-change replacements. Only the fields code scanning and the
// SARIF validators require are emitted; URIs are module-root-relative
// so the report is machine-independent.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine,omitempty"`
	StartColumn int `json:"startColumn,omitempty"`
	CharOffset  int `json:"charOffset,omitempty"`
	CharLength  int `json:"charLength,omitempty"`
}

type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifact      `json:"artifactLocation"`
	Replacements     []sarifReplacement `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifRegion   `json:"deletedRegion"`
	InsertedContent *sarifMessage `json:"insertedContent,omitempty"`
}

// WriteSARIF encodes diags as one SARIF 2.1.0 run. analyzers supplies
// the rule table (every enabled analyzer appears, findings or not, so
// code scanning can show a rule as "passing"); the synthetic "fplint"
// rule hosts framework findings (malformed/stale ignores). root
// anchors relative URIs.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	rules := []sarifRule{{ID: "fplint", ShortDescription: sarifMessage{
		Text: "framework findings: malformed or stale //fplint:ignore directives"}}}
	ruleIndex := map[string]int{"fplint": 0}
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	relURI := func(file string) string {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
		return filepath.ToSlash(file)
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: relURI(d.Pos.Filename)},
				Region:           &sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
			}}},
		}
		for _, f := range d.Fixes {
			byFile := map[string][]sarifReplacement{}
			var order []string
			for _, e := range f.Edits {
				uri := relURI(e.Filename)
				if _, ok := byFile[uri]; !ok {
					order = append(order, uri)
				}
				rep := sarifReplacement{DeletedRegion: sarifRegion{CharOffset: e.Start, CharLength: e.End - e.Start}}
				if e.NewText != "" {
					rep.InsertedContent = &sarifMessage{Text: e.NewText}
				}
				byFile[uri] = append(byFile[uri], rep)
			}
			fix := sarifFix{Description: sarifMessage{Text: f.Message}}
			for _, uri := range order {
				fix.ArtifactChanges = append(fix.ArtifactChanges, sarifArtifactChange{
					ArtifactLocation: sarifArtifact{URI: uri},
					Replacements:     byFile[uri],
				})
			}
			res.Fixes = append(res.Fixes, fix)
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fplint", Version: "2", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
