package lint

// Package loading for standalone runs: `go list -export -deps -json`
// enumerates the target packages and compiles export data for every
// dependency (stdlib included), then the targets are parsed and
// type-checked in the dependency order go list already guarantees.
// Module-internal imports resolve to the packages checked here — so
// type identity is consistent program-wide — and everything else is
// imported from gc export data, which needs no network and no GOPATH.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Program is every package of one standalone lint run, in dependency
// order (dependencies before dependents).
type Program struct {
	Fset     *token.FileSet
	Sizes    types.Sizes
	Packages []*PackageInfo
	// RootDir is the directory package patterns were resolved in
	// (the module root for `fplint ./...`). Analyzers that shell out
	// to the go tool (allocbudget) or resolve checked-in data files
	// (the allocbudget manifest) anchor here. Empty for fixture
	// programs.
	RootDir string

	byPath map[string]*PackageInfo
	// Memo lets whole-program analyzers cache work that is shared
	// across the per-package passes (e.g. the hotpath call-graph
	// closure). Keyed by analyzer name.
	Memo map[string]any
}

// Package returns the loaded package with the given import path, nil
// if it was not a target of the run.
func (p *Program) Package(path string) *PackageInfo { return p.byPath[path] }

// PackageInfo is one parsed, type-checked package.
type PackageInfo struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` in dir for the given
// patterns and decodes the JSON stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter imports packages from gc export data files, deferring
// to already-checked module packages first so type identity stays
// consistent across the program.
type exportImporter struct {
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	checked map[string]*types.Package
	gc      types.ImporterFrom
}

func newExportImporter(fset *token.FileSet, exports map[string]string) *exportImporter {
	ei := &exportImporter{fset: fset, exports: exports, checked: map[string]*types.Package{}}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := ei.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	ei.gc = importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	return ei.ImportFrom(path, "", 0)
}

func (ei *exportImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if pkg, ok := ei.checked[path]; ok {
		return pkg, nil
	}
	return ei.gc.ImportFrom(path, srcDir, 0)
}

// Load enumerates and type-checks the packages matching patterns,
// resolved relative to dir (typically the module root with pattern
// "./...").
func Load(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	rootDir := dir
	if abs, err := filepath.Abs(dir); err == nil {
		rootDir = abs
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		Sizes:   types.SizesFor("gc", runtime.GOARCH),
		RootDir: rootDir,
		byPath:  map[string]*PackageInfo{},
		Memo:    map[string]any{},
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	imp := newExportImporter(prog.Fset, exports)
	// go list -deps emits dependencies before dependents; checking in
	// stream order therefore sees every module-internal import already
	// checked.
	for _, p := range listed {
		if p.DepOnly || p.Standard {
			continue
		}
		pi, err := checkPackage(prog.Fset, prog.Sizes, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		imp.checked[p.ImportPath] = pi.Pkg
		prog.Packages = append(prog.Packages, pi)
		prog.byPath[p.ImportPath] = pi
	}
	return prog, nil
}

// --- shared whole-program load ----------------------------------------

var (
	sharedMu    sync.Mutex
	sharedProgs = map[string]*sharedLoad{}
)

type sharedLoad struct {
	once sync.Once
	prog *Program
	err  error
}

// LoadShared is Load with a process-wide memo: repeated requests for
// the same (dir, patterns) return one Program, so a test binary (or a
// driver running several whole-program stages) pays the `go list
// -export -deps -json` enumeration and the module-wide type-check
// once instead of per caller. The shared Program's Memo is shared
// too, which is the point — the hotpath closure and the allocbudget
// escape scan amortize across everything that runs over it. Callers
// must treat the Program as immutable.
func LoadShared(dir string, patterns ...string) (*Program, error) {
	key := dir
	if abs, err := filepath.Abs(dir); err == nil {
		key = abs
	}
	key += "\x00" + strings.Join(patterns, "\x00")
	sharedMu.Lock()
	sl, ok := sharedProgs[key]
	if !ok {
		sl = &sharedLoad{}
		sharedProgs[key] = sl
	}
	sharedMu.Unlock()
	sl.once.Do(func() { sl.prog, sl.err = Load(dir, patterns...) })
	return sl.prog, sl.err
}

// InvalidateShared drops every LoadShared memo entry for dir. Callers
// that mutate the tree on disk (fplint -fix, test scaffolding) must
// invalidate before the next LoadShared, or they get the pre-edit
// Program back.
func InvalidateShared(dir string) {
	key := dir
	if abs, err := filepath.Abs(dir); err == nil {
		key = abs
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	for k := range sharedProgs {
		if k == key || strings.HasPrefix(k, key+"\x00") {
			delete(sharedProgs, k)
		}
	}
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

func checkPackage(fset *token.FileSet, sizes types.Sizes, imp types.Importer, path, dir string, goFiles []string) (*PackageInfo, error) {
	var files []*ast.File
	for _, name := range goFiles {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", full, err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: sizes}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &PackageInfo{ImportPath: path, Dir: dir, Files: files, Pkg: pkg, Info: info}, nil
}

// --- fixture loading --------------------------------------------------

var (
	fixtureMu      sync.Mutex
	fixtureExports = map[string]string{}
	moduleRootOnce sync.Once
	moduleRootDir  string
	moduleRootErr  error
)

// moduleRoot locates the enclosing module's root directory (where
// fixture imports like fpcache/internal/snap resolve).
func moduleRoot() (string, error) {
	moduleRootOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			moduleRootErr = fmt.Errorf("lint: go env GOMOD: %w", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			moduleRootErr = fmt.Errorf("lint: not inside a module")
			return
		}
		moduleRootDir = filepath.Dir(gomod)
	})
	return moduleRootDir, moduleRootErr
}

// fixturePathPrefix is the import-path namespace of multi-package
// fixtures: a fixture subdirectory `b/` type-checks as package path
// "fixture/b" and sibling packages import it by that path.
const fixturePathPrefix = "fixture/"

// LoadFixture parses and type-checks the fixture under dir (an
// analyzer's testdata fixture, outside the module's package list) and
// wraps it in a Program. The files directly in dir form one package,
// as before; subdirectories containing Go files form additional
// packages importable as "fixture/<subdir>", so whole-program
// analyses (the hotpath and workershare closures) can be exercised
// across package boundaries from a fixture. Export data for all other
// imports is resolved through the enclosing module, so fixtures may
// import the standard library and fpcache/internal packages.
func LoadFixture(dir string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: fixture dir: %w", err)
	}
	fset := token.NewFileSet()
	parseDir := func(d string) ([]*ast.File, error) {
		es, err := os.ReadDir(d)
		if err != nil {
			return nil, fmt.Errorf("lint: fixture dir: %w", err)
		}
		var files []*ast.File
		for _, e := range es {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			full := filepath.Join(d, e.Name())
			f, err := parser.ParseFile(fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parsing fixture %s: %w", full, err)
			}
			files = append(files, f)
		}
		return files, nil
	}
	rootFiles, err := parseDir(dir)
	if err != nil {
		return nil, err
	}
	type subPkg struct {
		path  string
		dir   string
		files []*ast.File
	}
	var subs []*subPkg
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sd := filepath.Join(dir, e.Name())
		files, err := parseDir(sd)
		if err != nil {
			return nil, err
		}
		if len(files) > 0 {
			subs = append(subs, &subPkg{path: fixturePathPrefix + e.Name(), dir: sd, files: files})
		}
	}
	if len(rootFiles) == 0 && len(subs) == 0 {
		return nil, fmt.Errorf("lint: fixture dir %s has no Go files", dir)
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	// Resolve export data for every non-fixture import the fixture
	// names. Results accumulate process-wide so a test binary lists
	// each dependency set once.
	allFiles := append([]*ast.File(nil), rootFiles...)
	for _, s := range subs {
		allFiles = append(allFiles, s.files...)
	}
	var missing []string
	fixtureMu.Lock()
	for _, f := range allFiles {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if strings.HasPrefix(path, fixturePathPrefix) || path == "unsafe" {
				continue
			}
			if _, ok := fixtureExports[path]; !ok {
				missing = append(missing, path)
			}
		}
	}
	if len(missing) > 0 {
		listed, err := goList(root, missing)
		if err != nil {
			fixtureMu.Unlock()
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				fixtureExports[p.ImportPath] = p.Export
			}
		}
	}
	exports := make(map[string]string, len(fixtureExports))
	for k, v := range fixtureExports {
		exports[k] = v
	}
	fixtureMu.Unlock()

	sizes := types.SizesFor("gc", runtime.GOARCH)
	imp := newExportImporter(fset, exports)
	conf := types.Config{Importer: imp, Sizes: sizes}
	prog := &Program{
		Fset:   fset,
		Sizes:  sizes,
		byPath: map[string]*PackageInfo{},
		Memo:   map[string]any{},
	}
	check := func(path, pkgDir string, files []*ast.File) error {
		info := newInfo()
		pkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking fixture %s: %w", pkgDir, err)
		}
		imp.checked[path] = pkg
		pi := &PackageInfo{ImportPath: path, Dir: pkgDir, Files: files, Pkg: pkg, Info: info}
		prog.Packages = append(prog.Packages, pi)
		prog.byPath[path] = pi
		return nil
	}
	// Fixture subpackages may import one another; iterate to a fixpoint
	// so declaration order in the directory does not dictate dependency
	// order.
	pending := subs
	for len(pending) > 0 {
		var next []*subPkg
		var lastErr error
		for _, s := range pending {
			if err := check(s.path, s.dir, s.files); err != nil {
				next = append(next, s)
				lastErr = err
			}
		}
		if len(next) == len(pending) {
			return nil, lastErr
		}
		pending = next
	}
	if len(rootFiles) > 0 {
		if err := check(rootFiles[0].Name.Name, dir, rootFiles); err != nil {
			return nil, err
		}
	}
	return prog, nil
}
