// Package allocbudget closes the gap between the hotpath analyzer's
// syntactic allocation rules and what the compiler actually decides:
// it runs the gc escape analysis (`go build -gcflags=-m=2`) over every
// package containing //fplint:hotpath-reachable functions, parses the
// escape diagnostics, and flags any heap allocation site inside the
// hot closure that is not explicitly budgeted in the checked-in
// lint/allocbudget.manifest. The hotpath analyzer catches allocating
// *constructs* (fmt, string concat, boxing); this one catches what
// only escape analysis knows — a value the compiler could not prove
// stack-bound, whatever the syntax looks like. Findings carry the
// compiler's own escape chain so the fix is evident from the report.
//
// The manifest (lint/allocbudget.manifest at the module root) is the
// allocation budget: one tab-separated `pkgpath<TAB>function<TAB>
// message` line per tolerated escape. An entry that no longer matches
// any compiler diagnostic is itself a finding — a budget nobody pays
// against is a regression mask. Escapes whose chain passes through
// panic(...) are exempt, matching the hotpath analyzer's rule: the
// panic path is already catastrophic.
//
// The analyzer needs the whole program and the module on disk, so it
// runs only in standalone mode (`fplint ./...`); under `go vet
// -vettool` (Pass.Program == nil) and on in-memory fixture programs
// (no root directory) it is a no-op. The build cache replays -m
// diagnostics on cache hits, so repeated runs cost one cache probe,
// not a recompile.
package allocbudget

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"fpcache/internal/lint"
	"fpcache/internal/lint/hotpath"
)

// Analyzer is the escape-analysis allocation-budget check.
var Analyzer = &lint.Analyzer{
	Name: "allocbudget",
	Doc: "flags compiler-verified heap allocations (go build -gcflags=-m=2) inside the " +
		"//fplint:hotpath closure unless budgeted in lint/allocbudget.manifest",
	Run: run,
}

// ManifestPath is the manifest location relative to the module root.
const ManifestPath = "lint/allocbudget.manifest"

// memoKey keys the one-per-program scan result in Program.Memo.
const memoKey = "allocbudget"

// scan is the whole-program result: findings precomputed once, then
// attributed to per-package passes.
type scan struct {
	// findings maps a package import path to the diagnostics positioned
	// in that package's hot functions.
	findings map[string][]finding
	// stale are manifest entries no compiler diagnostic matched,
	// reported once (with the first package pass).
	stale    []finding
	reported bool
}

type finding struct {
	pos token.Position
	msg string
}

func run(pass *lint.Pass) error {
	if pass.Program == nil || pass.Program.RootDir == "" {
		return nil // vet mode or in-memory fixture: no module to build
	}
	memo, ok := pass.Program.Memo[memoKey]
	if !ok {
		sc, err := scanProgram(pass.Program)
		if err != nil {
			return err
		}
		memo = sc
		pass.Program.Memo[memoKey] = sc
	}
	sc := memo.(*scan)
	if !sc.reported {
		sc.reported = true
		for _, f := range sc.stale {
			pass.ReportAt(f.pos, "%s", f.msg)
		}
	}
	for _, f := range sc.findings[pass.Pkg.Path()] {
		pass.ReportAt(f.pos, "%s", f.msg)
	}
	return nil
}

// --- escape record parsing --------------------------------------------

// escapeRecord is one deduplicated compiler escape diagnostic.
type escapeRecord struct {
	file      string // module-root-relative, slash-separated
	line, col int
	msg       string   // e.g. "&x escapes to heap"
	chain     []string // -m=2 flow lines, whitespace-trimmed
}

var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// parseEscapes extracts escape records from `go build -gcflags=-m=2`
// stderr. The -m=2 format emits, per site, a detail block
// (`pos: MSG escapes to heap:` followed by `pos:   flow:`/
// `pos:     from ...` lines sharing the site's position prefix) and a
// summary line without the trailing colon; generic instantiations
// repeat sites once per shape. Records are deduplicated by position,
// keeping the first message and the union of chain lines.
func parseEscapes(out []byte) []*escapeRecord {
	byPos := map[string]*escapeRecord{}
	var order []string
	for _, raw := range strings.Split(string(out), "\n") {
		m := escapeLineRe.FindStringSubmatch(raw)
		if m == nil {
			continue
		}
		file, msg := m[1], m[4]
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d", file, line, col)
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			// Chain line of the record at this position.
			if rec, ok := byPos[key]; ok {
				rec.chain = append(rec.chain, strings.TrimSpace(msg))
			}
			continue
		}
		isEscape := strings.HasSuffix(msg, " escapes to heap") ||
			strings.HasSuffix(msg, " escapes to heap:") ||
			strings.HasPrefix(msg, "moved to heap:")
		if !isEscape {
			continue
		}
		if _, ok := byPos[key]; ok {
			continue // summary duplicate or another generic shape
		}
		byPos[key] = &escapeRecord{
			file: filepath.ToSlash(file), line: line, col: col,
			msg: strings.TrimSuffix(msg, ":"),
		}
		order = append(order, key)
	}
	recs := make([]*escapeRecord, 0, len(order))
	for _, key := range order {
		recs = append(recs, byPos[key])
	}
	return recs
}

// panicOnly reports whether every escape flow of the record passes
// through a panic call — allocation that only happens when the program
// is already dying.
func (r *escapeRecord) panicOnly() bool {
	if len(r.chain) == 0 {
		return false
	}
	flows, throughPanic := 0, 0
	for _, line := range r.chain {
		if strings.HasPrefix(line, "flow:") {
			flows++
		}
		if strings.Contains(line, "from panic(") {
			throughPanic++
		}
	}
	return throughPanic >= flows && throughPanic > 0
}

// --- manifest ----------------------------------------------------------

type manifestEntry struct {
	pkg, fn, msg string
	line         int
	used         bool
}

// readManifest parses lint/allocbudget.manifest: one tab-separated
// `pkgpath<TAB>function<TAB>message` entry per line, '#' comments, a
// missing file meaning an empty budget.
func readManifest(path string) ([]*manifestEntry, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []*manifestEntry
	for i, line := range strings.Split(string(raw), "\n") {
		text := strings.TrimSpace(line)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(line, "\t")
		if len(parts) != 3 {
			return nil, fmt.Errorf("allocbudget: %s:%d: want `pkgpath<TAB>function<TAB>message`, got %q",
				path, i+1, line)
		}
		entries = append(entries, &manifestEntry{
			pkg: strings.TrimSpace(parts[0]), fn: strings.TrimSpace(parts[1]),
			msg: strings.TrimSpace(parts[2]), line: i + 1,
		})
	}
	return entries, nil
}

// --- the scan ----------------------------------------------------------

// hotRange is one hot function's body extent in a file.
type hotRange struct {
	start, end int // line numbers, inclusive
	label      string
	seed       string
	pkg        string
}

// span is a (line, column) source range, inclusive of both endpoints.
type span struct {
	startLine, startCol, endLine, endCol int
}

func (s span) contains(line, col int) bool {
	if line < s.startLine || line > s.endLine {
		return false
	}
	if line == s.startLine && col < s.startCol {
		return false
	}
	if line == s.endLine && col > s.endCol {
		return false
	}
	return true
}

// panicSpans collects the source extents of every panic(...) call in
// the hot packages. An escape site inside one is exempt even when its
// chain names only an intermediate call (a boxed fmt.Sprintf argument
// whose Sprintf result is what panic receives): allocation that only
// happens while the program is dying is not a hot-path regression,
// mirroring the hotpath analyzer's panic rule.
func panicSpans(prog *lint.Program, pkgs []string) map[string][]span {
	out := map[string][]span{}
	for _, path := range pkgs {
		pkg := prog.Package(path)
		if pkg == nil {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				start := prog.Fset.Position(call.Pos())
				end := prog.Fset.Position(call.End())
				out[start.Filename] = append(out[start.Filename], span{
					startLine: start.Line, startCol: start.Column,
					endLine: end.Line, endCol: end.Column,
				})
				return true
			})
		}
	}
	return out
}

func scanProgram(prog *lint.Program) (*scan, error) {
	hot := hotpath.ProgramHotFuncs(prog)
	sc := &scan{findings: map[string][]finding{}}
	if len(hot) == 0 {
		return sc, nil
	}

	// Hot packages, sorted for a deterministic build command.
	pkgSet := map[string]bool{}
	for _, h := range hot {
		pkgSet[h.Pkg.ImportPath] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	// Hot body ranges per absolute filename.
	ranges := map[string][]hotRange{}
	for fn, h := range hot {
		if h.Decl.Body == nil {
			continue
		}
		start := prog.Fset.Position(h.Decl.Pos())
		end := prog.Fset.Position(h.Decl.End())
		ranges[start.Filename] = append(ranges[start.Filename], hotRange{
			start: start.Line, end: end.Line,
			label: hotpath.FuncLabel(fn), seed: h.Seed, pkg: h.Pkg.ImportPath,
		})
	}

	// One compiler pass over the hot packages. `go build` succeeds and
	// prints -m diagnostics on stderr; on a build failure the lint run
	// fails loudly (the tree does not compile).
	args := append([]string{"build", "-gcflags=-m=2"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = prog.RootDir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("allocbudget: go build -gcflags=-m=2: %v\n%s", err, stderr.String())
	}

	manifest, err := readManifest(filepath.Join(prog.RootDir, filepath.FromSlash(ManifestPath)))
	if err != nil {
		return nil, err
	}
	allowed := func(pkg, label, msg string) bool {
		ok := false
		for _, e := range manifest {
			if e.pkg == pkg && e.fn == label && e.msg == msg {
				e.used = true
				ok = true
			}
		}
		return ok
	}

	inPanic := panicSpans(prog, pkgs)
	for _, rec := range parseEscapes(stderr.Bytes()) {
		if rec.panicOnly() {
			continue
		}
		abs := rec.file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(prog.RootDir, filepath.FromSlash(rec.file))
		}
		exempt := false
		for _, s := range inPanic[abs] {
			if s.contains(rec.line, rec.col) {
				exempt = true
				break
			}
		}
		if exempt {
			continue
		}
		var hr *hotRange
		for i, r := range ranges[abs] {
			if rec.line >= r.start && rec.line <= r.end {
				hr = &ranges[abs][i]
				break
			}
		}
		if hr == nil {
			continue // escape outside the hot closure
		}
		if allowed(hr.pkg, hr.label, rec.msg) {
			continue
		}
		msg := fmt.Sprintf("heap allocation on the hot path: %s (in %s, reachable from %s); "+
			"budget it in %s or keep the value stack-bound", rec.msg, hr.label, hr.seed, ManifestPath)
		if len(rec.chain) > 0 {
			chain := rec.chain
			if len(chain) > 6 {
				chain = append(append([]string(nil), chain[:6]...), "...")
			}
			msg += "; escape chain: " + strings.Join(chain, " | ")
		}
		sc.findings[hr.pkg] = append(sc.findings[hr.pkg], finding{
			pos: token.Position{Filename: abs, Line: rec.line, Column: rec.col},
			msg: msg,
		})
	}

	manifestAbs := filepath.Join(prog.RootDir, filepath.FromSlash(ManifestPath))
	for _, e := range manifest {
		if e.used {
			continue
		}
		sc.stale = append(sc.stale, finding{
			pos: token.Position{Filename: manifestAbs, Line: e.line},
			msg: fmt.Sprintf("stale allocbudget budget: %s %s no longer reports %q; "+
				"delete the entry so the budget tracks reality", e.pkg, e.fn, e.msg),
		})
	}
	return sc, nil
}
