package allocbudget_test

// The allocbudget analyzer shells out to the go tool, so its fixtures
// are real modules materialized in t.TempDir() rather than in-memory
// testdata packages: each test writes go.mod plus sources, loads the
// module with lint.Load (which sets Program.RootDir, the analyzer's
// standalone-mode gate), and asserts on the findings.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fpcache/internal/lint"
	"fpcache/internal/lint/allocbudget"
)

const goMod = "module escmod\n\ngo 1.24\n"

// leakSrc has one compiler-verified escape: x is moved to the heap
// because its address is returned. Line 6 column 2 is where the gc
// escape analysis reports it.
const leakSrc = `package esc

// Leak returns the address of a local.
//
//fplint:hotpath
func Leak() *int {
	x := 42
	return &x
}
`

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runAlloc(t *testing.T, dir string) []lint.Diagnostic {
	t.Helper()
	prog, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.RunProgram(prog, []*lint.Analyzer{allocbudget.Analyzer})
	if err != nil {
		t.Fatalf("running allocbudget: %v", err)
	}
	return diags
}

func TestFlagsHotEscapeAtCompilerPosition(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": goMod, "esc.go": leakSrc})
	diags := runAlloc(t, dir)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if got, want := d.Pos.Filename, filepath.Join(dir, "esc.go"); got != want {
		t.Errorf("finding file = %s, want %s", got, want)
	}
	if d.Pos.Line != 7 {
		t.Errorf("finding line = %d, want 7 (the declaration of x)", d.Pos.Line)
	}
	for _, want := range []string{"x escapes to heap", "esc.Leak", "escape chain:", "lint/allocbudget.manifest"} {
		if !strings.Contains(d.Message, want) {
			t.Errorf("message %q does not mention %q", d.Message, want)
		}
	}
}

func TestColdEscapeNotFlagged(t *testing.T) {
	cold := strings.ReplaceAll(leakSrc, "//fplint:hotpath\n", "")
	dir := writeModule(t, map[string]string{"go.mod": goMod, "esc.go": cold})
	if diags := runAlloc(t, dir); len(diags) != 0 {
		t.Fatalf("escape outside the hot closure was flagged: %v", diags)
	}
}

func TestPanicPathExempt(t *testing.T) {
	src := `package esc

import "fmt"

//fplint:hotpath
func Check(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("esc: negative %d", n))
	}
	return n * 2
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "esc.go": src})
	if diags := runAlloc(t, dir); len(diags) != 0 {
		t.Fatalf("panic-path allocation was flagged: %v", diags)
	}
}

func TestManifestBudgetsTheEscape(t *testing.T) {
	manifest := "# budget\nescmod\tesc.Leak\tx escapes to heap\n"
	dir := writeModule(t, map[string]string{
		"go.mod": goMod, "esc.go": leakSrc,
		"lint/allocbudget.manifest": manifest,
	})
	if diags := runAlloc(t, dir); len(diags) != 0 {
		t.Fatalf("budgeted escape was flagged: %v", diags)
	}
}

func TestStaleManifestEntryIsAFinding(t *testing.T) {
	src := `package esc

//fplint:hotpath
func Double(n int) int { return n * 2 }
`
	manifest := "# budget\nescmod\tesc.Double\tx escapes to heap\n"
	dir := writeModule(t, map[string]string{
		"go.mod": goMod, "esc.go": src,
		"lint/allocbudget.manifest": manifest,
	})
	diags := runAlloc(t, dir)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1 stale-entry finding: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "stale allocbudget budget") || !strings.Contains(d.Message, "esc.Double") {
		t.Errorf("unexpected stale message: %q", d.Message)
	}
	if got, want := d.Pos.Filename, filepath.Join(dir, "lint", "allocbudget.manifest"); got != want {
		t.Errorf("stale finding file = %s, want %s", got, want)
	}
	if d.Pos.Line != 2 {
		t.Errorf("stale finding line = %d, want 2 (the manifest entry)", d.Pos.Line)
	}
}

func TestIgnoreDirectiveSuppresses(t *testing.T) {
	src := `package esc

// Leak returns the address of a local.
//
//fplint:hotpath
func Leak() *int {
	//fplint:ignore allocbudget the one-time escape is measured and accepted
	x := 42
	return &x
}
`
	dir := writeModule(t, map[string]string{"go.mod": goMod, "esc.go": src})
	if diags := runAlloc(t, dir); len(diags) != 0 {
		t.Fatalf("ignored escape was still flagged: %v", diags)
	}
}

func TestMalformedManifestFailsTheRun(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod, "esc.go": leakSrc,
		"lint/allocbudget.manifest": "escmod esc.Leak no tabs here\n",
	})
	prog, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if _, err := lint.RunProgram(prog, []*lint.Analyzer{allocbudget.Analyzer}); err == nil {
		t.Fatal("malformed manifest did not fail the run")
	}
}
