// Package determinism statically enforces the repo's headline
// guarantee — byte-identical output at any worker count — in the
// packages that feed deterministic results. Three bug classes are
// flagged:
//
//   - time.Now / time.Since: wall-clock reads leak nondeterminism into
//     rows unless they feed the documented wall-clock fields (annotate
//     those with //fplint:ignore determinism <why>).
//   - package-level math/rand draws (rand.Intn, rand.Shuffle, ...):
//     the shared source is unseeded and racy; deterministic code holds
//     its own rand.New(rand.NewSource(seed)).
//   - range over a map whose body appends to a slice, sends on a
//     channel, or writes output, with no sort after the loop — the
//     exact class the -j1/-jN parity tests exist to catch, surfaced at
//     compile time instead.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fpcache/internal/lint"
)

// Analyzer is the determinism check.
var Analyzer = &lint.Analyzer{
	Name: "determinism",
	Doc: "flags wall-clock reads, unseeded math/rand draws, and order-sensitive " +
		"map iteration in packages that must produce byte-identical output",
	Run: run,
}

// randConstructors are the package-level math/rand functions that
// build explicitly-seeded sources rather than drawing from the shared
// one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, file := range pass.Files {
		file := file
		lint.WithStack(file, func(stack []ast.Node) bool {
			switch n := stack[len(stack)-1].(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, file, n, stack)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s in a deterministic package: wall clock must not reach reported rows "+
					"(//fplint:ignore determinism <why> for documented wall-clock fields)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicit *rand.Rand are fine
		}
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"package-level %s.%s draws from the shared unseeded source; "+
					"use a rand.New(rand.NewSource(seed)) owned by the run", fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapRange flags `for ... := range m` over a map whose body has
// order-sensitive effects and no later sort in the enclosing block.
func checkMapRange(pass *lint.Pass, file *ast.File, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	mt, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	effect := orderSensitiveEffect(pass, rng.Body)
	if effect == "" {
		return
	}
	if sortFollows(pass, rng, stack) {
		return
	}
	pass.ReportFix(rng.Pos(), sortedKeysFix(pass, file, rng, mt),
		"map iteration order is random, and this loop %s with no sort after it; "+
			"collect keys, sort, and iterate the slice", effect)
}

// sortedKeysFix builds the mechanical rewrite of a key-only map range
//
//	for k := range m { ... }   →   for _, k := range slices.Sorted(maps.Keys(m)) { ... }
//
// plus the "maps"/"slices" import edits the file is missing. The fix
// abstains (empty edits, finding reported plain) when the loop also
// binds the value, the key type is not ordered, or either package is
// imported under another name.
func sortedKeysFix(pass *lint.Pass, file *ast.File, rng *ast.RangeStmt, mt *types.Map) lint.SuggestedFix {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rng.Value != nil || rng.Tok != token.DEFINE {
		return lint.SuggestedFix{}
	}
	basic, ok := mt.Key().Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsOrdered == 0 {
		return lint.SuggestedFix{} // slices.Sorted needs cmp.Ordered keys
	}
	impEdits, ok := importEdits(pass, file, "maps", "slices")
	if !ok {
		return lint.SuggestedFix{}
	}
	edits := []lint.TextEdit{
		pass.Edit(key.Pos(), key.Pos(), "_, "),
		pass.Edit(rng.X.Pos(), rng.X.Pos(), "slices.Sorted(maps.Keys("),
		pass.Edit(rng.X.End(), rng.X.End(), "))"),
	}
	return lint.SuggestedFix{
		Message: "iterate the sorted keys via slices.Sorted(maps.Keys(...))",
		Edits:   append(edits, impEdits...),
	}
}

// importEdits returns the edits adding the given stdlib paths to the
// file's import block, skipping paths already imported under their
// default name. ok is false when a path is imported renamed, or the
// file's import shape is one the mechanical edit does not handle (a
// single unparenthesized import).
func importEdits(pass *lint.Pass, file *ast.File, paths ...string) ([]lint.TextEdit, bool) {
	var decl *ast.GenDecl
	for _, d := range file.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			decl = gd
			break
		}
	}
	have := map[string]bool{}
	if decl != nil {
		if !decl.Lparen.IsValid() {
			return nil, false
		}
		for _, spec := range decl.Specs {
			is := spec.(*ast.ImportSpec)
			path := strings.Trim(is.Path.Value, `"`)
			for _, p := range paths {
				if path != p {
					continue
				}
				if is.Name != nil {
					return nil, false // renamed: maps.Keys would not resolve
				}
				have[p] = true
			}
		}
	}
	var missing []string
	for _, p := range paths {
		if !have[p] {
			missing = append(missing, p)
		}
	}
	sort.Strings(missing)
	if len(missing) == 0 {
		return nil, true
	}
	if decl == nil {
		text := "\n\nimport (\n"
		for _, p := range missing {
			text += "\t\"" + p + "\"\n"
		}
		text += ")"
		return []lint.TextEdit{pass.Edit(file.Name.End(), file.Name.End(), text)}, true
	}
	// Insert each path before the first existing spec that sorts after
	// it, or before the closing paren; adjacent insertions at one anchor
	// merge into a single edit so application order cannot reorder them.
	anchors := map[token.Pos][]string{}
	var order []token.Pos
	for _, p := range missing {
		anchor := decl.Rparen
		for _, spec := range decl.Specs {
			is := spec.(*ast.ImportSpec)
			if strings.Trim(is.Path.Value, `"`) > p {
				anchor = spec.Pos()
				break
			}
		}
		if _, ok := anchors[anchor]; !ok {
			order = append(order, anchor)
		}
		anchors[anchor] = append(anchors[anchor], p)
	}
	var edits []lint.TextEdit
	for _, anchor := range order {
		ps := anchors[anchor]
		var text string
		if anchor == decl.Rparen {
			for _, p := range ps {
				text += "\t\"" + p + "\"\n"
			}
		} else {
			for _, p := range ps {
				text += "\"" + p + "\"\n\t"
			}
		}
		edits = append(edits, pass.Edit(anchor, anchor, text))
	}
	return edits, true
}

// orderSensitiveEffect reports the first iteration-order-dependent
// effect in a range body: appending to a slice, sending on a channel,
// or writing output.
func orderSensitiveEffect(pass *lint.Pass, body *ast.BlockStmt) string {
	effect := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "sends on a channel"
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					effect = "appends to a slice"
					return false
				}
			}
			if fn := lint.CalleeFunc(pass.Info, n); fn != nil && fn.Pkg() != nil && isOutputCall(fn) {
				effect = "writes output"
				return false
			}
		}
		return true
	})
	return effect
}

// isOutputCall recognizes fmt printing and direct io.Writer writes.
func isOutputCall(fn *types.Func) bool {
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "Encode":
			return true
		}
	}
	return false
}

// sortFollows reports whether any statement after rng in its enclosing
// block (at any nesting depth inside those statements) calls into
// sort or slices — the canonical collect-then-sort pattern.
func sortFollows(pass *lint.Pass, rng *ast.RangeStmt, stack []ast.Node) bool {
	// Find the innermost block containing rng directly.
	for i := len(stack) - 2; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		idx := -1
		for j, s := range block.List {
			if s == ast.Stmt(rng) {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue
		}
		for _, s := range block.List[idx+1:] {
			found := false
			ast.Inspect(s, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if fn := lint.CalleeFunc(pass.Info, call); fn != nil && fn.Pkg() != nil {
						switch fn.Pkg().Path() {
						case "sort", "slices":
							found = true
						}
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
		return false
	}
	return false
}
