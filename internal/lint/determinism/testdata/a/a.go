// Package a exercises the determinism analyzer: wall-clock reads,
// draws from the shared math/rand source, and order-sensitive map
// iteration without a sort.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now in a deterministic package`
	return time.Since(start) // want `time\.Since in a deterministic package`
}

func sharedRand() int {
	return rand.Intn(10) // want `package-level math/rand\.Intn draws from the shared unseeded source`
}

func ownedRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is random, and this loop appends to a slice`
		keys = append(keys, k)
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sendFromRange(m map[string]int, ch chan<- string) {
	for k := range m { // want `map iteration order is random, and this loop sends on a channel`
		ch <- k
	}
}

func printFromRange(m map[string]int) {
	for k, v := range m { // want `map iteration order is random, and this loop writes output`
		fmt.Println(k, v)
	}
}

func pureReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
