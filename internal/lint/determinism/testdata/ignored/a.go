// Package a holds a correctly suppressed determinism finding: the
// directive names the analyzer and gives a reason, so the wall-clock
// read on the next line reports nothing.
package a

import "time"

// Stamp returns a wall-clock timestamp for a log header field that is
// excluded from parity comparisons.
func Stamp() time.Time {
	//fplint:ignore determinism log header timestamp, excluded from parity comparison
	return time.Now()
}
