// Second fixture file: the fix must synthesize a whole import block
// when the file has none.
package a

func Collect(m map[int]string) []string {
	var out []string
	for k := range m { // want `map iteration order is random`
		out = append(out, m[k])
	}
	return out
}
