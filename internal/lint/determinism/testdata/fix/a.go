// Fixture for the determinism suggested fix: a key-only map range
// with order-sensitive effects becomes iteration over
// slices.Sorted(maps.Keys(m)), with the import edits included.
package a

import (
	"fmt"
)

func Emit(m map[string]int) {
	for k := range m { // want `map iteration order is random`
		fmt.Println(k, m[k])
	}
}
