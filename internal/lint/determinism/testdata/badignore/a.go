// Package a holds a reasonless ignore directive: it suppresses
// nothing and is itself reported alongside the original finding.
package a

import "time"

func stamp() time.Time {
	//fplint:ignore determinism
	return time.Now()
}
