package determinism_test

import (
	"testing"

	"fpcache/internal/lint/determinism"
	"fpcache/internal/lint/linttest"
)

func TestFixtures(t *testing.T) {
	linttest.Run(t, "testdata/a", determinism.Analyzer)
}

func TestIgnoreDirective(t *testing.T) {
	linttest.Run(t, "testdata/ignored", determinism.Analyzer)
}

func TestReasonlessIgnoreReportsAndSuppressesNothing(t *testing.T) {
	linttest.RunExpect(t, "testdata/badignore", determinism.Analyzer, []string{
		`//fplint:ignore needs an analyzer name and a reason`,
		`time\.Now in a deterministic package`,
	})
}

func TestSortedKeysSuggestedFix(t *testing.T) {
	linttest.RunFix(t, "testdata/fix", determinism.Analyzer)
}

func TestFixFixtureWants(t *testing.T) {
	linttest.Run(t, "testdata/fix", determinism.Analyzer)
}
