package lint

// Suggested-fix application, the write side of fplint -fix. Fixes are
// mechanical by contract: each is a set of byte-offset edits produced
// from the type-checked syntax, so applying them cannot change
// behavior beyond what the finding's message states. Overlapping fixes
// are resolved deterministically — lowest start offset wins, the rest
// of that finding's edits are dropped with it — and every touched file
// is re-printed through go/format so -fix output is gofmt-clean.

import (
	"fmt"
	"go/format"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes run.
type FixResult struct {
	// Applied are the diagnostics whose fix landed, in diagnostic
	// order.
	Applied []Diagnostic
	// Skipped are diagnostics with a fix that overlapped an applied
	// one.
	Skipped []Diagnostic
	// Files are the rewritten file paths, sorted.
	Files []string
}

// ApplyFixes applies the first suggested fix of every diagnostic that
// has one, rewrites the affected files in place, and reports what
// happened. Diagnostics without fixes are untouched (the caller keeps
// reporting them).
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	res := &FixResult{}
	type edit struct {
		TextEdit
		diag int // index into diags
	}
	var edits []edit
	for i, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			edits = append(edits, edit{e, i})
		}
	}
	if len(edits) == 0 {
		return res, nil
	}
	sort.SliceStable(edits, func(i, j int) bool {
		if edits[i].Filename != edits[j].Filename {
			return edits[i].Filename < edits[j].Filename
		}
		return edits[i].Start < edits[j].Start
	})
	// An overlap poisons the whole finding, not just the colliding
	// edit: applying half a fix (the import but not the rewrite) would
	// leave the tree broken.
	dropped := map[int]bool{}
	lastEnd := map[string]int{}
	for _, e := range edits {
		if e.Start < lastEnd[e.Filename] {
			dropped[e.diag] = true
			continue
		}
		lastEnd[e.Filename] = max(e.End, e.Start)
	}
	byFile := map[string][]TextEdit{}
	applied := map[int]bool{}
	for _, e := range edits {
		if dropped[e.diag] {
			continue
		}
		byFile[e.Filename] = append(byFile[e.Filename], e.TextEdit)
		applied[e.diag] = true
	}
	for file, es := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes: %w", err)
		}
		fixed, err := ApplyEdits(src, es)
		if err != nil {
			return nil, fmt.Errorf("lint: applying fixes to %s: %w", file, err)
		}
		if err := os.WriteFile(file, fixed, 0o666); err != nil {
			return nil, fmt.Errorf("lint: writing fixed %s: %w", file, err)
		}
		res.Files = append(res.Files, file)
	}
	sort.Strings(res.Files)
	for i, d := range diags {
		switch {
		case applied[i]:
			res.Applied = append(res.Applied, d)
		case dropped[i]:
			res.Skipped = append(res.Skipped, d)
		}
	}
	return res, nil
}

// ApplyEdits applies non-overlapping edits (any order) to src and
// formats the result. The caller guarantees the edits' offsets refer
// to src.
func ApplyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sorted := append([]TextEdit(nil), edits...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	var out []byte
	prev := 0
	for _, e := range sorted {
		if e.Start < prev || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of bounds or overlapping (prev end %d, len %d)",
				e.Start, e.End, prev, len(src))
		}
		out = append(out, src[prev:e.Start]...)
		out = append(out, e.NewText...)
		prev = e.End
	}
	out = append(out, src[prev:]...)
	formatted, err := format.Source(out)
	if err != nil {
		// A fix that does not parse is a bug in the analyzer; surface
		// the raw result so the caller's build error points at it.
		return out, nil
	}
	return formatted, nil
}
