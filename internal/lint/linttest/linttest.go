// Package linttest is the fixture harness for the fplint analyzers,
// modeled on golang.org/x/tools/go/analysis/analysistest: a fixture is
// a directory of Go files (under the analyzer's testdata/, so the go
// tool ignores it) annotated with
//
//	expr // want `regexp`
//
// comments. Run type-checks the fixture against the enclosing module
// (fixtures may import fpcache/internal packages), runs one analyzer,
// and requires an exact match between reported diagnostics and want
// expectations, line by line. RunExpect trades want comments for an
// explicit expectation list, for cases where the finding is about a
// comment itself (malformed //fplint:ignore directives).
package linttest

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fpcache/internal/lint"
)

// wantRe extracts the backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package in dir and compares diagnostics
// against its // want comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	prog, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunProgram(prog, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, prog)
	matchDiags(t, diags, wants)
}

// RunExpect analyzes the fixture and requires exactly len(patterns)
// diagnostics, each pattern matching at least one diagnostic.
func RunExpect(t *testing.T, dir string, a *lint.Analyzer, patterns []string) {
	t.Helper()
	prog, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunProgram(prog, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	if len(diags) != len(patterns) {
		t.Errorf("got %d diagnostics, want %d:\n%s", len(diags), len(patterns), render(diags))
	}
	for _, p := range patterns {
		re := regexp.MustCompile(p)
		found := false
		for _, d := range diags {
			if re.MatchString(d.Message) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic matches %q:\n%s", p, render(diags))
		}
	}
}

// RunFix analyzes the fixture, applies the first suggested fix of
// every diagnostic in memory, and compares each patched file against
// its checked-in `<name>.golden` sibling. Files without fixes need no
// golden; a golden without fixes is an error.
func RunFix(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	prog, err := lint.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunProgram(prog, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	byFile := map[string][]lint.TextEdit{}
	for _, d := range diags {
		if len(d.Fixes) == 0 {
			continue
		}
		for _, e := range d.Fixes[0].Edits {
			byFile[e.Filename] = append(byFile[e.Filename], e)
		}
	}
	if len(byFile) == 0 {
		t.Fatalf("no diagnostic in %s carries a suggested fix", dir)
	}
	for file, edits := range byFile {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading %s: %v", file, err)
		}
		got, err := lint.ApplyEdits(src, edits)
		if err != nil {
			t.Fatalf("applying fixes to %s: %v", file, err)
		}
		golden := file + ".golden"
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("reading golden %s: %v", golden, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("fixed %s differs from %s:\n--- got ---\n%s\n--- want ---\n%s",
				filepath.Base(file), filepath.Base(golden), got, want)
		}
	}
}

func collectWants(t *testing.T, prog *lint.Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					pats := wantRe.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(pats) == 0 {
						t.Fatalf("%s: want comment without a backquoted pattern: %s", pos, c.Text)
					}
					for _, m := range pats {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

func matchDiags(t *testing.T, diags []lint.Diagnostic, wants []*expectation) {
	t.Helper()
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.pattern)
		}
	}
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if b.Len() == 0 {
		return "  (none)"
	}
	return b.String()
}
