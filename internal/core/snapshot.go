package core

import (
	"fmt"

	"fpcache/internal/fault"
	"fpcache/internal/memtrace"
	"fpcache/internal/snap"
)

// Warm-state serialization for the Footprint predictor structures: the
// FHT and ST tables (contents, LRU ordering, and counters) plus the
// policy's accumulated statistics. dcache.Engine embeds this state in
// its own snapshot through the dcache.PolicyState interface, which is
// also where the layout's version const lives (dcache.SnapshotVersion);
// the fplint snapmeta analyzer pins the serialized structs here.
//
//fplint:snapfields 0xcc6bbac3

// Save serializes the FHT: table contents with LRU state, and the
// query/cold/update counters.
func (f *FHT) Save(w *snap.Writer) {
	w.Tag("fht")
	w.U64(f.Queries)
	w.U64(f.Cold)
	w.U64(f.Updates)
	f.arr.Save(w, func(sw *snap.Writer, v *uint64) { sw.U64(*v) })
}

// Load restores a snapshot written by Save.
func (f *FHT) Load(r *snap.Reader) error {
	r.Expect("fht")
	f.Queries = r.U64()
	f.Cold = r.U64()
	f.Updates = r.U64()
	return f.arr.Load(r, func(sr *snap.Reader, v *uint64) { *v = sr.U64() })
}

// Save serializes the ST: table contents with LRU state, and the
// correction counter.
func (s *ST) Save(w *snap.Writer) {
	w.Tag("st")
	w.U64(s.Corrections)
	s.arr.Save(w, func(sw *snap.Writer, v *stEntry) {
		sw.U64(uint64(v.pc))
		sw.I64(int64(v.offset))
	})
}

// Load restores a snapshot written by Save.
func (s *ST) Load(r *snap.Reader) error {
	r.Expect("st")
	s.Corrections = r.U64()
	return s.arr.Load(r, func(sr *snap.Reader, v *stEntry) {
		v.pc = memtrace.PC(sr.U64())
		v.offset = int(sr.I64())
	})
}

// SaveState implements dcache.PolicyState: the predictor statistics
// and both tables.
func (p *FootprintPolicy) SaveState(w *snap.Writer) {
	w.Tag("footprint-policy")
	w.String(p.cfg.VariantName())
	saveStats(w, &p.extra)
	p.fht.Save(w)
	p.st.Save(w)
}

// LoadState implements dcache.PolicyState.
func (p *FootprintPolicy) LoadState(r *snap.Reader) error {
	r.Expect("footprint-policy")
	if v := r.String(); r.Err() == nil && v != p.cfg.VariantName() {
		return fmt.Errorf("core: snapshot of footprint variant %q, want %q: %w", v, p.cfg.VariantName(), fault.ErrCorruptSnapshot)
	}
	loadStats(r, &p.extra)
	if err := p.fht.Load(r); err != nil {
		return err
	}
	return p.st.Load(r)
}

// saveStats / loadStats serialize Stats in declaration order.
func saveStats(w *snap.Writer, s *Stats) {
	w.U64(s.UnderpredMisses)
	w.U64(s.SingletonBypasses)
	w.U64(s.STCorrections)
	w.U64(s.FHTCold)
	w.U64(s.CoveredBlocks)
	w.U64(s.UnderBlocks)
	w.U64(s.OverBlocks)
}

func loadStats(r *snap.Reader, s *Stats) {
	s.UnderpredMisses = r.U64()
	s.SingletonBypasses = r.U64()
	s.STCorrections = r.U64()
	s.FHTCold = r.U64()
	s.CoveredBlocks = r.U64()
	s.UnderBlocks = r.U64()
	s.OverBlocks = r.U64()
}
