package core

import (
	"math/bits"

	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// pageEntry is the Footprint Cache tag payload: the Table 2 block
// state vectors, the FHT pointer planted at allocation, and the
// predicted footprint kept for accuracy accounting.
type pageEntry struct {
	vec       PageVectors
	fhtPtr    Ptr
	predicted uint64
}

// Config parametrizes a Footprint Cache. The defaults in Default()
// are the paper's §5.2 configuration.
type Config struct {
	Geometry  dcache.PageGeometry
	TagCycles int
	// FHTEntries/FHTWays size the Footprint History Table (16K
	// entries = 144KB in the paper).
	FHTEntries, FHTWays int
	// STEntries/STWays size the Singleton Table (512 entries = 3KB).
	STEntries, STWays int
	// SingletonOpt enables the capacity optimization (§4.4); the
	// ablation of §6.5 turns it off.
	SingletonOpt bool
	// Feedback selects the FHT update policy on eviction. The paper
	// replaces the stored footprint with the most recent demanded
	// vector (§4.2); FeedbackUnion is an ablation that accumulates
	// instead, trading overprediction for coverage.
	Feedback FeedbackPolicy
}

// FeedbackPolicy selects how eviction-time demanded vectors update
// the FHT.
type FeedbackPolicy int

const (
	// FeedbackReplace is the paper's policy: the most recent footprint
	// wins, keeping the FHT in harmony with the execution phase.
	FeedbackReplace FeedbackPolicy = iota
	// FeedbackUnion ORs demanded vectors into the stored footprint:
	// coverage can only grow, and so can overfetch.
	FeedbackUnion
)

// String implements fmt.Stringer.
func (p FeedbackPolicy) String() string {
	if p == FeedbackUnion {
		return "union"
	}
	return "replace"
}

// VariantName returns the design name a configuration reports — the
// ablation variants carry their own names so specs and reports can
// tell them apart. Cache.Name and FootprintPolicy.Name both defer
// here so the monolith and the composed policy can never drift.
func (c Config) VariantName() string {
	switch {
	case !c.SingletonOpt:
		return "footprint-nosingleton"
	case c.Feedback == FeedbackUnion:
		return "footprint-union"
	default:
		return "footprint"
	}
}

// Default returns the paper's configuration for a given capacity:
// 2KB pages, 16-way tag array, 16K-entry FHT, 512-entry ST, singleton
// optimization on.
func Default(capacityBytes int64) Config {
	return Config{
		Geometry:     dcache.PageGeometry{CapacityBytes: capacityBytes, PageBytes: 2048, Ways: 16},
		FHTEntries:   16 * 1024,
		FHTWays:      16,
		STEntries:    512,
		STWays:       8,
		SingletonOpt: true,
	}
}

// Stats holds Footprint-specific counters on top of dcache.Counters.
type Stats struct {
	// UnderpredMisses are accesses to resident pages whose block was
	// not fetched (the predictor's per-block miss cost, §3.1).
	UnderpredMisses uint64
	// SingletonBypasses are page misses served without allocation.
	SingletonBypasses uint64
	// STCorrections are second touches to bypassed pages.
	STCorrections uint64
	// FHTCold are triggering misses with no FHT entry.
	FHTCold uint64
	// CoveredBlocks / UnderBlocks / OverBlocks accumulate, at every
	// eviction, demanded∧predicted, demanded∧¬predicted, and
	// predicted∧¬demanded block counts (Fig. 8's three bars).
	CoveredBlocks, UnderBlocks, OverBlocks uint64
}

// Add returns s plus o counter-wise, used to merge per-interval
// measurements; all fields are monotonic counters, so the sum over
// intervals equals one uninterrupted measurement exactly.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		UnderpredMisses:   s.UnderpredMisses + o.UnderpredMisses,
		SingletonBypasses: s.SingletonBypasses + o.SingletonBypasses,
		STCorrections:     s.STCorrections + o.STCorrections,
		FHTCold:           s.FHTCold + o.FHTCold,
		CoveredBlocks:     s.CoveredBlocks + o.CoveredBlocks,
		UnderBlocks:       s.UnderBlocks + o.UnderBlocks,
		OverBlocks:        s.OverBlocks + o.OverBlocks,
	}
}

// Sub returns s minus o, used to exclude warmup from measurements.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		UnderpredMisses:   s.UnderpredMisses - o.UnderpredMisses,
		SingletonBypasses: s.SingletonBypasses - o.SingletonBypasses,
		STCorrections:     s.STCorrections - o.STCorrections,
		FHTCold:           s.FHTCold - o.FHTCold,
		CoveredBlocks:     s.CoveredBlocks - o.CoveredBlocks,
		UnderBlocks:       s.UnderBlocks - o.UnderBlocks,
		OverBlocks:        s.OverBlocks - o.OverBlocks,
	}
}

// Coverage returns covered/(covered+under): the fraction of demanded
// blocks the predictor fetched ahead of use.
func (s Stats) Coverage() float64 {
	d := s.CoveredBlocks + s.UnderBlocks
	if d == 0 {
		return 0
	}
	return float64(s.CoveredBlocks) / float64(d)
}

// Overprediction returns over/(covered+under): overfetched blocks
// relative to demanded blocks, the paper's Fig. 8 normalization.
func (s Stats) Overprediction() float64 {
	d := s.CoveredBlocks + s.UnderBlocks
	if d == 0 {
		return 0
	}
	return float64(s.OverBlocks) / float64(d)
}

// Cache is the Footprint Cache design (implements dcache.Design).
type Cache struct {
	cfg  Config
	sets int
	bpp  int
	tags *sram.SetAssoc[pageEntry]
	fht  *FHT
	st   *ST

	ctr   dcache.Counters
	extra Stats

	// OnEvict, if set, observes eviction densities (Fig. 4).
	OnEvict dcache.DensityObserver
}

// New builds a Footprint Cache.
func New(cfg Config) (*Cache, error) {
	sets, bpp, err := cfg.Geometry.Validate()
	if err != nil {
		return nil, err
	}
	fht, err := NewFHT(cfg.FHTEntries, cfg.FHTWays)
	if err != nil {
		return nil, err
	}
	st, err := NewST(cfg.STEntries, cfg.STWays)
	if err != nil {
		return nil, err
	}
	return &Cache{
		cfg:  cfg,
		sets: sets,
		bpp:  bpp,
		tags: sram.NewSetAssoc[pageEntry](sets, cfg.Geometry.Ways),
		fht:  fht,
		st:   st,
	}, nil
}

// Name implements dcache.Design.
func (c *Cache) Name() string { return c.cfg.VariantName() }

// Counters implements dcache.Design.
func (c *Cache) Counters() dcache.Counters { return c.ctr }

// Extra returns the Footprint-specific statistics.
func (c *Cache) Extra() Stats { return c.extra }

// FHTStats exposes predictor table counters.
func (c *Cache) FHTStats() (queries, cold, updates uint64) {
	return c.fht.Queries, c.fht.Cold, c.fht.Updates
}

// MetadataBits computes the Footprint Cache SRAM budget for a
// configuration: the tag array (address tag, page-valid bit, LRU, the
// two Table 2 vectors, and an FHT pointer) plus the FHT and ST.
// Reproduces Table 4's Footprint tag storage.
func MetadataBits(cfg Config) int64 {
	sets, bpp, err := cfg.Geometry.Validate()
	if err != nil {
		panic(err)
	}
	pages := cfg.Geometry.CapacityBytes / int64(cfg.Geometry.PageBytes)
	tagBits := 40 - bits.TrailingZeros64(uint64(cfg.Geometry.PageBytes)) - lruBits(sets)
	fhtPtrBits := lruBits(cfg.FHTEntries)
	per := int64(tagBits + 1 + lruBits(cfg.Geometry.Ways) + 2*bpp + fhtPtrBits)
	fhtBits := int64(cfg.FHTEntries) * int64(40+bpp)
	stBits := int64(cfg.STEntries) * 48
	return pages*per + fhtBits + stBits
}

// MetadataBits implements dcache.Design.
func (c *Cache) MetadataBits() int64 { return MetadataBits(c.cfg) }

func (c *Cache) frameAddr(set, way int) memtrace.Addr {
	return memtrace.Addr((int64(set)*int64(c.cfg.Geometry.Ways) + int64(way)) * int64(c.cfg.Geometry.PageBytes))
}

// Access implements dcache.Design. The flow follows §4.2-4.4: tag
// lookup; on a page hit serve the block (or demand-fetch an
// unpredicted block); on a page miss consult the ST and FHT, bypass
// predicted singletons, otherwise evict (feeding the victim's
// demanded vector back to the FHT through the stored pointer) and
// fetch the predicted footprint in one shot.
func (c *Cache) Access(rec memtrace.Record, ops []dcache.Op) dcache.Outcome {
	c.recordAccess(rec)
	pageIdx := uint64(rec.Addr) / uint64(c.cfg.Geometry.PageBytes)
	block := int(uint64(rec.Addr) % uint64(c.cfg.Geometry.PageBytes) / 64)
	set := int(pageIdx % uint64(c.sets))
	tag := pageIdx / uint64(c.sets)
	bit := uint64(1) << block

	if e := c.tags.Lookup(set, tag); e != nil {
		if e.Value.vec.State(block).Present() {
			// Block hit: serve from the stacked array.
			c.ctr.Hits++
			e.Value.vec.Demand(block, rec.Write)
			ops = append(ops[:0], dcache.Op{
				Level: dcache.Stacked, Addr: c.frameAddr(set, e.Way()) + memtrace.Addr(block*64),
				Bytes: 64, Write: rec.Write, Critical: !rec.Write, DependsOn: dcache.NoDep,
			})
			return dcache.Outcome{Hit: true, TagCycles: c.cfg.TagCycles, Ops: ops}
		}
		// Underprediction: page resident, block not fetched. Fetch it
		// alone, mark demanded (a write carries its own 64B block and
		// skips the fetch).
		c.ctr.Misses++
		c.extra.UnderpredMisses++
		e.Value.vec.Fill(bit)
		e.Value.vec.Demand(block, rec.Write)
		frame := c.frameAddr(set, e.Way()) + memtrace.Addr(block*64)
		if rec.Write {
			ops = append(ops[:0], dcache.Op{Level: dcache.Stacked, Addr: frame, Bytes: 64, Write: true, DependsOn: dcache.NoDep})
			return dcache.Outcome{TagCycles: c.cfg.TagCycles, Ops: ops}
		}
		ops = append(ops[:0],
			dcache.Op{Level: dcache.OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: dcache.NoDep},
			dcache.Op{Level: dcache.Stacked, Addr: frame, Bytes: 64, Write: true, DependsOn: 0},
		)
		return dcache.Outcome{TagCycles: c.cfg.TagCycles, Ops: ops}
	}

	// Triggering miss (§4.2).
	c.ctr.Misses++

	// Singleton correction: was this page bypassed before with a
	// different offset?
	var correctedKey stEntry
	corrected := false
	if c.cfg.SingletonOpt {
		if pc, off, ok := c.st.Check(pageIdx, block); ok {
			c.extra.STCorrections++
			correctedKey = stEntry{pc: pc, offset: off}
			corrected = true
		}
	}

	footprint, ptr, known := c.fht.Predict(rec.PC, block)
	if !known {
		c.extra.FHTCold++
		ptr = c.fht.Allocate(rec.PC, block, bit)
		footprint = 0
	}
	footprint |= bit // the demanded block is always fetched

	if corrected {
		// Re-key learning to the instruction that first (wrongly)
		// classified the page as singleton: fetch its block too and
		// point feedback at its FHT entry (§4.4).
		footprint |= 1 << correctedKey.offset
		ptr = c.fht.Allocate(correctedKey.pc, correctedKey.offset, footprint)
	} else if c.cfg.SingletonOpt && known && popcount(footprint) == 1 {
		// Predicted singleton: do not allocate; forward the block and
		// note the bypass in the ST (§4.4).
		c.ctr.Bypasses++
		c.extra.SingletonBypasses++
		c.st.Note(pageIdx, rec.PC, block)
		ops = append(ops[:0], dcache.Op{
			Level: dcache.OffChip, Addr: rec.Addr, Bytes: 64,
			Write: rec.Write, Critical: !rec.Write, DependsOn: dcache.NoDep,
		})
		return dcache.Outcome{Bypass: true, TagCycles: c.cfg.TagCycles, Ops: ops}
	}

	// Allocate the page: evict the victim with FHT feedback, then
	// fetch the whole footprint at once (§3).
	ops = ops[:0]
	victim := c.tags.Victim(set)
	frame := c.frameAddr(set, victim.Way())
	if victim.Valid() {
		ops = c.evict(set, victim, frame, ops)
	}

	// Fetch the footprint: the demanded block first (critical, unless
	// this is a writeback carrying its own data), then the remaining
	// predicted blocks streaming from the page's off-chip row, then
	// the fill into the page's frame (one stacked row for 2KB pages).
	fetchBlocks := popcount(footprint)
	crit := dcache.NoDep
	if !rec.Write {
		crit = len(ops)
		ops = append(ops, dcache.Op{Level: dcache.OffChip, Addr: rec.Addr, Bytes: 64, Critical: true, DependsOn: dcache.NoDep})
	}
	if fetchBlocks > 1 {
		rest := len(ops)
		pageBase := memtrace.Addr(pageIdx * uint64(c.cfg.Geometry.PageBytes))
		ops = append(ops, dcache.Op{Level: dcache.OffChip, Addr: pageBase, Bytes: (fetchBlocks - 1) * 64, DependsOn: crit})
		ops = append(ops, dcache.Op{Level: dcache.Stacked, Addr: frame, Bytes: fetchBlocks * 64, Write: true, DependsOn: rest})
	} else {
		ops = append(ops, dcache.Op{Level: dcache.Stacked, Addr: frame + memtrace.Addr(block*64), Bytes: 64, Write: true, DependsOn: crit})
	}

	entry := pageEntry{fhtPtr: ptr, predicted: footprint}
	entry.vec.Fill(footprint)
	entry.vec.Demand(block, rec.Write)
	c.tags.Insert(set, tag, entry)
	c.ctr.PageAllocs++
	return dcache.Outcome{TagCycles: c.cfg.TagCycles, Ops: ops}
}

// evict retires a victim page: accounts prediction accuracy, sends
// the demanded vector to the FHT through the stored pointer, and
// emits writeback operations for dirty blocks.
func (c *Cache) evict(set int, victim *sram.Entry[pageEntry], frame memtrace.Addr, ops []dcache.Op) []dcache.Op {
	c.ctr.PageEvicts++
	v := victim.Value
	demanded := v.vec.DemandedMask()
	if c.OnEvict != nil {
		c.OnEvict(v.vec.DemandedCount(), c.bpp)
	}
	c.extra.CoveredBlocks += uint64(popcount(demanded & v.predicted))
	c.extra.UnderBlocks += uint64(popcount(demanded &^ v.predicted))
	c.extra.OverBlocks += uint64(popcount(v.predicted &^ demanded))
	if c.cfg.Feedback == FeedbackUnion {
		c.fht.UpdateUnion(v.fhtPtr, demanded)
	} else {
		c.fht.Update(v.fhtPtr, demanded)
	}

	if dirty := v.vec.DirtyMask(); dirty != 0 {
		c.ctr.DirtyEvicts++
		n := popcount(dirty)
		victimBase := memtrace.Addr(victim.Tag*uint64(c.sets)+uint64(set)) * memtrace.Addr(c.cfg.Geometry.PageBytes)
		rd := len(ops)
		ops = append(ops,
			dcache.Op{Level: dcache.Stacked, Addr: frame, Bytes: n * 64, DependsOn: dcache.NoDep},
			dcache.Op{Level: dcache.OffChip, Addr: victimBase, Bytes: n * 64, Write: true, DependsOn: rd},
		)
	}
	return ops
}

func (c *Cache) recordAccess(rec memtrace.Record) {
	if rec.Write {
		c.ctr.Writes++
	} else {
		c.ctr.Reads++
	}
}

func popcount(v uint64) int { return bits.OnesCount64(v) }
