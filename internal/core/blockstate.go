// Package core implements the paper's contribution: Footprint Cache —
// a die-stacked DRAM cache that allocates 1-4KB pages, fetches only
// each page's predicted footprint of 64B blocks, learns footprints in
// a PC&offset-indexed Footprint History Table (FHT), and filters
// singleton pages through a Singleton Table (ST).
package core

import "math/bits"

// BlockState is the per-block state of a cached page, encoded in two
// bits exactly as the paper's Table 2. The trick (§4.3): a block
// cannot be dirty without having been demanded, so the (dirty, valid)
// pair is reused as a 2-bit state whose high bit doubles as the
// "demanded" flag — the page's footprint is read out of the existing
// dirty vector with no extra storage.
type BlockState uint8

const (
	// NotPresent: the block is not in the cache (dirty=0, valid=0).
	NotPresent BlockState = 0b00
	// CleanPrefetched: valid, clean, not demanded yet (dirty=0,
	// valid=1) — fetched on the predictor's say-so only.
	CleanPrefetched BlockState = 0b01
	// CleanDemanded: valid, clean, was demanded (dirty=1, valid=0 in
	// the encoding's bit positions).
	CleanDemanded BlockState = 0b10
	// DirtyDemanded: valid, dirty, was demanded (dirty=1, valid=1).
	DirtyDemanded BlockState = 0b11
)

// String implements fmt.Stringer.
func (s BlockState) String() string {
	switch s {
	case NotPresent:
		return "not-present"
	case CleanPrefetched:
		return "clean-prefetched"
	case CleanDemanded:
		return "clean-demanded"
	case DirtyDemanded:
		return "dirty-demanded"
	default:
		return "invalid"
	}
}

// Present reports whether the block is in the cache.
func (s BlockState) Present() bool { return s != NotPresent }

// Demanded reports whether a core has touched the block (the high,
// "dirty-position" bit of the encoding).
func (s BlockState) Demanded() bool { return s&0b10 != 0 }

// Dirty reports whether the block holds modified data that must be
// written back on eviction.
func (s BlockState) Dirty() bool { return s == DirtyDemanded }

// PageVectors holds one page's per-block state as the paper's two bit
// vectors. Bit i of D is block i's high state bit, bit i of V the low
// bit.
type PageVectors struct {
	D, V uint64
}

// State returns block i's state.
func (p PageVectors) State(i int) BlockState {
	return BlockState((p.D>>i&1)<<1 | (p.V >> i & 1))
}

// setState stores block i's state.
func (p *PageVectors) setState(i int, s BlockState) {
	mask := uint64(1) << i
	p.D &^= mask
	p.V &^= mask
	if s&0b10 != 0 {
		p.D |= mask
	}
	if s&0b01 != 0 {
		p.V |= mask
	}
}

// Fill marks every block in bits as CleanPrefetched, the state of
// predictor-fetched blocks that no core has touched yet. Blocks
// already demanded are left alone.
func (p *PageVectors) Fill(bits uint64) {
	fresh := bits &^ p.PresentMask()
	p.V |= fresh
}

// Demand records a core's access to block i (which must be present),
// applying the Table 2 transitions: clean-prefetched or
// clean-demanded become dirty-demanded on a write; clean-prefetched
// becomes clean-demanded on a read.
func (p *PageVectors) Demand(i int, write bool) {
	switch s := p.State(i); {
	case !s.Present():
		panic("core: Demand on a block that is not present")
	case write:
		p.setState(i, DirtyDemanded)
	case s == CleanPrefetched:
		p.setState(i, CleanDemanded)
	}
}

// PresentMask returns the bitset of blocks in the cache.
func (p PageVectors) PresentMask() uint64 { return p.D | p.V }

// DemandedMask returns the page's footprint: blocks touched by cores
// during this residency. This is the vector sent to the FHT on
// eviction (§4.3).
func (p PageVectors) DemandedMask() uint64 { return p.D }

// DirtyMask returns blocks needing writeback.
func (p PageVectors) DirtyMask() uint64 { return p.D & p.V }

// PresentCount returns the number of cached blocks.
func (p PageVectors) PresentCount() int { return bits.OnesCount64(p.PresentMask()) }

// DemandedCount returns the footprint size.
func (p PageVectors) DemandedCount() int { return bits.OnesCount64(p.D) }
