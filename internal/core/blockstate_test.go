package core

import (
	"testing"
	"testing/quick"
)

func TestTable2Encoding(t *testing.T) {
	// The paper's Table 2, verbatim.
	cases := []struct {
		state    BlockState
		present  bool
		demanded bool
		dirty    bool
		name     string
	}{
		{NotPresent, false, false, false, "not-present"},
		{CleanPrefetched, true, false, false, "clean-prefetched"},
		{CleanDemanded, true, true, false, "clean-demanded"},
		{DirtyDemanded, true, true, true, "dirty-demanded"},
	}
	for _, c := range cases {
		if c.state.Present() != c.present || c.state.Demanded() != c.demanded || c.state.Dirty() != c.dirty {
			t.Fatalf("%v: present=%v demanded=%v dirty=%v", c.state, c.state.Present(), c.state.Demanded(), c.state.Dirty())
		}
		if c.state.String() != c.name {
			t.Fatalf("String() = %q, want %q", c.state.String(), c.name)
		}
	}
	// A block can never be dirty without being demanded — the
	// property the encoding exploits (§4.3).
	for s := BlockState(0); s < 4; s++ {
		if s.Dirty() && !s.Demanded() {
			t.Fatalf("state %v dirty but not demanded", s)
		}
	}
}

func TestPageVectorsStateRoundtrip(t *testing.T) {
	var p PageVectors
	for i := 0; i < 64; i++ {
		for _, s := range []BlockState{CleanPrefetched, CleanDemanded, DirtyDemanded, NotPresent} {
			p.setState(i, s)
			if got := p.State(i); got != s {
				t.Fatalf("block %d: set %v, got %v", i, s, got)
			}
		}
	}
}

func TestFillMarksCleanPrefetched(t *testing.T) {
	var p PageVectors
	p.Fill(0b1011)
	for _, i := range []int{0, 1, 3} {
		if p.State(i) != CleanPrefetched {
			t.Fatalf("block %d = %v", i, p.State(i))
		}
	}
	if p.State(2) != NotPresent {
		t.Fatal("unfilled block present")
	}
}

func TestFillDoesNotDowngradeDemanded(t *testing.T) {
	var p PageVectors
	p.Fill(1)
	p.Demand(0, true)
	p.Fill(1) // refill must not clear the dirty-demanded state
	if p.State(0) != DirtyDemanded {
		t.Fatalf("refill downgraded state to %v", p.State(0))
	}
}

func TestDemandTransitions(t *testing.T) {
	var p PageVectors
	p.Fill(0b111)
	p.Demand(0, false)
	if p.State(0) != CleanDemanded {
		t.Fatalf("read demand: %v", p.State(0))
	}
	p.Demand(1, true)
	if p.State(1) != DirtyDemanded {
		t.Fatalf("write demand: %v", p.State(1))
	}
	p.Demand(0, true) // read-then-write upgrades
	if p.State(0) != DirtyDemanded {
		t.Fatalf("upgrade: %v", p.State(0))
	}
	p.Demand(1, false) // write-then-read stays dirty
	if p.State(1) != DirtyDemanded {
		t.Fatalf("dirty read downgraded: %v", p.State(1))
	}
}

func TestDemandPanicsOnAbsentBlock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Demand on absent block did not panic")
		}
	}()
	var p PageVectors
	p.Demand(5, false)
}

func TestMaskAccessors(t *testing.T) {
	var p PageVectors
	p.Fill(0b11110)
	p.Demand(1, false)
	p.Demand(2, true)
	if p.PresentMask() != 0b11110 {
		t.Fatalf("present = %b", p.PresentMask())
	}
	if p.DemandedMask() != 0b00110 {
		t.Fatalf("demanded = %b", p.DemandedMask())
	}
	if p.DirtyMask() != 0b00100 {
		t.Fatalf("dirty = %b", p.DirtyMask())
	}
	if p.PresentCount() != 4 || p.DemandedCount() != 2 {
		t.Fatalf("counts: %d %d", p.PresentCount(), p.DemandedCount())
	}
}

// Property: under any sequence of fills and demands,
// dirty ⊆ demanded ⊆ present (the Table 2 invariant chain).
func TestPropertyStateInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		var p PageVectors
		for _, op := range ops {
			block := int(op % 64)
			switch (op >> 6) % 3 {
			case 0:
				p.Fill(1 << block)
			case 1, 2:
				if p.State(block).Present() {
					p.Demand(block, (op>>8)%2 == 0)
				}
			}
			d, dm, pr := p.DirtyMask(), p.DemandedMask(), p.PresentMask()
			if d&^dm != 0 || dm&^pr != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
