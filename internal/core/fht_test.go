package core

import (
	"testing"
	"testing/quick"

	"fpcache/internal/memtrace"
)

func mustFHT(t *testing.T, entries, ways int) *FHT {
	t.Helper()
	f, err := NewFHT(entries, ways)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFHTGeometryValidation(t *testing.T) {
	for _, g := range [][2]int{{0, 1}, {16, 0}, {10, 4}} {
		if _, err := NewFHT(g[0], g[1]); err == nil {
			t.Fatalf("geometry %v accepted", g)
		}
	}
	if f := mustFHT(t, 16*1024, 16); f.Entries() != 16*1024 {
		t.Fatalf("Entries = %d", f.Entries())
	}
}

func TestFHTColdThenLearn(t *testing.T) {
	f := mustFHT(t, 1024, 8)
	pc, off := memtrace.PC(0x400100), 5

	if _, _, ok := f.Predict(pc, off); ok {
		t.Fatal("cold predict hit")
	}
	if f.Cold != 1 || f.Queries != 1 {
		t.Fatalf("cold=%d queries=%d", f.Cold, f.Queries)
	}

	ptr := f.Allocate(pc, off, 1<<5)
	if ptr == NoPtr {
		t.Fatal("Allocate returned NoPtr")
	}
	fp, ptr2, ok := f.Predict(pc, off)
	if !ok || fp != 1<<5 || ptr2 != ptr {
		t.Fatalf("predict after allocate: fp=%b ptr=%v ok=%v", fp, ptr2, ok)
	}

	// Eviction feedback replaces the footprint (§4.2).
	f.Update(ptr, 0b1110)
	fp, _, _ = f.Predict(pc, off)
	if fp != 0b1110 {
		t.Fatalf("after update fp=%b", fp)
	}
	if f.Updates != 1 {
		t.Fatalf("updates=%d", f.Updates)
	}
}

func TestFHTUpdateUnionAccumulates(t *testing.T) {
	f := mustFHT(t, 64, 4)
	ptr := f.Allocate(0x400000, 0, 0b0001)
	f.UpdateUnion(ptr, 0b0110)
	fp, _, _ := f.Predict(0x400000, 0)
	if fp != 0b0111 {
		t.Fatalf("union feedback = %b, want 0111", fp)
	}
	f.Update(ptr, 0b1000) // replace policy overwrites
	fp, _, _ = f.Predict(0x400000, 0)
	if fp != 0b1000 {
		t.Fatalf("replace feedback = %b, want 1000", fp)
	}
}

func TestFHTUpdateIgnoresEmptyAndNoPtr(t *testing.T) {
	f := mustFHT(t, 64, 4)
	ptr := f.Allocate(0x400000, 0, 1)
	f.Update(NoPtr, 0b11)
	f.Update(ptr, 0) // empty demanded vector: no feedback
	fp, _, _ := f.Predict(0x400000, 0)
	if fp != 1 {
		t.Fatalf("footprint corrupted: %b", fp)
	}
	if f.Updates != 0 {
		t.Fatal("bogus updates counted")
	}
}

func TestFHTStalePointerWritesSlot(t *testing.T) {
	// The paper tolerates stale pointers (§4.2): feedback through a
	// replaced slot updates whatever lives there now. Verify it does
	// not crash and does not touch other slots.
	f := mustFHT(t, 8, 2)
	var ptrs []Ptr
	for i := 0; i < 32; i++ { // force replacements
		ptrs = append(ptrs, f.Allocate(memtrace.PC(0x400000+i*64), i%8, 1<<uint(i%32)))
	}
	f.Update(ptrs[0], 0xFF) // likely stale by now
	if f.slot(Ptr(999)) != nil {
		t.Fatal("out-of-range slot not nil")
	}
	f.Update(Ptr(999), 0xFF) // must not panic
}

func TestFHTDistinctKeysDistinctEntries(t *testing.T) {
	f := mustFHT(t, 16*1024, 16)
	// Same PC, different offsets must key differently (the paper's
	// PC & offset indexing, §3.1).
	pc := memtrace.PC(0x400200)
	f.Allocate(pc, 1, 0b0001)
	f.Allocate(pc, 2, 0b0010)
	fp1, _, ok1 := f.Predict(pc, 1)
	fp2, _, ok2 := f.Predict(pc, 2)
	if !ok1 || !ok2 || fp1 == fp2 {
		t.Fatalf("offset aliasing: %b vs %b", fp1, fp2)
	}
}

func TestFHTMetadataBudget(t *testing.T) {
	// Paper §4.2: 16K entries = 144KB for 2KB pages.
	f := mustFHT(t, 16*1024, 16)
	kb := float64(f.MetadataBits(32)) / 8 / 1024
	if kb < 130 || kb > 160 {
		t.Fatalf("FHT storage = %.0fKB, want ~144KB", kb)
	}
}

// Property: Allocate/Predict roundtrip holds for arbitrary keys while
// capacity is not exceeded.
func TestPropertyFHTRoundtrip(t *testing.T) {
	f := func(pcs []uint32) bool {
		fht := mustFHTQuick(64 * 1024)
		seen := map[uint64]uint64{}
		for i, pcRaw := range pcs {
			if i >= 1000 {
				break
			}
			pc := memtrace.PC(pcRaw)
			off := int(pcRaw % 32)
			want := uint64(1)<<off | uint64(pcRaw)
			fht.Allocate(pc, off, want)
			seen[uint64(pc)<<8|uint64(off)] = want
		}
		for key, want := range seen {
			fp, _, ok := fht.Predict(memtrace.PC(key>>8), int(key&0xFF))
			if !ok || fp != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func mustFHTQuick(entries int) *FHT {
	f, err := NewFHT(entries, 16)
	if err != nil {
		panic(err)
	}
	return f
}

func TestSTNoteCheckCorrect(t *testing.T) {
	st, err := NewST(512, 8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries() != 512 {
		t.Fatalf("Entries = %d", st.Entries())
	}
	st.Note(100, 0x400500, 3)

	// Same offset again: consistent with singleton, no correction.
	if _, _, ok := st.Check(100, 3); ok {
		t.Fatal("same-offset access flagged as correction")
	}
	// Different offset: underprediction caught, entry invalidated.
	pc, off, ok := st.Check(100, 9)
	if !ok || pc != 0x400500 || off != 3 {
		t.Fatalf("correction = %v %v %v", pc, off, ok)
	}
	if st.Corrections != 1 {
		t.Fatalf("corrections = %d", st.Corrections)
	}
	// Entry gone after correction.
	if _, _, ok := st.Check(100, 9); ok {
		t.Fatal("corrected entry still present")
	}
}

func TestSTUnknownPage(t *testing.T) {
	st, _ := NewST(64, 4)
	if _, _, ok := st.Check(42, 0); ok {
		t.Fatal("unknown page produced a correction")
	}
}

func TestSTNoteOverwrites(t *testing.T) {
	st, _ := NewST(64, 4)
	st.Note(7, 0x400000, 1)
	st.Note(7, 0x400004, 2) // re-bypass with different key
	pc, off, ok := st.Check(7, 5)
	if !ok || pc != 0x400004 || off != 2 {
		t.Fatalf("overwrite lost: %v %v %v", pc, off, ok)
	}
}

func TestSTMetadataBudget(t *testing.T) {
	st, _ := NewST(512, 8)
	kb := float64(st.MetadataBits()) / 8 / 1024
	if kb < 2.5 || kb > 3.5 {
		t.Fatalf("ST storage = %.1fKB, want ~3KB", kb)
	}
}

func TestGeometryBadST(t *testing.T) {
	if _, err := NewST(0, 1); err == nil {
		t.Fatal("bad ST accepted")
	}
	if _, err := NewST(10, 4); err == nil {
		t.Fatal("indivisible ST accepted")
	}
}
