package core

import (
	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
)

// FootprintPolicy is the paper's contribution decomposed into the
// composable engine's allocation axis (dcache.AllocPolicy): the FHT
// prediction, Singleton Table filtering, and eviction-time feedback of
// §4.2-4.4, with the tag array owned by the generic engine instead of
// the monolithic Cache. Composed as footprint+pagedirect+lru it is
// byte-identical to Cache (the golden parity test in internal/system
// proves it); composed with other mapping or fill policies it opens
// the hybrid design space the paper never explored.
type FootprintPolicy struct {
	cfg   Config
	fht   *FHT
	st    *ST
	extra Stats
}

// NewFootprintPolicy builds the allocation policy from a Footprint
// configuration (Geometry and TagCycles are owned by the engine and
// ignored here, except for page size in table budgets).
func NewFootprintPolicy(cfg Config) (*FootprintPolicy, error) {
	fht, err := NewFHT(cfg.FHTEntries, cfg.FHTWays)
	if err != nil {
		return nil, err
	}
	st, err := NewST(cfg.STEntries, cfg.STWays)
	if err != nil {
		return nil, err
	}
	return &FootprintPolicy{cfg: cfg, fht: fht, st: st}, nil
}

// Name implements dcache.AllocPolicy.
func (p *FootprintPolicy) Name() string { return p.cfg.VariantName() }

// Extra returns the Footprint-specific statistics.
func (p *FootprintPolicy) Extra() Stats { return p.extra }

// FHTStats exposes predictor table counters.
func (p *FootprintPolicy) FHTStats() (queries, cold, updates uint64) {
	return p.fht.Queries, p.fht.Cold, p.fht.Updates
}

// OnPageMiss implements dcache.AllocPolicy — the triggering-miss flow
// of §4.2 and §4.4: consult the ST for singleton corrections, predict
// the footprint from the FHT (allocating an entry on cold misses),
// and bypass predicted singletons.
func (p *FootprintPolicy) OnPageMiss(rec memtrace.Record, pageIdx uint64, block int, fullMask uint64) dcache.AllocDecision {
	bit := uint64(1) << block

	// Singleton correction: was this page bypassed before with a
	// different offset?
	var correctedKey stEntry
	corrected := false
	if p.cfg.SingletonOpt {
		if pc, off, ok := p.st.Check(pageIdx, block); ok {
			p.extra.STCorrections++
			correctedKey = stEntry{pc: pc, offset: off}
			corrected = true
		}
	}

	footprint, ptr, known := p.fht.Predict(rec.PC, block)
	if !known {
		p.extra.FHTCold++
		ptr = p.fht.Allocate(rec.PC, block, bit)
		footprint = 0
	}
	footprint |= bit // the demanded block is always fetched

	if corrected {
		// Re-key learning to the instruction that first (wrongly)
		// classified the page as singleton: fetch its block too and
		// point feedback at its FHT entry (§4.4).
		footprint |= 1 << correctedKey.offset
		ptr = p.fht.Allocate(correctedKey.pc, correctedKey.offset, footprint)
	} else if p.cfg.SingletonOpt && known && popcount(footprint) == 1 {
		// Predicted singleton: do not allocate; note the bypass in the
		// ST so a second touch can correct it (§4.4).
		p.extra.SingletonBypasses++
		p.st.Note(pageIdx, rec.PC, block)
		return dcache.AllocDecision{Bypass: true, FHTPtr: dcache.NoFHTPtr}
	}

	return dcache.AllocDecision{Footprint: footprint, FHTPtr: int32(ptr)}
}

// OnBlockMiss implements dcache.AllocPolicy: a resident page whose
// block was not fetched is the predictor's per-block miss cost
// (§3.1).
func (p *FootprintPolicy) OnBlockMiss(memtrace.Record) {
	p.extra.UnderpredMisses++
}

// OnEvict implements dcache.AllocPolicy: accuracy accounting (Fig. 8)
// and FHT feedback through the pointer planted at allocation.
func (p *FootprintPolicy) OnEvict(meta *dcache.PageMeta) {
	demanded := meta.Demanded
	p.extra.CoveredBlocks += uint64(popcount(demanded & meta.Predicted))
	p.extra.UnderBlocks += uint64(popcount(demanded &^ meta.Predicted))
	p.extra.OverBlocks += uint64(popcount(meta.Predicted &^ demanded))
	if p.cfg.Feedback == FeedbackUnion {
		p.fht.UpdateUnion(Ptr(meta.FHTPtr), demanded)
	} else {
		p.fht.Update(Ptr(meta.FHTPtr), demanded)
	}
}

// MetaBitsPerPage implements dcache.AllocPolicy: the two Table 2
// vectors plus the FHT pointer.
func (p *FootprintPolicy) MetaBitsPerPage(blocksPerPage int) int {
	return 2*blocksPerPage + lruBits(p.cfg.FHTEntries)
}

// TableBits implements dcache.AllocPolicy: the FHT and ST budgets
// (144KB + 3KB at the paper's configuration).
func (p *FootprintPolicy) TableBits(blocksPerPage int) int64 {
	fhtBits := int64(p.cfg.FHTEntries) * int64(40+blocksPerPage)
	stBits := int64(p.cfg.STEntries) * 48
	return fhtBits + stBits
}
