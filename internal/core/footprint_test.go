package core

import (
	"math/rand"
	"testing"

	"fpcache/internal/dcache"
	"fpcache/internal/memtrace"
)

// testConfig: 1MB cache, 2KB pages, 16 ways, small FHT/ST, singleton
// optimization on.
func testConfig() Config {
	cfg := Default(1 << 20)
	cfg.TagCycles = 9
	cfg.FHTEntries = 1024
	cfg.FHTWays = 8
	cfg.STEntries = 64
	cfg.STWays = 4
	return cfg
}

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func read(pc memtrace.PC, addr memtrace.Addr) memtrace.Record {
	return memtrace.Record{PC: pc, Addr: addr}
}

func write(pc memtrace.PC, addr memtrace.Addr) memtrace.Record {
	return memtrace.Record{PC: pc, Addr: addr, Write: true}
}

func access(t *testing.T, c *Cache, rec memtrace.Record) dcache.Outcome {
	t.Helper()
	out := c.Access(rec, nil)
	if err := dcache.ValidateOps(out.Ops); err != nil {
		t.Fatalf("invalid ops: %v", err)
	}
	return out
}

// floodSet evicts everything in page 0's set by touching two blocks
// of each of pages [from..to] at the given stride. Two blocks keep
// the dummy visits from being classified as singletons (which would
// bypass allocation and defeat the flood).
func floodSet(t *testing.T, c *Cache, from, to int, pageStride memtrace.Addr) {
	t.Helper()
	for i := from; i <= to; i++ {
		base := memtrace.Addr(i) * pageStride
		access(t, c, read(0x500000, base))
		access(t, c, read(0x500000, base+64))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.FHTEntries = 10
	if _, err := New(bad); err == nil {
		t.Fatal("bad FHT geometry accepted")
	}
	bad = testConfig()
	bad.STEntries = 3
	if _, err := New(bad); err == nil {
		t.Fatal("bad ST geometry accepted")
	}
	bad = testConfig()
	bad.Geometry.PageBytes = 100
	if _, err := New(bad); err == nil {
		t.Fatal("bad page size accepted")
	}
}

func TestColdMissFetchesDemandedBlockOnly(t *testing.T) {
	c := mustCache(t, testConfig())
	out := access(t, c, read(0x400000, 0x10040))
	if out.Hit || out.Bypass {
		t.Fatalf("cold miss outcome: %+v", out)
	}
	var offBytes int
	for _, op := range out.Ops {
		if op.Level == dcache.OffChip {
			offBytes += op.Bytes
		}
	}
	if offBytes != 64 {
		t.Fatalf("cold (unknown footprint) miss fetched %d bytes, want 64", offBytes)
	}
	if c.Extra().FHTCold != 1 {
		t.Fatal("cold miss not counted")
	}
}

func TestLearnedFootprintPrefetched(t *testing.T) {
	cfg := testConfig()
	cfg.SingletonOpt = false
	c := mustCache(t, cfg)
	pc := memtrace.PC(0x400100)
	sets := c.sets
	pageStride := memtrace.Addr(2048 * sets) // same set, different tag

	// Visit page 0 with a 4-block footprint starting at block 2.
	for b := 2; b < 6; b++ {
		access(t, c, read(pc, memtrace.Addr(b*64)))
	}
	// Evict page 0 by filling its set (dummy pages from other PCs).
	for i := 1; i <= 16; i++ {
		access(t, c, read(0x500000, memtrace.Addr(i)*pageStride))
	}
	// Re-trigger the same (PC, offset) on a fresh page: the learned
	// 4-block footprint must be fetched at once.
	out := access(t, c, read(pc, memtrace.Addr(17)*pageStride+2*64))
	var offBytes int
	for _, op := range out.Ops {
		if op.Level == dcache.OffChip {
			offBytes += op.Bytes
		}
	}
	if offBytes != 4*64 {
		t.Fatalf("predicted fetch = %d bytes, want %d", offBytes, 4*64)
	}
	// The prefetched blocks now hit without further misses.
	for b := 3; b < 6; b++ {
		out := access(t, c, read(pc, memtrace.Addr(17)*pageStride+memtrace.Addr(b*64)))
		if !out.Hit {
			t.Fatalf("prefetched block %d missed", b)
		}
	}
}

func TestUnderpredictionFetchesSingleBlock(t *testing.T) {
	c := mustCache(t, testConfig())
	access(t, c, read(0x400000, 0)) // page resident with block 0 only
	out := access(t, c, read(0x400000, 8*64))
	if out.Hit || out.Bypass {
		t.Fatalf("unpredicted block outcome: %+v", out)
	}
	if c.Extra().UnderpredMisses != 1 {
		t.Fatalf("underpred misses = %d", c.Extra().UnderpredMisses)
	}
	// Block is now demanded and hits.
	if !access(t, c, read(0x400000, 8*64)).Hit {
		t.Fatal("fetched block missed")
	}
}

func TestWriteMissCarriesData(t *testing.T) {
	c := mustCache(t, testConfig())
	out := access(t, c, write(0x400000, 0x20000))
	for _, op := range out.Ops {
		if op.Level == dcache.OffChip && !op.Write {
			t.Fatalf("write miss read from memory: %+v", op)
		}
		if op.Critical {
			t.Fatalf("write miss has critical op: %+v", op)
		}
	}
}

func TestSingletonBypassAndCorrection(t *testing.T) {
	c := mustCache(t, testConfig())
	pc := memtrace.PC(0x400800)
	sets := c.sets
	pageStride := memtrace.Addr(2048 * sets)

	// Teach the FHT that this (PC, offset) is a singleton: visit a
	// page, touch one block, evict.
	access(t, c, read(pc, 0))
	floodSet(t, c, 1, 16, pageStride)

	// Next trigger from the same key: predicted singleton, bypassed.
	// (The flood itself performs one learning bypass+correction cycle,
	// so assert on deltas.)
	pre := c.Extra()
	out := access(t, c, read(pc, memtrace.Addr(17)*pageStride))
	if !out.Bypass {
		t.Fatalf("predicted singleton not bypassed: %+v", out)
	}
	if got := c.Extra().SingletonBypasses - pre.SingletonBypasses; got != 1 {
		t.Fatalf("bypass delta = %d", got)
	}
	if len(out.Ops) != 1 || out.Ops[0].Level != dcache.OffChip || out.Ops[0].Bytes != 64 {
		t.Fatalf("bypass ops: %+v", out.Ops)
	}

	// A second access to the bypassed page with a different offset is
	// the ST-correction path: the page must now be allocated.
	out = access(t, c, read(0x400900, memtrace.Addr(17)*pageStride+5*64))
	if out.Bypass {
		t.Fatal("second access to bypassed page bypassed again")
	}
	if got := c.Extra().STCorrections - pre.STCorrections; got != 1 {
		t.Fatalf("ST correction delta = %d", got)
	}
	// Both the original singleton block and the new one were fetched.
	if !access(t, c, read(0x400900, memtrace.Addr(17)*pageStride)).Hit {
		t.Fatal("ST-corrected original block not fetched")
	}
}

func TestSingletonOptDisabledAllocates(t *testing.T) {
	cfg := testConfig()
	cfg.SingletonOpt = false
	c := mustCache(t, cfg)
	pc := memtrace.PC(0x400800)
	sets := c.sets
	pageStride := memtrace.Addr(2048 * sets)
	access(t, c, read(pc, 0))
	floodSet(t, c, 1, 16, pageStride)
	out := access(t, c, read(pc, memtrace.Addr(17)*pageStride))
	if out.Bypass {
		t.Fatal("bypass happened with optimization disabled")
	}
	if c.Extra().SingletonBypasses != 0 {
		t.Fatal("bypass counted with optimization disabled")
	}
}

func TestEvictionFeedbackAccuracyCounters(t *testing.T) {
	cfg := testConfig()
	cfg.SingletonOpt = false
	c := mustCache(t, cfg)
	pc := memtrace.PC(0x400100)
	sets := c.sets
	pageStride := memtrace.Addr(2048 * sets)

	// Learn footprint {0,1}; revisit touches {0,2}: at the second
	// eviction covered=1 (block 0), under=1 (block 2), over=1 (block 1).
	access(t, c, read(pc, 0))
	access(t, c, read(pc, 64))
	for i := 1; i <= 16; i++ {
		access(t, c, read(0x500000, memtrace.Addr(i)*pageStride))
	}
	pre := c.Extra()
	access(t, c, read(pc, memtrace.Addr(17)*pageStride))      // trigger: predicts {0,1}
	access(t, c, read(pc, memtrace.Addr(17)*pageStride+2*64)) // underpred block 2
	for i := 18; i <= 34; i++ {
		access(t, c, read(0x500000, memtrace.Addr(i)*pageStride))
	}
	post := c.Extra().Sub(pre)
	if post.CoveredBlocks < 1 || post.UnderBlocks < 1 || post.OverBlocks < 1 {
		t.Fatalf("accuracy counters: %+v", post)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := mustCache(t, testConfig())
	sets := c.sets
	pageStride := memtrace.Addr(2048 * sets)
	access(t, c, write(0x400000, 0))
	floodSet(t, c, 1, 17, pageStride)
	if c.Counters().PageEvicts == 0 {
		t.Fatal("flood failed to evict")
	}
	if c.Counters().DirtyEvicts == 0 {
		t.Fatal("dirty eviction not counted")
	}
}

func TestDensityObserver(t *testing.T) {
	c := mustCache(t, testConfig())
	var got []int
	c.OnEvict = func(d, blocks int) { got = append(got, d) }
	sets := c.sets
	pageStride := memtrace.Addr(2048 * sets)
	access(t, c, read(0x400000, 0))
	access(t, c, read(0x400000, 64))
	floodSet(t, c, 1, 17, pageStride)
	if len(got) == 0 || got[0] != 2 {
		t.Fatalf("densities = %v, want first=2", got)
	}
}

func TestMetadataBudgetMatchesTable4(t *testing.T) {
	// Paper Table 4: 64MB Footprint tags = 0.40MB (we include the FHT
	// and ST in the budget, so allow a little headroom).
	cfg := Default(64 << 20)
	mb := float64(MetadataBits(cfg)) / 8 / (1 << 20)
	if mb < 0.35 || mb > 0.60 {
		t.Fatalf("64MB footprint metadata = %.3fMB, want ~0.40-0.55MB", mb)
	}
	// 512MB = 3.12MB in the paper.
	cfg = Default(512 << 20)
	mb = float64(MetadataBits(cfg)) / 8 / (1 << 20)
	if mb < 2.8 || mb > 3.5 {
		t.Fatalf("512MB footprint metadata = %.2fMB, want ~3.12MB", mb)
	}
}

func TestCountersConsistentUnderRandomTraffic(t *testing.T) {
	c := mustCache(t, testConfig())
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200000; i++ {
		rec := memtrace.Record{
			PC:    memtrace.PC(0x400000 + rng.Intn(128)*4),
			Addr:  memtrace.Addr(rng.Intn(1<<22) * 64),
			Write: rng.Intn(3) == 0,
		}
		out := c.Access(rec, nil)
		if err := dcache.ValidateOps(out.Ops); err != nil {
			t.Fatalf("ref %d: %v", i, err)
		}
	}
	ctr := c.Counters()
	if ctr.Hits+ctr.Misses != ctr.Accesses() {
		t.Fatalf("hits+misses != accesses: %+v", ctr)
	}
	if ctr.Bypasses > ctr.Misses {
		t.Fatalf("bypasses exceed misses: %+v", ctr)
	}
	ex := c.Extra()
	if ex.UnderpredMisses+ex.SingletonBypasses+ex.FHTCold > ctr.Misses {
		t.Fatalf("miss decomposition exceeds misses: %+v vs %d", ex, ctr.Misses)
	}
	q, cold, upd := c.FHTStats()
	if cold > q {
		t.Fatalf("FHT cold %d > queries %d", cold, q)
	}
	if upd == 0 {
		t.Fatal("FHT never updated despite evictions")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() dcache.Counters {
		c := mustCache(t, testConfig())
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 50000; i++ {
			c.Access(memtrace.Record{
				PC:    memtrace.PC(0x400000 + rng.Intn(64)*4),
				Addr:  memtrace.Addr(rng.Intn(1<<20) * 64),
				Write: rng.Intn(4) == 0,
			}, nil)
		}
		return c.Counters()
	}
	if run() != run() {
		t.Fatal("identical traces produced different counters")
	}
}

func TestFeedbackUnionGrowsFootprints(t *testing.T) {
	// With union feedback, a key that alternates between two
	// footprints converges to their union; with replace it keeps
	// flipping. Drive both configurations through the same sequence
	// and compare the third-round fetch size.
	run := func(policy FeedbackPolicy) int {
		cfg := testConfig()
		cfg.SingletonOpt = false
		cfg.Feedback = policy
		c := mustCache(t, cfg)
		pc := memtrace.PC(0x400100)
		sets := c.sets
		pageStride := memtrace.Addr(2048 * sets)
		// Round 1 on page A: blocks {0,1}. Round 2 on page B: {0,2}.
		access(t, c, read(pc, 0))
		access(t, c, read(pc, 64))
		floodSet(t, c, 1, 16, pageStride)
		access(t, c, read(pc, memtrace.Addr(17)*pageStride))
		access(t, c, read(pc, memtrace.Addr(17)*pageStride+2*64))
		floodSet(t, c, 18, 34, pageStride)
		// Round 3: count fetched bytes.
		out := access(t, c, read(pc, memtrace.Addr(35)*pageStride))
		bytes := 0
		for _, op := range out.Ops {
			if op.Level == dcache.OffChip {
				bytes += op.Bytes
			}
		}
		return bytes
	}
	union := run(FeedbackUnion)
	replace := run(FeedbackReplace)
	if union <= replace {
		t.Fatalf("union fetch %dB not above replace %dB", union, replace)
	}
	if union != 3*64 { // {0,1,2}
		t.Fatalf("union fetch = %dB, want 192", union)
	}
}

func TestFeedbackPolicyString(t *testing.T) {
	if FeedbackReplace.String() != "replace" || FeedbackUnion.String() != "union" {
		t.Fatal("FeedbackPolicy.String wrong")
	}
}

func TestNameAndInterface(t *testing.T) {
	var d dcache.Design = mustCache(t, testConfig())
	if d.Name() != "footprint" {
		t.Fatalf("Name = %q", d.Name())
	}
}
