package cpu

import (
	"testing"

	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
)

// none is the empty payload the cpu tests thread through.
type none = struct{}

// fixedTrace returns a pull function over the given records.
func fixedTrace(recs []memtrace.Record) PullFn[none] {
	i := 0
	return func() (memtrace.Record, none, bool) {
		if i >= len(recs) {
			return memtrace.Record{}, none{}, false
		}
		r := recs[i]
		i++
		return r, none{}, true
	}
}

func TestCoreExecutesGapsAndIssues(t *testing.T) {
	eng := &sim.Engine{}
	recs := []memtrace.Record{
		{Addr: 0, Gap: 10},
		{Addr: 64, Gap: 20},
	}
	var issued []sim.Cycle
	// Memory responds instantly.
	issue := func(rec memtrace.Record, _ none, done func()) {
		issued = append(issued, eng.Now())
		done()
	}
	c := New(0, 2, eng, fixedTrace(recs), issue)
	c.Start()
	eng.Run(nil)
	if !c.Finished() {
		t.Fatal("core did not finish")
	}
	if c.Instructions != 10+1+20+1 {
		t.Fatalf("instructions = %d", c.Instructions)
	}
	if len(issued) != 2 {
		t.Fatalf("issued %d requests", len(issued))
	}
	if issued[0] != 10 || issued[1] != 30 {
		t.Fatalf("issue times = %v, want [10 30]", issued)
	}
}

func TestCoreMLPBoundsOutstandingReads(t *testing.T) {
	eng := &sim.Engine{}
	const mlp = 2
	var recs []memtrace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, memtrace.Record{Addr: memtrace.Addr(i * 64), Gap: 1})
	}
	outstanding, peak := 0, 0
	issue := func(rec memtrace.Record, _ none, done func()) {
		outstanding++
		if outstanding > peak {
			peak = outstanding
		}
		// Slow memory: respond after 100 cycles.
		eng.After(100, func() {
			outstanding--
			done()
		})
	}
	c := New(0, mlp, eng, fixedTrace(recs), issue)
	c.Start()
	eng.Run(nil)
	if peak > mlp {
		t.Fatalf("peak outstanding %d exceeds MLP %d", peak, mlp)
	}
	if c.StallCycles == 0 {
		t.Fatal("no stalls despite slow memory and small window")
	}
	if !c.Finished() {
		t.Fatal("core did not finish")
	}
}

func TestCoreWritesArePosted(t *testing.T) {
	eng := &sim.Engine{}
	var recs []memtrace.Record
	for i := 0; i < 8; i++ {
		recs = append(recs, memtrace.Record{Addr: memtrace.Addr(i * 64), Gap: 1, Write: true})
	}
	issued := 0
	issue := func(rec memtrace.Record, _ none, done func()) {
		issued++
		// Never call done for writes beyond the immediate ack: the
		// core shouldn't care.
		done()
	}
	c := New(0, 1, eng, fixedTrace(recs), issue)
	c.Start()
	eng.Run(nil)
	if issued != 8 {
		t.Fatalf("issued %d writes", issued)
	}
	if c.StallCycles != 0 {
		t.Fatalf("writes stalled the core: %d cycles", c.StallCycles)
	}
}

func TestCoreMinimumMLP(t *testing.T) {
	eng := &sim.Engine{}
	c := New(0, 0, eng, fixedTrace(nil), func(memtrace.Record, none, func()) {})
	if c.mlp != 1 {
		t.Fatalf("mlp clamped to %d, want 1", c.mlp)
	}
}

func TestCoreDoubleCompletionPanics(t *testing.T) {
	eng := &sim.Engine{}
	var doneFn func()
	issue := func(rec memtrace.Record, _ none, done func()) { doneFn = done }
	c := New(0, 2, eng, fixedTrace([]memtrace.Record{{Gap: 1}}), issue)
	c.Start()
	eng.Run(nil)
	doneFn()
	defer func() {
		if recover() == nil {
			t.Fatal("double completion did not panic")
		}
	}()
	doneFn()
	eng.Run(nil)
	c.onComplete()
}
