// Package cpu models the cores of one scale-out pod for trace-driven
// timing simulation.
//
// Each core replays its shard of the L2-miss trace: between memory
// requests it executes the record's Gap of non-memory instructions at
// a base IPC of 1 (a lean 3-way OoO core, Table 3), and it may keep a
// bounded number of memory reads outstanding (its memory-level
// parallelism). Reads occupy an MLP slot until their critical DRAM
// operations complete; writes are posted L2 writebacks and do not
// stall the core. The performance metric is the paper's (§5.4):
// aggregate committed instructions over total cycles.
//
// Core is generic over a payload the trace source attaches to each
// record (e.g. the functionally precomputed outcome in the timing
// runner): the payload travels from pull to issue with its record, so
// the association is structural rather than resting on call-ordering
// side channels.
package cpu

import (
	"fpcache/internal/memtrace"
	"fpcache/internal/sim"
)

// IssueFn dispatches a memory request into the memory system,
// together with the payload its pull attached; it must eventually
// call done exactly once for reads (writes may complete immediately).
type IssueFn[P any] func(rec memtrace.Record, payload P, done func())

// PullFn supplies a core's next trace record plus its payload.
type PullFn[P any] func() (memtrace.Record, P, bool)

// Core is one trace-driven core.
type Core[P any] struct {
	id  int
	mlp int
	eng *sim.Engine

	pull  PullFn[P]
	issue IssueFn[P]

	hasPending  bool
	pendRec     memtrace.Record
	pendPayload P
	readyAt     sim.Cycle
	outstanding int
	stalled     bool
	finished    bool

	// Instructions counts committed instructions (gap + the memory
	// instruction itself per record).
	Instructions uint64
	// StallCycles accumulates time spent with a ready request blocked
	// on a full MLP window.
	StallCycles  uint64
	stalledSince sim.Cycle
	// LastIssue records the time of the core's last activity, used as
	// its completion time.
	LastIssue sim.Cycle
}

// New builds a core. pull supplies the core's trace shard; issue
// injects requests into the memory system.
func New[P any](id, mlp int, eng *sim.Engine, pull PullFn[P], issue IssueFn[P]) *Core[P] {
	if mlp < 1 {
		mlp = 1
	}
	return &Core[P]{id: id, mlp: mlp, eng: eng, pull: pull, issue: issue}
}

// Start schedules the core's first issue. Call once.
func (c *Core[P]) Start() {
	c.eng.Schedule(c.eng.Now(), c.step)
}

// Finished reports whether the core exhausted its trace.
func (c *Core[P]) Finished() bool { return c.finished }

// step advances the core: fetch the next record if needed, wait out
// its compute gap, then issue when an MLP slot is free.
func (c *Core[P]) step() {
	if !c.hasPending {
		rec, payload, ok := c.pull()
		if !ok {
			c.finished = true
			return
		}
		c.pendRec, c.pendPayload, c.hasPending = rec, payload, true
		c.readyAt = c.eng.Now() + sim.Cycle(rec.Gap) // base IPC 1.0
	}
	now := c.eng.Now()
	if now < c.readyAt {
		c.eng.Schedule(c.readyAt, c.step)
		return
	}
	if !c.pendRec.Write && c.outstanding >= c.mlp {
		// Window full: wait for a completion.
		if !c.stalled {
			c.stalled = true
			c.stalledSince = now
		}
		return
	}
	rec, payload := c.pendRec, c.pendPayload
	c.hasPending = false
	var zero P
	c.pendPayload = zero
	c.Instructions += uint64(rec.Gap) + 1
	c.LastIssue = now
	if rec.Write {
		// Posted writeback: consumes bandwidth, not an MLP slot.
		c.issue(rec, payload, func() {})
	} else {
		c.outstanding++
		c.issue(rec, payload, c.onComplete)
	}
	// Pipeline: move straight to the next record's gap.
	c.eng.Schedule(now, c.step)
}

// onComplete returns an MLP slot and unblocks a stalled core.
func (c *Core[P]) onComplete() {
	c.outstanding--
	if c.outstanding < 0 {
		panic("cpu: negative outstanding count (done called twice?)")
	}
	if c.stalled {
		c.stalled = false
		c.StallCycles += uint64(c.eng.Now() - c.stalledSince)
		c.eng.Schedule(c.eng.Now(), c.step)
	}
}
