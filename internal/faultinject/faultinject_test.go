package faultinject

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"fpcache/internal/fault"
)

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"point",                       // no action
		"disk:flipbit:offset=1",       // unknown site
		"point:explode",               // unknown action
		"point:flipbit:offset=1",      // I/O action on point site
		"snapshot-read:panic",         // point action on I/O site
		"point:transient:fails=x",     // non-numeric value
		"point:transient:bogus=1",     // unknown param
		"snapshot-read:flipbit:bit=9", // bit out of range
		"point:sleep:ms",              // param without value
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded", spec)
		}
	}
	in, err := Parse(" ; ")
	if err != nil || in.Active() {
		t.Fatalf("empty spec: %v active=%v", err, in.Active())
	}
}

func TestPointTransientSchedule(t *testing.T) {
	// The schedule is per (sweep, point) attempt: the first two
	// attempts of point 3 fail retryably, the third succeeds, and
	// every other point is untouched — regardless of call order.
	in, err := Parse("point:transient:point=3,fails=2")
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Point(0, 1); err != nil {
		t.Fatalf("unfaulted point errored: %v", err)
	}
	for attempt := 1; attempt <= 3; attempt++ {
		err := in.Point(0, 3)
		if attempt <= 2 {
			if !errors.Is(err, fault.ErrTransientIO) {
				t.Fatalf("attempt %d: %v, want transient", attempt, err)
			}
		} else if err != nil {
			t.Fatalf("attempt %d should have recovered: %v", attempt, err)
		}
	}
}

func TestPointSweepSelector(t *testing.T) {
	in, err := Parse("point:error:sweep=1,point=0")
	if err != nil {
		t.Fatal(err)
	}
	if s := in.NextSweep(); s != 0 {
		t.Fatalf("first sweep ordinal %d", s)
	}
	if err := in.Point(0, 0); err != nil {
		t.Fatalf("sweep 0 faulted: %v", err)
	}
	if err := in.Point(1, 0); err == nil || fault.Retryable(err) {
		t.Fatalf("sweep 1 point 0: %v, want permanent error", err)
	}
}

func TestPointPanic(t *testing.T) {
	in, err := Parse("point:panic:point=2")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	in.Point(0, 2)
}

func TestReaderFlipBit(t *testing.T) {
	in, err := Parse("snapshot-read:flipbit:offset=5,bit=3")
	if err != nil {
		t.Fatal(err)
	}
	src := []byte("0123456789")
	got, rerr := io.ReadAll(in.Reader(SiteSnapshotRead, bytes.NewReader(src)))
	if rerr != nil {
		t.Fatal(rerr)
	}
	want := append([]byte(nil), src...)
	want[5] ^= 1 << 3
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	// Other sites pass through unwrapped.
	if r := in.Reader(SiteTraceRead, bytes.NewReader(src)); r != io.Reader(bytes.NewReader(src)) {
		if _, ok := r.(*bytes.Reader); !ok {
			t.Fatalf("unfaulted site got wrapped: %T", r)
		}
	}
}

func TestReaderFlipBitAcrossSmallReads(t *testing.T) {
	in, err := Parse("trace-read:flipbit:offset=7,bit=0")
	if err != nil {
		t.Fatal(err)
	}
	r := in.Reader(SiteTraceRead, bytes.NewReader([]byte("abcdefghij")))
	var got []byte
	buf := make([]byte, 3) // the fault offset lands mid-buffer
	for {
		n, rerr := r.Read(buf)
		got = append(got, buf[:n]...)
		if rerr != nil {
			break
		}
	}
	want := []byte("abcdefghij")
	want[7] ^= 1
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestReaderTruncate(t *testing.T) {
	in, err := Parse("snapshot-read:truncate:at=4")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(in.Reader(SiteSnapshotRead, strings.NewReader("0123456789")))
	if string(got) != "0123" {
		t.Fatalf("got %q", got)
	}
}

func TestReaderTransientRecoversByOrdinal(t *testing.T) {
	in, err := Parse("snapshot-read:transient:fails=2")
	if err != nil {
		t.Fatal(err)
	}
	for ordinal := 0; ordinal < 3; ordinal++ {
		_, rerr := io.ReadAll(in.Reader(SiteSnapshotRead, strings.NewReader("data")))
		if ordinal < 2 {
			if !errors.Is(rerr, fault.ErrTransientIO) {
				t.Fatalf("stream %d: %v, want transient", ordinal, rerr)
			}
		} else if rerr != nil {
			t.Fatalf("stream %d should have recovered: %v", ordinal, rerr)
		}
	}
}

func TestWriterFlipBitAndTornWrite(t *testing.T) {
	in, err := Parse("snapshot-write:flipbit:offset=1,bit=7;snapshot-write:truncate:at=6")
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	w := in.Writer(SiteSnapshotWrite, &sink)
	n, werr := w.Write([]byte("0123456789"))
	if werr != nil || n != 10 {
		t.Fatalf("torn write must report success: n=%d err=%v", n, werr)
	}
	want := []byte("012345")
	want[1] ^= 1 << 7
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("landed %q want %q", sink.Bytes(), want)
	}
}

func TestReadSeekerFaultsAtAbsoluteOffsets(t *testing.T) {
	in, err := Parse("trace-read:flipbit:offset=8,bit=1")
	if err != nil {
		t.Fatal(err)
	}
	rs := in.ReadSeeker(SiteTraceRead, bytes.NewReader([]byte("0123456789abcdef")))
	if _, err := rs.Seek(6, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := io.ReadFull(rs, got); err != nil {
		t.Fatal(err)
	}
	want := []byte("6789")
	want[2] ^= 1 << 1 // absolute offset 8
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
	// Re-reading the same range hits the same corruption.
	if _, err := rs.Seek(8, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 1)
	if _, err := io.ReadFull(rs, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != '8'^(1<<1) {
		t.Fatalf("seeked re-read got %q", b)
	}
}
