// End-to-end fault-injection matrix: every fault class the harness can
// schedule is driven through a real experiment sweep and must land in
// exactly one of the tolerated outcomes — retried to success with rows
// byte-identical to a clean run, degraded with a failure report, or
// quarantined with a cold-warmup fallback — and never crash the sweep.
//
// The test lives in the external package so it can import experiments
// (which imports faultinject) without a cycle. Trace-read stream faults
// have no path through the synthetic-generator experiments; they are
// covered by the unit tests in faultinject_test.go and wired into fpsim.
package faultinject_test

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"fpcache/internal/experiments"
	"fpcache/internal/fault"
	"fpcache/internal/faultinject"
	"fpcache/internal/testutil"
)

// matrixOptions is the small-but-real experiment configuration the
// matrix runs: one workload, two capacities (figure4 sweeps the grid,
// so two sweep points), a few thousand references.
func matrixOptions(workers int) experiments.Options {
	return experiments.Options{
		Scale:      1.0 / 64,
		Refs:       3_000,
		WarmupRefs: 2_000,
		TimingRefs: 500,
		Seed:       7,
		Workloads:  []string{"web-search"},
		Capacities: []int{64, 128},
		Workers:    workers,
	}
}

func mustParse(t *testing.T, spec string) *faultinject.Injector {
	t.Helper()
	inj, err := faultinject.Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return inj
}

// rawRows marshals an experiment's typed rows to a JSON array so tests
// can compare whole runs (and individual points) byte for byte without
// knowing the row type.
func rawRows(t *testing.T, rows any) []json.RawMessage {
	t.Helper()
	buf, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	var raw []json.RawMessage
	if err := json.Unmarshal(buf, &raw); err != nil {
		t.Fatalf("rows %s: %v", buf, err)
	}
	return raw
}

// TestPointFaultMatrix drives every point-site fault class through
// figure4's sweep and checks its disposition.
func TestPointFaultMatrix(t *testing.T) {
	clean, err := experiments.Rows("figure4", matrixOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	cleanRows := rawRows(t, clean)
	if len(cleanRows) != 2 {
		t.Fatalf("expected 2 clean rows, got %d", len(cleanRows))
	}

	cases := []struct {
		name string
		spec string
		tune func(o *experiments.Options)
		// wantErr: the experiment as a whole fails (still no crash).
		wantErr bool
		// wantFailures: (disposition, class) of every expected report
		// entry, in report order.
		wantFailures [][2]string
		// sameRows lists clean-row indices that must still match byte
		// for byte (-1 entries are degraded to the zero row).
		sameRows []int
	}{
		{
			name: "transient-retried-to-success",
			spec: "point:transient:fails=2",
			tune: func(o *experiments.Options) { o.MaxAttempts = 3 },
			wantFailures: [][2]string{
				{experiments.DispositionRetried, string(fault.ClassNone)},
				{experiments.DispositionRetried, string(fault.ClassNone)},
			},
			sameRows: []int{0, 1},
		},
		{
			name: "transient-budget-exhausted",
			spec: "point:transient:fails=5",
			tune: func(o *experiments.Options) { o.MaxAttempts = 2; o.Tolerate = true },
			wantFailures: [][2]string{
				{experiments.DispositionDegraded, string(fault.ClassTransientIO)},
				{experiments.DispositionDegraded, string(fault.ClassTransientIO)},
			},
		},
		{
			name: "panic-isolated-and-degraded",
			spec: "point:panic:point=0",
			tune: func(o *experiments.Options) { o.Tolerate = true },
			wantFailures: [][2]string{
				{experiments.DispositionDegraded, string(fault.ClassPanic)},
			},
			sameRows: []int{1},
		},
		{
			name: "permanent-error-degraded",
			spec: "point:error:point=1",
			tune: func(o *experiments.Options) { o.Tolerate = true },
			wantFailures: [][2]string{
				{experiments.DispositionDegraded, string(fault.ClassUnknown)},
			},
			sameRows: []int{0},
		},
		{
			name: "timeout-degraded",
			spec: "point:sleep:ms=500",
			tune: func(o *experiments.Options) { o.PointTimeout = 25 * time.Millisecond; o.Tolerate = true },
			wantFailures: [][2]string{
				{experiments.DispositionDegraded, string(fault.ClassTimeout)},
				{experiments.DispositionDegraded, string(fault.ClassTimeout)},
			},
		},
		{
			name:    "permanent-error-not-tolerated",
			spec:    "point:error:point=0",
			wantErr: true,
			wantFailures: [][2]string{
				{experiments.DispositionDegraded, string(fault.ClassUnknown)},
			},
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			o := matrixOptions(2)
			o.Injector = mustParse(t, tc.spec)
			if tc.tune != nil {
				tc.tune(&o)
			}
			rows, rep, err := experiments.RowsWithReport("figure4", o)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected the experiment to fail")
				}
			} else if err != nil {
				t.Fatalf("RowsWithReport: %v", err)
			}
			if len(rep.Failures) != len(tc.wantFailures) {
				t.Fatalf("got %d failures, want %d: %s", len(rep.Failures), len(tc.wantFailures), testutil.AsJSON(t, rep))
			}
			for i, want := range tc.wantFailures {
				f := rep.Failures[i]
				if f.Disposition != want[0] || string(f.Class) != want[1] {
					t.Errorf("failure %d: disposition=%q class=%q, want %q/%q (%s)",
						i, f.Disposition, f.Class, want[0], want[1], testutil.AsJSON(t, f))
				}
				if f.Attempts < 1 {
					t.Errorf("failure %d: attempts=%d", i, f.Attempts)
				}
				if f.Disposition == experiments.DispositionDegraded && f.Error == "" {
					t.Errorf("failure %d: degraded without an error message", i)
				}
				if !strings.HasPrefix(f.Point, "sweep") {
					t.Errorf("failure %d: point key %q lacks a sweep/point identity", i, f.Point)
				}
			}
			if err != nil {
				return // no rows to compare on a failed experiment
			}
			got := rawRows(t, rows)
			for _, idx := range tc.sameRows {
				if string(got[idx]) != string(cleanRows[idx]) {
					t.Errorf("row %d diverged from the clean run\nclean:   %s\nfaulted: %s", idx, cleanRows[idx], got[idx])
				}
			}
		})
	}
}

// figure9Options configures the warm-state-cache experiment (figure9
// sweeps 7 FHT sizes through buildFunctional, which is the cached
// path).
func figure9Options(workers int, dir string) experiments.Options {
	o := matrixOptions(workers)
	o.Capacities = []int{64} // unused by figure9 (fixed 256MB) but keeps grids small
	o.StateCache = dir
	return o
}

// TestSnapshotFaultMatrix drives the warm-state cache's fault classes:
// torn writes, in-flight read corruption, truncation, and transient
// read failures. Corruption must quarantine and fall back to a cold
// warmup with rows byte-identical to a never-cached run; transients
// must retry to success.
func TestSnapshotFaultMatrix(t *testing.T) {
	neverCached, err := experiments.Rows("figure9", matrixOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	want := testutil.AsJSON(t, neverCached)

	// populate runs one clean cached sweep into dir and sanity-checks
	// parity with the never-cached rows.
	populate := func(t *testing.T, dir string) {
		rows, rep, err := experiments.RowsWithReport("figure9", figure9Options(2, dir))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Failures) != 0 {
			t.Fatalf("clean cached run reported failures: %s", testutil.AsJSON(t, rep))
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("cached run diverged from never-cached run\nnever-cached: %s\ncached:       %s", want, got)
		}
	}

	t.Run("torn-write-then-quarantine", func(t *testing.T) {
		dir := t.TempDir()
		// Run 1: every snapshot write is torn at 256 bytes but reports
		// success — the failure a crashed disk or lying write path
		// produces. The run itself computed its state live, so rows are
		// unaffected and nothing is reported yet.
		o := figure9Options(2, dir)
		o.Injector = mustParse(t, "snapshot-write:truncate:at=256")
		rows, rep, err := experiments.RowsWithReport("figure9", o)
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("torn-write run diverged from clean rows")
		}
		if len(rep.Failures) != 0 {
			t.Fatalf("torn writes should be silent until read back: %s", testutil.AsJSON(t, rep))
		}

		// Run 2: every read hits the torn snapshot. All 7 entries must
		// quarantine, every point falls back to a cold warmup, and rows
		// stay byte-identical.
		rows, rep, err = experiments.RowsWithReport("figure9", figure9Options(2, dir))
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("quarantine fallback diverged from never-cached rows\nwant: %s\ngot:  %s", want, testutil.AsJSON(t, rows))
		}
		if len(rep.Failures) != 7 {
			t.Fatalf("expected 7 quarantines, got %s", testutil.AsJSON(t, rep))
		}
		for _, f := range rep.Failures {
			if f.Disposition != experiments.DispositionQuarantined || f.Class != fault.ClassCorruptSnapshot {
				t.Fatalf("unexpected failure: %s", testutil.AsJSON(t, f))
			}
		}

		// Run 3: run 2 re-stored good snapshots; the cache is healthy
		// again.
		rows, rep, err = experiments.RowsWithReport("figure9", figure9Options(2, dir))
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("recovered cache diverged from clean rows")
		}
		if len(rep.Failures) != 0 {
			t.Fatalf("recovered cache still reporting failures: %s", testutil.AsJSON(t, rep))
		}
	})

	t.Run("read-bitflip-quarantine", func(t *testing.T) {
		dir := t.TempDir()
		populate(t, dir)
		o := figure9Options(2, dir)
		// Flip a bit in the envelope header of every read stream:
		// guaranteed detection, whatever the body layout.
		o.Injector = mustParse(t, "snapshot-read:flipbit:offset=3,bit=6")
		rows, rep, err := experiments.RowsWithReport("figure9", o)
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("bitflip fallback diverged from never-cached rows")
		}
		if len(rep.Failures) != 7 {
			t.Fatalf("expected 7 quarantines, got %s", testutil.AsJSON(t, rep))
		}
		for _, f := range rep.Failures {
			if f.Disposition != experiments.DispositionQuarantined || f.Class != fault.ClassCorruptSnapshot {
				t.Fatalf("unexpected failure: %s", testutil.AsJSON(t, f))
			}
		}
	})

	t.Run("read-truncation-quarantine", func(t *testing.T) {
		dir := t.TempDir()
		populate(t, dir)
		o := figure9Options(2, dir)
		o.Injector = mustParse(t, "snapshot-read:truncate:at=300")
		rows, rep, err := experiments.RowsWithReport("figure9", o)
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("truncation fallback diverged from never-cached rows")
		}
		if len(rep.Failures) != 7 {
			t.Fatalf("expected 7 quarantines, got %s", testutil.AsJSON(t, rep))
		}
	})

	t.Run("read-transient-retried", func(t *testing.T) {
		dir := t.TempDir()
		populate(t, dir)
		// Stream ordinals 0 and 1 fail with a retryable error, later
		// opens work — a device that recovers. Serial workers make the
		// open order deterministic: point 0's first two attempts fail,
		// its third succeeds, every later point reads ordinals >= 2.
		o := figure9Options(1, dir)
		o.Injector = mustParse(t, "snapshot-read:transient:fails=2")
		o.MaxAttempts = 3
		rows, rep, err := experiments.RowsWithReport("figure9", o)
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rows); got != want {
			t.Fatalf("transient-retry run diverged from never-cached rows")
		}
		if len(rep.Failures) != 1 {
			t.Fatalf("expected 1 retried point, got %s", testutil.AsJSON(t, rep))
		}
		f := rep.Failures[0]
		if f.Disposition != experiments.DispositionRetried || f.Attempts != 3 {
			t.Fatalf("unexpected failure: %s", testutil.AsJSON(t, f))
		}
	})
}

// TestFaultedSweepDeterminismParity pins the acceptance bar: under the
// same seeded fault spec, rows AND failure reports are byte-identical
// at any worker count.
func TestFaultedSweepDeterminismParity(t *testing.T) {
	type run struct {
		rows   string
		report string
	}
	runFig4 := func(t *testing.T, workers int, spec string, tune func(o *experiments.Options)) run {
		o := matrixOptions(workers)
		o.Injector = mustParse(t, spec)
		if tune != nil {
			tune(&o)
		}
		rows, rep, err := experiments.RowsWithReport("figure4", o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return run{testutil.AsJSON(t, rows), testutil.AsJSON(t, rep)}
	}

	specs := []struct {
		name string
		spec string
		tune func(o *experiments.Options)
	}{
		{"transient-retries", "point:transient:fails=2", func(o *experiments.Options) { o.MaxAttempts = 3 }},
		{"isolated-panic", "point:panic:point=1", func(o *experiments.Options) { o.Tolerate = true }},
		{"permanent-error", "point:error:point=0", func(o *experiments.Options) { o.Tolerate = true }},
	}
	for _, tc := range specs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial := runFig4(t, 1, tc.spec, tc.tune)
			parallel := runFig4(t, 8, tc.spec, tc.tune)
			if serial.rows != parallel.rows {
				t.Errorf("rows diverge across worker counts\n-j1: %s\n-j8: %s", serial.rows, parallel.rows)
			}
			if serial.report != parallel.report {
				t.Errorf("failure reports diverge across worker counts\n-j1: %s\n-j8: %s", serial.report, parallel.report)
			}
		})
	}

	t.Run("quarantine-fallback", func(t *testing.T) {
		// Two identically populated caches, corrupted identically, swept
		// at different worker counts: rows and reports must match. The
		// cache directory path appears in quarantine error messages, so
		// it is normalized out before comparing.
		runQuarantine := func(workers int) run {
			dir := t.TempDir()
			if _, _, err := experiments.RowsWithReport("figure9", figure9Options(2, dir)); err != nil {
				t.Fatal(err)
			}
			o := figure9Options(workers, dir)
			o.Injector = mustParse(t, "snapshot-read:flipbit:offset=3,bit=6")
			rows, rep, err := experiments.RowsWithReport("figure9", o)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return run{testutil.AsJSON(t, rows), strings.ReplaceAll(testutil.AsJSON(t, rep), dir, "<cache>")}
		}
		serial := runQuarantine(1)
		parallel := runQuarantine(4)
		if serial.rows != parallel.rows {
			t.Errorf("quarantine rows diverge across worker counts")
		}
		if serial.report != parallel.report {
			t.Errorf("quarantine reports diverge across worker counts\n-j1: %s\n-j4: %s", serial.report, parallel.report)
		}
	})
}
