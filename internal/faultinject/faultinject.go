// Package faultinject is a deterministic, seedable fault-injection
// harness for sweep execution: it turns a textual fault spec into
// scheduled point failures (panics, transient errors, sleeps) and I/O
// stream corruption (bit flips, truncation, transient read/write
// failures with scheduled recovery). Everything it injects is a pure
// function of the spec and the injection sites' own counters — never
// wall-clock time or math/rand — so a faulted sweep is reproducible
// and its fault-tolerance behavior can be pinned by tests.
//
// The injector stays out of production code paths: internal/system and
// internal/experiments expose plain wrap hooks (WarmCache.WrapReader,
// Options.Injector) that are nil in normal runs.
package faultinject

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"fpcache/internal/fault"
)

// Injection sites. Point faults fire inside a sweep point's job;
// stream faults wrap an I/O stream opened at the named site.
const (
	// SitePoint is the sweep-point job itself.
	SitePoint = "point"
	// SiteSnapshotRead / SiteSnapshotWrite are warm-state cache streams.
	SiteSnapshotRead  = "snapshot-read"
	SiteSnapshotWrite = "snapshot-write"
	// SiteTraceRead is a trace-file read stream.
	SiteTraceRead = "trace-read"
)

// action is what a rule does when it fires.
type action int

const (
	actPanic action = iota
	actTransient
	actSleep
	actError
	actFlipBit
	actTruncate
)

var actionNames = map[string]action{
	"panic":     actPanic,
	"transient": actTransient,
	"sleep":     actSleep,
	"error":     actError,
	"flipbit":   actFlipBit,
	"truncate":  actTruncate,
}

// rule is one parsed clause of a fault spec.
type rule struct {
	site string
	act  action

	// Point-rule selectors: which (sweep, point) the rule fires on;
	// -1 matches any.
	sweep, point int
	// fails bounds how many attempts (point transient) or stream
	// ordinals (I/O transient) fail before recovery.
	fails int
	// ms is the sleep duration for act == actSleep.
	ms int

	// Stream-rule selectors: nth picks one stream ordinal at the site
	// (-1: every stream).
	nth int
	// offset/bit locate the flipped bit; at is the truncation point.
	offset int64
	bit    uint
	at     int64
}

// Injector schedules faults from a parsed spec. All counters are
// mutex-guarded; point-fault scheduling is keyed per (sweep, point)
// attempt, so it is independent of worker interleaving. Stream
// ordinals at an I/O site increment in open order, which is
// deterministic in serial sweeps; parallel sweeps should prefer
// every-stream rules (no nth=, transient without recovery windows that
// straddle workers) when byte-parity across worker counts matters.
type Injector struct {
	mu       sync.Mutex
	rules    []*rule
	attempts map[[2]int]int
	streams  map[string]int
	sweeps   int
}

// Parse compiles a fault spec: semicolon-separated clauses of the form
//
//	site:action[:key=value[,key=value...]]
//
// Sites: point, snapshot-read, snapshot-write, trace-read.
// Point actions (site "point"):
//
//	panic                    panic the job (optionally sweep=/point=)
//	transient[:fails=N]      fail the first N attempts with a retryable
//	                         transient I/O error (default 1), then recover
//	error                    fail every attempt with a permanent error
//	sleep:ms=D               sleep D milliseconds inside the job
//
// Stream actions (I/O sites):
//
//	flipbit:offset=O[,bit=B][,nth=K]   XOR bit B of the byte at stream
//	                                   offset O (corruption in flight)
//	truncate:at=O[,nth=K]              end the stream after O bytes
//	transient[:fails=N]                streams with ordinal < N fail with
//	                                   a retryable error, later ones work
//	                                   (a device that recovers)
//
// Selectors sweep=, point=, and nth= default to matching everything.
// An empty spec yields an injector that injects nothing.
func Parse(spec string) (*Injector, error) {
	in := &Injector{attempts: map[[2]int]int{}, streams: map[string]int{}}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		r, err := parseClause(clause)
		if err != nil {
			return nil, err
		}
		in.rules = append(in.rules, r)
	}
	return in, nil
}

func parseClause(clause string) (*rule, error) {
	parts := strings.SplitN(clause, ":", 3)
	if len(parts) < 2 {
		return nil, fmt.Errorf("faultinject: clause %q: want site:action[:params]", clause)
	}
	site := parts[0]
	switch site {
	case SitePoint, SiteSnapshotRead, SiteSnapshotWrite, SiteTraceRead:
	default:
		return nil, fmt.Errorf("faultinject: unknown site %q in %q", site, clause)
	}
	act, ok := actionNames[parts[1]]
	if !ok {
		return nil, fmt.Errorf("faultinject: unknown action %q in %q", parts[1], clause)
	}
	pointSite := site == SitePoint
	switch act {
	case actPanic, actSleep, actError:
		if !pointSite {
			return nil, fmt.Errorf("faultinject: action %q needs site point in %q", parts[1], clause)
		}
	case actFlipBit, actTruncate:
		if pointSite {
			return nil, fmt.Errorf("faultinject: action %q needs an I/O site in %q", parts[1], clause)
		}
	}
	r := &rule{site: site, act: act, sweep: -1, point: -1, fails: 1, nth: -1}
	if len(parts) == 3 {
		for _, kv := range strings.Split(parts[2], ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: bad param %q in %q", kv, clause)
			}
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: param %s in %q: %v", kv, clause, err)
			}
			switch k {
			case "sweep":
				r.sweep = int(n)
			case "point":
				r.point = int(n)
			case "fails":
				r.fails = int(n)
			case "ms":
				r.ms = int(n)
			case "nth":
				r.nth = int(n)
			case "offset":
				r.offset = n
			case "bit":
				if n < 0 || n > 7 {
					return nil, fmt.Errorf("faultinject: bit %d out of [0,7] in %q", n, clause)
				}
				r.bit = uint(n)
			case "at":
				r.at = n
			default:
				return nil, fmt.Errorf("faultinject: unknown param %q in %q", k, clause)
			}
		}
	}
	return r, nil
}

// Active reports whether the spec injects anything.
func (in *Injector) Active() bool { return in != nil && len(in.rules) > 0 }

// NextSweep allocates the next sweep ordinal, so point rules with a
// sweep= selector can target one pmap fan-out among several in an
// experiment. Sweeps are numbered in launch order, which is
// deterministic (experiments launch their sweeps sequentially).
func (in *Injector) NextSweep() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.sweeps
	in.sweeps++
	return n
}

// Point fires point-site rules for one attempt of (sweep, point). It
// may sleep, panic, or return an error by scheduled design; a nil
// return means the attempt proceeds unfaulted. Attempt counting is per
// (sweep, point), so scheduling is identical at any worker count.
func (in *Injector) Point(sweep, point int) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	key := [2]int{sweep, point}
	in.attempts[key]++
	attempt := in.attempts[key]
	var fire []*rule
	for _, r := range in.rules {
		if r.site != SitePoint {
			continue
		}
		if r.sweep >= 0 && r.sweep != sweep {
			continue
		}
		if r.point >= 0 && r.point != point {
			continue
		}
		fire = append(fire, r)
	}
	in.mu.Unlock()
	for _, r := range fire {
		switch r.act {
		case actSleep:
			time.Sleep(time.Duration(r.ms) * time.Millisecond)
		case actPanic:
			panic(fmt.Sprintf("faultinject: scheduled panic at sweep %d point %d", sweep, point))
		case actTransient:
			if attempt <= r.fails {
				return fmt.Errorf("faultinject: scheduled transient fault at sweep %d point %d attempt %d: %w",
					sweep, point, attempt, fault.ErrTransientIO)
			}
		case actError:
			return fmt.Errorf("faultinject: scheduled permanent fault at sweep %d point %d", sweep, point)
		}
	}
	return nil
}

// siteRules returns the stream rules that apply to ordinal n at site.
func (in *Injector) siteRules(site string, n int) []*rule {
	var out []*rule
	for _, r := range in.rules {
		if r.site != site {
			continue
		}
		if r.nth >= 0 && r.nth != n {
			continue
		}
		// A transient stream rule only downs ordinals below its
		// recovery point.
		if r.act == actTransient && n >= r.fails {
			continue
		}
		out = append(out, r)
	}
	return out
}

// ordinal assigns the next stream ordinal at a site.
func (in *Injector) ordinal(site string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.streams[site]
	in.streams[site] = n + 1
	return n
}

// hasSite reports whether any rule targets the site at all, so
// unfaulted sites pass streams through without wrapping.
func (in *Injector) hasSite(site string) bool {
	if in == nil {
		return false
	}
	for _, r := range in.rules {
		if r.site == site {
			return true
		}
	}
	return false
}

// Reader wraps an I/O stream opened at a site. The wrapped reader
// applies the site's scheduled faults as bytes flow through; with no
// rules for the site, r is returned untouched.
func (in *Injector) Reader(site string, r io.Reader) io.Reader {
	if !in.hasSite(site) {
		return r
	}
	return &faultStream{r: r, rules: in.siteRules(site, in.ordinal(site))}
}

// Writer is Reader for write streams.
func (in *Injector) Writer(site string, w io.Writer) io.Writer {
	if !in.hasSite(site) {
		return w
	}
	return &faultStream{w: w, rules: in.siteRules(site, in.ordinal(site))}
}

// ReadSeeker wraps a seekable stream (trace files). Faults are keyed
// to absolute stream offsets, so seeking reads hit the same scheduled
// corruption wherever they enter the stream.
func (in *Injector) ReadSeeker(site string, rs io.ReadSeeker) io.ReadSeeker {
	if !in.hasSite(site) {
		return rs
	}
	return &faultSeeker{faultStream: faultStream{r: rs, rules: in.siteRules(site, in.ordinal(site))}, rs: rs}
}

// faultStream applies stream rules to one reader or writer. pos is the
// absolute stream offset of the next byte.
type faultStream struct {
	r     io.Reader
	w     io.Writer
	rules []*rule
	pos   int64
}

// apply mutates the in-flight buffer (whose first byte sits at
// absolute offset pos) per the flip-bit rules, and bounds n by the
// tightest truncation point. It returns the adjusted length and
// whether a truncation rule cut the stream.
func (s *faultStream) apply(p []byte, n int) (int, bool) {
	truncated := false
	for _, r := range s.rules {
		switch r.act {
		case actTruncate:
			if s.pos+int64(n) > r.at {
				if k := r.at - s.pos; k < int64(n) {
					if k < 0 {
						k = 0
					}
					n = int(k)
					truncated = true
				}
			}
		case actFlipBit:
			if r.offset >= s.pos && r.offset < s.pos+int64(n) {
				p[r.offset-s.pos] ^= 1 << r.bit
			}
		}
	}
	return n, truncated
}

// transientErr returns the scheduled transient failure for this
// stream, if any: transient rules make the whole stream error (the
// device is down); recovery is scheduled by stream ordinal, not time.
func (s *faultStream) transientErr() error {
	for _, r := range s.rules {
		if r.act == actTransient {
			return fmt.Errorf("faultinject: scheduled stream fault: %w", fault.ErrTransientIO)
		}
	}
	return nil
}

func (s *faultStream) Read(p []byte) (int, error) {
	if err := s.transientErr(); err != nil {
		return 0, err
	}
	n, err := s.r.Read(p)
	n, truncated := s.apply(p, n)
	s.pos += int64(n)
	if truncated {
		return n, io.EOF
	}
	return n, err
}

func (s *faultStream) Write(p []byte) (int, error) {
	if err := s.transientErr(); err != nil {
		return 0, err
	}
	// Corrupt a copy: the caller's buffer is not ours to mutate.
	q := append([]byte(nil), p...)
	n, truncated := s.apply(q, len(q))
	wrote, err := s.w.Write(q[:n])
	s.pos += int64(wrote)
	if err != nil {
		return wrote, err
	}
	if truncated {
		// A truncating writer models a torn write: the caller sees
		// success while bytes past the truncation point never land.
		return len(p), nil
	}
	return wrote, nil
}

// faultSeeker adds offset-tracking Seek on top of faultStream.
type faultSeeker struct {
	faultStream
	rs io.ReadSeeker
}

func (s *faultSeeker) Seek(offset int64, whence int) (int64, error) {
	if err := s.transientErr(); err != nil {
		return 0, err
	}
	pos, err := s.rs.Seek(offset, whence)
	if err == nil {
		s.pos = pos
	}
	return pos, err
}
