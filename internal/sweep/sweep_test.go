package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryJobOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		counts := make([]atomic.Int32, n)
		if err := Run(workers, n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunZeroJobs(t *testing.T) {
	if err := Run(4, 0, func(int) error { t.Fatal("job ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		err := Run(workers, 50, func(i int) error {
			if i == 7 || i == 31 {
				return fmt.Errorf("job says %w", boom)
			}
			return nil
		})
		if err == nil || !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// Deterministic selection: always the lowest failing index.
		want := "sweep: job 7: job says boom"
		if err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err.Error(), want)
		}
	}
}

func TestMapGathersInDeclarationOrder(t *testing.T) {
	const n = 200
	got, err := Map(16, n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("len = %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapSerialParallelIdentical(t *testing.T) {
	job := func(i int) (string, error) { return fmt.Sprintf("row-%03d", i), nil }
	serial, err := Map(1, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Map(8, 64, job)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("row %d differs: %q vs %q", i, serial[i], parallel[i])
		}
	}
}

func TestMapErrorReturnsNil(t *testing.T) {
	got, err := Map(4, 10, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if got != nil {
		t.Fatalf("partial results leaked: %v", got)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if w := Workers(0); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(-3); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d", w)
	}
	if w := Workers(5); w != 5 {
		t.Fatalf("Workers(5) = %d", w)
	}
}
