// Package sweep is a deterministic parallel job executor for the
// simulation harness. Every point of an experiment grid (workload,
// design, capacity, seed) is an independent simulation, so drivers
// fan their points out over a bounded worker pool and gather results
// in job-index order: output is byte-identical no matter how many
// workers run or how the scheduler interleaves them.
//
// The contract that makes this safe is the same one the experiment
// drivers already obey: a job must build all of its own mutable state
// (generator, design, trackers) and communicate only through its
// result. Jobs that share mutable state are not sweepable.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values below 1 select
// GOMAXPROCS, matching the CLI convention that -j 0 means "all
// cores".
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes jobs 0..n-1 on at most workers goroutines (workers < 1
// selects GOMAXPROCS). Execution order across workers is unspecified,
// but error reporting is deterministic: the lowest-indexed failure is
// returned — exactly what a serial loop that failed at that job would
// have reported, so parallel and serial runs are indistinguishable to
// callers. After a failure, jobs at higher indices than the lowest
// known failure may be skipped (their results would be discarded
// anyway); every job below it always runs, which is what keeps the
// reported error deterministic.
func Run(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return fmt.Errorf("sweep: job %d: %w", i, err)
			}
		}
		return nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failedAt atomic.Int64 // lowest failing index observed so far
	failedAt.Store(int64(n))
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > failedAt.Load() {
					continue // a lower job already failed; this result would be discarded
				}
				if err := job(i); err != nil {
					errs[i] = err
					for {
						cur := failedAt.Load()
						if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("sweep: job %d: %w", i, err)
		}
	}
	return nil
}

// Map executes n value-producing jobs under Run's scheduling and
// returns their results in job-index order.
func Map[T any](workers, n int, job func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(workers, n, func(i int) error {
		v, err := job(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
