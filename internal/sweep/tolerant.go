package sweep

// Fault-tolerant execution: the strict executor in sweep.go treats the
// first error as fatal and short-circuits the sweep, which is right
// for programming errors but wrong for server-scale sweeps where one
// corrupt snapshot or panicking design composition must not discard
// hours of neighboring points. RunTolerant/MapTolerant run every point
// to completion under a Policy: panics are recovered into typed
// errors, retryable faults are retried with exponential backoff and
// deterministic jitter, per-attempt deadlines bound stuck points, and
// every point that failed (or needed retries to succeed) is returned
// in a deterministic report.
//
// The determinism contract of the strict executor carries over:
// results of successful points are committed by index, so output is
// byte-identical at any worker count. A timed-out attempt's abandoned
// goroutine can never commit a result — values travel through a
// channel and are discarded once the deadline fires — so a straggler
// completing after its point was reported failed cannot race the
// gather.

import (
	"fmt"
	"runtime/debug"
	"time"

	"fpcache/internal/fault"
)

// Policy configures fault tolerance for one sweep. The zero value
// isolates panics and runs every point exactly once with no deadline —
// the minimum any tolerant sweep provides.
type Policy struct {
	// MaxAttempts bounds how many times a point runs before its
	// failure is final; values below 1 mean one attempt (no retry).
	// Only errors for which Retryable returns true are retried.
	MaxAttempts int
	// Backoff is the delay before the second attempt; it doubles per
	// further attempt (capped by MaxBackoff) with deterministic jitter
	// derived from Seed. Zero disables sleeping between attempts.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero means 64x Backoff.
	MaxBackoff time.Duration
	// Timeout is the per-attempt deadline; zero disables it. A
	// timed-out attempt counts as a non-retryable fault.ErrTimeout
	// failure (a deterministic simulation that blew its deadline once
	// will blow it again). The attempt's goroutine is abandoned, not
	// killed — its result is discarded, never committed.
	Timeout time.Duration
	// Seed drives the backoff jitter, keyed with the point index and
	// attempt number so schedules are reproducible run to run.
	Seed int64
	// Retryable classifies errors worth retrying; nil means
	// fault.Retryable (transient I/O only).
	Retryable func(error) bool
	// sleep stubs time.Sleep in tests.
	sleep func(time.Duration)
}

func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p Policy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return fault.Retryable(err)
}

// PanicError is a recovered sweep-point panic: the fault the tentpole
// isolation exists for. It wraps fault.ErrPointPanic and carries the
// recovered value and the goroutine stack captured at recovery.
type PanicError struct {
	Index int
	Value any
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("point %d: %v: %v", e.Index, fault.ErrPointPanic, e.Value)
}

// Unwrap ties the panic into the fault taxonomy.
func (e *PanicError) Unwrap() error { return fault.ErrPointPanic }

// PointReport describes one point that did not succeed on its first
// attempt: either it eventually succeeded after retries (Err == nil,
// Attempts > 1) or it failed for good (Err != nil).
type PointReport struct {
	// Index is the point's job index.
	Index int
	// Attempts is how many times the point ran.
	Attempts int
	// Err is the final failure, nil if a retry succeeded.
	Err error
	// Class is the fault classification of Err (ClassNone on success).
	Class fault.Class
	// Stack is the captured goroutine stack when Err is a panic.
	Stack string
}

// RunTolerant executes jobs 0..n-1 on at most `workers` goroutines
// under the policy. Unlike Run, every point executes regardless of
// other points' failures; the returned reports (ordered by index)
// cover exactly the points that failed or needed retries.
func RunTolerant(workers, n int, pol Policy, job func(i int) error) []PointReport {
	_, reports := MapTolerant(workers, n, pol, func(i int) (struct{}, error) {
		return struct{}{}, job(i)
	})
	return reports
}

// MapTolerant executes n value-producing jobs under RunTolerant's
// scheduling and policy. Failed points leave the zero value in their
// result slot; out[i] is valid exactly when no report with Err != nil
// names index i. Successful results are committed in index order, so
// output is byte-identical at any worker count.
func MapTolerant[T any](workers, n int, pol Policy, job func(i int) (T, error)) ([]T, []PointReport) {
	out := make([]T, n)
	perPoint := make([]*PointReport, n)
	// The inner job never returns an error, so Run's lowest-failure
	// short-circuit never engages and all n points execute.
	_ = Run(workers, n, func(i int) error {
		v, rep := runPoint(i, pol, job)
		if rep == nil || rep.Err == nil {
			out[i] = v
		}
		perPoint[i] = rep
		return nil
	})
	var reports []PointReport
	for _, r := range perPoint {
		if r != nil {
			reports = append(reports, *r)
		}
	}
	return out, reports
}

// runPoint drives one point through the attempt/retry loop.
func runPoint[T any](i int, pol Policy, job func(i int) (T, error)) (T, *PointReport) {
	var zero T
	for attempt := 1; ; attempt++ {
		v, err := runAttempt(i, pol.Timeout, job)
		if err == nil {
			if attempt > 1 {
				return v, &PointReport{Index: i, Attempts: attempt}
			}
			return v, nil
		}
		if attempt >= pol.attempts() || !pol.retryable(err) {
			rep := &PointReport{Index: i, Attempts: attempt, Err: err, Class: fault.ClassOf(err)}
			if pe, ok := err.(*PanicError); ok {
				rep.Stack = pe.Stack
			}
			return zero, rep
		}
		if d := backoffDelay(pol, i, attempt); d > 0 {
			sleep := pol.sleep
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(d)
		}
	}
}

// runAttempt executes one guarded attempt, bounded by the deadline.
func runAttempt[T any](i int, timeout time.Duration, job func(i int) (T, error)) (T, error) {
	if timeout <= 0 {
		return guarded(i, job)
	}
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := guarded(i, job)
		ch <- result{v, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-timer.C:
		var zero T
		return zero, fmt.Errorf("point %d: %w after %v", i, fault.ErrTimeout, timeout)
	}
}

// guarded runs the job with panic isolation.
func guarded[T any](i int, job func(i int) (T, error)) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Index: i, Value: p, Stack: string(debug.Stack())}
		}
	}()
	return job(i)
}

// backoffDelay computes the sleep before attempt+1: exponential in the
// retry count with up to 50% deterministic jitter, so colliding
// retries (many points hitting one recovering disk) spread out
// reproducibly.
func backoffDelay(pol Policy, index, attempt int) time.Duration {
	if pol.Backoff <= 0 {
		return 0
	}
	max := pol.MaxBackoff
	if max <= 0 {
		max = 64 * pol.Backoff
	}
	d := pol.Backoff << (attempt - 1)
	if d <= 0 || d > max { // <= 0 catches shift overflow
		d = max
	}
	j := splitmix64(uint64(pol.Seed) ^ uint64(index)*0x9E3779B97F4A7C15 ^ uint64(attempt))
	jitter := time.Duration(j % uint64(d/2+1))
	return d/2 + jitter
}

// splitmix64 is the canonical 64-bit mixer: deterministic, seedable,
// and stateless, which is exactly what reproducible jitter needs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
