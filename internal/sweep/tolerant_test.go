package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"fpcache/internal/fault"
)

// TestTolerantPanicIsolation: a panicking point must not take the
// sweep down; every other point completes and the report carries the
// class and a captured stack.
func TestTolerantPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, reports := MapTolerant(workers, 8, Policy{}, func(i int) (int, error) {
			if i == 3 {
				panic("design bug")
			}
			return i * 10, nil
		})
		for i, v := range out {
			want := i * 10
			if i == 3 {
				want = 0
			}
			if v != want {
				t.Fatalf("workers=%d out[%d] = %d, want %d", workers, i, v, want)
			}
		}
		if len(reports) != 1 {
			t.Fatalf("workers=%d: %d reports, want 1", workers, len(reports))
		}
		r := reports[0]
		if r.Index != 3 || r.Class != fault.ClassPanic || r.Err == nil {
			t.Fatalf("workers=%d: report %+v", workers, r)
		}
		if !errors.Is(r.Err, fault.ErrPointPanic) {
			t.Fatalf("panic error does not wrap ErrPointPanic: %v", r.Err)
		}
		if !strings.Contains(r.Stack, "tolerant_test.go") {
			t.Fatalf("stack not captured:\n%s", r.Stack)
		}
	}
}

// TestTolerantRetryToSuccess: a transient fault clears on retry; the
// result is identical to an unfaulted run and the report records the
// attempt count with a nil error.
func TestTolerantRetryToSuccess(t *testing.T) {
	var mu sync.Mutex
	attempts := map[int]int{}
	pol := Policy{MaxAttempts: 3, Backoff: time.Nanosecond, sleep: func(time.Duration) {}}
	out, reports := MapTolerant(2, 4, pol, func(i int) (int, error) {
		mu.Lock()
		attempts[i]++
		a := attempts[i]
		mu.Unlock()
		if i == 2 && a <= 2 {
			return 0, fmt.Errorf("flaky read: %w", fault.ErrTransientIO)
		}
		return i + 100, nil
	})
	if !reflect.DeepEqual(out, []int{100, 101, 102, 103}) {
		t.Fatalf("out = %v", out)
	}
	if len(reports) != 1 || reports[0].Index != 2 || reports[0].Attempts != 3 || reports[0].Err != nil {
		t.Fatalf("reports = %+v", reports)
	}
}

// TestTolerantRetryBudgetExhausted: a persistent transient fault fails
// after MaxAttempts with the attempt count recorded.
func TestTolerantRetryBudgetExhausted(t *testing.T) {
	pol := Policy{MaxAttempts: 3, sleep: func(time.Duration) {}}
	_, reports := MapTolerant(1, 2, pol, func(i int) (int, error) {
		if i == 1 {
			return 0, fmt.Errorf("always down: %w", fault.ErrTransientIO)
		}
		return i, nil
	})
	if len(reports) != 1 || reports[0].Attempts != 3 || reports[0].Class != fault.ClassTransientIO {
		t.Fatalf("reports = %+v", reports)
	}
}

// TestTolerantNonRetryableFailsFast: corruption is not retried even
// with attempts in the budget.
func TestTolerantNonRetryableFailsFast(t *testing.T) {
	calls := 0
	pol := Policy{MaxAttempts: 5, sleep: func(time.Duration) {}}
	_, reports := MapTolerant(1, 1, pol, func(i int) (int, error) {
		calls++
		return 0, fmt.Errorf("bad chunk: %w", fault.ErrCorruptTrace)
	})
	if calls != 1 {
		t.Fatalf("non-retryable error ran %d attempts", calls)
	}
	if len(reports) != 1 || reports[0].Class != fault.ClassCorruptTrace {
		t.Fatalf("reports = %+v", reports)
	}
}

// TestTolerantTimeout: a stuck point is bounded by the deadline,
// classified as a timeout, and its straggling result is never
// committed.
func TestTolerantTimeout(t *testing.T) {
	release := make(chan struct{})
	pol := Policy{Timeout: 20 * time.Millisecond}
	out, reports := MapTolerant(2, 3, pol, func(i int) (int, error) {
		if i == 1 {
			<-release
			return 999, nil
		}
		return i, nil
	})
	close(release) // let the straggler finish after the sweep returned
	if len(reports) != 1 || reports[0].Index != 1 || reports[0].Class != fault.ClassTimeout {
		t.Fatalf("reports = %+v", reports)
	}
	if !errors.Is(reports[0].Err, fault.ErrTimeout) {
		t.Fatalf("timeout error does not wrap ErrTimeout: %v", reports[0].Err)
	}
	if out[1] != 0 {
		t.Fatalf("timed-out point committed a result: %d", out[1])
	}
	if out[0] != 0+0 || out[2] != 2 {
		t.Fatalf("out = %v", out)
	}
}

// TestTolerantDeterministicAcrossWorkers: results and reports are
// identical at every worker count, including under injected faults.
func TestTolerantDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) ([]int, []PointReport) {
		var mu sync.Mutex
		attempts := map[int]int{}
		pol := Policy{MaxAttempts: 2, sleep: func(time.Duration) {}}
		return MapTolerant(workers, 16, pol, func(i int) (int, error) {
			mu.Lock()
			attempts[i]++
			a := attempts[i]
			mu.Unlock()
			switch {
			case i == 5:
				panic("boom")
			case i == 9 && a == 1:
				return 0, fmt.Errorf("blip: %w", fault.ErrTransientIO)
			}
			return i * i, nil
		})
	}
	out1, rep1 := run(1)
	out8, rep8 := run(8)
	if !reflect.DeepEqual(out1, out8) {
		t.Fatalf("results differ across worker counts:\n1: %v\n8: %v", out1, out8)
	}
	if len(rep1) != len(rep8) {
		t.Fatalf("report counts differ: %d vs %d", len(rep1), len(rep8))
	}
	for i := range rep1 {
		a, b := rep1[i], rep8[i]
		if a.Index != b.Index || a.Attempts != b.Attempts || a.Class != b.Class {
			t.Fatalf("report %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// TestBackoffDelayDeterministic: the jitter schedule is a pure
// function of (seed, index, attempt) and stays within bounds.
func TestBackoffDelayDeterministic(t *testing.T) {
	pol := Policy{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 42}
	for attempt := 1; attempt <= 6; attempt++ {
		a := backoffDelay(pol, 7, attempt)
		b := backoffDelay(pol, 7, attempt)
		if a != b {
			t.Fatalf("attempt %d: nondeterministic delay %v vs %v", attempt, a, b)
		}
		if a <= 0 || a > pol.MaxBackoff {
			t.Fatalf("attempt %d: delay %v out of (0, %v]", attempt, a, pol.MaxBackoff)
		}
	}
	if backoffDelay(Policy{}, 0, 1) != 0 {
		t.Fatal("zero Backoff must not sleep")
	}
}
