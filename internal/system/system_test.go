package system

import (
	"testing"

	"fpcache/internal/dcache"
	"fpcache/internal/dram"
	"fpcache/internal/testutil"
)

func TestDRAMConfigsPerDesign(t *testing.T) {
	off, stk := DRAMConfigsFor("block")
	if off.Policy != dram.ClosePage || stk.Policy != dram.ClosePage {
		t.Fatal("block design must run close-page (§5.2)")
	}
	if off.InterleaveBytes != 64 {
		t.Fatal("block design off-chip interleave must be 64B")
	}
	off, stk = DRAMConfigsFor("footprint")
	if off.Policy != dram.OpenPage || stk.Policy != dram.OpenPage {
		t.Fatal("footprint design must run open-page (§5.2)")
	}
	if off.InterleaveBytes != 2048 || stk.InterleaveBytes != 2048 {
		t.Fatal("footprint design must interleave at page granularity")
	}
	if err := off.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := stk.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunFunctionalCountsAndTraffic(t *testing.T) {
	d := dcache.NewBaseline()
	res := mustFunctional(RunFunctional(d, testutil.RandomTrace(1000, 1, 16), 0, 1000))
	if res.Refs != 1000 {
		t.Fatalf("refs = %d", res.Refs)
	}
	if res.Counters.Misses != 1000 {
		t.Fatalf("baseline misses = %d", res.Counters.Misses)
	}
	// Baseline moves exactly 64B per reference.
	if got := res.OffChipBytesPerRef(); got != 64 {
		t.Fatalf("baseline bytes/ref = %g", got)
	}
	if res.Stacked.DataBytes() != 0 {
		t.Fatal("baseline touched stacked DRAM")
	}
	if res.Instructions == 0 {
		t.Fatal("instructions not counted")
	}
}

func TestRunFunctionalWarmupExcluded(t *testing.T) {
	// Same trace, same design: measuring the second half must not
	// include the first half's counters.
	full := mustFunctional(RunFunctional(dcache.NewBaseline(), testutil.RandomTrace(2000, 2, 16), 0, 2000))
	half := mustFunctional(RunFunctional(dcache.NewBaseline(), testutil.RandomTrace(2000, 2, 16), 1000, 1000))
	if half.Refs != 1000 {
		t.Fatalf("measured refs = %d", half.Refs)
	}
	if half.Counters.Misses >= full.Counters.Misses {
		t.Fatal("warmup not excluded from counters")
	}
	if half.OffChip.DataBytes() >= full.OffChip.DataBytes() {
		t.Fatal("warmup not excluded from DRAM stats")
	}
}

func TestRunFunctionalFootprintStats(t *testing.T) {
	d, err := BuildDesign(DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 1.0 / 16})
	if err != nil {
		t.Fatal(err)
	}
	res := mustFunctional(RunFunctional(d, testutil.RandomTrace(5000, 3, 16), 1000, 4000))
	if res.Footprint == nil {
		t.Fatal("footprint stats missing")
	}
	if res.Design != "footprint" {
		t.Fatalf("design = %q", res.Design)
	}
	// Non-footprint designs must not report them.
	res2 := mustFunctional(RunFunctional(dcache.NewIdeal(), testutil.RandomTrace(100, 3, 16), 0, 100))
	if res2.Footprint != nil {
		t.Fatal("ideal reported footprint stats")
	}
}

func TestBuildDesignAllKinds(t *testing.T) {
	kinds := []string{
		KindBaseline, KindBlock, KindPage, KindSubblock,
		KindFootprint, KindFootprintNoSingleton, KindHotPage, KindIdeal,
	}
	for _, k := range kinds {
		d, err := BuildDesign(DesignSpec{Kind: k, PaperCapacityMB: 128, Scale: 1.0 / 16})
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if d.MetadataBits() < 0 {
			t.Fatalf("%s: negative metadata", k)
		}
	}
	if _, err := BuildDesign(DesignSpec{Kind: "bogus"}); err == nil {
		t.Fatal("bogus design accepted")
	}
}

func TestTagLatencyForMatchesTable4(t *testing.T) {
	cases := []struct {
		kind string
		mb   int
		want int
	}{
		{KindFootprint, 64, 4}, {KindFootprint, 128, 6}, {KindFootprint, 256, 9}, {KindFootprint, 512, 11},
		{KindPage, 64, 4}, {KindPage, 128, 5}, {KindPage, 256, 6}, {KindPage, 512, 9},
		{KindBlock, 64, 9}, {KindBlock, 256, 9}, {KindBlock, 512, 11},
		{KindBaseline, 256, 0}, {KindIdeal, 256, 0},
	}
	for _, c := range cases {
		if got := TagLatencyFor(c.kind, c.mb); got != c.want {
			t.Fatalf("TagLatencyFor(%s, %d) = %d, want %d", c.kind, c.mb, got, c.want)
		}
	}
}

func TestDesignSpecDefaults(t *testing.T) {
	spec := DesignSpec{Kind: KindFootprint}
	if spec.CapacityBytes() != 256<<20 {
		t.Fatalf("default capacity = %d", spec.CapacityBytes())
	}
	spec = DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 0.5}
	if spec.CapacityBytes() != 32<<20 {
		t.Fatalf("scaled capacity = %d", spec.CapacityBytes())
	}
}

func TestRunTimingBasics(t *testing.T) {
	d := dcache.NewBaseline()
	res := mustTiming(RunTiming(d, testutil.RandomTrace(2000, 5, 4), TimingConfig{Cores: 4, MLP: 2, MaxRefs: 2000}))
	if res.Refs != 2000 {
		t.Fatalf("refs = %d", res.Refs)
	}
	if res.Cycles == 0 || res.Instructions == 0 {
		t.Fatalf("cycles=%d instructions=%d", res.Cycles, res.Instructions)
	}
	if res.AggIPC() <= 0 {
		t.Fatalf("IPC = %g", res.AggIPC())
	}
	if res.AvgReadLatency <= 0 {
		t.Fatal("no read latency recorded")
	}
	if res.OffChip.ReadBursts == 0 {
		t.Fatal("no off-chip traffic in timing mode")
	}
}

func TestRunTimingDeterministic(t *testing.T) {
	run := func() TimingResult {
		d, err := BuildDesign(DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 1.0 / 16})
		if err != nil {
			t.Fatal(err)
		}
		return mustTiming(RunTiming(d, testutil.RandomTrace(3000, 7, 8), TimingConfig{Cores: 8, MLP: 2, WarmupRefs: 500, MaxRefs: 2500}))
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic timing: %d/%d vs %d/%d", a.Cycles, a.Instructions, b.Cycles, b.Instructions)
	}
	if a.OffChip != b.OffChip {
		t.Fatal("nondeterministic DRAM stats")
	}
}

func TestRunTimingWarmupExcludedFromCounters(t *testing.T) {
	d, err := BuildDesign(DesignSpec{Kind: KindPage, PaperCapacityMB: 64, Scale: 1.0 / 16})
	if err != nil {
		t.Fatal(err)
	}
	res := mustTiming(RunTiming(d, testutil.RandomTrace(4000, 9, 8), TimingConfig{Cores: 8, MLP: 2, WarmupRefs: 2000, MaxRefs: 2000}))
	if res.Counters.Accesses() != 2000 {
		t.Fatalf("measured accesses = %d, want 2000", res.Counters.Accesses())
	}
}

func TestRunTimingFasterMemoryFasterRun(t *testing.T) {
	// An ideal (stacked-only) system must finish the same trace in
	// fewer cycles than the no-cache baseline.
	base := mustTiming(RunTiming(dcache.NewBaseline(), testutil.RandomTrace(3000, 11, 8),
		TimingConfig{Cores: 8, MLP: 2, MaxRefs: 3000}))
	ideal := mustTiming(RunTiming(dcache.NewIdeal(), testutil.RandomTrace(3000, 11, 8),
		TimingConfig{Cores: 8, MLP: 2, MaxRefs: 3000}))
	if ideal.Cycles >= base.Cycles {
		t.Fatalf("ideal (%d cycles) not faster than baseline (%d)", ideal.Cycles, base.Cycles)
	}
	if ideal.AvgReadLatency >= base.AvgReadLatency {
		t.Fatalf("ideal latency %g not below baseline %g", ideal.AvgReadLatency, base.AvgReadLatency)
	}
}

func TestRunTimingStackedOverride(t *testing.T) {
	cfg := dram.StackedDDR3_3200()
	cfg.CPUPerBusCy *= 4 // cripple the stacked part
	slow := mustTiming(RunTiming(dcache.NewIdeal(), testutil.RandomTrace(2000, 13, 8),
		TimingConfig{Cores: 8, MLP: 2, MaxRefs: 2000, Stacked: &cfg}))
	fast := mustTiming(RunTiming(dcache.NewIdeal(), testutil.RandomTrace(2000, 13, 8),
		TimingConfig{Cores: 8, MLP: 2, MaxRefs: 2000}))
	if slow.Cycles <= fast.Cycles {
		t.Fatal("stacked override had no effect")
	}
}

func TestAllDesignsRunBothModes(t *testing.T) {
	kinds := []string{
		KindBaseline, KindBlock, KindPage, KindSubblock,
		KindFootprint, KindFootprintNoSingleton, KindHotPage, KindIdeal,
	}
	for _, k := range kinds {
		d, err := BuildDesign(DesignSpec{Kind: k, PaperCapacityMB: 64, Scale: 1.0 / 16})
		if err != nil {
			t.Fatal(err)
		}
		fres := mustFunctional(RunFunctional(d, testutil.RandomTrace(3000, 17, 8), 500, 2500))
		if fres.Counters.Accesses() != 2500 {
			t.Fatalf("%s functional accesses = %d", k, fres.Counters.Accesses())
		}
		d2, _ := BuildDesign(DesignSpec{Kind: k, PaperCapacityMB: 64, Scale: 1.0 / 16})
		tres := mustTiming(RunTiming(d2, testutil.RandomTrace(2000, 17, 8), TimingConfig{Cores: 8, MLP: 2, WarmupRefs: 500, MaxRefs: 1500}))
		if tres.Cycles == 0 {
			t.Fatalf("%s timing did not advance", k)
		}
	}
}

func TestRunTimingMaxRefsDefault(t *testing.T) {
	// A zero MaxRefs takes the default bound instead of silently
	// simulating zero references (the old behavior).
	res := mustTiming(RunTiming(dcache.NewBaseline(), testutil.RandomTrace(2000, 31, 4), TimingConfig{Cores: 4, MLP: 2}))
	if res.Refs != 2000 {
		t.Fatalf("refs = %d, want the whole 2000-record trace", res.Refs)
	}
	if res.Cycles == 0 {
		t.Fatal("defaulted run did not advance")
	}
}

func TestRunTimingLatencyDistribution(t *testing.T) {
	res := mustTiming(RunTiming(dcache.NewBaseline(), testutil.RandomTrace(3000, 33, 8),
		TimingConfig{Cores: 8, MLP: 2, MaxRefs: 3000}))
	if res.ReadLatency == nil || res.ReadLatency.Total() == 0 {
		t.Fatal("read-latency histogram empty")
	}
	if res.ReadLatencyP50 <= 0 {
		t.Fatalf("p50 = %g", res.ReadLatencyP50)
	}
	if res.ReadLatencyP50 > res.ReadLatencyP90 || res.ReadLatencyP90 > res.ReadLatencyP99 {
		t.Fatalf("percentiles not ordered: p50=%g p90=%g p99=%g",
			res.ReadLatencyP50, res.ReadLatencyP90, res.ReadLatencyP99)
	}
	// The mean must sit inside the distribution's span.
	if res.AvgReadLatency <= 0 || res.AvgReadLatency > res.ReadLatencyP99*2 {
		t.Fatalf("avg %g inconsistent with p99 %g", res.AvgReadLatency, res.ReadLatencyP99)
	}
}
