package system

import (
	"fmt"
	"slices"
	"strconv"
	"strings"

	"fpcache/internal/core"
	"fpcache/internal/dcache"
)

// Design kind identifiers shared by the facade, the experiment
// drivers, and the CLIs. Each canonical kind is a fixed point of the
// composable policy space (see the matrix in DESIGN.md §6); composite
// specs like "footprint+banshee" reach everything in between.
const (
	KindBaseline             = "baseline"
	KindBlock                = "block"
	KindPage                 = "page"
	KindSubblock             = "subblock"
	KindFootprint            = "footprint"
	KindFootprintNoSingleton = "footprint-nosingleton"
	KindFootprintUnion       = "footprint-union"
	KindHotPage              = "hotpage"
	KindIdeal                = "ideal"
)

// Mapping policy names (the engine's tag-placement axis).
const (
	MapPageDirect = "pagedirect"
	MapBlockRow   = "blockrow"
	MapHybrid     = "hybrid"
)

// Fill policy names (the engine's replacement/fill axis).
const (
	FillLRU     = "lru"
	FillHotGate = "hotgate"
	FillBanshee = "banshee"
)

// Partition policy names (the stacked-capacity split axis). In specs
// a partition component carries the memory share as a percentage:
// "memcache:50" dedicates half the stacked capacity to directly
// addressed memory and runs the cache engine on the rest.
const (
	PartMemCache = "memcache"
	PartMemLow   = "memlow"
)

// AllocPolicies lists the allocation-granularity policy names.
func AllocPolicies() []string {
	return []string{KindPage, KindSubblock, KindFootprint, KindFootprintNoSingleton, KindFootprintUnion}
}

// MappingPolicies lists the tag-placement policy names.
func MappingPolicies() []string {
	return []string{MapPageDirect, MapBlockRow, MapHybrid}
}

// FillPolicies lists the replacement/fill policy names.
func FillPolicies() []string {
	return []string{FillLRU, FillHotGate, FillBanshee}
}

// PartitionPolicies lists the stacked-capacity partition policy
// names (spec components take a ":<percent>" memory share).
func PartitionPolicies() []string {
	return []string{PartMemCache, PartMemLow}
}

// DesignSpec describes a cache design at a paper-scale capacity and a
// run scale.
type DesignSpec struct {
	// Kind is a canonical design kind or a composite policy spec:
	// "+"-joined component names where each component is an allocation
	// policy (page, subblock, footprint, footprint-nosingleton,
	// footprint-union), a mapping policy (pagedirect, blockrow,
	// hybrid), or a fill policy (lru, hotgate, banshee). Examples:
	// "footprint", "footprint+banshee", "page+blockrow",
	// "subblock+hybrid+hotgate".
	Kind            string
	PaperCapacityMB int
	// Scale is the capacity scale factor (1.0 = paper scale).
	Scale float64
	// Alloc/Mapping/Fill name engine policies explicitly; when set
	// they override the corresponding component parsed from Kind.
	Alloc, Mapping, Fill string
	// Partition names a stacked-capacity partition explicitly
	// ("memcache:50"); when set it overrides the component parsed
	// from Kind.
	Partition string
	// PageBytes defaults to 2KB.
	PageBytes int
	// FHTEntries defaults to 16K (Footprint designs only).
	FHTEntries int
	// Ways defaults to 16 (page-granularity designs).
	Ways int
}

func (s DesignSpec) withDefaults() DesignSpec {
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.PageBytes == 0 {
		s.PageBytes = 2048
	}
	if s.FHTEntries == 0 {
		s.FHTEntries = 16 * 1024
	}
	if s.Ways == 0 {
		s.Ways = 16
	}
	if s.PaperCapacityMB == 0 {
		s.PaperCapacityMB = 256
	}
	return s
}

// CapacityBytes returns the scaled capacity.
func (s DesignSpec) CapacityBytes() int64 {
	s = s.withDefaults()
	return int64(float64(int64(s.PaperCapacityMB)<<20) * s.Scale)
}

// composition is a resolved policy triple (plus the monolithic kinds
// that do not decompose).
type composition struct {
	// fixed is non-empty for the monolithic designs: baseline, ideal,
	// and the block-based cache, whose in-DRAM tag organization has no
	// page-granularity policy decomposition.
	fixed                string
	alloc, mapping, fill string
	// partition/memPct describe a stacked-capacity split; partition
	// is empty when the whole capacity is cache.
	partition string
	memPct    int
	// forcePageBytes overrides the spec's page size (the canonical
	// hotpage kind pins 4KB pages, §6.7).
	forcePageBytes int
	// canonical is the display name when the composition reproduces a
	// paper design; empty for hybrids.
	canonical string
}

// Name returns the design name the composition reports: the canonical
// kind for paper designs, a normalized "+"-joined spec for hybrids
// (default components omitted). The CHOP composition keeps its
// "hotpage" token in composite names because the token carries the
// 4KB page size — spelling it out as "page+hotgate" would silently
// drop the page-size pin on a name round-trip.
func (c composition) Name() string {
	if c.fixed != "" {
		return c.fixed
	}
	var parts []string
	switch {
	case c.canonical != "":
		parts = append(parts, c.canonical)
	case c.alloc == KindPage && c.fill == FillHotGate && c.forcePageBytes == 4096:
		parts = append(parts, KindHotPage)
		if c.mapping != MapPageDirect {
			parts = append(parts, c.mapping)
		}
	default:
		parts = append(parts, c.alloc)
		if c.mapping != MapPageDirect {
			parts = append(parts, c.mapping)
		}
		if c.fill != FillLRU {
			parts = append(parts, c.fill)
		}
	}
	if c.partition != "" {
		parts = append(parts, fmt.Sprintf("%s:%d", c.partition, c.memPct))
	}
	return strings.Join(parts, "+")
}

func isAlloc(name string) bool { return slices.Contains(AllocPolicies(), name) }

// parsePartition recognizes a partition spec component
// ("memcache:50", "memlow:25"). found reports whether the token names
// a partition policy at all; err is set when it does but the share is
// malformed or out of range.
func parsePartition(tok string) (name string, pct int, found bool, err error) {
	name, share, ok := strings.Cut(tok, ":")
	if !slices.Contains(PartitionPolicies(), name) {
		return "", 0, false, nil
	}
	if !ok {
		return "", 0, true, fmt.Errorf("system: partition %q needs a memory share, e.g. %q", tok, name+":50")
	}
	pct, err = strconv.Atoi(share)
	if err != nil {
		return "", 0, true, fmt.Errorf("system: bad partition share in %q: %v", tok, err)
	}
	if pct < 0 || pct >= 100 {
		return "", 0, true, fmt.Errorf("system: partition share %d%% in %q out of range [0,100)", pct, tok)
	}
	return name, pct, true, nil
}

func isMapping(name string) bool { return slices.Contains(MappingPolicies(), name) }

func isFill(name string) bool { return slices.Contains(FillPolicies(), name) }

// PartitionPercent reports the memory share (in percent) a design
// spec's partition component dedicates to directly addressed memory.
// ok is false for specs without a partition component (or specs that
// do not parse); callers seeding an adaptive controller use it to
// start the controller at the design's configured split.
func PartitionPercent(kind string) (pct int, ok bool) {
	c, err := parseKind(kind)
	if err != nil || c.partition == "" {
		return 0, false
	}
	return c.memPct, true
}

// NormalizeKind validates a design kind or composite policy spec and
// returns the name the built design would report — the canonical kind
// for paper designs, the normalized composite spec for hybrids. CLIs
// use it to validate -design values without building anything.
func NormalizeKind(kind string) (string, error) {
	c, err := resolve(DesignSpec{Kind: kind})
	if err != nil {
		return "", err
	}
	return c.Name(), nil
}

// parseKind resolves a design kind or composite policy spec into a
// composition. It is the single grammar behind BuildDesign,
// TagLatencyFor, and the CLIs' spec validation.
func parseKind(kind string) (composition, error) {
	var c composition
	set := func(field *string, v, axis string) error {
		if *field != "" && *field != v {
			return fmt.Errorf("system: spec %q names two %s policies (%s, %s)", kind, axis, *field, v)
		}
		*field = v
		return nil
	}
	parts := strings.Split(kind, "+")
	for _, raw := range parts {
		tok := strings.TrimSpace(raw)
		pname, ppct, pfound, perr := parsePartition(tok)
		switch {
		case tok == "":
			return composition{}, fmt.Errorf("system: empty component in design spec %q", kind)
		case tok == KindBaseline, tok == KindIdeal, tok == KindBlock:
			if len(parts) > 1 {
				return composition{}, fmt.Errorf("system: design %q does not compose with policies (spec %q)", tok, kind)
			}
			c.fixed = tok
		case tok == KindHotPage:
			// CHOP (§6.7): page allocation behind a hotness gate at 4KB
			// pages.
			if err := set(&c.alloc, KindPage, "allocation"); err != nil {
				return composition{}, err
			}
			if err := set(&c.fill, FillHotGate, "fill"); err != nil {
				return composition{}, err
			}
			c.forcePageBytes = 4096
		case isAlloc(tok):
			if err := set(&c.alloc, tok, "allocation"); err != nil {
				return composition{}, err
			}
		case isMapping(tok):
			if err := set(&c.mapping, tok, "mapping"); err != nil {
				return composition{}, err
			}
		case isFill(tok):
			if err := set(&c.fill, tok, "fill"); err != nil {
				return composition{}, err
			}
		case pfound:
			if perr != nil {
				return composition{}, perr
			}
			if c.partition != "" && (c.partition != pname || c.memPct != ppct) {
				return composition{}, fmt.Errorf("system: spec %q names two partitions (%s:%d, %s:%d)", kind, c.partition, c.memPct, pname, ppct)
			}
			c.partition, c.memPct = pname, ppct
		default:
			return composition{}, fmt.Errorf("system: unknown design kind or policy %q in spec %q (alloc %v, mapping %v, fill %v, partition %v with a \":<percent>\" share)",
				tok, kind, AllocPolicies(), MappingPolicies(), FillPolicies(), PartitionPolicies())
		}
	}
	return c, nil
}

// resolve parses the spec's Kind, applies explicit policy fields, and
// fills defaults.
func resolve(spec DesignSpec) (composition, error) {
	var c composition
	if spec.Kind != "" {
		var err error
		if c, err = parseKind(spec.Kind); err != nil {
			return composition{}, err
		}
	}
	if spec.Alloc != "" {
		if !isAlloc(spec.Alloc) {
			return composition{}, fmt.Errorf("system: unknown allocation policy %q (have %v)", spec.Alloc, AllocPolicies())
		}
		c.alloc = spec.Alloc
	}
	if spec.Mapping != "" {
		if !isMapping(spec.Mapping) {
			return composition{}, fmt.Errorf("system: unknown mapping policy %q (have %v)", spec.Mapping, MappingPolicies())
		}
		c.mapping = spec.Mapping
	}
	if spec.Fill != "" {
		if !isFill(spec.Fill) {
			return composition{}, fmt.Errorf("system: unknown fill policy %q (have %v)", spec.Fill, FillPolicies())
		}
		c.fill = spec.Fill
	}
	if spec.Partition != "" {
		name, pct, found, err := parsePartition(spec.Partition)
		if err != nil {
			return composition{}, err
		}
		if !found {
			return composition{}, fmt.Errorf("system: unknown partition policy %q (have %v with a \":<percent>\" share)", spec.Partition, PartitionPolicies())
		}
		c.partition, c.memPct = name, pct
	}
	if c.fixed != "" {
		if c.alloc != "" || c.mapping != "" || c.fill != "" || c.partition != "" {
			return composition{}, fmt.Errorf("system: design %q does not compose with policies", c.fixed)
		}
		return c, nil
	}
	if c.alloc == "" {
		return composition{}, fmt.Errorf("system: spec %q names no allocation policy (have %v)", spec.Kind, AllocPolicies())
	}
	if c.mapping == "" {
		c.mapping = MapPageDirect
	}
	if c.fill == "" {
		c.fill = FillLRU
	}
	// Canonical paper designs keep their paper names.
	if c.mapping == MapPageDirect {
		switch {
		case c.fill == FillLRU:
			c.canonical = c.alloc
		case c.fill == FillHotGate && c.alloc == KindPage && c.forcePageBytes == 4096:
			c.canonical = KindHotPage
		}
	}
	return c, nil
}

// TagLatencyFor returns the paper's Table 4 SRAM lookup latency in CPU
// cycles for a design kind (canonical or composite) at a paper-scale
// capacity. Scaled runs stand in for paper-sized caches, so they pay
// paper-sized latencies. The latency follows the allocation policy's
// tag-array width: block-vector tags (subblock, footprint) are wider
// and slower than page tags.
func TagLatencyFor(kind string, paperMB int) int {
	pick := func(l64, l128, l256, l512 int) int {
		switch {
		case paperMB <= 64:
			return l64
		case paperMB <= 128:
			return l128
		case paperMB <= 256:
			return l256
		default:
			return l512
		}
	}
	c, err := parseKind(kind)
	if err != nil {
		return 0
	}
	if c.fixed == KindBlock {
		return pick(9, 9, 9, 11)
	}
	switch c.alloc {
	case KindFootprint, KindFootprintNoSingleton, KindFootprintUnion, KindSubblock:
		return pick(4, 6, 9, 11)
	case KindPage:
		return pick(4, 5, 6, 9)
	default:
		return 0
	}
}

// buildAlloc constructs the allocation policy.
func buildAlloc(name string, spec DesignSpec, capBytes int64) (dcache.AllocPolicy, error) {
	switch name {
	case KindPage:
		return dcache.PageAlloc{}, nil
	case KindSubblock:
		return dcache.DemandAlloc{}, nil
	case KindFootprint, KindFootprintNoSingleton, KindFootprintUnion:
		fc := core.Default(capBytes)
		fc.FHTEntries = spec.FHTEntries
		fc.SingletonOpt = name != KindFootprintNoSingleton
		if name == KindFootprintUnion {
			fc.Feedback = core.FeedbackUnion
		}
		return core.NewFootprintPolicy(fc)
	default:
		return nil, fmt.Errorf("system: unknown allocation policy %q", name)
	}
}

// buildMapping constructs the mapping policy for a geometry.
func buildMapping(name string, geom dcache.PageGeometry) (dcache.MappingPolicy, error) {
	frames := geom.CapacityBytes / int64(geom.PageBytes)
	switch name {
	case MapPageDirect:
		return dcache.PageDirectMapping{PageBytes: geom.PageBytes}, nil
	case MapBlockRow:
		return dcache.BlockRowMapping{Frames: frames}, nil
	case MapHybrid:
		return dcache.HybridMapping{PageBytes: geom.PageBytes, Frames: frames}, nil
	default:
		return nil, fmt.Errorf("system: unknown mapping policy %q", name)
	}
}

// BuildDesign constructs the specified cache design. Page-granularity
// kinds are built as policy compositions on the generic engine
// (dcache.Engine); the golden parity test pins them byte-identical to
// the monolithic reference implementations.
func BuildDesign(spec DesignSpec) (dcache.Design, error) {
	spec = spec.withDefaults()
	comp, err := resolve(spec)
	if err != nil {
		return nil, err
	}
	capBytes := spec.CapacityBytes()

	switch comp.fixed {
	case KindBaseline:
		return dcache.NewBaseline(), nil
	case KindIdeal:
		return dcache.NewIdeal(), nil
	case KindBlock:
		entries, ways, mmLat := dcache.MissMapParams(spec.PaperCapacityMB)
		entries = int(float64(entries) * spec.Scale)
		entries -= entries % ways
		if entries < ways {
			entries = ways
		}
		return dcache.NewBlockCache(dcache.BlockCacheConfig{
			CapacityBytes:  capBytes,
			MissMapEntries: entries,
			MissMapWays:    ways,
			TagCycles:      mmLat,
		})
	}

	pageBytes := spec.PageBytes
	if comp.forcePageBytes != 0 {
		pageBytes = comp.forcePageBytes
	}
	geom := dcache.PageGeometry{CapacityBytes: capBytes, PageBytes: pageBytes, Ways: spec.Ways}
	alloc, err := buildAlloc(comp.alloc, spec, capBytes)
	if err != nil {
		return nil, err
	}
	mapping, err := buildMapping(comp.mapping, geom)
	if err != nil {
		return nil, err
	}
	name := comp.Name()
	engine, err := dcache.NewEngine(dcache.EngineConfig{
		Name:      name,
		Geometry:  geom,
		TagCycles: TagLatencyFor(name, spec.PaperCapacityMB),
		Alloc:     alloc,
		Mapping:   mapping,
		// Partitioned designs need the resizable consistent-hash set
		// mapping; the geometry spans the full stacked capacity and
		// the partition decides how much of it the tags govern.
		Consistent: comp.partition != "",
	})
	if err != nil {
		return nil, err
	}
	var design dcache.Design
	switch comp.fill {
	case FillLRU:
		design = engine
	case FillHotGate:
		design, err = dcache.NewGate(dcache.GateConfig{Name: name, Engine: engine, Policy: dcache.HotGatePolicy{Threshold: 8}})
	case FillBanshee:
		design, err = dcache.NewGate(dcache.GateConfig{Name: name, Engine: engine, Policy: dcache.BansheeGatePolicy{}})
	default:
		return nil, fmt.Errorf("system: unknown fill policy %q", comp.fill)
	}
	if err != nil {
		return nil, err
	}
	if comp.partition == "" {
		return design, nil
	}
	return dcache.NewPartitioned(dcache.PartitionConfig{
		Name:       name,
		Inner:      design,
		Policy:     buildPartition(comp.partition),
		MemPercent: comp.memPct,
	})
}

// buildPartition constructs the partition policy. parseKind already
// validated the name.
func buildPartition(name string) dcache.PartitionPolicy {
	if name == PartMemLow {
		return dcache.LowAddrPartition{}
	}
	return dcache.HashBandPartition{}
}
