package system

import (
	"fmt"

	"fpcache/internal/core"
	"fpcache/internal/dcache"
)

// Design kind identifiers shared by the facade, the experiment
// drivers, and the CLIs.
const (
	KindBaseline             = "baseline"
	KindBlock                = "block"
	KindPage                 = "page"
	KindSubblock             = "subblock"
	KindFootprint            = "footprint"
	KindFootprintNoSingleton = "footprint-nosingleton"
	KindFootprintUnion       = "footprint-union"
	KindHotPage              = "hotpage"
	KindIdeal                = "ideal"
)

// DesignSpec describes a cache design at a paper-scale capacity and a
// run scale.
type DesignSpec struct {
	Kind            string
	PaperCapacityMB int
	// Scale is the capacity scale factor (1.0 = paper scale).
	Scale float64
	// PageBytes defaults to 2KB.
	PageBytes int
	// FHTEntries defaults to 16K (Footprint designs only).
	FHTEntries int
	// Ways defaults to 16 (page-granularity designs).
	Ways int
}

func (s DesignSpec) withDefaults() DesignSpec {
	if s.Scale == 0 {
		s.Scale = 1
	}
	if s.PageBytes == 0 {
		s.PageBytes = 2048
	}
	if s.FHTEntries == 0 {
		s.FHTEntries = 16 * 1024
	}
	if s.Ways == 0 {
		s.Ways = 16
	}
	if s.PaperCapacityMB == 0 {
		s.PaperCapacityMB = 256
	}
	return s
}

// CapacityBytes returns the scaled capacity.
func (s DesignSpec) CapacityBytes() int64 {
	s = s.withDefaults()
	return int64(float64(int64(s.PaperCapacityMB)<<20) * s.Scale)
}

// TagLatencyFor returns the paper's Table 4 SRAM lookup latency in CPU
// cycles for a design kind at a paper-scale capacity. Scaled runs
// stand in for paper-sized caches, so they pay paper-sized latencies.
func TagLatencyFor(kind string, paperMB int) int {
	pick := func(l64, l128, l256, l512 int) int {
		switch {
		case paperMB <= 64:
			return l64
		case paperMB <= 128:
			return l128
		case paperMB <= 256:
			return l256
		default:
			return l512
		}
	}
	switch kind {
	case KindFootprint, KindFootprintNoSingleton, KindFootprintUnion, KindSubblock:
		return pick(4, 6, 9, 11)
	case KindPage, KindHotPage:
		return pick(4, 5, 6, 9)
	case KindBlock:
		return pick(9, 9, 9, 11)
	default:
		return 0
	}
}

// BuildDesign constructs the specified cache design.
func BuildDesign(spec DesignSpec) (dcache.Design, error) {
	spec = spec.withDefaults()
	capBytes := spec.CapacityBytes()
	lat := TagLatencyFor(spec.Kind, spec.PaperCapacityMB)
	geom := dcache.PageGeometry{CapacityBytes: capBytes, PageBytes: spec.PageBytes, Ways: spec.Ways}
	switch spec.Kind {
	case KindBaseline:
		return dcache.NewBaseline(), nil
	case KindIdeal:
		return dcache.NewIdeal(), nil
	case KindPage:
		return dcache.NewPageCache(dcache.PageCacheConfig{Geometry: geom, TagCycles: lat})
	case KindSubblock:
		return dcache.NewSubblockCache(dcache.SubblockConfig{Geometry: geom, TagCycles: lat})
	case KindBlock:
		entries, ways, mmLat := dcache.MissMapParams(spec.PaperCapacityMB)
		entries = int(float64(entries) * spec.Scale)
		entries -= entries % ways
		if entries < ways {
			entries = ways
		}
		return dcache.NewBlockCache(dcache.BlockCacheConfig{
			CapacityBytes:  capBytes,
			MissMapEntries: entries,
			MissMapWays:    ways,
			TagCycles:      mmLat,
		})
	case KindFootprint, KindFootprintNoSingleton, KindFootprintUnion:
		fc := core.Default(capBytes)
		fc.Geometry = geom
		fc.TagCycles = lat
		fc.FHTEntries = spec.FHTEntries
		fc.SingletonOpt = spec.Kind != KindFootprintNoSingleton
		if spec.Kind == KindFootprintUnion {
			fc.Feedback = core.FeedbackUnion
		}
		return core.New(fc)
	case KindHotPage:
		// §6.7: CHOP found 4KB pages optimal.
		geom.PageBytes = 4096
		return dcache.NewHotPageCache(dcache.HotPageConfig{Geometry: geom, TagCycles: lat})
	default:
		return nil, fmt.Errorf("system: unknown design kind %q", spec.Kind)
	}
}
