package system

// ResizePolicy generalizes the partition resize schedule: the static
// ResizePlan and the adaptive controller (internal/control) both
// implement it, and both runners drive it identically — at every
// epoch boundary of *measured* references, in trace order, the policy
// sees the design's cumulative telemetry and answers with the split
// to run at. Keeping the boundary arithmetic and the telemetry
// trace-ordered is what lets an adaptive timing run stay
// byte-identical to its functional counterpart, and an
// interval-parallel run to its serial one.

import (
	"fmt"

	"fpcache/internal/control"
	"fpcache/internal/dcache"
	"fpcache/internal/snap"
)

// Telemetry is the trace-ordered, cumulative view of a run a
// ResizePolicy decides from. Every field is a running total over the
// design's lifetime (warmup included): policies difference
// consecutive readings themselves, which keeps the reading
// position-independent — a policy restored mid-run continues from its
// snapshotted baseline.
type Telemetry struct {
	// Refs is the absolute measured-reference position of the reading
	// (warmup excluded; interval segments continue the count).
	Refs uint64
	// Counters is the design's cumulative counter block.
	Counters dcache.Counters
	// Partition is the cumulative partition statistics block (zero
	// for designs without one).
	Partition dcache.PartitionStats
}

// ResizePolicy decides run-time partition splits. Period is the
// decision cadence in measured references (0 disables the policy
// entirely); Decide is called at every period boundary with the epoch
// index (0 for the first boundary) and the cumulative telemetry, and
// returns the memory fraction to apply plus whether to apply it —
// a false fire leaves the split alone, which is how a controller
// holds or cools down without churning no-op resizes.
//
// Implementations must be deterministic pure functions of the epoch
// sequence and telemetry they observe: no clocks, no randomness.
// Stateful policies additionally implement PolicyState so warm-state
// snapshots capture them.
type ResizePolicy interface {
	Period() int
	Decide(epoch int, t Telemetry) (frac float64, fire bool)
}

// PolicyState is implemented by stateful policies (the adaptive
// controller); SimState snapshots embed it so interval and warm-cache
// runs restore the policy mid-flight.
type PolicyState interface {
	SaveState(*snap.Writer)
	LoadState(*snap.Reader) error
}

// Period implements ResizePolicy. It is nil-receiver-safe so a
// typed-nil *ResizePlan threaded through the ResizePolicy interface
// (the facade's "no resizes" value) reads as disabled.
func (p *ResizePlan) Period() int {
	if p == nil || p.PeriodRefs <= 0 || len(p.Fractions) == 0 {
		return 0
	}
	return p.PeriodRefs
}

// Decide implements ResizePolicy: the static schedule ignores
// telemetry and always fires the next fraction in the cycle, which
// reproduces the pre-policy ResizePlan behavior byte for byte.
func (p *ResizePlan) Decide(epoch int, _ Telemetry) (float64, bool) {
	return p.Fractions[epoch%len(p.Fractions)], true
}

// policyPeriod returns the decision cadence of a policy, 0 for nil or
// disabled policies.
func policyPeriod(pol ResizePolicy) int {
	if pol == nil {
		return 0
	}
	return pol.Period()
}

// policyLabel renders a policy as a deterministic string for
// checkpoint keys and run labels; empty for nil/disabled policies.
// Static plans keep the historical "resize=<period>@<fractions>"
// rendering the interval checkpoint keys already use.
func policyLabel(pol ResizePolicy) string {
	if policyPeriod(pol) <= 0 {
		return ""
	}
	switch p := pol.(type) {
	case *ResizePlan:
		return fmt.Sprintf("resize=%d@%v", p.PeriodRefs, p.Fractions)
	case interface{ Label() string }:
		return p.Label()
	}
	return fmt.Sprintf("policy=%T@%d", pol, pol.Period())
}

// telemetryOf assembles the cumulative telemetry reading at measured
// reference refs. part is the design's partition-statistics accessor
// (nil for unpartitioned designs), hoisted by the caller so boundary
// readings stay allocation-free.
func telemetryOf(design dcache.Design, part func() dcache.PartitionStats, refs uint64) Telemetry {
	t := Telemetry{Refs: refs, Counters: design.Counters()}
	if part != nil {
		t.Partition = part()
	}
	return t
}

// AdaptivePolicy adapts a control.Controller to the ResizePolicy
// interface: every epoch it converts the runner's cumulative
// telemetry into a control.Sample — the off-chip traffic proxy is 64
// bytes per miss and per dirty eviction, cumulative by construction —
// and lets the controller's hill climb decide. It implements
// PolicyState, so warm-state snapshots carry the controller's window
// and climb registers.
type AdaptivePolicy struct {
	ctl *control.Controller
}

// NewAdaptivePolicy builds an adaptive policy from a controller
// config (zero fields take the controller's defaults).
func NewAdaptivePolicy(cfg control.Config) *AdaptivePolicy {
	return &AdaptivePolicy{ctl: control.NewController(cfg)}
}

// Controller exposes the wrapped controller (tests, diagnostics).
func (a *AdaptivePolicy) Controller() *control.Controller { return a.ctl }

// Period implements ResizePolicy.
func (a *AdaptivePolicy) Period() int { return a.ctl.Config().EpochRefs }

// Decide implements ResizePolicy.
func (a *AdaptivePolicy) Decide(_ int, t Telemetry) (float64, bool) {
	return a.ctl.Observe(control.Sample{
		Refs:         t.Refs,
		Accesses:     t.Counters.Accesses(),
		Hits:         t.Counters.Hits,
		MemHits:      t.Partition.MemHits,
		OffChipBytes: 64 * (t.Counters.Misses + t.Counters.DirtyEvicts),
	})
}

// Label renders the controller config deterministically (checkpoint
// keys, experiment rows).
func (a *AdaptivePolicy) Label() string { return a.ctl.Config().Label() }

// SaveState implements PolicyState.
func (a *AdaptivePolicy) SaveState(w *snap.Writer) { a.ctl.Save(w) }

// LoadState implements PolicyState.
func (a *AdaptivePolicy) LoadState(r *snap.Reader) error { return a.ctl.Load(r) }
