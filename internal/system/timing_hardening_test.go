package system

import (
	"errors"
	"strings"
	"testing"

	"fpcache/internal/dcache"
	"fpcache/internal/fault"
	"fpcache/internal/memtrace"
	"fpcache/internal/testutil"
)

// badDesign emits a structurally invalid outcome DAG: its op depends
// on itself, which dispatchOps would never submit — the core waiting
// on it would deadlock silently with its pooled buffer stranded.
type badDesign struct {
	ctr dcache.Counters
}

func (b *badDesign) Name() string              { return "bad-dag" }
func (b *badDesign) MetadataBits() int64       { return 0 }
func (b *badDesign) Counters() dcache.Counters { return b.ctr }
func (b *badDesign) Access(rec memtrace.Record, ops []dcache.Op) dcache.Outcome {
	ops = append(ops[:0], dcache.Op{
		Level: dcache.OffChip, Addr: rec.Addr, Bytes: 64,
		Critical: true, DependsOn: 0, // self-dependency: a cycle
	})
	return dcache.Outcome{Ops: ops}
}

// badResizable emits valid outcomes but a cyclic resize-transition op
// list.
type badResizable struct {
	dcache.Baseline
}

func (b *badResizable) Resize(memFraction float64, ops []dcache.Op) []dcache.Op {
	return append(ops, dcache.Op{Level: dcache.Stacked, Addr: 0, Bytes: 64, DependsOn: 0})
}

// mustInvalidOps asserts a runner rejected a malformed op DAG with the
// typed fault — returned, not panicked, so one bad design composition
// fails one sweep point instead of the process.
func mustInvalidOps(t *testing.T, what string, err error) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: no error; a malformed op DAG would deadlock the timing run silently", what)
	}
	if !errors.Is(err, fault.ErrInvalidOps) {
		t.Fatalf("%s: error does not wrap fault.ErrInvalidOps: %v", what, err)
	}
	if !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("%s: unexpected error %v", what, err)
	}
}

// TestTimingRejectsCyclicOutcome pins that RunTiming validates the
// leading outcomes of every run and fails its run on a malformed DAG
// instead of deadlocking a core.
func TestTimingRejectsCyclicOutcome(t *testing.T) {
	_, err := RunTiming(&badDesign{}, testutil.RandomTrace(1000, 5, 4), TimingConfig{Cores: 4, MLP: 2, MaxRefs: 1000})
	mustInvalidOps(t, "cyclic outcome", err)
}

// TestRunnersRejectCyclicResizeOps pins the same validation for
// resize-transition op lists in both runners.
func TestRunnersRejectCyclicResizeOps(t *testing.T) {
	plan := &ResizePlan{PeriodRefs: 100, Fractions: []float64{0.25}}
	_, ferr := RunFunctionalResized(&badResizable{}, testutil.RandomTrace(1000, 5, 4), 0, 1000, plan)
	mustInvalidOps(t, "functional resize", ferr)
	_, terr := RunTiming(&badResizable{}, testutil.RandomTrace(1000, 5, 4), TimingConfig{Cores: 4, MLP: 2, MaxRefs: 1000, Resize: plan})
	mustInvalidOps(t, "timing resize", terr)
}

// skewedTrace builds a trace whose records all name core 0 of a
// multi-core pod — the documented demux worst case: any other core's
// pull drains (and functionally evaluates) the remaining trace into
// core 0's queue.
func skewedTrace(n int) *memtrace.Slice {
	recs := make([]memtrace.Record, n)
	for i := range recs {
		recs[i] = memtrace.Record{
			PC:   memtrace.PC(0x400000 + (i%64)*4),
			Addr: memtrace.Addr((i % (1 << 14)) * 64),
			Gap:  10,
			// Core is always 0.
		}
	}
	return memtrace.NewSlice(recs)
}

// TestQueueHighWaterSkewedTrace pins the documented queue-skew memory
// behavior and its new observability: a fully core-skewed trace drives
// the demux high-water mark to nearly the whole trace, while an evenly
// interleaved trace keeps queues shallow.
func TestQueueHighWaterSkewedTrace(t *testing.T) {
	const refs = 4000
	build := func() dcache.Design {
		d, err := BuildDesign(DesignSpec{Kind: KindPage, PaperCapacityMB: 64, Scale: 1.0 / 64})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	skew := mustTiming(RunTiming(build(), skewedTrace(refs), TimingConfig{Cores: 8, MLP: 2, MaxRefs: refs}))
	if skew.QueueHighWater < refs/2 {
		t.Fatalf("skewed trace high water %d; expected close to %d (the documented drain-ahead blowup)",
			skew.QueueHighWater, refs)
	}

	even := mustTiming(RunTiming(build(), testutil.RandomTrace(refs, 5, 8), TimingConfig{Cores: 8, MLP: 2, MaxRefs: refs}))
	if even.QueueHighWater >= refs/2 {
		t.Fatalf("evenly interleaved trace high water %d; queues should stay shallow", even.QueueHighWater)
	}
	if even.QueueHighWater == 0 {
		t.Fatal("high-water mark not recorded")
	}
}
