package system

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"fpcache/internal/dcache"
	"fpcache/internal/fault"
)

// WarmCache is a content-keyed store of warm-state snapshots: one file
// per (workload, seed, scale, design spec, warmup length) point. The
// paper's methodology simulates from warmed checkpoints (§5.4); the
// cache makes every experiment after the first restore a point's warm
// state in milliseconds instead of re-paying the warmup references —
// which is what lets a full RunAll sweep re-run cheaply while results
// stay byte-identical (snapshot restore is exact by construction).
//
// The cache is an accelerator, never a correctness dependency: a
// corrupt or identity-mismatched entry is quarantined (renamed aside,
// never re-read) and reported as a miss, so the caller falls back to a
// cold warmup and produces rows byte-identical to a never-cached run.
type WarmCache struct {
	dir string
	// maxBytes caps the total size of stored snapshots; see SetMaxBytes.
	maxBytes int64
	// WrapReader/WrapWriter, when non-nil, wrap every snapshot file
	// stream. They exist so a fault-injection harness can corrupt or
	// fail cache I/O without the cache importing it; production runs
	// leave them nil.
	WrapReader func(io.Reader) io.Reader
	WrapWriter func(io.Writer) io.Writer
}

// staleTempAge is how old an orphaned atomic-write temp file must be
// before NewWarmCache sweeps it: old enough that no live writer still
// owns it (a warmup takes seconds, not hours), young enough that a
// crashed sweep's litter disappears on the next run.
const staleTempAge = time.Hour

// NewWarmCache opens (creating if needed) a snapshot cache directory.
// Stale temp files abandoned by crashed writers are swept on open;
// recent temps are left alone, since a concurrent worker may still be
// writing them.
func NewWarmCache(dir string) (*WarmCache, error) {
	if dir == "" {
		//fplint:ignore faulterr caller misconfiguration, not a damaged artifact; ClassUnknown (no retry, no quarantine) is right
		return nil, fmt.Errorf("system: warm cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("system: creating warm cache: %w", err)
	}
	c := &WarmCache{dir: dir}
	c.sweepStaleTemps()
	return c, nil
}

// sweepStaleTemps removes atomic-write temp files older than
// staleTempAge — the residue of writers that crashed between CreateTemp
// and Rename.
func (c *WarmCache) sweepStaleTemps() {
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.tmp*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		//fplint:ignore determinism mtime age gates temp-file cleanup only; no simulation result depends on it
		if fi, err := os.Stat(m); err == nil && time.Since(fi.ModTime()) > staleTempAge {
			os.Remove(m)
		}
	}
}

// Dir returns the cache directory.
func (c *WarmCache) Dir() string { return c.dir }

// SetMaxBytes caps the total bytes of stored snapshots; 0 (the
// default) is unlimited. When a Store pushes the cache over the cap,
// the oldest entries (by modification time) are evicted until it fits
// again — an eviction only costs the evicted point its next warmup.
func (c *WarmCache) SetMaxBytes(n int64) { c.maxBytes = n }

// WarmKey identifies a warm state: everything that determines the
// functional state after the warmup prefix. Two runs with equal keys
// have byte-identical warm state, whatever experiment asked for them.
type WarmKey struct {
	// Workload, Seed, and Scale pin the generated reference stream.
	Workload string
	Seed     int64
	Scale    float64
	// WarmupRefs is the warmup prefix length.
	WarmupRefs int
	// TraceID and AtRecord identify an interval checkpoint: the trace
	// file's content hash and the absolute record index the state was
	// captured at. Whole-run warmup snapshots leave both zero. They
	// participate in the content key, so an interval checkpoint can
	// never collide with a whole-run snapshot of the same point — or
	// with a checkpoint of different trace content at the same index.
	TraceID  string
	AtRecord uint64
	// Spec is the design configuration (all fields participate).
	Spec DesignSpec
}

// Hash derives the cache key. Both snapshot format versions (envelope
// and design layout) are part of the key material, so a format bump
// simply misses old entries instead of tripping over them.
func (k WarmKey) Hash() string {
	s := k.Spec.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "snap=%d.%d|wl=%s|seed=%d|scale=%g|warm=%d|trace=%s|at=%d|",
		warmStateVersion, dcache.SnapshotVersion, k.Workload, k.Seed, k.Scale, k.WarmupRefs, k.TraceID, k.AtRecord)
	fmt.Fprintf(h, "kind=%s|mb=%d|dscale=%g|alloc=%s|map=%s|fill=%s|part=%s|page=%d|fht=%d|ways=%d",
		s.Kind, s.PaperCapacityMB, s.Scale, s.Alloc, s.Mapping, s.Fill, s.Partition, s.PageBytes, s.FHTEntries, s.Ways)
	return hex.EncodeToString(h.Sum(nil))
}

// Meta returns the run-identity metadata stored inside (and validated
// against) the snapshot itself — defense in depth behind the content
// key.
func (k WarmKey) Meta() SnapshotMeta {
	return SnapshotMeta{
		Workload: k.Workload, Seed: k.Seed, Scale: k.Scale, WarmupRefs: k.WarmupRefs,
		TraceID: k.TraceID, AtRecord: k.AtRecord,
	}
}

// path returns the snapshot file for a key.
func (c *WarmCache) path(key WarmKey) string {
	return filepath.Join(c.dir, key.Hash()+".warm")
}

// QuarantineDirName is the subdirectory quarantined snapshots move to.
// path() only ever resolves dir/<hash>.warm, so a quarantined file can
// never be re-read as a cache entry.
const QuarantineDirName = "quarantine"

// QuarantineEvent records one snapshot pulled out of service.
type QuarantineEvent struct {
	// Key is the entry's content hash.
	Key string
	// Path is where the corrupt file went ("" if it could only be
	// deleted).
	Path string
	// Err is the corruption that triggered the quarantine.
	Err error
}

// Load restores the snapshot for key into s. On a hit it returns
// (true, nil, nil); on a plain miss (false, nil, nil).
//
// A present-but-unreadable snapshot splits by fault class: a transient
// I/O failure (fault.ErrTransientIO) is returned as the error — the
// file may be fine, so it is not quarantined and the caller's retry
// policy decides; any other restore failure (corruption, identity
// mismatch, truncation) quarantines the entry and reports a miss with
// the event. Either way a failed restore may have partially mutated s,
// so the caller must rebuild its state fresh before warming cold or
// retrying — never measure from a partially restored state.
func (c *WarmCache) Load(key WarmKey, s *SimState) (bool, *QuarantineEvent, error) {
	f, err := os.Open(c.path(key))
	if os.IsNotExist(err) {
		return false, nil, nil
	}
	if err != nil {
		return false, nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if c.WrapReader != nil {
		r = c.WrapReader(r)
	}
	if err := s.Restore(r, key.Meta()); err != nil {
		err = fmt.Errorf("system: restoring warm state %s: %w", c.path(key), err)
		if fault.Retryable(err) {
			return false, nil, err
		}
		return false, c.quarantine(key, err), nil
	}
	return true, nil, nil
}

// quarantine moves a corrupt snapshot aside (best effort: deleted if
// the rename fails) so it is never re-read, and returns the event.
func (c *WarmCache) quarantine(key WarmKey, cause error) *QuarantineEvent {
	ev := &QuarantineEvent{Key: key.Hash(), Err: cause}
	src := c.path(key)
	qdir := filepath.Join(c.dir, QuarantineDirName)
	dst := filepath.Join(qdir, key.Hash()+".warm")
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if err := os.Rename(src, dst); err == nil {
			ev.Path = dst
			return ev
		}
	}
	os.Remove(src)
	return ev
}

// Store writes s's snapshot for key, atomically (write to a temp file,
// rename into place) so concurrent writers of the same key cannot
// expose a torn snapshot, then enforces the size cap.
func (c *WarmCache) Store(key WarmKey, s *SimState) error {
	f, err := os.CreateTemp(c.dir, key.Hash()+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	var w io.Writer = f
	if c.WrapWriter != nil {
		w = c.WrapWriter(w)
	}
	if err := s.Snapshot(w, key.Meta()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("system: writing warm state: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return c.enforceCap()
}

// enforceCap evicts oldest-first (modification time, then name for a
// deterministic tie order) until stored snapshots fit the cap.
func (c *WarmCache) enforceCap() error {
	if c.maxBytes <= 0 {
		return nil
	}
	matches, err := filepath.Glob(filepath.Join(c.dir, "*.warm"))
	if err != nil {
		return err
	}
	type entry struct {
		path string
		size int64
		mod  time.Time
	}
	var entries []entry
	var total int64
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue // concurrently evicted or quarantined
		}
		entries = append(entries, entry{m, fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mod.Equal(entries[j].mod) {
			return entries[i].mod.Before(entries[j].mod)
		}
		return entries[i].path < entries[j].path
	})
	for _, e := range entries {
		if total <= c.maxBytes {
			break
		}
		if err := os.Remove(e.path); err == nil || os.IsNotExist(err) {
			total -= e.size
		}
	}
	return nil
}
