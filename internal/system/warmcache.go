package system

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"

	"fpcache/internal/dcache"
)

// WarmCache is a content-keyed store of warm-state snapshots: one file
// per (workload, seed, scale, design spec, warmup length) point. The
// paper's methodology simulates from warmed checkpoints (§5.4); the
// cache makes every experiment after the first restore a point's warm
// state in milliseconds instead of re-paying the warmup references —
// which is what lets a full RunAll sweep re-run cheaply while results
// stay byte-identical (snapshot restore is exact by construction).
type WarmCache struct {
	dir string
}

// NewWarmCache opens (creating if needed) a snapshot cache directory.
func NewWarmCache(dir string) (*WarmCache, error) {
	if dir == "" {
		return nil, fmt.Errorf("system: warm cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("system: creating warm cache: %w", err)
	}
	return &WarmCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *WarmCache) Dir() string { return c.dir }

// WarmKey identifies a warm state: everything that determines the
// functional state after the warmup prefix. Two runs with equal keys
// have byte-identical warm state, whatever experiment asked for them.
type WarmKey struct {
	// Workload, Seed, and Scale pin the generated reference stream.
	Workload string
	Seed     int64
	Scale    float64
	// WarmupRefs is the warmup prefix length.
	WarmupRefs int
	// Spec is the design configuration (all fields participate).
	Spec DesignSpec
}

// Hash derives the cache key. The snapshot format version is part of
// the key material, so a format bump simply misses old entries instead
// of tripping over them.
func (k WarmKey) Hash() string {
	s := k.Spec.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "snap=%d|wl=%s|seed=%d|scale=%g|warm=%d|", dcache.SnapshotVersion, k.Workload, k.Seed, k.Scale, k.WarmupRefs)
	fmt.Fprintf(h, "kind=%s|mb=%d|dscale=%g|alloc=%s|map=%s|fill=%s|part=%s|page=%d|fht=%d|ways=%d",
		s.Kind, s.PaperCapacityMB, s.Scale, s.Alloc, s.Mapping, s.Fill, s.Partition, s.PageBytes, s.FHTEntries, s.Ways)
	return hex.EncodeToString(h.Sum(nil))
}

// Meta returns the run-identity metadata stored inside (and validated
// against) the snapshot itself — defense in depth behind the content
// key.
func (k WarmKey) Meta() SnapshotMeta {
	return SnapshotMeta{Workload: k.Workload, Seed: k.Seed, Scale: k.Scale, WarmupRefs: k.WarmupRefs}
}

// path returns the snapshot file for a key.
func (c *WarmCache) path(key WarmKey) string {
	return filepath.Join(c.dir, key.Hash()+".warm")
}

// Load restores the snapshot for key into s, reporting whether one
// existed. A present-but-unreadable snapshot is an error (restore may
// have partially mutated s), never a silent miss.
func (c *WarmCache) Load(key WarmKey, s *SimState) (bool, error) {
	f, err := os.Open(c.path(key))
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer f.Close()
	if err := s.Restore(f, key.Meta()); err != nil {
		return false, fmt.Errorf("system: restoring warm state %s: %w", c.path(key), err)
	}
	return true, nil
}

// Store writes s's snapshot for key, atomically (write to a temp file,
// rename into place) so concurrent writers of the same key cannot
// expose a torn snapshot.
func (c *WarmCache) Store(key WarmKey, s *SimState) error {
	f, err := os.CreateTemp(c.dir, key.Hash()+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := s.Snapshot(f, key.Meta()); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("system: writing warm state: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, c.path(key)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
