package system

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"fpcache/internal/synth"
)

// wcSpec is the small design the warm-cache robustness tests store.
func wcSpec() DesignSpec {
	return DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 1.0 / 64}
}

// wcKey builds a cache key over wcSpec, varied by seed.
func wcKey(seed int64) WarmKey {
	return WarmKey{Workload: synth.WebSearch, Seed: seed, Scale: 1.0 / 64, WarmupRefs: 0, Spec: wcSpec()}
}

// wcState builds a fresh SimState for wcSpec.
func wcState(t *testing.T) *SimState {
	t.Helper()
	d, err := BuildDesign(wcSpec())
	if err != nil {
		t.Fatal(err)
	}
	return NewSimState(d)
}

// TestWarmCacheTornTempNeverVisible pins the crash-mid-write atomicity
// contract: a writer that died between CreateTemp and Rename leaves a
// temp file that is never served as a cache entry, and a recent temp
// (possibly a live concurrent writer's) survives reopening the cache.
func TestWarmCacheTornTempNeverVisible(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewWarmCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := wcKey(1)
	torn := filepath.Join(dir, key.Hash()+".tmp12345")
	if err := os.WriteFile(torn, []byte("half a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	if hit, ev, err := cache.Load(key, wcState(t)); err != nil || hit || ev != nil {
		t.Fatalf("torn temp served as an entry: hit=%v ev=%v err=%v", hit, ev, err)
	}
	// Reopening must leave the recent temp alone — its writer may be
	// alive on another worker.
	if _, err := NewWarmCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); err != nil {
		t.Fatalf("recent temp file swept: %v", err)
	}
}

// TestWarmCacheStaleTempSweep pins the other half: temps older than the
// stale age are residue of crashed writers and are removed on open.
func TestWarmCacheStaleTempSweep(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewWarmCache(dir); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(dir, wcKey(1).Hash()+".tmp999")
	if err := os.WriteFile(stale, []byte("crashed writer residue"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWarmCache(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp survived reopen: %v", err)
	}
}

// failAfterWriter errors once n bytes have passed — a disk that fills
// mid-snapshot.
type failAfterWriter struct {
	w io.Writer
	n int
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	if len(p) > f.n {
		p = p[:f.n]
	}
	n, err := f.w.Write(p)
	f.n -= n
	if err == nil && f.n <= 0 {
		err = errors.New("disk full")
	}
	return n, err
}

// TestWarmCacheStoreFailureLeavesNoLitter pins Store's cleanup: a write
// error mid-snapshot removes the temp file and installs nothing.
func TestWarmCacheStoreFailureLeavesNoLitter(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewWarmCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.WrapWriter = func(w io.Writer) io.Writer { return &failAfterWriter{w: w, n: 100} }
	if err := cache.Store(wcKey(1), wcState(t)); err == nil {
		t.Fatal("Store succeeded through a failing writer")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed Store left litter: %v", entries)
	}
}

// TestWarmCacheQuarantineMovesEntryAside pins the quarantine mechanics
// at the cache layer: a corrupt entry is renamed into the quarantine
// subdirectory (never deleted silently, never re-read), the Load
// reports the event as a miss, and the slot is immediately reusable.
func TestWarmCacheQuarantineMovesEntryAside(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewWarmCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := wcKey(1)
	if err := cache.Store(key, wcState(t)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.Hash()+".warm")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	buf[3] ^= 0x40 // corrupt the envelope header
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	hit, ev, err := cache.Load(key, wcState(t))
	if err != nil || hit {
		t.Fatalf("corrupt entry: hit=%v err=%v", hit, err)
	}
	if ev == nil || ev.Err == nil {
		t.Fatalf("no quarantine event for a corrupt entry")
	}
	wantPath := filepath.Join(dir, QuarantineDirName, key.Hash()+".warm")
	if ev.Path != wantPath {
		t.Fatalf("quarantined to %q, want %q", ev.Path, wantPath)
	}
	if _, err := os.Stat(wantPath); err != nil {
		t.Fatalf("quarantined file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still in place: %v", err)
	}
	// The slot is now a plain miss and can be restored.
	if hit, ev, err := cache.Load(key, wcState(t)); err != nil || hit || ev != nil {
		t.Fatalf("after quarantine: hit=%v ev=%v err=%v", hit, ev, err)
	}
	if err := cache.Store(key, wcState(t)); err != nil {
		t.Fatal(err)
	}
	if hit, ev, err := cache.Load(key, wcState(t)); err != nil || !hit || ev != nil {
		t.Fatalf("re-stored entry: hit=%v ev=%v err=%v", hit, ev, err)
	}
}

// TestWarmCacheSizeCapEvictsOldest pins the -state-cache-max contract:
// when stored snapshots exceed the cap, the oldest entries (by mtime)
// are evicted first, and newer entries survive.
func TestWarmCacheSizeCapEvictsOldest(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewWarmCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := []WarmKey{wcKey(1), wcKey(2), wcKey(3)}
	for i, k := range keys {
		if err := cache.Store(k, wcState(t)); err != nil {
			t.Fatal(err)
		}
		// Stagger mtimes: keys[0] oldest.
		mod := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, k.Hash()+".warm"), mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	fi, err := os.Stat(filepath.Join(dir, keys[0].Hash()+".warm"))
	if err != nil {
		t.Fatal(err)
	}
	size := fi.Size()

	// Cap at ~2.5 entries, then store a fourth: the two oldest must go.
	cache.SetMaxBytes(2*size + size/2)
	k4 := wcKey(4)
	if err := cache.Store(k4, wcState(t)); err != nil {
		t.Fatal(err)
	}
	for i, k := range []WarmKey{keys[0], keys[1]} {
		if hit, _, _ := cache.Load(k, wcState(t)); hit {
			t.Fatalf("entry %d survived the cap", i)
		}
	}
	for i, k := range []WarmKey{keys[2], k4} {
		if hit, ev, err := cache.Load(k, wcState(t)); err != nil || !hit || ev != nil {
			t.Fatalf("newest entry %d evicted: hit=%v ev=%v err=%v", i, hit, ev, err)
		}
	}
}

// TestWarmKeyIntervalIdentity pins the key-collision regression from
// the interval-parallel runner: an interval checkpoint (trace content
// hash + start record) must hash to a different cache entry than the
// whole-run warmup snapshot of the same point, and than checkpoints of
// the same record index over different trace content. A restore under
// the wrong identity must also fail the snapshot's own meta check.
func TestWarmKeyIntervalIdentity(t *testing.T) {
	whole := wcKey(1)
	interval := whole
	interval.TraceID = "sha256:abc"
	interval.AtRecord = 4096
	otherTrace := interval
	otherTrace.TraceID = "sha256:def"
	otherStart := interval
	otherStart.AtRecord = 8192

	keys := map[string]string{
		"whole-run":   whole.Hash(),
		"interval":    interval.Hash(),
		"other-trace": otherTrace.Hash(),
		"other-start": otherStart.Hash(),
	}
	seen := map[string]string{}
	for name, h := range keys {
		if prev, dup := seen[h]; dup {
			t.Fatalf("keys %q and %q collide: %s", name, prev, h)
		}
		seen[h] = name
	}

	// Defense in depth: even with a forced key collision (copying the
	// file), the snapshot's embedded meta rejects the wrong identity.
	dir := t.TempDir()
	cache, err := NewWarmCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Store(interval, wcState(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(cache.path(interval))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path(whole), data, 0o644); err != nil {
		t.Fatal(err)
	}
	hit, ev, err := cache.Load(whole, wcState(t))
	if err != nil || hit {
		t.Fatalf("interval snapshot restored under whole-run identity: hit=%v err=%v", hit, err)
	}
	if ev == nil {
		t.Fatal("identity mismatch did not quarantine the entry")
	}
}
