package system

import (
	"math"
	"runtime"
	"testing"

	"fpcache/internal/memtrace"
	"fpcache/internal/synth"
	"fpcache/internal/testutil"
)

// intervalTrace writes n generated records into an in-memory v2 trace
// and opens it for random access.
func intervalTrace(t *testing.T, workload string, seed int64, scale float64, n, chunk int) *memtrace.FileReader {
	t.Helper()
	return testutil.ChunkedTrace(t, workload, seed, scale, n, chunk)
}

// TestPlanIntervalsChunkAligned pins the plan invariants: interior
// boundaries land on chunk starts, the plan covers the measured region
// exactly once, and the interval count clamps to the region.
func TestPlanIntervalsChunkAligned(t *testing.T) {
	tr := intervalTrace(t, synth.WebSearch, 7, 1.0/64, 10_000, 640)
	ivs, err := PlanIntervals(tr, 1_000, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, starts, _ := tr.Chunks()
	chunkStart := map[uint64]bool{}
	for _, s := range starts {
		chunkStart[s] = true
	}
	next := uint64(1_000)
	for i, iv := range ivs {
		if iv.Start != next {
			t.Fatalf("interval %d starts at %d, want %d (gap or overlap)", i, iv.Start, next)
		}
		if i > 0 && !chunkStart[iv.Start] {
			t.Errorf("interval %d boundary %d is not a chunk start", i, iv.Start)
		}
		next = iv.Start + iv.Refs
	}
	if next != 10_000 {
		t.Fatalf("plan covers [1000, %d), want [1000, 10000)", next)
	}
	if ivs, err = PlanIntervals(tr, 9_995, 0, 64); err != nil || len(ivs) > 5 {
		t.Fatalf("tiny region planned %d intervals (err %v), want <= 5", len(ivs), err)
	}
	if _, err := PlanIntervals(tr, 10_000, 0, 4); err == nil {
		t.Fatal("warmup consuming the whole trace did not error")
	}
}

// TestIntervalFunctionalParity is the tentpole contract: the merged
// functional result of an interval-parallel run is byte-identical to
// the serial run at every worker count, with and without a checkpoint
// cache, cold and warm.
func TestIntervalFunctionalParity(t *testing.T) {
	const (
		refs   = 24_000
		warmup = 8_000
		scale  = 1.0 / 64
	)
	spec := DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: scale}
	tr := intervalTrace(t, synth.WebSearch, 7, scale, refs, 512)

	d, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	serialSrc := intervalTrace(t, synth.WebSearch, 7, scale, refs, 512)
	want := testutil.AsJSON(t, mustFunctional(RunFunctional(d, serialSrc, warmup, 0)))

	opt := IntervalOptions{
		Spec: spec, Workload: synth.WebSearch, Seed: 7, Scale: scale,
		WarmupRefs: warmup, Intervals: 6,
	}
	cache, err := NewWarmCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		tweak func(*IntervalOptions)
		check func(*IntervalReport)
	}{
		{"j1", func(o *IntervalOptions) { o.Workers = 1 }, nil},
		{"j4", func(o *IntervalOptions) { o.Workers = 4 }, nil},
		{"jNumCPU", func(o *IntervalOptions) { o.Workers = runtime.NumCPU() }, nil},
		{"cache-cold", func(o *IntervalOptions) { o.Workers = 4; o.Cache = cache }, func(r *IntervalReport) {
			if r.Segments != 1 || r.Stored == 0 {
				t.Errorf("cold cache run: segments=%d stored=%d, want one chain storing checkpoints", r.Segments, r.Stored)
			}
		}},
		{"cache-warm", func(o *IntervalOptions) { o.Workers = 4; o.Cache = cache }, func(r *IntervalReport) {
			if r.Restored == 0 || r.Segments < 2 {
				t.Errorf("warm cache run: segments=%d restored=%d, want restored parallel chains", r.Segments, r.Restored)
			}
		}},
	}
	for _, tc := range cases {
		o := opt
		tc.tweak(&o)
		rep, err := RunIntervals(tr, o)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := testutil.AsJSON(t, rep.Functional); got != want {
			t.Fatalf("%s: merged result diverges from serial\nserial: %s\nmerged: %s", tc.name, want, got)
		}
		if tc.check != nil {
			tc.check(rep)
		}
	}
}

// TestIntervalResizeParity extends the parity contract to resizing
// partitioned designs: interval runs must fire every resize at the
// same absolute boundary with the same fraction as the serial run.
func TestIntervalResizeParity(t *testing.T) {
	const (
		refs   = 12_000
		warmup = 2_000
		scale  = 1.0 / 16
	)
	spec := DesignSpec{Kind: "footprint+memcache:50", PaperCapacityMB: 64, Scale: scale}
	plan := &ResizePlan{PeriodRefs: 1_500, Fractions: []float64{0.25, 0.75, 0.5}}
	tr := intervalTrace(t, synth.MapReduce, 11, scale, refs, 256)

	d, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	serialSrc := intervalTrace(t, synth.MapReduce, 11, scale, refs, 256)
	serial := mustFunctional(RunFunctionalResized(d, serialSrc, warmup, 0, plan))
	if serial.Partition == nil || serial.Partition.Resizes == 0 {
		t.Fatalf("serial reference applied no resizes: %+v", serial.Partition)
	}
	want := testutil.AsJSON(t, serial)

	for _, workers := range []int{1, 4} {
		rep, err := RunIntervals(tr, IntervalOptions{
			Spec: spec, Workload: synth.MapReduce, Seed: 11, Scale: scale,
			WarmupRefs: warmup, Intervals: 5, Workers: workers, Plan: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := testutil.AsJSON(t, rep.Functional); got != want {
			t.Fatalf("j%d: resizing merged result diverges from serial\nserial: %s\nmerged: %s", workers, want, got)
		}
	}
}

// TestIntervalTimingParity pins the timing-mode contract: merged
// results are byte-identical at any worker count (including the full
// latency histogram), and the functional counters and traffic match
// the serial functional run exactly — interval timing changes when
// operations happen, never which.
func TestIntervalTimingParity(t *testing.T) {
	const (
		refs   = 12_000
		warmup = 4_000
		scale  = 1.0 / 64
	)
	spec := DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: scale}
	tr := intervalTrace(t, synth.WebSearch, 7, scale, refs, 256)

	opt := IntervalOptions{
		Spec: spec, Workload: synth.WebSearch, Seed: 7, Scale: scale,
		WarmupRefs: warmup, Intervals: 4,
		Timing: &TimingConfig{Cores: 8, MLP: 2},
	}
	var baseline *IntervalReport
	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		o := opt
		o.Workers = workers
		rep, err := RunIntervals(tr, o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Timing == nil {
			t.Fatal("timing mode returned no timing result")
		}
		if baseline == nil {
			baseline = rep
			continue
		}
		if testutil.AsJSON(t, rep.Timing) != testutil.AsJSON(t, baseline.Timing) {
			t.Fatalf("j%d: merged timing result diverges from j1", workers)
		}
		if testutil.AsJSON(t, rep.Timing.ReadLatency.Counts) != testutil.AsJSON(t, baseline.Timing.ReadLatency.Counts) {
			t.Fatalf("j%d: merged latency histogram diverges from j1", workers)
		}
	}

	d, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	serialSrc := intervalTrace(t, synth.WebSearch, 7, scale, refs, 256)
	fn := mustFunctional(RunFunctional(d, serialSrc, warmup, 0))
	if testutil.AsJSON(t, baseline.Timing.Counters) != testutil.AsJSON(t, fn.Counters) {
		t.Fatalf("interval timing counters diverge from serial functional run\nfunctional: %s\ntiming:     %s",
			testutil.AsJSON(t, fn.Counters), testutil.AsJSON(t, baseline.Timing.Counters))
	}
	if baseline.Timing.OffChip.ReadBursts != fn.OffChip.ReadBursts ||
		baseline.Timing.OffChip.WriteBursts != fn.OffChip.WriteBursts {
		t.Fatalf("interval timing off-chip traffic diverges from serial functional run")
	}
}

// TestIntervalSampledWithinCI pins sampled mode's accuracy contract:
// with an adequate pre-roll window (here, as long as the run's own
// warmup — the regime the estimator is meant for, see DESIGN.md §11),
// the estimated hit ratio lands within its own reported 95% confidence
// interval of the exact run's, the reported measured fraction matches
// the sampling rate, and repeated sampled runs are deterministic.
func TestIntervalSampledWithinCI(t *testing.T) {
	const (
		refs   = 80_000
		warmup = 40_000
		scale  = 1.0 / 64
	)
	spec := DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: scale}
	tr := intervalTrace(t, synth.WebSearch, 7, scale, refs, 512)

	d, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	serialSrc := intervalTrace(t, synth.WebSearch, 7, scale, refs, 512)
	exact := mustFunctional(RunFunctional(d, serialSrc, warmup, 0)).Counters.HitRatio()

	opt := IntervalOptions{
		Spec: spec, Workload: synth.WebSearch, Seed: 7, Scale: scale,
		WarmupRefs: warmup, Intervals: 10, Workers: 4,
		SampleEvery: 2, SampleWarmup: warmup,
	}
	rep, err := RunIntervals(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Sampled {
		t.Fatal("SampleEvery=2 did not run sampled mode")
	}
	if rep.MeasuredFraction <= 0.3 || rep.MeasuredFraction >= 0.7 {
		t.Fatalf("measured fraction %.3f, want about half", rep.MeasuredFraction)
	}
	if dev := math.Abs(rep.HitRatioMean - exact); dev > rep.HitRatioCI95 {
		t.Fatalf("sampled estimate %.5f misses exact %.5f by %.5f, outside its CI95 ±%.5f",
			rep.HitRatioMean, exact, dev, rep.HitRatioCI95)
	}
	again, err := RunIntervals(tr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if testutil.AsJSON(t, again) != testutil.AsJSON(t, rep) {
		t.Fatal("sampled run is not deterministic")
	}
}

// TestMergeFunctionalAndTiming pins merge arithmetic on extras: the
// footprint and partition pointers sum field-wise, partition split
// fields carry from the last interval, and an empty merge is zero.
func TestMergeFunctionalAndTiming(t *testing.T) {
	a := FunctionalResult{Design: "x", Refs: 2, Instructions: 10}
	a.Counters.Reads, a.Counters.Hits = 2, 1
	b := FunctionalResult{Design: "x", Refs: 3, Instructions: 20}
	b.Counters.Reads, b.Counters.Hits = 3, 2
	m := MergeFunctional([]FunctionalResult{a, b})
	if m.Refs != 5 || m.Instructions != 30 || m.Counters.Reads != 5 || m.Counters.Hits != 3 {
		t.Fatalf("functional merge wrong: %+v", m)
	}
	if m := MergeFunctional(nil); m.Refs != 0 || m.Footprint != nil || m.Partition != nil {
		t.Fatalf("empty merge not zero: %+v", m)
	}
}
