package system

import (
	"encoding/json"
	"testing"

	"fpcache/internal/dram"
	"fpcache/internal/synth"
	"fpcache/internal/testutil"
)

// TestSchedulingParityTimingMatchesFunctional is the scheduling-parity
// regression for the command-level DRAM controller rework: functional
// counters (cache hits/misses) and traffic (read/write bursts per DRAM
// level) of a timing run must be byte-identical to a functional run
// over the same trace. RunTiming performs design transitions in trace
// order at demux drain time, so any controller scheduling change that
// perturbed these counters would be a bug in that decoupling.
func TestSchedulingParityTimingMatchesFunctional(t *testing.T) {
	for _, kind := range []string{KindFootprint, KindPage, KindBlock} {
		build := func() DesignSpec {
			return DesignSpec{Kind: kind, PaperCapacityMB: 64, Scale: 1.0 / 16}
		}
		d1, err := BuildDesign(build())
		if err != nil {
			t.Fatal(err)
		}
		fres := mustFunctional(RunFunctional(d1, testutil.RandomTrace(6000, 21, 8), 2000, 4000))

		d2, err := BuildDesign(build())
		if err != nil {
			t.Fatal(err)
		}
		tres := mustTiming(RunTiming(d2, testutil.RandomTrace(6000, 21, 8),
			TimingConfig{Cores: 8, MLP: 2, WarmupRefs: 2000, MaxRefs: 4000}))

		fj, _ := json.Marshal(fres.Counters)
		tj, _ := json.Marshal(tres.Counters)
		if string(fj) != string(tj) {
			t.Fatalf("%s: counters diverge\nfunctional: %s\ntiming:     %s", kind, fj, tj)
		}
		if fres.OffChip.ReadBursts != tres.OffChip.ReadBursts ||
			fres.OffChip.WriteBursts != tres.OffChip.WriteBursts {
			t.Fatalf("%s: off-chip traffic diverges: functional %d/%d, timing %d/%d", kind,
				fres.OffChip.ReadBursts, fres.OffChip.WriteBursts,
				tres.OffChip.ReadBursts, tres.OffChip.WriteBursts)
		}
		if fres.Stacked.ReadBursts != tres.Stacked.ReadBursts ||
			fres.Stacked.WriteBursts != tres.Stacked.WriteBursts {
			t.Fatalf("%s: stacked traffic diverges: functional %d/%d, timing %d/%d", kind,
				fres.Stacked.ReadBursts, fres.Stacked.WriteBursts,
				tres.Stacked.ReadBursts, tres.Stacked.WriteBursts)
		}
	}
}

// TestSchedulingParityInvariantToControllerTiming: radically different
// DRAM timing (and write-drain thresholds) must change cycles and
// latency but leave functional counters and traffic untouched.
func TestSchedulingParityInvariantToControllerTiming(t *testing.T) {
	run := func(perturb bool) TimingResult {
		d, err := BuildDesign(DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 1.0 / 16})
		if err != nil {
			t.Fatal(err)
		}
		cfg := TimingConfig{Cores: 8, MLP: 2, WarmupRefs: 1000, MaxRefs: 4000}
		if perturb {
			stk := dram.StackedDDR3_3200()
			stk.Timing.TCAS *= 3
			stk.Timing.TRCD *= 3
			stk.Timing.TRFC *= 2
			stk.WriteQueueDepth = 4
			off := dram.OffChipDDR3_1600()
			off.Timing.TFAW *= 4
			cfg.Stacked = &stk
			cfg.OffChip = &off
		}
		return mustTiming(RunTiming(d, testutil.RandomTrace(5000, 23, 8), cfg))
	}
	a, b := run(false), run(true)
	if a.Cycles == b.Cycles {
		t.Fatal("perturbed timing did not change cycle count — perturbation ineffective")
	}
	if a.Counters != b.Counters {
		t.Fatalf("controller timing perturbed functional counters:\n%+v\n%+v", a.Counters, b.Counters)
	}
	for _, pair := range [][2]dram.Stats{{a.OffChip, b.OffChip}, {a.Stacked, b.Stacked}} {
		if pair[0].ReadBursts != pair[1].ReadBursts || pair[0].WriteBursts != pair[1].WriteBursts {
			t.Fatalf("controller timing perturbed traffic: %+v vs %+v", pair[0], pair[1])
		}
	}
}

// TestSchedulingParityOnSyntheticWorkload covers the calibrated
// generator path (the one the paper figures run) for one workload.
func TestSchedulingParityOnSyntheticWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("synthetic workload parity in -short mode")
	}
	trace := func() *synth.Generator {
		prof, err := synth.ByName(synth.WebSearch)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := synth.NewGenerator(prof, 1, 1.0/64)
		if err != nil {
			t.Fatal(err)
		}
		return gen
	}
	d1, err := BuildDesign(DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 1.0 / 64})
	if err != nil {
		t.Fatal(err)
	}
	fres := mustFunctional(RunFunctional(d1, trace(), 10000, 20000))
	d2, _ := BuildDesign(DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: 1.0 / 64})
	tres := mustTiming(RunTiming(d2, trace(), TimingConfig{WarmupRefs: 10000, MaxRefs: 20000}))
	if fres.Counters != tres.Counters {
		t.Fatalf("web-search counters diverge:\nfunctional: %+v\ntiming:     %+v",
			fres.Counters, tres.Counters)
	}
}
