package system

import (
	"encoding/json"
	"testing"

	"fpcache/internal/dcache"
	"fpcache/internal/testutil"
)

// partitionSpec builds a small partitioned footprint design.
func partitionSpec(kind string) DesignSpec {
	return DesignSpec{Kind: kind, PaperCapacityMB: 64, Scale: 1.0 / 16}
}

// TestPartitionSchedulingParity extends the scheduling-parity
// regression to resizing runs: a timing run with a resize plan must
// report the same counters, traffic, and partition statistics as a
// functional run over the same trace with the same plan — resizes
// happen at drained-reference boundaries in trace order, so controller
// scheduling cannot perturb them.
func TestPartitionSchedulingParity(t *testing.T) {
	plan := &ResizePlan{PeriodRefs: 1000, Fractions: []float64{0.25, 0.75, 0.5}}
	for _, kind := range []string{"footprint+memcache:50", "page+memlow:25", "footprint+banshee+memcache:25"} {
		d1, err := BuildDesign(partitionSpec(kind))
		if err != nil {
			t.Fatal(err)
		}
		fres := mustFunctional(RunFunctionalResized(d1, testutil.RandomTrace(6000, 33, 8), 2000, 4000, plan))

		d2, err := BuildDesign(partitionSpec(kind))
		if err != nil {
			t.Fatal(err)
		}
		tres := mustTiming(RunTiming(d2, testutil.RandomTrace(6000, 33, 8),
			TimingConfig{Cores: 8, MLP: 2, WarmupRefs: 2000, MaxRefs: 4000, Resize: plan}))

		fj, _ := json.Marshal(fres.Counters)
		tj, _ := json.Marshal(tres.Counters)
		if string(fj) != string(tj) {
			t.Fatalf("%s: counters diverge\nfunctional: %s\ntiming:     %s", kind, fj, tj)
		}
		if fres.Partition == nil || tres.Partition == nil {
			t.Fatalf("%s: missing partition stats (functional %v, timing %v)", kind, fres.Partition, tres.Partition)
		}
		fp, _ := json.Marshal(fres.Partition)
		tp, _ := json.Marshal(tres.Partition)
		if string(fp) != string(tp) {
			t.Fatalf("%s: partition stats diverge\nfunctional: %s\ntiming:     %s", kind, fp, tp)
		}
		if fres.Partition.Resizes == 0 {
			t.Fatalf("%s: plan applied no resizes: %+v", kind, *fres.Partition)
		}
		if fres.OffChip.ReadBursts != tres.OffChip.ReadBursts ||
			fres.OffChip.WriteBursts != tres.OffChip.WriteBursts {
			t.Fatalf("%s: off-chip traffic diverges: functional %d/%d, timing %d/%d", kind,
				fres.OffChip.ReadBursts, fres.OffChip.WriteBursts,
				tres.OffChip.ReadBursts, tres.OffChip.WriteBursts)
		}
		if fres.Stacked.ReadBursts != tres.Stacked.ReadBursts ||
			fres.Stacked.WriteBursts != tres.Stacked.WriteBursts {
			t.Fatalf("%s: stacked traffic diverges: functional %d/%d, timing %d/%d", kind,
				fres.Stacked.ReadBursts, fres.Stacked.WriteBursts,
				tres.Stacked.ReadBursts, tres.Stacked.WriteBursts)
		}
	}
}

// TestPartitionedDesignBasics pins structural properties of built
// partitioned designs: memory hits bypass tags, counters add up, and
// the partition share follows the spec.
func TestPartitionedDesignBasics(t *testing.T) {
	d, err := BuildDesign(partitionSpec("footprint+memcache:50"))
	if err != nil {
		t.Fatal(err)
	}
	p, ok := d.(*dcache.Partitioned)
	if !ok {
		t.Fatalf("built design is %T, want *dcache.Partitioned", d)
	}
	res := mustFunctional(RunFunctional(d, testutil.RandomTrace(20_000, 5, 8), 5000, 0))
	if res.Partition == nil {
		t.Fatal("functional result missing partition stats")
	}
	if res.Partition.MemHits == 0 {
		t.Fatal("hash-band partition at 50% served no memory hits")
	}
	total := res.Partition.MemPages + res.Partition.CachePages
	if frac := float64(res.Partition.MemPages) / float64(total); frac < 0.45 || frac > 0.55 {
		t.Fatalf("memory share %.2f, want ≈0.50", frac)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The predictor is still reachable through the partition wrapper.
	if res.Footprint == nil {
		t.Fatal("partitioned footprint design lost predictor statistics")
	}
}

// TestKindNameRoundTrip pins the spec grammar's fixed point: the name
// a built design reports must normalize to itself and build an
// identical design — including the hotpage composites whose "hotpage"
// token carries the 4KB page pin (the PR-3 follow-up: Name() used to
// re-spell it "page+hotgate", silently dropping the page size).
func TestKindNameRoundTrip(t *testing.T) {
	specs := []string{
		"hotpage", "hotpage+blockrow", "hotpage+hybrid",
		"footprint+banshee", "page+blockrow", "subblock+hybrid+hotgate",
		"footprint+memcache:50", "page+memlow:25", "footprint+banshee+memcache:25",
		"footprint+hybrid+memcache:0",
	}
	for _, spec := range specs {
		name, err := NormalizeKind(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		again, err := NormalizeKind(name)
		if err != nil {
			t.Fatalf("%s: normalized name %q does not parse: %v", spec, name, err)
		}
		if again != name {
			t.Fatalf("%s: NormalizeKind not idempotent: %q -> %q", spec, name, again)
		}
		d, err := BuildDesign(DesignSpec{Kind: name, PaperCapacityMB: 64, Scale: 1.0 / 16})
		if err != nil {
			t.Fatalf("%s: building normalized %q: %v", spec, name, err)
		}
		if d.Name() != name {
			t.Fatalf("%s: built design reports %q, want %q", spec, d.Name(), name)
		}
	}
}

// TestHotpageCompositeKeepsPageSize verifies the behavioural half of
// the round-trip fix: a hotpage composite built from its own reported
// name still runs 4KB pages.
func TestHotpageCompositeKeepsPageSize(t *testing.T) {
	for _, spec := range []string{"hotpage+blockrow", "hotpage+hybrid", "hotpage"} {
		name, err := NormalizeKind(spec)
		if err != nil {
			t.Fatal(err)
		}
		d, err := BuildDesign(DesignSpec{Kind: name, PaperCapacityMB: 64, Scale: 1.0 / 16})
		if err != nil {
			t.Fatal(err)
		}
		eng := engineOf(d)
		if eng == nil {
			t.Fatalf("%s: no engine", spec)
		}
		if pb := eng.Geometry().PageBytes; pb != 4096 {
			t.Fatalf("%s (built as %q): page size %dB, want 4096 (CHOP pin)", spec, name, pb)
		}
	}
}

// TestPartitionSpecErrors pins grammar diagnostics.
func TestPartitionSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"memcache",                        // missing share
		"footprint+memcache:100",          // share out of range
		"footprint+memcache:-1",           // negative share
		"footprint+memcache:x",            // malformed share
		"block+memcache:50",               // fixed designs do not compose
		"footprint+memcache:25+memlow:25", // two partitions
	} {
		if _, err := NormalizeKind(bad); err == nil {
			t.Errorf("spec %q accepted, want error", bad)
		}
	}
}
