package system

import (
	"encoding/json"
	"testing"

	"fpcache/internal/core"
	"fpcache/internal/dcache"
	"fpcache/internal/synth"
	"fpcache/internal/testutil"
)

// The golden parity suite: every pre-refactor design, rebuilt here
// exactly as the monolithic implementations assembled it, must
// produce a byte-identical FunctionalResult to the policy-composed
// engine that BuildDesign now returns. This is the proof obligation
// of the composable-engine refactor — the monoliths stay in the tree
// as executable reference specifications for this test.

// buildMonolith replicates the pre-refactor BuildDesign wiring for a
// kind (the monolithic constructors, with the same geometry, latency,
// and table parameters the factory used before the engine existed).
func buildMonolith(t *testing.T, kind string, paperMB int, scale float64) dcache.Design {
	t.Helper()
	spec := DesignSpec{Kind: kind, PaperCapacityMB: paperMB, Scale: scale}.withDefaults()
	capBytes := spec.CapacityBytes()
	lat := TagLatencyFor(kind, paperMB)
	geom := dcache.PageGeometry{CapacityBytes: capBytes, PageBytes: spec.PageBytes, Ways: spec.Ways}
	var (
		d   dcache.Design
		err error
	)
	switch kind {
	case KindBaseline:
		d = dcache.NewBaseline()
	case KindIdeal:
		d = dcache.NewIdeal()
	case KindPage:
		d, err = dcache.NewPageCache(dcache.PageCacheConfig{Geometry: geom, TagCycles: lat})
	case KindSubblock:
		d, err = dcache.NewSubblockCache(dcache.SubblockConfig{Geometry: geom, TagCycles: lat})
	case KindBlock:
		entries, ways, mmLat := dcache.MissMapParams(paperMB)
		entries = int(float64(entries) * scale)
		entries -= entries % ways
		if entries < ways {
			entries = ways
		}
		d, err = dcache.NewBlockCache(dcache.BlockCacheConfig{
			CapacityBytes:  capBytes,
			MissMapEntries: entries,
			MissMapWays:    ways,
			TagCycles:      mmLat,
		})
	case KindFootprint, KindFootprintNoSingleton, KindFootprintUnion:
		fc := core.Default(capBytes)
		fc.Geometry = geom
		fc.TagCycles = lat
		fc.FHTEntries = spec.FHTEntries
		fc.SingletonOpt = kind != KindFootprintNoSingleton
		if kind == KindFootprintUnion {
			fc.Feedback = core.FeedbackUnion
		}
		d, err = core.New(fc)
	case KindHotPage:
		geom.PageBytes = 4096
		d, err = dcache.NewHotPageCache(dcache.HotPageConfig{Geometry: geom, TagCycles: lat})
	default:
		t.Fatalf("no monolith for kind %q", kind)
	}
	if err != nil {
		t.Fatalf("monolith %s: %v", kind, err)
	}
	return d
}

// parityTrace builds a fresh generator at the parity suite's fixed
// seed; each design run gets its own so state never leaks between
// runs.
func parityTrace(t *testing.T, workload string, scale float64) *synth.Generator {
	t.Helper()
	return testutil.SynthTrace(t, workload, 7, scale)
}

func TestGoldenParityAllDesigns(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 40_000
		refs   = 40_000
	)
	kinds := []string{
		KindBaseline, KindBlock, KindPage, KindSubblock,
		KindFootprint, KindFootprintNoSingleton, KindFootprintUnion,
		KindHotPage, KindIdeal,
	}
	workloads := []string{synth.WebSearch, synth.MapReduce}
	for _, wl := range workloads {
		for _, kind := range kinds {
			for _, mb := range []int{64, 256} {
				mono := buildMonolith(t, kind, mb, scale)
				want := mustFunctional(RunFunctional(mono, parityTrace(t, wl, scale), warmup, refs))

				composed, err := BuildDesign(DesignSpec{Kind: kind, PaperCapacityMB: mb, Scale: scale})
				if err != nil {
					t.Fatalf("%s/%s/%dMB: BuildDesign: %v", wl, kind, mb, err)
				}
				got := mustFunctional(RunFunctional(composed, parityTrace(t, wl, scale), warmup, refs))

				wantJSON, err := json.Marshal(want)
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if string(wantJSON) != string(gotJSON) {
					t.Errorf("%s/%s/%dMB: composed engine diverges from monolith\nmonolith: %s\ncomposed: %s",
						wl, kind, mb, wantJSON, gotJSON)
				}
				if mono.MetadataBits() != composed.MetadataBits() {
					t.Errorf("%s/%dMB: metadata budget diverges: monolith %d, composed %d",
						kind, mb, mono.MetadataBits(), composed.MetadataBits())
				}
			}
		}
	}
}

// TestGoldenParityDensityObserver pins the Figure 4 seam: the
// engine's eviction-density observer fires with the same values as
// the monolithic page cache's.
func TestGoldenParityDensityObserver(t *testing.T) {
	const scale = 1.0 / 64
	collect := func(d dcache.Design, hook func(fn dcache.DensityObserver)) []int {
		var out []int
		hook(func(demanded, pageBlocks int) { out = append(out, demanded) })
		RunFunctional(d, parityTrace(t, synth.MapReduce, scale), 0, 30_000)
		return out
	}
	mono := buildMonolith(t, KindPage, 64, scale).(*dcache.PageCache)
	want := collect(mono, func(fn dcache.DensityObserver) { mono.OnEvict = fn })
	d, err := BuildDesign(DesignSpec{Kind: KindPage, PaperCapacityMB: 64, Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	eng := d.(*dcache.Engine)
	got := collect(eng, func(fn dcache.DensityObserver) { eng.OnEvict = fn })
	if len(want) == 0 {
		t.Fatal("no evictions observed; trace too small for parity check")
	}
	if len(got) != len(want) {
		t.Fatalf("eviction counts diverge: monolith %d, engine %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("eviction %d density diverges: monolith %d, engine %d", i, want[i], got[i])
		}
	}
}
