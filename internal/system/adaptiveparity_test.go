package system

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"fpcache/internal/control"
	"fpcache/internal/memtrace"
	"fpcache/internal/synth"
	"fpcache/internal/testutil"
)

// The adaptive-parity suite extends every run-mode equivalence the
// repo pins for static resize schedules to the online controller: the
// controller is a pure function of the telemetry sequence, and
// telemetry is sampled at the same measured-reference boundaries in
// every runner, so functional, timing, interval-parallel, and
// snapshot-interrupted runs must all make the same decisions at the
// same references.

// adaptiveTestConfig is a controller tuned to act within a few
// thousand references: tiny epochs, short hold, one-epoch cooldown.
func adaptiveTestConfig() control.Config {
	return control.Config{
		EpochRefs:      1_000,
		CooldownEpochs: 1,
		HoldEpochs:     4,
	}
}

// adaptiveTestSpec is a partitioned design whose split the controller
// drives from the plain-cache corner.
func adaptiveTestSpec(scale float64) DesignSpec {
	return DesignSpec{Kind: "subblock+memlow:0", PaperCapacityMB: 64, Scale: scale}
}

// TestAdaptiveTimingMatchesFunctional pins functional/timing parity
// under the adaptive controller: the event-driven run drives the same
// controller at the same epoch boundaries, so functional counters,
// traffic, and the applied resize sequence must be byte-identical.
func TestAdaptiveTimingMatchesFunctional(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 4_000
		refs   = 12_000
	)
	spec := adaptiveTestSpec(scale)

	d1, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	fres := mustFunctional(RunFunctionalResized(d1, snapTrace(t, scale), warmup, refs,
		NewAdaptivePolicy(adaptiveTestConfig())))
	if fres.Partition == nil || fres.Partition.Resizes == 0 {
		t.Fatalf("controller applied no resizes in the functional run: %+v", fres.Partition)
	}

	d2, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	tpol := NewAdaptivePolicy(adaptiveTestConfig())
	tres := mustTiming(RunTiming(d2, snapTrace(t, scale), TimingConfig{
		Cores: 8, MLP: 2, WarmupRefs: warmup, MaxRefs: refs, Resize: tpol,
	}))

	fj, _ := json.Marshal(fres.Counters)
	tj, _ := json.Marshal(tres.Counters)
	if string(fj) != string(tj) {
		t.Fatalf("counters diverge under adaptive control\nfunctional: %s\ntiming:     %s", fj, tj)
	}
	if fres.OffChip.ReadBursts != tres.OffChip.ReadBursts ||
		fres.OffChip.WriteBursts != tres.OffChip.WriteBursts {
		t.Fatalf("off-chip traffic diverges: functional %d/%d, timing %d/%d",
			fres.OffChip.ReadBursts, fres.OffChip.WriteBursts,
			tres.OffChip.ReadBursts, tres.OffChip.WriteBursts)
	}
	if pf, pt := fres.Partition, tres.Partition; pt == nil ||
		pf.Resizes != pt.Resizes || pf.MemHits != pt.MemHits {
		t.Fatalf("partition state diverges\nfunctional: %+v\ntiming:     %+v", pf, pt)
	}
}

// TestAdaptiveSnapshotMidEpochParity pins checkpoint transparency for
// the controller: interrupting a measured run in the middle of an
// epoch — snapshotting the state (including the controller's window
// ring and climb registers), restoring into a fresh design, and
// finishing — must merge to the uninterrupted run's result byte for
// byte.
func TestAdaptiveSnapshotMidEpochParity(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 4_000
		refs   = 12_000
		// cut lands mid-epoch: not a multiple of EpochRefs (1000).
		cut = 6_500
	)
	spec := adaptiveTestSpec(scale)

	d, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	full := NewSimState(d)
	full.SetPolicy(NewAdaptivePolicy(adaptiveTestConfig()))
	if err := full.Warm(snapTrace(t, scale), warmup); err != nil {
		t.Fatal(err)
	}
	want := mustFunctional(full.Measure(snapTraceAt(t, scale, warmup), refs))
	if want.Partition == nil || want.Partition.Resizes == 0 {
		t.Fatalf("controller applied no resizes in the reference run: %+v", want.Partition)
	}

	d1, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	first := NewSimState(d1)
	first.SetPolicy(NewAdaptivePolicy(adaptiveTestConfig()))
	if err := first.Warm(snapTrace(t, scale), warmup); err != nil {
		t.Fatal(err)
	}
	r1 := mustFunctional(first.Measure(snapTraceAt(t, scale, warmup), cut))
	var buf bytes.Buffer
	if err := first.Snapshot(&buf, snapMeta(warmup)); err != nil {
		t.Fatal(err)
	}

	d2, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	second := NewSimState(d2)
	second.SetPolicy(NewAdaptivePolicy(adaptiveTestConfig()))
	if err := second.Restore(bytes.NewReader(buf.Bytes()), snapMeta(warmup)); err != nil {
		t.Fatal(err)
	}
	r2 := mustFunctional(second.MeasureFrom(snapTraceAt(t, scale, warmup+cut), refs-cut, cut))

	merged := MergeFunctional([]FunctionalResult{r1, r2})
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(merged)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("mid-epoch interrupted run diverges\nuninterrupted: %s\nmerged:        %s", wantJSON, gotJSON)
	}
}

// TestAdaptiveIntervalParity pins the interval-parallel contract under
// the controller: the merged result equals the serial adaptive run at
// every worker count, including the applied resize count.
func TestAdaptiveIntervalParity(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 2_000
		refs   = 12_000
	)
	spec := adaptiveTestSpec(scale)
	cfg := adaptiveTestConfig()
	tr := intervalTrace(t, synth.WebSearch, 11, scale, refs, 256)

	d, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	serialSrc := intervalTrace(t, synth.WebSearch, 11, scale, refs, 256)
	serial := mustFunctional(RunFunctionalResized(d, serialSrc, warmup, 0, NewAdaptivePolicy(cfg)))
	if serial.Partition == nil || serial.Partition.Resizes == 0 {
		t.Fatalf("serial adaptive reference applied no resizes: %+v", serial.Partition)
	}
	want := testutil.AsJSON(t, serial)

	for _, workers := range []int{1, 4, runtime.NumCPU()} {
		rep, err := RunIntervals(tr, IntervalOptions{
			Spec: spec, Workload: synth.WebSearch, Seed: 11, Scale: scale,
			WarmupRefs: warmup, Intervals: 5, Workers: workers, Adaptive: &cfg,
		})
		if err != nil {
			t.Fatalf("j%d: %v", workers, err)
		}
		if got := testutil.AsJSON(t, rep.Functional); got != want {
			t.Fatalf("j%d: adaptive merged result diverges from serial\nserial: %s\nmerged: %s", workers, want, got)
		}
	}
}

// snapTraceAt is snapTrace fast-forwarded past n records.
func snapTraceAt(t *testing.T, scale float64, n int) memtrace.Source {
	t.Helper()
	return testutil.SynthTraceAt(t, synth.WebSearch, 11, scale, n)
}
