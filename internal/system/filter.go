package system

import (
	"fpcache/internal/memtrace"
	"fpcache/internal/sram"
)

// L2Filter adapts a raw (L1-level) reference stream into the L2-miss
// stream a DRAM cache observes: demand references that hit in the
// modelled SRAM hierarchy are absorbed, misses pass through with
// their PC (the Footprint predictor needs the PC of the L2-missing
// instruction, §7 "Transfer of PC"), and dirty L2 evictions emerge as
// write records.
//
// The calibrated generators in internal/synth already emit L2-miss
// streams, so the filter is optional; it exists for full-hierarchy
// studies and for replaying external raw traces.
type L2Filter struct {
	src memtrace.Source
	l2  *sram.Cache

	queue []memtrace.Record // pending writebacks
	// Absorbed counts references that hit in the filter.
	Absorbed uint64
	// Writebacks counts dirty evictions forwarded downstream.
	Writebacks uint64

	lastPC   memtrace.PC
	lastCore uint8
}

// NewL2Filter wraps src with an L2 model of the given geometry.
func NewL2Filter(src memtrace.Source, cfg sram.CacheConfig) (*L2Filter, error) {
	l2, err := sram.NewCache(cfg)
	if err != nil {
		return nil, err
	}
	f := &L2Filter{src: src, l2: l2}
	l2.WritebackFn = func(addr memtrace.Addr) {
		f.Writebacks++
		// A writeback is a posted store of the victim block; it
		// carries the PC/core of the access that displaced it, which
		// is the information a real L2 would have at hand.
		f.queue = append(f.queue, memtrace.Record{
			PC:    f.lastPC,
			Addr:  addr,
			Core:  f.lastCore,
			Write: true,
		})
	}
	return f, nil
}

// Next implements memtrace.Source: it yields L2 misses and dirty
// writebacks, accumulating absorbed references into the Gap of the
// next emitted record so instruction counts are preserved.
func (f *L2Filter) Next() (memtrace.Record, bool) {
	var extraGap uint32
	for {
		if len(f.queue) > 0 {
			rec := f.queue[0]
			f.queue = f.queue[1:]
			rec.Gap += extraGap
			return rec, true
		}
		rec, ok := f.src.Next()
		if !ok {
			return memtrace.Record{}, false
		}
		f.lastPC, f.lastCore = rec.PC, rec.Core
		hit := f.l2.Access(rec.Addr, rec.Write)
		if hit {
			// Absorbed: its instructions fold into the next record.
			f.Absorbed++
			extraGap += rec.Gap + 1
			continue
		}
		rec.Gap += extraGap
		return rec, true
	}
}

// HitRatio returns the filter's hit ratio.
func (f *L2Filter) HitRatio() float64 { return f.l2.HitRatio() }
