package system

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"fpcache/internal/memtrace"
	"fpcache/internal/synth"
	"fpcache/internal/testutil"
)

// snapshotSpecs is the design sweep of the snapshot-parity suite: the
// canonical paper designs, the showcased hybrids, the full alloc x
// mapping x fill policy cross product, and partitioned compositions —
// every shape BuildDesign can produce.
func snapshotSpecs() []DesignSpec {
	const mb = 64
	const scale = 1.0 / 64
	spec := func(kind string) DesignSpec {
		return DesignSpec{Kind: kind, PaperCapacityMB: mb, Scale: scale}
	}
	specs := []DesignSpec{
		spec(KindBaseline), spec(KindIdeal), spec(KindBlock), spec(KindHotPage),
		spec("footprint+memcache:50"), spec("page+memlow:25"),
		spec("footprint+banshee+memcache:25"),
	}
	for _, alloc := range AllocPolicies() {
		for _, mapping := range MappingPolicies() {
			for _, fill := range FillPolicies() {
				specs = append(specs, DesignSpec{
					Kind: alloc, Alloc: alloc, Mapping: mapping, Fill: fill,
					PaperCapacityMB: mb, Scale: scale,
				})
			}
		}
	}
	return specs
}

// snapTrace returns a fresh deterministic generator at the snapshot
// suite's fixed (workload, seed) identity; every run gets its own so
// no state leaks between the compared runs.
func snapTrace(t *testing.T, scale float64) memtrace.Source {
	t.Helper()
	return testutil.SynthTrace(t, synth.WebSearch, 11, scale)
}

// snapMeta is the run identity the parity tests stamp on snapshots;
// it only has to be consistent between Snapshot and Restore.
func snapMeta(warmup int) SnapshotMeta {
	return SnapshotMeta{Workload: synth.WebSearch, Seed: 11, Scale: 1.0 / 64, WarmupRefs: warmup}
}

// runRestored warms one state, snapshots it, restores the snapshot
// into a second freshly built design, and measures from there — the
// checkpointed form of RunFunctionalResized.
func runRestored(t *testing.T, spec DesignSpec, warmup, refs int, pol ResizePolicy) FunctionalResult {
	t.Helper()
	const scale = 1.0 / 64

	warmDesign, err := BuildDesign(spec)
	if err != nil {
		t.Fatalf("BuildDesign(%+v): %v", spec, err)
	}
	warm := NewSimState(warmDesign)
	warm.SetPolicy(pol)
	warm.Warm(snapTrace(t, scale), warmup)
	var buf bytes.Buffer
	if err := warm.Snapshot(&buf, snapMeta(warmup)); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	design, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	state := NewSimState(design)
	state.SetPolicy(pol)
	if err := state.Restore(bytes.NewReader(buf.Bytes()), snapMeta(warmup)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	src := snapTrace(t, scale)
	if skipped := memtrace.Skip(src, warmup); skipped != warmup {
		t.Fatalf("skipped %d of %d warmup records", skipped, warmup)
	}
	return mustFunctional(state.Measure(src, refs))
}

// TestSnapshotParityAllCompositions is the tentpole's correctness bar:
// for every design composition, restoring a warm-state snapshot and
// measuring must reproduce the uninterrupted run's FunctionalResult
// byte for byte.
func TestSnapshotParityAllCompositions(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 20_000
		refs   = 20_000
	)
	for _, spec := range snapshotSpecs() {
		spec := spec
		name := spec.Kind
		if spec.Alloc != "" {
			name = fmt.Sprintf("%s+%s+%s", spec.Alloc, spec.Mapping, spec.Fill)
		}
		t.Run(name, func(t *testing.T) {
			design, err := BuildDesign(spec)
			if err != nil {
				t.Fatalf("BuildDesign: %v", err)
			}
			want := mustFunctional(RunFunctional(design, snapTrace(t, scale), warmup, refs))
			got := runRestored(t, spec, warmup, refs, nil)

			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantJSON, gotJSON) {
				t.Errorf("restored run diverges\nuninterrupted: %s\nrestored:      %s", wantJSON, gotJSON)
			}
		})
	}
}

// TestSnapshotParityResized pins the same equality when the measured
// phase runs a partition resize schedule: the restored run must replay
// resize transitions (flushes, migrations, purges) identically.
func TestSnapshotParityResized(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 10_000
		refs   = 12_000
	)
	plan := &ResizePlan{PeriodRefs: 3000, Fractions: []float64{0.25, 0.75}}
	spec := DesignSpec{Kind: "footprint+memcache:50", PaperCapacityMB: 64, Scale: scale}

	design, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFunctional(RunFunctionalResized(design, snapTrace(t, scale), warmup, refs, plan))
	got := runRestored(t, spec, warmup, refs, plan)

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("restored resized run diverges\nuninterrupted: %s\nrestored:      %s", wantJSON, gotJSON)
	}
	if want.Partition == nil || want.Partition.Resizes == 0 {
		t.Fatalf("plan applied no resizes: %+v", want.Partition)
	}
}

// TestSnapshotParityTiming pins warm-state reuse for the timing
// simulator: restoring a snapshot and running with WarmupRefs=0 over
// the fast-forwarded trace must equal the uninterrupted timing run.
func TestSnapshotParityTiming(t *testing.T) {
	const (
		scale  = 1.0 / 64
		warmup = 15_000
		refs   = 10_000
	)
	for _, kind := range []string{KindFootprint, KindBlock, "footprint+banshee", "footprint+memcache:50"} {
		spec := DesignSpec{Kind: kind, PaperCapacityMB: 64, Scale: scale}
		cfg := TimingConfig{Cores: 8, MLP: 2, MaxRefs: refs}

		d1, err := BuildDesign(spec)
		if err != nil {
			t.Fatal(err)
		}
		uncfg := cfg
		uncfg.WarmupRefs = warmup
		want := mustTiming(RunTiming(d1, snapTrace(t, scale), uncfg))

		warmDesign, err := BuildDesign(spec)
		if err != nil {
			t.Fatal(err)
		}
		warm := NewSimState(warmDesign)
		warm.Warm(snapTrace(t, scale), warmup)
		var buf bytes.Buffer
		if err := warm.Snapshot(&buf, snapMeta(warmup)); err != nil {
			t.Fatal(err)
		}

		d2, err := BuildDesign(spec)
		if err != nil {
			t.Fatal(err)
		}
		state := NewSimState(d2)
		if err := state.Restore(bytes.NewReader(buf.Bytes()), snapMeta(warmup)); err != nil {
			t.Fatalf("%s: Restore: %v", kind, err)
		}
		src := snapTrace(t, scale)
		memtrace.Skip(src, warmup)
		got := mustTiming(RunTiming(state.Design(), src, cfg))

		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(got)
		if !bytes.Equal(wantJSON, gotJSON) {
			t.Fatalf("%s: restored timing run diverges\nuninterrupted: %s\nrestored:      %s", kind, wantJSON, gotJSON)
		}
	}
}

// TestSnapshotRejectsWrongDesign pins validation: a snapshot restored
// into a design built from a different spec must fail loudly.
func TestSnapshotRejectsWrongDesign(t *testing.T) {
	const scale = 1.0 / 64
	mk := func(kind string) *SimState {
		d, err := BuildDesign(DesignSpec{Kind: kind, PaperCapacityMB: 64, Scale: scale})
		if err != nil {
			t.Fatal(err)
		}
		return NewSimState(d)
	}
	warm := mk(KindFootprint)
	warm.Warm(snapTrace(t, scale), 5000)
	var buf bytes.Buffer
	if err := warm.Snapshot(&buf, snapMeta(5000)); err != nil {
		t.Fatal(err)
	}
	if err := mk(KindPage).Restore(bytes.NewReader(buf.Bytes()), snapMeta(5000)); err == nil {
		t.Fatal("restoring a footprint snapshot into a page design succeeded")
	}
	// Mismatched run identity (different seed / warmup): must fail, not
	// silently continue a different run's state.
	other := snapMeta(5000)
	other.Seed = 99
	if err := mk(KindFootprint).Restore(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("restoring under a different seed succeeded")
	}
	if err := mk(KindFootprint).Restore(bytes.NewReader(buf.Bytes()), snapMeta(6000)); err == nil {
		t.Fatal("restoring under a different warmup length succeeded")
	}
	// Truncated snapshot: must error, not restore partially in silence.
	if err := mk(KindFootprint).Restore(bytes.NewReader(buf.Bytes()[:buf.Len()/2]), snapMeta(5000)); err == nil {
		t.Fatal("restoring a truncated snapshot succeeded")
	}
}

// TestWarmCacheRoundTrip exercises the content-keyed store: a miss,
// then a hit that restores byte-identical state.
func TestWarmCacheRoundTrip(t *testing.T) {
	const scale = 1.0 / 64
	spec := DesignSpec{Kind: KindFootprint, PaperCapacityMB: 64, Scale: scale}
	key := WarmKey{Workload: synth.WebSearch, Seed: 11, Scale: scale, WarmupRefs: 10_000, Spec: spec}
	cache, err := NewWarmCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	d1, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewSimState(d1)
	if hit, ev, err := cache.Load(key, s1); err != nil || hit || ev != nil {
		t.Fatalf("empty cache: hit=%v ev=%v err=%v", hit, ev, err)
	}
	s1.Warm(snapTrace(t, scale), 10_000)
	if err := cache.Store(key, s1); err != nil {
		t.Fatal(err)
	}
	want := mustFunctional(s1.Measure(func() memtrace.Source {
		src := snapTrace(t, scale)
		memtrace.Skip(src, 10_000)
		return src
	}(), 10_000))

	d2, err := BuildDesign(spec)
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewSimState(d2)
	hit, ev, err := cache.Load(key, s2)
	if err != nil || !hit || ev != nil {
		t.Fatalf("warm cache: hit=%v ev=%v err=%v", hit, ev, err)
	}
	src := snapTrace(t, scale)
	memtrace.Skip(src, 10_000)
	got := mustFunctional(s2.Measure(src, 10_000))

	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("cache-restored run diverges\nfirst:    %s\nrestored: %s", wantJSON, gotJSON)
	}

	// Different key material must miss.
	other := WarmKey{Workload: synth.WebSearch, Seed: 12, Scale: scale, WarmupRefs: 10_000, Spec: spec}
	if other.Hash() == key.Hash() {
		t.Fatal("distinct seeds hashed to the same key")
	}
}
